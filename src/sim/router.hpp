// Input-buffered virtual cut-through router state (paper §V).
//
// Each router has one input unit (per-VC FIFOs) and one output unit
// (downstream credit counters + at most one active packet transfer) per
// port, plus the LRS arbiter state of its separable allocator. All per-cycle
// orchestration lives in Network; Router is state + small queries.
//
// Storage layout: the per-VC state every hot scan touches — downstream
// credit counters, FIFO metadata + ring slots, head-busy flags — lives in
// contiguous per-SHARD arenas (sim/flat_state.hpp), laid out router/port/
// VC-major; InputPort/OutputPort hold Span views into them. The allocation
// and routing scans of a shard therefore stream through a few flat arrays
// instead of chasing per-router heap vectors. Arenas allocate in large
// stable-address chunks (see ShardArena), so routers can be bound lazily on
// first touch while every Span stays valid for the network's lifetime.
#pragma once

#include <vector>

#include "common/check.hpp"
#include "common/phase.hpp"
#include "common/span.hpp"
#include "common/types.hpp"
#include "sim/arbiter.hpp"
#include "sim/fifo.hpp"

namespace ofar {

struct OutputPort {
  ChannelId channel = kInvalidChannel;  ///< invalid on unwired global ports
  u32 latency = 1;  ///< wire latency of `channel`, cached at wiring time so
                    ///< the transfer loop never resolves a descriptor
  Span<u32> credits;                    ///< per downstream VC, phits free
  Span<u32> credit_cap;                 ///< per downstream VC, buffer size

  // Active batch transfer (whole packet streams at 1 phit/cycle).
  PacketId active = kInvalidPacket;
  VcId active_vc = 0;
  PortId src_port = 0;
  VcId src_vc = 0;
  u32 phits_left = 0;
  u16 active_size = 0;  ///< cached Packet::size of `active` (set at grant),
                        ///< so the transfer loop never touches the pool

  bool wired() const noexcept { return channel != kInvalidChannel; }
  bool busy() const noexcept { return active != kInvalidPacket; }

  /// VC in [first, first+count) with the most credits, provided it has at
  /// least `need`; returns count (i.e. one-past) sentinel mapped to
  /// kInvalidVc via the bool. Returns false when no VC qualifies.
  bool best_vc(u32 first, u32 count, u32 need, VcId& out) const noexcept {
    u32 best = 0;
    bool found = false;
    for (u32 v = first; v < first + count; ++v) {
      OFAR_DCHECK(v < credits.size());
      if (credits[v] >= need && (!found || credits[v] > best)) {
        best = credits[v];
        out = static_cast<VcId>(v);
        found = true;
      }
    }
    return found;
  }

  /// Occupancy fraction (1 - free/capacity) over VCs [first, first+count):
  /// the congestion measure OFAR and PB thresholds operate on (paper §IV-B).
  double occupancy(u32 first, u32 count) const noexcept {
    u64 free = 0, cap = 0;
    for (u32 v = first; v < first + count; ++v) {
      free += credits[v];
      cap += credit_cap[v];
    }
    if (cap == 0) return 1.0;
    return 1.0 - static_cast<double>(free) / static_cast<double>(cap);
  }

  /// Total phits queued downstream (capacity - credits) over a VC range.
  u32 queued_phits(u32 first, u32 count) const noexcept {
    u32 q = 0;
    for (u32 v = first; v < first + count; ++v)
      q += credit_cap[v] - credits[v];
    return q;
  }
};

struct InputPort {
  ChannelId in_channel = kInvalidChannel;  ///< invalid for injection ports
  u32 in_latency = 1;  ///< wire latency of `in_channel` (credit return path)
  Span<VcFifo> vcs;
  Span<u8> head_busy;  ///< per VC: head packet is mid-transfer

  bool has_head(VcId v) const noexcept {
    return !vcs[v].empty() && head_busy[v] == 0 && vcs[v].head_arrived() > 0;
  }

  /// Best-fit injection scan: the VC with the most free space that still
  /// fits a whole `size`-phit packet. This is the single placement rule for
  /// injection queues — the fits-probe (do_injection) and the placement
  /// (try_inject / place_packet) both call it, so they can never diverge.
  /// Returns false (out_vc = kInvalidIndex) when no VC fits.
  bool best_fit_vc(u32 size, u32& out_vc) const noexcept {
    u32 best_free = 0;
    out_vc = kInvalidIndex;
    for (u32 v = 0; v < vcs.size(); ++v) {
      const u32 free = vcs[v].capacity() - vcs[v].stored_phits();
      if (free >= size && free > best_free) {
        best_free = free;
        out_vc = v;
      }
    }
    return out_vc != kInvalidIndex;
  }
};

// Shard-local: a router belongs to exactly one shard of the sharded cycle
// kernel; parallel phases may mutate only routers of their own shard.
struct OFAR_SHARD_LOCAL Router {
  RouterId id = 0;
  std::vector<InputPort> inputs;   // Span views into the owning ShardArena,
  std::vector<OutputPort> outputs;  // port-major ([port0 vc0.. | port1 ..])

  // Fast-path skip state maintained by Network: packets buffered in any
  // input FIFO of this router; per-input-port bitmask of non-empty VCs
  // (contiguous, so the allocation scan stays in one cache line per router);
  // bitmask of output ports with an active transfer. routable_heads counts
  // the (port, vc) pairs whose head packet is present and not mid-transfer
  // — exactly the candidates the allocation scan could request for — so
  // do_allocation skips routers that are only streaming (a granted packet
  // occupies its head for packet_size cycles with nothing to route).
  u32 buffered_packets = 0;
  u32 buffered_phits = 0;
  u32 routable_heads = 0;
  u32 active_transfers = 0;
  u32 buffer_capacity_phits = 0;  ///< sum of all input-VC capacities
  bool throttled = false;         ///< congestion-throttle latch (hysteresis)
  std::vector<u8> input_mask;  // [port] -> bit v set iff vcs[v] non-empty
  u64 active_out_mask = 0;

  // Allocator state: one VC-level arbiter per input port, one input-level
  // arbiter per output port.
  std::vector<LrsArbiter> input_arb;   // candidates = VC indices
  std::vector<LrsArbiter> output_arb;  // candidates = input port indices

  u32 num_ports() const noexcept { return static_cast<u32>(inputs.size()); }

  /// True when this router has any per-cycle work: a buffered packet to
  /// route or an output streaming a transfer. The Network's activity
  /// worklist contains exactly the routers for which this holds.
  bool has_activity() const noexcept {
    return buffered_packets > 0 || active_out_mask != 0;
  }
};

}  // namespace ofar
