// TimeSeries is header-only; this TU compile-checks the header.
#include "stats/timeseries.hpp"
