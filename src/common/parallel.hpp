// Thread-parallel job runner for parameter sweeps.
//
// Each simulation point is an independent job (own network, own RNG), so
// sweeps are embarrassingly parallel. On a single-core host this degrades
// gracefully to sequential execution.
#pragma once

#include <functional>
#include <vector>

#include "common/thread_annotations.hpp"
#include "common/types.hpp"

namespace ofar {

/// Runs `jobs` functions, at most `threads` concurrently (0 = hardware
/// concurrency). Jobs may run in any order; exceptions escaping a job
/// terminate the process (jobs are expected to handle their own errors).
void run_parallel(const std::vector<std::function<void()>>& jobs,
                  unsigned threads = 0);

/// Convenience: invokes fn(i) for i in [0, count) in parallel.
void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn,
                  unsigned threads = 0);

/// Persistent worker pool for the sharded cycle kernel (DESIGN.md §10).
///
/// `run_parallel` spawns threads per call, which is fine for sweeps where a
/// job is a whole simulation, but a sharded Network::step() dispatches two
/// parallel phases per cycle — thread spawn cost would dwarf the work. A
/// ShardPool keeps `threads - 1` workers parked on a condition variable and
/// reuses them for every phase; the calling thread participates as worker 0,
/// so a pool of N threads occupies exactly N cores during a phase.
///
/// Determinism contract: `parallel_phase(count, fn)` invokes fn(i) exactly
/// once for every i in [0, count) and returns only after all invocations
/// finished (barrier). Shard i is always the same *work*, merely executed on
/// an arbitrary thread — callers must keep fn(i) free of cross-shard writes
/// and commit any cross-shard effects themselves, in shard order, after the
/// barrier. The pool never reorders, splits, or merges shard indices.
class ShardPool {
 public:
  /// Spawns `threads - 1` workers (the caller is the remaining thread).
  /// `threads` is clamped to at least 1; a 1-thread pool spawns nothing and
  /// parallel_phase degenerates to a sequential loop.
  explicit ShardPool(unsigned threads);
  ShardPool(const ShardPool&) = delete;
  ShardPool& operator=(const ShardPool&) = delete;
  ~ShardPool();

  unsigned threads() const noexcept { return threads_; }

  /// Runs fn(i) for every i in [0, count) across the pool and waits for all
  /// of them (barrier). Workers use a static stride partition (worker w runs
  /// i = w, w + threads, ...) so the assignment of shards to threads is
  /// itself deterministic — useful when debugging with per-thread logs.
  void parallel_phase(u32 count, const std::function<void(u32)>& fn);

 private:
  struct Impl;
  // Both block on a condition variable through Mutex::native(); cv wait
  // predicates release/reacquire in a way -Wthread-safety cannot model, so
  // analysis is disabled for exactly these two bodies (the dispatch side of
  // parallel_phase stays analyzed).
  void worker_loop(unsigned worker_index) OFAR_NO_THREAD_SAFETY_ANALYSIS;
  void wait_done() OFAR_NO_THREAD_SAFETY_ANALYSIS;

  unsigned threads_ = 1;
  Impl* impl_ = nullptr;
};

}  // namespace ofar
