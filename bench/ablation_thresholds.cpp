// Ablation bench (DESIGN.md extension #1/#2): OFAR's misroute-threshold
// policy. The paper picked the variable policy Th_nonmin = 0.9 * Q_min
// empirically as "a reasonable trade-off between the performance in
// adversarial and uniform traffic patterns" (§V); this bench reproduces
// that tuning study on our substrate:
//
//   - sweep of the variable-policy factor (columns = traffic regimes),
//   - sweep of the absolute occupancy-gap guard this implementation adds
//     (see MisrouteThresholds::min_gap),
//   - the paper's static alternative (Th_min = 100%, Th_nonmin = 40%).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ofar;
  using namespace ofar::bench;
  CommandLine cli(argc, argv);
  // Default scale h=3: the tuning trade-off shows at any radix, and the
  // interesting regimes sit at/past saturation where collapsed
  // configurations simulate slowly — h=3 keeps the full grid in minutes.
  BenchOptions opts = BenchOptions::parse(cli, 4'000, 6'000);
  if (!cli.has("h")) opts.h = 3;
  if (!reject_unknown(cli)) return 1;

  struct Regime {
    const char* name;
    TrafficPattern pattern;
    double load;
  };
  // Low-load anchor + one regime per stress class: uniform overload (where
  // eager deflection destabilises) and the two adversarial saturation
  // points (where deflection is the whole mechanism).
  const std::vector<Regime> regimes = {
      {"UN@0.30", TrafficPattern::uniform(), 0.30},
      {"UN@0.70", TrafficPattern::uniform(), 0.70},
      {"ADV+2@0.45", TrafficPattern::adversarial(2), 0.45},
      {"ADV+h@0.40", TrafficPattern::adversarial(opts.h), 0.40},
  };

  auto eval = [&](const SimConfig& cfg, Table& table,
                  const std::string& label) {
    std::vector<SteadyResult> results(regimes.size());
    std::vector<std::function<void()>> jobs;
    for (std::size_t i = 0; i < regimes.size(); ++i)
      jobs.emplace_back([&, i] {
        results[i] =
            run_steady(cfg, regimes[i].pattern, regimes[i].load, opts.run);
      });
    run_parallel(jobs, opts.threads);
    std::vector<Table::Cell> row = {label};
    for (const auto& r : results) row.emplace_back(r.accepted_load);
    table.add_row(std::move(row));
    std::printf(".");
    std::fflush(stdout);
  };

  std::vector<std::string> columns = {"config"};
  for (const auto& r : regimes) columns.push_back(r.name);

  std::printf("OFAR threshold ablation on %s\n",
              opts.config(RoutingKind::kOfar).summary().c_str());

  Table factors(columns);
  for (const double f : {0.5, 0.7, 0.9, 1.0}) {
    SimConfig cfg = opts.config(RoutingKind::kOfar);
    cfg.thresholds.nonmin_factor = f;
    eval(cfg, factors, "factor=" + Table::format(f));
  }
  std::printf("\n");
  factors.print("Variable policy: Th_nonmin = factor * Q_min "
                "(accepted load per regime)");
  dump_csv(factors, opts, "ablation_factor");

  Table gaps(columns);
  for (const double g : {0.0, 0.1, 0.15, 0.25}) {
    SimConfig cfg = opts.config(RoutingKind::kOfar);
    cfg.thresholds.min_gap = g;
    eval(cfg, gaps, "gap=" + Table::format(g));
  }
  std::printf("\n");
  gaps.print("Occupancy-gap guard: candidate needs Q_min - Q >= gap");
  dump_csv(gaps, opts, "ablation_gap");

  Table modes(columns);
  {
    SimConfig cfg = opts.config(RoutingKind::kOfar);
    eval(cfg, modes, "variable 0.9*Qmin (paper default)");
    cfg.thresholds.variable = false;
    cfg.thresholds.th_min = 1.0;
    cfg.thresholds.th_nonmin_static = 0.4;
    eval(cfg, modes, "static Thmin=100% Thnonmin=40%");
  }
  std::printf("\n");
  modes.print("Variable vs static threshold policy (paper §IV-B)");
  dump_csv(modes, opts, "ablation_policy_mode");
  return 0;
}
