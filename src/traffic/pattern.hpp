// Synthetic traffic patterns (paper §V): uniform random (UN), adversarial
// ADV+N (every node of group i sends to a random node of group i+N), and
// weighted mixtures of components (the Fig. 7 MIX workloads).
#pragma once

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "topology/dragonfly.hpp"

namespace ofar {

enum class PatternKind : u8 {
  kUniform,      ///< random destination anywhere (not the source node)
  kAdversarial,  ///< random destination in group (src_group + offset) % G
  kStencil2D,    ///< 2D domain decomposition, sequential rank placement:
                 ///< destination is a random von-Neumann neighbour of the
                 ///< source rank on an (nx x ny) grid over all nodes — the
                 ///< near-neighbour HPC exchange that motivates §I/§III
};

struct TrafficComponent {
  PatternKind kind = PatternKind::kUniform;
  u32 offset = 0;       ///< ADV offset; ignored for UN
  double weight = 1.0;  ///< relative selection weight in a mixture
};

class TrafficPattern {
 public:
  TrafficPattern() = default;

  static TrafficPattern uniform();
  static TrafficPattern adversarial(u32 offset);
  /// Weighted mixture; weights need not sum to 1.
  static TrafficPattern mix(std::vector<TrafficComponent> components);

  /// Picks a destination for `src`; `tag_out` reports the component index
  /// (used to break down per-component stats in mixed workloads).
  NodeId pick(NodeId src, const Dragonfly& topo, Rng& rng,
              u16& tag_out) const;

  static TrafficPattern stencil2d();

  const std::vector<TrafficComponent>& components() const {
    return components_;
  }

  std::string describe() const;

 private:
  std::vector<TrafficComponent> components_;
  std::vector<double> cumulative_;  // prefix sums of weights
};

}  // namespace ofar
