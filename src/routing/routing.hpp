// Routing mechanism interface.
//
// A RoutingPolicy is consulted (a) once when a packet is injected — where
// VAL/PB/UGAL fix their Valiant intermediate and PB/UGAL take their
// minimal-vs-nonminimal decision — and (b) every cycle for every packet at
// the head of an input VC (the paper's "routing decision ... revisited every
// cycle as long as the packet remains in the queue head", §V).
//
// route() returns the single output (port, VC) the input unit will request
// from the allocator this cycle, or an invalid choice to wait.
#pragma once

#include <memory>

#include "common/config.hpp"
#include "common/types.hpp"
#include "sim/packet.hpp"

namespace ofar {

class Network;

enum class MisrouteKind : u8 { kNone, kLocal, kGlobal };

struct RouteChoice {
  PortId out_port = kInvalidPort;
  VcId out_vc = 0;
  MisrouteKind misroute = MisrouteKind::kNone;
  bool enter_ring = false;  ///< requests the escape ring (bubble condition)
  bool exit_ring = false;   ///< head is in the ring and leaves it here
  bool valid = false;

  static RouteChoice none() noexcept { return {}; }
  static RouteChoice to(PortId port, VcId vc) noexcept {
    RouteChoice c;
    c.out_port = port;
    c.out_vc = vc;
    c.valid = true;
    return c;
  }
};

class RoutingPolicy {
 public:
  virtual ~RoutingPolicy() = default;

  virtual const char* name() const noexcept = 0;

  /// Called when `pkt` enters the injection queue of router `at`.
  virtual void on_inject(Network& net, Packet& pkt, RouterId at);

  /// Desired output for the head packet of (in_port, in_vc) at router `at`.
  /// Must only return outputs that are grantable right now: output port not
  /// busy and enough credits on the chosen VC (the whole packet for VCT, one
  /// extra packet — the bubble — when enter_ring is set).
  ///
  /// `lane` identifies the shard calling during the parallel allocation
  /// phase of the sharded cycle kernel (DESIGN.md §10). Policies that draw
  /// randomness inside route() (OFAR's candidate pick, PAR's UGAL tiebreak)
  /// must draw from a per-lane RNG so concurrent shards never share a
  /// stream; lane 0 is always the legacy sequential stream. Policies must
  /// not mutate any other shared state from route().
  virtual RouteChoice route(Network& net, RouterId at, PortId in_port,
                            VcId in_vc, Packet& pkt, u32 lane) = 0;

  /// Announces the number of route() lanes the kernel will use (the shard
  /// count). Called once at Network construction, before any traffic.
  /// Policies without route()-time randomness can ignore it.
  virtual void bind_lanes(u32 lanes);

  /// Per-cycle global update hook (PB's intra-group broadcast). Always
  /// called serially, between event delivery and the transfer phase.
  virtual void tick(Network& net);
};

/// Builds the policy selected by cfg.routing (OFAR variants live in
/// src/core, baselines in src/routing).
std::unique_ptr<RoutingPolicy> make_policy(const SimConfig& cfg);

// ---- shared helpers used by several mechanisms ----

/// Output port of `cur` on the minimal path toward router `dst` (`cur` !=
/// `dst`): the ejection port is never returned here — callers handle
/// cur == dst themselves.
PortId min_port_to_router(const Network& net, RouterId cur, RouterId dst);

/// Output port of `cur` on the minimal path toward group `g` (`cur` must be
/// outside `g`): the global port if `cur` carries the link, else the local
/// port toward the carrier.
PortId min_port_to_group(const Network& net, RouterId cur, GroupId g);

/// Hop-ordered VC for a packet about to traverse `port` (VC-ordered
/// mechanisms only): local hops use VC = #local hops taken, global hops use
/// VC = #global hops taken.
VcId ordered_vc(const Network& net, RouterId at, PortId port,
                const Packet& pkt);

/// Minimal-path next port for a Valiant-style packet: toward the
/// intermediate (group or router) until reached, then toward dst.
/// Marks the Valiant phase done when the intermediate is reached.
/// Returns the ejection port when the packet is at its destination router.
PortId valiant_next_port(const Network& net, RouterId at, Packet& pkt);

}  // namespace ofar
