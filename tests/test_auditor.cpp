// Mutation-test harness for the invariant auditor (src/verify/).
//
// Two obligations, mirroring ISSUE 3's acceptance criteria:
//
//  1. Clean pass: on the tier-1 golden-digest workloads the auditor reports
//     zero violations, and enabling periodic auditing leaves the golden
//     stat digests bit-identical (the auditor is read-only and RNG-free).
//  2. Fault injection: seeded corruptions of live network state — a leaked
//     credit, a double-granted head, a wedged transfer, a dropped worklist
//     entry, a phantom packet, an overfilled escape ring, a wedged ring
//     wait cycle — are each caught by the matching check with an
//     actionable (non-empty, state-naming) report. The corruptions go
//     through public accessors only, the same surface a buggy kernel
//     change would reach.
//
// The periodic driver's abort path is covered by a gtest death test in
// "threadsafe" style, which re-executes the test binary in a subprocess.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "sim/network.hpp"
#include "traffic/generator.hpp"
#include "traffic/pattern.hpp"
#include "verify/invariant_auditor.hpp"
#include "verify/wait_graph.hpp"

namespace ofar {
namespace {

using verify::AuditReport;
using verify::Invariant;
using verify::InvariantAuditor;
using verify::WaitGraph;

SimConfig matrix_config() {
  SimConfig cfg;
  cfg.h = 4;
  cfg.seed = 12345;
  cfg.routing = RoutingKind::kOfar;
  cfg.ring = RingKind::kPhysical;
  return cfg;
}

/// Small, fast network for the mutation tests (36 routers).
SimConfig small_config() {
  SimConfig cfg = matrix_config();
  cfg.h = 2;
  return cfg;
}

AuditReport audit(const Network& net) {
  return InvariantAuditor(net).run_all();
}

/// A network mid-flight under saturating adversarial traffic: every fault
/// class below corrupts this state.
std::unique_ptr<Network> saturated_net() {
  auto net = std::make_unique<Network>(small_config());
  net->set_traffic(std::make_unique<BernoulliSource>(
      TrafficPattern::adversarial(1), 0.7, 12345));
  net->run(1500);
  return net;
}

/// First router with an output mid-transfer; asserts one exists.
RouterId find_streaming_router(Network& net, PortId& port) {
  for (RouterId r = 0; r < net.topo().routers(); ++r) {
    if (net.router(r).active_out_mask != 0) {
      port = static_cast<PortId>(
          __builtin_ctzll(net.router(r).active_out_mask));
      return r;
    }
  }
  ADD_FAILURE() << "no active transfer in saturated network";
  return 0;
}

/// Expects exactly the targeted invariant among the violations, with a
/// detail string that names some state (actionable, not just a boolean).
void expect_caught(const AuditReport& rep, Invariant inv) {
  EXPECT_FALSE(rep.ok());
  ASSERT_TRUE(rep.has(inv)) << rep.to_string();
  for (const auto& v : rep.violations)
    if (v.invariant == inv) {
      EXPECT_GT(v.detail.size(), 20u);
      break;
    }
  EXPECT_NE(rep.to_string().find(verify::to_string(inv)), std::string::npos);
}

// ---------------------------------------------------------------------------
// 1. clean pass + digest stability
// ---------------------------------------------------------------------------

TEST(AuditorClean, SaturatedMidFlightPassesAllChecks) {
  auto net = saturated_net();
  const AuditReport rep = audit(*net);
  EXPECT_TRUE(rep.ok()) << rep.to_string();
  EXPECT_EQ(rep.checks_run, 6u);
  EXPECT_NE(rep.to_string().find("all 6 checks passed"), std::string::npos);
}

TEST(AuditorClean, EmbeddedRingMidFlightPassesAllChecks) {
  SimConfig cfg = small_config();
  cfg.ring = RingKind::kEmbedded;
  Network net(cfg);
  net.set_traffic(std::make_unique<BernoulliSource>(
      TrafficPattern::adversarial(1), 0.7, 12345));
  net.run(1500);
  const AuditReport rep = audit(net);
  EXPECT_TRUE(rep.ok()) << rep.to_string();
}

TEST(AuditorClean, DrainedNetworkPassesAllChecks) {
  Network net(small_config());
  std::vector<PhasedSource::Phase> phases(1);
  phases[0].pattern = TrafficPattern::uniform();
  phases[0].load_phits = 0.01;
  phases[0].until = 1000;
  net.set_traffic(std::make_unique<PhasedSource>(std::move(phases), 7));
  net.run(20000);
  ASSERT_TRUE(net.drained());
  EXPECT_EQ(net.injected_total(), net.delivered_total());
  const AuditReport rep = audit(net);
  EXPECT_TRUE(rep.ok()) << rep.to_string();
}

/// Flattened stat digest, as in test_determinism.cpp; the golden constants
/// below are the same ones that suite pins, so a divergence here means the
/// auditor perturbed the simulation.
struct Digest {
  u64 generated, injected, delivered, delivered_phits;
  double lat_sum, lat_sum_sq;
  u64 local_mis, global_mis, ring_in, ring_out;
  double mean_hops;
  u64 max_hops;
  bool drained;
};

Digest digest(const Network& net) {
  const Stats& s = net.stats();
  return {s.generated_packets(), s.injected_packets(), s.delivered_packets(),
          s.delivered_phits(),   s.latency().sum,      s.latency().sum_sq,
          s.local_misroutes(),   s.global_misroutes(), s.ring_entries(),
          s.ring_exits(),        s.mean_hops(),        s.max_hops(),
          net.drained()};
}

void expect_digest_eq(const Digest& a, const Digest& b) {
  EXPECT_EQ(a.generated, b.generated);
  EXPECT_EQ(a.injected, b.injected);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.delivered_phits, b.delivered_phits);
  EXPECT_EQ(a.lat_sum, b.lat_sum);
  EXPECT_EQ(a.lat_sum_sq, b.lat_sum_sq);
  EXPECT_EQ(a.local_mis, b.local_mis);
  EXPECT_EQ(a.global_mis, b.global_mis);
  EXPECT_EQ(a.ring_in, b.ring_in);
  EXPECT_EQ(a.ring_out, b.ring_out);
  EXPECT_EQ(a.mean_hops, b.mean_hops);
  EXPECT_EQ(a.max_hops, b.max_hops);
  EXPECT_EQ(a.drained, b.drained);
}

TEST(AuditorClean, GoldenLowDigestUnchangedWithPeriodicAudit) {
  Network net(matrix_config());
  net.enable_audit(512);  // ~78 full audits across the run
  std::vector<PhasedSource::Phase> phases(1);
  phases[0].pattern = TrafficPattern::uniform();
  phases[0].load_phits = 0.01;
  phases[0].until = 2000;
  net.set_traffic(std::make_unique<PhasedSource>(std::move(phases), 12345));
  net.run(40000);
  expect_digest_eq(digest(net),
                   {2667, 2667, 2667, 21336, 0x1.4db28p+18, 0x1.53af67p+25,
                    2, 0, 0, 0, 0x1.5c19b98b7877p+1, 4, true});
}

TEST(AuditorClean, GoldenSaturationDigestUnchangedWithPeriodicAudit) {
  Network net(matrix_config());
  net.enable_audit(256);
  net.set_traffic(std::make_unique<BernoulliSource>(
      TrafficPattern::adversarial(1), 0.7, 12345));
  net.run(3000);
  expect_digest_eq(digest(net),
                   {277320, 184021, 92427, 739416, 0x1.9402fecp+26,
                    0x1.199a89e638p+37, 142220, 147991, 14964, 10268,
                    0x1.0a4501716b2b9p+2, 17, false});
}

TEST(AuditorClean, EnableAuditZeroDisables) {
  Network net(small_config());
  net.enable_audit(4);
  net.enable_audit(0);
  net.run(64);  // would audit (and pass) if still enabled; must not crash
  SUCCEED();
}

// ---------------------------------------------------------------------------
// 2. fault injection: every class caught with an actionable report
// ---------------------------------------------------------------------------

TEST(AuditorMutation, LeakedCreditCaught) {
  auto net = saturated_net();
  bool corrupted = false;
  for (RouterId r = 0; r < net->topo().routers() && !corrupted; ++r) {
    for (auto& out : net->router(r).outputs) {
      if (!out.wired() || net->channel(out.channel).is_ejection()) continue;
      if (out.credits[0] == 0) continue;
      --out.credits[0];  // credit vanishes: capacity can never be restored
      corrupted = true;
      break;
    }
  }
  ASSERT_TRUE(corrupted);
  AuditReport rep;
  InvariantAuditor(*net).check_credit_conservation(rep);
  expect_caught(rep, Invariant::kCreditConservation);
  EXPECT_FALSE(net->check_flow_conservation());  // thin wrapper agrees
}

TEST(AuditorMutation, ForgedCreditCaught) {
  auto net = saturated_net();
  bool corrupted = false;
  for (RouterId r = 0; r < net->topo().routers() && !corrupted; ++r) {
    for (auto& out : net->router(r).outputs) {
      if (!out.wired() || net->channel(out.channel).is_ejection()) continue;
      ++out.credits[0];  // free space that does not exist downstream
      corrupted = true;
      break;
    }
  }
  ASSERT_TRUE(corrupted);
  AuditReport rep;
  InvariantAuditor(*net).check_credit_conservation(rep);
  expect_caught(rep, Invariant::kCreditConservation);
}

TEST(AuditorMutation, DoubleGrantedHeadCaught) {
  auto net = saturated_net();
  PortId port = 0;
  const RouterId r = find_streaming_router(*net, port);
  Router& router = net->router(r);
  const OutputPort& out = router.outputs[port];
  // Clearing head_busy re-offers a mid-transfer head to the allocator —
  // the VCT atomicity bug class.
  router.inputs[out.src_port].head_busy[out.src_vc] = 0;
  AuditReport rep;
  InvariantAuditor(*net).check_vct_atomicity(rep);
  expect_caught(rep, Invariant::kVctAtomicity);
}

TEST(AuditorMutation, WedgedTransferCaught) {
  auto net = saturated_net();
  PortId port = 0;
  const RouterId r = find_streaming_router(*net, port);
  // One extra phit-to-send: the head would hold its output for
  // packet_size + 1 cycles, breaking grant-time atomicity.
  ++net->router(r).outputs[port].phits_left;
  AuditReport rep;
  InvariantAuditor(*net).check_vct_atomicity(rep);
  expect_caught(rep, Invariant::kVctAtomicity);
}

TEST(AuditorMutation, DroppedWorklistEntryCaught) {
  Network net(small_config());  // idle: no router is on the worklist
  net.router(5).buffered_packets = 1;
  // Router 5 now has activity but no worklist entry — exactly the state a
  // lost mark_router_active would produce; its packet would never move.
  AuditReport rep;
  InvariantAuditor(net).check_worklists(rep);
  expect_caught(rep, Invariant::kWorklists);
  EXPECT_FALSE(net.check_worklists());  // thin wrapper agrees
}

TEST(AuditorMutation, RoutableHeadMiscountCaught) {
  auto net = saturated_net();
  ++net->router(0).routable_heads;
  AuditReport rep;
  InvariantAuditor(*net).check_worklists(rep);
  expect_caught(rep, Invariant::kWorklists);
}

TEST(AuditorMutation, PhantomPacketCaught) {
  auto net = saturated_net();
  (void)net->packets().create();  // live packet nobody injected
  AuditReport rep;
  InvariantAuditor(*net).check_packet_conservation(rep);
  expect_caught(rep, Invariant::kPacketConservation);
}

// ---------------------------------------------------------------------------
// escape-ring fault classes
// ---------------------------------------------------------------------------

/// Stuffs `net`'s ring-input FIFO of router r (VC `vc`) with one whole
/// in-ring packet, stamped old enough to clear the wait-graph age gate.
PacketId wedge_ring_head(Network& net, RouterId r, VcId vc) {
  const PacketId id = net.packets().create();
  Packet& pkt = net.packets().get(id);
  pkt.size = static_cast<u16>(net.config().packet_size);
  pkt.in_ring = true;
  pkt.last_progress = 0;
  pkt.dst = 0;
  pkt.dst_router = net.topo().router_of_node(0);
  const PortId port = net.topo().ring_port();
  Router& router = net.router(r);
  router.inputs[port].vcs[vc].push_whole_packet(id, pkt.size);
  ++router.buffered_packets;
  router.buffered_phits += pkt.size;
  router.input_mask[port] |= static_cast<u8>(1u << vc);
  ++router.routable_heads;
  return id;
}

TEST(AuditorMutation, WedgedRingWaitCycleCaught) {
  SimConfig cfg = small_config();
  cfg.deadlock_timeout = 50;  // age gate for the wait graph
  Network net(cfg);
  net.run(100);  // idle: advance the clock past the timeout
  const Network::RingOut& ro = net.ring_out(0);
  for (RouterId r = 0; r < net.topo().routers(); ++r) {
    wedge_ring_head(net, r, 0);
    // Starve every ring VC of the successor: no ride can be granted.
    OutputPort& out = net.router(r).outputs[ro.port];
    for (u32 v = ro.first_vc; v < ro.first_vc + ro.num_vcs; ++v)
      out.credits[v] = 0;
  }
  WaitGraph graph(net);
  graph.build();
  EXPECT_GT(graph.num_edges(), 0u);
  const auto cycle = graph.find_ring_cycle();
  ASSERT_FALSE(cycle.empty());
  EXPECT_NE(WaitGraph::describe(cycle).find("->"), std::string::npos);

  AuditReport rep;
  InvariantAuditor(net).check_wait_graph(rep);
  expect_caught(rep, Invariant::kWaitGraph);
}

TEST(AuditorMutation, SingleStalledRingHeadIsNotACycle) {
  SimConfig cfg = small_config();
  cfg.deadlock_timeout = 50;
  Network net(cfg);
  net.run(100);
  wedge_ring_head(net, 3, 0);
  const Network::RingOut& ro = net.ring_out(3);
  OutputPort& out = net.router(3).outputs[ro.port];
  for (u32 v = ro.first_vc; v < ro.first_vc + ro.num_vcs; ++v)
    out.credits[v] = 0;
  // One starved head is a wait edge, not a wait cycle: no violation.
  AuditReport rep;
  InvariantAuditor(net).check_wait_graph(rep);
  EXPECT_TRUE(rep.ok()) << rep.to_string();
}

TEST(AuditorMutation, OverfilledRingBubbleCaught) {
  Network net(small_config());
  const u32 size = net.config().packet_size;
  const PortId port = net.topo().ring_port();
  for (RouterId r = 0; r < net.topo().routers(); ++r) {
    InputPort& in = net.router(r).inputs[port];
    for (u32 v = 0; v < in.vcs.size(); ++v) {
      while (in.vcs[v].stored_phits() + size <= in.vcs[v].capacity()) {
        const PacketId id = net.packets().create();
        net.packets().get(id).size = static_cast<u16>(size);
        in.vcs[v].push_whole_packet(id, size);
      }
    }
  }
  // Every ring buffer is now full: zero free space, bubble gone.
  AuditReport rep;
  InvariantAuditor(net).check_ring_bubble(rep);
  expect_caught(rep, Invariant::kRingBubble);
}

// ---------------------------------------------------------------------------
// 3. periodic driver abort path (subprocess re-exec via death test)
// ---------------------------------------------------------------------------

TEST(AuditorDeath, PeriodicAuditAbortsWithReportOnCorruption) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        auto net = saturated_net();
        for (RouterId r = 0; r < net->topo().routers(); ++r) {
          auto& outs = net->router(r).outputs;
          bool done = false;
          for (auto& out : outs) {
            if (!out.wired() || net->channel(out.channel).is_ejection())
              continue;
            if (out.credits[0] == 0) continue;
            --out.credits[0];
            done = true;
            break;
          }
          if (done) break;
        }
        net->enable_audit(16);
        net->run(32);
      },
      "credit-conservation");
}

}  // namespace
}  // namespace ofar
