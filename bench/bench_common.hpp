// Shared scaffolding for the figure-reproduction benches: common CLI
// options (network scale, measurement windows, CSV output, thread count),
// per-mechanism configuration, and table helpers.
//
// Every bench accepts:
//   --h N           network radix (paper: 6; default 4 — see EXPERIMENTS.md)
//   --seed S        RNG seed
//   --warmup C      warm-up cycles before the measurement window
//   --measure C     measurement window width
//   --csv-dir D     directory for CSV dumps ("" disables)
//   --threads T     sweep worker threads (0 = hardware concurrency)
//   --metrics-out F       stream telemetry records to F (.jsonl or .csv)
//   --metrics-interval C  cycles between interval snapshots (default 1000)
//   --metrics-full        also dump per-channel / per-VC records
//   --audit               run the invariant auditor every 4096 cycles
//   --audit-interval C    audit every C cycles (implies --audit)
#pragma once

#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/config.hpp"
#include "common/parallel.hpp"
#include "common/table.hpp"
#include "core/experiment.hpp"
#include "stats/sink.hpp"
#include "traffic/pattern.hpp"

namespace ofar::bench {

struct BenchOptions;
inline void dump_csv(const Table& table, const BenchOptions& opts,
                     const std::string& name);

struct BenchOptions {
  u32 h = 4;
  u64 seed = 1;
  RunParams run;
  std::string csv_dir;
  unsigned threads = 0;

  // Telemetry sink shared by every simulation this bench runs (thread-safe;
  // parallel sweep points interleave whole records). Null when --metrics-out
  // was not given. `run.metrics_sink` is wired by the figure drivers per
  // mechanism so each record carries the mechanism label.
  std::shared_ptr<MetricsSink> metrics;
  Cycle metrics_interval = 1'000;
  bool metrics_full = false;

  // Invariant-audit period (0 = off). Mirrored into run.audit_interval for
  // the steady drivers; the transient/burst drivers read it directly.
  Cycle audit_interval = 0;

  static BenchOptions parse(const CommandLine& cli, Cycle warmup_default,
                            Cycle measure_default) {
    BenchOptions o;
    o.h = static_cast<u32>(cli.get_uint("h", 4));
    o.seed = cli.get_uint("seed", 1);
    o.run.warmup = cli.get_uint("warmup", warmup_default);
    o.run.measure = cli.get_uint("measure", measure_default);
    o.csv_dir = cli.get_string("csv-dir", ".");
    o.threads = static_cast<unsigned>(cli.get_uint("threads", 0));
    const std::string metrics_out = cli.get_string("metrics-out", "");
    o.metrics_interval = cli.get_uint("metrics-interval", 1'000);
    o.metrics_full = cli.get_flag("metrics-full");
    if (!metrics_out.empty()) {
      o.metrics = MetricsSink::open(metrics_out);
      if (o.metrics == nullptr)
        std::fprintf(stderr, "warning: could not open %s; telemetry disabled\n",
                     metrics_out.c_str());
    }
    o.run.metrics_sink = o.metrics.get();
    o.run.metrics_interval = o.metrics_interval;
    o.run.metrics_full = o.metrics_full;
    o.audit_interval = cli.get_uint("audit-interval", 0);
    if (cli.get_flag("audit") && o.audit_interval == 0)
      o.audit_interval = 4'096;
    o.run.audit_interval = o.audit_interval;
    return o;
  }

  /// Baseline SimConfig for a mechanism: VC-ordered mechanisms get no ring,
  /// OFAR variants get the physical ring (the paper's default evaluation
  /// setup; Fig. 8 overrides the ring kind explicitly).
  SimConfig config(RoutingKind routing) const {
    SimConfig cfg;
    cfg.h = h;
    cfg.seed = seed;
    cfg.routing = routing;
    cfg.ring = cfg.vc_ordered() ? RingKind::kNone : RingKind::kPhysical;
    return cfg;
  }
};

/// Evenly spaced loads (lo, lo+step, ..., hi], overridable via
/// --min-load/--max-load/--points.
inline std::vector<double> load_grid(const CommandLine& cli, double lo,
                                     double hi, u32 points) {
  lo = cli.get_double("min-load", lo);
  hi = cli.get_double("max-load", hi);
  points = static_cast<u32>(cli.get_uint("points", points));
  std::vector<double> loads;
  for (u32 i = 0; i < points; ++i)
    loads.push_back(lo + (hi - lo) * i / (points > 1 ? points - 1 : 1));
  return loads;
}

/// Rejects unknown CLI keys with a readable message. Returns false on typo.
inline bool reject_unknown(const CommandLine& cli) {
  bool ok = true;
  for (const auto& key : cli.unused_keys()) {
    std::fprintf(stderr, "unknown option --%s\n", key.c_str());
    ok = false;
  }
  return ok;
}

/// One curve of a steady-state figure: a labelled mechanism configuration.
struct MechanismSpec {
  std::string label;
  SimConfig cfg;
};

/// Shared driver for the steady-state figures (Figs. 3, 4, 5, 8, 9): sweeps
/// `loads` for every mechanism, prints the latency (a) and throughput (b)
/// tables, and dumps both as CSV. Saturated points report latency as-is —
/// the paper's plots clip them visually instead.
inline void steady_figure(const std::string& figure, const std::string& title,
                          const BenchOptions& opts,
                          const TrafficPattern& pattern,
                          const std::vector<double>& loads,
                          const std::vector<MechanismSpec>& specs) {
  std::vector<std::string> columns = {"offered_load"};
  for (const auto& spec : specs) columns.push_back(spec.label);

  Table latency(columns);
  Table throughput(columns);
  Table extras({"mechanism", "offered_load", "accepted", "mean_hops",
                "local_mis", "global_mis", "ring_entries", "stalled"});

  // All (mechanism, load) points are independent simulations.
  std::vector<std::vector<SweepPoint>> results(specs.size());
  std::vector<std::function<void()>> jobs;
  for (std::size_t m = 0; m < specs.size(); ++m) {
    jobs.emplace_back([&, m] {
      RunParams run = opts.run;
      run.metrics_label = specs[m].label;  // records name their mechanism
      results[m] = run_load_sweep(specs[m].cfg, pattern, loads, run,
                                  /*threads=*/1);
    });
  }
  run_parallel(jobs, opts.threads);

  for (std::size_t i = 0; i < loads.size(); ++i) {
    std::vector<Table::Cell> lat_row = {loads[i]};
    std::vector<Table::Cell> thr_row = {loads[i]};
    for (std::size_t m = 0; m < specs.size(); ++m) {
      const SteadyResult& r = results[m][i].result;
      lat_row.emplace_back(r.avg_latency);
      thr_row.emplace_back(r.accepted_load);
      extras.add_row({specs[m].label, loads[i], r.accepted_load, r.mean_hops,
                      u64{r.local_misroutes}, u64{r.global_misroutes},
                      u64{r.ring_entries}, u64{r.stalled_packets}});
    }
    latency.add_row(std::move(lat_row));
    throughput.add_row(std::move(thr_row));
  }

  latency.print(title + " — (a) average latency [cycles]");
  throughput.print(title + " — (b) accepted load [phits/(node*cycle)]");
  dump_csv(latency, opts, figure + "_latency");
  dump_csv(throughput, opts, figure + "_throughput");
  dump_csv(extras, opts, figure + "_detail");
}

/// Writes `table` as <csv_dir>/<name>.csv unless csv_dir is empty.
inline void dump_csv(const Table& table, const BenchOptions& opts,
                     const std::string& name) {
  if (opts.csv_dir.empty()) return;
  const std::string path = opts.csv_dir + "/" + name + ".csv";
  if (!table.write_csv(path))
    std::fprintf(stderr, "warning: could not write %s\n", path.c_str());
  else
    std::printf("wrote %s\n", path.c_str());
}

}  // namespace ofar::bench
