#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "common/check.hpp"

namespace ofar {

Table::Table(std::vector<std::string> columns) : columns_(std::move(columns)) {
  OFAR_CHECK(!columns_.empty());
}

void Table::add_row(std::vector<Cell> cells) {
  OFAR_CHECK_MSG(cells.size() == columns_.size(),
                 "row width must match column count");
  rows_.push_back(std::move(cells));
}

std::string Table::format(const Cell& cell) {
  char buf[64];
  if (const auto* s = std::get_if<std::string>(&cell)) return *s;
  if (const auto* d = std::get_if<double>(&cell)) {
    std::snprintf(buf, sizeof buf, "%.4g", *d);
    return buf;
  }
  if (const auto* i = std::get_if<i64>(&cell)) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(*i));
    return buf;
  }
  const auto u = std::get<u64>(cell);
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(u));
  return buf;
}

void Table::print(const std::string& title) const {
  std::vector<std::size_t> width(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c)
    width[c] = columns_[c].size();
  std::vector<std::vector<std::string>> text;
  text.reserve(rows_.size());
  for (const auto& row : rows_) {
    auto& line = text.emplace_back();
    line.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      line.push_back(format(row[c]));
      width[c] = std::max(width[c], line.back().size());
    }
  }
  std::printf("\n== %s ==\n", title.c_str());
  for (std::size_t c = 0; c < columns_.size(); ++c)
    std::printf("%-*s ", static_cast<int>(width[c]), columns_[c].c_str());
  std::printf("\n");
  for (const auto& line : text) {
    for (std::size_t c = 0; c < line.size(); ++c)
      std::printf("%-*s ", static_cast<int>(width[c]), line[c].c_str());
    std::printf("\n");
  }
  std::fflush(stdout);
}

bool Table::write_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  for (std::size_t c = 0; c < columns_.size(); ++c)
    out << (c != 0 ? "," : "") << columns_[c];
  out << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c)
      out << (c != 0 ? "," : "") << format(row[c]);
    out << '\n';
  }
  return static_cast<bool>(out);
}

bool dump_csv(const Table& table, const std::string& dir,
              const std::string& name) {
  if (dir.empty()) return true;
  const std::string path = dir + "/" + name + ".csv";
  if (!table.write_csv(path)) {
    std::fprintf(stderr, "warning: could not write %s\n", path.c_str());
    return false;
  }
  std::printf("wrote %s\n", path.c_str());
  return true;
}

}  // namespace ofar
