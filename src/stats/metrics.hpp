// Opt-in telemetry layer: a registry of named counters/gauges sampled on a
// fixed cycle interval, a wall-clock profiler of the Network::step phases,
// and structured deadlock forensics — all streamed through a MetricsSink
// (see sink.hpp) as JSONL/CSV records.
//
// Contract with the cycle kernel (see DESIGN.md "Observability"):
//
//  - Strictly opt-in. A Network without enable_telemetry() performs zero
//    telemetry work: one null-pointer test in step() selects the plain
//    cycle path, and no telemetry allocation exists.
//  - Read-only with respect to the simulation. Telemetry never draws from
//    the Network's RNG, never mutates router/packet/channel state, and the
//    per-seed stat digests (tests/test_determinism.cpp) are bit-identical
//    with telemetry enabled or disabled.
//  - Bounded overhead. Interval sampling is O(network) once per
//    `interval` cycles; the phase profiler reads the clock only on every
//    `phase_sample_period`-th cycle (counts stay exact, accumulated wall
//    time is a uniform sample); per-cycle stall accounting is a counter
//    increment per blocked head.
#pragma once

#include <chrono>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/phase.hpp"
#include "common/thread_annotations.hpp"
#include "common/types.hpp"

namespace ofar {

class Network;
class MetricsSink;
class Stats;

// ---------------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------------

enum class MetricKind : u8 {
  kCounter,  ///< monotonically non-decreasing total since enable
  kGauge,    ///< instantaneous (or per-interval) sampled value
};

struct MetricDef {
  std::string name;  ///< dotted path, e.g. "link.util.global"
  std::string unit;  ///< human-readable unit, e.g. "fraction", "cycles"
  MetricKind kind = MetricKind::kGauge;
};

/// Flat registry of named metric series. Metrics are defined once (ids are
/// dense and stable), updated by id on the hot path, and snapshotted in
/// definition order for emission. Serial-only as a whole: updates happen in
/// Telemetry::sample / the serial phases, never from shard workers.
class OFAR_SERIAL_ONLY MetricsRegistry {
 public:
  using Id = u32;

  Id define(std::string name, std::string unit, MetricKind kind) {
    defs_.push_back({std::move(name), std::move(unit), kind});
    values_.push_back(0.0);
    return static_cast<Id>(defs_.size() - 1);
  }

  // The hot-path mutators additionally carry the serial_phase capability:
  // the clang thread-safety build proves no shard worker reaches them.
  void set(Id id, double v) OFAR_REQUIRES_SERIAL {
    OFAR_DCHECK(id < values_.size());
    values_[id] = v;
  }
  void add(Id id, double v) OFAR_REQUIRES_SERIAL {
    OFAR_DCHECK(id < values_.size());
    values_[id] += v;
  }
  double value(Id id) const {
    OFAR_DCHECK(id < values_.size());
    return values_[id];
  }

  std::size_t size() const noexcept { return defs_.size(); }
  const MetricDef& def(Id id) const {
    OFAR_DCHECK(id < defs_.size());
    return defs_[id];
  }

  /// Id of the metric named `name`, or kInvalidIndex when absent.
  Id find(const std::string& name) const noexcept {
    for (Id i = 0; i < defs_.size(); ++i)
      if (defs_[i].name == name) return i;
    return kInvalidIndex;
  }

  /// (name, value) pairs in definition order — the payload of one interval
  /// snapshot.
  std::vector<std::pair<std::string, double>> snapshot() const {
    std::vector<std::pair<std::string, double>> out;
    out.reserve(defs_.size());
    for (Id i = 0; i < defs_.size(); ++i)
      out.emplace_back(defs_[i].name, values_[i]);
    return out;
  }

 private:
  std::vector<MetricDef> defs_;
  std::vector<double> values_;
};

// ---------------------------------------------------------------------------
// Kernel phase profiler
// ---------------------------------------------------------------------------

/// The phases of Network::step, in execution order.
enum class SimPhase : u8 {
  kEventDelivery,  ///< phit/credit wheel delivery
  kPolicyTick,     ///< routing-policy per-cycle hook (PB broadcast)
  kTransfers,      ///< crossbar streaming + worklist prune
  kAllocation,     ///< routing decisions + separable allocation
  kInjection,      ///< traffic tick + pending-queue drain
  kWatchdog,       ///< periodic deadlock scan
};
inline constexpr u32 kNumSimPhases = 6;

const char* to_string(SimPhase p) noexcept;

/// Accumulates wall-clock time per kernel phase on a sampling basis: every
/// `sample_period`-th cycle is fully timed (6 clock reads), all others only
/// bump the cycle counter. Invocation counts are exact; accumulated seconds
/// cover only the sampled cycles, and estimated_total_seconds() scales them
/// by the sampling ratio. sample_period == 1 times every cycle;
/// sample_period == 0 disables timing entirely (counts remain).
class PhaseProfiler {
 public:
  explicit PhaseProfiler(u32 sample_period) : period_(sample_period) {}

  // ---- hot-path hooks (called by Network::step, instrumented path) ----
  // A countdown (not `cycle % period`) selects the sampled cycles: the
  // integer divide would cost more than the rest of the disabled-phase
  // bookkeeping combined.
  void start_cycle(Cycle) {
    if (countdown_ != 0 || period_ == 0) {
      timing_ = false;
      countdown_ -= countdown_ != 0 ? 1 : 0;
      return;
    }
    timing_ = true;
    countdown_ = period_ - 1;
    ++sampled_cycles_;
    last_ = clock_ns();
  }
  void phase_done(SimPhase p) {
    if (!timing_) return;
    const u64 t = clock_ns();
    ns_[static_cast<u32>(p)] += t - last_;
    last_ = t;
    if (p == SimPhase::kWatchdog) ++sampled_watchdog_runs_;
  }
  void end_cycle(bool watchdog_ran) {
    ++cycles_;
    watchdog_runs_ += watchdog_ran ? 1 : 0;
  }

  // ---- queries ----
  u64 cycles() const noexcept { return cycles_; }
  u64 sampled_cycles() const noexcept { return sampled_cycles_; }
  u64 invocations(SimPhase p) const noexcept {
    return p == SimPhase::kWatchdog ? watchdog_runs_ : cycles_;
  }
  u64 sampled_invocations(SimPhase p) const noexcept {
    return p == SimPhase::kWatchdog ? sampled_watchdog_runs_
                                    : sampled_cycles_;
  }
  /// Wall-clock seconds accumulated over the *sampled* cycles.
  double seconds(SimPhase p) const noexcept {
    return static_cast<double>(ns_[static_cast<u32>(p)]) * 1e-9;
  }
  /// seconds() scaled to all invocations (the sampling estimate).
  double estimated_total_seconds(SimPhase p) const noexcept {
    const u64 sampled = sampled_invocations(p);
    if (sampled == 0) return 0.0;
    return seconds(p) * static_cast<double>(invocations(p)) /
           static_cast<double>(sampled);
  }
  u32 sample_period() const noexcept { return period_; }

 private:
  static u64 clock_ns() noexcept {
    return static_cast<u64>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  u32 period_;
  u32 countdown_ = 0;  ///< cycles until the next timed cycle
  bool timing_ = false;
  u64 last_ = 0;
  u64 cycles_ = 0;
  u64 sampled_cycles_ = 0;
  u64 watchdog_runs_ = 0;
  u64 sampled_watchdog_runs_ = 0;
  u64 ns_[kNumSimPhases] = {};
};

// ---------------------------------------------------------------------------
// Telemetry: the per-Network orchestrator
// ---------------------------------------------------------------------------

struct TelemetryConfig {
  /// Destination for interval/summary/forensics records. Not owned; must
  /// outlive the Network when set (the destructor's summary safety net
  /// writes through it). May be null, in which case metrics are still
  /// sampled into the registry (tests, in-memory consumers) but nothing is
  /// written.
  MetricsSink* sink = nullptr;
  /// Cycles between interval snapshots.
  Cycle interval = 1'000;
  /// Run identifier stamped on every record (sweeps share one sink).
  std::string label;
  /// Also emit per-channel link utilisation and per-VC occupancy/stall
  /// records every interval (large output; off by default).
  bool full_dump = false;
  /// Phase-profiler sampling period (1 = time every cycle, 0 = counts only).
  /// At 64 the amortised clock cost is a few ns/cycle, invisible even on
  /// mostly-idle drain workloads where cycles themselves are ~100 ns.
  u32 phase_sample_period = 64;
  /// Forensics dumps are rate-limited to this many per run, and each dump
  /// reports at most max_forensic_edges hold/wait edges.
  u32 max_forensic_dumps = 4;
  u32 max_forensic_edges = 64;
};

/// One stalled head and the output it structurally waits for (see
/// Telemetry::on_watchdog_trip).
struct StallEdge {
  RouterId router = 0;
  PortId in_port = 0;
  VcId in_vc = 0;
  PacketId packet = kInvalidPacket;
  NodeId src = 0;
  NodeId dst = 0;
  RouterId dst_router = 0;
  u64 age = 0;             ///< cycles since the packet's last grant
  bool in_ring = false;
  u32 arrived_phits = 0;   ///< phits of the head physically present
  PortId wait_port = kInvalidPort;  ///< minimal-path (or ring) output waited on
  bool wait_busy = false;           ///< that output is streaming another packet
  PacketId held_by = kInvalidPacket;  ///< the packet streaming through it
  u32 wait_credits = 0;    ///< most credits on any candidate VC of wait_port
};

class Telemetry {
 public:
  /// Sizes the per-router/per-VC accumulators against `net`'s built
  /// structure and records the enable cycle as the first interval start.
  /// `net` must outlive this object (Network owns its Telemetry).
  Telemetry(const Network& net, TelemetryConfig cfg);
  ~Telemetry();
  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  const TelemetryConfig& config() const noexcept { return cfg_; }
  MetricsRegistry& registry() noexcept { return reg_; }
  const MetricsRegistry& registry() const noexcept { return reg_; }
  PhaseProfiler& profiler() noexcept { return prof_; }
  const PhaseProfiler& profiler() const noexcept { return prof_; }

  // ---- hot-path hooks (only reached when telemetry is enabled) ----
  // Both hooks may be called concurrently from the sharded kernel's
  // parallel allocation phase, so they only touch the per-(router,port,VC)
  // slot — disjoint across shards because a router belongs to exactly one.
  // The run totals are derived by summation in credit/alloc_stall_cycles()
  // instead of a shared counter, which would race.
  /// A routable head at (r, p, v) produced no grantable route this cycle
  /// (minimal and every eligible non-minimal output busy or out of credits).
  OFAR_PARALLEL_PHASE void note_credit_stall(RouterId r, PortId p, VcId v) {
    ++vc_credit_stall_[vc_index(r, p, v)];
  }
  /// A head requested an output but lost separable allocation this cycle.
  OFAR_PARALLEL_PHASE void note_alloc_stall(RouterId r, PortId p, VcId v) {
    ++vc_alloc_stall_[vc_index(r, p, v)];
  }

  /// Samples the registry (and emits an interval record) when `now` crosses
  /// the interval boundary. Called once per cycle after all phases ran.
  OFAR_SERIAL_ONLY void maybe_sample(const Network& net, Cycle now) {
    if (now != next_sample_) return;
    next_sample_ += cfg_.interval;
    sample(net, now);
  }

  /// Unconditional snapshot at cycle `now`: refreshes every registry value
  /// from the network state and streams an interval record to the sink.
  OFAR_SERIAL_ONLY void sample(const Network& net, Cycle now);

  /// Deadlock forensics: called by the watchdog when at least one packet
  /// exceeded the deadlock timeout. Scans every input-VC head whose packet
  /// is over the timeout and emits the hold/wait chain: where the head sits
  /// (router, port, VC), how old it is, and which output it structurally
  /// waits on (the ring output for in-ring packets, the minimal-path port
  /// otherwise — computed from the topology only, so no RNG is consumed).
  /// Rate-limited to cfg.max_forensic_dumps per run.
  OFAR_SERIAL_ONLY void on_watchdog_trip(const Network& net, u64 stalled,
                                         u64 worst_stall);

  /// Streams the run-end summary record (stats digest, phase profile, stall
  /// totals and the hottest routers). Idempotent; also invoked from the
  /// destructor as a safety net when a driver forgets.
  OFAR_SERIAL_ONLY void write_summary(const Network& net);

  // ---- in-memory queries (tests, drivers) ----
  // Totals are summed on demand (sample-rate paths only, never per cycle);
  // see the note on note_credit_stall above.
  u64 credit_stall_cycles() const noexcept {
    u64 total = 0;
    for (const u64 n : vc_credit_stall_) total += n;
    return total;
  }
  u64 alloc_stall_cycles() const noexcept {
    u64 total = 0;
    for (const u64 n : vc_alloc_stall_) total += n;
    return total;
  }
  u64 samples_taken() const noexcept { return samples_; }
  u64 forensic_dumps() const noexcept { return forensic_dumps_; }
  /// Edges of the most recent forensics dump (empty before the first trip).
  const std::vector<StallEdge>& last_forensics() const noexcept {
    return last_edges_;
  }

 private:
  u32 vc_index(RouterId r, PortId p, VcId v) const noexcept {
    OFAR_DCHECK(static_cast<std::size_t>(r) * ports_ + p + 1 <
                vc_base_.size());
    return vc_base_[static_cast<std::size_t>(r) * ports_ + p] + v;
  }
  void define_metrics();
  void sample_tail(const Network& net, const Stats& st, Cycle now,
                   Cycle width);
  void emit_interval(const Network& net, Cycle now, Cycle width);
  void emit_full_dump(const Network& net, Cycle now, Cycle width);
  void collect_edges(const Network& net, Cycle now,
                     std::vector<StallEdge>& edges, u64& total) const;
  void emit_forensics(const Network& net, Cycle now, u64 stalled,
                      u64 worst_stall, u64 total_edges);

  TelemetryConfig cfg_;
  const Network* net_;  ///< for the destructor's summary safety net
  MetricsRegistry reg_;
  PhaseProfiler prof_;

  // ---- structure-indexed accumulators ----
  u32 ports_ = 0;                 ///< ports per router (uniform)
  std::vector<u32> vc_base_;      ///< (router*ports_ + port) -> flat VC base
  // Shard-local: the stall hooks write only the slot of a (router,port,VC)
  // the calling shard owns.
  OFAR_SHARD_LOCAL std::vector<u64> vc_credit_stall_;  ///< head-cycles blocked
  OFAR_SHARD_LOCAL std::vector<u64> vc_alloc_stall_;   ///< grants lost
  std::vector<u64> prev_phits_;   ///< per channel, channel_phits at last sample
  std::vector<u64> delta_scratch_;  ///< per channel, phits this interval

  Cycle next_sample_ = 0;
  Cycle last_sample_cycle_ = 0;
  u64 samples_ = 0;
  bool prev_sample_idle_ = false;   ///< live==0 && pending==0 at last sample
  u64 prev_sample_generated_ = 0;   ///< generated_packets() at last sample
  u32 forensic_dumps_ = 0;
  std::vector<StallEdge> last_edges_;
  bool summary_written_ = false;

  // Registry ids, grouped as defined in define_metrics().
  MetricsRegistry::Id id_cycle_, id_interval_;
  MetricsRegistry::Id id_live_, id_pending_, id_generated_, id_delivered_;
  MetricsRegistry::Id id_latency_mean_;
  MetricsRegistry::Id id_util_local_, id_util_global_, id_util_ring_,
      id_util_max_;
  MetricsRegistry::Id id_vc_occ_mean_, id_vc_occ_max_;
  MetricsRegistry::Id id_ring_occ_, id_ring_entries_, id_ring_reentries_;
  MetricsRegistry::Id id_mis_local_, id_mis_global_;
  MetricsRegistry::Id id_stall_credit_, id_stall_alloc_;
  MetricsRegistry::Id id_wl_routers_, id_wl_nodes_, id_throttled_;
  MetricsRegistry::Id id_wd_stalled_, id_wd_worst_;
  MetricsRegistry::Id id_phase_secs_[kNumSimPhases];
  MetricsRegistry::Id id_phase_calls_[kNumSimPhases];

  // Hottest entities of the last sample (emitted inline with the record).
  struct Hot {
    ChannelId channel = kInvalidChannel;
    double link_util = 0.0;
    RouterId vc_router = 0;
    PortId vc_port = 0;
    VcId vc_vc = 0;
    double vc_occ = 0.0;
  } hot_;
};

}  // namespace ofar
