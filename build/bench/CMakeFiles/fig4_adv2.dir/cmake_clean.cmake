file(REMOVE_RECURSE
  "CMakeFiles/fig4_adv2.dir/fig4_adv2.cpp.o"
  "CMakeFiles/fig4_adv2.dir/fig4_adv2.cpp.o.d"
  "fig4_adv2"
  "fig4_adv2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_adv2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
