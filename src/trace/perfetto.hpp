// Chrome trace-event JSON export (DESIGN.md §11).
//
// Emits the "JSON Object Format" consumed by chrome://tracing and
// https://ui.perfetto.dev: a {"traceEvents":[...]} object of metadata
// ("M"), complete-span ("X") and instant ("i") events. The tracer maps one
// sampled packet to one Perfetto *process* (pid = injection sequence
// number) and each router the packet visits to a *thread* of that process,
// so the UI renders a packet's journey as stacked per-router tracks with
// the routing-decision provenance in the span args.
//
// Cycles are written as microseconds (1 cycle == 1 us): the UI's time axis
// then reads directly in cycles.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"

namespace ofar::trace {

class ChromeTraceWriter {
 public:
  explicit ChromeTraceWriter(std::string label) : label_(std::move(label)) {}

  /// Metadata: names the process `pid` in the UI's track list.
  void process_name(u64 pid, const std::string& name);
  /// Metadata: names thread `tid` of process `pid`.
  void thread_name(u64 pid, u64 tid, const std::string& name);
  /// Complete ("X") span covering [ts, ts + dur). `args_json` must be a
  /// pre-rendered JSON object ("" for none).
  void complete_event(u64 pid, u64 tid, const std::string& name, Cycle ts,
                      Cycle dur, const std::string& args_json);
  /// Instant ("i") event with thread scope.
  void instant_event(u64 pid, u64 tid, const std::string& name, Cycle ts,
                     const std::string& args_json);

  std::size_t num_events() const noexcept { return events_.size(); }

  /// Writes {"traceEvents":[...],"displayTimeUnit":"ms","otherData":{...}}.
  /// Returns false when the file cannot be created or written.
  bool write_file(const std::string& path) const;

 private:
  std::string label_;
  std::vector<std::string> events_;  ///< pre-rendered event objects
};

}  // namespace ofar::trace
