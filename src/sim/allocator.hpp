// Iterative separable batch allocator (paper §V, resembling Gupta &
// McKeown's crossbar scheduler): per cycle, each input unit requests one
// output for its selected head packet; input-level and output-level LRS
// arbiters match requests over a configurable number of iterations
// (paper uses 3). Grants are per packet ("batch"): the winner streams its
// whole packet before the ports rejoin arbitration.
//
// The allocator object owns reusable scratch buffers — allocation runs for
// every router every cycle, so it must not touch the heap in steady state.
#pragma once

#include <vector>

#include "common/phase.hpp"
#include "common/types.hpp"
#include "routing/routing.hpp"
#include "sim/router.hpp"

namespace ofar {

struct AllocRequest {
  PortId in_port = 0;
  VcId in_vc = 0;
  PacketId packet = kInvalidPacket;
  RouteChoice choice{};
  bool granted = false;
};

// Shard-local: each router owns one allocator instance, and a router is
// only ever advanced by its owning shard, so the scratch arrays below
// are never shared across workers.
class OFAR_SHARD_LOCAL SeparableAllocator {
 public:
  /// `max_ports` = ports per router (scratch sizing).
  explicit SeparableAllocator(u32 max_ports);

  /// Runs the separable allocation over `reqs` (all requests of one router
  /// for this cycle). Marks winning requests granted and updates the
  /// router's LRS arbiter state. At most one grant per input port and per
  /// output port. Parallel-legal: each shard owns one allocator (in its
  /// ShardState) and only passes routers of its own shard.
  OFAR_PARALLEL_PHASE void run(Router& router,
                               std::vector<AllocRequest>& reqs,
                               u32 iterations, Cycle now);

 private:
  std::vector<std::vector<u32>> by_input_;   // request idx per input port
  std::vector<std::vector<u32>> by_output_;  // request idx per output port
  std::vector<u8> matched_in_;
  std::vector<u8> matched_out_;
  std::vector<u32> touched_inputs_;   // input ports with requests this cycle
  std::vector<u32> touched_outputs_;  // output ports forwarded to, stage 2
  std::vector<u32> vc_candidates_;
  std::vector<u32> in_candidates_;
};

}  // namespace ofar
