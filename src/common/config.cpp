#include "common/config.hpp"

#include <sstream>

namespace ofar {

const char* to_string(RoutingKind kind) noexcept {
  switch (kind) {
    case RoutingKind::kMin: return "MIN";
    case RoutingKind::kVal: return "VAL";
    case RoutingKind::kPb: return "PB";
    case RoutingKind::kUgal: return "UGAL";
    case RoutingKind::kPar: return "PAR";
    case RoutingKind::kOfar: return "OFAR";
    case RoutingKind::kOfarL: return "OFAR-L";
  }
  return "?";
}

const char* to_string(RingKind kind) noexcept {
  switch (kind) {
    case RingKind::kNone: return "none";
    case RingKind::kPhysical: return "physical";
    case RingKind::kEmbedded: return "embedded";
  }
  return "?";
}

bool parse_routing_kind(const std::string& text, RoutingKind& out) noexcept {
  if (text == "MIN" || text == "min") out = RoutingKind::kMin;
  else if (text == "VAL" || text == "val") out = RoutingKind::kVal;
  else if (text == "PB" || text == "pb") out = RoutingKind::kPb;
  else if (text == "UGAL" || text == "ugal") out = RoutingKind::kUgal;
  else if (text == "PAR" || text == "par") out = RoutingKind::kPar;
  else if (text == "OFAR" || text == "ofar") out = RoutingKind::kOfar;
  else if (text == "OFAR-L" || text == "ofar-l" || text == "ofarl")
    out = RoutingKind::kOfarL;
  else return false;
  return true;
}

bool parse_ring_kind(const std::string& text, RingKind& out) noexcept {
  if (text == "none") out = RingKind::kNone;
  else if (text == "physical") out = RingKind::kPhysical;
  else if (text == "embedded") out = RingKind::kEmbedded;
  else return false;
  return true;
}

std::string SimConfig::validate() const {
  if (h < 1) return "h must be >= 1";
  if (num_groups() < 2) return "at least 2 groups required";
  if (num_groups() > a() * h + 1)
    return "groups exceeds the maximum a*h + 1 supported by global ports";
  if (packet_size < 1) return "packet_size must be >= 1";
  if (fifo_local < packet_size || fifo_global < packet_size ||
      fifo_injection < packet_size)
    return "VCT requires every FIFO to hold at least one whole packet";
  if (vcs_local < 1 || vcs_global < 1 || vcs_injection < 1)
    return "at least one VC per port class required";
  if (vc_ordered()) {
    // The hop-ordered discipline needs VC = hop level of that link class:
    // up to 3 local hops (l1,l2,l3) and 2 global hops (g1,g2); MIN gets by
    // with 2/1 and PAR's extra source-group hop needs a 4th local VC.
    u32 need_local = 3, need_global = 2;
    if (routing == RoutingKind::kMin) { need_local = 2; need_global = 1; }
    if (routing == RoutingKind::kPar) need_local = 4;
    if (vcs_local < need_local || vcs_global < need_global)
      return "VC-ordered mechanism requires 3 local / 2 global VCs "
             "(2/1 for MIN, 4 local for PAR)";
  } else if (ring == RingKind::kNone) {
    return "OFAR requires an escape ring (physical or embedded)";
  }
  if (ring != RingKind::kNone && ring_stride == 0)
    return "ring_stride must be >= 1";
  if (thresholds.th_min < 0.0 || thresholds.th_min > 1.0)
    return "th_min must be in [0,1]";
  if (allocator_iterations < 1) return "allocator_iterations must be >= 1";
  if (sim_shards < 1) return "sim_shards must be >= 1";
  if (congestion_throttle &&
      !(0.0 <= throttle_off && throttle_off <= throttle_on &&
        throttle_on <= 1.0))
    return "throttle thresholds must satisfy 0 <= off <= on <= 1";
  return {};
}

std::string SimConfig::summary() const {
  std::ostringstream os;
  os << "dragonfly h=" << h << " (p=" << p() << ", a=" << a()
     << ", groups=" << num_groups() << ", routers=" << num_groups() * a()
     << ", nodes=" << num_groups() * a() * p() << ") routing="
     << to_string(routing) << " ring=" << to_string(ring)
     << " vcs=" << vcs_local << "l/" << vcs_global << "g"
     << " seed=" << seed;
  if (sim_shards > 1) os << " shards=" << sim_shards;
  return os.str();
}

}  // namespace ofar
