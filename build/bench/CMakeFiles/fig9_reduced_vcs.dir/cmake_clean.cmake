file(REMOVE_RECURSE
  "CMakeFiles/fig9_reduced_vcs.dir/fig9_reduced_vcs.cpp.o"
  "CMakeFiles/fig9_reduced_vcs.dir/fig9_reduced_vcs.cpp.o.d"
  "fig9_reduced_vcs"
  "fig9_reduced_vcs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_reduced_vcs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
