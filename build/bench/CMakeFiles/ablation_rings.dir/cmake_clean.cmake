file(REMOVE_RECURSE
  "CMakeFiles/ablation_rings.dir/ablation_rings.cpp.o"
  "CMakeFiles/ablation_rings.dir/ablation_rings.cpp.o.d"
  "ablation_rings"
  "ablation_rings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_rings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
