// Fixture: range-for over a std::unordered_* container must be flagged
// even when the container type is hidden behind a typedef/using chain;
// an explicit waiver suppresses the finding.

#include <unordered_map>
#include <vector>

using PendingMap = std::unordered_map<int, int>;
using PendingAlias = PendingMap;

struct Table {
  void scan();
  void scan_waived();
  void scan_vector();
  PendingAlias live_;
  std::vector<int> order_;
};

void Table::scan() {
  for (const auto& kv : live_) {  // expect: unordered-iter
    (void)kv;
  }
}

void Table::scan_waived() {
  for (const auto& kv : live_) {  // lint: allow(unordered-iter)
    (void)kv;
  }
}

void Table::scan_vector() {
  for (int v : order_) {  // fine: deterministic order
    (void)v;
  }
}
