// Experiment orchestrator: executes a flat list of RunPoints (core/spec.hpp)
// across worker threads with a content-addressed result cache and a
// crash-safe resume journal.
//
//  - Scheduling: points are pulled from a shared atomic counter by the
//    common/parallel worker pool (work stealing in the only sense an
//    embarrassingly parallel sweep needs). Each point is an independent
//    simulation with deterministic per-point seeding, so execution order
//    and thread count never change any result.
//  - Caching: a point's result is stored under its canonical content key
//    (point_key). Rerunning a spec whose points are all cached executes
//    zero simulations and just re-emits tables.
//  - Journal/resume: results append to <cache_dir>/journal.jsonl, one
//    flushed line per completed point. SIGINT or a crash mid-sweep loses at
//    most the in-flight points; rerunning the same spec resumes from the
//    journal. Corrupt or truncated lines (the crash tail) are skipped with
//    a warning, never fatal.
//
// The orchestrator owns no output formatting: renderers (bench/presets.cpp,
// ofar_run) turn a RunReport back into tables.
#pragma once

#include <atomic>
#include <string>
#include <vector>

#include "core/spec.hpp"

namespace ofar {

class MetricsSink;

struct OrchestratorOptions {
  /// Directory for the result cache + journal; "" disables caching (every
  /// point executes). Created if missing.
  std::string cache_dir;
  unsigned threads = 0;  ///< total thread budget (0 = hardware concurrency)

  /// Worker threads per simulation (the sharded cycle kernel's
  /// Network::set_sim_threads). The total budget `threads` is split between
  /// point-level parallelism (outer) and intra-simulation parallelism
  /// (inner = sim_threads); outer * inner never exceeds the budget.
  ///  - 0 (auto): prefer the outer level — outer = min(budget, points to
  ///    run), inner = budget / outer. With fewer points than budget the
  ///    spare threads flow into each simulation instead of idling.
  ///  - N >= 1: force inner = min(N, budget), outer = budget / inner.
  /// Execution-only either way: results and cache keys are unchanged by
  /// any split (see DESIGN.md §10).
  unsigned sim_threads = 0;

  // Instrumentation applied to every *executed* point (cache hits ran
  // without it, which is equivalent: both are result-invariant).
  Cycle audit_interval = 0;
  MetricsSink* metrics_sink = nullptr;
  Cycle metrics_interval = 1'000;
  bool metrics_full = false;

  // Packet tracing for executed points (ExperimentCommon trace_* knobs;
  // result- and cache-key-invariant like the rest of the block above).
  // When the run executes more than one point, output paths get a
  // per-point "<case>|<mechanism>|..." + seed tag so parallel points never
  // overwrite each other; a single executed point writes the paths
  // verbatim.
  std::string trace_out;          ///< Chrome trace-event JSON path
  std::string trace_links;        ///< per-link util/stall series path
  u32 trace_sample = 64;          ///< trace 1-in-N packets; <=1 traces all
  Cycle trace_link_bucket = 256;  ///< link-series bucket width, cycles
  u32 trace_flight_depth = 64;    ///< flight-recorder events/router

  // Mid-point checkpoint/restart (core/checkpoint.hpp) for steady points:
  // each executing point snapshots its full simulation state to
  // <checkpoint_dir>/<point key>.ckpt every checkpoint_interval cycles and
  // resumes from it after a crash or SIGINT — complementing the journal,
  // which only resumes at completed-point granularity. The file is deleted
  // when the point completes. "" disables. Result-invariant: a resumed
  // point is bit-identical to an uninterrupted one.
  std::string checkpoint_dir;
  Cycle checkpoint_interval = 100'000;

  /// Cooperative stop (e.g. SIGINT): checked before each point starts;
  /// in-flight points finish and journal, the rest stay missing.
  const std::atomic<bool>* stop_flag = nullptr;
  /// Stop scheduling new points once this many have *started* executing
  /// (0 = no limit). Deterministic interruption for tests and CI.
  std::size_t stop_after = 0;
};

/// Result slot for one point. Exactly one of steady/transient/burst is
/// meaningful, selected by the point's kind.
struct PointOutcome {
  bool done = false;  ///< result available (from cache or executed)
  bool from_cache = false;
  std::string key;  ///< canonical content key (32 hex digits)
  SteadyResult steady;
  TransientResult transient;
  BurstResult burst;
};

struct RunReport {
  std::vector<PointOutcome> outcomes;  ///< parallel to the input points
  std::size_t hits = 0;      ///< served from the cache
  std::size_t executed = 0;  ///< simulated by this run
  std::size_t missing = 0;   ///< never started (stop flag / stop_after)
  bool interrupted = false;  ///< a stop condition fired
  std::string journal_path;  ///< "" when caching is disabled

  bool complete() const noexcept { return missing == 0; }
};

/// Runs every point, consulting and updating the cache. Thread-safe with
/// respect to itself only through distinct cache_dirs; two concurrent
/// orchestrators sharing a journal are not supported.
RunReport run_points(const std::vector<RunPoint>& points,
                     const OrchestratorOptions& opts);

/// One journal line for a completed point: {"v":..,"key":..,"kind":..,
/// "result":{...}} with doubles in shortest round-trip form, so a parsed
/// result is bit-identical to the one that was written.
std::string journal_line(const RunPoint& point, const PointOutcome& outcome);

/// Parses one journal line. Returns false (with a reason) on any
/// malformed, truncated or version-mismatched line.
bool parse_journal_line(const std::string& line, std::string& key,
                        RunKind& kind, PointOutcome& outcome,
                        std::string& error);

/// Order-insensitive digest over the (key -> result) set of a report's
/// completed points: two runs of the same spec — cold, cached, resumed,
/// any thread count — produce the same digest. 32 hex digits.
std::string results_digest(const std::vector<RunPoint>& points,
                           const RunReport& report);

}  // namespace ofar
