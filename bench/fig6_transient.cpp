// Fig. 6 reproduction: latency evolution under transient traffic. The
// network is warmed with pattern A; at cycle 0 (relative) the pattern
// switches to B, and each delivered packet's latency is accounted to the
// cycle it was *sent* (paper §VI-B). Three transitions, as in the paper:
//
//   (1) UN -> ADV+2      @ 0.14 phits/(node*cycle)
//   (2) ADV+2 -> UN      @ 0.14
//   (3) ADV+2 -> ADV+h   @ 0.12 (lower: ADV+h at 0.14 saturates PB)
//
// Expected shape: all mechanisms converge instantly on (2); OFAR adapts
// almost instantaneously on (1) and (3) while PB shows an adaptation
// period (its congestion information is remote and delayed).
//
// Shim over the "fig6" preset (presets.cpp).
#include "presets.hpp"

int main(int argc, char** argv) {
  return ofar::bench::run_preset_main("fig6", argc, argv);
}
