// Fixture: wall-clock reads must be flagged everywhere (simulation state
// must advance on Network::now()), including when the clock type is
// laundered through a using-alias.

#include <chrono>

using WallClock = std::chrono::steady_clock;

struct Timer {
  void tick();
};

void Timer::tick() {
  auto a = std::chrono::steady_clock::now();  // expect: wall-clock
  auto b = WallClock::now();                  // expect: wall-clock
  (void)a;
  (void)b;
}
