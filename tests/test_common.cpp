// Unit tests for src/common: RNG determinism and distribution sanity, CLI
// parsing, table formatting/CSV, config validation, parallel runner, and the
// check.hpp invariant macros (abort paths via subprocess death tests).
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <set>

#include "common/check.hpp"
#include "common/cli.hpp"
#include "common/config.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"

namespace ofar {
namespace {

// ---------------------------------------------------------------- rng ----

TEST(Rng, DeterministicPerSeed) {
  Rng a(42), b(42), c(43);
  bool diverged = false;
  for (int i = 0; i < 100; ++i) {
    const u64 va = a();
    EXPECT_EQ(va, b());
    if (va != c()) diverged = true;
  }
  EXPECT_TRUE(diverged);
}

TEST(Rng, BelowStaysInRange) {
  Rng r(7);
  for (u32 bound : {1u, 2u, 3u, 17u, 1000u}) {
    for (int i = 0; i < 2000; ++i) EXPECT_LT(r.below(bound), bound);
  }
}

TEST(Rng, BelowCoversAllValues) {
  Rng r(11);
  std::set<u32> seen;
  for (int i = 0; i < 5000; ++i) seen.insert(r.below(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, RangeInclusive) {
  Rng r(5);
  bool lo_hit = false, hi_hit = false;
  for (int i = 0; i < 5000; ++i) {
    const u32 v = r.range(3, 6);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 6u);
    lo_hit |= v == 3;
    hi_hit |= v == 6;
  }
  EXPECT_TRUE(lo_hit);
  EXPECT_TRUE(hi_hit);
}

TEST(Rng, UniformMeanNearHalf) {
  Rng r(123);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, ChanceMatchesProbability) {
  Rng r(9);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += r.chance(0.25);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
}

TEST(Rng, UniformWithinUnitInterval) {
  Rng r(77);
  for (int i = 0; i < 10000; ++i) {
    const double v = r.uniform();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

// ---------------------------------------------------------------- cli ----

TEST(CommandLine, ParsesSeparateAndEqualsForms) {
  const char* argv[] = {"prog", "positional", "--alpha", "3", "--beta=0.5",
                        "--flag"};
  CommandLine cli(6, argv);
  EXPECT_EQ(cli.get_int("alpha", 0), 3);
  EXPECT_DOUBLE_EQ(cli.get_double("beta", 0.0), 0.5);
  EXPECT_TRUE(cli.get_bool("flag", false));
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "positional");
}

TEST(CommandLine, GreedyValueConsumption) {
  // A non-"--" token after a key is consumed as its value; bare flags must
  // therefore come last or use the --flag=true form (documented grammar).
  const char* argv[] = {"prog", "--flag", "tail"};
  CommandLine cli(3, argv);
  EXPECT_EQ(cli.get_string("flag", ""), "tail");
  EXPECT_TRUE(cli.positional().empty());
}

TEST(CommandLine, FallbacksWhenAbsent) {
  const char* argv[] = {"prog"};
  CommandLine cli(1, argv);
  EXPECT_EQ(cli.get_int("missing", -7), -7);
  EXPECT_EQ(cli.get_string("missing", "dflt"), "dflt");
  EXPECT_FALSE(cli.has("missing"));
}

TEST(CommandLine, TracksUnusedKeys) {
  const char* argv[] = {"prog", "--used", "1", "--typo", "2"};
  CommandLine cli(5, argv);
  (void)cli.get_int("used", 0);
  const auto unused = cli.unused_keys();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

TEST(CommandLine, BoolParsing) {
  const char* argv[] = {"prog", "--a=true", "--b=0", "--c=yes", "--d=no"};
  CommandLine cli(5, argv);
  EXPECT_TRUE(cli.get_bool("a", false));
  EXPECT_FALSE(cli.get_bool("b", true));
  EXPECT_TRUE(cli.get_bool("c", false));
  EXPECT_FALSE(cli.get_bool("d", true));
}

// -------------------------------------------------------------- table ----

TEST(Table, FormatsCellsAndWritesCsv) {
  Table t({"name", "value", "count"});
  t.add_row({std::string("row1"), 1.5, u64{42}});
  t.add_row({std::string("row2"), 0.25, u64{7}});
  EXPECT_EQ(t.num_rows(), 2u);

  const std::string path = "/tmp/ofar_table_test.csv";
  ASSERT_TRUE(t.write_csv(path));
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "name,value,count");
  std::getline(in, line);
  EXPECT_EQ(line, "row1,1.5,42");
  std::remove(path.c_str());
}

TEST(Table, FormatVariants) {
  EXPECT_EQ(Table::format(Table::Cell{std::string("x")}), "x");
  EXPECT_EQ(Table::format(Table::Cell{i64{-3}}), "-3");
  EXPECT_EQ(Table::format(Table::Cell{u64{12}}), "12");
  EXPECT_EQ(Table::format(Table::Cell{2.0}), "2");
}

// ------------------------------------------------------------- config ----

TEST(SimConfig, DefaultsValidate) {
  SimConfig cfg;
  EXPECT_EQ(cfg.validate(), "");
  EXPECT_EQ(cfg.p(), cfg.h);
  EXPECT_EQ(cfg.a(), 2 * cfg.h);
  EXPECT_EQ(cfg.num_groups(), cfg.a() * cfg.h + 1);
}

TEST(SimConfig, PaperScaleNumbersMatch) {
  // §V: h=6 -> 73 groups of 12 routers = 876 routers, 5256 nodes.
  SimConfig cfg;
  cfg.h = 6;
  EXPECT_EQ(cfg.num_groups(), 73u);
  EXPECT_EQ(cfg.num_groups() * cfg.a(), 876u);
  EXPECT_EQ(cfg.num_groups() * cfg.a() * cfg.p(), 5256u);
}

TEST(SimConfig, RejectsTooSmallFifos) {
  SimConfig cfg;
  cfg.fifo_local = 4;  // smaller than the 8-phit packet
  EXPECT_NE(cfg.validate(), "");
}

TEST(SimConfig, OfarRequiresEscapeRing) {
  SimConfig cfg;
  cfg.routing = RoutingKind::kOfar;
  cfg.ring = RingKind::kNone;
  EXPECT_NE(cfg.validate(), "");
}

TEST(SimConfig, OrderedMechanismsNeedEnoughVcs) {
  SimConfig cfg;
  cfg.routing = RoutingKind::kVal;
  cfg.ring = RingKind::kNone;
  cfg.vcs_local = 2;  // VAL needs 3
  EXPECT_NE(cfg.validate(), "");
  cfg.routing = RoutingKind::kMin;  // MIN only needs 2
  EXPECT_EQ(cfg.validate(), "");
}

TEST(SimConfig, RoutingKindRoundTrip) {
  for (RoutingKind k :
       {RoutingKind::kMin, RoutingKind::kVal, RoutingKind::kPb,
        RoutingKind::kUgal, RoutingKind::kOfar, RoutingKind::kOfarL}) {
    RoutingKind parsed;
    ASSERT_TRUE(parse_routing_kind(to_string(k), parsed));
    EXPECT_EQ(parsed, k);
  }
  RoutingKind dummy;
  EXPECT_FALSE(parse_routing_kind("bogus", dummy));
}

TEST(SimConfig, RingKindRoundTrip) {
  for (RingKind k :
       {RingKind::kNone, RingKind::kPhysical, RingKind::kEmbedded}) {
    RingKind parsed;
    ASSERT_TRUE(parse_ring_kind(to_string(k), parsed));
    EXPECT_EQ(parsed, k);
  }
}

// -------------------------------------------------------------- check ----

// Death tests run the failing statement in a re-executed subprocess
// ("threadsafe" style), so the abort genuinely fires and the stderr report
// is matched without killing this test binary.

TEST(Check, PassingConditionsAreNoOps) {
  int evaluations = 0;
  OFAR_CHECK(++evaluations == 1);
  OFAR_CHECK_MSG(++evaluations == 2, "never printed");
  EXPECT_EQ(evaluations, 2);
}

TEST(CheckDeath, CheckAbortsWithExpressionAndLocation) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const int x = 3;
  EXPECT_DEATH(OFAR_CHECK(x == 4),
               "OFAR_CHECK failed: x == 4 at .*test_common\\.cpp");
}

TEST(CheckDeath, CheckMsgAppendsTheMessage) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(OFAR_CHECK_MSG(false, "queue overflowed"),
               "OFAR_CHECK failed: false at .* — queue overflowed");
}

#ifndef NDEBUG

TEST(CheckDeath, DcheckAbortsInCheckedBuilds) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(OFAR_DCHECK(1 + 1 == 3), "OFAR_CHECK failed: 1 \\+ 1 == 3");
  EXPECT_DEATH(OFAR_DCHECK_MSG(false, "dcheck message"),
               "OFAR_CHECK failed: false at .* — dcheck message");
}

#else

TEST(Check, DcheckDoesNotEvaluateInReleaseBuilds) {
  // The release definition keeps the operands inside unevaluated sizeof:
  // still parsed and type-checked (a stale member name breaks the NDEBUG
  // build), but never executed.
  int evaluations = 0;
  OFAR_DCHECK(++evaluations > 0);
  OFAR_DCHECK_MSG(++evaluations > 0, "unused");
  EXPECT_EQ(evaluations, 0);
  OFAR_DCHECK(false);  // would abort in a checked build
  OFAR_DCHECK_MSG(false, "ignored");
}

#endif

// ----------------------------------------------------------- parallel ----

TEST(Parallel, RunsEveryJobExactlyOnce) {
  std::vector<std::atomic<int>> hits(64);
  std::vector<std::function<void()>> jobs;
  for (int i = 0; i < 64; ++i)
    jobs.emplace_back([&hits, i] { hits[i].fetch_add(1); });
  run_parallel(jobs, 4);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Parallel, ParallelForCoversRange) {
  std::atomic<std::size_t> sum{0};
  parallel_for(100, [&](std::size_t i) { sum += i; }, 3);
  EXPECT_EQ(sum.load(), 4950u);
}

TEST(Parallel, SequentialFallback) {
  int counter = 0;
  std::vector<std::function<void()>> jobs;
  for (int i = 0; i < 5; ++i) jobs.emplace_back([&counter] { ++counter; });
  run_parallel(jobs, 1);
  EXPECT_EQ(counter, 5);
}

TEST(Parallel, ShardPoolRunsEveryIndexExactlyOncePerPhase) {
  ShardPool pool(4);
  EXPECT_EQ(pool.threads(), 4u);
  std::vector<std::atomic<int>> hits(13);
  // Many phases through one pool: reuse must not double-run or skip an
  // index, and the return from parallel_phase is a full barrier.
  for (int phase = 0; phase < 50; ++phase) {
    pool.parallel_phase(13, [&](u32 i) { hits[i].fetch_add(1); });
    for (u32 i = 0; i < 13; ++i)
      ASSERT_EQ(hits[i].load(), phase + 1) << "phase " << phase;
  }
}

TEST(Parallel, ShardPoolHandlesFewerShardsThanThreads) {
  ShardPool pool(8);
  std::atomic<int> hits{0};
  pool.parallel_phase(3, [&](u32) { hits.fetch_add(1); });
  EXPECT_EQ(hits.load(), 3);
  pool.parallel_phase(0, [&](u32) { hits.fetch_add(1); });
  EXPECT_EQ(hits.load(), 3);
}

TEST(Parallel, ShardPoolSingleThreadRunsInline) {
  ShardPool pool(1);
  std::vector<u32> order;
  pool.parallel_phase(5, [&](u32 i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<u32>{0, 1, 2, 3, 4}));
}

}  // namespace
}  // namespace ofar
