#include "stats/timeseries.hpp"

#include "stats/sink.hpp"

namespace ofar {

void TimeSeries::dump_csv(std::FILE* f, const std::string& label) const {
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const Bucket& b = buckets_[i];
    if (b.count == 0) continue;
    std::fprintf(f, "%s,%llu,%.17g,%llu\n", label.c_str(),
                 static_cast<unsigned long long>(bucket_mid(i)), b.mean(),
                 static_cast<unsigned long long>(b.count));
  }
}

void TimeSeries::dump_jsonl(std::FILE* f, const std::string& label) const {
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const Bucket& b = buckets_[i];
    if (b.count == 0) continue;
    JsonWriter w;
    w.begin_object();
    w.key("label").value(label);
    w.key("cycle").value(static_cast<u64>(bucket_mid(i)));
    w.key("mean").value(b.mean());
    w.key("count").value(b.count);
    w.end_object();
    std::fprintf(f, "%s\n", w.str().c_str());
  }
}

}  // namespace ofar
