// ofar_run: the unified experiment driver. One binary runs any figure
// preset or any declarative JSON spec through the orchestrator — with the
// content-addressed result cache ON by default (.ofar-cache), so rerunning
// an experiment whose points are all cached executes zero simulations, and
// an interrupted sweep (SIGINT, crash, --stop-after) resumes from the
// journal on the next invocation.
//
//   ofar_run --spec examples/fig3.json       run a JSON spec
//   ofar_run --preset fig3                   run a registered preset
//   ofar_run --list                          list presets
//
// Shared flags (see bench_common.hpp): --csv-dir, --threads, --sim-threads,
// --cache-dir, --no-cache, --stop-after, --metrics-*, --audit*, --trace-*.
// Preset runs additionally accept the preset's historical flags (--h,
// --seed, --warmup, ...); spec runs take the experiment shape from the
// JSON file instead.
#include <cstdio>

#include "presets.hpp"

namespace {

constexpr const char* kDefaultCacheDir = ".ofar-cache";

void usage() {
  std::printf(
      "usage:\n"
      "  ofar_run --spec FILE   [--csv-dir D] [--threads T] [--sim-threads N]\n"
      "                         [--cache-dir D]\n"
      "                         [--no-cache] [--stop-after N] [--metrics-out F]\n"
      "                         [--trace-out F] [--trace-links F]\n"
      "                         [--trace-sample N]\n"
      "  ofar_run --preset NAME [preset flags...]\n"
      "  ofar_run --list\n"
      "\n"
      "The result cache defaults to %s; identical points are served\n"
      "from the journal without simulating. Interrupted runs (SIGINT or\n"
      "--stop-after) resume on the next identical invocation.\n",
      kDefaultCacheDir);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ofar;
  using namespace ofar::bench;
  CommandLine cli(argc, argv);

  if (cli.get_flag("help")) {
    usage();
    return 0;
  }
  if (cli.get_flag("list")) {
    std::printf("presets:\n");
    for (const auto& p : presets())
      std::printf("  %-22s %s\n", p.name, p.summary);
    std::printf("or run a declarative spec with --spec FILE "
                "(see examples/*.json)\n");
    return 0;
  }

  const std::string preset = cli.get_string("preset", "");
  const std::string spec_path = cli.get_string("spec", "");
  if (!preset.empty() && !spec_path.empty()) {
    std::fprintf(stderr, "error: --preset and --spec are exclusive\n");
    return 1;
  }
  if (!preset.empty())
    return run_preset_main(preset, argc, argv, kDefaultCacheDir);
  if (spec_path.empty()) {
    usage();
    return 1;
  }

  ExperimentSpec spec;
  std::string error;
  if (!spec_from_file(spec_path, spec, error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }

  // Shared execution flags; the experiment shape (h, seeds, windows, ...)
  // comes from the spec file, so the bench defaults here are inert.
  BenchOptions opts = BenchOptions::parse(cli, 0, 0);
  if (!reject_unknown(cli)) return 1;
  if (opts.cache_dir.empty() && !opts.no_cache)
    opts.cache_dir = kDefaultCacheDir;
  opts.stop_flag = install_sigint_stop();

  std::vector<PresetUnit> units(1);
  units[0].points = spec.expand();
  units[0].spec = std::move(spec);

  const std::string banner = units[0].spec.name + " (" +
                             to_string(units[0].spec.kind) + ", " +
                             std::to_string(units[0].points.size()) +
                             " points) from " + spec_path + "\n";
  return run_units(units, opts, banner);
}
