// Thread-parallel job runner for parameter sweeps.
//
// Each simulation point is an independent job (own network, own RNG), so
// sweeps are embarrassingly parallel. On a single-core host this degrades
// gracefully to sequential execution.
#pragma once

#include <functional>
#include <vector>

#include "common/types.hpp"

namespace ofar {

/// Runs `jobs` functions, at most `threads` concurrently (0 = hardware
/// concurrency). Jobs may run in any order; exceptions escaping a job
/// terminate the process (jobs are expected to handle their own errors).
void run_parallel(const std::vector<std::function<void()>>& jobs,
                  unsigned threads = 0);

/// Convenience: invokes fn(i) for i in [0, count) in parallel.
void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn,
                  unsigned threads = 0);

}  // namespace ofar
