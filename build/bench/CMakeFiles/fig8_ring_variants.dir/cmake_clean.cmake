file(REMOVE_RECURSE
  "CMakeFiles/fig8_ring_variants.dir/fig8_ring_variants.cpp.o"
  "CMakeFiles/fig8_ring_variants.dir/fig8_ring_variants.cpp.o.d"
  "fig8_ring_variants"
  "fig8_ring_variants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_ring_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
