#include "verify/invariant_auditor.hpp"

#include <cstdarg>
#include <cstdio>

#include "sim/flat_state.hpp"
#include "sim/network.hpp"
#include "stats/sink.hpp"
#include "verify/wait_graph.hpp"

namespace ofar::verify {

namespace {

// Per-report cap: a corrupted state typically breaks the same invariant at
// many sites; the first few localise the bug, the rest just flood stderr.
constexpr std::size_t kMaxViolations = 32;

std::string format(const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  return buf;
}

}  // namespace

const char* to_string(Invariant inv) noexcept {
  switch (inv) {
    case Invariant::kCreditConservation: return "credit-conservation";
    case Invariant::kPacketConservation: return "packet-conservation";
    case Invariant::kVctAtomicity: return "vct-atomicity";
    case Invariant::kWorklists: return "worklists";
    case Invariant::kRingBubble: return "ring-bubble";
    case Invariant::kWaitGraph: return "wait-graph";
  }
  return "?";
}

bool AuditReport::has(Invariant inv) const noexcept {
  for (const Violation& v : violations)
    if (v.invariant == inv) return true;
  return false;
}

std::string AuditReport::to_string() const {
  std::string out = format("invariant audit at cycle %llu: ",
                           static_cast<unsigned long long>(cycle));
  if (ok()) {
    out += format("all %u checks passed\n", checks_run);
    return out;
  }
  out += format("%llu violation(s) across %u checks\n",
                static_cast<unsigned long long>(violations.size() +
                                                suppressed),
                checks_run);
  for (const Violation& v : violations) {
    out += "  [";
    out += ofar::verify::to_string(v.invariant);
    out += "] ";
    out += v.detail;
    out += '\n';
  }
  if (suppressed > 0)
    out += format("  ... %llu further violation(s) suppressed\n",
                  static_cast<unsigned long long>(suppressed));
  return out;
}

std::string AuditReport::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("cycle").value(static_cast<u64>(cycle));
  w.key("checks_run").value(checks_run);
  w.key("ok").value(ok());
  w.key("suppressed").value(suppressed);
  w.key("violations").begin_array();
  for (const Violation& v : violations) {
    w.begin_object();
    w.key("invariant").value(ofar::verify::to_string(v.invariant));
    w.key("detail").value(v.detail);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

void InvariantAuditor::add(AuditReport& rep, Invariant inv,
                           std::string detail) const {
  if (rep.violations.size() >= kMaxViolations) {
    ++rep.suppressed;
    return;
  }
  rep.violations.push_back({inv, std::move(detail)});
}

AuditReport InvariantAuditor::run_all() const {
  AuditReport rep;
  rep.cycle = net_.now();
  check_credit_conservation(rep);
  check_packet_conservation(rep);
  check_vct_atomicity(rep);
  check_worklists(rep);
  check_ring_bubble(rep);
  check_wait_graph(rep);
  return rep;
}

// ---------------------------------------------------------------------------
// credit conservation (VCT flow control, paper §V)
// ---------------------------------------------------------------------------
//
// For every non-ejection (channel, VC) the downstream buffer capacity is
// partitioned at all times between: credits held upstream, phits on the
// wire, credits on the wire, phits stored downstream, and the unsent
// remainder of an active transfer (reserved whole-packet at grant).
void InvariantAuditor::check_credit_conservation(AuditReport& rep) const {
  ++rep.checks_run;
  const std::size_t num_ch = net_.num_channels();
  std::vector<std::vector<u32>> wire_phits(num_ch);
  std::vector<std::vector<u32>> wire_credits(num_ch);
  for (ChannelId c = 0; c < num_ch; ++c) {
    if (!net_.channel_wired(c)) continue;  // trimmed global slots
    const Channel ch = net_.channel(c);
    // Unbuilt source router: no credits bound, so nothing can be in flight
    // on this channel and the per-VC tallies stay empty.
    const std::size_t vcs =
        net_.router_built(ch.src_router)
            ? net_.routers_[ch.src_router].outputs[ch.src_port].credits.size()
            : 0;
    wire_phits[c].assign(vcs, 0);
    wire_credits[c].assign(vcs, 0);
  }
  for (const auto& slot : net_.phit_wheel_)
    for (const Network::PhitEvent& e : slot) ++wire_phits[e.ch][e.vc];
  for (const auto& slot : net_.credit_wheel_)
    for (const Network::CreditEvent& e : slot) ++wire_credits[e.ch][e.vc];

  for (ChannelId c = 0; c < num_ch; ++c) {
    if (!net_.channel_wired(c)) continue;
    const Channel ch = net_.channel(c);
    if (ch.is_ejection()) continue;  // sink credits are modelled as infinite
    if (!net_.router_built(ch.src_router)) continue;  // no credit state yet
    const OutputPort& out = net_.routers_[ch.src_router].outputs[ch.src_port];
    // Built source, unbuilt destination: phits may be on the wire but none
    // can be stored downstream yet (delivery builds the destination).
    const bool dst_built = net_.router_built(ch.dst_router);
    for (std::size_t v = 0; v < out.credits.size(); ++v) {
      const u32 stored =
          dst_built ? HeadView(net_.routers_[ch.dst_router].inputs[ch.dst_port])
                          .stored_phits(static_cast<VcId>(v))
                    : 0;
      const u32 unsent =
          out.busy() && out.active_vc == v ? out.phits_left : 0;
      const u64 total = u64{out.credits[v]} + wire_phits[c][v] +
                        wire_credits[c][v] + stored + unsent;
      if (total != out.credit_cap[v]) {
        add(rep, Invariant::kCreditConservation,
            format("channel %u (r%u.p%u -> r%u.p%u) vc %zu: credits=%u + "
                   "wire_phits=%u + wire_credits=%u + stored=%u + unsent=%u "
                   "= %llu, expected capacity %u",
                   c, ch.src_router, static_cast<u32>(ch.src_port),
                   ch.dst_router, static_cast<u32>(ch.dst_port), v,
                   out.credits[v], wire_phits[c][v], wire_credits[c][v],
                   stored, unsent, static_cast<unsigned long long>(total),
                   out.credit_cap[v]));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// packet conservation
// ---------------------------------------------------------------------------
//
// Lifetime totals (never reset by Stats measurement windows): every injected
// packet is live until delivered, so live == injected − delivered, and the
// pool's liveness bitmap must agree with its own counter.
void InvariantAuditor::check_packet_conservation(AuditReport& rep) const {
  ++rep.checks_run;
  const u64 injected = net_.injected_total_;
  const u64 delivered = net_.delivered_total_;
  const u64 live = net_.pool_.live_count();
  if (delivered > injected || live != injected - delivered) {
    add(rep, Invariant::kPacketConservation,
        format("pool holds %llu live packets, but injected %llu - "
               "delivered %llu = %llu should be in flight",
               static_cast<unsigned long long>(live),
               static_cast<unsigned long long>(injected),
               static_cast<unsigned long long>(delivered),
               static_cast<unsigned long long>(injected - delivered)));
  }
  u64 bitmap_live = 0;
  net_.pool_.for_each_live([&](PacketId, const Packet&) { ++bitmap_live; });
  if (bitmap_live != live) {
    add(rep, Invariant::kPacketConservation,
        format("PacketPool bitmap marks %llu packets live, counter says "
               "%llu",
               static_cast<unsigned long long>(bitmap_live),
               static_cast<unsigned long long>(live)));
  }
}

// ---------------------------------------------------------------------------
// VCT atomicity
// ---------------------------------------------------------------------------
//
// A grant at cycle t sets last_progress = t and phits_left = size; the
// advance pass then sends exactly one phit per cycle at t+1, t+2, ....
// Between cycles (now = N means cycles 0..N−1 executed) an active transfer
// therefore satisfies  size − phits_left == (N−1) − last_progress  — the
// head occupies its output for exactly packet_size cycles, no more, no
// less, and all transfer-tracking state must agree on which head that is.
void InvariantAuditor::check_vct_atomicity(AuditReport& rep) const {
  ++rep.checks_run;
  const Cycle now = net_.now_;
  for (const Router& r : net_.routers_) {
    u32 busy_ports = 0;
    for (PortId port = 0; port < r.outputs.size(); ++port) {
      const OutputPort& out = r.outputs[port];
      const bool mask_bit = (r.active_out_mask >> port) & 1u;
      if (out.busy() != mask_bit) {
        add(rep, Invariant::kVctAtomicity,
            format("r%u.p%u: active_out_mask bit %u but output %s busy",
                   r.id, static_cast<u32>(port), mask_bit ? 1u : 0u,
                   out.busy() ? "is" : "is not"));
      }
      if (!out.busy()) continue;
      ++busy_ports;
      if (!net_.pool_.is_live(out.active)) {
        add(rep, Invariant::kVctAtomicity,
            format("r%u.p%u: active transfer references dead packet %u",
                   r.id, static_cast<u32>(port), out.active));
        continue;
      }
      const Packet& pkt = net_.pool_.get(out.active);
      const HeadView in(r.inputs[out.src_port]);
      if (out.src_vc >= in.num_vcs() || in.empty(out.src_vc) ||
          in.head(out.src_vc) != out.active) {
        add(rep, Invariant::kVctAtomicity,
            format("r%u.p%u: transfer source r%u.p%uv%u does not hold "
                   "packet %u at its head",
                   r.id, static_cast<u32>(port), r.id,
                   static_cast<u32>(out.src_port),
                   static_cast<u32>(out.src_vc), out.active));
        continue;
      }
      if (!in.head_in_flight(out.src_vc)) {
        add(rep, Invariant::kVctAtomicity,
            format("r%u.p%uv%u: head packet %u is streaming to p%u but "
                   "head_busy is clear — the head could be granted twice",
                   r.id, static_cast<u32>(out.src_port),
                   static_cast<u32>(out.src_vc), out.active,
                   static_cast<u32>(port)));
      }
      if (out.phits_left == 0 || out.phits_left > pkt.size) {
        add(rep, Invariant::kVctAtomicity,
            format("r%u.p%u: packet %u has %u phits left of a %u-phit "
                   "packet",
                   r.id, static_cast<u32>(port), out.active, out.phits_left,
                   static_cast<u32>(pkt.size)));
        continue;
      }
      const u64 sent = pkt.size - out.phits_left;
      const u64 held = now - 1 - pkt.last_progress;
      if (sent != held) {
        add(rep, Invariant::kVctAtomicity,
            format("r%u.p%u: packet %u granted at cycle %llu has held the "
                   "output %llu cycles but sent %llu phits — transfers "
                   "must stream one phit per cycle for exactly "
                   "packet_size cycles",
                   r.id, static_cast<u32>(port), out.active,
                   static_cast<unsigned long long>(pkt.last_progress),
                   static_cast<unsigned long long>(held),
                   static_cast<unsigned long long>(sent)));
      }
    }
    if (busy_ports != r.active_transfers) {
      add(rep, Invariant::kVctAtomicity,
          format("r%u: %u outputs are streaming but active_transfers=%u",
                 r.id, busy_ports, r.active_transfers));
    }
  }
}

// ---------------------------------------------------------------------------
// activity worklists (PR 1 kernel; see DESIGN.md "Cycle kernel")
// ---------------------------------------------------------------------------
void InvariantAuditor::check_worklists(AuditReport& rep) const {
  ++rep.checks_run;
  // Router list: flags and list membership must agree, and every router
  // with activity must be listed (soundness: the list may additionally
  // hold routers that went idle since the last refresh). Worklists are
  // per shard (DESIGN.md §10); each entry must also belong to the shard
  // that lists it, or two shards could advance the same router in
  // parallel.
  std::vector<u8> listed(net_.routers_.size(), 0);
  for (u32 s = 0; s < net_.shards_.size(); ++s) {
    const Network::ShardState& sh = net_.shards_[s];
    for (const RouterId r : sh.active_routers) {
      if (r >= net_.routers_.size() || listed[r]) {
        add(rep, Invariant::kWorklists,
            format("shard %u worklist holds %s router id %u", s,
                   r >= net_.routers_.size() ? "out-of-range" : "duplicate",
                   r));
        continue;
      }
      if (r < sh.router_begin || r >= sh.router_end) {
        add(rep, Invariant::kWorklists,
            format("shard %u [%u,%u) lists router %u owned by another "
                   "shard — parallel phases would race on it",
                   s, sh.router_begin, sh.router_end, r));
      }
      listed[r] = 1;
    }
  }
  for (RouterId r = 0; r < net_.routers_.size(); ++r) {
    if (listed[r] != net_.router_in_worklist_[r]) {
      add(rep, Invariant::kWorklists,
          format("r%u: in_worklist flag %u but %slisted", r,
                 static_cast<u32>(net_.router_in_worklist_[r]),
                 listed[r] ? "" : "not "));
    }
    if (net_.routers_[r].has_activity() && !listed[r]) {
      add(rep, Invariant::kWorklists,
          format("r%u has %u buffered packets / out-mask %llx but is "
                 "missing from the active-router worklist — its packets "
                 "would never advance",
                 r, net_.routers_[r].buffered_packets,
                 static_cast<unsigned long long>(
                     net_.routers_[r].active_out_mask)));
    }
    // routable_heads must count exactly the (port, vc) heads the
    // allocation scan could request for.
    u32 heads = 0;
    for (const InputPort& port : net_.routers_[r].inputs) {
      const HeadView in(port);
      for (VcId v = 0; v < in.num_vcs(); ++v)
        if (in.routable(v)) ++heads;
    }
    if (heads != net_.routers_[r].routable_heads) {
      add(rep, Invariant::kWorklists,
          format("r%u: %u routable heads present but counter says %u — "
                 "the allocation skip would starve or over-scan", r, heads,
                 net_.routers_[r].routable_heads));
    }
  }
  // Node list: after do_injection's compaction it holds exactly the nodes
  // with a non-empty source queue.
  std::vector<u8> node_listed(net_.pending_.size(), 0);
  for (const NodeId n : net_.active_nodes_) {
    if (n >= net_.pending_.size() || node_listed[n]) {
      add(rep, Invariant::kWorklists,
          format("node worklist holds %s id %u",
                 n >= net_.pending_.size() ? "out-of-range" : "duplicate",
                 n));
      continue;
    }
    node_listed[n] = 1;
  }
  for (NodeId n = 0; n < net_.pending_.size(); ++n) {
    if (node_listed[n] != net_.node_in_worklist_[n] ||
        node_listed[n] != (net_.pending_[n].empty() ? 0 : 1)) {
      add(rep, Invariant::kWorklists,
          format("node %u: %zu queued offers, in_worklist flag %u, "
                 "%slisted",
                 n, net_.pending_[n].size(),
                 static_cast<u32>(net_.node_in_worklist_[n]),
                 node_listed[n] ? "" : "not "));
    }
  }
}

// ---------------------------------------------------------------------------
// escape-ring bubble condition (paper §IV-C)
// ---------------------------------------------------------------------------
//
// Bubble flow control admits a packet into the ring only when the target
// buffer has TWO packets of free space, and ring-to-ring moves conserve
// ring occupancy phit-for-phit. By induction the ring's physical occupancy
// — phits stored in ring-input FIFOs, phits on ring wires, plus the unsent
// remainder of transfers entering the ring from outside — never exceeds
// total ring capacity minus one packet. That guaranteed bubble is what
// lets the ring always drain (and the wait-graph check below lean on it).
void InvariantAuditor::check_ring_bubble(AuditReport& rep) const {
  ++rep.checks_run;
  if (net_.ring_ == nullptr) return;
  const u32 packet_size = net_.cfg_.packet_size;
  u64 occupied = 0, capacity = 0;
  for (RouterId r = 0; r < net_.routers_.size(); ++r) {
    const PortId port = net_.ring_in_port_[r];
    if (port == kInvalidPort) continue;
    const u32 first = net_.ring_in_first_vc_[r];
    if (!net_.router_built(r)) {
      // Untouched router: its ring VCs are empty but their capacity still
      // backs the bubble invariant, so count it from the arithmetic shape.
      u32 vcs = 0, cap = 0;
      net_.input_shape(r, port, vcs, cap);
      capacity += u64{net_.ring_in_num_vcs_[r]} * cap;
      continue;
    }
    const HeadView in(net_.routers_[r].inputs[port]);
    for (u32 v = first; v < first + net_.ring_in_num_vcs_[r]; ++v) {
      occupied += in.stored_phits(static_cast<VcId>(v));
      capacity += in.capacity(static_cast<VcId>(v));
    }
  }
  for (const auto& slot : net_.phit_wheel_) {
    for (const Network::PhitEvent& e : slot) {
      const Channel ch = net_.channel(e.ch);
      if (!ch.is_ejection() &&
          net_.is_ring_input(ch.dst_router, ch.dst_port, e.vc))
        ++occupied;
    }
  }
  for (const Router& r : net_.routers_) {
    for (const OutputPort& out : r.outputs) {
      if (!out.busy()) continue;
      const Channel ch = net_.channel(out.channel);
      if (ch.is_ejection()) continue;
      if (net_.is_ring_input(ch.dst_router, ch.dst_port, out.active_vc) &&
          !net_.is_ring_input(r.id, out.src_port, out.src_vc))
        occupied += out.phits_left;  // entry in progress: space is spoken for
    }
  }
  if (capacity < packet_size || occupied > capacity - packet_size) {
    add(rep, Invariant::kRingBubble,
        format("escape ring holds %llu of %llu phits (incl. in-flight and "
               "committed entries); bubble flow control requires >= %u "
               "free or the ring can wedge",
               static_cast<unsigned long long>(occupied),
               static_cast<unsigned long long>(capacity), packet_size));
  }
}

// ---------------------------------------------------------------------------
// wait-for-graph acyclicity on the escape ring (paper §III / §IV-C)
// ---------------------------------------------------------------------------
void InvariantAuditor::check_wait_graph(AuditReport& rep) const {
  ++rep.checks_run;
  WaitGraph graph(net_);
  graph.build();
  const std::vector<WaitGraph::Node> cycle = graph.find_ring_cycle();
  if (!cycle.empty()) {
    add(rep, Invariant::kWaitGraph,
        format("wait cycle of %zu stalled heads lies entirely inside "
               "escape-ring VCs: %s — the paper's deadlock-freedom "
               "argument requires every cycle to touch a non-escape VC",
               cycle.size(), WaitGraph::describe(cycle).c_str()));
  }
}

}  // namespace ofar::verify
