# Empty dependencies file for transient_adaptation.
# This may be replaced when dependencies are built.
