// Tests for the opt-in telemetry layer (stats/metrics.*, stats/sink.*):
// registry round-trips, phase-profiler accounting, JSONL/CSV record
// validity, deadlock forensics on a wedged network, and the determinism
// guard (telemetry must never perturb the simulation).
#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "sim/network.hpp"
#include "stats/metrics.hpp"
#include "stats/sink.hpp"
#include "traffic/generator.hpp"
#include "traffic/pattern.hpp"

namespace ofar {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON validator: a recursive-descent parser that accepts exactly
// RFC 8259 values. Used to check that every emitted JSONL line is
// machine-parseable, without pulling a JSON dependency into the repo.
// ---------------------------------------------------------------------------
class JsonValidator {
 public:
  explicit JsonValidator(const std::string& s) : s_(s) {}

  bool valid() {
    pos_ = 0;
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= s_.size() || !std::isxdigit(
                    static_cast<unsigned char>(s_[pos_])))
              return false;
          }
        } else if (std::string("\"\\/bfnrt").find(e) == std::string::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;  // unterminated
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (!digits()) return false;
    if (peek() == '.') {
      ++pos_;
      if (!digits()) return false;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!digits()) return false;
    }
    return pos_ > start;
  }

  bool digits() {
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           std::isdigit(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
    return pos_ > start;
  }

  bool literal(const char* lit) {
    for (const char* p = lit; *p != '\0'; ++p, ++pos_)
      if (pos_ >= s_.size() || s_[pos_] != *p) return false;
    return true;
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t')) ++pos_;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

/// Value of the top-level `"type":"..."` field (the writer emits it first).
std::string record_type(const std::string& line) {
  const std::string key = "\"type\":\"";
  const std::size_t at = line.find(key);
  if (at == std::string::npos) return "";
  const std::size_t start = at + key.size();
  const std::size_t end = line.find('"', start);
  return end == std::string::npos ? "" : line.substr(start, end - start);
}

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  return lines;
}

/// RAII temp file: removed on scope exit.
struct TempFile {
  explicit TempFile(std::string p) : path(std::move(p)) {}
  ~TempFile() { std::remove(path.c_str()); }
  std::string path;
};

SimConfig small_config(u64 seed) {
  SimConfig cfg;
  cfg.h = 2;
  cfg.seed = seed;
  cfg.routing = RoutingKind::kOfar;
  cfg.ring = RingKind::kPhysical;
  return cfg;
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

TEST(MetricsRegistry, DefineSetSnapshotRoundTrip) {
  MetricsRegistry reg;
  const auto a = reg.define("a.count", "packets", MetricKind::kCounter);
  const auto b = reg.define("b.gauge", "fraction", MetricKind::kGauge);
  ASSERT_EQ(reg.size(), 2u);
  EXPECT_EQ(reg.def(a).unit, "packets");
  EXPECT_EQ(reg.def(b).kind, MetricKind::kGauge);

  reg.set(a, 3.0);
  reg.add(a, 2.0);
  reg.set(b, 0.25);
  EXPECT_DOUBLE_EQ(reg.value(a), 5.0);

  EXPECT_EQ(reg.find("a.count"), a);
  EXPECT_EQ(reg.find("b.gauge"), b);
  EXPECT_EQ(reg.find("missing"), kInvalidIndex);

  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].first, "a.count");
  EXPECT_DOUBLE_EQ(snap[0].second, 5.0);
  EXPECT_EQ(snap[1].first, "b.gauge");
  EXPECT_DOUBLE_EQ(snap[1].second, 0.25);
}

// ---------------------------------------------------------------------------
// Phase profiler
// ---------------------------------------------------------------------------

TEST(PhaseProfiler, ExactCountsAndMonotonicSeconds) {
  PhaseProfiler prof(/*sample_period=*/1);
  double secs_mid = -1.0;
  for (Cycle c = 0; c < 10; ++c) {
    prof.start_cycle(c);
    prof.phase_done(SimPhase::kEventDelivery);
    prof.phase_done(SimPhase::kPolicyTick);
    prof.phase_done(SimPhase::kTransfers);
    prof.phase_done(SimPhase::kAllocation);
    prof.phase_done(SimPhase::kInjection);
    const bool watchdog = (c == 7);
    if (watchdog) prof.phase_done(SimPhase::kWatchdog);
    prof.end_cycle(watchdog);
    if (c == 4) secs_mid = prof.seconds(SimPhase::kTransfers);
  }

  EXPECT_EQ(prof.cycles(), 10u);
  EXPECT_EQ(prof.sampled_cycles(), 10u);  // period 1: every cycle timed
  EXPECT_EQ(prof.invocations(SimPhase::kAllocation), 10u);
  EXPECT_EQ(prof.invocations(SimPhase::kWatchdog), 1u);
  EXPECT_EQ(prof.sampled_invocations(SimPhase::kWatchdog), 1u);

  // steady_clock is monotonic: accumulated time never decreases and the
  // final value is at least the mid-run reading.
  EXPECT_GE(secs_mid, 0.0);
  EXPECT_GE(prof.seconds(SimPhase::kTransfers), secs_mid);
  // With every invocation sampled the estimate *is* the measurement.
  EXPECT_DOUBLE_EQ(prof.estimated_total_seconds(SimPhase::kTransfers),
                   prof.seconds(SimPhase::kTransfers));
}

TEST(PhaseProfiler, SamplingScalesEstimate) {
  PhaseProfiler prof(/*sample_period=*/4);
  for (Cycle c = 0; c < 16; ++c) {
    prof.start_cycle(c);
    prof.phase_done(SimPhase::kTransfers);
    prof.end_cycle(false);
  }
  EXPECT_EQ(prof.cycles(), 16u);
  EXPECT_EQ(prof.sampled_cycles(), 4u);  // cycles 0, 4, 8, 12
  // estimate = sampled seconds * 16/4.
  EXPECT_DOUBLE_EQ(prof.estimated_total_seconds(SimPhase::kTransfers),
                   prof.seconds(SimPhase::kTransfers) * 4.0);
}

TEST(PhaseProfiler, PeriodZeroCountsOnly) {
  PhaseProfiler prof(0);
  for (Cycle c = 0; c < 5; ++c) {
    prof.start_cycle(c);
    prof.phase_done(SimPhase::kAllocation);
    prof.end_cycle(false);
  }
  EXPECT_EQ(prof.cycles(), 5u);
  EXPECT_EQ(prof.sampled_cycles(), 0u);
  EXPECT_DOUBLE_EQ(prof.seconds(SimPhase::kAllocation), 0.0);
  EXPECT_DOUBLE_EQ(prof.estimated_total_seconds(SimPhase::kAllocation), 0.0);
}

// ---------------------------------------------------------------------------
// JSONL sink output
// ---------------------------------------------------------------------------

TEST(Telemetry, JsonlRecordsAreValidJson) {
  TempFile tmp("test_metrics_out.jsonl");
  {
    auto sink = MetricsSink::open(tmp.path);
    ASSERT_NE(sink, nullptr);
    EXPECT_EQ(sink->format(), MetricsSink::Format::kJsonl);

    Network net(small_config(42));
    TelemetryConfig tc;
    tc.sink = sink.get();
    tc.interval = 500;
    tc.label = "jsonl \"test\"";  // exercises string escaping
    tc.full_dump = true;
    net.enable_telemetry(tc);
    net.set_traffic(std::make_unique<BernoulliSource>(
        TrafficPattern::uniform(), 0.3, 42));
    net.run(2'200);
    net.telemetry()->write_summary(net);

    EXPECT_EQ(net.telemetry()->samples_taken(), 4u);  // cycles 500..2000
  }  // sink closes (flushes) here

  const auto lines = read_lines(tmp.path);
  ASSERT_FALSE(lines.empty());
  std::size_t intervals = 0, summaries = 0;
  for (const auto& line : lines) {
    JsonValidator v(line);
    EXPECT_TRUE(v.valid()) << "invalid JSON: " << line;
    const std::string type = record_type(line);
    EXPECT_FALSE(type.empty()) << line;
    if (type == "interval") ++intervals;
    if (type == "summary") ++summaries;
  }
  EXPECT_EQ(intervals, 4u);
  EXPECT_EQ(summaries, 1u);
  // The escaped label survives round-trip on every record.
  for (const auto& line : lines)
    EXPECT_NE(line.find("jsonl \\\"test\\\""), std::string::npos) << line;
}

TEST(Telemetry, RegistryTracksNetworkState) {
  Network net(small_config(7));
  TelemetryConfig tc;  // sink stays null: in-memory sampling only
  tc.interval = 250;
  net.enable_telemetry(tc);
  net.set_traffic(std::make_unique<BernoulliSource>(
      TrafficPattern::uniform(), 0.4, 7));
  net.run(1'000);

  const MetricsRegistry& reg = net.telemetry()->registry();
  const auto id_cycle = reg.find("sim.cycle");
  const auto id_delivered = reg.find("packets.delivered");
  const auto id_generated = reg.find("packets.generated");
  ASSERT_NE(id_cycle, kInvalidIndex);
  ASSERT_NE(id_delivered, kInvalidIndex);
  ASSERT_NE(id_generated, kInvalidIndex);

  // The last interval snapshot landed exactly on cycle 1000.
  EXPECT_DOUBLE_EQ(reg.value(id_cycle), 1000.0);
  EXPECT_GT(reg.value(id_generated), 0.0);
  // Counters in the registry mirror Stats at the snapshot; both only grow.
  EXPECT_LE(reg.value(id_delivered),
            static_cast<double>(net.stats().delivered_packets()));
  EXPECT_EQ(net.telemetry()->samples_taken(), 4u);
}

TEST(Telemetry, CsvSinkEmitsHeaderAndRows) {
  TempFile tmp("test_metrics_out.csv");
  {
    auto sink = MetricsSink::open(tmp.path);
    ASSERT_NE(sink, nullptr);
    EXPECT_EQ(sink->format(), MetricsSink::Format::kCsv);

    Network net(small_config(9));
    TelemetryConfig tc;
    tc.sink = sink.get();
    tc.interval = 400;
    tc.label = "csv";
    net.enable_telemetry(tc);
    net.set_traffic(std::make_unique<BernoulliSource>(
        TrafficPattern::uniform(), 0.3, 9));
    net.run(900);
    net.telemetry()->write_summary(net);
  }

  const auto lines = read_lines(tmp.path);
  ASSERT_GT(lines.size(), 1u);
  EXPECT_EQ(lines[0], "label,type,cycle,metric,value");
  for (std::size_t i = 1; i < lines.size(); ++i) {
    // Simple shape check: 5 fields (no quoted field in this run contains a
    // comma), label first.
    std::size_t commas = 0;
    for (char c : lines[i]) commas += (c == ',');
    EXPECT_EQ(commas, 4u) << lines[i];
    EXPECT_EQ(lines[i].rfind("csv,", 0), 0u) << lines[i];
  }
}

// ---------------------------------------------------------------------------
// Deadlock forensics
// ---------------------------------------------------------------------------

TEST(Telemetry, ForensicsOnWedgedNetwork) {
  // Saturate a small network and declare any head older than 8 cycles
  // "stalled": by the first watchdog scan (cycle 4096) the network is
  // congested enough that the trip is guaranteed, exercising the forensic
  // dump path without needing a true deadlock.
  TempFile tmp("test_metrics_forensics.jsonl");
  auto sink = MetricsSink::open(tmp.path);
  ASSERT_NE(sink, nullptr);

  SimConfig cfg = small_config(3);
  cfg.deadlock_timeout = 8;
  Network net(cfg);
  TelemetryConfig tc;
  tc.sink = sink.get();
  tc.interval = 1'000;
  tc.label = "wedge";
  tc.max_forensic_dumps = 2;
  net.enable_telemetry(tc);
  net.set_traffic(std::make_unique<BernoulliSource>(
      TrafficPattern::uniform(), 1.0, 3));
  net.run(4'200);  // past the first watchdog scan at cycle 4096

  const Telemetry* t = net.telemetry();
  ASSERT_GE(t->forensic_dumps(), 1u);
  const std::vector<StallEdge>& edges = t->last_forensics();
  ASSERT_FALSE(edges.empty());

  const Dragonfly& topo = net.topo();
  for (const StallEdge& e : edges) {
    EXPECT_LT(e.router, topo.routers());
    EXPECT_LT(e.in_port, topo.ports_per_router());
    EXPECT_NE(e.packet, kInvalidPacket);
    EXPECT_GT(e.age, u64{cfg.deadlock_timeout});
    EXPECT_GT(e.arrived_phits, 0u);  // heads only, and a head has phits
    // Every reported edge names the output it waits for.
    EXPECT_NE(e.wait_port, kInvalidPort);
    EXPECT_LT(e.wait_port, topo.ports_per_router());
  }

  // Mark the summary written before releasing the sink: the Telemetry
  // destructor's safety net must not touch a dead sink (the sink is
  // documented to outlive the Network otherwise).
  net.telemetry()->write_summary(net);
  sink.reset();  // flush
  bool saw_forensics = false;
  for (const auto& line : read_lines(tmp.path)) {
    JsonValidator v(line);
    EXPECT_TRUE(v.valid()) << "invalid JSON: " << line;
    if (record_type(line) == "forensics") {
      saw_forensics = true;
      // The record carries at least one structured hold/wait edge.
      EXPECT_NE(line.find("\"edges\":[{"), std::string::npos) << line;
      EXPECT_NE(line.find("\"router\":"), std::string::npos);
      EXPECT_NE(line.find("\"wait_port\":"), std::string::npos);
    }
  }
  EXPECT_TRUE(saw_forensics);
}

TEST(Telemetry, ForensicsRateLimit) {
  SimConfig cfg = small_config(3);
  cfg.deadlock_timeout = 8;
  Network net(cfg);
  TelemetryConfig tc;  // null sink: edges are still collected
  tc.max_forensic_dumps = 1;
  net.enable_telemetry(tc);
  net.set_traffic(std::make_unique<BernoulliSource>(
      TrafficPattern::uniform(), 1.0, 3));
  net.run(3 * 4'096 + 64);  // three watchdog scans
  EXPECT_EQ(net.telemetry()->forensic_dumps(), 1u);
}

// ---------------------------------------------------------------------------
// Determinism guard
// ---------------------------------------------------------------------------

/// Every per-seed deterministic Stats field in one comparable tuple.
struct Digest {
  u64 generated, injected, delivered, phits;
  u64 lat_count, lat_min, lat_max;
  double lat_sum;
  u64 ring_in, ring_out, ring_pkts, ring_re;
  u64 mis_l, mis_g, max_hops;

  static Digest of(const Network& net) {
    const Stats& s = net.stats();
    return {s.generated_packets(), s.injected_packets(),
            s.delivered_packets(), s.delivered_phits(),
            s.latency().count,     s.latency().min,
            s.latency().max,       s.latency().sum,
            s.ring_entries(),      s.ring_exits(),
            s.ring_packets(),      s.ring_reentries(),
            s.local_misroutes(),   s.global_misroutes(),
            s.max_hops()};
  }

  bool operator==(const Digest&) const = default;
};

TEST(Telemetry, EnablingTelemetryPreservesDeterminism) {
  const SimConfig cfg = small_config(12345);
  auto run = [&cfg](bool telemetry) {
    Network net(cfg);
    if (telemetry) {
      TelemetryConfig tc;  // in-memory only; timing every cycle to stress
      tc.interval = 100;   // the instrumented step path
      tc.phase_sample_period = 1;
      tc.full_dump = true;
      net.enable_telemetry(tc);
    }
    net.set_traffic(std::make_unique<BernoulliSource>(
        TrafficPattern::adversarial(1), 0.6, cfg.seed));
    net.run(3'000);
    return Digest::of(net);
  };

  const Digest off = run(false);
  const Digest on = run(true);
  EXPECT_TRUE(off == on)
      << "telemetry perturbed the simulation (delivered " << off.delivered
      << " vs " << on.delivered << ")";
  EXPECT_GT(off.delivered, 0u);
}

TEST(Telemetry, StallCountersAccumulateUnderLoad) {
  Network net(small_config(5));
  TelemetryConfig tc;
  net.enable_telemetry(tc);
  net.set_traffic(std::make_unique<BernoulliSource>(
      TrafficPattern::uniform(), 1.0, 5));
  net.run(2'000);
  // A saturated network necessarily loses some allocations or credits.
  EXPECT_GT(net.telemetry()->credit_stall_cycles() +
                net.telemetry()->alloc_stall_cycles(),
            0u);
}

}  // namespace
}  // namespace ofar
