"""libclang frontend: exact AST over compile_commands.json.

Optional — the container may not ship clang. `available()` gates every
use; when the Python bindings or the compilation database are missing the
CLI silently falls back to the builtin frontend (engine=auto) or errors
out (engine=clang).

The model produced is the same shape as frontend_builtin's: classes with
member/method annotations read from the expanded `[[clang::annotate]]`
attributes, function definitions with token streams, and alias tables.
Because clang expands `if constexpr` per instantiation, the kStaged
serial-exclusion marking reuses the builtin lexer's source-level pass.
"""

import os

from .lexer import collect_waivers, strip_and_tokenize
from .model import (ANNOTATE_TO_ANNOTATION, ClassInfo, FunctionDef,
                    Program, Token)

try:
    import clang.cindex as _cindex  # type: ignore
except ImportError:
    _cindex = None


def available(root=None):
    """True when libclang is importable and can locate a library."""
    if _cindex is None:
        return False
    try:
        _cindex.Index.create()
    except Exception:
        return False
    if root is not None and not os.path.exists(
            os.path.join(root, "compile_commands.json")):
        return False
    return True


def _annotation_of(cursor):
    for child in cursor.get_children():
        if child.kind == _cindex.CursorKind.ANNOTATE_ATTR:
            ann = ANNOTATE_TO_ANNOTATION.get(child.spelling)
            if ann:
                return ann
    return ""


def _tokens_of(cursor, root):
    out = []
    for tok in cursor.get_tokens():
        if tok.kind in (_cindex.TokenKind.COMMENT,):
            continue
        text = tok.spelling
        if tok.kind == _cindex.TokenKind.LITERAL and text.startswith('"'):
            text = '""'
        out.append(Token(text=text, line=tok.location.line))
    return out


def load_program(root, files):
    """Parses each TU listed in compile_commands.json that matches
    `files`, merging results into one Program."""
    if not available(root):
        raise RuntimeError("libclang frontend unavailable")
    index = _cindex.Index.create()
    db = _cindex.CompilationDatabase.fromDirectory(root)
    program = Program()
    wanted = {os.path.join(root, f) for f in files}

    for rel in files:
        path = os.path.join(root, rel)
        try:
            with open(path, encoding="utf-8", errors="replace") as fh:
                collect_waivers(fh.read(), rel, program.waivers)
        except OSError:
            continue

    seen_tu = set()
    for cmd in db.getAllCompileCommands() or []:
        src = os.path.join(cmd.directory, cmd.filename)
        src = os.path.normpath(src)
        if src in seen_tu:
            continue
        seen_tu.add(src)
        cmd_args = [a for a in cmd.arguments][1:]
        try:
            tu = index.parse(None, args=cmd_args)
        except _cindex.TranslationUnitLoadError:
            continue
        _harvest(tu.cursor, root, wanted, program)
    return program


def _harvest(cursor, root, wanted, program):
    for node in cursor.walk_preorder():
        loc = node.location
        if loc.file is None:
            continue
        path = os.path.normpath(loc.file.name)
        if path not in wanted:
            continue
        rel = os.path.relpath(path, root)
        kind = node.kind
        if kind in (_cindex.CursorKind.CLASS_DECL,
                    _cindex.CursorKind.STRUCT_DECL) and \
                node.is_definition():
            ci = program.classes.setdefault(
                node.spelling,
                ClassInfo(name=node.spelling, file=rel, line=loc.line))
            ci.annotation = ci.annotation or _annotation_of(node)
            for child in node.get_children():
                if child.kind == _cindex.CursorKind.CXX_BASE_SPECIFIER:
                    base = child.type.spelling.split("<")[0]
                    base = base.split("::")[-1]
                    if base not in ci.bases:
                        ci.bases.append(base)
                elif child.kind == _cindex.CursorKind.FIELD_DECL:
                    ci.members[child.spelling] = _annotation_of(child)
                    ci.member_types[child.spelling] = child.type.spelling
                elif child.kind == _cindex.CursorKind.CXX_METHOD:
                    ann = _annotation_of(child)
                    if ann:
                        ci.methods[child.spelling] = ann
        elif kind in (_cindex.CursorKind.CXX_METHOD,
                      _cindex.CursorKind.FUNCTION_DECL,
                      _cindex.CursorKind.CONSTRUCTOR,
                      _cindex.CursorKind.DESTRUCTOR) and \
                node.is_definition():
            cls = ""
            parent = node.semantic_parent
            if parent is not None and parent.kind in (
                    _cindex.CursorKind.CLASS_DECL,
                    _cindex.CursorKind.STRUCT_DECL):
                cls = parent.spelling
            qual = f"{cls}::{node.spelling}" if cls else node.spelling
            fn = FunctionDef(
                name=node.spelling, qualname=qual, cls=cls,
                annotation=_annotation_of(node), file=rel, line=loc.line)
            for arg in node.get_arguments():
                fn.params.append(arg.spelling)
                fn.param_types[arg.spelling] = arg.type.spelling
            fn.body = _tokens_of(node, root)
            _mark_kstaged_source(fn)
            program.functions.setdefault(qual, []).append(fn)
        elif kind in (_cindex.CursorKind.TYPEDEF_DECL,
                      _cindex.CursorKind.TYPE_ALIAS_DECL):
            program.aliases.setdefault(
                node.spelling, node.underlying_typedef_type.spelling)


def _mark_kstaged_source(fn):
    """Marks `if constexpr (!kStaged)` regions, reusing the builtin
    frontend's token-level pass on the clang-extracted body."""
    from .frontend_builtin import _mark_kstaged
    _mark_kstaged(fn.body)


# Re-exported so `python3 -c "from ofar_lint import frontend_clang"` is a
# cheap availability probe.
__all__ = ["available", "load_program", "strip_and_tokenize"]
