// Network instrumentation: packet/phit counters, latency accumulators
// (global and per traffic component), misroute and escape-ring usage
// counters, the deadlock watchdog tally, and an optional transient time
// series. A measurement window can be (re)opened after warm-up; all
// rate-style queries refer to the current window.
#pragma once

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <memory>
#include <vector>

#include "common/phase.hpp"
#include "common/types.hpp"
#include "stats/timeseries.hpp"

namespace ofar {

class CheckpointIO;

struct LatencyAccum {
  u64 count = 0;
  double sum = 0.0;
  double sum_sq = 0.0;
  u64 min = std::numeric_limits<u64>::max();
  u64 max = 0;

  void add(u64 v) {
    ++count;
    sum += static_cast<double>(v);
    sum_sq += static_cast<double>(v) * static_cast<double>(v);
    min = std::min(min, v);
    max = std::max(max, v);
  }
  double mean() const { return count == 0 ? 0.0 : sum / count; }
  double stddev() const {
    if (count < 2) return 0.0;
    const double m = mean();
    return std::sqrt(std::max(0.0, sum_sq / count - m * m));
  }
};

/// Power-of-two-bucketed latency histogram with approximate percentile
/// queries — constant memory regardless of run length, ~±25 % relative
/// resolution per bucket (each bucket spans [2^k, 2^(k+1))).
class LatencyHistogram {
 public:
  static constexpr u32 kBuckets = 40;

  void add(u64 v) {
    ++total_;
    u32 b = bucket_of(v);
    if (b >= kBuckets) {
      b = kBuckets - 1;  // clamp outliers into the top bucket
      ++overflow_;
    }
    ++buckets_[b];
  }

  u64 total() const noexcept { return total_; }
  u64 bucket_count(u32 b) const { return buckets_[b]; }
  /// Samples clamped into the top bucket because they exceeded its floor
  /// (2^38 cycles): a saturated run is visible instead of silently folded in.
  u64 overflow_count() const noexcept { return overflow_; }

  /// Lower edge of bucket b (0, 1, 2, 4, 8, ...).
  static u64 bucket_floor(u32 b) noexcept {
    return b == 0 ? 0 : u64{1} << (b - 1);
  }

  /// Approximate q-quantile (q in [0,1]): the geometric midpoint of the
  /// bucket containing the q-th sample. The top bucket is a clamp bucket
  /// (it also holds every overflow sample), so its midpoint would be a
  /// fabrication — report its floor instead, a true lower bound. Returns 0
  /// on an empty histogram.
  u64 percentile(double q) const {
    if (total_ == 0) return 0;
    const u64 rank = static_cast<u64>(q * static_cast<double>(total_ - 1));
    u64 seen = 0;
    for (u32 b = 0; b < kBuckets; ++b) {
      seen += buckets_[b];
      if (seen > rank) {
        const u64 lo = bucket_floor(b);
        if (b + 1 == kBuckets) return lo;  // clamp bucket: lower bound
        return (lo + bucket_floor(b + 1)) / 2;
      }
    }
    return bucket_floor(kBuckets - 1);
  }

 private:
  friend class CheckpointIO;

  /// Unclamped bucket index; add() clamps and counts the overflow.
  static u32 bucket_of(u64 v) noexcept {
    if (v == 0) return 0;
    return 64 - static_cast<u32>(__builtin_clzll(v));
  }

  u64 total_ = 0;
  u64 overflow_ = 0;
  std::array<u64, kBuckets> buckets_{};
};

// Serial-only as a whole: every on_* hook mutates shared accumulators, so
// parallel phases stage their counts in ShardState and the serial commit
// replays them in shard order (DESIGN.md §10).
class OFAR_SERIAL_ONLY Stats {
 public:
  Stats() = default;

  /// Opens a fresh measurement window at `now` (counters zeroed).
  void reset(Cycle now);

  // ---- event hooks (called by Network) ----
  void on_generated(u16 tag, u32 phits);
  void on_injected();
  void on_delivered(u16 tag, u32 phits, u64 latency, Cycle birth, u32 hops);
  void on_local_misroute() { ++local_misroutes_; }
  void on_global_misroute() { ++global_misroutes_; }
  /// A packet was granted onto the escape ring. `first_entry` is true when
  /// this packet had never been on the ring before (Packet::ring_entered):
  /// ring_entries() counts every entry, ring_packets() counts distinct
  /// packets, and ring_reentries() the difference.
  void on_ring_enter(bool first_entry) {
    ++ring_entries_;
    if (first_entry) {
      ++ring_packets_;
    } else {
      ++ring_reentries_;
    }
  }
  void on_ring_exit() { ++ring_exits_; }

  // ---- bulk hooks (sharded kernel's serial commit; DESIGN.md §10) ----
  // Per-shard staged counts folded in shard order. Each is the exact sum
  // of the per-event hook above over the staged events, so a sharded run
  // and a sequential replay of the same grants agree on every counter.
  void on_ring_enters(u64 first_entries, u64 reentries) {
    ring_entries_ += first_entries + reentries;
    ring_packets_ += first_entries;
    ring_reentries_ += reentries;
  }
  void on_ring_exits(u64 n) { ring_exits_ += n; }
  void on_local_misroutes(u64 n) { local_misroutes_ += n; }
  void on_global_misroutes(u64 n) { global_misroutes_ += n; }

  void on_watchdog(u64 stalled, u64 worst_stall) {
    stalled_packets_ = stalled;
    worst_stall_ = std::max(worst_stall_, worst_stall);
  }

  /// Enables the by-birth-cycle latency series (Fig. 6 instrumentation).
  void enable_timeseries(Cycle start, Cycle horizon, u32 bucket_width) {
    series_ = std::make_unique<TimeSeries>(start, horizon, bucket_width);
  }
  const TimeSeries* series() const { return series_.get(); }

  // ---- queries ----
  Cycle window_start() const { return window_start_; }
  u64 generated_packets() const { return generated_packets_; }
  u64 generated_phits() const { return generated_phits_; }
  u64 injected_packets() const { return injected_packets_; }
  u64 delivered_packets() const { return delivered_packets_; }
  u64 delivered_phits() const { return delivered_phits_; }
  u64 local_misroutes() const { return local_misroutes_; }
  u64 global_misroutes() const { return global_misroutes_; }
  u64 ring_entries() const { return ring_entries_; }
  u64 ring_exits() const { return ring_exits_; }
  u64 ring_packets() const { return ring_packets_; }
  u64 ring_reentries() const { return ring_reentries_; }
  u64 stalled_packets() const { return stalled_packets_; }
  u64 worst_stall() const { return worst_stall_; }
  u64 max_hops() const { return max_hops_; }
  double mean_hops() const {
    return delivered_packets_ == 0 ? 0.0 : hops_sum_ / delivered_packets_;
  }

  const LatencyAccum& latency() const { return latency_; }
  const LatencyAccum& latency_by_tag(u16 tag) const;
  const LatencyHistogram& latency_histogram() const { return histogram_; }

  /// Accepted load in phits/(node*cycle) over the window ending at `now`.
  double accepted_load(Cycle now, u32 nodes) const {
    if (now <= window_start_ || nodes == 0) return 0.0;
    return static_cast<double>(delivered_phits_) /
           (static_cast<double>(nodes) *
            static_cast<double>(now - window_start_));
  }
  /// Offered load in phits/(node*cycle) over the window ending at `now`.
  double offered_load(Cycle now, u32 nodes) const {
    if (now <= window_start_ || nodes == 0) return 0.0;
    return static_cast<double>(generated_phits_) /
           (static_cast<double>(nodes) *
            static_cast<double>(now - window_start_));
  }
  /// Fraction of delivered packets that ever used the escape ring. Counts
  /// distinct packets (ring_packets_), not raw entries — a packet that
  /// bounces on and off the ring contributes once, so the fraction cannot
  /// exceed 1.0; re-entries are reported separately via ring_reentries().
  double ring_use_fraction() const {
    return delivered_packets_ == 0
               ? 0.0
               : static_cast<double>(ring_packets_) / delivered_packets_;
  }

 private:
  friend class CheckpointIO;  // serializes the whole window state

  Cycle window_start_ = 0;
  u64 generated_packets_ = 0;
  u64 generated_phits_ = 0;
  u64 injected_packets_ = 0;
  u64 delivered_packets_ = 0;
  u64 delivered_phits_ = 0;
  u64 local_misroutes_ = 0;
  u64 global_misroutes_ = 0;
  u64 ring_entries_ = 0;
  u64 ring_exits_ = 0;
  u64 ring_packets_ = 0;
  u64 ring_reentries_ = 0;
  u64 stalled_packets_ = 0;
  u64 worst_stall_ = 0;
  u64 max_hops_ = 0;
  double hops_sum_ = 0.0;
  LatencyAccum latency_{};
  LatencyHistogram histogram_{};
  std::vector<LatencyAccum> by_tag_;
  std::unique_ptr<TimeSeries> series_;
};

}  // namespace ofar
