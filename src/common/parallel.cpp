#include "common/parallel.hpp"

#include <atomic>
#include <thread>

namespace ofar {

void run_parallel(const std::vector<std::function<void()>>& jobs,
                  unsigned threads) {
  if (threads == 0) threads = std::thread::hardware_concurrency();
  if (threads == 0) threads = 1;
  if (threads == 1 || jobs.size() <= 1) {
    for (const auto& job : jobs) job();
    return;
  }
  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= jobs.size()) return;
      jobs[i]();
    }
  };
  std::vector<std::thread> pool;
  const unsigned n = std::min<std::size_t>(threads, jobs.size());
  pool.reserve(n);
  for (unsigned t = 0; t < n; ++t) pool.emplace_back(worker);
  for (auto& t : pool) t.join();
}

void parallel_for(std::size_t count,
                  const std::function<void(std::size_t)>& fn,
                  unsigned threads) {
  std::vector<std::function<void()>> jobs;
  jobs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) jobs.emplace_back([&fn, i] { fn(i); });
  run_parallel(jobs, threads);
}

}  // namespace ofar
