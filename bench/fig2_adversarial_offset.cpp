// Fig. 2b reproduction + §III analysis: Valiant-routing throughput as a
// function of the ADV+N group offset. The consecutive global arrangement
// makes offsets that are multiples of h funnel all misrouted transit
// traffic of a group pair through single local links, so throughput dips
// sharply at N = h, 2h, 3h, ... while other offsets stay near Valiant's
// global-link bound. OFAR (optional column) removes the dips.
//
// Extra flags: --offered L (default 0.35: above every VAL funnel ceiling,
//              below OFAR's own saturation for all offsets),
//              --with-ofar true to add the OFAR column,
//              --analytic true to print the §III closed-form ceilings.
#include "bench_common.hpp"
#include "core/analysis.hpp"

int main(int argc, char** argv) {
  using namespace ofar;
  using namespace ofar::bench;
  CommandLine cli(argc, argv);
  const BenchOptions opts = BenchOptions::parse(cli, 5'000, 6'000);
  const double offered = cli.get_double("offered", 0.35);
  const bool with_ofar = cli.get_bool("with-ofar", true);
  const bool analytic = cli.get_bool("analytic", true);
  const u32 max_offset = static_cast<u32>(
      cli.get_uint("max-offset", 2 * opts.h + 2));
  if (!reject_unknown(cli)) return 1;

  const SimConfig val_cfg = opts.config(RoutingKind::kVal);
  const SimConfig ofar_cfg = opts.config(RoutingKind::kOfar);
  std::printf("Fig. 2b (ADV+N offset sweep) on %s, offered %.2f\n",
              val_cfg.summary().c_str(), offered);

  if (analytic) {
    std::printf("§III analytic ceilings: UN/min 1.0 | Valiant global 0.5 | "
                "minimal single global link 1/(2h^2) = %.4f | "
                "local-link funnel at N = k*h: 1/h = %.4f\n",
                1.0 / (2.0 * opts.h * opts.h), 1.0 / opts.h);
  }

  std::vector<std::string> columns = {"offset", "VAL_predicted", "VAL"};
  if (with_ofar) columns.push_back("OFAR");
  Table table(columns);
  const Dragonfly topo(opts.h);

  for (u32 offset = 1; offset <= max_offset; ++offset) {
    const TrafficPattern pattern = TrafficPattern::adversarial(offset);
    std::vector<Table::Cell> row = {u64{offset}};
    row.emplace_back(analysis::valiant_adv_offset_ceiling(topo, offset));
    row.emplace_back(
        run_steady(val_cfg, pattern, offered, opts.run).accepted_load);
    if (with_ofar)
      row.emplace_back(
          run_steady(ofar_cfg, pattern, offered, opts.run).accepted_load);
    table.add_row(std::move(row));
    std::printf(".");
    std::fflush(stdout);
  }
  std::printf("\n");
  table.print("Fig. 2b: accepted load vs ADV offset (dips at multiples of "
              "h=" + std::to_string(opts.h) + ")");
  dump_csv(table, opts, "fig2b_offset");
  return 0;
}
