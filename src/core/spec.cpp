#include "core/spec.hpp"

#include <charconv>
#include <cstdio>
#include <cstdlib>

#include "common/json.hpp"

namespace ofar {

const char* to_string(RunKind kind) noexcept {
  switch (kind) {
    case RunKind::kSteady: return "steady";
    case RunKind::kTransient: return "transient";
    case RunKind::kBurst: return "burst";
  }
  return "?";
}

bool parse_run_kind(const std::string& text, RunKind& out) noexcept {
  if (text == "steady") out = RunKind::kSteady;
  else if (text == "transient") out = RunKind::kTransient;
  else if (text == "burst") out = RunKind::kBurst;
  else return false;
  return true;
}

std::vector<double> expand_load_grid(double lo, double hi, u32 points) {
  std::vector<double> loads;
  loads.reserve(points);
  for (u32 i = 0; i < points; ++i)
    loads.push_back(lo + (hi - lo) * i / (points > 1 ? points - 1 : 1));
  return loads;
}

void append_double(std::string& out, double v) {
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  out.append(buf, res.ptr);
}

namespace {

void append_u64(std::string& out, u64 v) {
  char buf[24];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  out.append(buf, res.ptr);
}

/// Canonical rendering of a pattern: its component list, exactly the data
/// TrafficPattern::pick consults. One letter per kind keeps keys short.
void append_pattern(std::string& out, const TrafficPattern& p) {
  out += '[';
  bool first = true;
  for (const auto& c : p.components()) {
    if (!first) out += ',';
    first = false;
    switch (c.kind) {
      case PatternKind::kUniform: out += 'u'; break;
      case PatternKind::kAdversarial: out += 'a'; break;
      case PatternKind::kStencil2D: out += 's'; break;
    }
    out += ':';
    append_u64(out, c.offset);
    out += ':';
    append_double(out, c.weight);
  }
  out += ']';
}

/// Canonical rendering of every semantically relevant SimConfig field.
/// MUST be extended (and kSpecSchemaVersion bumped) whenever SimConfig
/// grows a field that changes simulation results.
void append_config(std::string& out, const SimConfig& cfg) {
  out += "cfg{h=";
  append_u64(out, cfg.h);
  out += ";groups=";
  append_u64(out, cfg.groups);
  out += ";ps=";
  append_u64(out, cfg.packet_size);
  out += ";ll=";
  append_u64(out, cfg.local_latency);
  out += ";gl=";
  append_u64(out, cfg.global_latency);
  out += ";fl=";
  append_u64(out, cfg.fifo_local);
  out += ";fg=";
  append_u64(out, cfg.fifo_global);
  out += ";fi=";
  append_u64(out, cfg.fifo_injection);
  out += ";vl=";
  append_u64(out, cfg.vcs_local);
  out += ";vg=";
  append_u64(out, cfg.vcs_global);
  out += ";vi=";
  append_u64(out, cfg.vcs_injection);
  out += ";ai=";
  append_u64(out, cfg.allocator_iterations);
  out += ";routing=";
  out += to_string(cfg.routing);
  out += ";ring=";
  out += to_string(cfg.ring);
  out += ";thr{var=";
  out += cfg.thresholds.variable ? '1' : '0';
  out += ";min=";
  append_double(out, cfg.thresholds.th_min);
  out += ";nmf=";
  append_double(out, cfg.thresholds.nonmin_factor);
  out += ";nms=";
  append_double(out, cfg.thresholds.th_nonmin_static);
  out += ";gap=";
  append_double(out, cfg.thresholds.min_gap);
  out += "};mre=";
  append_u64(out, cfg.max_ring_exits);
  out += ";rs=";
  append_u64(out, cfg.ring_stride);
  out += ";pbs=";
  append_double(out, cfg.pb_saturation_threshold);
  out += ";pbd=";
  append_u64(out, cfg.pb_broadcast_delay);
  out += ";ub=";
  append_u64(out, static_cast<u64>(static_cast<i64>(cfg.ugal_bias_phits)));
  out += ";ct=";
  out += cfg.congestion_throttle ? '1' : '0';
  out += ";on=";
  append_double(out, cfg.throttle_on);
  out += ";off=";
  append_double(out, cfg.throttle_off);
  out += ";dt=";
  append_u64(out, cfg.deadlock_timeout);
  out += ";shards=";
  append_u64(out, cfg.sim_shards);
  out += ";sgm=";
  out += cfg.shard_group_major ? '1' : '0';
  // cfg.wiring_table is deliberately absent: it is a debug/reference
  // execution mode with bit-identical results, not a semantic knob.
  out += '}';
}

u64 fnv1a64(const std::string& s, u64 basis) {
  u64 h = basis;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

std::string canonical_point(const RunPoint& point) {
  std::string out;
  out.reserve(512);
  out += 'v';
  append_u64(out, kSpecSchemaVersion);
  out += ";kind=";
  out += to_string(point.kind);
  out += ";seed=";
  append_u64(out, point.seed);
  out += ';';
  append_config(out, point.cfg);
  out += ";pat=";
  append_pattern(out, point.pattern);
  switch (point.kind) {
    case RunKind::kSteady:
      out += ";load=";
      append_double(out, point.load);
      out += ";warmup=";
      append_u64(out, point.run.warmup);
      out += ";measure=";
      append_u64(out, point.run.measure);
      break;
    case RunKind::kTransient:
      out += ";load=";
      append_double(out, point.load);
      out += ";patb=";
      append_pattern(out, point.pattern_b);
      out += ";loadb=";
      append_double(out, point.load_b);
      out += ";switch=";
      append_u64(out, point.transient.warmup);
      out += ";horizon=";
      append_u64(out, point.transient.horizon);
      out += ";lead=";
      append_u64(out, point.transient.lead);
      out += ";drain=";
      append_u64(out, point.transient.drain);
      out += ";bucket=";
      append_u64(out, point.transient.bucket);
      break;
    case RunKind::kBurst:
      out += ";packets=";
      append_u64(out, point.burst.packets_per_node);
      out += ";maxcycles=";
      append_u64(out, point.burst.max_cycles);
      break;
  }
  return out;
}

std::string content_digest(const std::string& text) {
  const u64 a = fnv1a64(text, 14695981039346656037ULL);
  const u64 b = fnv1a64(text, 14695981039346656037ULL ^
                                  0x9e3779b97f4a7c15ULL);
  char buf[33];
  std::snprintf(buf, sizeof buf, "%016llx%016llx",
                static_cast<unsigned long long>(a),
                static_cast<unsigned long long>(b));
  return buf;
}

std::string point_key(const RunPoint& point) {
  return content_digest(canonical_point(point));
}

std::string config_signature(const SimConfig& cfg) {
  std::string out = "ckpt-v";
  append_u64(out, kSpecSchemaVersion);
  out += ';';
  append_config(out, cfg);
  out += ";seed=";
  append_u64(out, cfg.seed);
  return out;
}

std::vector<std::string> ExperimentSpec::case_names() const {
  std::vector<std::string> names;
  switch (kind) {
    case RunKind::kSteady:
      for (const auto& p : patterns) names.push_back(p.name);
      break;
    case RunKind::kTransient:
      for (const auto& t : transitions) names.push_back(t.name);
      break;
    case RunKind::kBurst:
      for (const auto& w : workloads) names.push_back(w.name);
      break;
  }
  return names;
}

std::vector<RunPoint> ExperimentSpec::expand() const {
  std::vector<RunPoint> points;
  const std::size_t cases = kind == RunKind::kSteady ? patterns.size()
                            : kind == RunKind::kTransient ? transitions.size()
                                                          : workloads.size();
  const std::size_t nloads = kind == RunKind::kSteady ? loads.size() : 1;
  points.reserve(seeds.size() * cases * nloads * mechanisms.size());
  for (std::size_t s = 0; s < seeds.size(); ++s) {
    for (std::size_t c = 0; c < cases; ++c) {
      for (std::size_t l = 0; l < nloads; ++l) {
        for (std::size_t m = 0; m < mechanisms.size(); ++m) {
          RunPoint p;
          p.kind = kind;
          p.mechanism = mechanisms[m].label;
          p.seed = seeds[s];
          p.cfg = mechanisms[m].cfg;
          p.cfg.seed = seeds[s];
          p.mech_index = static_cast<u32>(m);
          p.case_index = static_cast<u32>(c);
          p.load_index = static_cast<u32>(l);
          p.seed_index = static_cast<u32>(s);
          switch (kind) {
            case RunKind::kSteady:
              p.case_name = patterns[c].name;
              p.pattern = patterns[c].pattern;
              p.load = loads[l];
              p.run = run;
              break;
            case RunKind::kTransient:
              p.case_name = transitions[c].name;
              p.pattern = transitions[c].a.pattern;
              p.load = transitions[c].load_a;
              p.pattern_b = transitions[c].b.pattern;
              p.load_b = transitions[c].load_b;
              p.transient = transient;
              break;
            case RunKind::kBurst:
              p.case_name = workloads[c].name;
              p.pattern = workloads[c].pattern;
              p.burst = burst;
              break;
          }
          points.push_back(std::move(p));
        }
      }
    }
  }
  return points;
}

std::string ExperimentSpec::validate() const {
  if (name.empty()) return "spec name must not be empty";
  if (mechanisms.empty()) return "spec needs at least one mechanism";
  if (seeds.empty()) return "spec needs at least one seed";
  switch (kind) {
    case RunKind::kSteady:
      if (patterns.empty()) return "steady spec needs at least one pattern";
      if (loads.empty()) return "steady spec needs at least one load";
      break;
    case RunKind::kTransient:
      if (transitions.empty())
        return "transient spec needs at least one transition";
      break;
    case RunKind::kBurst:
      if (workloads.empty()) return "burst spec needs at least one workload";
      if (burst.packets_per_node == 0)
        return "burst spec needs packets_per_node >= 1";
      break;
  }
  for (const auto& m : mechanisms) {
    if (m.label.empty()) return "mechanism label must not be empty";
    const std::string err = m.cfg.validate();
    if (!err.empty()) return "mechanism " + m.label + ": " + err;
  }
  return {};
}

// ---------------------------------------------------------------------------
// JSON loading
// ---------------------------------------------------------------------------

namespace {

bool get_u32(const JsonValue& v, const std::string& what, u32& out,
             std::string& error) {
  if (!v.is_number() || !v.has_exact_int() || v.as_int() < 0 ||
      v.as_int() > static_cast<i64>(~u32{0})) {
    error = what + " must be a non-negative integer";
    return false;
  }
  out = static_cast<u32>(v.as_int());
  return true;
}

bool get_u64(const JsonValue& v, const std::string& what, u64& out,
             std::string& error) {
  if (!v.is_number() || !v.has_exact_int() || v.as_int() < 0) {
    error = what + " must be a non-negative integer";
    return false;
  }
  out = static_cast<u64>(v.as_int());
  return true;
}

bool get_double(const JsonValue& v, const std::string& what, double& out,
                std::string& error) {
  if (!v.is_number()) {
    error = what + " must be a number";
    return false;
  }
  out = v.as_double();
  return true;
}

bool get_bool(const JsonValue& v, const std::string& what, bool& out,
              std::string& error) {
  if (!v.is_bool()) {
    error = what + " must be true or false";
    return false;
  }
  out = v.as_bool();
  return true;
}

bool parse_pattern_name(const std::string& text, u32 h, NamedPattern& out,
                        std::string& error) {
  out.name = text;
  if (text == "UN" || text == "uniform") {
    out.name = "UN";
    out.pattern = TrafficPattern::uniform();
    return true;
  }
  if (text == "stencil2d" || text == "ST") {
    out.name = "ST";
    out.pattern = TrafficPattern::stencil2d();
    return true;
  }
  std::string offset_text;
  if (text.rfind("ADV+", 0) == 0) offset_text = text.substr(4);
  else if (text.rfind("adversarial:", 0) == 0) offset_text = text.substr(12);
  if (!offset_text.empty()) {
    u32 offset = 0;
    if (offset_text == "h") {
      offset = h;
    } else {
      char* end = nullptr;
      const unsigned long v = std::strtoul(offset_text.c_str(), &end, 10);
      if (end != offset_text.c_str() + offset_text.size() || v == 0) {
        error = "bad adversarial offset in pattern '" + text + "'";
        return false;
      }
      offset = static_cast<u32>(v);
    }
    out.pattern = TrafficPattern::adversarial(offset);
    return true;
  }
  error = "unknown pattern '" + text +
          "' (expected UN, ADV+<n>, ADV+h, stencil2d, or a mix object)";
  return false;
}

bool parse_thresholds_json(const JsonValue& obj, MisrouteThresholds& thr,
                           std::string& error) {
  if (!obj.is_object()) {
    error = "thresholds must be an object";
    return false;
  }
  for (const auto& [key, value] : obj.members()) {
    bool ok = true;
    if (key == "variable") ok = get_bool(value, key, thr.variable, error);
    else if (key == "th_min") ok = get_double(value, key, thr.th_min, error);
    else if (key == "nonmin_factor")
      ok = get_double(value, key, thr.nonmin_factor, error);
    else if (key == "th_nonmin_static")
      ok = get_double(value, key, thr.th_nonmin_static, error);
    else if (key == "min_gap") ok = get_double(value, key, thr.min_gap, error);
    else {
      error = "unknown thresholds key '" + key + "'";
      return false;
    }
    if (!ok) return false;
  }
  return true;
}

}  // namespace

bool pattern_from_json(const JsonValue& v, u32 h, NamedPattern& out,
                       std::string& error) {
  if (v.is_string()) return parse_pattern_name(v.as_string(), h, out, error);
  if (!v.is_object()) {
    error = "pattern must be a name string or a mix object";
    return false;
  }
  const JsonValue* mix = v.find("mix");
  if (mix == nullptr || !mix->is_array() || mix->items().empty()) {
    error = "pattern object needs a non-empty \"mix\" array";
    return false;
  }
  std::vector<TrafficComponent> components;
  for (const auto& item : mix->items()) {
    if (!item.is_object()) {
      error = "mix entries must be objects";
      return false;
    }
    TrafficComponent c;
    const JsonValue* kind = item.find("kind");
    if (kind == nullptr || !kind->is_string()) {
      error = "mix entry needs a \"kind\" string";
      return false;
    }
    const std::string& k = kind->as_string();
    if (k == "uniform") c.kind = PatternKind::kUniform;
    else if (k == "adversarial") c.kind = PatternKind::kAdversarial;
    else if (k == "stencil2d") c.kind = PatternKind::kStencil2D;
    else {
      error = "unknown mix component kind '" + k + "'";
      return false;
    }
    if (const JsonValue* offset = item.find("offset")) {
      if (!get_u32(*offset, "mix offset", c.offset, error)) return false;
    }
    if (const JsonValue* weight = item.find("weight")) {
      if (!get_double(*weight, "mix weight", c.weight, error)) return false;
    }
    components.push_back(c);
  }
  out.pattern = TrafficPattern::mix(std::move(components));
  out.name = "MIX";
  if (const JsonValue* name = v.find("name")) {
    if (!name->is_string()) {
      error = "pattern name must be a string";
      return false;
    }
    out.name = name->as_string();
  }
  (void)h;
  return true;
}

bool apply_config_json(const JsonValue& obj, SimConfig& cfg,
                       const std::vector<std::string>& skip,
                       std::string& error) {
  if (!obj.is_object()) {
    error = "config overrides must be an object";
    return false;
  }
  for (const auto& [key, value] : obj.members()) {
    bool skipped = false;
    for (const auto& s : skip)
      if (key == s) {
        skipped = true;
        break;
      }
    if (skipped) continue;
    bool ok = true;
    if (key == "routing") {
      if (!value.is_string() ||
          !parse_routing_kind(value.as_string(), cfg.routing)) {
        error = "bad routing kind";
        ok = false;
      }
    } else if (key == "ring") {
      if (!value.is_string() || !parse_ring_kind(value.as_string(), cfg.ring)) {
        error = "bad ring kind (none|physical|embedded)";
        ok = false;
      }
    } else if (key == "groups") ok = get_u32(value, key, cfg.groups, error);
    else if (key == "packet_size")
      ok = get_u32(value, key, cfg.packet_size, error);
    else if (key == "local_latency")
      ok = get_u32(value, key, cfg.local_latency, error);
    else if (key == "global_latency")
      ok = get_u32(value, key, cfg.global_latency, error);
    else if (key == "fifo_local") ok = get_u32(value, key, cfg.fifo_local, error);
    else if (key == "fifo_global")
      ok = get_u32(value, key, cfg.fifo_global, error);
    else if (key == "fifo_injection")
      ok = get_u32(value, key, cfg.fifo_injection, error);
    else if (key == "vcs_local") ok = get_u32(value, key, cfg.vcs_local, error);
    else if (key == "vcs_global")
      ok = get_u32(value, key, cfg.vcs_global, error);
    else if (key == "vcs_injection")
      ok = get_u32(value, key, cfg.vcs_injection, error);
    else if (key == "allocator_iterations")
      ok = get_u32(value, key, cfg.allocator_iterations, error);
    else if (key == "max_ring_exits")
      ok = get_u32(value, key, cfg.max_ring_exits, error);
    else if (key == "ring_stride")
      ok = get_u32(value, key, cfg.ring_stride, error);
    else if (key == "pb_saturation_threshold")
      ok = get_double(value, key, cfg.pb_saturation_threshold, error);
    else if (key == "pb_broadcast_delay")
      ok = get_u32(value, key, cfg.pb_broadcast_delay, error);
    else if (key == "ugal_bias_phits") {
      if (!value.is_number() || !value.has_exact_int()) {
        error = "ugal_bias_phits must be an integer";
        ok = false;
      } else {
        cfg.ugal_bias_phits = static_cast<i32>(value.as_int());
      }
    } else if (key == "congestion_throttle")
      ok = get_bool(value, key, cfg.congestion_throttle, error);
    else if (key == "throttle_on")
      ok = get_double(value, key, cfg.throttle_on, error);
    else if (key == "throttle_off")
      ok = get_double(value, key, cfg.throttle_off, error);
    else if (key == "deadlock_timeout")
      ok = get_u32(value, key, cfg.deadlock_timeout, error);
    else if (key == "sim_shards")
      ok = get_u32(value, key, cfg.sim_shards, error);
    else if (key == "shard_group_major")
      ok = get_bool(value, key, cfg.shard_group_major, error);
    else if (key == "wiring_table")
      ok = get_bool(value, key, cfg.wiring_table, error);
    else if (key == "thresholds")
      ok = parse_thresholds_json(value, cfg.thresholds, error);
    else {
      error = "unknown config key '" + key + "'";
      ok = false;
    }
    if (!ok) {
      error = "config." + key + ": " + error;
      return false;
    }
  }
  return true;
}

bool spec_from_json(const JsonValue& doc, ExperimentSpec& out,
                    std::string& error) {
  if (!doc.is_object()) {
    error = "spec document must be a JSON object";
    return false;
  }
  ExperimentSpec spec;
  // Steady specs default to the windows every figure bench has used.
  spec.run = RunParams::windows(5'000, 6'000);
  // Fig. 6 conventions for transient specs.
  spec.transient.warmup = 20'000;
  spec.transient.horizon = 12'000;
  spec.transient.lead = 2'000;
  spec.transient.drain = 20'000;
  spec.transient.bucket = 500;
  // Fig. 7 conventions for burst specs.
  spec.burst.packets_per_node = 400;
  spec.burst.max_cycles = 20'000'000;

  if (const JsonValue* v = doc.find("kind")) {
    if (!v->is_string() || !parse_run_kind(v->as_string(), spec.kind)) {
      error = "kind must be \"steady\", \"transient\" or \"burst\"";
      return false;
    }
  }
  if (const JsonValue* v = doc.find("name")) {
    if (!v->is_string()) {
      error = "name must be a string";
      return false;
    }
    spec.name = v->as_string();
  }
  if (const JsonValue* v = doc.find("title")) {
    if (!v->is_string()) {
      error = "title must be a string";
      return false;
    }
    spec.title = v->as_string();
  }
  if (const JsonValue* v = doc.find("h")) {
    if (!get_u32(*v, "h", spec.h, error)) return false;
  }
  if (const JsonValue* v = doc.find("seeds")) {
    if (!v->is_array() || v->items().empty()) {
      error = "seeds must be a non-empty array of integers";
      return false;
    }
    spec.seeds.clear();
    for (const auto& s : v->items()) {
      u64 seed = 0;
      if (!get_u64(s, "seeds entry", seed, error)) return false;
      spec.seeds.push_back(seed);
    }
  } else if (const JsonValue* v2 = doc.find("seed")) {
    u64 seed = 0;
    if (!get_u64(*v2, "seed", seed, error)) return false;
    spec.seeds = {seed};
  }

  SimConfig base;
  base.h = spec.h;
  if (const JsonValue* v = doc.find("config")) {
    if (!apply_config_json(*v, base, {}, error)) return false;
  }

  const JsonValue* mechs = doc.find("mechanisms");
  if (mechs == nullptr || !mechs->is_array() || mechs->items().empty()) {
    error = "spec needs a non-empty \"mechanisms\" array";
    return false;
  }
  for (const auto& m : mechs->items()) {
    if (!m.is_object()) {
      error = "mechanisms entries must be objects";
      return false;
    }
    MechanismEntry entry;
    entry.cfg = base;
    const JsonValue* routing = m.find("routing");
    if (routing == nullptr || !routing->is_string() ||
        !parse_routing_kind(routing->as_string(), entry.cfg.routing)) {
      error = "each mechanism needs a valid \"routing\" string";
      return false;
    }
    // The paper's default evaluation setup: VC-ordered mechanisms get no
    // escape ring, OFAR variants get the physical ring. An explicit "ring"
    // member below overrides this.
    entry.cfg.ring =
        entry.cfg.vc_ordered() ? RingKind::kNone : RingKind::kPhysical;
    if (!apply_config_json(m, entry.cfg, {"label", "routing"}, error))
      return false;
    entry.label = to_string(entry.cfg.routing);
    if (const JsonValue* label = m.find("label")) {
      if (!label->is_string()) {
        error = "mechanism label must be a string";
        return false;
      }
      entry.label = label->as_string();
    }
    spec.mechanisms.push_back(std::move(entry));
  }

  switch (spec.kind) {
    case RunKind::kSteady: {
      const JsonValue* pats = doc.find("patterns");
      if (pats != nullptr) {
        if (!pats->is_array() || pats->items().empty()) {
          error = "patterns must be a non-empty array";
          return false;
        }
        for (const auto& p : pats->items()) {
          NamedPattern np;
          if (!pattern_from_json(p, spec.h, np, error)) return false;
          spec.patterns.push_back(std::move(np));
        }
      } else if (const JsonValue* pat = doc.find("pattern")) {
        NamedPattern np;
        if (!pattern_from_json(*pat, spec.h, np, error)) return false;
        spec.patterns.push_back(std::move(np));
      } else {
        error = "steady spec needs \"pattern\" or \"patterns\"";
        return false;
      }
      const JsonValue* loads = doc.find("loads");
      if (loads == nullptr) {
        error = "steady spec needs \"loads\" (array or {min,max,points})";
        return false;
      }
      if (loads->is_array()) {
        for (const auto& l : loads->items()) {
          double v = 0;
          if (!get_double(l, "loads entry", v, error)) return false;
          spec.loads.push_back(v);
        }
      } else if (loads->is_object()) {
        double lo = 0, hi = 0;
        u32 points = 0;
        const JsonValue* pmin = loads->find("min");
        const JsonValue* pmax = loads->find("max");
        const JsonValue* ppoints = loads->find("points");
        if (pmin == nullptr || pmax == nullptr || ppoints == nullptr ||
            !get_double(*pmin, "loads.min", lo, error) ||
            !get_double(*pmax, "loads.max", hi, error) ||
            !get_u32(*ppoints, "loads.points", points, error)) {
          if (error.empty()) error = "loads object needs min, max and points";
          return false;
        }
        spec.loads = expand_load_grid(lo, hi, points);
      } else {
        error = "loads must be an array or a {min,max,points} object";
        return false;
      }
      if (const JsonValue* v = doc.find("warmup")) {
        u64 w = 0;
        if (!get_u64(*v, "warmup", w, error)) return false;
        spec.run.warmup = w;
      }
      if (const JsonValue* v = doc.find("measure")) {
        u64 w = 0;
        if (!get_u64(*v, "measure", w, error)) return false;
        spec.run.measure = w;
      }
      break;
    }
    case RunKind::kTransient: {
      const JsonValue* trans = doc.find("transitions");
      if (trans == nullptr || !trans->is_array() || trans->items().empty()) {
        error = "transient spec needs a non-empty \"transitions\" array";
        return false;
      }
      for (const auto& t : trans->items()) {
        if (!t.is_object()) {
          error = "transitions entries must be objects";
          return false;
        }
        TransitionSpec tr;
        const JsonValue* a = t.find("a");
        const JsonValue* b = t.find("b");
        if (a == nullptr || b == nullptr ||
            !pattern_from_json(*a, spec.h, tr.a, error) ||
            !pattern_from_json(*b, spec.h, tr.b, error)) {
          if (error.empty()) error = "each transition needs \"a\" and \"b\"";
          return false;
        }
        if (const JsonValue* load = t.find("load")) {
          if (!get_double(*load, "transition load", tr.load_a, error))
            return false;
          tr.load_b = tr.load_a;
        }
        if (const JsonValue* load = t.find("load_a")) {
          if (!get_double(*load, "load_a", tr.load_a, error)) return false;
        }
        if (const JsonValue* load = t.find("load_b")) {
          if (!get_double(*load, "load_b", tr.load_b, error)) return false;
        }
        tr.name = tr.a.name + "->" + tr.b.name;
        if (const JsonValue* name = t.find("name")) {
          if (!name->is_string()) {
            error = "transition name must be a string";
            return false;
          }
          tr.name = name->as_string();
        }
        spec.transitions.push_back(std::move(tr));
      }
      struct Knob {
        const char* key;
        Cycle* target;
      };
      const Knob knobs[] = {{"switch_at", &spec.transient.warmup},
                            {"horizon", &spec.transient.horizon},
                            {"lead", &spec.transient.lead},
                            {"drain", &spec.transient.drain}};
      for (const auto& k : knobs) {
        if (const JsonValue* v = doc.find(k.key)) {
          if (!get_u64(*v, k.key, *k.target, error)) return false;
        }
      }
      if (const JsonValue* v = doc.find("bucket")) {
        if (!get_u32(*v, "bucket", spec.transient.bucket, error)) return false;
      }
      break;
    }
    case RunKind::kBurst: {
      const JsonValue* wls = doc.find("workloads");
      if (wls == nullptr || !wls->is_array() || wls->items().empty()) {
        error = "burst spec needs a non-empty \"workloads\" array";
        return false;
      }
      for (const auto& w : wls->items()) {
        NamedPattern np;
        if (!pattern_from_json(w, spec.h, np, error)) return false;
        spec.workloads.push_back(std::move(np));
      }
      if (const JsonValue* v = doc.find("packets")) {
        if (!get_u32(*v, "packets", spec.burst.packets_per_node, error))
          return false;
      }
      if (const JsonValue* v = doc.find("max_cycles")) {
        if (!get_u64(*v, "max_cycles", spec.burst.max_cycles, error))
          return false;
      }
      break;
    }
  }

  const std::string err = spec.validate();
  if (!err.empty()) {
    error = err;
    return false;
  }
  out = std::move(spec);
  return true;
}

bool spec_from_file(const std::string& path, ExperimentSpec& out,
                    std::string& error) {
  JsonValue doc;
  if (!json_parse_file(path, doc, error)) return false;
  if (!spec_from_json(doc, out, error)) {
    error = path + ": " + error;
    return false;
  }
  return true;
}

}  // namespace ofar
