// PacketPool is header-only (hot path); this TU anchors the module in the
// build so include hygiene of packet_pool.hpp is always compile-checked.
#include "sim/packet_pool.hpp"
