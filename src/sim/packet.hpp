// Packet model.
//
// The simulator is phit-accurate but allocates at packet granularity
// (virtual cut-through with a batch allocator, paper §V). A Packet carries
// the routing state the mechanisms need: hop counters for the hop-ordered VC
// discipline, the Valiant intermediate destination for VAL/PB/UGAL, and the
// OFAR misroute header flags + escape-ring state (paper §IV-A).
#pragma once

#include <limits>

#include "common/types.hpp"

namespace ofar {

inline constexpr GroupId kInvalidGroup = std::numeric_limits<GroupId>::max();
inline constexpr RouterId kInvalidRouter = std::numeric_limits<RouterId>::max();

// Field order is cache-conscious, not thematic: the struct packs to
// exactly 64 bytes and alignas(64) pins it to a single cache line. The
// saturated allocation scan touches thousands of scattered head packets
// per cycle and prefetches one line each (see Network::do_allocation) —
// a straddling Packet would make half of those prefetches cover only part
// of the fields route() reads. The route-hot fields (addresses, Valiant
// state, misroute flags, ring state) lead; commit/delivery-only fields
// (timestamps, the trace sequence number) trail.
struct alignas(64) Packet {
  // ---- routing addresses ----
  NodeId src = 0;
  NodeId dst = 0;
  RouterId dst_router = 0;

  // ---- Valiant state (VAL / PB / UGAL) ----
  GroupId inter_group = kInvalidGroup;    ///< intermediate group, or invalid
  RouterId inter_router = kInvalidRouter; ///< intra-group Valiant target
  bool valiant_done = true;               ///< phase 1 (to intermediate) done

  // ---- OFAR misroute header flags (paper §IV-A) ----
  bool global_misrouted = false;  ///< the one global misroute was spent
  bool local_misrouted = false;   ///< local misroute spent in `flag_group`
  GroupId flag_group = kInvalidGroup;  ///< group `local_misrouted` refers to

  // ---- escape-ring state (paper §IV-C) ----
  bool in_ring = false;
  bool ring_entered = false;  ///< ever entered the ring (distinct-packet stats)
  u8 ring_exits = 0;  ///< times the packet abandoned the ring (livelock cap)

  /// Selected by the hash-based trace sampler (trace_should_sample); read
  /// on the hot path (is this head's provenance wanted?).
  bool traced = false;

  // ---- hop bookkeeping (drives the ordered-VC discipline) ----
  u8 local_hops = 0;
  u8 global_hops = 0;
  u8 total_hops = 0;
  /// Local hops taken since entering the current group; resets on every
  /// global hop. The ordered-VC level of a local hop is
  /// global_hops + local_hops_in_group, which is strictly ascending along
  /// any l-g-l-g-l (or intra-group l-l) path — the property that makes the
  /// VC-ordered mechanisms deadlock-free.
  u8 local_hops_in_group = 0;

  u16 size = 0;          ///< phits
  u16 pattern_tag = 0;   ///< which traffic component generated it (stats)

  // ---- cold fields (grant commit / delivery only) ----
  Cycle birth = 0;       ///< generation cycle (latency baseline, paper §VI-B)
  Cycle last_progress = 0;  ///< last grant cycle (deadlock watchdog)
  /// Injection sequence number: the value of Network::injected_total() when
  /// the packet was placed. Assigned in the serial injection phase, so it
  /// is identical at any sim_threads — the basis of deterministic sampling.
  u64 seq = 0;
};
static_assert(sizeof(Packet) == 64 && alignof(Packet) == 64,
              "a Packet must occupy exactly one cache line");

}  // namespace ofar
