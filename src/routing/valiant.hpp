// VAL: Valiant routing (paper §V baseline; Valiant '82).
//
// Every inter-group packet is first sent minimally to a random intermediate
// group (different from source and destination), then minimally to its
// destination — the classic load-balancing answer to adversarial patterns,
// at the price of doubled global-link utilisation. Intra-group packets
// bounce through a random intermediate router of the group, which balances
// local links the same way.
#pragma once

#include <vector>

#include "common/phase.hpp"
#include "common/rng.hpp"
#include "routing/routing.hpp"

namespace ofar {

class ValiantPolicy : public RoutingPolicy {
 public:
  explicit ValiantPolicy(const SimConfig& cfg);

  const char* name() const noexcept override { return "VAL"; }

  void on_inject(Network& net, Packet& pkt, RouterId at) override;
  RouteChoice route(RouteContext& ctx) override;
  void bind_lanes(u32 lanes) override;
  void save_state(CkptWriter& w) const override;
  void load_state(CkptReader& r) override;

 protected:
  /// Assigns pkt's Valiant intermediate (group or router); used by the
  /// adaptive injection-time mechanisms (PB/UGAL) as well. Injection-time
  /// only, hence always the lane-0 stream.
  void assign_intermediate(Network& net, Packet& pkt, RouterId at);

  /// RNG stream for route()-time draws of shard `lane` (PAR's UGAL probe).
  /// Lane 0 is rng_ itself — the legacy sequential stream — so K = 1
  /// sharded runs replay the sequential kernel's draws exactly. The phases
  /// that draw from lane 0 via route() (parallel allocation) and via
  /// on_inject (serial injection) never overlap, so sharing is safe.
  OFAR_LANE_RNG Rng& route_rng(u32 lane) noexcept {
    return lane == 0 ? rng_ : lane_rngs_[lane - 1];
  }

  /// The sequential stream. NOT lane-annotated: route()-reachable code must
  /// go through route_rng(lane) — ofar_lint flags direct rng_ draws there.
  OFAR_SERIAL_ONLY Rng rng_;

 private:
  u64 seed_;  ///< salted policy seed, basis for the extra lane streams
  OFAR_LANE_RNG std::vector<Rng> lane_rngs_;
};

}  // namespace ofar
