"""Mutation self-test for the ofar_lint analyzer.

Seeds known phase-discipline violations into a scratch copy of the real
source tree — one at a time — and asserts that the analyzer flags each
mutant with the expected rule in the expected file, and that the clean
tree stays clean. This is the evidence that a green `ofar-lint` run means
something: every rule is backed by a mutant it demonstrably kills.

Run:  python3 -m ofar_lint.mutation_check [--root REPO]
Exit: 0 when the clean tree is clean and every mutant is killed.
"""

import argparse
import os
import shutil
import sys
import tempfile

from .cli import collect_files, load_program
from .rules import analyze

# Each mutation: a list of (anchor, replacement) edits applied to copies
# of real files. Anchors are verified unique so a refactor that moves
# them fails loudly here instead of silently testing nothing.
MUTATIONS = [
    {
        "name": "serial-call-direct",
        "why": "parallel transfer phase calls the serial event scheduler "
               "instead of staging the credit in ShardState",
        "edits": [("src/sim/network.cpp",
                   "++channel_phits_[out.channel];",
                   "++channel_phits_[out.channel];\n      "
                   "schedule_credit(out.channel, out.src_vc, 1);")],
        "rule": "serial-call",
        "file": "src/sim/network.cpp",
    },
    {
        "name": "serial-call-cross-class",
        "why": "a routing policy drives Network's serial pipeline from "
               "inside route()",
        "edits": [("src/routing/par.cpp",
                   "const UgalPaths paths = evaluate_ugal_paths",
                   "net.deliver_events();\n    "
                   "const UgalPaths paths = evaluate_ugal_paths")],
        "rule": "serial-call",
        "file": "src/routing/par.cpp",
    },
    {
        "name": "serial-write-counter",
        "why": "parallel phase bumps the global delivered counter "
               "directly instead of ShardState::delivered",
        "edits": [("src/sim/network.cpp",
                   "++channel_phits_[out.channel];",
                   "++channel_phits_[out.channel];\n      ++delivered_total_;")],
        "rule": "serial-write",
        "file": "src/sim/network.cpp",
    },
    {
        "name": "unstaged-trace-emit",
        "why": "parallel phase fires the trace callback directly, "
               "bypassing ShardState::traces staging",
        "edits": [("src/sim/network.cpp",
                   "++channel_phits_[out.channel];",
                   "++channel_phits_[out.channel];\n      "
                   "if (tracer_) tracer_(TraceEvent{});")],
        "rule": "unstaged-trace",
        "file": "src/sim/network.cpp",
    },
    {
        "name": "off-lane-rng-transitive",
        "why": "route() regrows the Valiant intermediate via "
               "assign_intermediate, whose draws use the serial stream "
               "(two calls deep — regex lint cannot see this)",
        "edits": [("src/routing/valiant.cpp",
                   "const PortId out = valiant_next_port(net, at, pkt);",
                   "assign_intermediate(net, pkt, at);\n  "
                   "const PortId out = valiant_next_port(net, at, pkt);")],
        "rule": "off-lane-rng",
        "file": "src/routing/valiant.cpp",
    },
    {
        "name": "off-lane-rng-pass-by-ref",
        "why": "PAR hands the shared serial stream to evaluate_ugal_paths "
               "instead of the bound lane's stream",
        "edits": [("src/routing/par.cpp",
                   "route_rng(lane))",
                   "rng_)")],
        "rule": "off-lane-rng",
        "file": "src/routing/par.cpp",
    },
    {
        "name": "off-lane-rng-accessor-unsealed",
        "why": "dropping OFAR_LANE_RNG from route_rng turns its rng_ "
               "fallback into an unsanctioned parallel-phase stream use",
        "edits": [("src/routing/valiant.hpp",
                   "OFAR_LANE_RNG Rng& route_rng",
                   "Rng& route_rng")],
        "rule": "off-lane-rng",
        "file": "src/routing/valiant.hpp",
    },
    {
        "name": "cross-shard-write-unowned",
        "why": "removing VcFifo's shard-ownership annotation exposes its "
               "parallel-phase mutations as unowned state writes",
        "edits": [("src/sim/fifo.hpp",
                   "class OFAR_SHARD_LOCAL VcFifo",
                   "class VcFifo")],
        "rule": "cross-shard-write",
        "file": "src/sim/fifo.hpp",
    },
    {
        "name": "wall-clock-direct",
        "why": "simulation phase reads real time",
        "edits": [("src/sim/network.cpp",
                   "void Network::advance_transfers(ShardState& sh) {",
                   "void Network::advance_transfers(ShardState& sh) {\n"
                   "  const auto wall = std::chrono::steady_clock::now(); "
                   "(void)wall;")],
        "rule": "wall-clock",
        "file": "src/sim/network.cpp",
    },
    {
        "name": "wall-clock-aliased",
        "why": "real-time clock laundered through a using-alias (regex "
               "lint cannot see this)",
        "edits": [("src/sim/network.cpp",
                   "namespace ofar {",
                   "namespace ofar {\n"
                   "using TickSource = std::chrono::steady_clock;"),
                  ("src/sim/network.cpp",
                   "void Network::advance_transfers(ShardState& sh) {",
                   "void Network::advance_transfers(ShardState& sh) {\n"
                   "  const auto wall = TickSource::now(); (void)wall;")],
        "rule": "wall-clock",
        "file": "src/sim/network.cpp",
    },
    {
        "name": "unordered-iter-aliased",
        "why": "iteration order of a std::unordered_map hidden behind a "
               "typedef (regex lint cannot see this)",
        "edits": [("src/sim/network.cpp",
                   "namespace ofar {",
                   "namespace ofar {\n"
                   "using PendingMap = std::unordered_map<u32, u32>;"),
                  ("src/sim/network.cpp",
                   "void Network::advance_transfers(ShardState& sh) {",
                   "void Network::advance_transfers(ShardState& sh) {\n"
                   "  PendingMap pm;\n"
                   "  for (const auto& kv : pm) { (void)kv; }")],
        "rule": "unordered-iter",
        "file": "src/sim/network.cpp",
    },
]


def run_analyzer(root):
    files = collect_files(root)
    program, _engine = load_program(root, files, "builtin")
    return analyze(program)


def main(argv=None):
    ap = argparse.ArgumentParser(prog="ofar_lint.mutation_check")
    ap.add_argument("--root", default=None,
                    help="repository root (default: auto-detect)")
    args = ap.parse_args(argv)

    from .cli import _find_root
    root = args.root or _find_root(os.getcwd())
    if root is None:
        print("mutation_check: cannot locate repository root",
              file=sys.stderr)
        return 2

    with tempfile.TemporaryDirectory(prefix="ofar_lint_mut_") as tmp:
        scratch = os.path.join(tmp, "repo")
        os.makedirs(scratch)
        shutil.copytree(os.path.join(root, "src"),
                        os.path.join(scratch, "src"))

        clean = run_analyzer(scratch)
        if clean:
            print("FAIL: clean tree is not clean:")
            for f in clean:
                print("  " + f.format())
            return 1
        print(f"clean tree: 0 findings ({len(MUTATIONS)} mutants to kill)")

        failures = 0
        for mut in MUTATIONS:
            originals = {}
            for path, anchor, replacement in (
                    (p, a, r) for p, a, r in mut["edits"]):
                full = os.path.join(scratch, path)
                with open(full, encoding="utf-8") as fh:
                    text = fh.read()
                if path not in originals:
                    originals[path] = text
                if text.count(anchor) != 1:
                    print(f"FAIL [{mut['name']}]: anchor not unique in "
                          f"{path}: {anchor!r}")
                    failures += 1
                    text = None
                    break
                with open(full, "w", encoding="utf-8") as fh:
                    fh.write(text.replace(anchor, replacement))
            if text is None:
                for path, orig in originals.items():
                    with open(os.path.join(scratch, path), "w",
                              encoding="utf-8") as fh:
                        fh.write(orig)
                continue

            findings = run_analyzer(scratch)
            hits = [f for f in findings
                    if f.rule == mut["rule"] and f.file == mut["file"]]
            if hits:
                locs = ", ".join(f"{f.file}:{f.line}" for f in hits[:3])
                print(f"killed [{mut['name']}] -> [{mut['rule']}] {locs}")
            else:
                print(f"FAIL [{mut['name']}]: expected [{mut['rule']}] "
                      f"in {mut['file']}, analyzer reported "
                      f"{len(findings)} finding(s):")
                for f in findings:
                    print("  " + f.format())
                failures += 1

            for path, orig in originals.items():
                with open(os.path.join(scratch, path), "w",
                          encoding="utf-8") as fh:
                    fh.write(orig)

        if failures:
            print(f"\nmutation_check: {failures}/{len(MUTATIONS)} "
                  "mutants survived")
            return 1
        print(f"\nmutation_check: all {len(MUTATIONS)} mutants killed")
        return 0


if __name__ == "__main__":
    sys.exit(main())
