#include "topology/hamiltonian.hpp"

#include <algorithm>
#include <numeric>
#include <set>

#include "common/check.hpp"

namespace ofar {

namespace {

u32 gcd_u32(u32 x, u32 y) noexcept { return std::gcd(x, y); }

struct CarrierPair {
  u32 in;   // local index where the ring enters each group
  u32 out;  // local index where the ring leaves each group
};

CarrierPair carriers(const Dragonfly& topo, u32 stride) {
  const u32 groups = topo.groups();
  const u32 slot_out = stride - 1;                 // toward group g + stride
  const u32 slot_in = groups - 1 - stride;         // far side of that slot
  return {topo.slot_carrier(slot_in), topo.slot_carrier(slot_out)};
}

}  // namespace

bool HamiltonianRing::constructible(const Dragonfly& topo,
                                    u32 stride) noexcept {
  const u32 groups = topo.groups();
  if (stride == 0 || stride >= groups) return false;
  if (gcd_u32(stride, groups) != 1) return false;
  // The outgoing slot must be wired on this (possibly trimmed) topology.
  if (!topo.slot_wired(stride - 1)) return false;
  const auto c = carriers(topo, stride);
  // A Hamiltonian path inside a group needs distinct endpoints (a >= 2).
  return c.in != c.out;
}

HamiltonianRing::HamiltonianRing(const Dragonfly& topo, u32 stride,
                                 u32 variant)
    : stride_(stride), variant_(variant) {
  OFAR_CHECK_MSG(constructible(topo, stride),
                 "no Hamiltonian ring with this stride on this topology "
                 "(need gcd(stride, groups) == 1 and distinct enter/exit "
                 "carriers; stride 1 requires groups > h + 1)");
  const u32 groups = topo.groups();
  const u32 a = topo.a();
  const auto c = carriers(topo, stride);

  // Hamiltonian path of local indices inside every group: enter carrier
  // first, exit carrier last. The middle section is a stride-dependent
  // permutation of the remaining routers, so rings built with different
  // strides use (mostly) different local edges — the ingredient of the
  // paper's §VII multi-ring reliability scheme. The permutation walks the
  // middle set with a step coprime to its size, seeded by the stride.
  std::vector<u32> middle;
  middle.reserve(a - 2);
  for (u32 l = 0; l < a; ++l)
    if (l != c.in && l != c.out) middle.push_back(l);
  std::vector<u32> group_path;
  group_path.reserve(a);
  group_path.push_back(c.in);
  if (!middle.empty()) {
    const u32 m = static_cast<u32>(middle.size());
    u32 step = 1 + (stride - 1 + variant) % m;
    while (std::gcd(step, m) != 1) ++step;
    u32 idx = (stride - 1 + variant * 3) % m;
    for (u32 i = 0; i < m; ++i) {
      group_path.push_back(middle[idx]);
      idx = (idx + step) % m;
    }
  }
  group_path.push_back(c.out);

  order_.reserve(topo.routers());
  crosses_.reserve(topo.routers());
  out_port_.reserve(topo.routers());
  GroupId g = 0;
  for (u32 step = 0; step < groups; ++step) {
    for (u32 i = 0; i < a; ++i) {
      const RouterId r = topo.router_at(g, group_path[i]);
      order_.push_back(r);
      if (i + 1 < a) {
        crosses_.push_back(false);
        out_port_.push_back(topo.local_port(group_path[i], group_path[i + 1]));
      } else {
        crosses_.push_back(true);
        out_port_.push_back(topo.slot_port(stride - 1));
      }
    }
    g = (g + stride) % groups;
  }

  position_.assign(topo.routers(), kInvalidIndex);
  for (u32 pos = 0; pos < order_.size(); ++pos) position_[order_[pos]] = pos;
  for (const u32 pos : position_) OFAR_CHECK(pos != kInvalidIndex);
}

bool HamiltonianRing::validate(const Dragonfly& topo) const {
  if (order_.size() != topo.routers()) return false;
  std::vector<bool> seen(topo.routers(), false);
  for (const RouterId r : order_) {
    if (r >= topo.routers() || seen[r]) return false;
    seen[r] = true;
  }
  for (u32 pos = 0; pos < order_.size(); ++pos) {
    const RouterId from = order_[pos];
    const RouterId to = order_[(pos + 1) % order_.size()];
    if (crosses_[pos]) {
      if (topo.group_of(from) == topo.group_of(to)) return false;
      if (!topo.global_port_wired(from, out_port_[pos])) return false;
      if (topo.global_peer(from, out_port_[pos]).router != to) return false;
    } else {
      if (topo.group_of(from) != topo.group_of(to)) return false;
      if (topo.local_peer(topo.local_of(from), out_port_[pos]) !=
          topo.local_of(to))
        return false;
    }
  }
  return true;
}

bool HamiltonianRing::edge_disjoint(const Dragonfly& topo,
                                    const HamiltonianRing& lhs,
                                    const HamiltonianRing& rhs) {
  auto edges = [&topo](const HamiltonianRing& ring) {
    std::set<std::pair<RouterId, RouterId>> out;
    for (u32 pos = 0; pos < ring.order_.size(); ++pos) {
      RouterId u = ring.order_[pos];
      RouterId v = ring.order_[(pos + 1) % ring.order_.size()];
      if (u > v) std::swap(u, v);
      out.emplace(u, v);
    }
    return out;
  };
  const auto le = edges(lhs);
  for (const auto& e : edges(rhs))
    if (le.count(e) != 0) return false;
  return true;
}

}  // namespace ofar
