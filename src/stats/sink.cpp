#include "stats/sink.hpp"

#include <charconv>
#include <cinttypes>
#include <cmath>
#include <cstring>

namespace ofar {

// Number formatting uses std::to_chars (shortest round-trip form): records
// carry ~45 numbers each, and snprintf("%.12g") alone made an interval
// snapshot cost ~15us — to_chars is roughly an order of magnitude cheaper
// and locale-independent. The shortest form ("0.25", "1e+22") is valid JSON.
JsonWriter& JsonWriter::value(double v) {
  comma();
  if (!std::isfinite(v)) {  // JSON has no inf/nan literal
    out_ += "null";
  } else {
    char buf[32];
    const auto res = std::to_chars(buf, buf + sizeof buf, v);
    out_.append(buf, res.ptr);
  }
  mark_written();
  return *this;
}

JsonWriter& JsonWriter::value(u64 v) {
  comma();
  char buf[24];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  out_.append(buf, res.ptr);
  mark_written();
  return *this;
}

JsonWriter& JsonWriter::value(i64 v) {
  comma();
  char buf[24];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  out_.append(buf, res.ptr);
  mark_written();
  return *this;
}

void JsonWriter::append_string(const char* s) {
  out_ += '"';
  // Fast path: metric names and labels are almost always escape-free, and
  // json_escape's return allocation dominates the cost of a key.
  const char* p = s;
  for (; *p != '\0'; ++p) {
    const unsigned char c = static_cast<unsigned char>(*p);
    if (c == '"' || c == '\\' || c < 0x20) break;
  }
  if (*p == '\0') {
    out_ += s;
  } else {
    out_ += json_escape(s);
  }
  out_ += '"';
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

std::string csv_quote(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

MetricsSink::MetricsSink(std::FILE* f, Format format, std::string path)
    : file_(f), format_(format), path_(std::move(path)) {}

std::unique_ptr<MetricsSink> MetricsSink::open(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return nullptr;
  const Format fmt = ends_with(path, ".csv") ? Format::kCsv : Format::kJsonl;
  auto sink =
      std::unique_ptr<MetricsSink>(new MetricsSink(f, fmt, path));
  if (fmt == Format::kCsv) sink->write_line("label,type,cycle,metric,value");
  return sink;
}

MetricsSink::~MetricsSink() {
  if (file_ != nullptr) std::fclose(file_);
}

void MetricsSink::write_line(const std::string& line) {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fputc('\n', file_);
  ++lines_;
}

void MetricsSink::write_csv_row(const std::string& label, const char* type,
                                Cycle cycle, const std::string& metric,
                                double value) {
  char buf[48];
  std::snprintf(buf, sizeof buf, ",%" PRIu64 ",", static_cast<u64>(cycle));
  std::string row = csv_quote(label);
  row += ',';
  row += type;
  row += buf;
  row += csv_quote(metric);
  row += ',';
  char val[32];
  const auto res = std::to_chars(val, val + sizeof val, value);
  row.append(val, res.ptr);
  write_line(row);
}

}  // namespace ofar
