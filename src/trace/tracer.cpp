#include "trace/tracer.hpp"

#include <algorithm>

#include "trace/perfetto.hpp"

namespace ofar::trace {

namespace {

std::string event_args_json(const TraceEvent& ev) {
  JsonWriter w;
  append_event_json(w, ev);
  return w.str();
}

}  // namespace

PacketTracer::PacketTracer(const Network& net, TracerConfig cfg)
    : net_(net), cfg_(std::move(cfg)) {
  if (cfg_.sample == 0) cfg_.sample = 1;
  if (cfg_.link_bucket == 0) cfg_.link_bucket = 256;
  if (cfg_.flight_depth > 0)
    recorder_ = std::make_unique<FlightRecorder>(net_.topo().routers(),
                                                 cfg_.flight_depth);
}

PacketTracer::~PacketTracer() { finish(); }

void PacketTracer::on_event(const TraceEvent& ev) {
  ++events_;
  if (recorder_) recorder_->record(ev);

  switch (ev.kind) {
    case TraceEvent::Kind::kInject: {
      Journey& j = open_[ev.seq];
      j.seq = ev.seq;
      j.src = ev.src;
      j.dst = ev.dst;
      j.inject = ev.cycle;
      return;
    }
    case TraceEvent::Kind::kGrant: {
      // Per-link series: only real network links (skip ejection sinks).
      if (!cfg_.links_path.empty()) {
        const ChannelId ch =
            net_.router(ev.router).outputs[ev.out_port].channel;
        if (ch != kInvalidChannel && !net_.channel(ch).is_ejection()) {
          auto it = links_.find(ch);
          if (it == links_.end()) {
            it = links_
                     .emplace(ch,
                              LinkSeries{TimeSeries(0, 0, cfg_.link_bucket),
                                         TimeSeries(0, 0, cfg_.link_bucket)})
                     .first;
            init_link_series(ch, it->second);
          }
          it->second.util.record_extending(ev.cycle,
                                           net_.config().packet_size);
          it->second.stall.record_extending(ev.cycle, ev.queue_wait);
        }
      }
      break;
    }
    case TraceEvent::Kind::kRingEnter:
    case TraceEvent::Kind::kRingExit:
      break;
    case TraceEvent::Kind::kDeliver: {
      auto it = open_.find(ev.seq);
      if (it == open_.end()) return;
      Journey j = std::move(it->second);
      open_.erase(it);
      j.hops.push_back(ev);
      j.delivered = true;
      j.deliver_cycle = ev.cycle;
      ++completed_;
      if (!cfg_.out_path.empty()) done_.push_back(std::move(j));
      return;
    }
  }

  // Grant-shaped events: append to the packet's journey (created lazily
  // when the tracer was installed after the packet's injection).
  auto it = open_.find(ev.seq);
  if (it == open_.end()) {
    Journey& j = open_[ev.seq];
    j.seq = ev.seq;
    j.src = ev.src;
    j.dst = ev.dst;
    j.inject = ev.cycle;
    j.hops.push_back(ev);
    return;
  }
  it->second.hops.push_back(ev);
}

std::string PacketTracer::flight_dump_path(const char* suffix) const {
  const std::string base =
      cfg_.out_path.empty() ? std::string("ofar_trace") : cfg_.out_path;
  return base + suffix;
}

void PacketTracer::on_audit_failure(Cycle now,
                                    const std::string& report_json) {
  if (!recorder_) return;
  recorder_->dump_json(flight_dump_path(".flight.json"), "audit_failure",
                       now, report_json);
}

void PacketTracer::on_deadlock(Cycle now, u64 stalled, u64 worst_wait) {
  if (!recorder_ || forensic_dumps_ >= 3) return;
  ++forensic_dumps_;
  JsonWriter ctx;
  ctx.begin_object();
  ctx.key("stalled_packets").value(stalled);
  ctx.key("worst_wait").value(worst_wait);
  ctx.end_object();
  recorder_->dump_json(
      flight_dump_path(
          (".deadlock" + std::to_string(forensic_dumps_) + ".json").c_str()),
      "deadlock_watchdog", now, ctx.str());
}

void PacketTracer::export_journeys() const {
  ChromeTraceWriter writer(cfg_.label);
  auto emit_journey = [&](const Journey& j) {
    const u64 pid = j.seq;
    std::string pname = "pkt " + std::to_string(j.seq) + " n" +
                        std::to_string(j.src) + "->n" + std::to_string(j.dst);
    if (!j.delivered) pname += " (in flight)";
    writer.process_name(pid, pname);
    std::vector<RouterId> named;
    const Cycle dur = net_.config().packet_size;
    for (const TraceEvent& ev : j.hops) {
      if (std::find(named.begin(), named.end(), ev.router) == named.end()) {
        named.push_back(ev.router);
        writer.thread_name(pid, ev.router,
                           "router " + std::to_string(ev.router));
      }
      switch (ev.kind) {
        case TraceEvent::Kind::kGrant: {
          if (ev.queue_wait > 0)
            writer.complete_event(pid, ev.router, "queued",
                                  ev.cycle - ev.queue_wait, ev.queue_wait,
                                  "");
          writer.complete_event(pid, ev.router, to_string(ev.prov.condition),
                                ev.cycle, dur, event_args_json(ev));
          break;
        }
        case TraceEvent::Kind::kRingEnter:
        case TraceEvent::Kind::kRingExit:
          writer.instant_event(pid, ev.router, to_string(ev.kind), ev.cycle,
                               event_args_json(ev));
          break;
        case TraceEvent::Kind::kDeliver:
          writer.instant_event(pid, ev.router, "deliver", ev.cycle,
                               event_args_json(ev));
          break;
        case TraceEvent::Kind::kInject:
          break;
      }
    }
  };
  for (const Journey& j : done_) emit_journey(j);
  for (const auto& [seq, j] : open_) emit_journey(j);  // still in flight
  writer.write_file(cfg_.out_path);
}

std::string PacketTracer::link_label(ChannelId ch) const {
  const Channel c = net_.channel(ch);
  return "r" + std::to_string(c.src_router) + ".p" +
         std::to_string(c.src_port) + "." + to_string(c.cls);
}

std::FILE* PacketTracer::links_file() {
  if (links_file_ != nullptr) return links_file_;
  links_file_ = std::fopen(cfg_.links_path.c_str(), "wb");
  if (links_file_ == nullptr) return nullptr;
  const bool csv = cfg_.links_path.size() >= 4 &&
                   cfg_.links_path.compare(cfg_.links_path.size() - 4, 4,
                                           ".csv") == 0;
  if (csv) std::fputs("label,cycle,mean,count\n", links_file_);
  return links_file_;
}

void PacketTracer::init_link_series(ChannelId ch, LinkSeries& series) {
  if (cfg_.link_window == 0) return;  // unbounded (legacy behaviour)
  const bool csv = cfg_.links_path.size() >= 4 &&
                   cfg_.links_path.compare(cfg_.links_path.size() - 4, 4,
                                           ".csv") == 0;
  // Retired buckets stream straight into the links file in the exact row
  // format dump_csv/dump_jsonl would emit at export; series that never
  // overflow the window never open the file early, so short runs stay
  // byte-identical to the unwindowed export.
  const auto sink = [this, csv](const std::string& label) {
    return [this, csv, label](Cycle mid, const TimeSeries::Bucket& b) {
      std::FILE* f = links_file();
      if (f == nullptr) return;
      if (csv) {
        std::fprintf(f, "%s,%llu,%.17g,%llu\n", label.c_str(),
                     static_cast<unsigned long long>(mid), b.mean(),
                     static_cast<unsigned long long>(b.count));
      } else {
        JsonWriter w;
        w.begin_object();
        w.key("label").value(label);
        w.key("cycle").value(static_cast<u64>(mid));
        w.key("mean").value(b.mean());
        w.key("count").value(b.count);
        w.end_object();
        std::fprintf(f, "%s\n", w.str().c_str());
      }
    };
  };
  const std::string base = link_label(ch);
  series.util.set_window(cfg_.link_window, sink(base + ".util"));
  series.stall.set_window(cfg_.link_window, sink(base + ".stall"));
}

void PacketTracer::export_links() {
  std::FILE* f = links_file();
  if (f == nullptr) return;
  const bool csv = cfg_.links_path.size() >= 4 &&
                   cfg_.links_path.compare(cfg_.links_path.size() - 4, 4,
                                           ".csv") == 0;
  for (const auto& [ch, series] : links_) {
    const std::string base = link_label(ch);
    // util: mean phits per sampled grant (count = sampled grants per
    // bucket; multiply mean*count*sample for an absolute-phit estimate).
    // stall: mean queue-wait of the grants that entered the link.
    if (csv) {
      series.util.dump_csv(f, base + ".util");
      series.stall.dump_csv(f, base + ".stall");
    } else {
      series.util.dump_jsonl(f, base + ".util");
      series.stall.dump_jsonl(f, base + ".stall");
    }
  }
  std::fclose(f);
  links_file_ = nullptr;
}

void PacketTracer::finish() {
  if (finished_) return;
  finished_ = true;
  if (!cfg_.out_path.empty()) export_journeys();
  if (!cfg_.links_path.empty()) export_links();
}

}  // namespace ofar::trace
