file(REMOVE_RECURSE
  "CMakeFiles/fig7_bursts.dir/fig7_bursts.cpp.o"
  "CMakeFiles/fig7_bursts.dir/fig7_bursts.cpp.o.d"
  "fig7_bursts"
  "fig7_bursts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_bursts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
