# Empty compiler generated dependencies file for ablation_rings.
# This may be replaced when dependencies are built.
