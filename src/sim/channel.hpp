// Unidirectional channel (link) descriptors.
//
// Channels carry one phit per cycle with a fixed wire latency; phit and
// credit propagation are executed by the Network's event wheels, so Channel
// itself is plain data. Channel ids are *dense*: id = src_router * ports +
// src_port, so a descriptor is pure arithmetic over the topology and the
// Network resolves one on the fly (implicit wiring) instead of keeping a
// materialized table. Utilisation lives in Network::channel_phits_ (flat,
// indexed by the same dense id).
#pragma once

#include "common/types.hpp"

namespace ofar {

enum class ChannelClass : u8 {
  kLocal,       ///< intra-group link of the canonical dragonfly
  kGlobal,      ///< inter-group link of the canonical dragonfly
  kRingLocal,   ///< physical escape-ring wire inside a group
  kRingGlobal,  ///< physical escape-ring wire between groups
  kEjection,    ///< router -> processing-node link
};

const char* to_string(ChannelClass c) noexcept;

// Plain value type: resolved arithmetically per query in implicit-wiring
// mode, or read from the reference table in wiring-table mode. Either way a
// descriptor is immutable data — the shard-ownership story lives with the
// flat utilisation counters in Network.
struct Channel {
  RouterId src_router = 0;
  PortId src_port = 0;
  // Destination: a router input port, or a node for ejection channels.
  RouterId dst_router = 0;
  PortId dst_port = 0;
  NodeId dst_node = 0;  ///< valid only when cls == kEjection
  u32 latency = 1;
  ChannelClass cls = ChannelClass::kLocal;

  bool is_ejection() const noexcept { return cls == ChannelClass::kEjection; }
};

inline const char* to_string(ChannelClass c) noexcept {
  switch (c) {
    case ChannelClass::kLocal: return "local";
    case ChannelClass::kGlobal: return "global";
    case ChannelClass::kRingLocal: return "ring-local";
    case ChannelClass::kRingGlobal: return "ring-global";
    case ChannelClass::kEjection: return "ejection";
  }
  return "?";
}

}  // namespace ofar
