#!/usr/bin/env python3
"""Ban nondeterminism from the simulation core.

The whole test strategy (golden digests, replay equality, thread-count
independence — see tests/test_determinism.cpp) rests on the simulator being
a pure function of (config, seed). This lint rejects the constructs that
quietly break that property when they sneak into src/:

  * C library RNGs (rand, srand, random) and std::random_device — all
    randomness must flow through common/rng.hpp, seeded from SimConfig;
  * wall-clock reads (std::chrono clocks, time(), clock(), gettimeofday)
    outside src/stats/, where telemetry may timestamp records — simulation
    decisions must depend on the cycle counter only;
  * unordered associative containers — their iteration order varies across
    libstdc++ versions and ASLR runs, so any loop over one is a latent
    replay divergence. The core uses vectors indexed by dense ids;
  * raw std::thread / std::async outside common/parallel, and range-for
    iteration over unordered containers (which on a sharded-kernel commit
    path would order cross-shard effects by hash layout instead of shard
    index — DESIGN.md §10).

A finding can be waived for a reviewed reason with a trailing
`// lint: allow(<rule>)` comment on the offending line.

`--list-waivers` prints every waiver site with its rule, and marks the
ones that no longer suppress anything (the pattern stopped matching, or
the rule name is unknown) as STALE so they can be deleted. The semantic
analyzer in tools/ofar_lint has the same mode (`--stale-waivers`) for
its AST-level rules.

Usage: tools/lint_determinism.py [--list-waivers] [root]
       (root defaults to the repo root)
Exits 0 when clean, 1 with file:line diagnostics otherwise; with
--list-waivers, exits 1 only when a stale waiver remains.
"""

import os
import re
import sys

RULES = [
    # (rule name, regex, paths it applies to, message)
    (
        "libc-rng",
        re.compile(r"(?<![\w:.>])(?:s?rand|random)\s*\("),
        "src/",
        "C library RNG; use common/rng.hpp seeded from SimConfig",
    ),
    (
        "random-device",
        re.compile(r"std::random_device"),
        "src/",
        "hardware entropy source; use common/rng.hpp seeded from SimConfig",
    ),
    (
        "wall-clock",
        re.compile(
            r"std::chrono::(?:steady_clock|system_clock|"
            r"high_resolution_clock)|(?<![\w:.>])(?:time|clock)\s*\(\s*"
            r"(?:NULL|nullptr)?\s*\)|gettimeofday"
        ),
        "src/",
        "wall-clock read in simulation code; cycle decisions must use "
        "Network::now() (telemetry timestamps belong in src/stats/)",
    ),
    (
        "unordered-container",
        re.compile(r"std::unordered_(?:map|set|multimap|multiset)"),
        "src/",
        "iteration order is not deterministic across runs; use a vector "
        "indexed by dense ids (or sort before iterating)",
    ),
    (
        "raw-thread",
        re.compile(
            r"std::(?:thread(?!::hardware_concurrency)|jthread|async)"
        ),
        "src/",
        "raw threading primitive; all simulation parallelism must go "
        "through common/parallel (ShardPool / parallel_for), whose phase "
        "barriers are what make shard-ordered commits possible",
    ),
    (
        "trace-emit",
        re.compile(r"(?<![\w.>])tracer_\s*\("),
        "src/",
        "direct TraceEvent emission: trace callbacks outside the serial "
        "phases must be staged in ShardState::traces and flushed by "
        "commit_shard_staging in shard index order, or the trace stream "
        "stops being bit-identical across sim_threads (DESIGN.md §11); "
        "reviewed serial-phase sites carry `// lint: allow(trace-emit)`",
    ),
    (
        "unordered-commit",
        re.compile(
            r"for\s*\([^;)]*:\s*[^)]*unordered[^)]*\)"
        ),
        "src/",
        "range-for over an unordered container: on a cross-shard commit "
        "path this orders wheel/stats commits by hash-table layout instead "
        "of shard index and breaks digest equality across thread counts "
        "(DESIGN.md §10); iterate shards_/channels in index order",
    ),
]

# Reviewed exceptions by (rule, path prefix): telemetry may timestamp its
# records with real time, which never feeds back into the simulation;
# common/parallel is the one place allowed to own std::thread (it is the
# layer the raw-thread rule funnels everyone else into).
ALLOWED_PREFIXES = {
    ("wall-clock", "src/stats/"),
    ("raw-thread", "src/common/parallel"),
}

SUPPRESS = re.compile(r"//\s*lint:\s*allow\((?P<rule>[\w-]+)\)")

SKIP_DIRS = {"CMakeFiles", "build", ".git"}


def lint_file(root, relpath):
    findings = []
    with open(os.path.join(root, relpath), encoding="utf-8") as f:
        for lineno, line in enumerate(f, start=1):
            suppressed = {m.group("rule") for m in SUPPRESS.finditer(line)}
            code = line.split("//", 1)[0]
            for rule, pattern, prefix, message in RULES:
                if not relpath.startswith(prefix) or rule in suppressed:
                    continue
                if any(
                    relpath.startswith(p)
                    for r, p in ALLOWED_PREFIXES
                    if r == rule
                ):
                    continue
                if pattern.search(code):
                    findings.append(
                        f"{relpath}:{lineno}: [{rule}] {message}\n"
                        f"    {line.rstrip()}"
                    )
    return findings


def _source_files(root):
    for dirpath, dirnames, filenames in os.walk(os.path.join(root, "src")):
        dirnames[:] = [d for d in dirnames if d not in SKIP_DIRS]
        for name in sorted(filenames):
            if name.endswith((".hpp", ".cpp")):
                yield os.path.relpath(os.path.join(dirpath, name), root)


def list_waivers(root):
    """Prints every `// lint: allow(...)` site; a waiver whose rule no
    longer matches the line (or names no known rule) is STALE and should
    be deleted. Returns the stale count."""
    patterns = {rule: pattern for rule, pattern, _prefix, _msg in RULES}
    stale = 0
    total = 0
    for rel in _source_files(root):
        with open(os.path.join(root, rel), encoding="utf-8") as f:
            for lineno, line in enumerate(f, start=1):
                for m in SUPPRESS.finditer(line):
                    total += 1
                    rule = m.group("rule")
                    code = line.split("//", 1)[0]
                    pattern = patterns.get(rule)
                    if pattern is None:
                        if _is_ast_rule(rule):
                            # ofar_lint owns the AST-level rule names;
                            # its --stale-waivers mode judges these.
                            print(f"{rel}:{lineno}: allow({rule}) "
                                  "[ofar_lint rule]")
                        else:
                            print(f"{rel}:{lineno}: allow({rule}) STALE "
                                  "(unknown rule)")
                            stale += 1
                        continue
                    if pattern.search(code):
                        print(f"{rel}:{lineno}: allow({rule})")
                    else:
                        print(f"{rel}:{lineno}: allow({rule}) STALE "
                              "(pattern no longer matches this line)")
                        stale += 1
    print(f"{total} waiver(s), {stale} stale")
    return stale


def _is_ast_rule(rule):
    return rule in {
        "serial-call", "serial-write", "cross-shard-write", "off-lane-rng",
        "unordered-iter", "unstaged-trace",
    }


def main():
    argv = [a for a in sys.argv[1:]]
    flag_list = "--list-waivers" in argv
    argv = [a for a in argv if a != "--list-waivers"]
    root = argv[0] if argv else os.path.join(
        os.path.dirname(os.path.abspath(__file__)), os.pardir
    )
    root = os.path.abspath(root)
    if flag_list:
        return 1 if list_waivers(root) else 0
    findings = []
    checked = 0
    for rel in _source_files(root):
        findings.extend(lint_file(root, rel))
        checked += 1
    for finding in findings:
        print(finding)
    if findings:
        print(
            f"lint_determinism: {len(findings)} finding(s) in {checked} "
            "files — see tests/test_determinism.cpp for why these "
            "constructs are banned",
            file=sys.stderr,
        )
        return 1
    print(f"lint_determinism: {checked} files clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
