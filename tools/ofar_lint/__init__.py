"""ofar_lint: semantic phase-discipline analyzer for the sharded kernel.

Checks the concurrency/determinism contracts of DESIGN.md §10 against the
annotation vocabulary of src/common/phase.hpp (OFAR_PARALLEL_PHASE,
OFAR_SERIAL_ONLY, OFAR_SHARD_LOCAL, OFAR_LANE_RNG): it walks the call
graph from every parallel-phase root and rejects serial-only calls and
writes, off-lane RNG draws, unordered-container iteration (through
typedefs and auto) and wall-clock reads reachable from a parallel phase.

Two frontends produce the same semantic model (ofar_lint.model):

  * builtin — a dependency-free C++ tokenizer/parser (ofar_lint.lexer,
    ofar_lint.frontend_builtin). Always available; the one CI and ctest
    run.
  * clang — libclang over the CMake-exported compile_commands.json
    (ofar_lint.frontend_clang). Used automatically when the `clang`
    Python bindings are importable; exact on templates and overload sets.

Run:  python3 -m ofar_lint [--root REPO] [--engine auto|builtin|clang]
"""

__version__ = "1.0"
