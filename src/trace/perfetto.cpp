#include "trace/perfetto.hpp"

#include <cstdio>

#include "stats/sink.hpp"

namespace ofar::trace {

namespace {
std::string u64s(u64 v) { return std::to_string(v); }
}  // namespace

void ChromeTraceWriter::process_name(u64 pid, const std::string& name) {
  events_.push_back("{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" +
                    u64s(pid) + ",\"tid\":0,\"args\":{\"name\":\"" +
                    json_escape(name) + "\"}}");
}

void ChromeTraceWriter::thread_name(u64 pid, u64 tid,
                                    const std::string& name) {
  events_.push_back("{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" +
                    u64s(pid) + ",\"tid\":" + u64s(tid) +
                    ",\"args\":{\"name\":\"" + json_escape(name) + "\"}}");
}

void ChromeTraceWriter::complete_event(u64 pid, u64 tid,
                                       const std::string& name, Cycle ts,
                                       Cycle dur,
                                       const std::string& args_json) {
  std::string ev = "{\"ph\":\"X\",\"cat\":\"pkt\",\"pid\":" + u64s(pid) +
                   ",\"tid\":" + u64s(tid) + ",\"name\":\"" +
                   json_escape(name) + "\",\"ts\":" + u64s(ts) +
                   ",\"dur\":" + u64s(dur);
  if (!args_json.empty()) ev += ",\"args\":" + args_json;
  ev += '}';
  events_.push_back(std::move(ev));
}

void ChromeTraceWriter::instant_event(u64 pid, u64 tid,
                                      const std::string& name, Cycle ts,
                                      const std::string& args_json) {
  std::string ev = "{\"ph\":\"i\",\"s\":\"t\",\"cat\":\"pkt\",\"pid\":" +
                   u64s(pid) + ",\"tid\":" + u64s(tid) + ",\"name\":\"" +
                   json_escape(name) + "\",\"ts\":" + u64s(ts);
  if (!args_json.empty()) ev += ",\"args\":" + args_json;
  ev += '}';
  events_.push_back(std::move(ev));
}

bool ChromeTraceWriter::write_file(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  bool ok = std::fputs("{\"traceEvents\":[\n", f) >= 0;
  for (std::size_t i = 0; i < events_.size(); ++i) {
    if (ok && std::fputs(events_[i].c_str(), f) < 0) ok = false;
    if (ok && i + 1 < events_.size() && std::fputs(",\n", f) < 0) ok = false;
  }
  std::string tail = "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{";
  tail += "\"label\":\"" + json_escape(label_) +
          "\",\"time_unit\":\"1 us == 1 cycle\"}}\n";
  if (ok && std::fputs(tail.c_str(), f) < 0) ok = false;
  std::fclose(f);
  return ok;
}

}  // namespace ofar::trace
