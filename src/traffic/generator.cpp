#include "traffic/generator.hpp"

#include "common/check.hpp"
#include "common/ckpt_stream.hpp"
#include "sim/network.hpp"

namespace ofar {

namespace {

// One cycle's worth of per-node Bernoulli trials: draws exactly one value
// per node from `state` (plus whatever on_hit consumes), calling on_hit(n)
// for every passing node. Byte-for-byte the same draw stream as the naive
//   for n: if (state.chance(p)) { ...pick/offer using state... }
// loop, but structured for speed — this loop runs for every node every
// cycle and is the per-cycle cost floor of low-load simulations:
//  - trials compare the raw 64-bit draw against threshold << 11 (exactly
//    chance(p), see Rng::chance_threshold) — no int->double conversion;
//  - draws advance a local Rng copy whose address never reaches a call, so
//    the xoshiro state chain stays in registers;
//  - draws run in blocks of four with one rarely-taken hit test per block;
//    a block with a hit is replayed draw-by-draw from a register-copy
//    anchor so the stream position seen by on_hit is exactly the scalar
//    loop's. on_hit must draw from the Rng passed to it (the member, kept
//    in sync around the call), not from any cached copy.
template <typename OnHit>
void bernoulli_trials(Rng& state, u32 nodes, u64 threshold, OnHit&& on_hit) {
  if (threshold >= (u64{1} << 53)) {  // p >= 1: every trial passes
    for (u32 n = 0; n < nodes; ++n) {
      (void)state();
      on_hit(n);
    }
    return;
  }
  const u64 raw_threshold = threshold << 11;  // < 2^64 since threshold < 2^53
  Rng rng = state;
  u32 n = 0;
  while (n + 4 <= nodes) {
    const Rng anchor = rng;
    const u64 r0 = rng();
    const u64 r1 = rng();
    const u64 r2 = rng();
    const u64 r3 = rng();
    if (r0 < raw_threshold || r1 < raw_threshold || r2 < raw_threshold ||
        r3 < raw_threshold) {
      rng = anchor;
      for (u32 j = 0; j < 4; ++j, ++n) {
        if ((rng() >> 11) >= threshold) continue;
        state = rng;
        on_hit(n);
        rng = state;
      }
    } else {
      n += 4;
    }
  }
  for (; n < nodes; ++n) {
    if ((rng() >> 11) >= threshold) continue;
    state = rng;
    on_hit(n);
    rng = state;
  }
  state = rng;
}

}  // namespace

BernoulliSource::BernoulliSource(TrafficPattern pattern, double load_phits,
                                 u64 seed)
    : pattern_(std::move(pattern)), load_(load_phits),
      rng_(seed ^ 0x5452414646494353ULL) {}

void BernoulliSource::tick(Network& net) {
  const u64 threshold =
      Rng::chance_threshold(load_ / net.config().packet_size);
  bernoulli_trials(rng_, net.topo().nodes(), threshold, [&](u32 n) {
    u16 tag;
    const NodeId dst = pattern_.pick(n, net.topo(), rng_, tag);
    net.offer(n, dst, tag);
  });
}

PhasedSource::PhasedSource(std::vector<Phase> phases, u64 seed)
    : phases_(std::move(phases)), rng_(seed ^ 0x504841534544ULL) {
  OFAR_CHECK(!phases_.empty());
}

void PhasedSource::tick(Network& net) {
  const Cycle now = net.now();
  const Phase* active = nullptr;
  for (const Phase& ph : phases_) {
    if (ph.until == 0 || now < ph.until) {
      active = &ph;
      break;
    }
  }
  if (active == nullptr) return;  // schedule exhausted
  const u64 threshold =
      Rng::chance_threshold(active->load_phits / net.config().packet_size);
  bernoulli_trials(rng_, net.topo().nodes(), threshold, [&](u32 n) {
    u16 tag;
    const NodeId dst = active->pattern.pick(n, net.topo(), rng_, tag);
    net.offer(n, dst, static_cast<u16>(tag + active->tag_base));
  });
}

BurstSource::BurstSource(TrafficPattern pattern, u32 packets_per_node,
                         u64 seed)
    : pattern_(std::move(pattern)), packets_per_node_(packets_per_node),
      rng_(seed ^ 0x4255525354ULL) {}

void BurstSource::tick(Network& net) {
  if (remaining_.empty()) {
    remaining_.assign(net.topo().nodes(), packets_per_node_);
    remaining_total_ =
        static_cast<u64>(net.topo().nodes()) * packets_per_node_;
  }
  if (remaining_total_ == 0) return;
  const u32 nodes = net.topo().nodes();
  for (NodeId n = 0; n < nodes; ++n) {
    while (remaining_[n] > 0) {
      u16 tag;
      const NodeId dst = pattern_.pick(n, net.topo(), rng_, tag);
      if (!net.try_inject(n, dst, tag)) break;
      --remaining_[n];
      --remaining_total_;
    }
  }
}

void TrafficSource::save_state(CkptWriter&) const {}
void TrafficSource::load_state(CkptReader&) {}

void BernoulliSource::save_state(CkptWriter& w) const { w.put_rng(rng_); }
void BernoulliSource::load_state(CkptReader& r) { r.get_rng(rng_); }

void PhasedSource::save_state(CkptWriter& w) const { w.put_rng(rng_); }
void PhasedSource::load_state(CkptReader& r) { r.get_rng(rng_); }

void BurstSource::save_state(CkptWriter& w) const {
  w.put_rng(rng_);
  w.put_u64(remaining_total_);
  w.put_u64(remaining_.size());
  w.put_pod_span(remaining_.data(), remaining_.size());
}

void BurstSource::load_state(CkptReader& r) {
  r.get_rng(rng_);
  remaining_total_ = r.get_u64();
  const u64 n = r.get_u64();
  if (!r.ok() || n > (u64{1} << 32)) {
    r.fail();
    return;
  }
  remaining_.assign(n, 0);
  r.get_pod_span(remaining_.data(), remaining_.size());
}

}  // namespace ofar
