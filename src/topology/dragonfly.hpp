// Canonical dragonfly topology (Kim et al., ISCA'08) with the *consecutive*
// ("absolute") global wiring arrangement the paper assumes in §III.
//
// Parameters follow the paper: h global links per router, p = h nodes per
// router, a = 2h routers per group, and at most a*h + 1 groups. Groups are
// complete graphs of local links; each pair of groups is joined by exactly
// one global link.
//
// Global wiring: group g owns a*h outgoing global "slots". Slot d of group g
// connects to group (g + d + 1) mod G and is carried on router floor(d/h),
// global port d mod h. The matching slot on the far side is G - 2 - d. This
// consecutive arrangement is what makes ADV+h pathological: the h links
// entering a transit group from one source group all land on one router,
// while the h links toward the destination group all leave from the next
// router, funnelling all misrouted traffic through a single local link.
#pragma once

#include <string>

#include "common/check.hpp"
#include "common/types.hpp"

namespace ofar {

/// Classification of a router port (same layout on input and output sides).
enum class PortClass : u8 {
  kNode,    ///< to/from a processing node (injection on input, ejection out)
  kLocal,   ///< intra-group link
  kGlobal,  ///< inter-group link
  kRing,    ///< dedicated physical escape-ring port
};

const char* to_string(PortClass c) noexcept;

class Dragonfly {
 public:
  /// Builds a dragonfly with the given h. `groups == 0` selects the maximum
  /// size (a*h + 1 groups); smaller values trim the group count (useful for
  /// tests), leaving high global slots unwired.
  /// `physical_ring` reserves one extra ring port per router.
  Dragonfly(u32 h, u32 groups = 0, bool physical_ring = false);

  // ---- sizes ----
  u32 h() const noexcept { return h_; }
  u32 p() const noexcept { return h_; }
  u32 a() const noexcept { return 2 * h_; }
  u32 groups() const noexcept { return groups_; }
  u32 routers() const noexcept { return groups_ * a(); }
  u32 nodes() const noexcept { return routers() * p(); }
  u32 max_groups() const noexcept { return a() * h_ + 1; }
  bool has_ring_port() const noexcept { return physical_ring_; }

  /// Entity-count trait for id sizing. Everything is computed in u64 so
  /// callers can validate a requested topology against the compact 32-bit
  /// id types (RouterId/NodeId/ChannelId/PortId widths) *before* any
  /// truncating arithmetic runs — the basis of the scale checks in the
  /// Network constructor. h=16 (513 groups, 262,656 endpoints, 64 ports
  /// with the physical ring) is the largest balanced dragonfly whose port
  /// count fits the 64-bit output-activity masks; h=22 would need 88 ports
  /// per router and is out of scope for the current kernel.
  struct Limits {
    u64 routers = 0;
    u64 nodes = 0;
    u64 ports = 0;     ///< ports per router
    u64 channels = 0;  ///< dense channel-id bound: routers * ports
    u64 max_vcs = 0;   ///< most VCs any single input port may carry
  };
  Limits limits(u32 max_vcs_per_port) const noexcept {
    Limits l;
    l.routers = u64{groups_} * a();
    l.nodes = l.routers * p();
    l.ports = ports_per_router();
    l.channels = l.routers * l.ports;
    l.max_vcs = max_vcs_per_port;
    return l;
  }

  /// Ports per router: p node + (a-1) local + h global (+1 physical ring).
  u32 ports_per_router() const noexcept {
    return p() + (a() - 1) + h_ + (physical_ring_ ? 1u : 0u);
  }

  // ---- coordinates ----
  GroupId group_of(RouterId r) const noexcept { return r / a(); }
  u32 local_of(RouterId r) const noexcept { return r % a(); }
  RouterId router_at(GroupId g, u32 local) const noexcept {
    OFAR_DCHECK(g < groups_ && local < a());
    return g * a() + local;
  }
  RouterId router_of_node(NodeId n) const noexcept { return n / p(); }
  u32 node_slot(NodeId n) const noexcept { return n % p(); }
  NodeId node_at(RouterId r, u32 slot) const noexcept {
    OFAR_DCHECK(slot < p());
    return r * p() + slot;
  }
  GroupId group_of_node(NodeId n) const noexcept {
    return group_of(router_of_node(n));
  }

  // ---- port layout ----
  PortId node_port(u32 slot) const noexcept {
    OFAR_DCHECK(slot < p());
    return static_cast<PortId>(slot);
  }
  PortId first_local_port() const noexcept {
    return static_cast<PortId>(p());
  }
  PortId first_global_port() const noexcept {
    return static_cast<PortId>(p() + a() - 1);
  }
  PortId ring_port() const noexcept {
    OFAR_DCHECK(physical_ring_);
    return static_cast<PortId>(p() + a() - 1 + h_);
  }
  PortClass port_class(PortId port) const noexcept;

  /// Local port on `from_local` leading to `to_local` (same group).
  PortId local_port(u32 from_local, u32 to_local) const noexcept {
    OFAR_DCHECK(from_local != to_local && from_local < a() && to_local < a());
    const u32 k = to_local < from_local ? to_local : to_local - 1;
    return static_cast<PortId>(p() + k);
  }
  /// Peer local index reached through local port `port` from `from_local`.
  u32 local_peer(u32 from_local, PortId port) const noexcept {
    const u32 k = static_cast<u32>(port) - p();
    OFAR_DCHECK(k < a() - 1);
    return k < from_local ? k : k + 1;
  }

  // ---- global wiring ----
  /// Outgoing slot of group `from` toward group `to` (d in [0, groups-2]).
  u32 global_slot(GroupId from, GroupId to) const noexcept {
    OFAR_DCHECK(from != to && from < groups_ && to < groups_);
    return (to + groups_ - from - 1) % groups_;
  }
  /// Local index of the router carrying global slot d.
  u32 slot_carrier(u32 slot) const noexcept {
    OFAR_DCHECK(slot < a() * h_);
    return slot / h_;
  }
  /// Global port index (within the router) carrying slot d.
  PortId slot_port(u32 slot) const noexcept {
    return static_cast<PortId>(first_global_port() + slot % h_);
  }
  /// Slot carried by global port `port` of a router with local index `local`.
  u32 port_slot(u32 local, PortId port) const noexcept {
    const u32 j = static_cast<u32>(port) - first_global_port();
    OFAR_DCHECK(j < h_);
    return local * h_ + j;
  }
  /// True when slot d of any group is wired (only trimmed topologies
  /// leave slots unwired).
  bool slot_wired(u32 slot) const noexcept { return slot < groups_ - 1; }
  /// Destination group of slot d from group `from`.
  GroupId slot_target(GroupId from, u32 slot) const noexcept {
    OFAR_DCHECK(slot_wired(slot));
    return (from + slot + 1) % groups_;
  }
  /// The far side of slot d is slot (groups-2-d) of the target group.
  u32 peer_slot(u32 slot) const noexcept {
    OFAR_DCHECK(slot_wired(slot));
    return groups_ - 2 - slot;
  }

  /// Router of group `from` that carries the single global link to `to`.
  RouterId carrier_router(GroupId from, GroupId to) const noexcept {
    return router_at(from, slot_carrier(global_slot(from, to)));
  }
  /// The global port on `carrier_router(from,to)` leading to group `to`.
  PortId carrier_port(GroupId from, GroupId to) const noexcept {
    return slot_port(global_slot(from, to));
  }

  /// Router + port reached by leaving router r through global port `port`.
  struct GlobalEndpoint {
    RouterId router;
    PortId port;
  };
  GlobalEndpoint global_peer(RouterId r, PortId port) const noexcept {
    const GroupId g = group_of(r);
    const u32 d = port_slot(local_of(r), port);
    OFAR_DCHECK(slot_wired(d));
    const GroupId tg = slot_target(g, d);
    const u32 back = peer_slot(d);
    return {router_at(tg, slot_carrier(back)), slot_port(back)};
  }
  /// True when router r's global port `port` is wired (trimmed topologies).
  bool global_port_wired(RouterId r, PortId port) const noexcept {
    return slot_wired(port_slot(local_of(r), port));
  }

  // ---- routing helpers ----
  /// Next port on the minimal path from router `cur` toward router `dst`
  /// (which must differ from `cur`): local hop to the destination router if
  /// same group, else toward/through the global link to the target group.
  PortId min_next_port(RouterId cur, RouterId dst) const noexcept;

  /// Number of router-to-router hops on the minimal path (0..3).
  u32 min_hops(RouterId from, RouterId to) const noexcept;

  /// Human-readable description (for logs and error messages).
  std::string describe() const;

 private:
  u32 h_;
  u32 groups_;
  bool physical_ring_;
};

}  // namespace ofar
