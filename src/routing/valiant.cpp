#include "routing/valiant.hpp"

#include <algorithm>

#include "common/ckpt_stream.hpp"
#include "sim/flat_state.hpp"
#include "sim/network.hpp"

namespace ofar {

ValiantPolicy::ValiantPolicy(const SimConfig& cfg)
    : rng_(cfg.seed ^ 0x56414c49414e54ULL),
      seed_(cfg.seed ^ 0x56414c49414e54ULL) {}

void ValiantPolicy::bind_lanes(u32 lanes) {
  lane_rngs_.clear();
  lane_rngs_.reserve(lanes > 0 ? lanes - 1 : 0);
  for (u32 l = 1; l < lanes; ++l)
    lane_rngs_.emplace_back(seed_ ^ (0x9E3779B97F4A7C15ULL * l));
}

void ValiantPolicy::save_state(CkptWriter& w) const {
  w.put_rng(rng_);
  w.put_u32(static_cast<u32>(lane_rngs_.size()));
  for (const Rng& r : lane_rngs_) w.put_rng(r);
}

void ValiantPolicy::load_state(CkptReader& r) {
  r.get_rng(rng_);
  const u32 n = r.get_u32();
  if (n != lane_rngs_.size()) {  // lane layout is fixed by bind_lanes
    r.fail();
    return;
  }
  for (Rng& lane : lane_rngs_) r.get_rng(lane);
}

void ValiantPolicy::assign_intermediate(Network& net, Packet& pkt,
                                        RouterId at) {
  const Dragonfly& topo = net.topo();
  pkt.inter_group = kInvalidGroup;
  pkt.inter_router = kInvalidRouter;
  pkt.valiant_done = true;
  if (at == pkt.dst_router) return;  // same router: nothing to balance

  const GroupId gs = topo.group_of(at);
  const GroupId gd = topo.group_of(pkt.dst_router);
  if (gs != gd) {
    // Random intermediate group different from source and destination
    // (paper §III: "misrouting applied to an intermediate group different
    // from the source and destination groups").
    if (topo.groups() < 3) return;  // no third group: degenerate to minimal
    GroupId inter = rng_.below(topo.groups() - 2);
    // Skip over gs and gd (order-independent two-hole skip).
    const GroupId lo = std::min(gs, gd), hi = std::max(gs, gd);
    if (inter >= lo) ++inter;
    if (inter >= hi) ++inter;
    pkt.inter_group = inter;
    pkt.valiant_done = false;
    return;
  }
  // Intra-group traffic: random intermediate router of the group.
  if (topo.a() < 3) return;
  const u32 ls = topo.local_of(at);
  const u32 ld = topo.local_of(pkt.dst_router);
  u32 inter = rng_.below(topo.a() - 2);
  const u32 lo = std::min(ls, ld), hi = std::max(ls, ld);
  if (inter >= lo) ++inter;
  if (inter >= hi) ++inter;
  pkt.inter_router = topo.router_at(gs, inter);
  pkt.valiant_done = false;
}

void ValiantPolicy::on_inject(Network& net, Packet& pkt, RouterId at) {
  assign_intermediate(net, pkt, at);
}

RouteChoice ValiantPolicy::route(RouteContext& ctx) {
  Network& net = ctx.net;
  Packet& pkt = ctx.pkt;
  const RouterId at = ctx.at;
  RouteProvenance* const prov = ctx.prov;
  const PortId out = valiant_next_port(net, at, pkt);
  const Router& r = net.router(at);
  const OutputPort& port = r.outputs[out];
  if (prov) {
    prov->min_port = out;
    prov->q_min = static_cast<float>(ctx.view.base_occupancy(out));
    prov->chosen_occ = prov->q_min;
  }
  const RouteCondition go = pkt.valiant_done ? RouteCondition::kMinimal
                                             : RouteCondition::kValiantPhase;
  if (!port.wired() || port.busy()) {
    if (prov) prov->condition = RouteCondition::kWaitBusy;
    return RouteChoice::none();
  }
  const VcId vc = ordered_vc(net, at, out, pkt);
  if (port.credits[vc] < net.config().packet_size) {
    if (prov) prov->condition = RouteCondition::kWaitBusy;
    return RouteChoice::none();
  }
  if (prov) prov->condition = go;
  return RouteChoice::to(out, vc);
}

}  // namespace ofar
