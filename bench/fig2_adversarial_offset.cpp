// Fig. 2b reproduction + §III analysis: Valiant-routing throughput as a
// function of the ADV+N group offset. The consecutive global arrangement
// makes offsets that are multiples of h funnel all misrouted transit
// traffic of a group pair through single local links, so throughput dips
// sharply at N = h, 2h, 3h, ... while other offsets stay near Valiant's
// global-link bound. OFAR (optional column) removes the dips.
//
// Extra flags: --offered L (default 0.35: above every VAL funnel ceiling,
//              below OFAR's own saturation for all offsets),
//              --with-ofar true to add the OFAR column,
//              --analytic true to print the §III closed-form ceilings.
//
// Shim over the "fig2" preset (presets.cpp).
#include "presets.hpp"

int main(int argc, char** argv) {
  return ofar::bench::run_preset_main("fig2", argc, argv);
}
