// Fundamental integer aliases and small strong types used across the library.
#pragma once

#include <cstdint>
#include <limits>

namespace ofar {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/// Simulation time, in router cycles.
using Cycle = u64;

/// Identifier of a router in the whole network, in [0, routers()).
using RouterId = u32;
/// Identifier of a processing node in the whole network, in [0, nodes()).
using NodeId = u32;
/// Identifier of a group, in [0, groups()).
using GroupId = u32;
/// Index of a port within one router.
using PortId = u16;
/// Virtual-channel index within one port.
using VcId = u8;
/// Identifier of a unidirectional channel (link) in the network.
using ChannelId = u32;
/// Slab index of a live packet (see PacketPool).
using PacketId = u32;

inline constexpr PacketId kInvalidPacket = std::numeric_limits<PacketId>::max();
inline constexpr ChannelId kInvalidChannel = std::numeric_limits<ChannelId>::max();
inline constexpr PortId kInvalidPort = std::numeric_limits<PortId>::max();
inline constexpr u32 kInvalidIndex = std::numeric_limits<u32>::max();

}  // namespace ofar
