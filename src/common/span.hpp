// Minimal non-owning array view used for the simulator's SoA state.
//
// Hot per-router state (credit counters, VC FIFO metadata) is stored in
// contiguous per-router pools (see Router); the per-port structs expose that
// state through Span so per-cycle scans walk flat arrays instead of
// pointer-chasing through nested std::vectors. A Span never owns storage:
// whoever builds the pool binds views into it and must keep the pool's
// buffer address stable for the Span's lifetime.
#pragma once

#include "common/check.hpp"
#include "common/types.hpp"

namespace ofar {

template <typename T>
class Span {
 public:
  Span() = default;
  Span(T* data, u32 size) noexcept : data_(data), size_(size) {}

  u32 size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  T& operator[](u32 i) const noexcept {
    OFAR_DCHECK(i < size_);
    return data_[i];
  }

  T* data() const noexcept { return data_; }
  T* begin() const noexcept { return data_; }
  T* end() const noexcept { return data_ + size_; }

 private:
  T* data_ = nullptr;
  u32 size_ = 0;
};

}  // namespace ofar
