// Deterministic, fast pseudo-random number generation.
//
// The simulator must be reproducible per seed (same seed -> same packet
// trace), so every stochastic component owns its own SplitMix64-seeded
// xoshiro256** instance rather than sharing global state.
#pragma once

#include <array>
#include <cstdint>

#include "common/types.hpp"

namespace ofar {

/// SplitMix64: used only to expand a 64-bit seed into xoshiro state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(u64 seed) noexcept : state_(seed) {}

  constexpr u64 next() noexcept {
    u64 z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  u64 state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna). Public-domain algorithm.
class Rng {
 public:
  using result_type = u64;

  Rng() noexcept : Rng(0x0FA20FA20FA20FA2ULL) {}

  explicit Rng(u64 seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~u64{0}; }

  u64 operator()() noexcept {
    const u64 result = rotl(state_[1] * 5, 7) * 9;
    const u64 t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Uses Lemire's multiply-shift reduction.
  u32 below(u32 bound) noexcept {
    const u64 x = (*this)() >> 32;
    return static_cast<u32>((x * bound) >> 32);
  }

  /// Uniform integer in [lo, hi] inclusive.
  u32 range(u32 lo, u32 hi) noexcept { return lo + below(hi - lo + 1); }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  bool chance(double p) noexcept { return uniform() < p; }

  /// Raw generator state (checkpoint/restart). load_state resumes the
  /// stream at exactly the draw save_state was taken at.
  std::array<u64, 4> save_state() const noexcept { return state_; }
  void load_state(const std::array<u64, 4>& s) noexcept { state_ = s; }

  /// Integer threshold form of chance(): a raw draw x passes the trial iff
  /// (x >> 11) < chance_threshold(p). Exactly equivalent to chance(p) —
  /// uniform() is (x >> 11) * 2^-53 with both sides of the comparison exact,
  /// so `u * 2^-53 < p` over the reals is `u < ceil(p * 2^53)` for integer u
  /// (p * 2^53 is a pure exponent shift, also exact). Lets per-node
  /// generation loops compare integers instead of converting every draw to
  /// double (see BernoulliSource::tick).
  static u64 chance_threshold(double p) noexcept {
    if (p <= 0.0) return 0;
    if (p >= 1.0) return u64{1} << 53;
    const double scaled = p * 0x1.0p53;
    const u64 t = static_cast<u64>(scaled);
    return static_cast<double>(t) < scaled ? t + 1 : t;
  }

 private:
  static constexpr u64 rotl(u64 x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<u64, 4> state_{};
};

}  // namespace ofar
