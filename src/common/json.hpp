// Minimal JSON document model and recursive-descent parser.
//
// Used by the experiment-orchestration layer for two inputs that must be
// robust against hand-edited or half-written files: experiment spec files
// (core/spec.hpp) and the result-cache journal (core/orchestrator.hpp).
// Design goals, in order: precise error messages (line:column), exact
// round-trip of numbers (doubles parse via strtod, integers are kept as i64
// while they fit), and zero dependencies. Not a goal: speed on multi-MB
// documents — specs and journal lines are tiny.
//
// Object member order is preserved (vector of pairs, not a map): iteration
// is deterministic and mirrors the input, which the determinism lint
// demands of anything the simulator reads.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace ofar {

class JsonValue {
 public:
  enum class Kind : u8 { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  Kind kind() const noexcept { return kind_; }
  bool is_null() const noexcept { return kind_ == Kind::kNull; }
  bool is_bool() const noexcept { return kind_ == Kind::kBool; }
  bool is_number() const noexcept { return kind_ == Kind::kNumber; }
  bool is_string() const noexcept { return kind_ == Kind::kString; }
  bool is_array() const noexcept { return kind_ == Kind::kArray; }
  bool is_object() const noexcept { return kind_ == Kind::kObject; }

  bool as_bool() const noexcept { return bool_; }
  double as_double() const noexcept { return number_; }
  /// Numbers written without fraction/exponent also retain an exact i64
  /// (when representable); as_int truncates otherwise.
  i64 as_int() const noexcept { return int_valid_ ? int_ : static_cast<i64>(number_); }
  bool has_exact_int() const noexcept { return int_valid_; }
  const std::string& as_string() const noexcept { return string_; }
  const std::vector<JsonValue>& items() const noexcept { return items_; }
  const std::vector<std::pair<std::string, JsonValue>>& members()
      const noexcept {
    return members_;
  }

  /// Object member lookup; nullptr when absent (or not an object).
  const JsonValue* find(const std::string& key) const noexcept;

  // ---- construction (parser + tests) ----
  static JsonValue make_null() { return JsonValue(); }
  static JsonValue make_bool(bool v);
  static JsonValue make_number(double v);
  static JsonValue make_int(i64 v);
  static JsonValue make_string(std::string v);
  static JsonValue make_array(std::vector<JsonValue> items);
  static JsonValue make_object(
      std::vector<std::pair<std::string, JsonValue>> members);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  i64 int_ = 0;
  bool int_valid_ = false;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Parses one complete JSON document. Returns false and fills `error`
/// ("line L, column C: message") on malformed input; trailing non-space
/// content after the document is an error.
bool json_parse(const std::string& text, JsonValue& out, std::string& error);

/// Reads and parses a whole file. `error` distinguishes I/O failures
/// ("cannot read <path>") from parse failures ("<path>: line L, ...").
bool json_parse_file(const std::string& path, JsonValue& out,
                     std::string& error);

}  // namespace ofar
