
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/cli.cpp" "src/CMakeFiles/ofar.dir/common/cli.cpp.o" "gcc" "src/CMakeFiles/ofar.dir/common/cli.cpp.o.d"
  "/root/repo/src/common/config.cpp" "src/CMakeFiles/ofar.dir/common/config.cpp.o" "gcc" "src/CMakeFiles/ofar.dir/common/config.cpp.o.d"
  "/root/repo/src/common/parallel.cpp" "src/CMakeFiles/ofar.dir/common/parallel.cpp.o" "gcc" "src/CMakeFiles/ofar.dir/common/parallel.cpp.o.d"
  "/root/repo/src/common/table.cpp" "src/CMakeFiles/ofar.dir/common/table.cpp.o" "gcc" "src/CMakeFiles/ofar.dir/common/table.cpp.o.d"
  "/root/repo/src/core/analysis.cpp" "src/CMakeFiles/ofar.dir/core/analysis.cpp.o" "gcc" "src/CMakeFiles/ofar.dir/core/analysis.cpp.o.d"
  "/root/repo/src/core/escape_ring.cpp" "src/CMakeFiles/ofar.dir/core/escape_ring.cpp.o" "gcc" "src/CMakeFiles/ofar.dir/core/escape_ring.cpp.o.d"
  "/root/repo/src/core/experiment.cpp" "src/CMakeFiles/ofar.dir/core/experiment.cpp.o" "gcc" "src/CMakeFiles/ofar.dir/core/experiment.cpp.o.d"
  "/root/repo/src/core/ofar_routing.cpp" "src/CMakeFiles/ofar.dir/core/ofar_routing.cpp.o" "gcc" "src/CMakeFiles/ofar.dir/core/ofar_routing.cpp.o.d"
  "/root/repo/src/routing/minimal.cpp" "src/CMakeFiles/ofar.dir/routing/minimal.cpp.o" "gcc" "src/CMakeFiles/ofar.dir/routing/minimal.cpp.o.d"
  "/root/repo/src/routing/par.cpp" "src/CMakeFiles/ofar.dir/routing/par.cpp.o" "gcc" "src/CMakeFiles/ofar.dir/routing/par.cpp.o.d"
  "/root/repo/src/routing/piggyback.cpp" "src/CMakeFiles/ofar.dir/routing/piggyback.cpp.o" "gcc" "src/CMakeFiles/ofar.dir/routing/piggyback.cpp.o.d"
  "/root/repo/src/routing/routing.cpp" "src/CMakeFiles/ofar.dir/routing/routing.cpp.o" "gcc" "src/CMakeFiles/ofar.dir/routing/routing.cpp.o.d"
  "/root/repo/src/routing/ugal.cpp" "src/CMakeFiles/ofar.dir/routing/ugal.cpp.o" "gcc" "src/CMakeFiles/ofar.dir/routing/ugal.cpp.o.d"
  "/root/repo/src/routing/valiant.cpp" "src/CMakeFiles/ofar.dir/routing/valiant.cpp.o" "gcc" "src/CMakeFiles/ofar.dir/routing/valiant.cpp.o.d"
  "/root/repo/src/sim/allocator.cpp" "src/CMakeFiles/ofar.dir/sim/allocator.cpp.o" "gcc" "src/CMakeFiles/ofar.dir/sim/allocator.cpp.o.d"
  "/root/repo/src/sim/arbiter.cpp" "src/CMakeFiles/ofar.dir/sim/arbiter.cpp.o" "gcc" "src/CMakeFiles/ofar.dir/sim/arbiter.cpp.o.d"
  "/root/repo/src/sim/channel.cpp" "src/CMakeFiles/ofar.dir/sim/channel.cpp.o" "gcc" "src/CMakeFiles/ofar.dir/sim/channel.cpp.o.d"
  "/root/repo/src/sim/fifo.cpp" "src/CMakeFiles/ofar.dir/sim/fifo.cpp.o" "gcc" "src/CMakeFiles/ofar.dir/sim/fifo.cpp.o.d"
  "/root/repo/src/sim/network.cpp" "src/CMakeFiles/ofar.dir/sim/network.cpp.o" "gcc" "src/CMakeFiles/ofar.dir/sim/network.cpp.o.d"
  "/root/repo/src/sim/packet_pool.cpp" "src/CMakeFiles/ofar.dir/sim/packet_pool.cpp.o" "gcc" "src/CMakeFiles/ofar.dir/sim/packet_pool.cpp.o.d"
  "/root/repo/src/sim/router.cpp" "src/CMakeFiles/ofar.dir/sim/router.cpp.o" "gcc" "src/CMakeFiles/ofar.dir/sim/router.cpp.o.d"
  "/root/repo/src/stats/stats.cpp" "src/CMakeFiles/ofar.dir/stats/stats.cpp.o" "gcc" "src/CMakeFiles/ofar.dir/stats/stats.cpp.o.d"
  "/root/repo/src/stats/timeseries.cpp" "src/CMakeFiles/ofar.dir/stats/timeseries.cpp.o" "gcc" "src/CMakeFiles/ofar.dir/stats/timeseries.cpp.o.d"
  "/root/repo/src/topology/dragonfly.cpp" "src/CMakeFiles/ofar.dir/topology/dragonfly.cpp.o" "gcc" "src/CMakeFiles/ofar.dir/topology/dragonfly.cpp.o.d"
  "/root/repo/src/topology/hamiltonian.cpp" "src/CMakeFiles/ofar.dir/topology/hamiltonian.cpp.o" "gcc" "src/CMakeFiles/ofar.dir/topology/hamiltonian.cpp.o.d"
  "/root/repo/src/traffic/generator.cpp" "src/CMakeFiles/ofar.dir/traffic/generator.cpp.o" "gcc" "src/CMakeFiles/ofar.dir/traffic/generator.cpp.o.d"
  "/root/repo/src/traffic/pattern.cpp" "src/CMakeFiles/ofar.dir/traffic/pattern.cpp.o" "gcc" "src/CMakeFiles/ofar.dir/traffic/pattern.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
