// Unit tests of the escape-subnetwork discipline (paper §IV-C) against a
// real network with hand-crafted router state: the bubble condition
// (entry needs TWO packets of space, riding needs one), last-resort entry,
// opportunistic exit, the exit budget (livelock guard), and delivery from
// the ring at the destination router.
#include <gtest/gtest.h>

#include <memory>

#include "core/escape_ring.hpp"
#include "routing/routing.hpp"
#include "sim/flat_state.hpp"
#include "sim/network.hpp"
#include "traffic/generator.hpp"

namespace ofar {
namespace {

/// Wraps a crafted escape-ring query in the RouteContext the policy layer
/// would normally supply (fresh CreditView bound to the router under test).
RouteChoice call_enter(const EscapeRingControl& control, Network& net,
                       RouterId at) {
  CreditView view;
  view.init(net);
  view.bind(net.router(at));
  Packet unused;  // enter() decides from router state alone
  RouteContext ctx{net, view, at, 0, 0, unused, 0, nullptr};
  return control.enter(ctx);
}

RouteChoice call_ride(const EscapeRingControl& control, Network& net,
                      RouterId at, Packet& pkt) {
  CreditView view;
  view.init(net);
  view.bind(net.router(at));
  RouteContext ctx{net, view, at, 0, 0, pkt, 0, nullptr};
  return control.ride(ctx);
}

SimConfig ring_cfg(RingKind ring = RingKind::kPhysical) {
  SimConfig cfg;
  cfg.h = 2;
  cfg.routing = RoutingKind::kOfar;
  cfg.ring = ring;
  cfg.seed = 9;
  return cfg;
}

/// Sets every escape-VC credit of r's ring output to `value`.
void set_ring_credits(Network& net, RouterId r, u32 value) {
  const Network::RingOut& ro = net.ring_out(r);
  OutputPort& out = net.router(r).outputs[ro.port];
  for (u32 v = ro.first_vc; v < ro.first_vc + ro.num_vcs; ++v)
    out.credits[v] = value;
}

TEST(EscapeRing, EntryNeedsBubble) {
  Network net(ring_cfg());
  EscapeRingControl control(net.config());
  const RouterId at = 5;
  const u32 size = net.config().packet_size;

  set_ring_credits(net, at, 2 * size);  // exactly packet + bubble
  EXPECT_TRUE(call_enter(control, net, at).valid);
  EXPECT_TRUE(call_enter(control, net, at).enter_ring);

  set_ring_credits(net, at, 2 * size - 1);  // one phit short of the bubble
  EXPECT_FALSE(call_enter(control, net, at).valid);
}

TEST(EscapeRing, RidingNeedsOnlyOnePacket) {
  Network net(ring_cfg());
  EscapeRingControl control(net.config());
  const u32 size = net.config().packet_size;
  const RouterId at = 5;

  Packet pkt;
  pkt.in_ring = true;
  pkt.ring_exits = 255;  // exits exhausted: must keep riding
  pkt.dst = net.topo().node_at(net.topo().router_at(3, 1), 0);
  pkt.dst_router = net.topo().router_at(3, 1);
  ASSERT_NE(at, pkt.dst_router);

  set_ring_credits(net, at, size);  // plain VCT admission suffices in-ring
  const RouteChoice ride = call_ride(control, net, at, pkt);
  ASSERT_TRUE(ride.valid);
  EXPECT_EQ(ride.out_port, net.ring_out(at).port);
  EXPECT_FALSE(ride.exit_ring);

  set_ring_credits(net, at, size - 1);
  EXPECT_FALSE(call_ride(control, net, at, pkt).valid);  // wait in place
}

TEST(EscapeRing, ExitsToFreeMinimalPathWithinBudget) {
  Network net(ring_cfg());
  EscapeRingControl control(net.config());
  const RouterId at = 5;
  Packet pkt;
  pkt.in_ring = true;
  pkt.ring_exits = 0;
  pkt.dst = net.topo().node_at(net.topo().router_at(3, 1), 0);
  pkt.dst_router = net.topo().router_at(3, 1);

  // Fresh network: the minimal output is free, so the packet abandons the
  // ring immediately ("as soon as a minimal route is available", §IV-C).
  const RouteChoice exit = call_ride(control, net, at, pkt);
  ASSERT_TRUE(exit.valid);
  EXPECT_TRUE(exit.exit_ring);
  EXPECT_EQ(exit.out_port, min_port_to_router(net, at, pkt.dst_router));
}

TEST(EscapeRing, ExitBudgetForcesRiding) {
  Network net(ring_cfg());
  EscapeRingControl control(net.config());
  const RouterId at = 5;
  Packet pkt;
  pkt.in_ring = true;
  pkt.ring_exits = net.config().max_ring_exits;  // budget exhausted
  pkt.dst = net.topo().node_at(net.topo().router_at(3, 1), 0);
  pkt.dst_router = net.topo().router_at(3, 1);

  const RouteChoice choice = call_ride(control, net, at, pkt);
  ASSERT_TRUE(choice.valid);
  EXPECT_FALSE(choice.exit_ring);  // min is free but the budget is spent
  EXPECT_EQ(choice.out_port, net.ring_out(at).port);
}

TEST(EscapeRing, EjectsAtDestinationEvenWithSpentBudget) {
  Network net(ring_cfg());
  EscapeRingControl control(net.config());
  Packet pkt;
  pkt.in_ring = true;
  pkt.ring_exits = 255;
  pkt.dst = net.topo().node_at(7, 1);
  pkt.dst_router = 7;

  const RouteChoice choice = call_ride(control, net, 7, pkt);
  ASSERT_TRUE(choice.valid);
  EXPECT_TRUE(choice.exit_ring);
  EXPECT_EQ(net.topo().port_class(choice.out_port), PortClass::kNode);
}

TEST(EscapeRing, BusyRingOutputBlocksEntry) {
  Network net(ring_cfg());
  EscapeRingControl control(net.config());
  const RouterId at = 5;
  OutputPort& out = net.router(at).outputs[net.ring_out(at).port];
  out.active = 1;  // mark busy
  EXPECT_FALSE(call_enter(control, net, at).valid);
}

class RingVariantTest : public ::testing::TestWithParam<RingKind> {};

TEST_P(RingVariantTest, RingOutPortsFormTheHamiltonianCycle) {
  Network net(ring_cfg(GetParam()));
  const HamiltonianRing* ring = net.ring();
  ASSERT_NE(ring, nullptr);
  for (RouterId r = 0; r < net.topo().routers(); ++r) {
    const Network::RingOut& ro = net.ring_out(r);
    ASSERT_NE(ro.port, kInvalidPort);
    ASSERT_GT(ro.num_vcs, 0u);
    // The ring output's channel must land on the successor's ring input.
    const OutputPort& out = net.router(r).outputs[ro.port];
    ASSERT_TRUE(out.wired());
    const Channel& ch = net.channel(out.channel);
    EXPECT_EQ(ch.dst_router, ring->successor(r));
    EXPECT_TRUE(net.is_ring_input(ch.dst_router, ch.dst_port,
                                  static_cast<VcId>(ro.first_vc)));
  }
}

TEST_P(RingVariantTest, HeavyAdversarialLoadUsesButSurvivesTheRing) {
  SimConfig cfg = ring_cfg(GetParam());
  Network net(cfg);
  net.set_traffic(std::make_unique<BernoulliSource>(
      TrafficPattern::adversarial(1), 0.25, cfg.seed));
  net.run(5000);
  net.set_traffic(nullptr);
  u64 guard = 0;
  while (!net.drained() && ++guard < 500000) net.step();
  EXPECT_TRUE(net.drained());
  EXPECT_EQ(net.stats().stalled_packets(), 0u);
  // Whatever entered the ring left it (delivery or exit): entries are
  // accounted against exits + deliveries, never lost.
  EXPECT_GE(net.stats().ring_entries(), net.stats().ring_exits());
}

INSTANTIATE_TEST_SUITE_P(Variants, RingVariantTest,
                         ::testing::Values(RingKind::kPhysical,
                                           RingKind::kEmbedded),
                         [](const ::testing::TestParamInfo<RingKind>& info) {
                           return std::string(to_string(info.param));
                         });

}  // namespace
}  // namespace ofar
