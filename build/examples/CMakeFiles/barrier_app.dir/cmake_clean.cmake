file(REMOVE_RECURSE
  "CMakeFiles/barrier_app.dir/barrier_app.cpp.o"
  "CMakeFiles/barrier_app.dir/barrier_app.cpp.o.d"
  "barrier_app"
  "barrier_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/barrier_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
