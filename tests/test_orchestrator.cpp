// Tests for the experiment orchestrator (core/orchestrator.*): cache hits
// must be bit-identical to cold runs, interrupted sweeps must resume to the
// same whole-run digest, corrupt journal lines must be skipped rather than
// fatal, and the digest must be invariant to thread count and execution
// order.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/orchestrator.hpp"
#include "core/spec.hpp"
#include "traffic/pattern.hpp"

namespace ofar {
namespace {

/// RAII scratch directory under the test's working directory.
struct TempDir {
  explicit TempDir(const std::string& name) : path(name) {
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
  std::string path;
};

/// Small steady sweep: 2 mechanisms x 2 loads on the h=2 network with tiny
/// measurement windows — enough structure to exercise every cache path
/// while keeping each point a few milliseconds.
std::vector<RunPoint> steady_points() {
  ExperimentSpec spec;
  spec.name = "t";
  spec.h = 2;
  spec.seeds = {1};
  spec.run = RunParams::windows(50, 80);
  spec.loads = {0.1, 0.2};
  spec.patterns = {{"UN", TrafficPattern::uniform()}};
  SimConfig min_cfg;
  min_cfg.h = 2;
  min_cfg.routing = RoutingKind::kMin;
  SimConfig ofar_cfg;
  ofar_cfg.h = 2;
  ofar_cfg.routing = RoutingKind::kOfar;
  ofar_cfg.ring = RingKind::kPhysical;
  spec.mechanisms = {{"MIN", min_cfg}, {"OFAR", ofar_cfg}};
  return spec.expand();
}

void expect_bit_identical(const SteadyResult& a, const SteadyResult& b) {
  EXPECT_EQ(a.offered_load, b.offered_load);
  EXPECT_EQ(a.accepted_load, b.accepted_load);
  EXPECT_EQ(a.avg_latency, b.avg_latency);
  EXPECT_EQ(a.stddev_latency, b.stddev_latency);
  EXPECT_EQ(a.delivered_packets, b.delivered_packets);
  EXPECT_EQ(a.local_misroutes, b.local_misroutes);
  EXPECT_EQ(a.global_misroutes, b.global_misroutes);
  EXPECT_EQ(a.ring_entries, b.ring_entries);
  EXPECT_EQ(a.stalled_packets, b.stalled_packets);
  EXPECT_EQ(a.worst_stall, b.worst_stall);
  EXPECT_EQ(a.mean_hops, b.mean_hops);
}

TEST(Orchestrator, CacheHitIsBitIdenticalToColdRun) {
  TempDir dir("test_orch_cache_hit");
  const std::vector<RunPoint> points = steady_points();
  OrchestratorOptions opts;
  opts.cache_dir = dir.path;

  const RunReport cold = run_points(points, opts);
  EXPECT_EQ(cold.executed, points.size());
  EXPECT_EQ(cold.hits, 0u);
  ASSERT_TRUE(cold.complete());

  const RunReport warm = run_points(points, opts);
  EXPECT_EQ(warm.executed, 0u);  // zero simulations on a full cache
  EXPECT_EQ(warm.hits, points.size());
  ASSERT_TRUE(warm.complete());
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_TRUE(warm.outcomes[i].from_cache);
    EXPECT_EQ(warm.outcomes[i].key, cold.outcomes[i].key);
    expect_bit_identical(warm.outcomes[i].steady, cold.outcomes[i].steady);
  }
  EXPECT_EQ(results_digest(points, warm), results_digest(points, cold));
}

TEST(Orchestrator, NoCacheDirDisablesCaching) {
  const std::vector<RunPoint> points = steady_points();
  OrchestratorOptions opts;  // cache_dir empty
  const RunReport a = run_points(points, opts);
  const RunReport b = run_points(points, opts);
  EXPECT_TRUE(a.journal_path.empty());
  EXPECT_EQ(a.executed, points.size());
  EXPECT_EQ(b.executed, points.size());  // nothing was cached
  EXPECT_EQ(results_digest(points, a), results_digest(points, b));
}

TEST(Orchestrator, ResumeAfterInterruptionMatchesCleanDigest) {
  const std::vector<RunPoint> points = steady_points();

  OrchestratorOptions clean_opts;
  const std::string clean_digest =
      results_digest(points, run_points(points, clean_opts));

  TempDir dir("test_orch_resume");
  OrchestratorOptions opts;
  opts.cache_dir = dir.path;
  opts.stop_after = 2;  // deterministic interruption after 2 points start
  const RunReport partial = run_points(points, opts);
  EXPECT_TRUE(partial.interrupted);
  EXPECT_FALSE(partial.complete());
  EXPECT_EQ(partial.executed, 2u);
  EXPECT_EQ(partial.missing, points.size() - 2);

  opts.stop_after = 0;  // rerun the same sweep: resume from the journal
  const RunReport resumed = run_points(points, opts);
  ASSERT_TRUE(resumed.complete());
  EXPECT_EQ(resumed.hits, 2u);
  EXPECT_EQ(resumed.executed, points.size() - 2);
  EXPECT_EQ(results_digest(points, resumed), clean_digest);
}

TEST(Orchestrator, StopFlagInterruptsBeforeStartingPoints) {
  const std::vector<RunPoint> points = steady_points();
  std::atomic<bool> stop{true};  // raised before the sweep begins
  OrchestratorOptions opts;
  opts.stop_flag = &stop;
  const RunReport report = run_points(points, opts);
  EXPECT_TRUE(report.interrupted);
  EXPECT_EQ(report.executed, 0u);
  EXPECT_EQ(report.missing, points.size());
}

TEST(Orchestrator, CorruptJournalLinesAreSkippedNotFatal) {
  TempDir dir("test_orch_corrupt");
  const std::vector<RunPoint> points = steady_points();
  OrchestratorOptions opts;
  opts.cache_dir = dir.path;
  const RunReport cold = run_points(points, opts);
  ASSERT_TRUE(cold.complete());

  // Vandalise the journal: garbage text, a wrong-version line, and a
  // truncated final line (the tail a crash mid-append would leave).
  const std::string journal = dir.path + "/journal.jsonl";
  {
    std::ofstream f(journal, std::ios::app);
    f << "this is not json\n";
    f << "{\"v\":999,\"key\":\"00000000000000000000000000000000\","
         "\"kind\":\"steady\",\"result\":{}}\n";
    f << "{\"v\":1,\"key\":\"11112222";  // no newline: in-flight write
  }
  const RunReport warm = run_points(points, opts);
  ASSERT_TRUE(warm.complete());
  EXPECT_EQ(warm.hits, points.size());  // valid lines all survived
  EXPECT_EQ(warm.executed, 0u);
  EXPECT_EQ(results_digest(points, warm), results_digest(points, cold));
}

TEST(Orchestrator, DamagedEntryReExecutesJustThatPoint) {
  TempDir dir("test_orch_damaged");
  const std::vector<RunPoint> points = steady_points();
  OrchestratorOptions opts;
  opts.cache_dir = dir.path;
  const RunReport cold = run_points(points, opts);
  ASSERT_TRUE(cold.complete());

  // Corrupt exactly one cached entry by breaking its key in place.
  const std::string journal = dir.path + "/journal.jsonl";
  std::ifstream in(journal);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  const std::string needle = "\"key\":\"" + cold.outcomes[0].key + "\"";
  const std::size_t at = text.find(needle);
  ASSERT_NE(at, std::string::npos);
  text[at + 8] = text[at + 8] == 'f' ? '0' : 'f';
  {
    std::ofstream out(journal, std::ios::trunc);
    out << text;
  }

  const RunReport warm = run_points(points, opts);
  ASSERT_TRUE(warm.complete());
  EXPECT_EQ(warm.hits, points.size() - 1);
  EXPECT_EQ(warm.executed, 1u);
  EXPECT_EQ(results_digest(points, warm), results_digest(points, cold));
}

TEST(Orchestrator, TransientAndBurstResultsRoundTripThroughJournal) {
  ExperimentSpec spec;
  spec.name = "tb";
  spec.h = 2;
  spec.seeds = {1};
  SimConfig cfg;
  cfg.h = 2;
  cfg.routing = RoutingKind::kOfar;
  cfg.ring = RingKind::kPhysical;
  spec.mechanisms = {{"OFAR", cfg}};

  spec.kind = RunKind::kTransient;
  spec.transient.warmup = 200;
  spec.transient.horizon = 150;
  spec.transient.lead = 50;
  spec.transient.drain = 500;
  spec.transient.bucket = 50;
  spec.transitions = {{"UN->ADV+2",
                       {"UN", TrafficPattern::uniform()},
                       {"ADV+2", TrafficPattern::adversarial(2)},
                       0.1,
                       0.1}};
  const std::vector<RunPoint> tpoints = spec.expand();

  spec.kind = RunKind::kBurst;
  spec.burst.packets_per_node = 5;
  spec.burst.max_cycles = 200'000;
  spec.workloads = {{"UN", TrafficPattern::uniform()}};
  const std::vector<RunPoint> bpoints = spec.expand();

  TempDir dir("test_orch_kinds");
  OrchestratorOptions opts;
  opts.cache_dir = dir.path;
  std::vector<RunPoint> all = tpoints;
  all.insert(all.end(), bpoints.begin(), bpoints.end());

  const RunReport cold = run_points(all, opts);
  ASSERT_TRUE(cold.complete());
  const RunReport warm = run_points(all, opts);
  ASSERT_TRUE(warm.complete());
  EXPECT_EQ(warm.executed, 0u);

  const TransientResult& tc = cold.outcomes[0].transient;
  const TransientResult& tw = warm.outcomes[0].transient;
  ASSERT_EQ(tc.series.size(), tw.series.size());
  ASSERT_FALSE(tc.series.empty());
  for (std::size_t i = 0; i < tc.series.size(); ++i) {
    EXPECT_EQ(tc.series[i].cycle_rel, tw.series[i].cycle_rel);
    EXPECT_EQ(tc.series[i].mean_latency, tw.series[i].mean_latency);
    EXPECT_EQ(tc.series[i].packets, tw.series[i].packets);
  }
  const BurstResult& bc = cold.outcomes[1].burst;
  const BurstResult& bw = warm.outcomes[1].burst;
  EXPECT_EQ(bc.completion, bw.completion);
  EXPECT_EQ(bc.delivered_packets, bw.delivered_packets);
  EXPECT_EQ(bc.avg_latency, bw.avg_latency);
  EXPECT_EQ(bc.ring_entries, bw.ring_entries);
  EXPECT_EQ(bc.completed, bw.completed);
}

TEST(Orchestrator, DigestInvariantToThreadCount) {
  const std::vector<RunPoint> points = steady_points();
  OrchestratorOptions one;
  one.threads = 1;
  OrchestratorOptions many;
  many.threads = 4;
  EXPECT_EQ(results_digest(points, run_points(points, one)),
            results_digest(points, run_points(points, many)));
}

TEST(Orchestrator, JournalLineRoundTripsAwkwardDoublesExactly) {
  RunPoint point;
  point.kind = RunKind::kSteady;
  PointOutcome out;
  out.key = std::string(32, 'a');
  out.done = true;
  out.steady.offered_load = 1.0 / 3.0;
  out.steady.accepted_load = 1e-17;
  out.steady.avg_latency = 123456.789012345;
  out.steady.stddev_latency = 0.1;
  out.steady.delivered_packets = 42;
  out.steady.mean_hops = 2.0000000000000004;

  const std::string line = journal_line(point, out);
  std::string key, error;
  RunKind kind = RunKind::kBurst;
  PointOutcome back;
  ASSERT_TRUE(parse_journal_line(line, key, kind, back, error)) << error;
  EXPECT_EQ(key, out.key);
  EXPECT_EQ(kind, RunKind::kSteady);
  EXPECT_TRUE(back.from_cache);
  expect_bit_identical(back.steady, out.steady);
}

}  // namespace
}  // namespace ofar
