file(REMOVE_RECURSE
  "CMakeFiles/test_escape_ring.dir/test_escape_ring.cpp.o"
  "CMakeFiles/test_escape_ring.dir/test_escape_ring.cpp.o.d"
  "test_escape_ring"
  "test_escape_ring.pdb"
  "test_escape_ring[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_escape_ring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
