// Fig. 9 reproduction: OFAR with deliberately starved resources — an
// embedded escape ring and only 2 VCs on local links / 1 VC on global
// links, no congestion management (paper §VII). Under sustained load the
// canonical network can congest completely; the only drain left is the
// slow escape ring and throughput collapses. The paper uses this to argue
// that a congestion-management layer (future work there, and here) is
// needed for under-provisioned configurations.
//
// We print accepted load AND the deadlock-watchdog counters, which make
// the collapse mechanism visible (thousands of heads stalled for >10k
// cycles while the ring trickles).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ofar;
  using namespace ofar::bench;
  CommandLine cli(argc, argv);
  const BenchOptions opts = BenchOptions::parse(cli, 5'000, 6'000);
  const std::vector<double> loads = load_grid(cli, 0.15, 0.6, 4);
  if (!reject_unknown(cli)) return 1;

  SimConfig reduced = opts.config(RoutingKind::kOfar);
  reduced.ring = RingKind::kEmbedded;
  reduced.vcs_local = 2;
  reduced.vcs_global = 1;
  reduced.deadlock_timeout = 10'000;
  SimConfig full = opts.config(RoutingKind::kOfar);
  full.deadlock_timeout = 10'000;

  std::printf("Fig. 9 (reduced VCs: 2 local / 1 global, embedded ring) on "
              "%s\n",
              reduced.summary().c_str());

  Table table({"pattern", "offered", "accepted_reduced", "stalled_reduced",
               "accepted_full", "stalled_full"});
  const std::vector<std::pair<const char*, TrafficPattern>> patterns = {
      {"UN", TrafficPattern::uniform()},
      {"ADV+2", TrafficPattern::adversarial(2)},
      {"ADV+h", TrafficPattern::adversarial(opts.h)},
  };
  for (const auto& [name, pattern] : patterns) {
    for (const double load : loads) {
      SteadyResult r_red, r_full;
      std::vector<std::function<void()>> jobs = {
          [&] { r_red = run_steady(reduced, pattern, load, opts.run); },
          [&] { r_full = run_steady(full, pattern, load, opts.run); }};
      run_parallel(jobs, opts.threads);
      table.add_row({std::string(name), load, r_red.accepted_load,
                     u64{r_red.stalled_packets}, r_full.accepted_load,
                     u64{r_full.stalled_packets}});
      std::printf(".");
      std::fflush(stdout);
    }
  }
  std::printf("\n");
  table.print("Fig. 9: throughput with reduced VCs (vs the full 3l/2g "
              "configuration)");
  dump_csv(table, opts, "fig9_reduced_vcs");
  return 0;
}
