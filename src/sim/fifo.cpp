// VcFifo is header-only (hot path); this TU compile-checks the header.
#include "sim/fifo.hpp"
