// Minimal command-line parser for the bench and example binaries.
//
// Supports `--key value`, `--key=value` and bare `--flag` forms. A
// non-"--" token following a key is always consumed as its value, so bare
// flags must appear last or use `--flag=true`. Unknown keys are collected
// so binaries can reject typos with a clear message.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace ofar {

class CommandLine {
 public:
  CommandLine(int argc, const char* const* argv);

  bool has(const std::string& key) const;

  std::string get_string(const std::string& key,
                         const std::string& fallback) const;
  i64 get_int(const std::string& key, i64 fallback) const;
  u64 get_uint(const std::string& key, u64 fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;
  /// Presence-style boolean: true when `--key` (or `--key=true`) was given,
  /// false when absent or `--key=false`.
  bool get_flag(const std::string& key) const { return get_bool(key, false); }

  /// Keys that were supplied but never queried; call after all get_* calls
  /// to detect typos. Returns the unused keys.
  std::vector<std::string> unused_keys() const;

  /// Positional (non --key) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  const std::string& program_name() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> used_;
  std::vector<std::string> positional_;
};

}  // namespace ofar
