#include "routing/ugal.hpp"

#include <algorithm>

#include "sim/network.hpp"

namespace ofar {

namespace {

u32 queued_phits_on(const Network& net, const Router& r, PortId port) {
  u32 first, count;
  net.base_vc_range(r.id, port, first, count);
  if (count == 0) return 0;
  return r.outputs[port].queued_phits(first, count);
}

/// Hops of the minimal route between two routers via the topology.
u32 hops_between(const Dragonfly& topo, RouterId from, RouterId to) {
  return topo.min_hops(from, to);
}

}  // namespace

UgalPaths evaluate_ugal_paths(Network& net, const Packet& pkt, RouterId at,
                              Rng& rng) {
  const Dragonfly& topo = net.topo();
  const Router& r = net.router(at);
  UgalPaths out;
  OFAR_DCHECK(at != pkt.dst_router);

  out.min_port = min_port_to_router(net, at, pkt.dst_router);
  out.q_min = queued_phits_on(net, r, out.min_port);
  out.h_min = hops_between(topo, at, pkt.dst_router);

  const GroupId gs = topo.group_of(at);
  const GroupId gd = topo.group_of(pkt.dst_router);
  if (gs != gd) {
    if (topo.groups() < 3) return out;
    GroupId inter = rng.below(topo.groups() - 2);
    const GroupId lo = std::min(gs, gd), hi = std::max(gs, gd);
    if (inter >= lo) ++inter;
    if (inter >= hi) ++inter;
    out.inter_group = inter;
    out.has_val = true;
    out.val_port = min_port_to_group(net, at, inter);
    out.q_val = queued_phits_on(net, r, out.val_port);
    // Exact Valiant hop count: to the carrier, over the global link, then
    // minimally from the entry router of the intermediate group.
    const RouterId carrier = topo.carrier_router(gs, inter);
    const auto entry = topo.global_peer(carrier, topo.carrier_port(gs, inter));
    out.h_val = (carrier == at ? 0u : 1u) + 1u +
                hops_between(topo, entry.router, pkt.dst_router);
    return out;
  }
  // Intra-group: Valiant through a random intermediate router of the group.
  if (topo.a() < 3) return out;
  const u32 ls = topo.local_of(at);
  const u32 ld = topo.local_of(pkt.dst_router);
  u32 inter = rng.below(topo.a() - 2);
  const u32 lo = std::min(ls, ld), hi = std::max(ls, ld);
  if (inter >= lo) ++inter;
  if (inter >= hi) ++inter;
  out.inter_router = topo.router_at(gs, inter);
  out.has_val = true;
  out.val_port = min_port_to_router(net, at, out.inter_router);
  out.q_val = queued_phits_on(net, r, out.val_port);
  out.h_val = 2;
  return out;
}

UgalPolicy::UgalPolicy(const SimConfig& cfg)
    : ValiantPolicy(cfg), bias_(cfg.ugal_bias_phits) {}

void UgalPolicy::on_inject(Network& net, Packet& pkt, RouterId at) {
  pkt.inter_group = kInvalidGroup;
  pkt.inter_router = kInvalidRouter;
  pkt.valiant_done = true;
  if (at == pkt.dst_router) return;
  const UgalPaths paths = evaluate_ugal_paths(net, pkt, at, rng_);
  if (ugal_prefers_minimal(paths, bias_)) return;
  pkt.inter_group = paths.inter_group;
  pkt.inter_router = paths.inter_router;
  pkt.valiant_done = false;
}

}  // namespace ofar
