// Single-cycle network engine (paper §V).
//
// Owns the topology, routers, channels, packet pool, routing policy, escape
// ring, traffic source and statistics, and advances them one synchronous
// cycle at a time:
//
//   1. deliver phit/credit events whose wire latency elapsed,
//   2. policy tick (PB's intra-group congestion broadcast),
//   3. advance active packet transfers (1 phit/cycle through the crossbar),
//   4. routing decisions for every head packet + separable allocation,
//   5. traffic generation and injection-queue filling,
//   6. periodic deadlock watchdog.
//
// Per-cycle work scales with *activity*, not topology size: phases 3-5 walk
// incrementally-maintained worklists (routers holding packets or streaming
// transfers; nodes with backlogged offers) instead of scanning every
// router/node. The worklists are kept in ascending-id order, so the phase
// loops visit exactly the routers a full ascending scan would have done
// non-trivial work on — results are bit-identical to the full scan (see
// DESIGN.md "Cycle kernel & performance" for the invariants).
//
// Timing conventions: a grant at cycle t streams phits at t+1..t+size; a
// phit sent at cycle t is delivered at t + latency; the credit for a phit
// leaving a FIFO at cycle t is usable upstream at t + latency.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "common/check.hpp"
#include "common/config.hpp"
#include "common/parallel.hpp"
#include "common/phase.hpp"
#include "common/rng.hpp"
#include "common/span.hpp"
#include "common/types.hpp"
#include "routing/routing.hpp"
#include "sim/allocator.hpp"
#include "sim/channel.hpp"
#include "sim/flat_state.hpp"
#include "sim/packet_pool.hpp"
#include "sim/router.hpp"
#include "stats/metrics.hpp"
#include "stats/stats.hpp"
#include "topology/dragonfly.hpp"
#include "topology/hamiltonian.hpp"
#include "traffic/generator.hpp"
#include "verify/invariant_auditor.hpp"

namespace ofar {

namespace trace {
class PacketTracer;
struct TracerConfig;
}  // namespace trace

/// Optional per-packet event trace (tests, debugging, path analysis; the
/// full tracing subsystem lives in src/trace — DESIGN.md §11).
///
/// Field validity per kind:
///
///   field       | kInject | kGrant | kRingEnter/kRingExit | kDeliver
///   ------------+---------+--------+----------------------+----------
///   packet,cycle,router,src,dst,seq: valid for every kind
///   out_port    |    —    | chosen | ring/exit output     | ejection port
///   out_vc      |    —    | chosen | ring/exit VC         | 0
///   misroute    |  kNone  | chosen | kNone                | kNone
///   ring_move   |  false  | set    | true                 | false
///   in_port     |    —    | input port of the granted head| —
///   in_vc       |    —    | input VC of the granted head  | —
///   queue_wait  |    0    | cycles head waited since last progress | 0
///   prov        | default | routing-decision provenance   | default
///
/// ("—" = the field keeps its default). kRingEnter/kRingExit are emitted
/// immediately after the kGrant that enters/leaves the escape ring and
/// duplicate that grant's fields, so consumers can treat ring transitions
/// as markers without re-deriving them from grant flags.
struct TraceEvent {
  enum class Kind : u8 {
    kInject,     ///< packet placed into an injection FIFO
    kGrant,      ///< allocator grant: packet starts crossing to out_port
    kRingEnter,  ///< the grant entered the escape ring (bubble admitted)
    kRingExit,   ///< the grant left the escape ring (minimal free/eject)
    kDeliver,    ///< tail phit reached the destination node
  };
  Kind kind;
  PacketId packet;
  Cycle cycle;
  RouterId router;
  PortId out_port = kInvalidPort;
  VcId out_vc = 0;
  MisrouteKind misroute = MisrouteKind::kNone;
  bool ring_move = false;
  NodeId src = 0;
  NodeId dst = 0;
  u64 seq = 0;       ///< packet injection sequence number (Packet::seq)
  PortId in_port = kInvalidPort;
  VcId in_vc = 0;
  u32 queue_wait = 0;
  RouteProvenance prov;
};

const char* to_string(TraceEvent::Kind k) noexcept;

class Network {
 public:
  explicit Network(const SimConfig& cfg);
  ~Network();  // defined in network.cpp (unique_ptr to incomplete PacketTracer)
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // ---- simulation control ----
  void step();
  void run(u64 cycles);
  Cycle now() const noexcept { return now_; }

  // ---- sharded cycle kernel (DESIGN.md §10) ----
  /// Number of contiguous router shards the kernel was partitioned into
  /// (cfg.sim_shards clamped to the router count). 1 selects the original
  /// sequential kernel; K > 1 selects the staged-commit kernel whose
  /// per-seed results are identical at ANY worker-thread count.
  u32 num_shards() const noexcept;
  /// Sets the number of worker threads driving the sharded kernel's
  /// parallel phases (clamped to [1, num_shards()]). Purely an execution
  /// knob: results are bit-identical for every value, so it is NOT part of
  /// the experiment content key. Callable between steps at any time.
  void set_sim_threads(unsigned threads);
  unsigned sim_threads() const noexcept { return sim_threads_; }

  /// Installs the traffic source (owned).
  void set_traffic(std::unique_ptr<TrafficSource> source);
  TrafficSource* traffic() { return traffic_.get(); }

  /// True when no packet is pending, buffered or in flight anywhere.
  bool drained() const noexcept {
    return pool_.live_count() == 0 && pending_total_ == 0;
  }

  // ---- injection API (used by traffic sources) ----
  /// Queues an offer in the node's unbounded source queue (Bernoulli).
  void offer(NodeId src, NodeId dst, u16 tag);
  /// Injects directly if the injection FIFO has room; false otherwise.
  bool try_inject(NodeId src, NodeId dst, u16 tag);

  // ---- structure accessors ----
  const SimConfig& config() const noexcept { return cfg_; }
  const Dragonfly& topo() const noexcept { return topo_; }
  const HamiltonianRing* ring() const noexcept { return ring_.get(); }
  /// Mutating access builds the router on first touch (serial contexts:
  /// drivers and tests crafting router state). The const overload returns
  /// the shell as-is — callers iterating structure must either check
  /// router_built() or opt into cfg.wiring_table's eager construction.
  Router& router(RouterId r) {
    ensure_router_built(r);
    return routers_[r];
  }
  const Router& router(RouterId r) const { return routers_[r]; }

  // ---- channel id scheme (implicit wiring) ----
  // Channel ids are dense: id = src_router * ports_per_router + src_port.
  // In the default implicit mode a descriptor is resolved arithmetically on
  // the fly; cfg.wiring_table materializes the table once (debug/reference
  // mode) and serves lookups from it. Both modes use identical ids, and for
  // untrimmed topologies they coincide with the historical sequential ids.
  /// Resolved descriptor of a *wired* channel id (by value: there may be no
  /// stored object behind it). Binding the result to a const reference at
  /// call sites is fine (lifetime extension).
  Channel channel(ChannelId c) const {
    OFAR_DCHECK(channel_wired(c));
    return channels_.empty() ? resolve_channel(c) : channels_[c];
  }
  /// True when the dense id maps to an existing link. The only holes are
  /// unwired global slots of trimmed (groups < max) topologies.
  bool channel_wired(ChannelId c) const noexcept;
  /// One-past the largest dense channel id: routers * ports_per_router.
  /// Iteration over [0, num_channels()) must skip !channel_wired(c).
  std::size_t num_channels() const noexcept {
    return std::size_t{routers_.size()} * ports_per_router_;
  }
  /// Lifetime phits carried by channel `c` (§III link-load analysis).
  u64 channel_phits(ChannelId c) const noexcept { return channel_phits_[c]; }
  PacketPool& packets() noexcept { return pool_; }
  const PacketPool& packets() const noexcept { return pool_; }
  Rng& rng() noexcept { return rng_; }
  Stats& stats() noexcept { return stats_; }
  const Stats& stats() const noexcept { return stats_; }
  RoutingPolicy& policy() noexcept { return *policy_; }

  // ---- lazy construction (implicit mode; see DESIGN.md §"Scale") ----
  /// True when router r's FIFO/credit/arbiter state has been bound. Unbuilt
  /// routers are empty shells (no packet ever touched them); read-only
  /// consumers (telemetry, auditor, policy ticks) must treat them as
  /// all-empty / all-credits-at-cap rather than indexing their ports.
  bool router_built(RouterId r) const noexcept { return built_[r] != 0; }
  /// Routers built so far (memory accounting, tests).
  u64 built_router_count() const noexcept;
  /// Input-port shape (VC count, per-VC capacity in phits) of (r, port),
  /// computed arithmetically — valid whether or not r is built. This is
  /// also how output credit counters are sized (the downstream shape).
  void input_shape(RouterId r, PortId port, u32& vcs, u32& capacity) const;

  // ---- activity queries (telemetry) ----
  std::size_t active_router_count() const noexcept;
  std::size_t active_node_count() const noexcept {
    return active_nodes_.size();
  }
  /// Offers queued in node source queues, not yet injected.
  u64 pending_offers() const noexcept { return pending_total_; }

  /// Lifetime packet totals. Unlike the Stats counters these are never
  /// reset by measurement windows, so `injected_total() - delivered_total()`
  /// equals the live-packet count at all times (audited invariant).
  u64 injected_total() const noexcept { return injected_total_; }
  u64 delivered_total() const noexcept { return delivered_total_; }

  /// Enables the periodic invariant auditor (verify/invariant_auditor.hpp):
  /// every `interval` cycles the full check suite runs between cycles; any
  /// violation prints an actionable report and aborts. Interval 0 disables.
  /// The auditor is read-only and RNG-free — per-seed results (and golden
  /// digests) are bit-identical with auditing on or off.
  void enable_audit(Cycle interval);

  /// Enables the opt-in telemetry layer (see stats/metrics.hpp). Replaces
  /// any previous instance; the interval clock starts at the current cycle.
  /// Telemetry is read-only instrumentation: enabling it changes no
  /// simulation outcome and consumes no RNG draws.
  void enable_telemetry(const TelemetryConfig& tcfg);
  Telemetry* telemetry() noexcept { return telem_.get(); }
  const Telemetry* telemetry() const noexcept { return telem_.get(); }

  // ---- per-port structure queries (used by routing policies) ----
  /// VC range a non-escape packet may use on output port `port`.
  void base_vc_range(RouterId r, PortId port, u32& first, u32& count) const;
  /// Escape-ring VC range on the ring output of router r; count == 0 when
  /// `port` is not the ring output.
  struct RingOut {
    PortId port = kInvalidPort;
    u32 first_vc = 0;
    u32 num_vcs = 0;
  };
  const RingOut& ring_out(RouterId r) const {
    OFAR_DCHECK(ring_ != nullptr);
    return ring_out_[r];
  }
  /// True when (port, vc) of router r's *input* side belongs to the ring.
  bool is_ring_input(RouterId r, PortId port, VcId vc) const;

  /// Occupancy fraction of an output port over its base (non-escape) VCs.
  double base_occupancy(const Router& r, PortId port) const;
  /// True when `port` can accept a whole packet now on some base VC
  /// (not busy, wired, credits >= packet size).
  bool base_available(const Router& r, PortId port) const;
  /// Best base VC of `port` (most credits, >= packet size); false if none.
  bool best_base_vc(const Router& r, PortId port, VcId& vc) const;

  /// Number of phits a node's injection FIFOs can still accept.
  u32 injection_free_phits(NodeId node) const;

  /// Installs a per-packet event tracer (empty function disables). The
  /// callback runs synchronously inside the cycle loop; keep it light.
  /// Only packets selected by the trace sampler emit events; the default
  /// sampling of 1 (every packet, decided at injection) preserves the
  /// historical "trace everything" behaviour. In the sharded kernel every
  /// grant-phase event is staged per shard and flushed in shard-ascending
  /// order, so the event stream is bit-identical at any sim_threads.
  void set_tracer(std::function<void(const TraceEvent&)> tracer) {
    tracer_ = std::move(tracer);
  }

  /// Trace 1 in `denom` injected packets (deterministic hash of the
  /// injection sequence number — see trace::should_sample; 0/1 = all).
  /// Applies to packets injected after the call.
  void set_trace_sampling(u32 denom) noexcept {
    trace_sample_ = denom == 0 ? 1 : denom;
  }
  u32 trace_sampling() const noexcept { return trace_sample_; }

  /// Enables the full tracing subsystem (src/trace): installs a
  /// PacketTracer as the tracer callback, applies tcfg.sample, and arms the
  /// flight recorder (dumped automatically on InvariantAuditor failure or
  /// deadlock forensics). Replaces any previous tracer. Tracing is
  /// read-only instrumentation: no simulation outcome or RNG draw changes.
  void enable_tracing(const trace::TracerConfig& tcfg);
  trace::PacketTracer* packet_tracer() noexcept { return trace_.get(); }

  /// Deep flow-control conservation check: true iff the network is fully
  /// drained AND every FIFO is empty, every credit counter restored to
  /// capacity, and no event is in flight. Used by tests after drain.
  bool check_quiescent() const;

  /// Mid-run credit-conservation audit. For every (channel, VC):
  ///   upstream credits + downstream stored phits + phits on the wire
  ///   + credits on the wire + unsent phits of an active transfer
  /// must equal the downstream buffer capacity. Thin wrapper over
  /// verify::InvariantAuditor::check_credit_conservation. O(network).
  bool check_flow_conservation() const;

  /// Audit of the activity-worklist invariants (callable between steps):
  /// membership flags match the lists exactly, every router with activity
  /// is on the router worklist (the list may lag with idle routers until
  /// the next refresh), and the pending-node list holds exactly the nodes
  /// with a non-empty source queue. Thin wrapper over
  /// verify::InvariantAuditor::check_worklists. O(network).
  bool check_worklists() const;

 private:
  friend class verify::InvariantAuditor;
  friend class CheckpointIO;  // core/checkpoint.cpp: full-state save/load

  struct PhitEvent {
    ChannelId ch;
    PacketId pkt;
    VcId vc;
    u8 head;  // first phit of the packet
    u8 tail;  // last phit of the packet
  };
  struct CreditEvent {
    ChannelId ch;
    VcId vc;
  };
  struct Offer {
    NodeId dst;
    u16 tag;
    Cycle birth;
  };

  /// Order-preserving FIFO of a node's pending offers, backed by one plain
  /// vector. An idle queue is 24 bytes with no heap block — at h=16 the
  /// per-node source queues would otherwise dominate idle memory (libstdc++
  /// deques eagerly allocate a ~512-byte chunk each, ~160 MB for 262K
  /// nodes). Capacity tracks the node's own backlog high-water mark, which
  /// is O(in-flight) under the injection throttle.
  class OfferQueue {
   public:
    bool empty() const noexcept { return head_ == buf_.size(); }
    std::size_t size() const noexcept { return buf_.size() - head_; }
    const Offer& front() const {
      OFAR_DCHECK(!empty());
      return buf_[head_];
    }
    void push_back(const Offer& o) { buf_.push_back(o); }
    void pop_front() {
      OFAR_DCHECK(!empty());
      ++head_;
      if (head_ == buf_.size()) {
        buf_.clear();
        head_ = 0;
      } else if (head_ >= 1024 && head_ * 2 >= buf_.size()) {
        buf_.erase(buf_.begin(),
                   buf_.begin() + static_cast<std::ptrdiff_t>(head_));
        head_ = 0;
      }
    }
    /// Live entries in FIFO order (checkpointing).
    Span<const Offer> items() const noexcept {
      return Span<const Offer>(buf_.data() + head_, buf_.size() - head_);
    }

   private:
    std::vector<Offer> buf_;
    std::size_t head_ = 0;  // index of front(); entries before it are dead
  };

  /// An event staged in a shard outbox during a parallel phase, with its
  /// wheel slot precomputed so the serial commit is a plain push.
  struct StagedPhit {
    u32 slot;
    PhitEvent ev;
  };
  struct StagedCredit {
    u32 slot;
    CreditEvent ev;
  };

  /// Per-shard kernel state (DESIGN.md §10). Routers are partitioned into
  /// contiguous id ranges; nodes follow their router (router_of_node is
  /// n / p), so a shard owns [router_begin * p, router_end * p) nodes too.
  /// During a parallel phase a shard touches only its own routers plus this
  /// struct; every cross-shard effect (phit/credit events, stats, traces,
  /// deliveries) is staged here and committed serially in shard-ascending
  /// order — which equals router-ascending generation order, i.e. exactly
  /// the order the sequential kernel would have produced. Never commit by
  /// thread-arrival order.
  struct ShardState {
    RouterId router_begin = 0;
    RouterId router_end = 0;

    // Activity worklist of this shard's routers (see the invariants on the
    // worklist comment below; they hold per shard).
    std::vector<RouterId> active_routers;
    bool sorted = true;

    // Flat SoA arena backing the FIFO/credit spans of this shard's routers
    // (sim/flat_state.hpp), and the memoized credit view serving route()'s
    // base-VC queries — rebound per router by the allocation scan.
    ShardArena arena;
    CreditView view;

    // Allocation scratch: the separable allocator keeps per-port arbiters
    // reusable state, so each shard owns one (plus a request buffer).
    std::unique_ptr<SeparableAllocator> alloc;
    std::vector<AllocRequest> reqs;
    /// Head-gather scratch for the allocation scan: pass 1 walks the flat
    /// FIFO arena collecting routable heads (and prefetching their packet
    /// lines), pass 2 routes them — the scattered pool loads overlap
    /// instead of stalling the scan one miss at a time.
    struct HeadRef {
      PortId port;
      VcId vc;
      PacketId pid;
    };
    std::vector<HeadRef> heads;

    // Outboxes and staged side effects, only used when num_shards() > 1.
    std::vector<StagedPhit> phit_out;
    std::vector<StagedCredit> credit_out;
    std::vector<PacketId> delivered;  ///< ejected tails, slot-scan order
    std::vector<TraceEvent> traces;
    /// Routing-decision provenance for traced heads, keyed by the index of
    /// the matching entry in `reqs` (sparse: only traced packets record).
    /// Cleared together with `reqs` per router.
    std::vector<std::pair<u32, RouteProvenance>> provs;
    u64 ring_first_entries = 0;
    u64 ring_reentries = 0;
    u64 ring_exits = 0;
    u64 local_misroutes = 0;
    u64 global_misroutes = 0;
    /// Routers of this shard built so far (shard-local so the lazy build
    /// can run inside a parallel delivery phase without a shared counter).
    u64 built_count = 0;
  };

  void build_channels();
  void build_ring();

  /// Arithmetic channel resolution (implicit mode); also the single source
  /// of truth the wiring-table mode materializes from.
  Channel resolve_channel(ChannelId c) const;

  /// Binds router r's FIFO/credit/arbiter state onto its shard arena and
  /// wires its ports (channel ids, cached latencies, credit caps sized from
  /// the downstream input_shape). Parallel-legal from the owning shard's
  /// delivery phase: all written state is shard-local.
  OFAR_PARALLEL_PHASE void build_router(RouterId r);
  OFAR_PARALLEL_PHASE void ensure_router_built(RouterId r) {
    if (built_[r] == 0) build_router(r);
  }

  OFAR_SERIAL_ONLY void deliver_events();
  OFAR_SERIAL_ONLY void update_throttle();
  /// Transfer/allocation phases, per shard. kStaged = false writes events,
  /// stats and traces directly (the K = 1 sequential kernel, bit-identical
  /// to the pre-shard implementation); kStaged = true routes every
  /// cross-shard effect through the shard's outbox for the serial commit.
  /// ofar_lint exempts the `if constexpr (!kStaged)` branches from the
  /// parallel-phase rules: they only instantiate into the serial kernel.
  template <bool kStaged>
  OFAR_PARALLEL_PHASE void advance_transfers(ShardState& sh);
  template <bool kStaged>
  OFAR_PARALLEL_PHASE void do_allocation(ShardState& sh, u32 lane);
  /// True when router `r`'s escape-ring output could move one whole packet
  /// this cycle (wired, transfer-idle, a packet of credits on some escape
  /// VC). Conservative upper bound for entry, which needs the bubble too.
  OFAR_PARALLEL_PHASE bool ring_can_take_packet(const Router& r) const;
  template <bool kStaged>
  OFAR_PARALLEL_PHASE void commit_grant(ShardState& sh, Router& r,
                                        const AllocRequest& rq,
                                        const RouteProvenance* prov);
  OFAR_SERIAL_ONLY void do_injection();
  OFAR_SERIAL_ONLY void run_watchdog();
  /// step() with the phase profiler wrapped around each phase; selected by
  /// a single telem_ null test so the plain path stays instrumentation-free.
  OFAR_SERIAL_ONLY void step_instrumented();
  /// Periodic auditor driver: runs the full check suite and aborts with the
  /// report on any violation. Reschedules itself audit_interval_ ahead.
  OFAR_SERIAL_ONLY void run_audit();

  // ---- sharded kernel (num_shards() > 1 only) ----
  /// One shard's slice of event delivery: scans the full wheel slot and
  /// applies only the events it owns (phit: the destination router's shard;
  /// ejection and credit: the source router's shard). Read-shared /
  /// write-own, so shards need no locks; the slot is cleared serially
  /// afterwards in commit_shard_deliveries().
  OFAR_PARALLEL_PHASE void deliver_events_shard(ShardState& sh, u32 shard);
  /// Serial: clears the current wheel slot and performs the staged packet
  /// deliveries (stats doubles, tracer, pool destroy) in shard order.
  OFAR_SERIAL_ONLY void commit_shard_deliveries();
  /// Serial: flushes staged traces/stat counters and commits the event
  /// outboxes into the wheels, in shard-ascending order.
  OFAR_SERIAL_ONLY void commit_shard_staging();
  /// Dispatches fn(shard) for every shard on the worker pool (or inline
  /// when single-threaded) and waits for all of them.
  OFAR_SERIAL_ONLY void run_shard_phase(const std::function<void(u32)>& fn);
  OFAR_SERIAL_ONLY void step_sharded();
  OFAR_SERIAL_ONLY void step_sharded_instrumented();

  // ---- activity worklists ----
  /// Adds router r to the active worklist (idempotent). Called whenever a
  /// packet enters one of r's input FIFOs; r leaves the list via the prune
  /// pass fused into advance_transfers() once it holds no packet and
  /// streams nothing.
  /// Parallel-legal: a shard only ever marks routers it owns, and both the
  /// membership flag and the worklist it appends to live in that shard's
  /// slice (router_in_worklist_[r] / shards_[shard_of_router_[r]]).
  OFAR_PARALLEL_PHASE void mark_router_active(RouterId r);
  /// Adds node n to the pending-injection worklist (idempotent).
  OFAR_SERIAL_ONLY void mark_node_pending(NodeId n);

  /// Creates the packet object for an accepted injection.
  OFAR_SERIAL_ONLY void place_packet(NodeId src, const Offer& offer);
  /// Final delivery at the destination node.
  OFAR_SERIAL_ONLY void deliver_packet(PacketId id);

  OFAR_SERIAL_ONLY void schedule_phit(ChannelId ch, PacketId pkt, VcId vc,
                                      bool head, bool tail, u32 latency);
  OFAR_SERIAL_ONLY void schedule_credit(ChannelId ch, VcId vc, u32 latency);

  // Topology/config members carry no phase annotation: they are written
  // only during construction and read-only afterwards, so any phase may
  // read them (ofar_lint only polices writes and serial-only calls).
  SimConfig cfg_;
  Dragonfly topo_;
  std::unique_ptr<HamiltonianRing> ring_;
  // Routers, channels and packets are partitioned by shard ownership: a
  // parallel phase touches only the slice its shard owns (a packet is owned
  // by the router currently buffering it).
  OFAR_SHARD_LOCAL std::vector<Router> routers_;
  /// Materialized descriptor table, dense-indexed; EMPTY in the default
  /// implicit mode (descriptors are resolved arithmetically on demand) and
  /// populated only under cfg.wiring_table (debug/reference mode). Either
  /// way it is written once at construction and read-only afterwards.
  std::vector<Channel> channels_;
  u32 ports_per_router_ = 0;  ///< cached topo_.ports_per_router()
  /// Lifetime phits carried per dense channel id. Shard-local: a channel's
  /// counter is only bumped by its source router's shard.
  OFAR_SHARD_LOCAL std::vector<u64> channel_phits_;
  /// Per-router lazy-build flags; a router is only ever built by its owning
  /// shard (or serially), so the flags are shard-local state.
  OFAR_SHARD_LOCAL std::vector<u8> built_;
  std::vector<RingOut> ring_out_;          // per router
  std::vector<PortId> ring_in_port_;       // per router (embedded/physical)
  std::vector<u32> ring_in_first_vc_;      // per router
  std::vector<u32> ring_in_num_vcs_;       // per router
  OFAR_SHARD_LOCAL PacketPool pool_;
  OFAR_SERIAL_ONLY Rng rng_;  ///< parallel phases draw via policy lane RNGs
  OFAR_SERIAL_ONLY Stats stats_;  ///< parallel phases stage in ShardState
  std::unique_ptr<RoutingPolicy> policy_;
  /// Per-cycle constant, latched serially at the top of step(): true when
  /// do_allocation may skip a router's whole request scan once its
  /// availability mask is empty and the ring cannot move (requires a
  /// pure-when-blocked policy and no tracer/telemetry observing the
  /// failing calls). Read-only during parallel phases.
  bool skip_blocked_scans_ = false;
  OFAR_SERIAL_ONLY std::unique_ptr<TrafficSource> traffic_;
  OFAR_SERIAL_ONLY std::function<void(const TraceEvent&)> tracer_;

  OFAR_SERIAL_ONLY std::vector<OfferQueue> pending_;  // per node
  OFAR_SERIAL_ONLY u64 pending_total_ = 0;
  OFAR_SERIAL_ONLY u64 injected_total_ = 0;   // lifetime, never reset
  OFAR_SERIAL_ONLY u64 delivered_total_ = 0;  // lifetime, never reset

  // Activity worklists (see class comment). Invariants:
  //  - router_in_worklist_[r] != 0  <=>  r appears in the active_routers
  //    list of its owning shard (shards_[shard_of_router_[r]]);
  //  - every router with Router::has_activity() is in its shard's list (the
  //    list may additionally hold routers that went idle since the last
  //    refresh);
  //  - active_nodes_ holds exactly the nodes with a non-empty pending_
  //    queue after each do_injection.
  // The sorted flags let marks append out of order; the per-cycle
  // refresh/drain re-sorts before any phase iterates. The router worklist
  // lives inside ShardState (one list per shard; K = 1 keeps the single
  // list of the sequential kernel); the node worklist stays global because
  // injection is always a serial phase.
  OFAR_SHARD_LOCAL std::vector<ShardState> shards_;
  std::vector<u32> shard_of_router_;  // built once, read-only afterwards
  OFAR_SHARD_LOCAL std::vector<u8> router_in_worklist_;
  OFAR_SERIAL_ONLY std::vector<NodeId> active_nodes_;
  OFAR_SERIAL_ONLY std::vector<u8> node_in_worklist_;
  OFAR_SERIAL_ONLY bool active_nodes_sorted_ = true;

  // Worker pool for the sharded kernel's parallel phases; null when
  // sim_threads_ == 1 (phases run inline on the calling thread).
  OFAR_SERIAL_ONLY std::unique_ptr<ShardPool> shard_pool_;
  OFAR_SERIAL_ONLY unsigned sim_threads_ = 1;

  // Event wheels indexed by cycle % wheel size. Global (not per shard):
  // every event has latency >= 1, so shards only ever read the current
  // slot concurrently and push to future slots through their outboxes —
  // hence SERIAL_ONLY: parallel phases may read but never write these.
  OFAR_SERIAL_ONLY std::vector<std::vector<PhitEvent>> phit_wheel_;
  OFAR_SERIAL_ONLY std::vector<std::vector<CreditEvent>> credit_wheel_;
  u32 wheel_size_ = 0;  // built once, read-only afterwards

  OFAR_SERIAL_ONLY Cycle now_ = 0;

  // Opt-in invariant auditing (see enable_audit). next_audit_ stays at the
  // Cycle max sentinel while disabled, so the per-cycle test in step() is a
  // single never-taken compare.
  OFAR_SERIAL_ONLY std::unique_ptr<verify::InvariantAuditor> audit_;
  OFAR_SERIAL_ONLY Cycle audit_interval_ = 0;
  OFAR_SERIAL_ONLY Cycle next_audit_ = ~Cycle{0};

  // Opt-in telemetry. Declared after the members it reads: ~Telemetry may
  // stream a run-end summary, so it must be destroyed before them.
  // Deliberately NOT phase-annotated: Telemetry resolves the split at
  // method level (note_*_stall hooks are parallel-legal, everything else
  // is OFAR_SERIAL_ONLY — see stats/metrics.hpp).
  std::unique_ptr<Telemetry> telem_;

  // Opt-in tracing subsystem (src/trace). trace_sample_ applies to any
  // tracer (also ones installed via set_tracer); trace_ owns the
  // PacketTracer behind enable_tracing, whose destructor flushes the
  // exporters — declared last so it runs before the members it reads.
  OFAR_SERIAL_ONLY u32 trace_sample_ = 1;
  OFAR_SERIAL_ONLY std::unique_ptr<trace::PacketTracer> trace_;
};

}  // namespace ofar
