#include "core/analysis.hpp"

#include <algorithm>
#include <vector>

#include "common/check.hpp"

namespace ofar::analysis {

double adv_offset_max_local_load(const Dragonfly& topo, u32 offset) {
  OFAR_CHECK(offset >= 1 && offset < topo.groups());
  const u32 groups = topo.groups();
  if (groups < 3) return 0.0;  // no transit groups exist
  const u32 a = topo.a();
  const double per_pair_rate =
      (2.0 * topo.h() * topo.h()) / static_cast<double>(groups - 2);

  // By vertex-transitivity over groups it suffices to examine one transit
  // group X; accumulate the load every (i -> i+offset) flow places on each
  // directed local link (entry carrier -> exit carrier) of X.
  double max_load = 0.0;
  const GroupId x = 0;
  std::vector<std::vector<double>> link_load(a, std::vector<double>(a, 0.0));
  for (GroupId i = 0; i < groups; ++i) {
    const GroupId dst = (i + offset) % groups;
    if (i == x || dst == x || i == dst) continue;
    const u32 entry = topo.slot_carrier(topo.peer_slot(topo.global_slot(i, x)));
    const u32 exit = topo.slot_carrier(topo.global_slot(x, dst));
    if (entry == exit) continue;  // same router: no local hop needed
    link_load[entry][exit] += per_pair_rate;
    max_load = std::max(max_load, link_load[entry][exit]);
  }
  // Load factor per unit offered load per node: each node offers lambda,
  // the per-pair rate above already counts the full group's 2h^2 nodes.
  return max_load / (2.0 * topo.h() * topo.h());
}

double valiant_adv_offset_ceiling(const Dragonfly& topo, u32 offset) {
  const double local_factor = adv_offset_max_local_load(topo, offset);
  // Local link capacity is 1 phit/cycle; it carries local_factor * 2h^2 *
  // lambda. The global bound is Valiant's 0.5.
  const double local_ceiling =
      local_factor > 0.0
          ? 1.0 / (local_factor * 2.0 * topo.h() * topo.h())
          : 1.0;
  return std::min(valiant_global_ceiling(), local_ceiling);
}

}  // namespace ofar::analysis
