// Fig. 5 reproduction: latency (a) and throughput (b) versus offered load
// under the worst-case adversarial pattern ADV+h, for VAL, PB, OFAR and
// OFAR-L. This is the paper's headline result: the consecutive global
// wiring funnels all misrouted transit traffic of a group pair through one
// local link, capping every mechanism WITHOUT local misrouting at
// 1/h phits/(node*cycle) (paper §III); only OFAR's in-transit local
// misroute escapes the ceiling (paper: OFAR 0.36 vs 1/6 = 0.166 at h=6).
//
// The analytic ceilings are printed alongside so the gap is visible.
//
// Shim over the "fig5" preset (presets.cpp).
#include "presets.hpp"

int main(int argc, char** argv) {
  return ofar::bench::run_preset_main("fig5", argc, argv);
}
