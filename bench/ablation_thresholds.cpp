// Ablation bench (DESIGN.md extension #1/#2): OFAR's misroute-threshold
// policy. The paper picked the variable policy Th_nonmin = 0.9 * Q_min
// empirically as "a reasonable trade-off between the performance in
// adversarial and uniform traffic patterns" (§V); this bench reproduces
// that tuning study on our substrate:
//
//   - sweep of the variable-policy factor (columns = traffic regimes),
//   - sweep of the absolute occupancy-gap guard this implementation adds
//     (see MisrouteThresholds::min_gap),
//   - the paper's static alternative (Th_min = 100%, Th_nonmin = 40%).
//
// Shim over the "ablation_thresholds" preset (presets.cpp).
#include "presets.hpp"

int main(int argc, char** argv) {
  return ofar::bench::run_preset_main("ablation_thresholds", argc, argv);
}
