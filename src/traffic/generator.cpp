#include "traffic/generator.hpp"

#include "common/check.hpp"
#include "sim/network.hpp"

namespace ofar {

BernoulliSource::BernoulliSource(TrafficPattern pattern, double load_phits,
                                 u64 seed)
    : pattern_(std::move(pattern)), load_(load_phits),
      rng_(seed ^ 0x5452414646494353ULL) {}

void BernoulliSource::tick(Network& net) {
  const double p = load_ / net.config().packet_size;
  const u32 nodes = net.topo().nodes();
  for (NodeId n = 0; n < nodes; ++n) {
    if (!rng_.chance(p)) continue;
    u16 tag;
    const NodeId dst = pattern_.pick(n, net.topo(), rng_, tag);
    net.offer(n, dst, tag);
  }
}

PhasedSource::PhasedSource(std::vector<Phase> phases, u64 seed)
    : phases_(std::move(phases)), rng_(seed ^ 0x504841534544ULL) {
  OFAR_CHECK(!phases_.empty());
}

void PhasedSource::tick(Network& net) {
  const Cycle now = net.now();
  const Phase* active = nullptr;
  for (const Phase& ph : phases_) {
    if (ph.until == 0 || now < ph.until) {
      active = &ph;
      break;
    }
  }
  if (active == nullptr) return;  // schedule exhausted
  const double p = active->load_phits / net.config().packet_size;
  const u32 nodes = net.topo().nodes();
  for (NodeId n = 0; n < nodes; ++n) {
    if (!rng_.chance(p)) continue;
    u16 tag;
    const NodeId dst = active->pattern.pick(n, net.topo(), rng_, tag);
    net.offer(n, dst, static_cast<u16>(tag + active->tag_base));
  }
}

BurstSource::BurstSource(TrafficPattern pattern, u32 packets_per_node,
                         u64 seed)
    : pattern_(std::move(pattern)), packets_per_node_(packets_per_node),
      rng_(seed ^ 0x4255525354ULL) {}

void BurstSource::tick(Network& net) {
  if (remaining_.empty()) {
    remaining_.assign(net.topo().nodes(), packets_per_node_);
    remaining_total_ =
        static_cast<u64>(net.topo().nodes()) * packets_per_node_;
  }
  if (remaining_total_ == 0) return;
  const u32 nodes = net.topo().nodes();
  for (NodeId n = 0; n < nodes; ++n) {
    while (remaining_[n] > 0) {
      u16 tag;
      const NodeId dst = pattern_.pick(n, net.topo(), rng_, tag);
      if (!net.try_inject(n, dst, tag)) break;
      --remaining_[n];
      --remaining_total_;
    }
  }
}

}  // namespace ofar
