#include "core/experiment.hpp"

#include <algorithm>
#include <cstdio>
#include <memory>

#include "common/parallel.hpp"
#include "core/checkpoint.hpp"
#include "sim/network.hpp"
#include "stats/sink.hpp"
#include "trace/trace.hpp"
#include "traffic/generator.hpp"

namespace ofar {

namespace {

std::string compose_label(const std::string& base,
                          const std::string& suffix) {
  if (base.empty()) return suffix;
  if (suffix.empty()) return base;
  return base + "|" + suffix;
}

/// "traces/t.json" + "adv|OFAR|load=0.4", seed 7 ->
/// "traces/t.adv_OFAR_load_0.4-s7.json": a filesystem-safe per-run name so
/// sweep points sharing one params object write distinct files.
std::string per_point_path(const std::string& path, const std::string& label,
                           u64 seed) {
  if (path.empty()) return path;
  std::string tag;
  for (const char c : label) {
    const bool keep = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'z') ||
                      (c >= 'A' && c <= 'Z') || c == '.' || c == '-';
    tag += keep ? c : '_';
  }
  if (!tag.empty()) tag += '-';
  tag += 's' + std::to_string(seed);
  const std::size_t slash = path.find_last_of('/');
  const std::size_t dot = path.find_last_of('.');
  if (dot == std::string::npos || (slash != std::string::npos && dot < slash))
    return path + "." + tag;
  return path.substr(0, dot) + "." + tag + path.substr(dot);
}

}  // namespace

void ExperimentCommon::arm(Network& net, const std::string& label_suffix)
    const {
  net.set_sim_threads(sim_threads);
  if (audit_interval > 0) net.enable_audit(audit_interval);
  const std::string label = compose_label(metrics_label, label_suffix);
  if (!trace_out.empty() || !trace_links.empty()) {
    trace::TracerConfig tc;
    tc.out_path = trace_per_point
                      ? per_point_path(trace_out, label, net.config().seed)
                      : trace_out;
    tc.links_path = trace_per_point
                        ? per_point_path(trace_links, label,
                                         net.config().seed)
                        : trace_links;
    tc.sample = trace_sample;
    tc.link_bucket = trace_link_bucket;
    tc.flight_depth = trace_flight_depth;
    tc.label = label;
    net.enable_tracing(tc);
  }
  if (metrics_sink == nullptr) return;
  TelemetryConfig tc;
  tc.sink = metrics_sink;
  tc.interval = metrics_interval;
  tc.full_dump = metrics_full;
  tc.label = label;
  net.enable_telemetry(tc);
}

SteadyResult run_steady(const SimConfig& cfg, const TrafficPattern& pattern,
                        double load, const RunParams& params) {
  Network net(cfg);
  net.set_traffic(
      std::make_unique<BernoulliSource>(pattern, load, cfg.seed));
  char suffix[32];
  std::snprintf(suffix, sizeof suffix, "load=%g", load);
  params.arm(net, suffix);

  // Checkpoint/restart (core/checkpoint.hpp): resume from an existing
  // snapshot if one matches, then run in interval-sized chunks with a
  // refresh between chunks. A cold run with no checkpoint path takes the
  // two plain run() calls below — same cycles, same results.
  const bool ckpt = !params.checkpoint_path.empty();
  if (ckpt) CheckpointIO::restore(net, params.checkpoint_path);
  const auto run_to = [&](Cycle target) {
    while (net.now() < target) {
      Cycle chunk = target - net.now();
      if (ckpt && params.checkpoint_interval > 0)
        chunk = std::min(chunk, params.checkpoint_interval);
      net.run(chunk);
      if (ckpt && net.now() < target)
        CheckpointIO::save(net, params.checkpoint_path);
    }
  };
  if (net.now() < params.warmup) {
    run_to(params.warmup);
    net.stats().reset(net.now());
    // Snapshot the post-reset boundary so a resume never repeats warmup.
    if (ckpt) CheckpointIO::save(net, params.checkpoint_path);
  }
  run_to(params.warmup + params.measure);
  if (ckpt) std::remove(params.checkpoint_path.c_str());
  if (net.telemetry() != nullptr) net.telemetry()->write_summary(net);

  const Stats& s = net.stats();
  SteadyResult out;
  out.offered_load = s.offered_load(net.now(), net.topo().nodes());
  out.accepted_load = s.accepted_load(net.now(), net.topo().nodes());
  out.avg_latency = s.latency().mean();
  out.stddev_latency = s.latency().stddev();
  out.delivered_packets = s.delivered_packets();
  out.local_misroutes = s.local_misroutes();
  out.global_misroutes = s.global_misroutes();
  out.ring_entries = s.ring_entries();
  out.stalled_packets = s.stalled_packets();
  out.worst_stall = s.worst_stall();
  out.mean_hops = s.mean_hops();
  return out;
}

std::vector<SweepPoint> run_load_sweep(const SimConfig& cfg,
                                       const TrafficPattern& pattern,
                                       const std::vector<double>& loads,
                                       const RunParams& params,
                                       unsigned threads) {
  std::vector<SweepPoint> points(loads.size());
  parallel_for(
      loads.size(),
      [&](std::size_t i) {
        points[i].load = loads[i];
        points[i].result = run_steady(cfg, pattern, loads[i], params);
      },
      threads);
  return points;
}

TransientResult run_transient(const SimConfig& cfg,
                              const TrafficPattern& pattern_a, double load_a,
                              const TrafficPattern& pattern_b, double load_b,
                              const TransientParams& params) {
  Network net(cfg);
  const Cycle switch_at = params.warmup;
  std::vector<PhasedSource::Phase> phases;
  phases.push_back({pattern_a, load_a, switch_at, /*tag_base=*/0});
  phases.push_back({pattern_b, load_b, /*until=*/0,
                    static_cast<u16>(pattern_a.components().size())});
  net.set_traffic(std::make_unique<PhasedSource>(std::move(phases), cfg.seed));
  params.arm(net);

  const Cycle series_start = switch_at > params.lead ? switch_at - params.lead
                                                     : 0;
  net.stats().enable_timeseries(series_start, params.lead + params.horizon,
                                params.bucket);
  net.run(switch_at + params.horizon + params.drain);
  if (net.telemetry() != nullptr) net.telemetry()->write_summary(net);

  TransientResult out;
  const TimeSeries* ts = net.stats().series();
  for (std::size_t i = 0; i < ts->num_buckets(); ++i) {
    const auto& b = ts->bucket(i);
    TransientBucket tb;
    tb.cycle_rel = static_cast<i64>(ts->bucket_mid(i)) -
                   static_cast<i64>(switch_at);
    tb.mean_latency = b.mean();
    tb.packets = b.count;
    out.series.push_back(tb);
  }
  return out;
}

BurstResult run_burst(const SimConfig& cfg, const TrafficPattern& pattern,
                      const BurstParams& params) {
  Network net(cfg);
  auto source = std::make_unique<BurstSource>(
      pattern, params.packets_per_node, cfg.seed);
  BurstSource* burst = source.get();
  net.set_traffic(std::move(source));
  params.arm(net);

  BurstResult out;
  while (net.now() < params.max_cycles) {
    net.step();
    if (burst->finished() && net.drained()) {
      out.completed = true;
      break;
    }
  }
  if (net.telemetry() != nullptr) net.telemetry()->write_summary(net);
  out.completion = net.now();
  out.delivered_packets = net.stats().delivered_packets();
  out.avg_latency = net.stats().latency().mean();
  out.ring_entries = net.stats().ring_entries();
  return out;
}

}  // namespace ofar
