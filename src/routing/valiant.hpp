// VAL: Valiant routing (paper §V baseline; Valiant '82).
//
// Every inter-group packet is first sent minimally to a random intermediate
// group (different from source and destination), then minimally to its
// destination — the classic load-balancing answer to adversarial patterns,
// at the price of doubled global-link utilisation. Intra-group packets
// bounce through a random intermediate router of the group, which balances
// local links the same way.
#pragma once

#include "common/rng.hpp"
#include "routing/routing.hpp"

namespace ofar {

class ValiantPolicy : public RoutingPolicy {
 public:
  explicit ValiantPolicy(const SimConfig& cfg);

  const char* name() const noexcept override { return "VAL"; }

  void on_inject(Network& net, Packet& pkt, RouterId at) override;
  RouteChoice route(Network& net, RouterId at, PortId in_port, VcId in_vc,
                    Packet& pkt) override;

 protected:
  /// Assigns pkt's Valiant intermediate (group or router); used by the
  /// adaptive injection-time mechanisms (PB/UGAL) as well.
  void assign_intermediate(Network& net, Packet& pkt, RouterId at);

  Rng rng_;
};

}  // namespace ofar
