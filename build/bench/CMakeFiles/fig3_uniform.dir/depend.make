# Empty dependencies file for fig3_uniform.
# This may be replaced when dependencies are built.
