#include "common/cli.hpp"

#include <cstdlib>
#include <stdexcept>

namespace ofar {

CommandLine::CommandLine(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string key = arg.substr(2);
    std::string value = "true";  // bare flag
    if (auto eq = key.find('='); eq != std::string::npos) {
      value = key.substr(eq + 1);
      key = key.substr(0, eq);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      value = argv[++i];
    }
    values_[key] = value;
    used_[key] = false;
  }
}

bool CommandLine::has(const std::string& key) const {
  auto it = values_.find(key);
  if (it == values_.end()) return false;
  used_[key] = true;
  return true;
}

std::string CommandLine::get_string(const std::string& key,
                                    const std::string& fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  used_[key] = true;
  return it->second;
}

i64 CommandLine::get_int(const std::string& key, i64 fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  used_[key] = true;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

u64 CommandLine::get_uint(const std::string& key, u64 fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  used_[key] = true;
  return std::strtoull(it->second.c_str(), nullptr, 10);
}

double CommandLine::get_double(const std::string& key, double fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  used_[key] = true;
  return std::strtod(it->second.c_str(), nullptr);
}

bool CommandLine::get_bool(const std::string& key, bool fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  used_[key] = true;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::vector<std::string> CommandLine::unused_keys() const {
  std::vector<std::string> out;
  for (const auto& [key, used] : used_)
    if (!used) out.push_back(key);
  return out;
}

}  // namespace ofar
