// OFAR: On-the-Fly Adaptive Routing — the paper's contribution (§IV).
//
// Unlike every VC-ordered predecessor, OFAR decides misrouting *in transit*,
// per hop, from credit information local to the current router:
//
//  - each head packet has a recomputed minimal output every cycle; if that
//    output can take the packet it is requested;
//  - otherwise, if the misroute thresholds allow (Q_min >= Th_min and a
//    candidate with occupancy <= Th_nonmin exists), the packet requests a
//    random eligible non-minimal output:
//      * global misroute — only in the source group, only once per packet
//        (header flag), only for inter-group traffic. Packets still in
//        their injection queue misroute globally (saving Valiant's first
//        local hop); packets in local queues first misroute locally, then
//        globally (preventing starvation of the saturated router's own
//        nodes, §IV-A);
//      * local misroute — once per group (header flag); outside the source
//        group it is only allowed when the minimal output is itself a
//        saturated local port;
//  - as a last resort the packet asks to enter the deadlock-free escape
//    ring (bubble-restricted injection, §IV-C).
//
// OFAR-L is the same policy with local misrouting disabled (the paper's
// ablation that isolates the benefit of local misroute, §IV-A).
#pragma once

#include <vector>

#include "common/phase.hpp"
#include "common/rng.hpp"
#include "core/escape_ring.hpp"
#include "routing/routing.hpp"

namespace ofar {

class OfarPolicy final : public RoutingPolicy {
 public:
  OfarPolicy(const SimConfig& cfg, bool allow_local);

  const char* name() const noexcept override {
    return allow_local_ ? "OFAR" : "OFAR-L";
  }

  RouteChoice route(RouteContext& ctx) override;
  void bind_lanes(u32 lanes) override;
  void save_state(CkptWriter& w) const override;
  void load_state(CkptReader& r) override;

 private:
  /// Per-shard route() state: the candidate RNG and its scratch list.
  /// route() is called concurrently from different shards in the sharded
  /// kernel, so each lane owns both; lane 0 keeps the legacy sequential
  /// stream so K = 1 runs replay the sequential kernel's draws exactly.
  struct Lane {
    explicit Lane(u64 seed) : rng(seed) {}
    OFAR_LANE_RNG Rng rng;
    std::vector<PortId> scratch;
  };

  /// Threshold below which a non-minimal output is an eligible candidate.
  double nonmin_threshold(double q_min) const noexcept {
    return thresholds_.variable ? thresholds_.nonmin_factor * q_min
                                : thresholds_.th_nonmin_static;
  }

  /// Appends eligible local-misroute candidate ports at router `at`;
  /// credit/occupancy checks go through the memoized view (bound to `at`).
  /// `gap_ceiling` is Q_min - min_gap for the decision in flight.
  void collect_local(const Network& net, CreditView& view, RouterId at,
                     PortId min_port, double th, double gap_ceiling,
                     std::vector<PortId>& out) const;
  /// Appends eligible global-misroute candidate ports at router `at`.
  void collect_global(const Network& net, CreditView& view, RouterId at,
                      PortId min_port, GroupId dst_group, double th,
                      double gap_ceiling, std::vector<PortId>& out) const;

  MisrouteThresholds thresholds_;
  EscapeRingControl ring_;
  bool allow_local_;
  u64 seed_;  ///< salted policy seed, basis for the per-lane streams
  OFAR_LANE_RNG std::vector<Lane> lanes_;
};

}  // namespace ofar
