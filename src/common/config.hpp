// Simulation configuration: every knob of the router/network model and the
// routing mechanisms, with the paper's §V evaluation setup as defaults.
#pragma once

#include <string>

#include "common/types.hpp"

namespace ofar {

/// Routing/flow-control mechanism selector (paper §V list + UGAL-L extension).
enum class RoutingKind {
  kMin,    ///< minimal l-g-l routing
  kVal,    ///< Valiant: always misroute through a random intermediate group
  kPb,     ///< Piggybacking (Jiang et al. ISCA'09): injection-time adaptive
  kUgal,   ///< UGAL-L: injection-time adaptive on local queue occupancy only
  kPar,    ///< Progressive Adaptive Routing: re-decides inside the source
           ///< group; needs one extra local VC (Jiang et al. ISCA'09)
  kOfar,   ///< this paper: in-transit adaptive, local+global misrouting
  kOfarL,  ///< OFAR without local misrouting (paper's "-L" ablation)
};

/// Escape-subnetwork implementation (paper §IV-C / §VII).
enum class RingKind {
  kNone,      ///< no escape network (only safe for VC-ordered mechanisms)
  kPhysical,  ///< dedicated Hamiltonian ring: 2 extra ports + wires per router
  kEmbedded,  ///< extra escape VC on the links the Hamiltonian ring traverses
};

const char* to_string(RoutingKind kind) noexcept;
const char* to_string(RingKind kind) noexcept;
bool parse_routing_kind(const std::string& text, RoutingKind& out) noexcept;
bool parse_ring_kind(const std::string& text, RingKind& out) noexcept;

/// OFAR misroute-threshold policy (paper §IV-B).
///
/// Misrouting is considered only when the minimal output is unavailable and
/// its occupancy fraction Q_min >= th_min. A non-minimal output with occupancy
/// Q is then an eligible candidate iff Q <= Th_nonmin, where
///   Th_nonmin = nonmin_factor * Q_min   (variable policy, paper default), or
///   Th_nonmin = th_nonmin_static        (static policy).
struct MisrouteThresholds {
  bool variable = true;
  double th_min = 0.0;              ///< minimal-queue occupancy gate, [0,1]
  double nonmin_factor = 0.9;       ///< paper §V: Th_nonmin = 0.9 * Q_min
  double th_nonmin_static = 0.4;    ///< used when variable == false
  /// Absolute occupancy gap Q_min - Q_cand additionally required of a
  /// candidate. This is the stabiliser the relative threshold needs: under
  /// uniform overload every queue equalises (gap ~ 0, so deflections stop
  /// feeding on themselves), while under adversarial patterns the hot
  /// minimal port is full and alternatives near-empty (gap ~ 1, misroute
  /// fires). Chosen empirically, mirroring the paper's own empirical
  /// threshold selection (§V).
  double min_gap = 0.15;
};

/// Full simulator configuration. Defaults reproduce the paper's §V setup
/// except for the network size knob `h` (paper: 6), which callers set
/// explicitly because it dominates simulation cost.
struct SimConfig {
  // ---- topology ----
  u32 h = 4;            ///< global links per router; p = h, a = 2h
  u32 groups = 0;       ///< number of groups; 0 selects the maximum, a*h + 1

  // ---- router microarchitecture (paper §V) ----
  u32 packet_size = 8;        ///< phits per packet
  u32 local_latency = 10;     ///< cycles of wire delay, local links
  u32 global_latency = 100;   ///< cycles of wire delay, global links
  u32 fifo_local = 32;        ///< phits per local-input VC FIFO
  u32 fifo_global = 256;      ///< phits per global-input VC FIFO
  u32 fifo_injection = 32;    ///< phits per injection VC FIFO
  u32 vcs_local = 3;
  u32 vcs_global = 2;
  u32 vcs_injection = 3;
  u32 allocator_iterations = 3;  ///< iterative separable batch allocator

  // ---- routing ----
  RoutingKind routing = RoutingKind::kOfar;
  RingKind ring = RingKind::kPhysical;
  MisrouteThresholds thresholds{};
  u32 max_ring_exits = 4;  ///< livelock guard: times a packet may leave ring
  /// Group stride of the Hamiltonian escape ring (paper §VII reliability
  /// discussion: several rings with distinct strides use distinct global
  /// links). Must be coprime with the group count; stride 1 is the
  /// paper's ring.
  u32 ring_stride = 1;

  // ---- Piggybacking / UGAL parameters ----
  double pb_saturation_threshold = 0.35;  ///< global channel "saturated" if
                                          ///< occupancy fraction exceeds this
  u32 pb_broadcast_delay = 10;   ///< cycles before group-mates see a flag
  i32 ugal_bias_phits = 4;       ///< T in: q_min*H_min <= q_val*H_val + T

  // ---- congestion management (extension; paper §VII future work) ----
  /// When enabled, every router monitors its own total input-buffer
  /// occupancy and pauses the injection of its attached nodes while it is
  /// congested (hysteresis: pause above `on`, resume below `off`). This is
  /// the simplest member of the family the paper defers to future work; it
  /// prevents the network-wide buffer pinning that lets sustained deep
  /// overload collapse onto the escape ring (see bench/fig9_reduced_vcs
  /// and bench/ablation_congestion).
  bool congestion_throttle = false;
  double throttle_on = 0.60;   ///< pause injection above this occupancy
  double throttle_off = 0.45;  ///< resume injection below this occupancy

  // ---- sharded cycle kernel (DESIGN.md §10) ----
  /// Number of contiguous router shards the cycle kernel is partitioned
  /// into. This is a SEMANTIC knob, not an execution knob: K > 1 selects the
  /// staged-commit kernel, whose per-seed results are bit-identical across
  /// any worker-thread count but differ from the K = 1 sequential kernel
  /// (policy RNGs draw from per-shard lanes). It therefore participates in
  /// experiment content keys. Clamped to the router count at construction.
  u32 sim_shards = 1;

  /// Align shard boundaries to group multiples (group-major partitioning):
  /// a shard's working set becomes a whole number of groups' cache
  /// footprint. SEMANTIC for the same reason as sim_shards — it moves
  /// routers between shard lanes, so K > 1 digests differ from the default
  /// contiguous split. Participates in experiment content keys.
  bool shard_group_major = false;

  // ---- wiring mode (scale work, DESIGN.md §"Scale") ----
  /// Debug/reference mode: materialize the dense channel table and build
  /// every router eagerly at construction, exactly like the pre-implicit
  /// simulator. The default (false) resolves channels arithmetically on the
  /// fly and builds router state lazily on first touch. NOT semantic — both
  /// modes produce bit-identical results (tested) — so it is excluded from
  /// experiment content keys.
  bool wiring_table = false;

  // ---- bookkeeping ----
  u64 seed = 1;
  u32 deadlock_timeout = 200'000;  ///< watchdog: max cycles a head may stall

  /// Processing nodes per router (balanced dragonfly: p == h).
  u32 p() const noexcept { return h; }
  /// Routers per group (balanced dragonfly: a == 2h).
  u32 a() const noexcept { return 2 * h; }
  /// Number of groups actually built.
  u32 num_groups() const noexcept { return groups != 0 ? groups : a() * h + 1; }

  /// True when this mechanism needs the hop-ordered VC discipline for
  /// deadlock freedom (everything except OFAR, which uses the escape ring).
  bool vc_ordered() const noexcept {
    return routing != RoutingKind::kOfar && routing != RoutingKind::kOfarL;
  }

  /// Validates mutual consistency; returns an error message or empty string.
  std::string validate() const;

  /// One-line human-readable summary.
  std::string summary() const;
};

}  // namespace ofar
