// Fig. 3 reproduction: latency (a) and throughput (b) versus offered load
// under uniform random traffic (UN), for MIN, PB, OFAR and OFAR-L.
// VAL is omitted exactly as in the paper (it halves UN throughput).
//
// Expected shape (paper §VI-A): OFAR latency competitive with MIN at low
// load; OFAR/OFAR-L saturate later than MIN and PB; PB latency visibly
// higher at low load due to spurious misrouting; local misrouting makes
// little difference under UN.
//
// Shim over the "fig3" preset (presets.cpp); the historical CLI keeps
// working, and `ofar_run --preset fig3` is the cached/resumable spelling.
#include "presets.hpp"

int main(int argc, char** argv) {
  return ofar::bench::run_preset_main("fig3", argc, argv);
}
