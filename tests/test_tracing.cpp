// Packet-trace-based whole-path validation: reconstruct every packet's hop
// sequence from TraceEvents and check the properties the mechanisms must
// guarantee end to end —
//  - physical consistency: each grant leaves through a real link whose far
//    side is the next hop's router, and the last router owns the
//    destination node;
//  - path-length bounds per mechanism (MIN <= 3, VAL/PB/UGAL <= 5,
//    PAR <= 6, OFAR <= 8 canonical hops);
//  - the ascending (class, VC) discipline that proves the VC-ordered
//    mechanisms deadlock-free, checked hop by hop on real traffic;
//  - OFAR misroute-flag limits: at most one global misroute per packet and
//    one local misroute per visited group.
// Also covers the LatencyHistogram percentile queries.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "sim/network.hpp"
#include "traffic/generator.hpp"

namespace ofar {
namespace {

struct Hop {
  RouterId router;
  PortId port;
  VcId vc;
  MisrouteKind misroute;
  bool ring_move;
};

struct PacketTrace {
  NodeId src = 0, dst = 0;
  RouterId inject_router = 0;
  std::vector<Hop> hops;
  bool delivered = false;
};

std::map<u64, PacketTrace> run_traced(SimConfig cfg,
                                      const TrafficPattern& pattern,
                                      double load, Cycle cycles) {
  Network net(cfg);
  // PacketIds are recycled; key traces by a unique incarnation counter.
  std::map<u64, PacketTrace> traces;
  std::map<PacketId, u64> live_key;
  u64 next_key = 0;
  net.set_tracer([&](const TraceEvent& ev) {
    switch (ev.kind) {
      case TraceEvent::Kind::kInject: {
        const u64 key = next_key++;
        live_key[ev.packet] = key;
        PacketTrace& t = traces[key];
        t.src = ev.src;
        t.dst = ev.dst;
        t.inject_router = ev.router;
        break;
      }
      case TraceEvent::Kind::kGrant:
        traces[live_key.at(ev.packet)].hops.push_back(
            {ev.router, ev.out_port, ev.out_vc, ev.misroute, ev.ring_move});
        break;
      case TraceEvent::Kind::kRingEnter:
      case TraceEvent::Kind::kRingExit:
        break;  // markers duplicating the preceding kGrant; not extra hops
      case TraceEvent::Kind::kDeliver:
        traces[live_key.at(ev.packet)].delivered = true;
        live_key.erase(ev.packet);
        break;
    }
  });
  net.set_traffic(std::make_unique<BernoulliSource>(pattern, load, cfg.seed));
  net.run(cycles);
  net.set_traffic(nullptr);
  u64 guard = 0;
  while (!net.drained() && ++guard < 500000) net.step();
  EXPECT_TRUE(net.drained());
  return traces;
}

/// Follows the hop list through the topology; returns false on any
/// physically impossible transition.
bool path_is_physical(const Dragonfly& topo, const PacketTrace& t) {
  RouterId cur = t.inject_router;
  for (std::size_t i = 0; i < t.hops.size(); ++i) {
    const Hop& hop = t.hops[i];
    if (hop.router != cur) return false;
    switch (topo.port_class(hop.port)) {
      case PortClass::kNode:
        // Ejection must be the last hop, at the destination router, on the
        // destination node's port.
        return i + 1 == t.hops.size() && cur == topo.router_of_node(t.dst) &&
               hop.port == topo.node_port(topo.node_slot(t.dst));
      case PortClass::kLocal:
        cur = topo.router_at(topo.group_of(cur),
                             topo.local_peer(topo.local_of(cur), hop.port));
        break;
      case PortClass::kGlobal:
        if (!topo.global_port_wired(cur, hop.port)) return false;
        cur = topo.global_peer(cur, hop.port).router;
        break;
      case PortClass::kRing:
        return true;  // physical-ring moves verified by the ring tests
    }
  }
  return false;  // never ejected
}

SimConfig traced_cfg(RoutingKind routing) {
  SimConfig cfg;
  cfg.h = 2;
  cfg.routing = routing;
  cfg.ring = cfg.vc_ordered() ? RingKind::kNone : RingKind::kPhysical;
  if (routing == RoutingKind::kPar) cfg.vcs_local = 4;
  cfg.seed = 4242;
  return cfg;
}

class TracedPathTest : public ::testing::TestWithParam<RoutingKind> {};

TEST_P(TracedPathTest, EveryPathIsPhysicalAndBounded) {
  const SimConfig cfg = traced_cfg(GetParam());
  Dragonfly topo(cfg.h);
  const auto traces =
      run_traced(cfg, TrafficPattern::adversarial(1), 0.12, 2000);
  ASSERT_GT(traces.size(), 200u);
  u32 bound = 8;
  switch (GetParam()) {
    case RoutingKind::kMin: bound = 3; break;
    case RoutingKind::kVal:
    case RoutingKind::kPb:
    case RoutingKind::kUgal: bound = 5; break;
    case RoutingKind::kPar: bound = 6; break;
    default: break;
  }
  for (const auto& [key, t] : traces) {
    ASSERT_TRUE(t.delivered);
    ASSERT_TRUE(path_is_physical(topo, t)) << "packet " << key;
    u32 router_hops = 0;
    bool rode_ring = false;
    for (const Hop& h : t.hops) {
      rode_ring |= h.ring_move;
      if (!h.ring_move && topo.port_class(h.port) != PortClass::kNode)
        ++router_hops;
    }
    if (!rode_ring) {
      EXPECT_LE(router_hops, bound) << "packet " << key;
    }
  }
}

TEST_P(TracedPathTest, OrderedVcLevelsNeverDescend) {
  const RoutingKind kind = GetParam();
  const SimConfig cfg = traced_cfg(kind);
  if (!cfg.vc_ordered()) GTEST_SKIP() << "OFAR is not VC-ordered";
  Dragonfly topo(cfg.h);
  const auto traces =
      run_traced(cfg, TrafficPattern::adversarial(1), 0.12, 2000);
  // Level order L0 < G0 < L1 < G1 < L2 (PAR: L0 < L1 < G0 < L2 < G1 < L3).
  auto level = [&](const Hop& h) -> int {
    const bool global = topo.port_class(h.port) == PortClass::kGlobal;
    if (kind == RoutingKind::kPar)
      return global ? 2 + 2 * h.vc : (h.vc <= 1 ? h.vc : 2 * h.vc - 1);
    return global ? 1 + 2 * h.vc : 2 * h.vc;
  };
  for (const auto& [key, t] : traces) {
    int prev = -1;
    for (const Hop& h : t.hops) {
      if (topo.port_class(h.port) == PortClass::kNode) break;
      const int lv = level(h);
      EXPECT_GT(lv, prev) << "packet " << key << ": VC level descended";
      prev = lv;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Mechanisms, TracedPathTest,
    ::testing::Values(RoutingKind::kMin, RoutingKind::kVal, RoutingKind::kPb,
                      RoutingKind::kUgal, RoutingKind::kPar,
                      RoutingKind::kOfar, RoutingKind::kOfarL),
    [](const ::testing::TestParamInfo<RoutingKind>& info) {
      std::string n = to_string(info.param);
      for (auto& c : n)
        if (c == '-') c = '_';
      return n;
    });

TEST(TracedOfar, MisrouteFlagLimitsHold) {
  const SimConfig cfg = traced_cfg(RoutingKind::kOfar);
  Dragonfly topo(cfg.h);
  const auto traces =
      run_traced(cfg, TrafficPattern::adversarial(2), 0.2, 2500);
  u64 local_misroutes = 0, global_misroutes = 0;
  for (const auto& [key, t] : traces) {
    u32 global_mis = 0;
    std::map<GroupId, u32> local_mis_per_group;
    RouterId cur = t.inject_router;
    for (const Hop& h : t.hops) {
      if (h.misroute == MisrouteKind::kGlobal) {
        ++global_mis;
        ++global_misroutes;
      }
      if (h.misroute == MisrouteKind::kLocal) {
        ++local_mis_per_group[topo.group_of(cur)];
        ++local_misroutes;
      }
      // advance (canonical hops only; ring hops keep cur for flag checks)
      if (topo.port_class(h.port) == PortClass::kLocal)
        cur = topo.router_at(topo.group_of(cur),
                             topo.local_peer(topo.local_of(cur), h.port));
      else if (topo.port_class(h.port) == PortClass::kGlobal)
        cur = topo.global_peer(cur, h.port).router;
    }
    EXPECT_LE(global_mis, 1u) << "packet " << key;
    for (const auto& [group, count] : local_mis_per_group)
      EXPECT_LE(count, 1u) << "packet " << key << " group " << group;
  }
  EXPECT_GT(global_misroutes + local_misroutes, 0u);
}

// ---- latency histogram ----

TEST(LatencyHistogram, PercentilesBracketTheData) {
  LatencyHistogram hist;
  for (u64 v = 1; v <= 1000; ++v) hist.add(v);
  EXPECT_EQ(hist.total(), 1000u);
  const u64 p50 = hist.percentile(0.5);
  const u64 p99 = hist.percentile(0.99);
  // Bucketed resolution: within a factor of two of the exact quantile.
  EXPECT_GE(p50, 250u);
  EXPECT_LE(p50, 1024u);
  EXPECT_GE(p99, 512u);
  EXPECT_GE(p99, p50);
  EXPECT_EQ(hist.percentile(0.0), hist.percentile(0.0));
}

TEST(LatencyHistogram, EmptyAndSingleton) {
  LatencyHistogram hist;
  EXPECT_EQ(hist.percentile(0.5), 0u);
  hist.add(100);
  EXPECT_GE(hist.percentile(0.5), 64u);
  EXPECT_LE(hist.percentile(0.5), 128u);
}

TEST(LatencyHistogram, WiredIntoStats) {
  Stats s;
  s.reset(0);
  s.on_delivered(0, 8, 120, 0, 3);
  s.on_delivered(0, 8, 130, 0, 3);
  EXPECT_EQ(s.latency_histogram().total(), 2u);
  s.reset(10);
  EXPECT_EQ(s.latency_histogram().total(), 0u);
}

}  // namespace
}  // namespace ofar
