// Tests for the extension surface: the PAR baseline (progressive adaptive
// routing with its 4-local-VC discipline) and the §III analytic model.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "core/analysis.hpp"
#include "core/experiment.hpp"
#include "routing/par.hpp"
#include "sim/network.hpp"
#include "traffic/generator.hpp"

namespace ofar {
namespace {

SimConfig par_cfg(u32 h = 2) {
  SimConfig cfg;
  cfg.h = h;
  cfg.routing = RoutingKind::kPar;
  cfg.ring = RingKind::kNone;
  cfg.vcs_local = 4;  // PAR's extra local VC
  cfg.seed = 31337;
  return cfg;
}

// ---- PAR ----

TEST(Par, ConfigValidationRequiresFourLocalVcs) {
  SimConfig cfg = par_cfg();
  EXPECT_EQ(cfg.validate(), "");
  cfg.vcs_local = 3;
  EXPECT_NE(cfg.validate(), "");
}

TEST(Par, VcAssignmentFollowsProgressiveLevels) {
  Network net(par_cfg());
  const Dragonfly& topo = net.topo();
  const PortId lport = topo.first_local_port();
  const PortId gport = topo.first_global_port();
  Packet pkt;
  // Source group: first local hop L0, divert hop L1, global G0.
  EXPECT_EQ(par_vc(net, lport, pkt), 0);
  EXPECT_EQ(par_vc(net, gport, pkt), 0);
  pkt.local_hops_in_group = 1;
  EXPECT_EQ(par_vc(net, lport, pkt), 1);
  // After g1: locals jump to L2, the second global uses G1.
  pkt.global_hops = 1;
  pkt.local_hops_in_group = 0;
  EXPECT_EQ(par_vc(net, lport, pkt), 2);
  EXPECT_EQ(par_vc(net, gport, pkt), 1);
  // After g2: destination-group local hop uses L3.
  pkt.global_hops = 2;
  EXPECT_EQ(par_vc(net, lport, pkt), 3);
}

TEST(Par, DeliversAndQuiescesUnderUniform) {
  Network net(par_cfg());
  net.set_traffic(std::make_unique<BernoulliSource>(
      TrafficPattern::uniform(), 0.15, 1));
  net.run(3000);
  net.set_traffic(nullptr);
  u64 guard = 0;
  while (!net.drained() && ++guard < 500000) net.step();
  ASSERT_TRUE(net.drained());
  net.run(net.config().global_latency + 2);
  EXPECT_TRUE(net.check_quiescent());
  EXPECT_EQ(net.stats().delivered_packets(), net.stats().injected_packets());
  EXPECT_EQ(net.stats().stalled_packets(), 0u);
}

TEST(Par, DrainsUnderAdversarialTraffic) {
  Network net(par_cfg());
  net.set_traffic(std::make_unique<BernoulliSource>(
      TrafficPattern::adversarial(1), 0.1, 1));
  net.run(3000);
  net.set_traffic(nullptr);
  u64 guard = 0;
  while (!net.drained() && ++guard < 500000) net.step();
  EXPECT_TRUE(net.drained());
  EXPECT_EQ(net.stats().stalled_packets(), 0u);
}

TEST(Par, SustainsAdversarialBeyondMinCeiling) {
  // MIN is capped at 1/(2h^2) = 0.125 at h=2; PAR must divert and do
  // clearly better.
  const SteadyResult r = run_steady(par_cfg(), TrafficPattern::adversarial(1),
                                    0.2, RunParams::windows(2000, 3000));
  EXPECT_GT(r.accepted_load, 0.15);
}

TEST(Par, HopCountWithinProgressiveBound) {
  Network net(par_cfg());
  net.set_traffic(std::make_unique<BernoulliSource>(
      TrafficPattern::adversarial(2), 0.2, 1));
  net.run(4000);
  net.set_traffic(nullptr);
  u64 guard = 0;
  while (!net.drained() && ++guard < 500000) net.step();
  EXPECT_LE(net.stats().max_hops(), 6u);  // l-l-g-l-g-l
}

TEST(Par, FlowConservationHolds) {
  Network net(par_cfg());
  net.set_traffic(std::make_unique<BernoulliSource>(
      TrafficPattern::adversarial(1), 0.25, 1));
  for (int i = 0; i < 6; ++i) {
    net.run(300);
    ASSERT_TRUE(net.check_flow_conservation());
  }
}

// ---- analytic model ----

TEST(Analysis, ClosedFormCeilings) {
  EXPECT_DOUBLE_EQ(analysis::min_adversarial_ceiling(6), 1.0 / 72.0);
  EXPECT_DOUBLE_EQ(analysis::valiant_global_ceiling(), 0.5);
  EXPECT_DOUBLE_EQ(analysis::valiant_advh_local_ceiling(6), 1.0 / 6.0);
  EXPECT_DOUBLE_EQ(analysis::min_local_neighbour_ceiling(4), 0.25);
}

TEST(Analysis, OffsetOneIsGlobalBound) {
  // ADV+1 never funnels: entry and exit carriers mostly coincide, so the
  // Valiant ceiling is the plain global 0.5.
  for (u32 h : {3u, 4u, 6u}) {
    Dragonfly topo(h);
    EXPECT_DOUBLE_EQ(analysis::valiant_adv_offset_ceiling(topo, 1), 0.5)
        << "h=" << h;
  }
}

TEST(Analysis, OffsetHHitsTheLocalFunnel) {
  // ADV+h: essentially all transit flows entering a router leave via its
  // successor, so the ceiling approaches 1/h (paper §III).
  for (u32 h : {3u, 4u, 6u}) {
    Dragonfly topo(h);
    const double ceiling = analysis::valiant_adv_offset_ceiling(topo, h);
    EXPECT_LT(ceiling, 1.25 / h) << "h=" << h;
    EXPECT_GT(ceiling, 0.75 / h) << "h=" << h;
  }
}

TEST(Analysis, MultiplesOfHAreAllFunnels) {
  // Small offsets keep entry and exit carriers mostly coincident; k*h
  // offsets (and their wraparound neighbours) funnel h flows through one
  // local link. Offset 2 is the clean non-funnel reference.
  Dragonfly topo(4);
  const double at_h = analysis::valiant_adv_offset_ceiling(topo, 4);
  const double at_2h = analysis::valiant_adv_offset_ceiling(topo, 8);
  const double off = analysis::valiant_adv_offset_ceiling(topo, 2);
  EXPECT_LT(at_h, off);
  EXPECT_LT(at_2h, off);
  EXPECT_NEAR(at_h, at_2h, 1e-9);
}

TEST(Analysis, CeilingNeverExceedsGlobalBound) {
  Dragonfly topo(3);
  for (u32 offset = 1; offset < topo.groups(); ++offset) {
    const double c = analysis::valiant_adv_offset_ceiling(topo, offset);
    EXPECT_LE(c, 0.5);
    EXPECT_GT(c, 0.0);
  }
}

TEST(Analysis, SimulatedValiantStaysBelowPredictedCeiling) {
  // The analytic value assumes ideal switching; the simulator must sit
  // below it (router efficiency) but within sight of it.
  Dragonfly topo(2);
  SimConfig cfg;
  cfg.h = 2;
  cfg.routing = RoutingKind::kVal;
  cfg.ring = RingKind::kNone;
  for (u32 offset : {1u, 2u}) {
    const double predicted = analysis::valiant_adv_offset_ceiling(topo, offset);
    const SteadyResult r = run_steady(
        cfg, TrafficPattern::adversarial(offset), 0.5, RunParams::windows(2500, 3500));
    EXPECT_LT(r.accepted_load, predicted + 0.02) << "offset " << offset;
    EXPECT_GT(r.accepted_load, predicted * 0.5) << "offset " << offset;
  }
}

// ---- congestion throttle (paper §VII future-work extension) ----

TEST(Throttle, ConfigValidation) {
  SimConfig cfg;
  cfg.congestion_throttle = true;
  EXPECT_EQ(cfg.validate(), "");
  cfg.throttle_off = 0.9;  // off above on: invalid hysteresis
  cfg.throttle_on = 0.5;
  EXPECT_NE(cfg.validate(), "");
}

TEST(Throttle, InactiveByDefaultAndHarmlessAtLowLoad) {
  SimConfig cfg;
  cfg.h = 2;
  cfg.routing = RoutingKind::kOfar;
  cfg.seed = 5;
  const SteadyResult plain =
      run_steady(cfg, TrafficPattern::uniform(), 0.1, RunParams::windows(1500, 2500));
  cfg.congestion_throttle = true;
  const SteadyResult throttled =
      run_steady(cfg, TrafficPattern::uniform(), 0.1, RunParams::windows(1500, 2500));
  // Far below the thresholds the throttle must never engage.
  EXPECT_DOUBLE_EQ(plain.accepted_load, throttled.accepted_load);
  EXPECT_DOUBLE_EQ(plain.avg_latency, throttled.avg_latency);
}

TEST(Throttle, EngagesAboveOnThresholdAndKeepsDelivering) {
  // Aggressively low thresholds make the latch observable at a load the
  // network otherwise handles: injection must be held back while packets
  // still flow (hysteresis releases routers as they drain).
  SimConfig cfg;
  cfg.h = 2;
  cfg.routing = RoutingKind::kOfar;
  cfg.congestion_throttle = true;
  cfg.throttle_on = 0.005;
  cfg.throttle_off = 0.002;
  cfg.seed = 5;
  Network net(cfg);
  net.set_traffic(std::make_unique<BernoulliSource>(
      TrafficPattern::uniform(), 0.4, 5));
  net.run(4000);
  EXPECT_LT(net.stats().injected_packets(), net.stats().generated_packets());
  EXPECT_GT(net.stats().delivered_packets(), 500u);
  u32 throttled_routers = 0;
  for (RouterId r = 0; r < net.topo().routers(); ++r)
    if (net.router(r).throttled) ++throttled_routers;
  EXPECT_GT(throttled_routers, 0u);
}

TEST(Throttle, ReleasesAfterLoadDisappears) {
  SimConfig cfg;
  cfg.h = 2;
  cfg.routing = RoutingKind::kOfar;
  cfg.congestion_throttle = true;
  cfg.throttle_on = 0.005;
  cfg.throttle_off = 0.002;
  cfg.seed = 5;
  Network net(cfg);
  net.set_traffic(std::make_unique<BernoulliSource>(
      TrafficPattern::uniform(), 0.4, 5));
  net.run(4000);
  net.set_traffic(nullptr);
  u64 guard = 0;
  while (!net.drained() && ++guard < 500000) net.step();
  EXPECT_TRUE(net.drained());  // throttled sources still drained fully
  net.run(cfg.global_latency + 2);
  for (RouterId r = 0; r < net.topo().routers(); ++r)
    EXPECT_FALSE(net.router(r).throttled) << "router " << r;
}

// ---- stencil traffic ----

TEST(Stencil, DestinationsAreGridNeighbours) {
  Dragonfly topo(2);  // 72 nodes -> 8 x 9 grid
  Rng rng(3);
  const TrafficPattern p = TrafficPattern::stencil2d();
  const u32 nx = 8, ny = 9;
  for (NodeId src = 0; src < topo.nodes(); ++src) {
    for (int i = 0; i < 16; ++i) {
      u16 tag;
      const NodeId dst = p.pick(src, topo, rng, tag);
      ASSERT_NE(dst, src);
      const i32 sx = src % nx, sy = src / nx;
      const i32 dx = dst % nx, dy = dst / nx;
      const i32 ddx = std::min(std::abs(sx - dx),
                               static_cast<i32>(nx) - std::abs(sx - dx));
      const i32 ddy = std::min(std::abs(sy - dy),
                               static_cast<i32>(ny) - std::abs(sy - dy));
      EXPECT_EQ(ddx + ddy, 1) << src << "->" << dst;
    }
  }
}

TEST(Stencil, AllFourNeighboursAppear) {
  Dragonfly topo(2);
  Rng rng(4);
  const TrafficPattern p = TrafficPattern::stencil2d();
  std::set<NodeId> seen;
  for (int i = 0; i < 200; ++i) {
    u16 tag;
    seen.insert(p.pick(20, topo, rng, tag));
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST(Stencil, Describe) {
  EXPECT_EQ(TrafficPattern::stencil2d().describe(), "STENCIL2D");
}

TEST(RingStride, NonUnitStrideEscapeRingWorks) {
  SimConfig cfg;
  cfg.h = 2;
  cfg.routing = RoutingKind::kOfar;
  cfg.ring = RingKind::kEmbedded;
  cfg.ring_stride = 2;  // gcd(2, 9 groups) == 1
  cfg.seed = 7;
  ASSERT_EQ(cfg.validate(), "");
  const SteadyResult r =
      run_steady(cfg, TrafficPattern::adversarial(1), 0.15, RunParams::windows(1500, 2500));
  EXPECT_GT(r.accepted_load, 0.13);
  EXPECT_EQ(r.stalled_packets, 0u);
}

TEST(RingStride, AtLeastTwoEdgeDisjointRingsAtH3) {
  Dragonfly topo(3);
  HamiltonianRing r1(topo, 1);
  bool found = false;
  for (u32 stride = 2; stride < topo.groups() && !found; ++stride) {
    if (!HamiltonianRing::constructible(topo, stride)) continue;
    HamiltonianRing r2(topo, stride);
    if (HamiltonianRing::edge_disjoint(topo, r1, r2)) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Stencil, RunsEndToEnd) {
  SimConfig cfg;
  cfg.h = 2;
  cfg.routing = RoutingKind::kOfar;
  cfg.seed = 6;
  const SteadyResult r =
      run_steady(cfg, TrafficPattern::stencil2d(), 0.2, RunParams::windows(1500, 2500));
  EXPECT_GT(r.accepted_load, 0.19);
  EXPECT_EQ(r.stalled_packets, 0u);
}

}  // namespace
}  // namespace ofar
