// Bucketed time series: mean of a value keyed by the cycle an event is
// attributed to. Used for the paper's transient experiments (Fig. 6), where
// the latency of each delivered packet is accounted to the cycle the packet
// was *sent* (generated), not the cycle it arrived.
#pragma once

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace ofar {

class CheckpointIO;

class TimeSeries {
 public:
  TimeSeries() = default;

  /// Buckets cover [start, start + horizon); events outside are dropped.
  TimeSeries(Cycle start, Cycle horizon, u32 bucket_width)
      : start_(start), bucket_width_(bucket_width),
        buckets_((horizon + bucket_width - 1) / bucket_width) {
    OFAR_CHECK(bucket_width > 0);
  }

  struct Bucket {
    double sum = 0.0;
    u64 count = 0;
    double mean() const { return count == 0 ? 0.0 : sum / count; }
  };

  /// Flush sink for windowed series: receives the retired bucket's centre
  /// cycle and its aggregate, oldest-first, exactly once per non-empty
  /// retired bucket.
  using FlushFn = std::function<void(Cycle mid, const Bucket& b)>;

  /// Bounds the series at `max_buckets` resident buckets (>= 1). When
  /// record_extending would grow past the bound, the oldest buckets are
  /// flushed through `flush` (empty buckets silently) and dropped, turning
  /// the unbounded history vector into a sliding window + stream. Series
  /// that never overflow never flush, so their dumps stay bit-identical to
  /// the unwindowed form. `flush` may be nullptr to drop retired buckets
  /// (they are still counted by flushed_buckets()).
  void set_window(u32 max_buckets, FlushFn flush) {
    OFAR_CHECK(max_buckets >= 1);
    max_buckets_ = max_buckets;
    flush_ = std::move(flush);
  }

  void record(Cycle at, double value) {
    Bucket* b = bucket_for(at);
    if (b == nullptr) return;
    b->sum += value;
    ++b->count;
  }

  /// record() variant that grows the window to cover `at` instead of
  /// dropping it. Used by sinks whose horizon is unknown up front (the
  /// per-link trace series); the fixed-window record() stays the transient
  /// experiments' contract. Under set_window, growth past the bound
  /// retires the oldest buckets through the flush sink; events older than
  /// the already-flushed prefix are dropped (the stream cannot rewind).
  void record_extending(Cycle at, double value) {
    if (at < start_) return;
    const u64 idx = (at - start_) / bucket_width_;
    if (idx < base_) return;  // behind the flushed prefix
    if (max_buckets_ != 0 && idx - base_ >= max_buckets_)
      flush_front(idx - max_buckets_ + 1);
    const u64 rel = idx - base_;
    if (rel >= buckets_.size()) buckets_.resize(rel + 1);
    Bucket* b = buckets_.data() + rel;
    b->sum += value;
    ++b->count;
  }

  /// Resident (unflushed) buckets. Under a window this is the tail of the
  /// series; the flushed prefix has already left through the sink.
  std::size_t num_buckets() const noexcept { return buckets_.size(); }
  const Bucket& bucket(std::size_t i) const { return buckets_[i]; }
  /// Cycle at the centre of resident bucket i.
  Cycle bucket_mid(std::size_t i) const {
    return start_ + (base_ + i) * bucket_width_ + bucket_width_ / 2;
  }
  u32 bucket_width() const noexcept { return bucket_width_; }
  /// Buckets retired through the flush sink so far (empty ones included).
  u64 flushed_buckets() const noexcept { return base_; }

  /// Appends one CSV row per non-empty bucket: label,cycle,mean,count
  /// (cycle is the bucket centre). The caller owns the stream and any
  /// header line.
  void dump_csv(std::FILE* f, const std::string& label) const;
  /// Appends one JSONL record per non-empty bucket:
  /// {"label":...,"cycle":...,"mean":...,"count":...}
  void dump_jsonl(std::FILE* f, const std::string& label) const;

 private:
  friend class CheckpointIO;  // serializes buckets_/base_ (not the sink)

  /// Bucket covering cycle `at`, or nullptr when `at` falls outside the
  /// window. The single guarded pointer computation replaces an operator[]
  /// that GCC 12 flagged with a spurious -Warray-bounds on constant-folded
  /// out-of-window cycles in test code.
  Bucket* bucket_for(Cycle at) noexcept {
    if (at < start_) return nullptr;
    const u64 idx = (at - start_) / bucket_width_;
    if (idx < base_) return nullptr;
    const u64 rel = idx - base_;
    return rel < buckets_.size() ? buckets_.data() + rel : nullptr;
  }

  /// Retires buckets [base_, new_base) through the flush sink and drops
  /// them; defined in timeseries.cpp.
  void flush_front(u64 new_base);

  Cycle start_ = 0;
  u32 bucket_width_ = 1;
  u64 base_ = 0;        ///< global index of buckets_[0] (flushed prefix size)
  u32 max_buckets_ = 0; ///< 0 = unbounded (no window installed)
  std::vector<Bucket> buckets_;
  FlushFn flush_;
};

}  // namespace ofar
