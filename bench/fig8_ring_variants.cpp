// Fig. 8 reproduction: OFAR with a dedicated physical Hamiltonian ring
// versus the virtually embedded ring (one extra escape VC on the links the
// ring traverses). The paper's point: the curves coincide, because the
// escape subnetwork resolves (rare) deadlocks rather than carrying traffic
// — so the zero-wire embedded implementation suffices.
//
// Runs both UN and ADV+2 sweeps; --pattern restricts to one.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ofar;
  using namespace ofar::bench;
  CommandLine cli(argc, argv);
  const BenchOptions opts = BenchOptions::parse(cli, 5'000, 6'000);
  const std::string which = cli.get_string("pattern", "both");
  const std::vector<double> un_loads = load_grid(cli, 0.05, 0.60, 6);
  if (!reject_unknown(cli)) return 1;

  SimConfig physical = opts.config(RoutingKind::kOfar);
  physical.ring = RingKind::kPhysical;
  SimConfig embedded = opts.config(RoutingKind::kOfar);
  embedded.ring = RingKind::kEmbedded;
  const std::vector<MechanismSpec> specs = {
      {"OFAR-physical", physical},
      {"OFAR-embedded", embedded},
  };

  std::printf("Fig. 8 (ring variants) on %s\n", physical.summary().c_str());

  if (which == "both" || which == "UN") {
    steady_figure("fig8_un", "Fig. 8: physical vs embedded ring, UN", opts,
                  TrafficPattern::uniform(), un_loads, specs);
  }
  if (which == "both" || which == "ADV") {
    std::vector<double> adv_loads;
    for (double l : un_loads) adv_loads.push_back(l * 0.45 / 0.60);
    steady_figure("fig8_adv2", "Fig. 8: physical vs embedded ring, ADV+2",
                  opts, TrafficPattern::adversarial(2), adv_loads, specs);
  }
  return 0;
}
