#include "routing/par.hpp"

#include <algorithm>

#include "sim/flat_state.hpp"
#include "sim/network.hpp"

namespace ofar {

VcId par_vc(const Network& net, PortId port, const Packet& pkt) {
  const SimConfig& cfg = net.config();
  switch (net.topo().port_class(port)) {
    case PortClass::kGlobal:
      return static_cast<VcId>(
          std::min<u32>(pkt.global_hops, cfg.vcs_global - 1));
    case PortClass::kLocal: {
      // Before the first global hop a packet takes at most two local hops
      // (the minimal try plus the divert) -> L0, L1. After global hop k
      // the local level is k + 1 -> L2, L3.
      const u32 level = pkt.global_hops == 0 ? pkt.local_hops_in_group
                                             : pkt.global_hops + 1;
      return static_cast<VcId>(std::min<u32>(level, cfg.vcs_local - 1));
    }
    default:
      return 0;  // ejection
  }
}

ParPolicy::ParPolicy(const SimConfig& cfg)
    : ValiantPolicy(cfg), bias_(cfg.ugal_bias_phits) {}

void ParPolicy::on_inject(Network&, Packet& pkt, RouterId) {
  // Start minimal; the progressive decision happens hop by hop in route().
  pkt.inter_group = kInvalidGroup;
  pkt.inter_router = kInvalidRouter;
  pkt.valiant_done = true;
}

RouteChoice ParPolicy::route(RouteContext& ctx) {
  Network& net = ctx.net;
  Packet& pkt = ctx.pkt;
  const RouterId at = ctx.at;
  const u32 lane = ctx.lane;
  RouteProvenance* const prov = ctx.prov;
  const Dragonfly& topo = net.topo();

  // Progressive re-evaluation: still in the source group, no global hop
  // taken, not yet diverted, and at most one local hop spent (the divert
  // itself needs the L1 level).
  const bool adaptive = at != pkt.dst_router &&
                        topo.group_of(at) == topo.group_of_node(pkt.src) &&
                        pkt.global_hops == 0 &&
                        pkt.inter_group == kInvalidGroup &&
                        pkt.inter_router == kInvalidRouter &&
                        pkt.local_hops_in_group <= 1;
  if (adaptive) {
    const UgalPaths paths = evaluate_ugal_paths(net, pkt, at, route_rng(lane));
    if (paths.has_val && !ugal_prefers_minimal(paths, bias_)) {
      pkt.inter_group = paths.inter_group;
      pkt.inter_router = paths.inter_router;
      pkt.valiant_done = false;
    }
  }

  const PortId out = valiant_next_port(net, at, pkt);
  const Router& r = net.router(at);
  const OutputPort& port = r.outputs[out];
  if (prov) {
    prov->min_port = out;
    prov->q_min = static_cast<float>(ctx.view.base_occupancy(out));
    prov->chosen_occ = prov->q_min;
  }
  if (!port.wired() || port.busy()) {
    if (prov) prov->condition = RouteCondition::kWaitBusy;
    return RouteChoice::none();
  }
  const VcId vc = par_vc(net, out, pkt);
  if (port.credits[vc] < net.config().packet_size) {
    if (prov) prov->condition = RouteCondition::kWaitBusy;
    return RouteChoice::none();
  }
  if (prov)
    prov->condition = pkt.valiant_done ? RouteCondition::kMinimal
                                       : RouteCondition::kValiantPhase;
  return RouteChoice::to(out, vc);
}

}  // namespace ofar
