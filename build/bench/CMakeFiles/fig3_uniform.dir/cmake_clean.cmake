file(REMOVE_RECURSE
  "CMakeFiles/fig3_uniform.dir/fig3_uniform.cpp.o"
  "CMakeFiles/fig3_uniform.dir/fig3_uniform.cpp.o.d"
  "fig3_uniform"
  "fig3_uniform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_uniform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
