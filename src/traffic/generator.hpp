// Traffic sources: the Network calls tick() once per cycle before draining
// per-node pending queues into injection FIFOs.
//
//  - BernoulliSource: each node generates a packet with probability
//    load / packet_size per cycle (paper §V).
//  - PhasedSource: schedule of (pattern, load, until_cycle) phases — the
//    transient experiments of Fig. 6 switch patterns at a cycle boundary.
//  - BurstSource: every node has a fixed budget of packets injected as fast
//    as injection-queue space allows (Fig. 7 burst consumption).
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "traffic/pattern.hpp"

namespace ofar {

class Network;
class CkptWriter;
class CkptReader;

class TrafficSource {
 public:
  virtual ~TrafficSource() = default;
  /// Generates this cycle's offers / injections into `net`.
  virtual void tick(Network& net) = 0;
  /// True when the source will never generate again (burst exhausted).
  virtual bool finished() const { return false; }

  /// Checkpoint hooks (core/checkpoint.hpp): serialize the source's mutable
  /// state (RNG stream, burst budgets) so a restored run generates the
  /// exact same offer sequence. load_state must consume exactly what
  /// save_state produced; the defaults write/read nothing.
  virtual void save_state(CkptWriter& w) const;
  virtual void load_state(CkptReader& r);
};

class BernoulliSource : public TrafficSource {
 public:
  BernoulliSource(TrafficPattern pattern, double load_phits, u64 seed);
  void tick(Network& net) override;

  /// In-place pattern/load change (simple transient experiments).
  void set_pattern(TrafficPattern pattern) { pattern_ = std::move(pattern); }
  void set_load(double load_phits) { load_ = load_phits; }

  void save_state(CkptWriter& w) const override;
  void load_state(CkptReader& r) override;

 private:
  TrafficPattern pattern_;
  double load_;
  Rng rng_;
};

class PhasedSource : public TrafficSource {
 public:
  struct Phase {
    TrafficPattern pattern;
    double load_phits = 0.1;
    Cycle until = 0;  ///< phase active while now < until; last phase may be 0
                      ///< meaning "forever"
    u16 tag_base = 0;  ///< added to the pattern's component tag
  };

  PhasedSource(std::vector<Phase> phases, u64 seed);
  void tick(Network& net) override;
  void save_state(CkptWriter& w) const override;
  void load_state(CkptReader& r) override;

 private:
  std::vector<Phase> phases_;
  Rng rng_;
};

class BurstSource : public TrafficSource {
 public:
  BurstSource(TrafficPattern pattern, u32 packets_per_node, u64 seed);
  void tick(Network& net) override;
  bool finished() const override { return remaining_total_ == 0; }

  u64 remaining_total() const { return remaining_total_; }

  void save_state(CkptWriter& w) const override;
  void load_state(CkptReader& r) override;

 private:
  TrafficPattern pattern_;
  u32 packets_per_node_ = 0;
  std::vector<u32> remaining_;  // per node (lazily sized on first tick)
  u64 remaining_total_ = 1;     // nonzero until the burst is initialised
  Rng rng_;
};

}  // namespace ofar
