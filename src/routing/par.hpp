// PAR: Progressive Adaptive Routing (Jiang, Kim & Dally, ISCA'09;
// discussed in the paper's §I/§II as the one pre-OFAR mechanism with any
// in-transit freedom). A packet starts out minimal but may re-evaluate the
// minimal-vs-Valiant decision at each router of its *source group*; once
// it diverts (or takes its global hop) the decision is final.
//
// The price is one extra VC on local links (4 instead of 3): the maximal
// path is l-l-g-l-g-l, and deadlock freedom needs the ascending order
// L0 < L1 < G0 < L2 < G1 < L3. PAR therefore uses its own VC assignment
// (par_vc) rather than the shared ordered_vc helper.
#pragma once

#include "routing/ugal.hpp"

namespace ofar {

/// PAR's hop-position VC assignment over the l-l-g-l-g-l pattern.
VcId par_vc(const Network& net, PortId port, const Packet& pkt);

class ParPolicy final : public ValiantPolicy {
 public:
  explicit ParPolicy(const SimConfig& cfg);

  const char* name() const noexcept override { return "PAR"; }

  void on_inject(Network& net, Packet& pkt, RouterId at) override;
  RouteChoice route(Network& net, RouterId at, PortId in_port, VcId in_vc,
                    Packet& pkt, u32 lane,
                    RouteProvenance* prov = nullptr) override;

 private:
  i32 bias_;
};

}  // namespace ofar
