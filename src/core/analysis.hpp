// Closed-form throughput ceilings from the paper's §III analysis, plus a
// generalisation that predicts the whole Fig. 2b curve: for any ADV+N
// offset, the expected load on every local link of a transit group under
// Valiant routing follows from the consecutive global wiring alone, and
// the busiest such link caps the accepted load.
//
// All ceilings are in phits/(node*cycle), assuming ideal (contention-free)
// switching — simulated values sit below them by the router efficiency.
#pragma once

#include "common/types.hpp"
#include "topology/dragonfly.hpp"

namespace ofar::analysis {

/// MIN under any single-destination-group adversarial pattern: the whole
/// group's 2h^2 nodes share one global link (paper §III).
inline double min_adversarial_ceiling(u32 h) noexcept {
  return 1.0 / (2.0 * h * h);
}

/// Valiant (and any always-misrouting scheme): two global hops per packet
/// over h global links per router's worth of injection (paper §III).
inline constexpr double valiant_global_ceiling() noexcept { return 0.5; }

/// MIN under a same-router neighbour pattern: h nodes share one local link.
inline double min_local_neighbour_ceiling(u32 h) noexcept { return 1.0 / h; }

/// Valiant under ADV+(k*h): the consecutive wiring funnels all transit
/// traffic of a group pair through one local link (paper §III, Fig. 2a).
inline double valiant_advh_local_ceiling(u32 h) noexcept { return 1.0 / h; }

/// Expected Valiant load, per unit of offered load, on the busiest local
/// link of a transit group under ADV+`offset` — derived from the wiring:
/// source group i enters transit group X on the carrier of the i->X link
/// and must leave via the carrier of the X->(i+offset) link; summing the
/// per-pair rate 2h^2/(groups-2) over all source groups gives each local
/// link's load factor.
double adv_offset_max_local_load(const Dragonfly& topo, u32 offset);

/// Predicted Valiant accepted-load ceiling for ADV+`offset`: the binding
/// constraint between the global bound (0.5) and the busiest local link.
double valiant_adv_offset_ceiling(const Dragonfly& topo, u32 offset);

}  // namespace ofar::analysis
