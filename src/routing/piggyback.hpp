// PB: Piggybacking (Jiang, Kim & Dally, ISCA'09; paper §V baseline).
//
// Injection-time adaptive routing with remote information: every router
// continuously classifies each of its global output channels as saturated
// or not (occupancy above a threshold) and broadcasts the flags to all
// routers of its group (piggybacked on regular traffic; modelled here as a
// group-wide table refreshed every `pb_broadcast_delay` cycles). At
// injection the router picks a random Valiant candidate and routes
// minimally iff the minimal path's global channel is not flagged saturated
// AND the UGAL queue comparison q_min*H_min <= q_val*H_val + T holds;
// otherwise the packet commits to the Valiant path. The decision is final —
// no in-transit adaptation (that is OFAR's contribution).
#pragma once

#include <vector>

#include "routing/valiant.hpp"

namespace ofar {

class PiggybackPolicy final : public ValiantPolicy {
 public:
  explicit PiggybackPolicy(const SimConfig& cfg);

  const char* name() const noexcept override { return "PB"; }

  void on_inject(Network& net, Packet& pkt, RouterId at) override;
  void tick(Network& net) override;
  void save_state(CkptWriter& w) const override;
  void load_state(CkptReader& r) override;

  /// Visible (broadcast) saturation flag of router r's global port index j.
  bool saturated(RouterId r, u32 global_index) const {
    return visible_[r * h_ + global_index] != 0;
  }

 private:
  u32 h_ = 0;
  double threshold_;
  u32 delay_;
  std::vector<u8> current_;  // locally known, updated every cycle
  std::vector<u8> visible_;  // what group-mates see (delayed broadcast)
  Cycle last_broadcast_ = 0;
  bool initialised_ = false;
};

}  // namespace ofar
