# Empty dependencies file for test_escape_ring.
# This may be replaced when dependencies are built.
