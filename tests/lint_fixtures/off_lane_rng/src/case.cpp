// Fixture: RNG streams used in parallel-phase code must be lane-bound.
// Direct serial-stream draws are flagged, including in virtual overrides
// that inherit parallel_phase from the base declaration; draws through
// the OFAR_LANE_RNG accessor or an OFAR_LANE_RNG member are fine, as is
// the rng_ fallback inside the accessor itself (the sanctioned seam).

struct Rng {
  unsigned below(unsigned bound);
};

struct Policy {
  OFAR_PARALLEL_PHASE virtual unsigned route(unsigned at, unsigned lane);
  OFAR_SERIAL_ONLY void on_inject();
  OFAR_LANE_RNG Rng& route_rng(unsigned lane);
  OFAR_SERIAL_ONLY Rng rng_;
  OFAR_LANE_RNG Rng lane_rng_;
};

Rng& Policy::route_rng(unsigned lane) {
  if (lane == 0) return rng_;  // fine: inside the lane-binding accessor
  return lane_rng_;
}

unsigned Policy::route(unsigned at, unsigned lane) {
  unsigned a = rng_.below(4);              // expect: off-lane-rng
  unsigned b = route_rng(lane).below(4);   // fine: lane-bound accessor
  unsigned c = lane_rng_.below(4);         // fine: lane-bound stream
  return at + a + b + c;
}

struct MinPolicy : Policy {
  unsigned route(unsigned at, unsigned lane) override;
};

unsigned MinPolicy::route(unsigned at, unsigned lane) {
  (void)lane;
  return at + rng_.below(8);  // expect: off-lane-rng
}

void Policy::on_inject() {
  rng_.below(2);  // fine: serial caller owns the stream
}
