#include "topology/dragonfly.hpp"

#include <sstream>

namespace ofar {

const char* to_string(PortClass c) noexcept {
  switch (c) {
    case PortClass::kNode: return "node";
    case PortClass::kLocal: return "local";
    case PortClass::kGlobal: return "global";
    case PortClass::kRing: return "ring";
  }
  return "?";
}

Dragonfly::Dragonfly(u32 h, u32 groups, bool physical_ring)
    : h_(h), groups_(groups == 0 ? 2 * h * h + 1 : groups),
      physical_ring_(physical_ring) {
  OFAR_CHECK_MSG(h >= 1, "h must be >= 1");
  OFAR_CHECK_MSG(groups_ >= 2, "at least two groups");
  OFAR_CHECK_MSG(groups_ <= max_groups(),
                 "groups exceeds global port capacity a*h + 1");
}

PortClass Dragonfly::port_class(PortId port) const noexcept {
  const u32 idx = port;
  if (idx < p()) return PortClass::kNode;
  if (idx < p() + a() - 1) return PortClass::kLocal;
  if (idx < p() + a() - 1 + h_) return PortClass::kGlobal;
  OFAR_DCHECK(physical_ring_ && idx == ring_port());
  return PortClass::kRing;
}

PortId Dragonfly::min_next_port(RouterId cur, RouterId dst) const noexcept {
  OFAR_DCHECK(cur != dst);
  const GroupId gc = group_of(cur);
  const GroupId gd = group_of(dst);
  if (gc == gd) return local_port(local_of(cur), local_of(dst));
  const u32 slot = global_slot(gc, gd);
  const u32 carrier = slot_carrier(slot);
  if (local_of(cur) == carrier) return slot_port(slot);
  return local_port(local_of(cur), carrier);
}

u32 Dragonfly::min_hops(RouterId from, RouterId to) const noexcept {
  if (from == to) return 0;
  const GroupId gf = group_of(from);
  const GroupId gt = group_of(to);
  if (gf == gt) return 1;
  u32 hops = 1;  // the global hop
  const RouterId out = carrier_router(gf, gt);
  if (out != from) ++hops;
  const auto far = global_peer(out, carrier_port(gf, gt));
  if (far.router != to) ++hops;
  return hops;
}

std::string Dragonfly::describe() const {
  std::ostringstream os;
  os << "dragonfly(h=" << h_ << ", p=" << p() << ", a=" << a()
     << ", groups=" << groups_ << ", routers=" << routers()
     << ", nodes=" << nodes()
     << (physical_ring_ ? ", +ring port" : "") << ")";
  return os.str();
}

}  // namespace ofar
