// Tests for traffic patterns and generators: destination distributions of
// UN / ADV+N / mixtures, and (via a tiny network) the Bernoulli, phased and
// burst sources' offered-load behaviour.
#include <gtest/gtest.h>

#include <map>

#include "common/rng.hpp"
#include "sim/network.hpp"
#include "topology/dragonfly.hpp"
#include "traffic/generator.hpp"
#include "traffic/pattern.hpp"

namespace ofar {
namespace {

TEST(TrafficPattern, UniformNeverPicksSelfAndCoversAll) {
  Dragonfly topo(2);
  Rng rng(1);
  const TrafficPattern p = TrafficPattern::uniform();
  const NodeId src = 5;
  std::map<NodeId, int> hist;
  for (int i = 0; i < 20000; ++i) {
    u16 tag;
    const NodeId dst = p.pick(src, topo, rng, tag);
    EXPECT_NE(dst, src);
    EXPECT_LT(dst, topo.nodes());
    EXPECT_EQ(tag, 0);
    ++hist[dst];
  }
  EXPECT_EQ(hist.size(), topo.nodes() - 1);  // every other node reachable
}

TEST(TrafficPattern, UniformIsRoughlyUniform) {
  Dragonfly topo(2);
  Rng rng(2);
  const TrafficPattern p = TrafficPattern::uniform();
  std::vector<int> hist(topo.nodes(), 0);
  const int n = 71000;
  for (int i = 0; i < n; ++i) {
    u16 tag;
    ++hist[p.pick(0, topo, rng, tag)];
  }
  const double expect = static_cast<double>(n) / (topo.nodes() - 1);
  for (NodeId d = 1; d < topo.nodes(); ++d)
    EXPECT_NEAR(hist[d], expect, expect * 0.35) << "node " << d;
}

TEST(TrafficPattern, AdversarialTargetsOffsetGroup) {
  Dragonfly topo(3);
  Rng rng(3);
  for (u32 offset : {1u, 3u, 7u}) {
    const TrafficPattern p = TrafficPattern::adversarial(offset);
    for (NodeId src : {NodeId{0}, NodeId{50}, NodeId{100}}) {
      for (int i = 0; i < 200; ++i) {
        u16 tag;
        const NodeId dst = p.pick(src, topo, rng, tag);
        EXPECT_EQ(topo.group_of_node(dst),
                  (topo.group_of_node(src) + offset) % topo.groups());
      }
    }
  }
}

TEST(TrafficPattern, AdversarialFullOffsetWrapsToOwnGroupWithoutSelf) {
  Dragonfly topo(2);  // 9 groups
  Rng rng(4);
  const TrafficPattern p = TrafficPattern::adversarial(9);  // ≡ own group
  for (int i = 0; i < 2000; ++i) {
    u16 tag;
    const NodeId dst = p.pick(3, topo, rng, tag);
    EXPECT_EQ(topo.group_of_node(dst), topo.group_of_node(NodeId{3}));
    EXPECT_NE(dst, 3u);
  }
}

TEST(TrafficPattern, MixRespectsWeights) {
  Dragonfly topo(2);
  Rng rng(5);
  const TrafficPattern p = TrafficPattern::mix({
      {PatternKind::kUniform, 0, 0.8},
      {PatternKind::kAdversarial, 1, 0.1},
      {PatternKind::kAdversarial, 6, 0.1},
  });
  std::array<int, 3> tags{};
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    u16 tag;
    p.pick(0, topo, rng, tag);
    ASSERT_LT(tag, 3);
    ++tags[tag];
  }
  EXPECT_NEAR(tags[0] / double(n), 0.8, 0.02);
  EXPECT_NEAR(tags[1] / double(n), 0.1, 0.02);
  EXPECT_NEAR(tags[2] / double(n), 0.1, 0.02);
}

TEST(TrafficPattern, Describe) {
  EXPECT_EQ(TrafficPattern::uniform().describe(), "UN");
  EXPECT_EQ(TrafficPattern::adversarial(6).describe(), "ADV+6");
  const auto mix = TrafficPattern::mix({{PatternKind::kUniform, 0, 0.8},
                                        {PatternKind::kAdversarial, 1, 0.2}});
  EXPECT_EQ(mix.describe(), "UN(0.8)+ADV+1(0.2)");
}

// ---- generators over a small real network ----

SimConfig tiny_cfg() {
  SimConfig cfg;
  cfg.h = 2;
  cfg.routing = RoutingKind::kMin;
  cfg.ring = RingKind::kNone;
  cfg.seed = 99;
  return cfg;
}

TEST(BernoulliSource, OfferedLoadMatchesRequest) {
  Network net(tiny_cfg());
  const double load = 0.2;
  net.set_traffic(std::make_unique<BernoulliSource>(
      TrafficPattern::uniform(), load, 7));
  net.run(5000);
  const double offered = net.stats().offered_load(net.now(), net.topo().nodes());
  EXPECT_NEAR(offered, load, 0.01);
}

TEST(PhasedSource, SwitchesPatternAtBoundary) {
  Network net(tiny_cfg());
  std::vector<PhasedSource::Phase> phases;
  phases.push_back({TrafficPattern::uniform(), 0.1, 1000, 0});
  phases.push_back({TrafficPattern::adversarial(2), 0.1, 0, 1});
  net.set_traffic(std::make_unique<PhasedSource>(std::move(phases), 7));
  net.run(3000);
  // Tag 0 packets (phase A) and tag 1 packets (phase B) must both exist.
  const Stats& s = net.stats();
  EXPECT_GT(s.latency_by_tag(0).count, 0u);
  EXPECT_GT(s.latency_by_tag(1).count, 0u);
}

TEST(BurstSource, InjectsExactBudgetAndFinishes) {
  Network net(tiny_cfg());
  const u32 per_node = 20;
  auto src = std::make_unique<BurstSource>(TrafficPattern::uniform(),
                                           per_node, 7);
  BurstSource* burst = src.get();
  net.set_traffic(std::move(src));
  u64 guard = 0;
  while ((!burst->finished() || !net.drained()) && ++guard < 200000)
    net.step();
  EXPECT_TRUE(burst->finished());
  EXPECT_TRUE(net.drained());
  EXPECT_EQ(net.stats().delivered_packets(),
            static_cast<u64>(per_node) * net.topo().nodes());
}

TEST(BurstSource, NotFinishedBeforeFirstTick) {
  BurstSource src(TrafficPattern::uniform(), 5, 1);
  EXPECT_FALSE(src.finished());
}

}  // namespace
}  // namespace ofar
