"""Command-line driver for ofar_lint.

Exit status 0 when no findings (or --list-only modes), 1 when findings
remain, 2 on usage/environment errors.
"""

import argparse
import os
import sys

from . import __version__
from .model import Finding  # noqa: F401  (re-export for embedders)
from .rules import RULES, analyze

DEFAULT_DIRS = ("src",)
SOURCE_EXTS = (".hpp", ".cpp", ".h", ".cc")


def _find_root(start):
    d = os.path.abspath(start)
    while True:
        if os.path.isdir(os.path.join(d, "src")) and \
                os.path.exists(os.path.join(d, "CMakeLists.txt")):
            return d
        parent = os.path.dirname(d)
        if parent == d:
            return None
        d = parent


def collect_files(root, dirs=DEFAULT_DIRS):
    out = []
    for rel in dirs:
        base = os.path.join(root, rel)
        for dirpath, _dirnames, filenames in os.walk(base):
            for fn in sorted(filenames):
                if fn.endswith(SOURCE_EXTS):
                    out.append(os.path.relpath(
                        os.path.join(dirpath, fn), root))
    out.sort()
    return out


def load_program(root, files, engine):
    """Builds the semantic model with the requested engine.
    Returns (program, engine_used)."""
    if engine in ("auto", "clang"):
        try:
            from . import frontend_clang
            if frontend_clang.available():
                return frontend_clang.load_program(root, files), "clang"
            if engine == "clang":
                raise RuntimeError(
                    "libclang bindings or compile_commands.json not "
                    "available")
        except ImportError:
            if engine == "clang":
                raise RuntimeError("libclang Python bindings not installed")
    from . import frontend_builtin
    return frontend_builtin.load_program(root, files), "builtin"


def main(argv=None):
    ap = argparse.ArgumentParser(
        prog="ofar_lint",
        description="Semantic phase-discipline analyzer for the OFAR "
                    "sharded kernel (DESIGN.md §10/§12).")
    ap.add_argument("--root", default=None,
                    help="repository root (default: auto-detect upward "
                         "from cwd)")
    ap.add_argument("--engine", choices=("auto", "builtin", "clang"),
                    default="auto",
                    help="frontend: libclang when importable, else the "
                         "dependency-free builtin parser (default: auto)")
    ap.add_argument("--rule", action="append", choices=RULES,
                    help="restrict to the given rule(s); repeatable")
    ap.add_argument("--list-waivers", action="store_true",
                    help="print every `// lint: allow(...)` site with its "
                         "rule and exit 0")
    ap.add_argument("--stale-waivers", action="store_true",
                    help="print waivers for analyzer rules that suppress "
                         "no finding; exit 1 if any")
    ap.add_argument("--version", action="version",
                    version=f"ofar_lint {__version__}")
    ap.add_argument("files", nargs="*",
                    help="restrict analysis paths (repo-relative); the "
                         "whole-program model still loads src/")
    args = ap.parse_args(argv)

    root = args.root or _find_root(os.getcwd())
    if root is None:
        print("ofar_lint: cannot locate repository root (need src/ + "
              "CMakeLists.txt); pass --root", file=sys.stderr)
        return 2

    files = collect_files(root)
    if not files:
        print(f"ofar_lint: no sources under {root}/src", file=sys.stderr)
        return 2

    try:
        program, engine = load_program(root, files, args.engine)
    except RuntimeError as e:
        print(f"ofar_lint: {e}", file=sys.stderr)
        return 2

    if args.list_waivers:
        for (path, line), rule_set in sorted(program.waivers.items()):
            for rule in sorted(rule_set):
                print(f"{path}:{line}: allow({rule})")
        return 0

    findings = analyze(program)
    if args.rule:
        findings = [f for f in findings if f.rule in args.rule]
    if args.files:
        wanted = set(args.files)
        findings = [f for f in findings if f.file in wanted]

    if args.stale_waivers:
        # A waiver is stale when its rule is one this analyzer implements
        # and removing it would still yield no finding at that site. The
        # analyzer already suppressed matching findings, so recompute
        # without suppression.
        from .rules import Analyzer
        bare = Analyzer(program)
        saved = program.waivers
        program.waivers = {}
        try:
            raw = bare.run()
        finally:
            program.waivers = saved
        hit = {(f.file, f.line, f.rule) for f in raw}
        stale = []
        for (path, line), rule_set in sorted(saved.items()):
            for rule in sorted(rule_set):
                if rule in RULES and (path, line, rule) not in hit:
                    stale.append(f"{path}:{line}: allow({rule}) "
                                 "suppresses nothing")
        for s in stale:
            print(s)
        if not stale:
            print("no stale waivers")
        return 1 if stale else 0

    for f in findings:
        print(f.format())
    if findings:
        print(f"\nofar_lint ({engine} engine): {len(findings)} finding(s)",
              file=sys.stderr)
        return 1
    print(f"ofar_lint ({engine} engine): OK — {len(files)} files, "
          f"{sum(len(v) for v in program.functions.values())} functions "
          "analyzed")
    return 0
