# Empty compiler generated dependencies file for test_hamiltonian.
# This may be replaced when dependencies are built.
