"""Discipline rules over the semantic model.

Reachability: every function whose effective annotation is
OFAR_PARALLEL_PHASE is a root; the walk follows calls (receiver-typed
where possible, virtual dispatch over the class hierarchy) into
unannotated functions, skipping tokens of serial-excluded
`if constexpr (!kStaged)` regions. On that parallel-reachable region the
analyzer enforces:

  serial-call        call into an OFAR_SERIAL_ONLY function (or a method
                     of a serial-only class, e.g. Stats::on_delivered)
  unstaged-trace     invoking the tracer_ callback (or any serial-only
                     std::function member) instead of staging the event
  serial-write       write to an OFAR_SERIAL_ONLY data member
  cross-shard-write  write to a member with no shard-ownership annotation
                     from parallel-phase code
  off-lane-rng       RNG draw whose stream is not a bound lane (not a
                     parameter, not OFAR_LANE_RNG state/accessor)

Checked everywhere (not just parallel-reachable), resolving typedef /
using chains the regex lint cannot see:

  unordered-iter     range-for over a type that expands to a std::
                     unordered_* container
  wall-clock         wall-clock read outside src/stats/ (aliased clocks
                     included)

A finding on a line carrying `// lint: allow(<rule>)` is suppressed.
"""

import re

from .model import Finding, LANE_RNG, PARALLEL_PHASE, SERIAL_ONLY, \
    SHARD_LOCAL

# Container/stream methods that mutate the receiver.
MUTATING_METHODS = {
    "push_back", "emplace_back", "pop_back", "clear", "resize", "erase",
    "insert", "emplace", "assign", "reserve", "swap", "push", "pop",
    "shrink_to_fit", "append",
}

ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
              "<<=", ">>="}

_CALL_KEYWORDS = {"if", "for", "while", "switch", "return", "sizeof",
                  "catch", "assert", "alignof", "decltype", "static_cast",
                  "const_cast", "reinterpret_cast", "dynamic_cast",
                  "noexcept"}

_UNORDERED_RE = re.compile(r"unordered_(?:map|set|multimap|multiset)")
_CLOCK_RE = re.compile(
    r"steady_clock|system_clock|high_resolution_clock|gettimeofday|"
    r"clock_gettime")

# Path prefixes exempt from wall-clock (telemetry may timestamp records;
# mirrors lint_determinism.ALLOWED_PREFIXES).
WALL_CLOCK_EXEMPT = ("src/stats/",)

RULES = ("serial-call", "unstaged-trace", "serial-write",
         "cross-shard-write", "off-lane-rng", "unordered-iter",
         "wall-clock")

_WRAPPERS = ("unique_ptr", "shared_ptr", "vector", "deque", "array",
             "optional", "span")


def _strip_type(program, type_text):
    """Reduces a declared type to its core class name: drops const/refs,
    resolves aliases, unwraps smart pointers and containers one level."""
    t = program.resolve_alias(type_text or "")
    t = t.replace("const ", " ").replace("&", " ").replace("*", " ")
    t = t.strip()
    m = re.match(r"(?:std\s*::\s*)?(\w+)\s*<\s*(.*?)\s*>?\s*$", t)
    if m and m.group(1) in _WRAPPERS:
        inner = m.group(2).split(",")[0]
        return _strip_type(program, inner)
    # Last identifier of a qualified name, template args stripped.
    t = t.split("<")[0]
    parts = [p for p in re.split(r"::|\s+", t) if p]
    return parts[-1] if parts else ""


class Analyzer:
    def __init__(self, program):
        self.p = program
        self.findings = []
        self._reported = set()

    # -- entry point -----------------------------------------------------

    def run(self):
        roots = []
        for defs in self.p.functions.values():
            for fn in defs:
                if self.p.fn_annotation(fn) == PARALLEL_PHASE:
                    roots.append(fn)
        visited = set()
        for fn in sorted(roots, key=lambda f: (f.file, f.line)):
            self._walk(fn, chain=fn.qualname, visited=visited)
        for defs in self.p.functions.values():
            for fn in defs:
                self._check_everywhere(fn)
        self.findings.sort(key=lambda f: (f.file, f.line, f.rule))
        return self.findings

    # -- reachability ----------------------------------------------------

    def _walk(self, fn, chain, visited):
        key = (fn.file, fn.line)
        if key in visited:
            return
        visited.add(key)
        self._check_parallel_body(fn, chain)
        for callee, line in self._calls(fn):
            for target in callee:
                ann = self.p.fn_annotation(target)
                if ann == SERIAL_ONLY:
                    continue  # reported by _check_parallel_body
                self._walk(target, f"{chain} -> {target.qualname}",
                           visited)

    def _calls(self, fn):
        """Resolved callees of fn's non-excluded body regions:
        [(candidate FunctionDefs, line)]."""
        out = []
        body = fn.body
        texts = [t.text for t in body]
        for i, tok in enumerate(body):
            if tok.serial_excluded:
                continue
            if tok.text != "(" or i == 0:
                continue
            name_tok = body[i - 1]
            name = name_tok.text
            if not (name and (name[0].isalpha() or name[0] == "_")):
                continue
            if name in _CALL_KEYWORDS:
                continue
            recv_cls, known = self._receiver_class(fn, texts, i - 1)
            targets = self._resolve(fn, name, recv_cls, known)
            if targets:
                out.append((targets, name_tok.line))
        return out

    def _receiver_class(self, fn, texts, name_index):
        """Class of the receiver of the call whose name is at name_index.
        Returns (class_name_or_None, certain). certain=False means the
        receiver is syntactically absent (an implicit this / free call);
        an unresolvable explicit receiver returns (None, True)."""
        j = name_index - 1
        if j < 0 or texts[j] not in (".", "->", "::"):
            return None, False
        sep = texts[j]
        j -= 1
        # Walk back over postfix: ident, (...)  [...] chains.
        base = None
        while j >= 0:
            t = texts[j]
            if t in ("]", ")"):
                depth = 0
                while j >= 0:
                    if texts[j] in ("]", ")"):
                        depth += 1
                    elif texts[j] in ("[", "("):
                        depth -= 1
                        if depth == 0:
                            break
                    j -= 1
                j -= 1
                continue
            if t and (t[0].isalpha() or t[0] == "_"):
                base = t
                prev = texts[j - 1] if j >= 1 else ""
                if prev in (".", "->", "::"):
                    j -= 2
                    continue
                break
            break
        if base is None:
            return None, True
        if base == "this":
            return fn.cls or None, True
        if sep == "::" and base in self.p.classes:
            return base, True
        t = fn.local_types.get(base) or fn.param_types.get(base)
        if t is None and fn.cls:
            ci_type = self._member_type(fn.cls, base)
            t = ci_type
        if t is None and base in self.p.classes:
            return base, True
        if t is None:
            return None, True
        cls = _strip_type(self.p, t)
        return (cls if cls in self.p.classes else None), True

    def _member_type(self, cls, member):
        seen = set()
        stack = [cls]
        while stack:
            c = stack.pop()
            if c in seen:
                continue
            seen.add(c)
            ci = self.p.classes.get(c)
            if ci is None:
                continue
            if member in ci.member_types:
                return ci.member_types[member]
            stack.extend(ci.bases)
        return None

    def _resolve(self, fn, name, recv_cls, certain):
        """FunctionDefs a call may dispatch to."""
        if recv_cls is not None:
            classes = self.p.derived_of(recv_cls)
            out = []
            for c in classes:
                out.extend(self.p.functions.get(f"{c}::{name}", []))
            return out
        if certain:
            return []  # explicit but unresolvable receiver: skip
        # Implicit receiver: same-class hierarchy (and derived overrides),
        # then free functions.
        out = []
        if fn.cls:
            hier = set()
            stack = [fn.cls]
            while stack:
                c = stack.pop()
                if c in hier:
                    continue
                hier.add(c)
                ci = self.p.classes.get(c)
                if ci:
                    stack.extend(ci.bases)
            for c in list(hier):
                hier |= self.p.derived_of(c)
            for c in hier:
                out.extend(self.p.functions.get(f"{c}::{name}", []))
        if not out:
            out = list(self.p.functions.get(name, []))
        return out

    # -- parallel-region checks ------------------------------------------

    def _emit(self, rule, file, line, message, chain=""):
        if rule in self.p.waivers.get((file, line), set()):
            return
        key = (rule, file, line)
        if key in self._reported:
            return
        self._reported.add(key)
        self.findings.append(Finding(rule=rule, file=file, line=line,
                                     message=message, context=chain))

    def _check_parallel_body(self, fn, chain):
        body = fn.body
        texts = [t.text for t in body]
        n = len(body)
        for i, tok in enumerate(body):
            if tok.serial_excluded:
                continue
            t = tok.text
            if not (t and (t[0].isalpha() or t[0] == "_")):
                continue
            prev = texts[i - 1] if i > 0 else ""
            nxt = texts[i + 1] if i + 1 < n else ""
            # ---- serial-only / unresolved-annotation calls ----
            # Runs for explicit-receiver calls too (`net.deliver_events()`,
            # `stats_.on_delivered(...)`): _check_call resolves the
            # receiver's class itself.
            if nxt == "(" and t not in _CALL_KEYWORDS:
                self._check_call(fn, chain, body, texts, i)
                # fallthrough: `tracer_(...)`-style functor calls on
                # members are handled below via member classification
            if prev in (".", "->", "::"):
                # Not a base identifier — except `this->x`, where x is
                # the member expression's base for our purposes.
                if not (prev == "->" and i >= 2 and texts[i - 2] == "this"):
                    continue
            # ---- member-expression classification ----
            if fn.cls is None:
                continue
            ann = self._member_ann(fn.cls, t)
            if ann is None and t != "this":
                continue
            base = t
            base_line = tok.line
            if base == "this":
                continue  # bare `this` use; `this->x` scans x as base
            # An Rng-typed member has no innocuous use in parallel code:
            # a draw mutates it, and passing it by reference hands a
            # shared stream to a concurrent callee. Flag any appearance
            # unless the stream is lane-bound — except inside
            # OFAR_LANE_RNG accessors, which ARE the sanctioned seam
            # that maps a lane to its stream (route_rng).
            if self._is_rng_member(fn.cls, base):
                if self.p.fn_annotation(fn) != LANE_RNG:
                    self._check_rng_use(fn, chain, base, ann, base_line)
                continue
            # Walk the postfix chain to find what happens to it.
            j = i + 1
            last_method = None
            while j < n:
                tj = texts[j]
                if tj == "[":
                    depth = 0
                    while j < n:
                        if texts[j] == "[":
                            depth += 1
                        elif texts[j] == "]":
                            depth -= 1
                            if depth == 0:
                                break
                        j += 1
                    j += 1
                    continue
                if tj in (".", "->") and j + 1 < n:
                    last_method = texts[j + 1]
                    j += 2
                    continue
                break
            op = texts[j] if j < n else ""
            # Functor invocation: `tracer_(...)` — base directly called.
            if op == "(" and last_method is None:
                mtype = self.p.resolve_alias(
                    self._member_type(fn.cls, base) or "")
                if "function" in mtype:
                    if ann == SERIAL_ONLY:
                        self._emit(
                            "unstaged-trace", fn.file, base_line,
                            f"`{base}` (serial-only trace callback) "
                            "invoked from a parallel phase; stage the "
                            "event in ShardState::traces and let "
                            "commit_shard_staging flush it in shard "
                            "order", chain)
                    continue
            wrote = (
                op in ASSIGN_OPS or op in ("++", "--")
                or (i > 0 and texts[i - 1] in ("++", "--"))
                or (last_method in MUTATING_METHODS and op == "(")
            )
            if not wrote:
                continue
            if ann == SERIAL_ONLY:
                self._emit(
                    "serial-write", fn.file, base_line,
                    f"write to serial-only member `{base}` from "
                    "parallel-phase code; stage the effect in ShardState "
                    "and commit it serially in shard order "
                    "(DESIGN.md §10)", chain)
            elif ann in (SHARD_LOCAL, LANE_RNG):
                pass  # shard-owned / lane-owned: parallel-legal
            else:
                self._emit(
                    "cross-shard-write", fn.file, base_line,
                    f"write to member `{base}` which carries no "
                    "shard-ownership annotation; mark it "
                    "OFAR_SHARD_LOCAL if a shard owns it, or stage the "
                    "write for the serial commit", chain)

    def _member_ann(self, cls, name):
        """Annotation of `name` if it is a member of cls's hierarchy
        (\"\" = member but unannotated), else None."""
        seen = set()
        stack = [cls]
        while stack:
            c = stack.pop()
            if c in seen:
                continue
            seen.add(c)
            ci = self.p.classes.get(c)
            if ci is None:
                continue
            if name in ci.members:
                return ci.members[name] or ci.annotation
            stack.extend(ci.bases)
        return None

    def _is_rng_member(self, cls, name):
        t = self._member_type(cls, name)
        return t is not None and _strip_type(self.p, t) == "Rng"

    def _check_rng_use(self, fn, chain, base, ann, line):
        if ann == LANE_RNG:
            return
        self._emit(
            "off-lane-rng", fn.file, line,
            f"use of RNG stream `{base}` in parallel-phase code (drawn "
            "from or passed by reference); route()-time randomness must "
            "come from the bound lane (route_rng(lane) / an "
            "OFAR_LANE_RNG stream) or concurrent shards share a stream "
            "and results depend on thread timing", chain)

    def _check_call(self, fn, chain, body, texts, name_index):
        name = texts[name_index]
        line = body[name_index].line
        recv_cls, certain = self._receiver_class(fn, texts, name_index)
        # Calls through an OFAR_LANE_RNG accessor are sanctioned draws:
        # route_rng(lane).pick(...) — the accessor call itself is checked
        # here; the chained method call has receiver "(...)" (skipped).
        targets = self._resolve(fn, name, recv_cls, certain)
        for target in targets:
            ann = self.p.fn_annotation(target)
            if ann == SERIAL_ONLY:
                what = target.qualname
                self._emit(
                    "serial-call", fn.file, line,
                    f"call to serial-only `{what}` from parallel-phase "
                    "code; serial effects must be staged in ShardState "
                    "and committed in shard-ascending order "
                    "(DESIGN.md §10)", chain)
        if not targets and name not in MUTATING_METHODS:
            # Annotated method declaration without a parsed definition:
            # fall back to the declaration table. For an explicit
            # receiver the class-level annotation counts too (a method of
            # a serial-only class is serial); for an implicit receiver
            # only an explicit per-method declaration in the enclosing
            # hierarchy counts, so unrelated free calls never misfire.
            ann = ""
            owner = recv_cls
            if recv_cls is not None:
                ann = self.p.method_annotation(recv_cls, name)
            elif not certain and fn.cls:
                ann = self._declared_method_ann(fn.cls, name)
                owner = fn.cls
            if ann == SERIAL_ONLY:
                self._emit(
                    "serial-call", fn.file, line,
                    f"call to serial-only `{owner}::{name}` from "
                    "parallel-phase code; serial effects must be staged "
                    "in ShardState and committed in shard-ascending "
                    "order (DESIGN.md §10)", chain)

    def _declared_method_ann(self, cls, name):
        """Per-method annotation from in-class declarations only (walks
        bases; no class-level fallback)."""
        seen = set()
        stack = [cls]
        while stack:
            c = stack.pop()
            if c in seen:
                continue
            seen.add(c)
            ci = self.p.classes.get(c)
            if ci is None:
                continue
            if name in ci.methods:
                return ci.methods[name]
            stack.extend(ci.bases)
        return ""

    # -- whole-program checks (aliases make these semantic) ---------------

    def _check_everywhere(self, fn):
        body = fn.body
        texts = [t.text for t in body]
        n = len(body)
        for i, tok in enumerate(body):
            t = tok.text
            # wall-clock: aliased or direct clock reads outside src/stats.
            if not fn.file.startswith(WALL_CLOCK_EXEMPT):
                resolved = None
                if _CLOCK_RE.search(t):
                    resolved = t
                elif t in self.p.aliases and \
                        _CLOCK_RE.search(self.p.resolve_alias(t)):
                    resolved = self.p.resolve_alias(t)
                if resolved is not None and (
                        i + 1 < n and texts[i + 1] in ("::", "(")):
                    self._emit(
                        "wall-clock", fn.file, tok.line,
                        f"wall-clock read (`{t}` resolves to a real-time "
                        "clock); simulation decisions must use "
                        "Network::now() — telemetry timestamps belong in "
                        "src/stats/")
            # unordered-iter: range-for over an (aliased) unordered type.
            if t == "for" and i + 1 < n and texts[i + 1] == "(":
                close = self._match_from(texts, i + 1, "(", ")")
                group = texts[i + 2:close]
                if ":" in group:
                    c = group.index(":")
                    if "::" not in group[max(0, c - 1):c + 1]:
                        expr = group[c + 1:]
                        if self._is_unordered_expr(fn, expr):
                            self._emit(
                                "unordered-iter", fn.file, tok.line,
                                "range-for over a std::unordered_* "
                                "container (resolved through its "
                                "typedef/alias); iteration order varies "
                                "across libstdc++ versions and ASLR "
                                "runs — iterate a dense-id vector or "
                                "sort first")

    def _match_from(self, texts, open_index, op, cl):
        depth = 0
        for i in range(open_index, len(texts)):
            if texts[i] == op:
                depth += 1
            elif texts[i] == cl:
                depth -= 1
                if depth == 0:
                    return i
        return len(texts)

    def _is_unordered_expr(self, fn, expr):
        """True when the range expression's type resolves to unordered."""
        if not expr:
            return False
        # Direct spelling or alias used as a temporary.
        joined = " ".join(expr)
        if _UNORDERED_RE.search(joined):
            return True
        base = expr[0]
        if not (base and (base[0].isalpha() or base[0] == "_")):
            return False
        t = fn.local_types.get(base) or fn.param_types.get(base)
        if t is None and fn.cls:
            t = self._member_type(fn.cls, base)
        if t is None:
            t = self.p.aliases.get(base)
        if t is None:
            return False
        resolved = self.p.resolve_alias(t)
        return bool(_UNORDERED_RE.search(resolved))


def analyze(program):
    return Analyzer(program).run()
