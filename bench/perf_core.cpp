// Core cycle-kernel throughput benchmark: a fixed matrix of
// (uniform, adversarial) x (low, saturation) workloads on the paper's h=4
// dragonfly under OFAR with the physical escape ring, measured in wall-clock
// cycles/sec and phits/sec and written to BENCH_core.json so the perf
// trajectory of Network::step() is tracked from PR 1 onward.
//
// The two regimes exercise the two ends of the kernel's cost model:
//
//  - "low" is a transient burst + drain (uniform/adversarial at 0.01
//    phits/node/cycle for the first 2000 cycles, source off afterwards,
//    40000-cycle horizon — the fig6-style regime the activity worklists
//    target). Most of the horizon has few or no active routers, so this
//    point measures how well per-cycle work tracks *activity* rather than
//    topology size.
//  - "sat" drives Bernoulli traffic far past saturation so every router is
//    busy every cycle; this point guards the worklist bookkeeping overhead
//    when there is nothing to skip.
//  - "sat_mt" repeats the saturated workloads on the sharded cycle kernel
//    (sim_shards=8, --sim-threads workers; DESIGN.md §10) — the intra-sim
//    speedup trajectory. sim_shards changes the deterministic universe, so
//    these points' stats differ from their sequential twins by design.
//
// Methodology notes: only Network::run() is timed (construction is not part
// of the kernel), each point runs `--repeats` times on a fresh network and
// the fastest run is reported (the machine-noise-robust estimator), and the
// per-point simulation stats are emitted alongside the rates so a perf run
// doubles as a determinism check against tests/test_determinism.cpp.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "bench_common.hpp"
#include "sim/network.hpp"
#include "stats/sink.hpp"
#include "traffic/generator.hpp"

namespace {

using namespace ofar;

/// --metrics-out/--metrics-interval: optional telemetry for the measured
/// window. --audit/--audit-interval: optional invariant auditing. perf_core's
/// committed baseline is produced WITHOUT these flags; with them the same
/// binary doubles as the overhead gauge.
struct MetricsOptions {
  MetricsSink* sink = nullptr;
  Cycle interval = 1'000;
  Cycle audit_interval = 0;
};

struct PointSpec {
  const char* name;
  const char* pattern_name;
  TrafficPattern pattern;
  double load = 0.0;     // phits/(node*cycle) offered while the source is on
  bool transient = false;  // true: burst [0, burst_until) then drain
  Cycle burst_until = 0;   // transient only
  Cycle warmup = 0;        // steady only: untimed lead-in
  Cycle measure = 0;       // timed cycles
  u32 sim_shards = 1;      // sharded cycle kernel (DESIGN.md §10)
  unsigned sim_threads = 1;  // worker threads driving the shards
  u32 h_override = 0;      // nonzero: point-specific radix (big topology)
  bool record_rss = false;   // sample getrusage peak RSS after the run
};

struct PointResult {
  double wall_seconds = 0.0;
  double cycles_per_sec = 0.0;
  double phits_per_sec = 0.0;
  u64 measured_cycles = 0;
  u64 delivered_packets = 0;
  u64 delivered_phits = 0;
  double mean_latency = 0.0;
  u64 local_misroutes = 0;
  u64 global_misroutes = 0;
  bool drained = false;
  u64 peak_rss_bytes = 0;  // process high-water mark; meaningful only for
                           // the big point, which runs last by construction
};

/// Process peak RSS in bytes (0 where getrusage is unavailable). Linux
/// reports ru_maxrss in KiB.
u64 peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) == 0)
#if defined(__APPLE__)
    return static_cast<u64>(ru.ru_maxrss);
#else
    return static_cast<u64>(ru.ru_maxrss) * 1024;
#endif
#endif
  return 0;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// One fresh-network run of a matrix point. Only the measured window is
/// timed; phits/sec counts deliveries inside that window, while the packet
/// counters report run totals (both are per-seed deterministic).
PointResult run_point(const SimConfig& base_cfg, const PointSpec& spec,
                      const MetricsOptions& metrics) {
  SimConfig cfg = base_cfg;
  cfg.sim_shards = spec.sim_shards;
  if (spec.h_override != 0) cfg.h = spec.h_override;
  Network net(cfg);
  net.set_sim_threads(spec.sim_threads);
  if (metrics.audit_interval > 0) net.enable_audit(metrics.audit_interval);
  if (metrics.sink != nullptr) {
    TelemetryConfig tc;
    tc.sink = metrics.sink;
    tc.interval = metrics.interval;
    tc.label = spec.name;
    net.enable_telemetry(tc);
  }
  if (spec.transient) {
    std::vector<PhasedSource::Phase> phases(1);
    phases[0].pattern = spec.pattern;
    phases[0].load_phits = spec.load;
    phases[0].until = spec.burst_until;
    net.set_traffic(std::make_unique<PhasedSource>(std::move(phases),
                                                   cfg.seed));
  } else {
    net.set_traffic(std::make_unique<BernoulliSource>(spec.pattern, spec.load,
                                                      cfg.seed));
    net.run(spec.warmup);
  }
  const u64 phits_before = net.stats().delivered_phits();
  const auto t0 = std::chrono::steady_clock::now();
  net.run(spec.measure);
  const double secs = seconds_since(t0);

  PointResult r;
  r.wall_seconds = secs;
  r.measured_cycles = spec.measure;
  r.cycles_per_sec = static_cast<double>(spec.measure) / secs;
  r.phits_per_sec =
      static_cast<double>(net.stats().delivered_phits() - phits_before) / secs;
  r.delivered_packets = net.stats().delivered_packets();
  r.delivered_phits = net.stats().delivered_phits();
  r.mean_latency = net.stats().latency().mean();
  r.local_misroutes = net.stats().local_misroutes();
  r.global_misroutes = net.stats().global_misroutes();
  r.drained = net.drained();
  if (spec.record_rss) r.peak_rss_bytes = peak_rss_bytes();
  if (net.telemetry() != nullptr) net.telemetry()->write_summary(net);
  return r;
}

void json_point(std::FILE* f, const PointSpec& spec, const PointResult& best,
                bool last) {
  std::fprintf(f, "    {\n");
  std::fprintf(f, "      \"name\": \"%s\",\n", spec.name);
  std::fprintf(f, "      \"pattern\": \"%s\",\n", spec.pattern_name);
  if (spec.h_override != 0)
    std::fprintf(f, "      \"h\": %u,\n", spec.h_override);
  std::fprintf(f, "      \"load_phits_per_node_cycle\": %g,\n", spec.load);
  std::fprintf(f, "      \"sim_shards\": %u,\n", spec.sim_shards);
  std::fprintf(f, "      \"sim_threads\": %u,\n", spec.sim_threads);
  if (spec.transient) {
    std::fprintf(f, "      \"schedule\": \"burst\",\n");
    std::fprintf(f, "      \"burst_until_cycle\": %llu,\n",
                 static_cast<unsigned long long>(spec.burst_until));
  } else {
    std::fprintf(f, "      \"schedule\": \"steady\",\n");
    std::fprintf(f, "      \"warmup_cycles\": %llu,\n",
                 static_cast<unsigned long long>(spec.warmup));
  }
  std::fprintf(f, "      \"measured_cycles\": %llu,\n",
               static_cast<unsigned long long>(best.measured_cycles));
  std::fprintf(f, "      \"wall_seconds\": %.6f,\n", best.wall_seconds);
  std::fprintf(f, "      \"cycles_per_sec\": %.1f,\n", best.cycles_per_sec);
  std::fprintf(f, "      \"phits_per_sec\": %.1f,\n", best.phits_per_sec);
  std::fprintf(f, "      \"delivered_packets\": %llu,\n",
               static_cast<unsigned long long>(best.delivered_packets));
  std::fprintf(f, "      \"delivered_phits\": %llu,\n",
               static_cast<unsigned long long>(best.delivered_phits));
  std::fprintf(f, "      \"mean_latency_cycles\": %.4f,\n", best.mean_latency);
  std::fprintf(f, "      \"local_misroutes\": %llu,\n",
               static_cast<unsigned long long>(best.local_misroutes));
  std::fprintf(f, "      \"global_misroutes\": %llu,\n",
               static_cast<unsigned long long>(best.global_misroutes));
  if (best.peak_rss_bytes != 0)
    std::fprintf(f, "      \"peak_rss_bytes\": %llu,\n",
                 static_cast<unsigned long long>(best.peak_rss_bytes));
  std::fprintf(f, "      \"drained\": %s\n", best.drained ? "true" : "false");
  std::fprintf(f, "    }%s\n", last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ofar;
  using namespace ofar::bench;
  CommandLine cli(argc, argv);
  const u32 h = static_cast<u32>(cli.get_uint("h", 4));
  const u64 seed = cli.get_uint("seed", 12345);
  const u32 repeats = static_cast<u32>(cli.get_uint("repeats", 2));
  const unsigned sim_threads =
      static_cast<unsigned>(cli.get_uint("sim-threads", 4));
  const std::string out = cli.get_string("out", "BENCH_core.json");
  const std::string only = cli.get_string("only", "");
  const std::string metrics_out = cli.get_string("metrics-out", "");
  const bool require_release = cli.get_flag("require-release");
  MetricsOptions metrics;
  metrics.interval = cli.get_uint("metrics-interval", 1'000);
  metrics.audit_interval = cli.get_uint("audit-interval", 0);
  if (cli.get_flag("audit") && metrics.audit_interval == 0)
    metrics.audit_interval = 4'096;
  if (!reject_unknown(cli)) return 1;
  // --require-release: the CI perf gate compares against a release-build
  // baseline; numbers from a checked (assert-enabled) build would gate on
  // noise, so refuse to produce them at all.
#ifndef NDEBUG
  if (require_release) {
    std::fprintf(stderr,
                 "perf_core: --require-release given but this is a checked "
                 "build (NDEBUG not set); perf-gate numbers must come from "
                 "a release build\n");
    return 1;
  }
#else
  (void)require_release;
#endif
  std::unique_ptr<MetricsSink> metrics_sink;
  if (!metrics_out.empty()) {
    metrics_sink = MetricsSink::open(metrics_out);
    if (metrics_sink == nullptr) {
      std::fprintf(stderr, "perf_core: cannot write %s\n", metrics_out.c_str());
      return 1;
    }
    metrics.sink = metrics_sink.get();
  }

  SimConfig cfg;
  cfg.h = h;
  cfg.seed = seed;
  cfg.routing = RoutingKind::kOfar;
  cfg.ring = RingKind::kPhysical;

  std::vector<PointSpec> matrix;
  {
    PointSpec p;
    p.name = "uniform_low";
    p.pattern_name = "uniform";
    p.pattern = TrafficPattern::uniform();
    p.load = 0.01;
    p.transient = true;
    p.burst_until = 2'000;
    p.measure = 40'000;
    matrix.push_back(p);
    p.name = "adversarial_low";
    p.pattern_name = "adversarial+1";
    p.pattern = TrafficPattern::adversarial(1);
    matrix.push_back(p);
  }
  {
    PointSpec p;
    p.name = "uniform_sat";
    p.pattern_name = "uniform";
    p.pattern = TrafficPattern::uniform();
    p.load = 1.0;
    p.warmup = 1'000;
    p.measure = 2'000;
    matrix.push_back(p);
    p.name = "adversarial_sat";
    p.pattern_name = "adversarial+1";
    p.pattern = TrafficPattern::adversarial(1);
    p.load = 0.7;
    matrix.push_back(p);
  }
  {
    // Same saturated workloads on the sharded kernel (ISSUE 5): sim_shards
    // is semantic (a different deterministic universe, so the stats differ
    // from the *_sat points above), sim_threads only changes wall-clock.
    PointSpec p;
    p.name = "uniform_sat_mt";
    p.pattern_name = "uniform";
    p.pattern = TrafficPattern::uniform();
    p.load = 1.0;
    p.warmup = 1'000;
    p.measure = 2'000;
    p.sim_shards = 8;
    p.sim_threads = sim_threads;
    matrix.push_back(p);
    p.name = "adversarial_sat_mt";
    p.pattern_name = "adversarial+1";
    p.pattern = TrafficPattern::adversarial(1);
    p.load = 0.7;
    matrix.push_back(p);
  }
  {
    // Big-topology point (DESIGN.md §"Scale"): h=16 is 16416 routers /
    // 262656 endpoints — two orders of magnitude past the paper's h=4 —
    // exercising implicit wiring, lazy per-router construction and the
    // compact id widths at a size a materialized wiring table could not
    // reach. Saturated uniform traffic touches every router within the
    // warmup, so the recorded peak RSS is the honest all-built footprint.
    // MUST run last: getrusage reports a process-wide high-water mark, and
    // this is the largest point of the matrix. The name deliberately avoids
    // the "_sat" suffix so the CI perf gate's `--only _sat` selection keeps
    // its paper-scale meaning.
    PointSpec p;
    p.name = "uniform_big";
    p.pattern_name = "uniform";
    p.pattern = TrafficPattern::uniform();
    p.load = 1.0;
    p.warmup = 20;
    p.measure = 60;
    p.h_override = 16;
    p.record_rss = true;
    matrix.push_back(p);
  }
  // --only SUBSTR: restrict the matrix (quick overhead checks, CI gates).
  if (!only.empty()) {
    std::erase_if(matrix, [&](const PointSpec& p) {
      return std::string(p.name).find(only) == std::string::npos;
    });
    if (matrix.empty()) {
      std::fprintf(stderr, "perf_core: --only %s matches no point\n",
                   only.c_str());
      return 1;
    }
  }

  std::printf("perf_core: h=%u seed=%llu repeats=%u sim-threads=%u "
              "(%s build)\n",
              h, static_cast<unsigned long long>(seed), repeats, sim_threads,
#ifdef NDEBUG
              "NDEBUG"
#else
              "checked"
#endif
  );

  std::vector<PointResult> best(matrix.size());
  for (std::size_t i = 0; i < matrix.size(); ++i) {
    for (u32 rep = 0; rep < repeats; ++rep) {
      const PointResult r = run_point(cfg, matrix[i], metrics);
      // Fastest wall clock wins, but RSS is a process-wide high-water mark
      // that only grows across repeats — always keep the largest sample.
      const u64 rss = std::max(best[i].peak_rss_bytes, r.peak_rss_bytes);
      if (rep == 0 || r.wall_seconds < best[i].wall_seconds) best[i] = r;
      best[i].peak_rss_bytes = rss;
    }
    std::printf(
        "  %-16s %10.0f cycles/sec %12.0f phits/sec  (%.3f s, del=%llu)\n",
        matrix[i].name, best[i].cycles_per_sec, best[i].phits_per_sec,
        best[i].wall_seconds,
        static_cast<unsigned long long>(best[i].delivered_packets));
  }

  std::FILE* f = std::fopen(out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "perf_core: cannot write %s\n", out.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"perf_core\",\n");
  std::fprintf(f, "  \"config\": {\n");
  std::fprintf(f, "    \"h\": %u,\n", h);
  std::fprintf(f, "    \"seed\": %llu,\n",
               static_cast<unsigned long long>(seed));
  std::fprintf(f, "    \"routing\": \"OFAR\",\n");
  std::fprintf(f, "    \"ring\": \"physical\",\n");
  std::fprintf(f, "    \"repeats\": %u,\n", repeats);
#ifdef NDEBUG
  std::fprintf(f, "    \"checked_build\": false\n");
#else
  std::fprintf(f, "    \"checked_build\": true\n");
#endif
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"points\": [\n");
  for (std::size_t i = 0; i < matrix.size(); ++i)
    json_point(f, matrix[i], best[i], i + 1 == matrix.size());
  std::fprintf(f, "  ]\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out.c_str());
  return 0;
}
