// Streaming metrics sink: one self-contained record per line, appended to a
// file as the simulation runs. Two formats, selected by file extension:
//
//  - JSONL (default): each record is one JSON object, e.g.
//      {"type":"interval","label":"OFAR","cycle":2000,"metrics":{...}}
//  - CSV (".csv"): long format with a fixed header
//      label,type,cycle,metric,value
//    (structured records — forensics edges, phase tables — are flattened to
//    one row per scalar field).
//
// The sink is shared by every simulation of a sweep: write_line is
// thread-safe (one mutex, one fwrite per record), so parallel sweep points
// can interleave whole records but never tear one. The sink never reads
// simulation state and is owned by the driver, not the Network.
#pragma once

#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace ofar {

/// Minimal JSON object/array builder with correct string escaping and
/// comma management. Used by the telemetry layer to serialise records;
/// deliberately append-only (no DOM) so emission is a single pass.
class JsonWriter {
 public:
  JsonWriter() { out_.reserve(512); }  // interval records are ~1-2 KiB

  JsonWriter& begin_object() { open('{'); return *this; }
  JsonWriter& end_object() { close('}'); return *this; }
  JsonWriter& begin_array() { open('['); return *this; }
  JsonWriter& end_array() { close(']'); return *this; }

  JsonWriter& key(const char* k) {
    comma();
    append_string(k);
    out_ += ':';
    pending_value_ = true;
    return *this;
  }

  JsonWriter& value(const std::string& v) {
    comma();
    append_string(v.c_str());
    mark_written();
    return *this;
  }
  JsonWriter& value(const char* v) {
    comma();
    append_string(v);
    mark_written();
    return *this;
  }
  JsonWriter& value(bool v) {
    comma();
    out_ += v ? "true" : "false";
    mark_written();
    return *this;
  }
  JsonWriter& value(double v);
  JsonWriter& value(u64 v);
  JsonWriter& value(i64 v);
  JsonWriter& value(u32 v) { return value(static_cast<u64>(v)); }
  JsonWriter& value(int v) { return value(static_cast<i64>(v)); }

  const std::string& str() const noexcept { return out_; }

 private:
  void open(char c) {
    comma();
    out_ += c;
    need_comma_.push_back(false);
  }
  void close(char c) {
    out_ += c;
    need_comma_.pop_back();
    mark_written();
  }
  void comma() {
    if (pending_value_) {  // value directly follows its key: no comma
      pending_value_ = false;
      return;
    }
    if (!need_comma_.empty() && need_comma_.back()) out_ += ',';
  }
  // Every completed element (scalar value or closed container) marks its
  // enclosing container so the *next* element gets a comma.
  void mark_written() {
    if (!need_comma_.empty()) need_comma_.back() = true;
  }
  void append_string(const char* s);

  std::string out_;
  std::vector<bool> need_comma_;
  bool pending_value_ = false;
};

/// Escapes `s` for embedding inside a JSON string literal (no quotes added).
std::string json_escape(const std::string& s);

class MetricsSink {
 public:
  enum class Format : u8 { kJsonl, kCsv };

  /// Opens (truncates) `path`; format is CSV when the path ends in ".csv",
  /// JSONL otherwise. Returns nullptr when the file cannot be created.
  static std::unique_ptr<MetricsSink> open(const std::string& path);

  ~MetricsSink();
  MetricsSink(const MetricsSink&) = delete;
  MetricsSink& operator=(const MetricsSink&) = delete;

  Format format() const noexcept { return format_; }
  const std::string& path() const noexcept { return path_; }

  /// Appends one complete record (without trailing newline) atomically with
  /// respect to other threads writing to the same sink.
  void write_line(const std::string& line);

  /// Convenience for CSV rows: label,type,cycle,metric,value. `label` and
  /// `metric` are escaped (quoted when they contain commas or quotes).
  void write_csv_row(const std::string& label, const char* type, Cycle cycle,
                     const std::string& metric, double value);

  u64 lines_written() const noexcept { return lines_; }

 private:
  MetricsSink(std::FILE* f, Format format, std::string path);

  std::FILE* file_;
  Format format_;
  std::string path_;
  std::mutex mutex_;
  u64 lines_ = 0;
};

}  // namespace ofar
