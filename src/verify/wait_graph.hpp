// Wait-for graph over blocked packet heads (paper §IV-C deadlock argument).
//
// Nodes are input virtual channels, one per (router, port, vc). A directed
// edge u -> v means: the head packet buffered in u has been stalled for
// longer than the deadlock watchdog timeout, the output it structurally
// waits for is idle, every candidate VC of that output lacks a packet of
// credits, and v is one of those starved downstream input VCs. Such a head
// cannot move until some packet in v drains — the classic hold/wait edge.
//
// The structural wait output is derived from the topology alone (the ring
// output for in-ring packets, the ejection port at the destination router,
// otherwise the minimal-path port), mirroring the telemetry layer's
// forensics extraction: the routing policy is never consulted, so building
// the graph consumes no RNG draws and cannot perturb the simulation.
//
// The deadlock-freedom claim this checks (paper §III/§IV-C): adaptive
// traffic may form transient wait cycles through base VCs — those resolve
// because OFAR can always fall back to the escape ring — but a wait cycle
// lying ENTIRELY inside escape-ring VCs can never form, because bubble flow
// control keeps one packet of free space circulating in the ring. The
// auditor therefore flags exactly the all-ring cycles.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"

namespace ofar {
class Network;
}  // namespace ofar

namespace ofar::verify {

class WaitGraph {
 public:
  struct Node {
    RouterId router = 0;
    PortId port = 0;
    VcId vc = 0;
  };

  explicit WaitGraph(const Network& net);

  /// Extracts the hold/wait edges from the current network state. Only
  /// heads stalled for more than `config().deadlock_timeout` cycles
  /// contribute, so transient credit contention never shows up.
  void build();

  std::size_t num_edges() const noexcept { return num_edges_; }

  /// A wait cycle lying entirely inside escape-ring input VCs, in traversal
  /// order; empty when none exists (the healthy state, and always the case
  /// when the network has no escape ring).
  std::vector<Node> find_ring_cycle() const;

  /// "r12.p5v2 -> r13.p5v2 -> ..." for actionable violation reports.
  static std::string describe(const std::vector<Node>& cycle);

 private:
  u32 node_index(RouterId r, PortId p, VcId v) const noexcept;
  Node node_at(u32 index) const noexcept;

  const Network& net_;
  u32 ports_ = 0;
  u32 max_vcs_ = 0;                        // flat index stride per port
  std::vector<std::vector<u32>> adj_;      // per node, outgoing edges
  std::vector<u8> is_ring_node_;           // per node
  std::size_t num_edges_ = 0;
};

}  // namespace ofar::verify
