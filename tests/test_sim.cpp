// Unit tests for the router-microarchitecture primitives: packet pool,
// VC FIFOs (cut-through accounting), LRS arbiters, output-port credit
// queries, and the separable allocator's matching properties.
#include <gtest/gtest.h>

#include <array>
#include <set>

#include "sim/allocator.hpp"
#include "sim/fifo.hpp"
#include "sim/flat_state.hpp"
#include "sim/packet_pool.hpp"
#include "sim/router.hpp"

namespace ofar {
namespace {

// --------------------------------------------------------- packet pool ----

TEST(PacketPool, CreateDestroyReuse) {
  PacketPool pool;
  const PacketId a = pool.create();
  const PacketId b = pool.create();
  EXPECT_NE(a, b);
  EXPECT_EQ(pool.live_count(), 2u);
  pool.destroy(a);
  EXPECT_FALSE(pool.is_live(a));
  EXPECT_EQ(pool.live_count(), 1u);
  const PacketId c = pool.create();
  EXPECT_EQ(c, a);  // slab reuse
  EXPECT_TRUE(pool.is_live(c));
}

TEST(PacketPool, ReusedSlotIsFresh) {
  PacketPool pool;
  const PacketId a = pool.create();
  pool.get(a).global_misrouted = true;
  pool.get(a).total_hops = 7;
  pool.destroy(a);
  const PacketId b = pool.create();
  ASSERT_EQ(a, b);
  EXPECT_FALSE(pool.get(b).global_misrouted);
  EXPECT_EQ(pool.get(b).total_hops, 0);
}

TEST(PacketPool, ForEachLiveVisitsExactlyLive) {
  PacketPool pool;
  std::set<PacketId> expect;
  for (int i = 0; i < 10; ++i) expect.insert(pool.create());
  for (PacketId id : {PacketId{2}, PacketId{5}}) {
    pool.destroy(id);
    expect.erase(id);
  }
  std::set<PacketId> seen;
  pool.for_each_live([&](PacketId id, const Packet&) { seen.insert(id); });
  EXPECT_EQ(seen, expect);
}

// ---------------------------------------------------------------- fifo ----

TEST(VcFifo, WholePacketPushPop) {
  VcFifo f(32);
  EXPECT_TRUE(f.empty());
  f.push_whole_packet(7, 8);
  EXPECT_EQ(f.head(), 7u);
  EXPECT_EQ(f.stored_phits(), 8u);
  EXPECT_EQ(f.head_arrived(), 8u);
  for (int i = 0; i < 7; ++i) EXPECT_FALSE(f.pop_phit(8));
  EXPECT_TRUE(f.pop_phit(8));  // tail pops the entry
  EXPECT_TRUE(f.empty());
  EXPECT_EQ(f.stored_phits(), 0u);
}

TEST(VcFifo, CutThroughArrivalWhileDraining) {
  VcFifo f(32);
  f.push_packet(3);  // head phit arrives
  EXPECT_EQ(f.head_arrived(), 1u);
  EXPECT_FALSE(f.pop_phit(4));  // forward it immediately (cut-through)
  f.push_phit();                // next phit arrives
  EXPECT_FALSE(f.pop_phit(4));
  f.push_phit();
  f.push_phit();  // all 4 arrived
  EXPECT_FALSE(f.pop_phit(4));
  EXPECT_TRUE(f.pop_phit(4));
  EXPECT_TRUE(f.empty());
}

TEST(VcFifo, MultiplePacketsFifoOrder) {
  VcFifo f(32);
  f.push_whole_packet(1, 8);
  f.push_whole_packet(2, 8);
  f.push_whole_packet(3, 8);
  EXPECT_EQ(f.num_packets(), 3u);
  EXPECT_EQ(f.stored_phits(), 24u);
  for (int i = 0; i < 8; ++i) f.pop_phit(8);
  EXPECT_EQ(f.head(), 2u);
  for (int i = 0; i < 8; ++i) f.pop_phit(8);
  EXPECT_EQ(f.head(), 3u);
}

TEST(VcFifo, RingBufferWrapsAround) {
  VcFifo f(16);  // small ring, exercise wrap
  for (u32 round = 0; round < 100; ++round) {
    f.push_whole_packet(round, 4);
    f.push_whole_packet(round + 1000, 4);
    for (int i = 0; i < 4; ++i) f.pop_phit(4);
    EXPECT_EQ(f.head(), round + 1000);
    for (int i = 0; i < 4; ++i) f.pop_phit(4);
    EXPECT_TRUE(f.empty());
  }
}

TEST(VcFifo, SinglePhitPackets) {
  VcFifo f(8);
  for (u32 i = 0; i < 8; ++i) f.push_whole_packet(i, 1);
  EXPECT_EQ(f.num_packets(), 8u);
  for (u32 i = 0; i < 8; ++i) {
    EXPECT_EQ(f.head(), i);
    EXPECT_TRUE(f.pop_phit(1));
  }
  EXPECT_TRUE(f.empty());
}

// ------------------------------------------------------------- arbiter ----

TEST(LrsArbiter, PicksLeastRecentlyServed) {
  LrsArbiter arb(4);
  const std::array<u32, 3> reqs = {0, 1, 2};
  // Fresh arbiter: ties broken by lowest index.
  EXPECT_EQ(arb.pick(reqs), 0u);
  arb.grant(0, 10);
  EXPECT_EQ(arb.pick(reqs), 1u);
  arb.grant(1, 11);
  EXPECT_EQ(arb.pick(reqs), 2u);
  arb.grant(2, 12);
  EXPECT_EQ(arb.pick(reqs), 0u);  // oldest grant again
}

TEST(LrsArbiter, IsStarvationFreeUnderPersistentLoad) {
  LrsArbiter arb(3);
  const std::array<u32, 3> reqs = {0, 1, 2};
  std::array<int, 3> grants{};
  // Start at t=1: a grant at t=0 is indistinguishable from "never granted".
  for (Cycle t = 1; t <= 300; ++t) {
    const u32 w = arb.pick(reqs);
    arb.grant(w, t);
    ++grants[w];
  }
  for (int g : grants) EXPECT_EQ(g, 100);
}

// ----------------------------------------------------------- allocator ----

// Router fixture owning its backing store. In the simulator the SoA arena
// lives in the shard (ShardState::arena) and is shared by every router of
// that shard; unit tests give each router a private arena instead. The
// arena's chunk pools hand out stable addresses, so the Router's Span
// views stay valid across moves of the fixture.
struct TestRouter : Router {
  ShardArena arena;
};

TestRouter make_router(u32 ports, u32 vcs) {
  TestRouter r;
  r.inputs.resize(ports);
  r.outputs.resize(ports);
  r.input_mask.assign(ports, 0);
  for (u32 p = 0; p < ports; ++p) {
    r.arena.bind_inputs(r, static_cast<PortId>(p), vcs, 32,
                        VcFifo::slots_for(32));
    r.input_arb.emplace_back(vcs);
    r.output_arb.emplace_back(ports);
  }
  return r;
}

AllocRequest make_req(PortId in, VcId vc, PortId out) {
  AllocRequest rq;
  rq.in_port = in;
  rq.in_vc = vc;
  rq.packet = 1;
  rq.choice = RouteChoice::to(out, 0);
  return rq;
}

TEST(SeparableAllocator, GrantsNonConflictingRequests) {
  TestRouter r = make_router(4, 2);
  SeparableAllocator alloc(4);
  std::vector<AllocRequest> reqs = {make_req(0, 0, 2), make_req(1, 0, 3)};
  alloc.run(r, reqs, 3, 1);
  EXPECT_TRUE(reqs[0].granted);
  EXPECT_TRUE(reqs[1].granted);
}

TEST(SeparableAllocator, OneGrantPerOutput) {
  TestRouter r = make_router(4, 2);
  SeparableAllocator alloc(4);
  std::vector<AllocRequest> reqs = {make_req(0, 0, 2), make_req(1, 0, 2),
                                    make_req(3, 0, 2)};
  alloc.run(r, reqs, 3, 1);
  int granted = 0;
  for (const auto& rq : reqs) granted += rq.granted;
  EXPECT_EQ(granted, 1);
}

TEST(SeparableAllocator, OneGrantPerInput) {
  TestRouter r = make_router(4, 3);
  SeparableAllocator alloc(4);
  std::vector<AllocRequest> reqs = {make_req(0, 0, 1), make_req(0, 1, 2),
                                    make_req(0, 2, 3)};
  alloc.run(r, reqs, 3, 1);
  int granted = 0;
  for (const auto& rq : reqs) granted += rq.granted;
  EXPECT_EQ(granted, 1);
}

TEST(SeparableAllocator, IterationsRecoverFromStage1Conflicts) {
  // Input 0 has two VCs wanting outputs 1 and 2; input 1 wants output 1.
  // Bias output 1's LRS arbiter so input 1 wins it: input 0 then loses in
  // stage 2 and a second iteration must match its output-2 request.
  TestRouter r = make_router(4, 2);
  r.output_arb[1].grant(0, 1);  // input 0 was served recently on output 1
  SeparableAllocator alloc(4);
  std::vector<AllocRequest> reqs = {make_req(0, 0, 1), make_req(0, 1, 2),
                                    make_req(1, 0, 1)};
  alloc.run(r, reqs, 3, 2);
  int granted = 0;
  for (const auto& rq : reqs) granted += rq.granted;
  EXPECT_EQ(granted, 2);  // both outputs matched with 3 iterations
  EXPECT_TRUE(reqs[1].granted);  // input 0 recovered via its VC-1 request
  EXPECT_TRUE(reqs[2].granted);  // input 1 won output 1
}

TEST(SeparableAllocator, SingleIterationMayLeaveWork) {
  TestRouter r = make_router(4, 2);
  SeparableAllocator alloc(4);
  // LRS tie-break sends input 0's VC0 (to output 1) first; with one
  // iteration the out-2 request cannot be retried.
  std::vector<AllocRequest> reqs = {make_req(0, 0, 1), make_req(0, 1, 2),
                                    make_req(1, 0, 1)};
  alloc.run(r, reqs, 1, 1);
  int granted = 0;
  for (const auto& rq : reqs) granted += rq.granted;
  EXPECT_LE(granted, 2);
  EXPECT_GE(granted, 1);
}

TEST(SeparableAllocator, FairAcrossInputsOverTime) {
  TestRouter r = make_router(3, 1);
  SeparableAllocator alloc(3);
  std::array<int, 2> wins{};
  for (Cycle t = 1; t <= 100; ++t) {
    std::vector<AllocRequest> reqs = {make_req(0, 0, 2), make_req(1, 0, 2)};
    alloc.run(r, reqs, 3, t);
    if (reqs[0].granted) ++wins[0];
    if (reqs[1].granted) ++wins[1];
  }
  EXPECT_EQ(wins[0] + wins[1], 100);
  EXPECT_EQ(wins[0], 50);
  EXPECT_EQ(wins[1], 50);
}

TEST(SeparableAllocator, ScratchIsCleanAcrossRuns) {
  TestRouter r = make_router(4, 2);
  SeparableAllocator alloc(4);
  std::vector<AllocRequest> first = {make_req(0, 0, 3)};
  alloc.run(r, first, 3, 1);
  ASSERT_TRUE(first[0].granted);
  // A second run with a different shape must not see stale lanes.
  std::vector<AllocRequest> second = {make_req(1, 1, 2)};
  alloc.run(r, second, 3, 2);
  EXPECT_TRUE(second[0].granted);
}

// ---------------------------------------------------------- output port ----

// Standalone OutputPort with locally-owned credit arrays (the Span views
// normally point into Router's pools; here the fixture is the pool).
struct TestOutput {
  std::vector<u32> credits_store;
  std::vector<u32> cap_store;
  OutputPort out;

  TestOutput(std::vector<u32> credits, std::vector<u32> caps)
      : credits_store(std::move(credits)), cap_store(std::move(caps)) {
    out.credits = Span<u32>(credits_store.data(),
                            static_cast<u32>(credits_store.size()));
    out.credit_cap =
        Span<u32>(cap_store.data(), static_cast<u32>(cap_store.size()));
  }
};

TEST(OutputPort, BestVcPicksMostCredits) {
  TestOutput t({5, 20, 11}, {32, 32, 32});
  t.out.channel = 1;
  VcId vc;
  ASSERT_TRUE(t.out.best_vc(0, 3, 8, vc));
  EXPECT_EQ(vc, 1);
  ASSERT_TRUE(t.out.best_vc(2, 1, 8, vc));  // restricted range
  EXPECT_EQ(vc, 2);
  EXPECT_FALSE(t.out.best_vc(0, 1, 8, vc));  // vc0 has only 5 credits
}

TEST(OutputPort, OccupancyFraction) {
  TestOutput t({16, 32}, {32, 32});
  EXPECT_DOUBLE_EQ(t.out.occupancy(0, 2), 0.25);
  EXPECT_DOUBLE_EQ(t.out.occupancy(0, 1), 0.5);
  EXPECT_DOUBLE_EQ(t.out.occupancy(1, 1), 0.0);
  EXPECT_EQ(t.out.queued_phits(0, 2), 16u);
}

// ----------------------------------------------------------- input port ----

TEST(InputPort, BestFitVcPrefersEmptiestFittingVc) {
  TestRouter r = make_router(1, 3);  // three VCs of capacity 32
  InputPort& in = r.inputs[0];
  in.vcs[0].push_whole_packet(1, 28);  // 4 free: cannot fit an 8-phit packet
  in.vcs[2].push_whole_packet(2, 8);   // 24 free
  u32 vc;
  ASSERT_TRUE(in.best_fit_vc(8, vc));
  EXPECT_EQ(vc, 1u);  // 32 free beats 24 free
  in.vcs[1].push_whole_packet(3, 16);  // now 16 free < vc2's 24
  ASSERT_TRUE(in.best_fit_vc(8, vc));
  EXPECT_EQ(vc, 2u);
}

TEST(InputPort, BestFitVcFailsWhenFull) {
  TestRouter r = make_router(1, 2);
  InputPort& in = r.inputs[0];
  in.vcs[0].push_whole_packet(1, 30);
  in.vcs[1].push_whole_packet(2, 26);
  u32 vc;
  EXPECT_FALSE(in.best_fit_vc(8, vc));  // 2 and 6 phits free
  EXPECT_EQ(vc, kInvalidIndex);
  EXPECT_TRUE(in.best_fit_vc(6, vc));  // exact fit qualifies
  EXPECT_EQ(vc, 1u);
}

// ----------------------------------------------------------- SoA arenas ----

TEST(ShardArena, InputBindingIsContiguousAndPortMajor) {
  TestRouter r = make_router(3, 2);
  ASSERT_EQ(r.arena.fifos.size(), 6u);
  ASSERT_EQ(r.arena.head_busy.size(), 6u);
  // Sequential binds that fit one chunk stay contiguous and port-major, so
  // a shard's allocation scan still walks flat arrays.
  for (u32 p = 0; p < 3; ++p) {
    EXPECT_EQ(r.inputs[p].vcs.data(), r.inputs[0].vcs.data() + p * 2);
    EXPECT_EQ(r.inputs[p].head_busy.data(),
              r.inputs[0].head_busy.data() + p * 2);
    EXPECT_EQ(r.inputs[p].vcs.size(), 2u);
  }
  // Writes through one port's view are visible through the flat layout.
  r.inputs[1].head_busy[1] = 1;
  EXPECT_EQ(r.inputs[0].head_busy.data()[3], 1u);
  // Every FIFO owns a distinct zeroed ring slice of the requested size.
  for (u32 p = 0; p < 3; ++p)
    for (u32 v = 0; v < 2; ++v) {
      const VcFifo& f = r.inputs[p].vcs[v];
      EXPECT_NE(f.slots(), nullptr);
      EXPECT_TRUE(f.empty());
      for (u32 q = 0; q < 3; ++q)
        for (u32 w = 0; w < 2; ++w)
          if (q != p || w != v) EXPECT_NE(f.slots(), r.inputs[q].vcs[w].slots());
    }
}

TEST(ShardArena, CreditBindingIsContiguous) {
  TestRouter r = make_router(2, 2);
  r.arena.bind_credits(r, 0, 2, 32);
  r.arena.bind_credits(r, 1, 2, 16);
  ASSERT_EQ(r.arena.credits.size(), 4u);
  // Sequential binds within one chunk are adjacent.
  EXPECT_EQ(r.outputs[1].credits.data(), r.outputs[0].credits.data() + 2);
  EXPECT_EQ(r.outputs[1].credits[0], 16u);
  EXPECT_EQ(r.outputs[1].credit_cap[1], 16u);
  // Writes through the view land in the shared backing store.
  r.outputs[0].credits[1] = 7;
  EXPECT_EQ(r.outputs[0].credits.data()[1], 7u);
}

TEST(VcFifo, CloneShapeIsEmptyWithSameCapacity) {
  TestRouter r = make_router(1, 1);
  VcFifo& f = r.inputs[0].vcs[0];
  f.push_whole_packet(9, 8);
  VcFifo clone = f.clone_shape();
  EXPECT_EQ(clone.capacity(), f.capacity());
  EXPECT_TRUE(clone.empty());
  EXPECT_EQ(clone.stored_phits(), 0u);
  clone.push_whole_packet(1, 8);  // the clone owns its own ring
  EXPECT_EQ(f.head(), 9u);
}

TEST(HeadView, MirrorsInputPortState) {
  TestRouter r = make_router(1, 2);
  r.inputs[0].vcs[0].push_whole_packet(4, 8);
  r.inputs[0].head_busy[1] = 1;
  HeadView view(r.inputs[0]);
  EXPECT_EQ(view.num_vcs(), 2u);
  EXPECT_FALSE(view.empty(0));
  EXPECT_TRUE(view.empty(1));
  EXPECT_EQ(view.head(0), 4u);
  EXPECT_EQ(view.num_packets(0), 1u);
  EXPECT_EQ(view.stored_phits(0), 8u);
  EXPECT_EQ(view.head_arrived(0), 8u);
  EXPECT_EQ(view.capacity(0), 32u);
  EXPECT_TRUE(view.routable(0));
  EXPECT_FALSE(view.head_in_flight(0));
  EXPECT_TRUE(view.head_in_flight(1));
}

#ifndef NDEBUG
TEST(VcFifoDeathTest, PushBeyondCapacityTripsDcheck) {
  VcFifo f(32);
  EXPECT_DEATH(f.push_whole_packet(1, 33), "capacity");
}
#endif

}  // namespace
}  // namespace ofar
