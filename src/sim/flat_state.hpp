// Flat per-shard state arenas and the narrow view types in front of them.
//
// The saturated cycle kernel spends almost all of its time walking per-VC
// FIFO/credit state (see DESIGN.md §10 "Memory layout"). This module packs
// that hot working set into per-shard SoA arenas:
//
//   * ShardArena — chunked stable-address pools per shard for FIFO control
//     words, FIFO ring slots, head-busy flags and credit counters. Routers
//     hold Span views into the chunks, so a shard's allocation scan walks a
//     few flat arrays instead of hopping between per-router heap vectors,
//     and routers can be bound lazily on first touch (untouched routers
//     cost nothing at h=16 scale).
//   * HeadView — read-only façade over one input port's per-VC head state;
//     the auditor, telemetry and deadlock forensics consume FIFO state
//     through it, so the packed layout can change freely underneath them.
//   * CreditView — per-shard memoized credit/occupancy snapshot serving the
//     routing policies' base-VC queries (base_available / base_occupancy /
//     best_base_vc) from one cached pass per (router, cycle).
//
// CreditView memoization is exact, not approximate: within one router's
// request-collection scan no credit counter or output-busy flag can change
// (grants are decided by the allocator and committed only after the scan),
// so every route() call of that scan would recompute identical values.
// Digests are therefore bit-identical with and without the cache.
#pragma once

#include <memory>
#include <vector>

#include "common/check.hpp"
#include "common/phase.hpp"
#include "common/span.hpp"
#include "common/types.hpp"
#include "sim/fifo.hpp"
#include "sim/router.hpp"

namespace ofar {

class Network;

/// Chunked stable-address pool: allocations are carved contiguously out of
/// large chunks and the chunks themselves never move or shrink, so a Span
/// handed out by alloc() stays valid for the pool's lifetime. This is what
/// lets router state be bound *lazily* (on first touch) instead of demanding
/// an exact up-front reserve: the old exact-reserve arena would dangle every
/// bound Span on growth. Elements are value-initialised (zeroed PODs).
template <typename T>
class ChunkPool {
 public:
  /// ~64 KiB chunks for the POD payloads; a request larger than the default
  /// chunk gets a dedicated chunk of its own size.
  static constexpr std::size_t kChunkBytes = 64 * 1024;

  T* alloc(std::size_t n) {
    if (used_ + n > cap_) {
      const std::size_t def = kChunkBytes / sizeof(T) == 0
                                  ? std::size_t{1}
                                  : kChunkBytes / sizeof(T);
      const std::size_t sz = n > def ? n : def;
      chunks_.emplace_back(new T[sz]());
      used_ = 0;
      cap_ = sz;
    }
    T* p = chunks_.back().get() + used_;
    used_ += n;
    total_ += n;
    return p;
  }

  /// Elements handed out so far (allocation accounting, tests).
  std::size_t size() const noexcept { return total_; }

 private:
  std::vector<std::unique_ptr<T[]>> chunks_;
  std::size_t used_ = 0;   // into the current (last) chunk
  std::size_t cap_ = 0;    // of the current chunk
  std::size_t total_ = 0;
};

// Shard-local: one arena per ShardState; only the owning shard touches the
// backing storage during parallel phases (via the Router spans bound here).
// Backed by ChunkPools, so bind_* may be called at any time — including from
// the owning shard's parallel delivery phase when a router is built lazily
// on its first event — without invalidating previously bound Spans.
struct OFAR_SHARD_LOCAL ShardArena {
  ChunkPool<VcFifo> fifos;              ///< control blocks, router/port/VC-major
  ChunkPool<VcFifo::Entry> fifo_slots;  ///< ring storage backing `fifos`
  ChunkPool<u8> head_busy;              ///< parallel to `fifos`
  ChunkPool<u32> credits;               ///< output credit counters
  ChunkPool<u32> credit_caps;           ///< parallel to `credits`

  /// Carves `count` FIFOs of `capacity` phits (control block + a
  /// `slots_per_vc`-entry ring each) and binds `r.inputs[port]`'s views
  /// onto them.
  void bind_inputs(Router& r, PortId port, u32 count, u32 capacity,
                   u32 slots_per_vc) {
    VcFifo* f = fifos.alloc(count);
    u8* hb = head_busy.alloc(count);
    for (u32 v = 0; v < count; ++v) {
      VcFifo::Entry* slots = fifo_slots.alloc(slots_per_vc);
      f[v] = VcFifo(capacity, slots, slots_per_vc);
      hb[v] = 0;
    }
    r.inputs[port].vcs = Span<VcFifo>(f, count);
    r.inputs[port].head_busy = Span<u8>(hb, count);
  }

  /// Carves `count` credit counters initialised to `value` and binds
  /// `r.outputs[port]`'s views onto them.
  void bind_credits(Router& r, PortId port, u32 count, u32 value) {
    u32* c = credits.alloc(count);
    u32* cc = credit_caps.alloc(count);
    for (u32 v = 0; v < count; ++v) {
      c[v] = value;
      cc[v] = value;
    }
    r.outputs[port].credits = Span<u32>(c, count);
    r.outputs[port].credit_cap = Span<u32>(cc, count);
  }
};

/// Read-only view over one input port's per-VC head state. Consumers that
/// inspect FIFO internals without driving the simulation (auditor, metrics,
/// wait-graph forensics, tests) go through this façade instead of reaching
/// into VcFifo directly, which keeps them stable across layout changes.
class HeadView {
 public:
  explicit HeadView(const InputPort& in) noexcept : in_(&in) {}

  u32 num_vcs() const noexcept { return in_->vcs.size(); }
  bool empty(VcId v) const noexcept { return in_->vcs[v].empty(); }
  u32 num_packets(VcId v) const noexcept { return in_->vcs[v].num_packets(); }
  u32 stored_phits(VcId v) const noexcept { return in_->vcs[v].stored_phits(); }
  u32 capacity(VcId v) const noexcept { return in_->vcs[v].capacity(); }
  PacketId head(VcId v) const noexcept { return in_->vcs[v].head(); }
  u32 head_arrived(VcId v) const noexcept { return in_->vcs[v].head_arrived(); }
  u32 head_sent(VcId v) const noexcept { return in_->vcs[v].head_sent(); }
  bool head_in_flight(VcId v) const noexcept { return in_->head_busy[v] != 0; }
  /// Head present, fully routable, and not mid-transfer (== has_head).
  bool routable(VcId v) const noexcept { return in_->has_head(v); }

 private:
  const InputPort* in_;
};

/// Memoized per-(router, cycle) snapshot of the base-VC credit queries the
/// routing policies issue (Network::base_available / base_occupancy /
/// best_base_vc). bind() is O(1) — an epoch bump — and each output port is
/// summarised at most once per bind in a single pass over its credit span.
//
// Shard-local: each ShardState owns one view; route() calls of the owning
// shard's allocation scan are the only readers/writers.
class OFAR_SHARD_LOCAL CreditView {
 public:
  /// Captures the topology-invariant shape (per-port base-VC counts, packet
  /// size). Call once after Network construction; defined in flat_state.cpp.
  void init(const Network& net);

  /// Rebinds the view to `r` and invalidates all memoized port snapshots.
  void bind(const Router& r) noexcept {
    r_ = &r;
    ++epoch_;
    if (epoch_ == 0) {  // wrapped: stamps from 4G binds ago could collide
      for (PortSnap& s : snaps_) {
        s.stamp = 0;
        s.occ_stamp = 0;
      }
      mask_stamp_ = 0;
      epoch_ = 1;
    }
  }

  const Router& router() const noexcept { return *r_; }

  /// Mirrors Network::base_available: wired, transfer-idle, and some base
  /// VC can hold a whole packet.
  bool base_available(PortId port) noexcept {
    return snap(port).avail != 0;
  }

  /// Mirrors Network::base_occupancy over the port's base VC range. The
  /// division is deferred to first query and memoized: refresh() only sums
  /// integers, so ports summarised for the availability mask but never
  /// occupancy-checked (the common case) pay no floating-point work.
  double base_occupancy(PortId port) noexcept {
    PortSnap& s = snaps_[port];
    if (s.stamp != epoch_) refresh(port, s);
    if (s.occ_stamp != epoch_) {
      s.occ = s.cap == 0 ? 1.0
                         : 1.0 - static_cast<double>(s.free) /
                                     static_cast<double>(s.cap);
      s.occ_stamp = epoch_;
    }
    return s.occ;
  }

  /// Mirrors Network::best_base_vc (most credits among base VCs with room
  /// for a whole packet). Only meaningful on ports with a base range.
  bool best_base_vc(PortId port, VcId& vc) noexcept {
    const PortSnap& s = snap(port);
    vc = s.best_vc;
    return s.has_vc != 0;
  }

  /// True when no base VC can hold a whole packet regardless of busy state
  /// (the OFAR starvation test that gates escape-ring entry).
  bool base_starved(PortId port) noexcept {
    return snap(port).has_vc == 0;
  }

  /// Bitmask over ports with base_available() — bit p set iff port p could
  /// accept a whole packet right now. Computed at most once per bind (one
  /// refresh pass over every port); candidate collection iterates its set
  /// bits instead of probing each port, and the kernel skips whole request
  /// scans when it is zero and the escape ring is blocked.
  u64 avail_mask() noexcept {
    if (mask_stamp_ != epoch_) {
      u64 m = 0;
      const u32 ports = static_cast<u32>(snaps_.size());
      for (PortId p = 0; p < ports; ++p)
        if (snap(p).avail != 0) m |= u64{1} << p;
      avail_mask_ = m;
      mask_stamp_ = epoch_;
    }
    return avail_mask_;
  }

 private:
  struct PortSnap {
    double occ = 1.0;  ///< memoized division, valid while occ_stamp == epoch
    u32 free = 0;      ///< summed base-VC credits (occupancy numerator)
    u32 cap = 0;       ///< summed base-VC capacity (occupancy denominator)
    u32 stamp = 0;
    u32 occ_stamp = 0;
    VcId best_vc = 0;
    u8 has_vc = 0;
    u8 avail = 0;
  };

  const PortSnap& snap(PortId port) noexcept {
    OFAR_DCHECK(port < snaps_.size());
    PortSnap& s = snaps_[port];
    if (s.stamp != epoch_) refresh(port, s);
    return s;
  }

  // One pass over the port's base credit span, replicating the arithmetic
  // of OutputPort::best_vc / occupancy exactly (see class comment: results
  // must be bit-identical to the unmemoized queries).
  void refresh(PortId port, PortSnap& s) noexcept {
    s.stamp = epoch_;
    const OutputPort& out = r_->outputs[port];
    const u32 count = base_counts_[port];
    if (count == 0 || !out.wired()) {
      s.occ = 1.0;
      s.occ_stamp = epoch_;
      s.best_vc = 0;
      s.has_vc = 0;
      s.avail = 0;
      return;
    }
    u32 free = 0, cap = 0;
    u32 best = 0;
    bool found = false;
    VcId best_vc = 0;
    for (u32 v = 0; v < count; ++v) {
      const u32 c = out.credits[v];
      free += c;
      cap += out.credit_cap[v];
      if (c >= packet_size_ && (!found || c > best)) {
        best = c;
        best_vc = static_cast<VcId>(v);
        found = true;
      }
    }
    s.free = free;
    s.cap = cap;
    s.occ_stamp = epoch_ - 1;  // division deferred to base_occupancy()
    s.best_vc = best_vc;
    s.has_vc = found ? 1 : 0;
    s.avail = (found && !out.busy()) ? 1 : 0;
  }

  const Router* r_ = nullptr;
  u32 epoch_ = 0;
  u32 mask_stamp_ = 0;
  u64 avail_mask_ = 0;
  u32 packet_size_ = 0;
  std::vector<u32> base_counts_;  ///< [port] -> base VC count (class-invariant)
  std::vector<PortSnap> snaps_;   ///< [port] -> memoized summary
};

}  // namespace ofar
