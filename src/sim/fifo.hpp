// Per-virtual-channel input FIFO with cut-through arrival tracking.
//
// Space accounting is done on the *upstream* side via credits (see
// OutputPort); this class only tracks which packets are queued and how many
// of their phits have physically arrived, so a transfer can start as soon as
// the head phit is present (virtual cut-through) and never underruns.
//
// Storage is a flat power-of-two ring buffer (no heap traffic per packet):
// this FIFO sits on the per-cycle hot path of every router.
#pragma once

#include <memory>

#include "common/check.hpp"
#include "common/phase.hpp"
#include "common/types.hpp"

namespace ofar {

// Shard-local: fifos live inside Router input/output units; the owning
// shard is the only writer during parallel phases (pushes from the
// serial delivery commit target the destination router's shard state).
class OFAR_SHARD_LOCAL VcFifo {
 public:
  VcFifo() = default;
  explicit VcFifo(u32 capacity_phits) : capacity_(capacity_phits) {
    // Worst case every queued packet is a single phit, so capacity_ entries
    // always suffice; round up to a power of two for cheap masking.
    u32 slots = 2;
    while (slots < capacity_phits + 1) slots <<= 1;
    mask_ = slots - 1;
    entries_ = std::make_unique<Entry[]>(slots);
  }

  VcFifo(VcFifo&&) = default;
  VcFifo& operator=(VcFifo&&) = default;
  VcFifo(const VcFifo& other) : VcFifo(other.capacity_) {
    OFAR_CHECK_MSG(other.empty(), "VcFifo copy only supported when empty");
  }
  VcFifo& operator=(const VcFifo& other) {
    OFAR_CHECK_MSG(other.empty(), "VcFifo copy only supported when empty");
    *this = VcFifo(other.capacity_);
    return *this;
  }

  u32 capacity() const noexcept { return capacity_; }
  bool empty() const noexcept { return head_ == tail_; }
  u32 num_packets() const noexcept { return tail_ - head_; }

  /// Phits physically stored right now (arrived and not yet forwarded).
  u32 stored_phits() const noexcept { return stored_; }

  PacketId head() const noexcept {
    OFAR_DCHECK(!empty());
    return entries_[head_ & mask_].packet;
  }
  /// Phits of the head packet available for forwarding.
  u32 head_arrived() const noexcept {
    OFAR_DCHECK(!empty());
    return entries_[head_ & mask_].arrived;
  }
  u32 head_sent() const noexcept {
    OFAR_DCHECK(!empty());
    return entries_[head_ & mask_].sent;
  }

  /// A new packet's head phit arrived (tail entry created).
  void push_packet(PacketId id) {
    OFAR_DCHECK(num_packets() <= mask_);
    entries_[tail_ & mask_] = {id, 1, 0};
    ++tail_;
    ++stored_;
  }
  /// A continuation phit of the most recent packet arrived.
  void push_phit() {
    OFAR_DCHECK(!empty());
    ++entries_[(tail_ - 1) & mask_].arrived;
    ++stored_;
  }
  /// Inserts a whole packet at once (injection queues: the node places the
  /// full packet; space was checked by the caller against this FIFO).
  void push_whole_packet(PacketId id, u32 size) {
    OFAR_DCHECK(num_packets() <= mask_);
    entries_[tail_ & mask_] = {id, static_cast<u16>(size), 0};
    ++tail_;
    stored_ += size;
  }

  /// One phit of the head packet leaves through the crossbar.
  /// Returns true when that was the tail phit (entry popped).
  bool pop_phit(u32 packet_size) {
    OFAR_DCHECK(!empty());
    Entry& e = entries_[head_ & mask_];
    OFAR_DCHECK(e.sent < e.arrived);  // cut-through never underruns
    ++e.sent;
    --stored_;
    if (e.sent == packet_size) {
      ++head_;
      return true;
    }
    return false;
  }

 private:
  struct Entry {
    PacketId packet;
    u16 arrived;  // phits physically present or already forwarded
    u16 sent;     // phits forwarded downstream
  };

  u32 capacity_ = 0;
  u32 stored_ = 0;
  u32 head_ = 0;  // monotonically increasing; index via & mask_
  u32 tail_ = 0;
  u32 mask_ = 0;
  std::unique_ptr<Entry[]> entries_;
};

}  // namespace ofar
