// UGAL-L (Kim et al., ISCA'08; referenced by the paper §II): injection-time
// choice between the minimal path and one random Valiant path, using only
// the local queue occupancies of the injection router:
//
//     route minimally  iff  q_min * H_min <= q_val * H_val + T.
//
// PB extends exactly this comparison with the piggybacked remote saturation
// flag, so the path-evaluation helper lives here and is shared.
#pragma once

#include "common/phase.hpp"
#include "common/rng.hpp"
#include "routing/valiant.hpp"

namespace ofar {

/// Snapshot of the two candidate paths evaluated at injection.
struct UgalPaths {
  PortId min_port = kInvalidPort;  ///< first hop of the minimal path
  u32 q_min = 0;                   ///< queued phits on that output
  u32 h_min = 0;                   ///< router-to-router hops, minimal path
  PortId val_port = kInvalidPort;  ///< first hop of the Valiant path
  u32 q_val = 0;
  u32 h_val = 0;
  bool has_val = false;  ///< false when no Valiant candidate exists
  GroupId inter_group = kInvalidGroup;
  RouterId inter_router = kInvalidRouter;
};

/// Evaluates the minimal path and one random Valiant candidate for a packet
/// injected at router `at`. Requires at != pkt.dst_router.
/// Parallel-legal: draws only from the caller-supplied stream — serial
/// callers (UGAL/PB on_inject) pass the sequential rng_, PAR's route()
/// passes route_rng(lane).
OFAR_PARALLEL_PHASE UgalPaths evaluate_ugal_paths(Network& net,
                                                  const Packet& pkt,
                                                  RouterId at, Rng& rng);

/// The UGAL comparison with additive bias T (phits).
inline bool ugal_prefers_minimal(const UgalPaths& p, i32 bias) noexcept {
  if (!p.has_val) return true;
  return static_cast<i64>(p.q_min) * p.h_min <=
         static_cast<i64>(p.q_val) * p.h_val + bias;
}

class UgalPolicy final : public ValiantPolicy {
 public:
  explicit UgalPolicy(const SimConfig& cfg);

  const char* name() const noexcept override { return "UGAL"; }

  void on_inject(Network& net, Packet& pkt, RouterId at) override;

 private:
  i32 bias_;
};

}  // namespace ofar
