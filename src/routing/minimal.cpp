#include "routing/minimal.hpp"

#include "sim/flat_state.hpp"
#include "sim/network.hpp"

namespace ofar {

RouteChoice MinimalPolicy::route(RouteContext& ctx) {
  Network& net = ctx.net;
  Packet& pkt = ctx.pkt;
  const RouterId at = ctx.at;
  RouteProvenance* const prov = ctx.prov;
  const Dragonfly& topo = net.topo();
  const PortId out = at == pkt.dst_router
                         ? topo.node_port(topo.node_slot(pkt.dst))
                         : min_port_to_router(net, at, pkt.dst_router);
  const Router& r = net.router(at);
  const OutputPort& port = r.outputs[out];
  if (prov) {
    prov->min_port = out;
    prov->q_min = static_cast<float>(ctx.view.base_occupancy(out));
    prov->chosen_occ = prov->q_min;
  }
  if (!port.wired() || port.busy()) {
    if (prov) prov->condition = RouteCondition::kWaitBusy;
    return RouteChoice::none();
  }
  const VcId vc = ordered_vc(net, at, out, pkt);
  if (port.credits[vc] < net.config().packet_size) {
    if (prov) prov->condition = RouteCondition::kWaitBusy;
    return RouteChoice::none();
  }
  if (prov) prov->condition = RouteCondition::kMinimal;
  return RouteChoice::to(out, vc);
}

}  // namespace ofar
