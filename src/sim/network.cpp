#include "sim/network.hpp"

#include <algorithm>
#include <limits>

#include "common/check.hpp"
#include "common/thread_annotations.hpp"
#include "trace/trace.hpp"
#include "trace/tracer.hpp"

namespace ofar {

const char* to_string(TraceEvent::Kind k) noexcept {
  switch (k) {
    case TraceEvent::Kind::kInject: return "inject";
    case TraceEvent::Kind::kGrant: return "grant";
    case TraceEvent::Kind::kRingEnter: return "ring_enter";
    case TraceEvent::Kind::kRingExit: return "ring_exit";
    case TraceEvent::Kind::kDeliver: return "deliver";
  }
  return "unknown";
}

namespace {
constexpr u32 kEjectionLatency = 1;
constexpr u32 kEjectionCredits = 1u << 30;  // sink: effectively infinite
constexpr Cycle kWatchdogPeriod = 4096;
// Warm start for the event-wheel slots: enough for moderate loads, so the
// steady-state hot loop never grows a slot vector (clear() keeps capacity,
// so any later growth also happens at most once per slot).
constexpr std::size_t kWheelSlotReserve = 64;
}  // namespace

Network::Network(const SimConfig& cfg)
    : cfg_(cfg),
      topo_(cfg.h, cfg.groups, cfg.ring == RingKind::kPhysical),
      rng_(cfg.seed) {
  const std::string err = cfg_.validate();
  OFAR_CHECK_MSG(err.empty(), err.c_str());

  if (cfg_.ring != RingKind::kNone) build_ring();

  const u32 ports = topo_.ports_per_router();
  const u32 num_routers = topo_.routers();
  ports_per_router_ = ports;
  OFAR_CHECK_MSG(ports <= 64, "active-output bitmask is 64 bits wide");

  // ---- id-width validation against the topology trait ----
  // All entity counts are computed in u64 and checked against the compact
  // 32-bit id types BEFORE any truncating arithmetic runs, so an oversized
  // request fails loudly instead of wrapping. The invalid sentinels must
  // stay representable, hence the strict compares.
  {
    const u32 max_vcs =
        std::max({cfg_.vcs_injection, cfg_.vcs_local, cfg_.vcs_global}) +
        (cfg_.ring == RingKind::kEmbedded ? 1u : 0u);
    const Dragonfly::Limits lim = topo_.limits(max_vcs);
    OFAR_CHECK_MSG(lim.routers < kInvalidRouter,
                   "router count must fit RouterId");
    OFAR_CHECK_MSG(lim.nodes < std::numeric_limits<NodeId>::max(),
                   "node count must fit NodeId");
    OFAR_CHECK_MSG(lim.channels < kInvalidChannel,
                   "dense channel ids (routers * ports) must fit ChannelId");
    OFAR_CHECK_MSG(lim.ports < kInvalidPort, "port count must fit PortId");
  }

  // ---- shard partition (DESIGN.md §10) ----
  // Contiguous router ranges; nodes follow their router. K = 1 (the
  // default) is the sequential kernel. The partition depends only on
  // (routers, sim_shards, shard_group_major), never on thread count. It is
  // computed before router construction because the per-VC hot state lives
  // in per-shard arenas (sim/flat_state.hpp).
  const u32 shard_count =
      std::min(std::max(cfg_.sim_shards, 1u), num_routers);
  shards_.resize(shard_count);
  shard_of_router_.assign(num_routers, 0);
  for (u32 s = 0; s < shard_count; ++s) {
    ShardState& sh = shards_[s];
    if (cfg_.shard_group_major) {
      // Group-major: boundaries land on group multiples, so a shard's
      // working set is a whole number of groups' cache footprint (a group's
      // routers and their intra-group wiring never straddle shards). Shards
      // with more shards than groups come out empty, which is harmless.
      const u64 groups = topo_.groups();
      sh.router_begin =
          static_cast<RouterId>(groups * s / shard_count * topo_.a());
      sh.router_end =
          static_cast<RouterId>(groups * (s + 1) / shard_count * topo_.a());
    } else {
      sh.router_begin =
          static_cast<RouterId>(u64{num_routers} * s / shard_count);
      sh.router_end =
          static_cast<RouterId>(u64{num_routers} * (s + 1) / shard_count);
    }
    for (RouterId r = sh.router_begin; r < sh.router_end; ++r)
      shard_of_router_[r] = s;
    sh.active_routers.reserve(sh.router_end - sh.router_begin);
    sh.alloc = std::make_unique<SeparableAllocator>(ports);
    sh.reqs.reserve(static_cast<std::size_t>(ports) * 8);
    if (shard_count > 1) {
      sh.phit_out.reserve(kWheelSlotReserve);
      sh.credit_out.reserve(kWheelSlotReserve);
      sh.delivered.reserve(kWheelSlotReserve);
    }
  }

  // ---- routers ----
  // Shells only: a router's FIFO/credit/arbiter state binds lazily on its
  // first touch (build_router), so untouched routers cost nothing beyond
  // the shell — the difference between ~2 GB of idle FIFO rings and a few
  // hundred MB of actually-used state at h=16. cfg.wiring_table (the
  // debug/reference mode) materializes the channel table and builds every
  // router eagerly, replicating the historical constructor.
  routers_.resize(num_routers);
  for (RouterId r = 0; r < num_routers; ++r) routers_[r].id = r;
  built_.assign(num_routers, 0);
  channel_phits_.assign(std::size_t{num_routers} * ports, 0);
  if (cfg_.wiring_table) {
    build_channels();
    for (RouterId r = 0; r < num_routers; ++r) build_router(r);
  }

  policy_ = make_policy(cfg_);
  pending_.resize(topo_.nodes());
  policy_->bind_lanes(shard_count);
  for (ShardState& sh : shards_) sh.view.init(*this);

  router_in_worklist_.assign(num_routers, 0);
  node_in_worklist_.assign(topo_.nodes(), 0);
  active_nodes_.reserve(topo_.nodes());

  wheel_size_ =
      std::max({cfg_.local_latency, cfg_.global_latency, kEjectionLatency}) +
      1;
  phit_wheel_.resize(wheel_size_);
  credit_wheel_.resize(wheel_size_);
  for (auto& slot : phit_wheel_) slot.reserve(kWheelSlotReserve);
  for (auto& slot : credit_wheel_) slot.reserve(kWheelSlotReserve);
}

Network::~Network() = default;

u32 Network::num_shards() const noexcept {
  return static_cast<u32>(shards_.size());
}

std::size_t Network::active_router_count() const noexcept {
  std::size_t n = 0;
  for (const ShardState& sh : shards_) n += sh.active_routers.size();
  return n;
}

void Network::set_sim_threads(unsigned threads) {
  if (threads == 0) threads = 1;
  const unsigned clamped = std::min<unsigned>(threads, num_shards());
  if (clamped == sim_threads_) return;
  sim_threads_ = clamped;
  if (sim_threads_ > 1)
    shard_pool_ = std::make_unique<ShardPool>(sim_threads_);
  else
    shard_pool_.reset();
}

void Network::build_ring() {
  ring_ = std::make_unique<HamiltonianRing>(topo_, cfg_.ring_stride);
  const u32 n = topo_.routers();
  ring_out_.resize(n);
  ring_in_port_.assign(n, kInvalidPort);
  ring_in_first_vc_.assign(n, 0);
  ring_in_num_vcs_.assign(n, 0);
  for (RouterId r = 0; r < n; ++r) {
    RingOut& out = ring_out_[r];
    if (cfg_.ring == RingKind::kPhysical) {
      out.port = topo_.ring_port();
      out.first_vc = 0;
      out.num_vcs = cfg_.vcs_local;
      ring_in_port_[r] = topo_.ring_port();
      ring_in_first_vc_[r] = 0;
      ring_in_num_vcs_[r] = cfg_.vcs_local;
    } else {
      out.port = ring_->embedded_out_port(r);
      out.first_vc = ring_->step_crosses_group(r) ? cfg_.vcs_global
                                                  : cfg_.vcs_local;
      out.num_vcs = 1;
      // The input side on the *successor* is that port's paired input; it
      // is derived here from the predecessor's outgoing step.
      const RouterId pred = ring_->predecessor(r);
      const PortId pred_out = ring_->embedded_out_port(pred);
      if (ring_->step_crosses_group(pred)) {
        ring_in_port_[r] = topo_.global_peer(pred, pred_out).port;
      } else {
        ring_in_port_[r] =
            topo_.local_port(topo_.local_of(r), topo_.local_of(pred));
      }
      // The embedded ring VC rides on top of the receiving port's base VC
      // range, whose size is that port's class count (global when the
      // predecessor's step crosses groups, local otherwise).
      ring_in_first_vc_[r] = ring_->step_crosses_group(pred)
                                 ? cfg_.vcs_global
                                 : cfg_.vcs_local;
      ring_in_num_vcs_[r] = 1;
    }
  }
}

void Network::build_channels() {
  // Debug/reference mode only (cfg.wiring_table): materialize the dense-
  // indexed descriptor table with the historical per-class derivation. It
  // is kept deliberately separate from resolve_channel so the two wiring
  // derivations stay independent — the mode-equivalence test compares them
  // descriptor by descriptor and digest by digest.
  const u32 ports = ports_per_router_;
  channels_.assign(num_channels(), Channel{});
  auto add_channel = [this, ports](const Channel& ch) {
    channels_[std::size_t{ch.src_router} * ports + ch.src_port] = ch;
  };

  for (RouterId r = 0; r < topo_.routers(); ++r) {
    for (PortId port = 0; port < ports; ++port) {
      Channel ch;
      ch.src_router = r;
      ch.src_port = port;
      switch (topo_.port_class(port)) {
        case PortClass::kNode:
          ch.cls = ChannelClass::kEjection;
          ch.dst_node = topo_.node_at(r, port);
          ch.latency = kEjectionLatency;
          add_channel(ch);
          break;
        case PortClass::kLocal: {
          const u32 peer = topo_.local_peer(topo_.local_of(r), port);
          ch.cls = ChannelClass::kLocal;
          ch.dst_router = topo_.router_at(topo_.group_of(r), peer);
          ch.dst_port = topo_.local_port(peer, topo_.local_of(r));
          ch.latency = cfg_.local_latency;
          add_channel(ch);
          break;
        }
        case PortClass::kGlobal: {
          if (!topo_.global_port_wired(r, port)) break;  // trimmed topology
          const auto far = topo_.global_peer(r, port);
          ch.cls = ChannelClass::kGlobal;
          ch.dst_router = far.router;
          ch.dst_port = far.port;
          ch.latency = cfg_.global_latency;
          add_channel(ch);
          break;
        }
        case PortClass::kRing: {
          const RouterId succ = ring_->successor(r);
          const bool crosses = ring_->step_crosses_group(r);
          ch.cls = crosses ? ChannelClass::kRingGlobal
                           : ChannelClass::kRingLocal;
          ch.dst_router = succ;
          ch.dst_port = topo_.ring_port();
          ch.latency = crosses ? cfg_.global_latency : cfg_.local_latency;
          add_channel(ch);
          break;
        }
      }
    }
  }
}

bool Network::channel_wired(ChannelId c) const noexcept {
  if (c >= num_channels()) return false;
  const PortId port = static_cast<PortId>(c % ports_per_router_);
  if (topo_.port_class(port) != PortClass::kGlobal) return true;
  return topo_.global_port_wired(
      static_cast<RouterId>(c / ports_per_router_), port);
}

Channel Network::resolve_channel(ChannelId c) const {
  const u32 ports = ports_per_router_;
  const RouterId r = static_cast<RouterId>(c / ports);
  const PortId port = static_cast<PortId>(c % ports);
  OFAR_DCHECK(r < routers_.size());
  Channel ch;
  ch.src_router = r;
  ch.src_port = port;
  switch (topo_.port_class(port)) {
    case PortClass::kNode:
      ch.cls = ChannelClass::kEjection;
      ch.dst_node = topo_.node_at(r, port);
      ch.latency = kEjectionLatency;
      break;
    case PortClass::kLocal: {
      const u32 peer = topo_.local_peer(topo_.local_of(r), port);
      ch.cls = ChannelClass::kLocal;
      ch.dst_router = topo_.router_at(topo_.group_of(r), peer);
      ch.dst_port = topo_.local_port(peer, topo_.local_of(r));
      ch.latency = cfg_.local_latency;
      break;
    }
    case PortClass::kGlobal: {
      OFAR_DCHECK(topo_.global_port_wired(r, port));
      const auto far = topo_.global_peer(r, port);
      ch.cls = ChannelClass::kGlobal;
      ch.dst_router = far.router;
      ch.dst_port = far.port;
      ch.latency = cfg_.global_latency;
      break;
    }
    case PortClass::kRing: {
      const RouterId succ = ring_->successor(r);
      const bool crosses = ring_->step_crosses_group(r);
      ch.cls =
          crosses ? ChannelClass::kRingGlobal : ChannelClass::kRingLocal;
      ch.dst_router = succ;
      ch.dst_port = topo_.ring_port();
      ch.latency = crosses ? cfg_.global_latency : cfg_.local_latency;
      break;
    }
  }
  return ch;
}

void Network::input_shape(RouterId r, PortId port, u32& vcs,
                          u32& capacity) const {
  vcs = 0;
  capacity = 0;
  switch (topo_.port_class(port)) {
    case PortClass::kNode:
      vcs = cfg_.vcs_injection;
      capacity = cfg_.fifo_injection;
      break;
    case PortClass::kLocal:
      vcs = cfg_.vcs_local;
      capacity = cfg_.fifo_local;
      break;
    case PortClass::kGlobal:
      vcs = cfg_.vcs_global;
      capacity = cfg_.fifo_global;
      break;
    case PortClass::kRing: {
      // Physical ring input receives from the ring predecessor; size the
      // buffer for the wire class of that incoming hop.
      vcs = cfg_.vcs_local;
      const RouterId pred = ring_->predecessor(r);
      capacity = ring_->step_crosses_group(pred) ? cfg_.fifo_global
                                                 : cfg_.fifo_local;
      break;
    }
  }
  // Embedded escape ring: one extra VC on the port that receives the ring
  // channel (paper §IV-C / §VII).
  if (cfg_.ring == RingKind::kEmbedded && port == ring_in_port_[r]) vcs += 1;
  OFAR_CHECK_MSG(vcs <= 8, "input VC bitmask is 8 bits wide");
}

u64 Network::built_router_count() const noexcept {
  u64 n = 0;
  for (const ShardState& sh : shards_) n += sh.built_count;
  return n;
}

void Network::build_router(RouterId rid) {
  OFAR_DCHECK(built_[rid] == 0);
  ShardState& sh = shards_[shard_of_router_[rid]];
  Router& router = routers_[rid];
  const u32 ports = ports_per_router_;
  router.inputs.resize(ports);
  router.outputs.resize(ports);
  router.input_mask.assign(ports, 0);

  // Input side: FIFOs (packet-granularity ring sizing) and the incoming
  // channel id + latency per port (the credit-return path).
  u32 max_vcs = 1;
  for (PortId port = 0; port < ports; ++port) {
    u32 vcs = 0, cap = 0;
    input_shape(rid, port, vcs, cap);
    sh.arena.bind_inputs(router, port, vcs, cap,
                         VcFifo::slots_for(cap, cfg_.packet_size));
    router.buffer_capacity_phits += vcs * cap;
    max_vcs = std::max(max_vcs, vcs);
    InputPort& in = router.inputs[port];
    switch (topo_.port_class(port)) {
      case PortClass::kNode:
        break;  // injection port: no upstream channel
      case PortClass::kLocal: {
        const u32 peer = topo_.local_peer(topo_.local_of(rid), port);
        const RouterId src = topo_.router_at(topo_.group_of(rid), peer);
        const PortId src_port = topo_.local_port(peer, topo_.local_of(rid));
        in.in_channel = static_cast<ChannelId>(src * ports + src_port);
        in.in_latency = cfg_.local_latency;
        break;
      }
      case PortClass::kGlobal: {
        if (!topo_.global_port_wired(rid, port)) break;
        // Global links come in symmetric pairs: the channel feeding this
        // port is the peer endpoint's output channel.
        const auto far = topo_.global_peer(rid, port);
        in.in_channel = static_cast<ChannelId>(far.router * ports + far.port);
        in.in_latency = cfg_.global_latency;
        break;
      }
      case PortClass::kRing: {
        const RouterId pred = ring_->predecessor(rid);
        in.in_channel =
            static_cast<ChannelId>(pred * ports + topo_.ring_port());
        in.in_latency = ring_->step_crosses_group(pred) ? cfg_.global_latency
                                                        : cfg_.local_latency;
        break;
      }
    }
  }

  // Output side: channel id + cached latency, and credit counters sized
  // from the *arithmetic* downstream shape — never from the neighbour's
  // state, so building this router never forces its neighbours to build.
  for (PortId port = 0; port < ports; ++port) {
    const ChannelId id = static_cast<ChannelId>(rid * ports + port);
    if (!channel_wired(id)) continue;  // unwired global slot (trimmed)
    const Channel ch = resolve_channel(id);
    OutputPort& out = router.outputs[port];
    out.channel = id;
    out.latency = ch.latency;
    if (ch.is_ejection()) {
      sh.arena.bind_credits(router, port, 1, kEjectionCredits);
    } else {
      u32 dvcs = 0, dcap = 0;
      input_shape(ch.dst_router, ch.dst_port, dvcs, dcap);
      sh.arena.bind_credits(router, port, dvcs, dcap);
    }
  }

  router.input_arb.reserve(ports);
  router.output_arb.reserve(ports);
  for (PortId port = 0; port < ports; ++port) {
    router.input_arb.emplace_back(max_vcs);
    router.output_arb.emplace_back(ports);
  }

  built_[rid] = 1;
  ++sh.built_count;
}

void Network::set_traffic(std::unique_ptr<TrafficSource> source) {
  traffic_ = std::move(source);
}

// ---------------------------------------------------------------------------
// per-port queries
// ---------------------------------------------------------------------------

void Network::base_vc_range(RouterId r, PortId port, u32& first,
                            u32& count) const {
  first = 0;
  count = 0;
  switch (topo_.port_class(port)) {
    case PortClass::kNode: count = 1; break;  // ejection output: one lane
    case PortClass::kLocal: count = cfg_.vcs_local; break;
    case PortClass::kGlobal: count = cfg_.vcs_global; break;
    case PortClass::kRing: count = 0; break;  // escape-only port
  }
  (void)r;
}

bool Network::is_ring_input(RouterId r, PortId port, VcId vc) const {
  if (ring_ == nullptr) return false;
  if (port != ring_in_port_[r]) return false;
  return vc >= ring_in_first_vc_[r] &&
         vc < ring_in_first_vc_[r] + ring_in_num_vcs_[r];
}

double Network::base_occupancy(const Router& r, PortId port) const {
  u32 first, count;
  base_vc_range(r.id, port, first, count);
  if (count == 0 || !r.outputs[port].wired()) return 1.0;
  return r.outputs[port].occupancy(first, count);
}

bool Network::base_available(const Router& r, PortId port) const {
  const OutputPort& out = r.outputs[port];
  if (!out.wired() || out.busy()) return false;
  u32 first, count;
  base_vc_range(r.id, port, first, count);
  VcId vc;
  return count != 0 && out.best_vc(first, count, cfg_.packet_size, vc);
}

bool Network::ring_can_take_packet(const Router& r) const {
  if (ring_ == nullptr) return false;
  const RingOut& ro = ring_out_[r.id];
  if (ro.port == kInvalidPort) return false;
  const OutputPort& out = r.outputs[ro.port];
  if (!out.wired() || out.busy()) return false;
  for (u32 v = ro.first_vc; v < ro.first_vc + ro.num_vcs; ++v)
    if (out.credits[v] >= cfg_.packet_size) return true;
  return false;
}

bool Network::best_base_vc(const Router& r, PortId port, VcId& vc) const {
  u32 first, count;
  base_vc_range(r.id, port, first, count);
  if (count == 0) return false;
  return r.outputs[port].best_vc(first, count, cfg_.packet_size, vc);
}

u32 Network::injection_free_phits(NodeId node) const {
  const RouterId rid = topo_.router_of_node(node);
  const PortId port = topo_.node_port(topo_.node_slot(node));
  if (built_[rid] == 0) {  // untouched router: every injection FIFO is empty
    u32 vcs, cap;
    input_shape(rid, port, vcs, cap);
    return vcs * cap;
  }
  const InputPort& in = routers_[rid].inputs[port];
  u32 free = 0;
  for (const VcFifo& f : in.vcs) free += f.capacity() - f.stored_phits();
  return free;
}

// ---------------------------------------------------------------------------
// injection
// ---------------------------------------------------------------------------

void Network::offer(NodeId src, NodeId dst, u16 tag) {
  OFAR_DCHECK(src != dst && dst < topo_.nodes());
  stats_.on_generated(tag, cfg_.packet_size);
  pending_[src].push_back({dst, tag, now_});
  ++pending_total_;
  mark_node_pending(src);
}

bool Network::try_inject(NodeId src, NodeId dst, u16 tag) {
  const RouterId rid = topo_.router_of_node(src);
  ensure_router_built(rid);  // serial phase
  Router& r = routers_[rid];
  if (r.throttled) return false;
  InputPort& in = r.inputs[topo_.node_port(topo_.node_slot(src))];
  u32 best_vc;
  if (!in.best_fit_vc(cfg_.packet_size, best_vc)) return false;
  stats_.on_generated(tag, cfg_.packet_size);
  place_packet(src, {dst, tag, now_});
  return true;
}

void Network::place_packet(NodeId src, const Offer& offer) {
  const RouterId rid = topo_.router_of_node(src);
  ensure_router_built(rid);  // serial phase
  Router& r = routers_[rid];
  InputPort& in = r.inputs[topo_.node_port(topo_.node_slot(src))];
  u32 best_vc;
  const bool fits = in.best_fit_vc(cfg_.packet_size, best_vc);
  OFAR_DCHECK(fits);  // caller checked space
  (void)fits;

  const PacketId id = pool_.create();
  Packet& pkt = pool_.get(id);
  pkt.src = src;
  pkt.dst = offer.dst;
  pkt.dst_router = topo_.router_of_node(offer.dst);
  pkt.size = static_cast<u16>(cfg_.packet_size);
  pkt.pattern_tag = offer.tag;
  pkt.birth = offer.birth;
  pkt.last_progress = now_;
  pkt.flag_group = topo_.group_of(r.id);
  // Injection is always a serial phase, so the sequence number is identical
  // at any sim_threads — the basis of deterministic trace sampling.
  pkt.seq = injected_total_;
  pkt.traced = tracer_ && trace::should_sample(pkt.seq, trace_sample_);

  policy_->on_inject(*this, pkt, r.id);

  if (in.vcs[best_vc].empty()) ++r.routable_heads;  // becomes a head
  in.vcs[best_vc].push_whole_packet(id, cfg_.packet_size);
  ++r.buffered_packets;
  r.buffered_phits += cfg_.packet_size;
  r.input_mask[topo_.node_port(topo_.node_slot(src))] |=
      static_cast<u8>(1u << best_vc);
  mark_router_active(r.id);
  ++injected_total_;
  stats_.on_injected();
  if (pkt.traced) {
    TraceEvent ev;
    ev.kind = TraceEvent::Kind::kInject;
    ev.packet = id;
    ev.cycle = now_;
    ev.router = r.id;
    ev.src = src;
    ev.dst = offer.dst;
    ev.seq = pkt.seq;
    tracer_(ev);  // serial injection phase  // lint: allow(trace-emit)
  }
}

// ---------------------------------------------------------------------------
// cycle phases
// ---------------------------------------------------------------------------

void Network::schedule_phit(ChannelId ch, PacketId pkt, VcId vc, bool head,
                            bool tail, u32 latency) {
  OFAR_DCHECK(latency >= 1 && latency < wheel_size_);
  phit_wheel_[(now_ + latency) % wheel_size_].push_back(
      {ch, pkt, vc, head ? u8{1} : u8{0}, tail ? u8{1} : u8{0}});
}

void Network::schedule_credit(ChannelId ch, VcId vc, u32 latency) {
  OFAR_DCHECK(latency >= 1 && latency < wheel_size_);
  credit_wheel_[(now_ + latency) % wheel_size_].push_back({ch, vc});
}

void Network::deliver_events() {
  const u32 slot = static_cast<u32>(now_ % wheel_size_);
  for (const PhitEvent& e : phit_wheel_[slot]) {
    const Channel ch = channel(e.ch);
    if (ch.is_ejection()) {
      OFAR_DCHECK(ch.dst_node == pool_.get(e.pkt).dst);
      if (e.tail) deliver_packet(e.pkt);
      continue;
    }
    ensure_router_built(ch.dst_router);  // first phit ever to reach it
    Router& dst = routers_[ch.dst_router];
    VcFifo& fifo = dst.inputs[ch.dst_port].vcs[e.vc];
    if (e.head) {
      if (fifo.empty()) ++dst.routable_heads;  // becomes a head
      fifo.push_packet(e.pkt);
      ++dst.buffered_packets;
      dst.input_mask[ch.dst_port] |= static_cast<u8>(1u << e.vc);
      // Continuation phits never need a mark: a FIFO entry is only popped
      // once all its phits arrived (cut-through pop requires sent<=arrived),
      // so their head's mark is still in force when they land.
      mark_router_active(ch.dst_router);
    } else {
      fifo.push_phit();
    }
    ++dst.buffered_phits;
    OFAR_DCHECK(fifo.stored_phits() <= fifo.capacity());
  }
  phit_wheel_[slot].clear();
  for (const CreditEvent& e : credit_wheel_[slot]) {
    // Only src_router/src_port are needed — a plain divmod on the dense id.
    const RouterId src_r = static_cast<RouterId>(e.ch / ports_per_router_);
    const PortId src_p = static_cast<PortId>(e.ch % ports_per_router_);
    OFAR_DCHECK(built_[src_r] != 0);  // credits only return to senders
    Router& src = routers_[src_r];
    OutputPort& out = src.outputs[src_p];
    OFAR_DCHECK(e.vc < out.credits.size());
    ++out.credits[e.vc];
    OFAR_DCHECK(out.credits[e.vc] <= out.credit_cap[e.vc]);
  }
  credit_wheel_[slot].clear();
}

void Network::deliver_packet(PacketId id) {
  const Packet& pkt = pool_.get(id);
  ++delivered_total_;
  stats_.on_delivered(pkt.pattern_tag, pkt.size, now_ - pkt.birth, pkt.birth,
                      pkt.total_hops);
  if (tracer_ && pkt.traced) {
    TraceEvent ev;
    ev.kind = TraceEvent::Kind::kDeliver;
    ev.packet = id;
    ev.cycle = now_;
    ev.router = pkt.dst_router;
    // Delivery happens over the ejection port; fill the kGrant-shaped
    // fields explicitly instead of leaving stale defaults (see the field
    // validity table in network.hpp).
    ev.out_port = topo_.node_port(topo_.node_slot(pkt.dst));
    ev.out_vc = 0;
    ev.misroute = MisrouteKind::kNone;
    ev.ring_move = false;
    ev.src = pkt.src;
    ev.dst = pkt.dst;
    ev.seq = pkt.seq;
    // Serial phase: sequential kernel delivers in wheel-slot order, the
    // sharded kernel in shard-ascending order (commit_shard_deliveries),
    // which is the same order.
    tracer_(ev);  // lint: allow(trace-emit)
  }
  pool_.destroy(id);
}

void Network::mark_router_active(RouterId r) {
  if (router_in_worklist_[r]) return;
  router_in_worklist_[r] = 1;
  ShardState& sh = shards_[shard_of_router_[r]];
  if (!sh.active_routers.empty() && r < sh.active_routers.back())
    sh.sorted = false;
  sh.active_routers.push_back(r);
}

void Network::mark_node_pending(NodeId n) {
  if (node_in_worklist_[n]) return;
  node_in_worklist_[n] = 1;
  if (!active_nodes_.empty() && n < active_nodes_.back())
    active_nodes_sorted_ = false;
  active_nodes_.push_back(n);
}

template <bool kStaged>
void Network::advance_transfers(ShardState& sh) {
  // The worklist prune is fused into this pass so the list is only walked
  // once before allocation: restore sorted order (marks append out of
  // order), then in one sweep drop routers that went idle since the last
  // cycle and advance the survivors' transfers. Routers that drain *during*
  // this cycle stay listed until the next cycle's sweep — update_throttle
  // relies on seeing a drained router once more to release its latch, and
  // compaction preserves the sorted order for the later phases.
  if (!sh.sorted) {
    std::sort(sh.active_routers.begin(), sh.active_routers.end());
    sh.sorted = true;
  }
  std::size_t w = 0;
  for (const RouterId id : sh.active_routers) {
    Router& r = routers_[id];
    if (!r.has_activity()) {
      router_in_worklist_[id] = 0;
      continue;
    }
    sh.active_routers[w++] = id;
    u64 mask = r.active_out_mask;
    while (mask != 0) {
      const u32 port = static_cast<u32>(__builtin_ctzll(mask));
      mask &= mask - 1;
      OutputPort& out = r.outputs[port];
      OFAR_DCHECK(out.busy());
      InputPort& in = r.inputs[out.src_port];
      VcFifo& fifo = in.vcs[out.src_vc];
      OFAR_DCHECK(!fifo.empty() && fifo.head() == out.active);
      // Cached at grant time (commit_grant): the streaming loop never has
      // to touch the packet pool.
      const u32 size = out.active_size;
      OFAR_DCHECK(size == pool_.get(out.active).size);
      const bool head = out.phits_left == size;
      const bool tail = out.phits_left == 1;
      const bool popped = fifo.pop_phit(size);
      OFAR_DCHECK(popped == tail);
      if (in.in_channel != kInvalidChannel) {
        const u32 latency = in.in_latency;  // cached at wiring time
        if constexpr (kStaged) {
          OFAR_DCHECK(latency >= 1 && latency < wheel_size_);
          sh.credit_out.push_back(
              {static_cast<u32>((now_ + latency) % wheel_size_),
               {in.in_channel, out.src_vc}});
        } else {
          schedule_credit(in.in_channel, out.src_vc, latency);
        }
      }
      ++channel_phits_[out.channel];  // flat counter; shard owns src router
      const u32 out_latency = out.latency;  // cached at wiring time
      if constexpr (kStaged) {
        OFAR_DCHECK(out_latency >= 1 && out_latency < wheel_size_);
        sh.phit_out.push_back(
            {static_cast<u32>((now_ + out_latency) % wheel_size_),
             {out.channel, out.active, out.active_vc, head ? u8{1} : u8{0},
              tail ? u8{1} : u8{0}}});
      } else {
        schedule_phit(out.channel, out.active, out.active_vc, head, tail,
                      out_latency);
      }
      --out.phits_left;
      --r.buffered_phits;
      if (popped) {
        --r.buffered_packets;
        if (fifo.empty()) {
          r.input_mask[out.src_port] &=
              static_cast<u8>(~(1u << out.src_vc));
        } else {
          // The queued entry behind the departing packet becomes the head;
          // head_busy is cleared below (popped implies phits_left hits 0).
          ++r.routable_heads;
        }
      }
      if (out.phits_left == 0) {
        out.active = kInvalidPacket;
        in.head_busy[out.src_vc] = 0;
        --r.active_transfers;
        r.active_out_mask &= ~(1ull << port);
      }
    }
  }
  sh.active_routers.resize(w);
}

template <bool kStaged>
void Network::do_allocation(ShardState& sh, u32 lane) {
  // Provenance is only materialised for traced heads (sparse side buffer),
  // so one record is reused across the scan and reset only when a traced
  // head actually wants it — the untraced hot path never touches it.
  RouteProvenance prov;
  for (const RouterId id : sh.active_routers) {
    Router& r = routers_[id];
    // No routable head means the port scan below would find nothing to
    // request: every buffered packet is either mid-transfer or queued
    // behind one. Skipping is observationally identical (an empty request
    // set never reaches the allocator, so no arbiter state changes) and
    // saves the scan for the packet_size cycles each grant streams.
    if (r.routable_heads == 0) continue;
    sh.reqs.clear();
    sh.provs.clear();
    // Rebind the shard's credit view to this router: one O(1) epoch bump,
    // after which every route() call of this scan reads its base-VC
    // queries from at most one per-port refresh. Exact by construction —
    // no credit or output-busy state changes until commit_grant below.
    sh.view.bind(r);
    // Saturated fast path: when no output could take a whole packet and
    // the escape ring cannot move one either, every route() call below
    // would return none — and for pure-when-blocked policies a failing
    // call draws no RNG and touches nothing, so the scan itself can be
    // skipped. Telemetry and tracing observe the failing calls (per-head
    // stall attribution, provenance events), so either disables the skip.
    if (skip_blocked_scans_ && sh.view.avail_mask() == 0 &&
        !ring_can_take_packet(r))
      continue;
    // Pass 1: gather routable heads from the flat FIFO arena and prefetch
    // each head packet's cache line. Head packets are scattered across the
    // pool, so letting the loads overlap here (instead of stalling pass 2
    // one miss at a time) is worth a second, purely local walk.
    sh.heads.clear();
    for (PortId port = 0; port < r.inputs.size(); ++port) {
      u8 mask = r.input_mask[port];
      if (mask == 0) continue;
      const InputPort& in = r.inputs[port];
      while (mask != 0) {
        const VcId vc = static_cast<VcId>(__builtin_ctz(mask));
        mask &= static_cast<u8>(mask - 1);
        if (!in.has_head(vc)) continue;
        const PacketId pid = in.vcs[vc].head();
        __builtin_prefetch(&pool_.get(pid));
        sh.heads.push_back({port, vc, pid});
      }
    }
    // Pass 2: one route() call per head, in the same port/VC order.
    for (const ShardState::HeadRef& h : sh.heads) {
      Packet& pkt = pool_.get(h.pid);
      const bool want_prov = pkt.traced && tracer_;
      if (want_prov) prov = RouteProvenance{};
      RouteContext rctx{*this, sh.view, r.id,         h.port,
                        h.vc,  pkt,    lane, want_prov ? &prov : nullptr};
      const RouteChoice choice = policy_->route(rctx);
      if (!choice.valid) {
        if (telem_) telem_->note_credit_stall(r.id, h.port, h.vc);
        continue;
      }
      OFAR_DCHECK(!r.outputs[choice.out_port].busy());
      OFAR_DCHECK(r.outputs[choice.out_port].credits[choice.out_vc] >=
                  cfg_.packet_size);
      if (want_prov)
        sh.provs.emplace_back(static_cast<u32>(sh.reqs.size()), prov);
      sh.reqs.push_back({h.port, h.vc, h.pid, choice, false});
    }
    if (sh.reqs.empty()) continue;
    sh.alloc->run(r, sh.reqs, cfg_.allocator_iterations, now_);
    std::size_t pi = 0;  // provs is sorted by request index by construction
    for (u32 i = 0; i < sh.reqs.size(); ++i) {
      const AllocRequest& rq = sh.reqs[i];
      const RouteProvenance* prov = nullptr;
      while (pi < sh.provs.size() && sh.provs[pi].first < i) ++pi;
      if (pi < sh.provs.size() && sh.provs[pi].first == i)
        prov = &sh.provs[pi].second;
      if (rq.granted) {
        commit_grant<kStaged>(sh, r, rq, prov);
      } else if (telem_) {
        telem_->note_alloc_stall(r.id, rq.in_port, rq.in_vc);
      }
    }
  }
}

template <bool kStaged>
void Network::commit_grant(ShardState& sh, Router& r, const AllocRequest& rq,
                           const RouteProvenance* prov) {
  OutputPort& out = r.outputs[rq.choice.out_port];
  Packet& pkt = pool_.get(rq.packet);
  OFAR_DCHECK(!out.busy());
  OFAR_DCHECK(out.credits[rq.choice.out_vc] >= pkt.size);

  // Queueing delay of this hop, captured before last_progress is updated.
  const Cycle queue_wait = now_ - pkt.last_progress;

  out.credits[rq.choice.out_vc] -= pkt.size;
  out.active = rq.packet;
  out.active_vc = rq.choice.out_vc;
  out.src_port = rq.in_port;
  out.src_vc = rq.in_vc;
  out.phits_left = pkt.size;
  out.active_size = pkt.size;
  ++r.active_transfers;
  r.active_out_mask |= 1ull << rq.choice.out_port;
  r.inputs[rq.in_port].head_busy[rq.in_vc] = 1;
  OFAR_DCHECK(r.routable_heads > 0);
  --r.routable_heads;  // head now mid-transfer

  pkt.last_progress = now_;

  const bool ring_move =
      rq.choice.enter_ring || (pkt.in_ring && !rq.choice.exit_ring);
  if (rq.choice.enter_ring) {
    pkt.in_ring = true;
    if constexpr (kStaged) {
      // Stats writes race across shards; stage counts (commit_shard_staging
      // folds them in shard order, matching on_ring_enter's semantics).
      if (pkt.ring_entered)
        ++sh.ring_reentries;
      else
        ++sh.ring_first_entries;
    } else {
      stats_.on_ring_enter(!pkt.ring_entered);
    }
    pkt.ring_entered = true;
  } else if (rq.choice.exit_ring) {
    pkt.in_ring = false;
    ++pkt.ring_exits;
    if constexpr (kStaged)
      ++sh.ring_exits;
    else
      stats_.on_ring_exit();
  }
  switch (rq.choice.misroute) {
    case MisrouteKind::kLocal:
      pkt.local_misrouted = true;
      pkt.flag_group = topo_.group_of(r.id);
      if constexpr (kStaged)
        ++sh.local_misroutes;
      else
        stats_.on_local_misroute();
      break;
    case MisrouteKind::kGlobal:
      pkt.global_misrouted = true;
      if constexpr (kStaged)
        ++sh.global_misroutes;
      else
        stats_.on_global_misroute();
      break;
    case MisrouteKind::kNone:
      break;
  }
  if (tracer_ && pkt.traced) {
    TraceEvent ev;
    ev.kind = TraceEvent::Kind::kGrant;
    ev.packet = rq.packet;
    ev.cycle = now_;
    ev.router = r.id;
    ev.out_port = rq.choice.out_port;
    ev.out_vc = rq.choice.out_vc;
    ev.misroute = rq.choice.misroute;
    ev.ring_move = ring_move;
    ev.src = pkt.src;
    ev.dst = pkt.dst;
    ev.seq = pkt.seq;
    ev.in_port = rq.in_port;
    ev.in_vc = rq.in_vc;
    ev.queue_wait = static_cast<u32>(
        std::min<Cycle>(queue_wait, ~u32{0}));
    if (prov != nullptr) ev.prov = *prov;
    if constexpr (kStaged)
      sh.traces.push_back(ev);  // flushed serially, in shard order
    else
      tracer_(ev);  // K = 1: the serial kernel IS the commit order  // lint: allow(trace-emit)
    // Ring transitions get explicit marker events right after the grant,
    // so consumers need not re-derive them from the grant flags.
    if (rq.choice.enter_ring || rq.choice.exit_ring) {
      ev.kind = rq.choice.enter_ring ? TraceEvent::Kind::kRingEnter
                                     : TraceEvent::Kind::kRingExit;
      ev.ring_move = true;
      if constexpr (kStaged)
        sh.traces.push_back(ev);
      else
        tracer_(ev);  // lint: allow(trace-emit)
    }
  }
  if (!ring_move) {
    switch (topo_.port_class(rq.choice.out_port)) {
      case PortClass::kLocal:
        ++pkt.local_hops;
        ++pkt.local_hops_in_group;
        ++pkt.total_hops;
        break;
      case PortClass::kGlobal:
        ++pkt.global_hops;
        pkt.local_hops_in_group = 0;
        ++pkt.total_hops;
        break;
      default:
        break;
    }
  } else {
    ++pkt.total_hops;
  }
}

void Network::update_throttle() {
  // Only routers on the worklist can have a non-zero occupancy or a set
  // throttle latch: a latch is only set above throttle_on (so the router
  // buffers phits and is listed) and is released by this sweep in the very
  // cycle the router drains — before the next cycle's prune (in
  // advance_transfers) drops it. Idle routers therefore behave exactly as
  // under the full scan.
  for (const ShardState& sh : shards_) {
    for (const RouterId id : sh.active_routers) {
      Router& r = routers_[id];
      const double occ = static_cast<double>(r.buffered_phits) /
                         static_cast<double>(r.buffer_capacity_phits);
      if (r.throttled) {
        if (occ < cfg_.throttle_off) r.throttled = false;
      } else if (occ > cfg_.throttle_on) {
        r.throttled = true;
      }
    }
  }
}

void Network::do_injection() {
  if (cfg_.congestion_throttle) update_throttle();
  if (traffic_) traffic_->tick(*this);
  if (active_nodes_.empty()) return;
  if (!active_nodes_sorted_) {
    std::sort(active_nodes_.begin(), active_nodes_.end());
    active_nodes_sorted_ = true;
  }
  std::size_t w = 0;
  for (const NodeId n : active_nodes_) {
    auto& queue = pending_[n];
    while (!queue.empty()) {
      // place_packet requires space; probe with the same best-fit rule the
      // placement uses (InputPort::best_fit_vc), so probe and placement
      // cannot diverge.
      const RouterId rid = topo_.router_of_node(n);
      ensure_router_built(rid);  // serial phase
      const Router& r = routers_[rid];
      if (r.throttled) break;
      const InputPort& in = r.inputs[topo_.node_port(topo_.node_slot(n))];
      u32 vc;
      if (!in.best_fit_vc(cfg_.packet_size, vc)) break;
      place_packet(n, queue.front());
      queue.pop_front();
      --pending_total_;
    }
    if (queue.empty()) {
      node_in_worklist_[n] = 0;
    } else {
      active_nodes_[w++] = n;
    }
  }
  active_nodes_.resize(w);
}

void Network::run_watchdog() {
  u64 stalled = 0, worst = 0;
  pool_.for_each_live([&](PacketId, const Packet& pkt) {
    const u64 wait = now_ - pkt.last_progress;
    worst = std::max(worst, wait);
    if (wait > cfg_.deadlock_timeout) ++stalled;
  });
  stats_.on_watchdog(stalled, worst);
  if (telem_ && stalled > 0) telem_->on_watchdog_trip(*this, stalled, worst);
  if (trace_ && stalled > 0) trace_->on_deadlock(now_, stalled, worst);
}

void Network::step() {
  // Re-evaluated every cycle: tracing/telemetry can be toggled between
  // runs, and the blocked-scan skip must never drop their per-head
  // observations (see do_allocation).
  skip_blocked_scans_ = policy_->blocked_route_is_pure() &&
                        tracer_ == nullptr && telem_ == nullptr;
  if (telem_ != nullptr) {
    step_instrumented();
    return;
  }
  if (shards_.size() > 1) {
    step_sharded();
    return;
  }
  deliver_events();
  policy_->tick(*this);
  advance_transfers<false>(shards_[0]);  // also prunes + sorts the worklist
  do_allocation<false>(shards_[0], 0);
  do_injection();
  if (now_ % kWatchdogPeriod == 0 && now_ != 0) run_watchdog();
  ++now_;
  if (now_ >= next_audit_) [[unlikely]] run_audit();
}

void Network::step_instrumented() {
  if (shards_.size() > 1) {
    step_sharded_instrumented();
    return;
  }
  PhaseProfiler& prof = telem_->profiler();
  prof.start_cycle(now_);
  deliver_events();
  prof.phase_done(SimPhase::kEventDelivery);
  policy_->tick(*this);
  prof.phase_done(SimPhase::kPolicyTick);
  advance_transfers<false>(shards_[0]);
  prof.phase_done(SimPhase::kTransfers);
  do_allocation<false>(shards_[0], 0);
  prof.phase_done(SimPhase::kAllocation);
  do_injection();
  prof.phase_done(SimPhase::kInjection);
  const bool watchdog = now_ % kWatchdogPeriod == 0 && now_ != 0;
  if (watchdog) {
    run_watchdog();
    prof.phase_done(SimPhase::kWatchdog);
  }
  prof.end_cycle(watchdog);
  ++now_;
  if (now_ >= next_audit_) [[unlikely]] run_audit();
  telem_->maybe_sample(*this, now_);
}

// ---------------------------------------------------------------------------
// sharded cycle kernel (num_shards() > 1; see DESIGN.md §10)
// ---------------------------------------------------------------------------

void Network::run_shard_phase(const std::function<void(u32)>& fn) {
  if (shard_pool_ != nullptr) {
    shard_pool_->parallel_phase(num_shards(), fn);
  } else {
    // Single-threaded execution of the same shard program, in shard order.
    // Shards are mutually independent within a phase, so this is exactly
    // what any schedule of the pool computes — the thread-invariance
    // contract in one line.
    for (u32 s = 0; s < num_shards(); ++s) fn(s);
  }
}

void Network::deliver_events_shard(ShardState& sh, u32 shard) {
  // Every shard scans the full slot and applies only the events it owns:
  // a phit event belongs to the destination router's shard (it fills that
  // router's input FIFO), an ejection to the source router's shard (its
  // effect — the delivery — is staged anyway), a credit to the source
  // router's shard (it replenishes that router's output credits). The scan
  // itself is read-only and the slot is cleared serially afterwards, so
  // shards share it safely.
  const u32 slot = static_cast<u32>(now_ % wheel_size_);
  for (const PhitEvent& e : phit_wheel_[slot]) {
    const Channel ch = channel(e.ch);
    if (ch.is_ejection()) {
      if (shard_of_router_[ch.src_router] != shard) continue;
      OFAR_DCHECK(ch.dst_node == pool_.get(e.pkt).dst);
      if (e.tail) sh.delivered.push_back(e.pkt);
      continue;
    }
    if (shard_of_router_[ch.dst_router] != shard) continue;
    // Lazy build is parallel-legal here: the destination router belongs to
    // this shard, and everything build_router writes (router shell, arena
    // chunks, built_ flag, shard built counter) is shard-local.
    ensure_router_built(ch.dst_router);
    Router& dst = routers_[ch.dst_router];
    VcFifo& fifo = dst.inputs[ch.dst_port].vcs[e.vc];
    if (e.head) {
      if (fifo.empty()) ++dst.routable_heads;  // becomes a head
      fifo.push_packet(e.pkt);
      ++dst.buffered_packets;
      dst.input_mask[ch.dst_port] |= static_cast<u8>(1u << e.vc);
      mark_router_active(ch.dst_router);
    } else {
      fifo.push_phit();
    }
    ++dst.buffered_phits;
    OFAR_DCHECK(fifo.stored_phits() <= fifo.capacity());
  }
  for (const CreditEvent& e : credit_wheel_[slot]) {
    const RouterId src_r = static_cast<RouterId>(e.ch / ports_per_router_);
    if (shard_of_router_[src_r] != shard) continue;
    OFAR_DCHECK(built_[src_r] != 0);  // credits only return to senders
    Router& src = routers_[src_r];
    OutputPort& out =
        src.outputs[static_cast<PortId>(e.ch % ports_per_router_)];
    OFAR_DCHECK(e.vc < out.credits.size());
    ++out.credits[e.vc];
    OFAR_DCHECK(out.credits[e.vc] <= out.credit_cap[e.vc]);
  }
}

void Network::commit_shard_deliveries() {
  // Safe to clear before the deliveries commit: deliver_packet never
  // touches the wheels, and no event can target the current slot (every
  // latency is >= 1 and wheel_size_ >= 2).
  const u32 slot = static_cast<u32>(now_ % wheel_size_);
  phit_wheel_[slot].clear();
  credit_wheel_[slot].clear();
  for (ShardState& sh : shards_) {
    for (const PacketId id : sh.delivered) deliver_packet(id);
    sh.delivered.clear();
  }
}

void Network::commit_shard_staging() {
  for (ShardState& sh : shards_) {
    if (tracer_) {
      // Shard-ascending flush of per-shard staging: THE reviewed commit
      // path for grant-phase trace events (trace-emit lint rule).
      for (const TraceEvent& ev : sh.traces) tracer_(ev);  // lint: allow(trace-emit)
    }
    sh.traces.clear();
    stats_.on_ring_enters(sh.ring_first_entries, sh.ring_reentries);
    stats_.on_ring_exits(sh.ring_exits);
    stats_.on_local_misroutes(sh.local_misroutes);
    stats_.on_global_misroutes(sh.global_misroutes);
    sh.ring_first_entries = sh.ring_reentries = sh.ring_exits = 0;
    sh.local_misroutes = sh.global_misroutes = 0;
    // Within a shard the outbox is in generation order (router-ascending),
    // so the shard-ascending flush reproduces the global router-ascending
    // order a sequential scan would have pushed — commit order is a
    // function of ids, never of thread arrival.
    for (const StagedPhit& sp : sh.phit_out)
      phit_wheel_[sp.slot].push_back(sp.ev);
    sh.phit_out.clear();
    for (const StagedCredit& sc : sh.credit_out)
      credit_wheel_[sc.slot].push_back(sc.ev);
    sh.credit_out.clear();
  }
}

void Network::step_sharded() {
  run_shard_phase([this](u32 s) { deliver_events_shard(shards_[s], s); });
  commit_shard_deliveries();
  policy_->tick(*this);
  // Transfers and allocation fuse into one parallel phase: during both, a
  // shard reads and writes only its own routers (allocation consumes credit
  // state only the same shard's transfers touch), so no barrier is needed
  // between them within a shard program.
  run_shard_phase([this](u32 s) {
    advance_transfers<true>(shards_[s]);
    do_allocation<true>(shards_[s], s);
  });
  commit_shard_staging();
  do_injection();
  if (now_ % kWatchdogPeriod == 0 && now_ != 0) run_watchdog();
  ++now_;
  if (now_ >= next_audit_) [[unlikely]] run_audit();
}

void Network::step_sharded_instrumented() {
  // Identical staging content and commit order as step_sharded(); the only
  // difference is an extra barrier between transfers and allocation so the
  // profiler can attribute their time separately. Digests are unaffected.
  PhaseProfiler& prof = telem_->profiler();
  prof.start_cycle(now_);
  run_shard_phase([this](u32 s) { deliver_events_shard(shards_[s], s); });
  commit_shard_deliveries();
  prof.phase_done(SimPhase::kEventDelivery);
  policy_->tick(*this);
  prof.phase_done(SimPhase::kPolicyTick);
  run_shard_phase([this](u32 s) { advance_transfers<true>(shards_[s]); });
  prof.phase_done(SimPhase::kTransfers);
  run_shard_phase([this](u32 s) { do_allocation<true>(shards_[s], s); });
  commit_shard_staging();
  prof.phase_done(SimPhase::kAllocation);
  do_injection();
  prof.phase_done(SimPhase::kInjection);
  const bool watchdog = now_ % kWatchdogPeriod == 0 && now_ != 0;
  if (watchdog) {
    run_watchdog();
    prof.phase_done(SimPhase::kWatchdog);
  }
  prof.end_cycle(watchdog);
  ++now_;
  if (now_ >= next_audit_) [[unlikely]] run_audit();
  telem_->maybe_sample(*this, now_);
}

void Network::enable_telemetry(const TelemetryConfig& tcfg) {
  telem_ = std::make_unique<Telemetry>(*this, tcfg);
}

void Network::enable_tracing(const trace::TracerConfig& tcfg) {
  set_trace_sampling(tcfg.sample);
  trace_ = std::make_unique<trace::PacketTracer>(*this, tcfg);
  trace::PacketTracer* sink = trace_.get();
  tracer_ = [sink](const TraceEvent& ev) {
    // tracer_ only fires from serial sections (direct emission sites carry
    // lint waivers; staged events flush via commit_shard_staging).
    tsa::serial_phase.assert_held();
    sink->on_event(ev);
  };
}

void Network::enable_audit(Cycle interval) {
  if (interval == 0) {
    audit_.reset();
    audit_interval_ = 0;
    next_audit_ = ~Cycle{0};
    return;
  }
  audit_ = std::make_unique<verify::InvariantAuditor>(*this);
  audit_interval_ = interval;
  next_audit_ = now_ + interval;
}

void Network::run_audit() {
  next_audit_ = now_ + audit_interval_;
  const verify::AuditReport report = audit_->run_all();
  if (!report.ok()) [[unlikely]] {
    std::fputs(report.to_string().c_str(), stderr);
    // Post-mortem before the abort: the flight recorder's last-N events per
    // router are exactly the forensics a violated invariant needs.
    if (trace_) trace_->on_audit_failure(now_, report.to_json());
    std::abort();
  }
}

void Network::run(u64 cycles) {
  for (u64 i = 0; i < cycles; ++i) step();
}

bool Network::check_flow_conservation() const {
  verify::InvariantAuditor auditor(*this);
  verify::AuditReport report;
  auditor.check_credit_conservation(report);
  return report.ok();
}

bool Network::check_quiescent() const {
  if (!drained()) return false;
  for (const Router& r : routers_) {
    if (r.buffered_packets != 0 || r.active_transfers != 0 ||
        r.active_out_mask != 0)
      return false;
    for (const InputPort& in : r.inputs)
      for (const VcFifo& f : in.vcs)
        if (!f.empty() || f.stored_phits() != 0) return false;
    for (const OutputPort& out : r.outputs) {
      if (out.busy()) return false;
      for (std::size_t v = 0; v < out.credits.size(); ++v)
        if (out.credits[v] != out.credit_cap[v] &&
            out.credit_cap[v] != (1u << 30))  // ejection sinks drift by design
          return false;
    }
  }
  for (const auto& slot : phit_wheel_)
    if (!slot.empty()) return false;
  for (const auto& slot : credit_wheel_)
    if (!slot.empty()) return false;
  return true;
}

bool Network::check_worklists() const {
  verify::InvariantAuditor auditor(*this);
  verify::AuditReport report;
  auditor.check_worklists(report);
  return report.ok();
}

}  // namespace ofar
