// Fig. 7 reproduction: burst consumption time, normalised to PB. Every node
// injects a fixed budget of packets as fast as injection queues allow
// (synchronised post-barrier burst, paper §VI-C); we measure the cycle at
// which the network fully drains. Workloads: UN, ADV+2, ADV+h and three
// UN/ADV+1/ADV+h mixes (80/10/10, 60/20/20, 20/40/40).
//
// Expected shape: OFAR always finishes first (paper: 43.1%-81.5% of PB's
// time, average 0.695x => 43.8% speedup), and the full OFAR model always
// beats OFAR-L.
//
// --packets scales the per-node budget (paper: 2000; default 400 keeps the
// default h=4 run in minutes on one core — the normalised ratios are
// insensitive to the budget once bursts dwarf the drain tail).
//
// Shim over the "fig7" preset (presets.cpp).
#include "presets.hpp"

int main(int argc, char** argv) {
  return ofar::bench::run_preset_main("fig7", argc, argv);
}
