#include "stats/timeseries.hpp"

#include "stats/sink.hpp"

namespace ofar {

void TimeSeries::flush_front(u64 new_base) {
  const u64 resident_end = base_ + buckets_.size();
  const u64 stop = new_base < resident_end ? new_base : resident_end;
  for (u64 i = base_; i < stop; ++i) {
    const Bucket& b = buckets_[i - base_];
    if (b.count != 0 && flush_)
      flush_(start_ + i * bucket_width_ + bucket_width_ / 2, b);
  }
  buckets_.erase(buckets_.begin(),
                 buckets_.begin() + static_cast<std::ptrdiff_t>(stop - base_));
  base_ = new_base;
}

void TimeSeries::dump_csv(std::FILE* f, const std::string& label) const {
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const Bucket& b = buckets_[i];
    if (b.count == 0) continue;
    std::fprintf(f, "%s,%llu,%.17g,%llu\n", label.c_str(),
                 static_cast<unsigned long long>(bucket_mid(i)), b.mean(),
                 static_cast<unsigned long long>(b.count));
  }
}

void TimeSeries::dump_jsonl(std::FILE* f, const std::string& label) const {
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const Bucket& b = buckets_[i];
    if (b.count == 0) continue;
    JsonWriter w;
    w.begin_object();
    w.key("label").value(label);
    w.key("cycle").value(static_cast<u64>(bucket_mid(i)));
    w.key("mean").value(b.mean());
    w.key("count").value(b.count);
    w.end_object();
    std::fprintf(f, "%s\n", w.str().c_str());
  }
}

}  // namespace ofar
