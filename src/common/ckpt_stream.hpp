// Binary stream primitives for checkpoint files (core/checkpoint.hpp).
//
// Deliberately minimal: fixed-width little-endian scalars, raw POD spans
// and length-prefixed strings over a std::FILE*. Checkpoints are tied to
// the build that wrote them (native endianness and struct layout — the
// header's config signature and version gate any mismatch), so no
// portability machinery is needed. Both ends carry a sticky ok() flag: the
// first short read/write poisons the stream and every later call is a
// no-op, so callers validate once at the end instead of per field.
#pragma once

#include <cstdio>
#include <cstring>
#include <string>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace ofar {

class CkptWriter {
 public:
  explicit CkptWriter(std::FILE* f) noexcept : f_(f) {}

  void put_u8(u8 v) { raw(&v, sizeof v); }
  void put_u16(u16 v) { raw(&v, sizeof v); }
  void put_u32(u32 v) { raw(&v, sizeof v); }
  void put_u64(u64 v) { raw(&v, sizeof v); }
  void put_f64(double v) { raw(&v, sizeof v); }
  void put_bool(bool v) { put_u8(v ? 1 : 0); }

  void put_str(const std::string& s) {
    put_u64(s.size());
    raw(s.data(), s.size());
  }

  void put_rng(const Rng& rng) {
    for (u64 s : rng.save_state()) put_u64(s);
  }

  /// Raw bytes of `count` trivially-copyable elements.
  template <typename T>
  void put_pod_span(const T* data, std::size_t count) {
    static_assert(std::is_trivially_copyable_v<T>);
    raw(data, count * sizeof(T));
  }

  bool ok() const noexcept { return ok_; }

 private:
  void raw(const void* p, std::size_t n) {
    if (!ok_ || n == 0) return;
    ok_ = std::fwrite(p, 1, n, f_) == n;
  }

  std::FILE* f_;
  bool ok_ = true;
};

class CkptReader {
 public:
  explicit CkptReader(std::FILE* f) noexcept : f_(f) {}

  u8 get_u8() { return get<u8>(); }
  u16 get_u16() { return get<u16>(); }
  u32 get_u32() { return get<u32>(); }
  u64 get_u64() { return get<u64>(); }
  double get_f64() { return get<double>(); }
  bool get_bool() { return get_u8() != 0; }

  /// Length-prefixed string; lengths above `max_len` poison the stream
  /// (corrupt length field) instead of attempting a huge allocation.
  std::string get_str(std::size_t max_len = 1u << 20) {
    const u64 n = get_u64();
    if (n > max_len) {
      ok_ = false;
      return {};
    }
    std::string s(static_cast<std::size_t>(n), '\0');
    raw(s.data(), s.size());
    return ok_ ? s : std::string{};
  }

  void get_rng(Rng& rng) {
    std::array<u64, 4> s{};
    for (u64& v : s) v = get_u64();
    if (ok_) rng.load_state(s);
  }

  template <typename T>
  void get_pod_span(T* data, std::size_t count) {
    static_assert(std::is_trivially_copyable_v<T>);
    raw(data, count * sizeof(T));
  }

  bool ok() const noexcept { return ok_; }
  /// Manual poisoning for semantic validation failures (bad counts).
  void fail() noexcept { ok_ = false; }

 private:
  template <typename T>
  T get() {
    T v{};
    raw(&v, sizeof v);
    return ok_ ? v : T{};
  }

  void raw(void* p, std::size_t n) {
    if (!ok_ || n == 0) return;
    ok_ = std::fread(p, 1, n, f_) == n;
  }

  std::FILE* f_;
  bool ok_ = true;
};

}  // namespace ofar
