#include "common/json.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace ofar {

JsonValue JsonValue::make_bool(bool v) {
  JsonValue j;
  j.kind_ = Kind::kBool;
  j.bool_ = v;
  return j;
}

JsonValue JsonValue::make_number(double v) {
  JsonValue j;
  j.kind_ = Kind::kNumber;
  j.number_ = v;
  return j;
}

JsonValue JsonValue::make_int(i64 v) {
  JsonValue j;
  j.kind_ = Kind::kNumber;
  j.number_ = static_cast<double>(v);
  j.int_ = v;
  j.int_valid_ = true;
  return j;
}

JsonValue JsonValue::make_string(std::string v) {
  JsonValue j;
  j.kind_ = Kind::kString;
  j.string_ = std::move(v);
  return j;
}

JsonValue JsonValue::make_array(std::vector<JsonValue> items) {
  JsonValue j;
  j.kind_ = Kind::kArray;
  j.items_ = std::move(items);
  return j;
}

JsonValue JsonValue::make_object(
    std::vector<std::pair<std::string, JsonValue>> members) {
  JsonValue j;
  j.kind_ = Kind::kObject;
  j.members_ = std::move(members);
  return j;
}

const JsonValue* JsonValue::find(const std::string& key) const noexcept {
  for (const auto& [k, v] : members_)
    if (k == key) return &v;
  return nullptr;
}

namespace {

class Parser {
 public:
  Parser(const std::string& text, std::string& error)
      : text_(text), error_(error) {}

  bool parse(JsonValue& out) {
    skip_ws();
    if (!parse_value(out)) return false;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing content after document");
    return true;
  }

 private:
  bool parse_value(JsonValue& out) {
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"': return parse_string_value(out);
      case 't':
      case 'f': return parse_bool(out);
      case 'n': return parse_null(out);
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return parse_number(out);
        return fail(std::string("unexpected character '") + c + "'");
    }
  }

  bool parse_object(JsonValue& out) {
    ++pos_;  // '{'
    std::vector<std::pair<std::string, JsonValue>> members;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      out = JsonValue::make_object(std::move(members));
      return true;
    }
    for (;;) {
      skip_ws();
      if (peek() != '"') return fail("expected string key");
      std::string key;
      if (!parse_string_raw(key)) return false;
      skip_ws();
      if (peek() != ':') return fail("expected ':' after key");
      ++pos_;
      skip_ws();
      JsonValue value;
      if (!parse_value(value)) return false;
      members.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        out = JsonValue::make_object(std::move(members));
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  bool parse_array(JsonValue& out) {
    ++pos_;  // '['
    std::vector<JsonValue> items;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      out = JsonValue::make_array(std::move(items));
      return true;
    }
    for (;;) {
      skip_ws();
      JsonValue value;
      if (!parse_value(value)) return false;
      items.push_back(std::move(value));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        out = JsonValue::make_array(std::move(items));
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  bool parse_string_value(JsonValue& out) {
    std::string s;
    if (!parse_string_raw(s)) return false;
    out = JsonValue::make_string(std::move(s));
    return true;
  }

  bool parse_string_raw(std::string& out) {
    ++pos_;  // opening quote
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return fail("unterminated escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            u32 cp = 0;
            for (int i = 0; i < 4; ++i) {
              if (pos_ >= text_.size()) return fail("truncated \\u escape");
              const char h = text_[pos_++];
              cp <<= 4;
              if (h >= '0' && h <= '9') cp |= static_cast<u32>(h - '0');
              else if (h >= 'a' && h <= 'f') cp |= static_cast<u32>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') cp |= static_cast<u32>(h - 'A' + 10);
              else return fail("invalid hex digit in \\u escape");
            }
            // UTF-8 encode the BMP code point (surrogate pairs are passed
            // through as two 3-byte sequences; specs and journals are ASCII
            // in practice).
            if (cp < 0x80) {
              out += static_cast<char>(cp);
            } else if (cp < 0x800) {
              out += static_cast<char>(0xC0 | (cp >> 6));
              out += static_cast<char>(0x80 | (cp & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (cp >> 12));
              out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (cp & 0x3F));
            }
            break;
          }
          default: return fail("invalid escape character");
        }
        continue;
      }
      if (static_cast<unsigned char>(c) < 0x20)
        return fail("unescaped control character in string");
      out += c;
      ++pos_;
    }
    return fail("unterminated string");
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9')
      ++pos_;
    bool integral = true;
    if (peek() == '.') {
      integral = false;
      ++pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9')
        ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      integral = false;
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9')
        ++pos_;
    }
    const std::string token = text_.substr(start, pos_ - start);
    if (token.empty() || token == "-") return fail("malformed number");
    errno = 0;
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size())
      return fail("malformed number '" + token + "'");
    if (integral) {
      errno = 0;
      const long long ll = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end == token.c_str() + token.size()) {
        out = JsonValue::make_int(static_cast<i64>(ll));
        return true;
      }
    }
    out = JsonValue::make_number(d);
    return true;
  }

  bool parse_bool(JsonValue& out) {
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      out = JsonValue::make_bool(true);
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      out = JsonValue::make_bool(false);
      return true;
    }
    return fail("expected 'true' or 'false'");
  }

  bool parse_null(JsonValue& out) {
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      out = JsonValue::make_null();
      return true;
    }
    return fail("expected 'null'");
  }

  char peek() const noexcept {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') ++pos_;
      else break;
    }
  }

  bool fail(const std::string& message) {
    std::size_t line = 1, col = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    char prefix[48];
    std::snprintf(prefix, sizeof prefix, "line %zu, column %zu: ", line, col);
    error_ = prefix + message;
    return false;
  }

  const std::string& text_;
  std::string& error_;
  std::size_t pos_ = 0;
};

}  // namespace

bool json_parse(const std::string& text, JsonValue& out, std::string& error) {
  Parser p(text, error);
  return p.parse(out);
}

bool json_parse_file(const std::string& path, JsonValue& out,
                     std::string& error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    error = "cannot read " + path;
    return false;
  }
  std::string text;
  char buf[4096];
  for (;;) {
    const std::size_t n = std::fread(buf, 1, sizeof buf, f);
    text.append(buf, n);
    if (n < sizeof buf) break;
  }
  const bool read_ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!read_ok) {
    error = "cannot read " + path;
    return false;
  }
  if (!json_parse(text, out, error)) {
    error = path + ": " + error;
    return false;
  }
  return true;
}

}  // namespace ofar
