file(REMOVE_RECURSE
  "libofar.a"
)
