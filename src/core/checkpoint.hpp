// Deterministic checkpoint/restart of the full simulation state
// (DESIGN.md §"Scale").
//
// A checkpoint captures everything that determines future simulation
// behaviour — the cycle clock, every RNG stream (network, policy lanes,
// traffic source), the packet pool verbatim (including the LIFO free list,
// whose order decides future id assignment), per-node offer queues, every
// built router's FIFO/credit/arbiter/transfer state, the activity
// worklists, the in-flight event wheels, lifetime counters and the open
// Stats window. Restoring into a freshly constructed Network of the SAME
// config (validated via spec's canonical config signature + seed) and then
// stepping produces the bit-identical continuation of the original run, at
// any sim_threads.
//
// NOT captured: instrumentation (telemetry, tracers, the invariant
// auditor). All of it is read-only with respect to simulation outcomes, so
// a resumed run's *results* are unaffected; mid-run instrumentation output
// simply restarts at the resume point.
//
// Format: native-endian binary (common/ckpt_stream.hpp), tied to the build
// that wrote it; a magic/version/signature header rejects anything else.
// save() writes to "<path>.tmp" and renames, so a crash mid-write leaves
// the previous checkpoint intact.
#pragma once

#include <string>

namespace ofar {

class Network;
class CkptWriter;
class CkptReader;
class VcFifo;
class TimeSeries;
class Stats;

class CheckpointIO {
 public:
  /// Serializes the network's full simulation state to `path` (atomic
  /// tmp+rename). Returns false (with `error` filled when non-null) on any
  /// I/O failure.
  static bool save(const Network& net, const std::string& path,
                   std::string* error = nullptr);

  /// Restores a checkpoint into `net`, which must be freshly constructed
  /// from the same SimConfig (same seed included) with its traffic source
  /// already installed. Returns false without touching `net` when the file
  /// is missing; aborts the restore (false + error) on a signature or
  /// format mismatch.
  static bool restore(Network& net, const std::string& path,
                      std::string* error = nullptr);

 private:
  static void write_state(CkptWriter& w, const Network& net);
  static bool read_state(CkptReader& r, Network& net, std::string* error);
  // Per-component serializers; members (not free helpers) because they
  // exercise the `friend class CheckpointIO` grants of their targets.
  static void write_fifo(CkptWriter& w, const VcFifo& f);
  static bool read_fifo(CkptReader& r, VcFifo& f);
  static void write_series(CkptWriter& w, const TimeSeries& ts);
  static bool read_series(CkptReader& r, TimeSeries& ts);
  static void write_stats(CkptWriter& w, const Stats& s);
  static bool read_stats(CkptReader& r, Stats& s);
};

}  // namespace ofar
