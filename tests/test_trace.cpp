// Tracing subsystem tests (src/trace, DESIGN.md §11):
//  - deterministic sampling: hash-based, pure in (seq, denominator);
//  - trace-stream determinism: the full serialized event stream (provenance
//    included) is bit-identical across sim_threads on the sharded kernel,
//    physical and embedded rings;
//  - routing-decision provenance: on a crafted congested router the
//    recorded OFAR condition matches the misroute kind the policy chose;
//  - flight recorder: bounded depth, oldest-first snapshots, JSON dumps;
//  - PacketTracer end to end: Perfetto JSON + link series files written,
//    journeys assembled, instrumentation invisible to orchestrator results;
//  - TimeSeries growth (record_extending) and CSV/JSONL dumps.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/orchestrator.hpp"
#include "core/spec.hpp"
#include "routing/routing.hpp"
#include "sim/flat_state.hpp"
#include "sim/network.hpp"
#include "stats/sink.hpp"
#include "stats/timeseries.hpp"
#include "trace/flight_recorder.hpp"
#include "trace/trace.hpp"
#include "trace/tracer.hpp"
#include "traffic/generator.hpp"

namespace ofar {
namespace {

namespace fs = std::filesystem;

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// ---- deterministic sampling ----

TEST(TraceSampling, DenominatorOneSamplesEverything) {
  for (u64 seq = 0; seq < 1000; ++seq) {
    EXPECT_TRUE(trace::should_sample(seq, 0));
    EXPECT_TRUE(trace::should_sample(seq, 1));
  }
}

TEST(TraceSampling, IsPureAndRoughlyUniform) {
  u64 hits = 0;
  for (u64 seq = 0; seq < 64000; ++seq) {
    const bool s = trace::should_sample(seq, 64);
    EXPECT_EQ(s, trace::should_sample(seq, 64));  // pure in (seq, denom)
    hits += s ? 1 : 0;
  }
  // 1/64 of 64000 = 1000 expected; the hash should not be wildly biased.
  EXPECT_GT(hits, 700u);
  EXPECT_LT(hits, 1300u);
}

// ---- trace-stream determinism across sim_threads ----

SimConfig sharded_cfg(RingKind ring) {
  SimConfig cfg;
  cfg.h = 2;
  cfg.seed = 12345;
  cfg.routing = RoutingKind::kOfar;
  cfg.ring = ring;
  cfg.sim_shards = 4;
  return cfg;
}

/// Serializes every sampled TraceEvent (provenance included) into one
/// string: any cross-thread reordering or field divergence changes it.
std::string trace_stream(const SimConfig& cfg, unsigned sim_threads,
                         u32 sample) {
  Network net(cfg);
  net.set_sim_threads(sim_threads);
  net.set_trace_sampling(sample);
  std::string stream;
  u64 events = 0;
  net.set_tracer([&](const TraceEvent& ev) {
    JsonWriter w;
    trace::append_event_json(w, ev);
    stream += w.str();
    stream += '\n';
    ++events;
  });
  net.set_traffic(std::make_unique<BernoulliSource>(
      TrafficPattern::adversarial(1), 0.7, cfg.seed));
  net.run(1500);
  EXPECT_GT(events, 100u);
  return stream;
}

TEST(TraceThreadDeterminism, PhysicalRingStreamBitIdentical) {
  const SimConfig cfg = sharded_cfg(RingKind::kPhysical);
  const std::string one = trace_stream(cfg, 1, 4);
  EXPECT_EQ(one, trace_stream(cfg, 2, 4));
  EXPECT_EQ(one, trace_stream(cfg, 4, 4));
}

TEST(TraceThreadDeterminism, EmbeddedRingStreamBitIdentical) {
  const SimConfig cfg = sharded_cfg(RingKind::kEmbedded);
  const std::string one = trace_stream(cfg, 1, 4);
  EXPECT_EQ(one, trace_stream(cfg, 2, 4));
  EXPECT_EQ(one, trace_stream(cfg, 4, 4));
}

TEST(TraceThreadDeterminism, SampledStreamIsSubsetOfFullStream) {
  // Sampling must only drop whole packets, never reorder the survivors:
  // the 1-in-4 stream's events all appear, in order, in the full stream.
  const SimConfig cfg = sharded_cfg(RingKind::kPhysical);
  std::vector<u64> full, sampled;
  auto collect = [&cfg](u32 sample, std::vector<u64>& out) {
    Network net(cfg);
    net.set_trace_sampling(sample);
    net.set_tracer([&](const TraceEvent& ev) {
      out.push_back((ev.seq << 8) | static_cast<u64>(ev.kind));
    });
    net.set_traffic(std::make_unique<BernoulliSource>(
        TrafficPattern::adversarial(1), 0.5, cfg.seed));
    net.run(800);
  };
  collect(1, full);
  collect(4, sampled);
  ASSERT_GT(sampled.size(), 0u);
  ASSERT_LT(sampled.size(), full.size());
  std::size_t i = 0;
  for (const u64 key : full) {
    if (i < sampled.size() && sampled[i] == key) ++i;
  }
  EXPECT_EQ(i, sampled.size()) << "sampled stream is not an ordered subset";
}

// ---- routing-decision provenance ----

struct Crafted {
  std::unique_ptr<Network> net;
  RouterId at = 0;       ///< carrier router of the group-0 -> group-1 link
  PortId gport = 0;      ///< that global port (the minimal output)
  NodeId src = 0;        ///< a node on `at`
  NodeId dst = 0;        ///< a node in group 1 (minimal route uses gport)
  Packet pkt;
};

/// Drives one crafted route() query the way do_allocation does: a CreditView
/// bound to the router under test, wrapped with the packet into a
/// RouteContext (in_vc 0, lane 0 — the serial kernel's values).
RouteChoice call_route(Network& net, RouterId at, PortId in_port, Packet& pkt,
                       RouteProvenance* prov) {
  CreditView view;
  view.init(net);
  view.bind(net.router(at));
  RouteContext ctx{net, view, at, in_port, 0, pkt, 0, prov};
  return net.policy().route(ctx);
}

Crafted crafted_congestion(RoutingKind routing) {
  SimConfig cfg;
  cfg.h = 2;
  cfg.seed = 7;
  cfg.routing = routing;
  cfg.ring = RingKind::kPhysical;
  Crafted c;
  c.net = std::make_unique<Network>(cfg);
  const Dragonfly& topo = c.net->topo();
  c.at = topo.carrier_router(0, 1);
  c.gport = topo.carrier_port(0, 1);
  for (NodeId n = 0; n < topo.nodes(); ++n) {
    if (topo.router_of_node(n) == c.at) {
      c.src = n;
      break;
    }
  }
  for (NodeId n = 0; n < topo.nodes(); ++n) {
    if (topo.group_of(topo.router_of_node(n)) == 1) {
      c.dst = n;
      break;
    }
  }
  c.pkt.src = c.src;
  c.pkt.dst = c.dst;
  c.pkt.dst_router = topo.router_of_node(c.dst);
  c.pkt.size = static_cast<u16>(cfg.packet_size);
  // Jam the minimal output: zero credits on every VC makes it unavailable
  // and fully occupied, so the misroute threshold condition fires.
  for (auto& credits : c.net->router(c.at).outputs[c.gport].credits)
    credits = 0;
  return c;
}

TEST(RouteProvenanceTest, MinimalConditionWhenUncongested) {
  Crafted c = crafted_congestion(RoutingKind::kOfar);
  // Restore the drained credits: minimal must win on an idle network.
  Network fresh(c.net->config());
  RouteProvenance prov;
  const RouteChoice choice = call_route(
      fresh, c.at, fresh.topo().node_port(fresh.topo().node_slot(c.src)),
      c.pkt, &prov);
  ASSERT_TRUE(choice.valid);
  EXPECT_EQ(choice.misroute, MisrouteKind::kNone);
  EXPECT_EQ(prov.condition, RouteCondition::kMinimal);
  EXPECT_EQ(prov.min_port, c.gport);
  EXPECT_EQ(choice.out_port, prov.min_port);
  EXPECT_EQ(prov.q_min, 0.0f);
}

TEST(RouteProvenanceTest, InjectionQueueMisroutesGloballyAndRecordsIt) {
  Crafted c = crafted_congestion(RoutingKind::kOfar);
  const Dragonfly& topo = c.net->topo();
  RouteProvenance prov;
  const RouteChoice choice = call_route(
      *c.net, c.at, topo.node_port(topo.node_slot(c.src)), c.pkt, &prov);
  ASSERT_TRUE(choice.valid);
  // Injection-queue packets in the source group misroute globally (§IV-A).
  ASSERT_EQ(choice.misroute, MisrouteKind::kGlobal);
  EXPECT_EQ(prov.condition, RouteCondition::kMisrouteGlobal);
  EXPECT_EQ(prov.min_port, c.gport);
  EXPECT_GE(prov.q_min, 1.0f);  // fully occupied minimal output
  EXPECT_LT(prov.chosen_occ, prov.q_min);
  ASSERT_GT(prov.num_candidates, 0u);
  bool chosen_listed = false;
  for (u32 i = 0; i < prov.num_candidates; ++i)
    chosen_listed |= prov.candidates[i] == choice.out_port;
  EXPECT_TRUE(chosen_listed) << "chosen port missing from candidate list";
  EXPECT_EQ(topo.port_class(choice.out_port), PortClass::kGlobal);
}

TEST(RouteProvenanceTest, TransitQueueMisroutesLocallyAndRecordsIt) {
  Crafted c = crafted_congestion(RoutingKind::kOfar);
  const Dragonfly& topo = c.net->topo();
  RouteProvenance prov;
  const RouteChoice choice =
      call_route(*c.net, c.at, topo.first_local_port(), c.pkt, &prov);
  ASSERT_TRUE(choice.valid);
  // Transit queues try local misroute first (§IV-A starvation rule).
  ASSERT_EQ(choice.misroute, MisrouteKind::kLocal);
  EXPECT_EQ(prov.condition, RouteCondition::kMisrouteLocal);
  EXPECT_EQ(topo.port_class(choice.out_port), PortClass::kLocal);
  bool chosen_listed = false;
  for (u32 i = 0; i < prov.num_candidates; ++i)
    chosen_listed |= prov.candidates[i] == choice.out_port;
  EXPECT_TRUE(chosen_listed);
}

TEST(RouteProvenanceTest, OfarLRecordsGlobalEvenFromTransitQueue) {
  Crafted c = crafted_congestion(RoutingKind::kOfarL);
  const Dragonfly& topo = c.net->topo();
  RouteProvenance prov;
  const RouteChoice choice =
      call_route(*c.net, c.at, topo.first_local_port(), c.pkt, &prov);
  ASSERT_TRUE(choice.valid);
  ASSERT_EQ(choice.misroute, MisrouteKind::kGlobal);  // local disabled
  EXPECT_EQ(prov.condition, RouteCondition::kMisrouteGlobal);
}

TEST(RouteProvenanceTest, WaitAtDestinationRecordsWaitBusy) {
  Crafted c = crafted_congestion(RoutingKind::kOfar);
  const Dragonfly& topo = c.net->topo();
  const RouterId dst_router = c.pkt.dst_router;
  const PortId eject = topo.node_port(topo.node_slot(c.dst));
  for (auto& credits : c.net->router(dst_router).outputs[eject].credits)
    credits = 0;
  RouteProvenance prov;
  const RouteChoice choice =
      call_route(*c.net, dst_router, topo.first_local_port(), c.pkt, &prov);
  EXPECT_FALSE(choice.valid);
  EXPECT_EQ(prov.condition, RouteCondition::kWaitBusy);
  EXPECT_EQ(prov.min_port, eject);
}

TEST(RouteProvenanceTest, NullProvenanceChangesNothing) {
  // The prov out-param must never affect the decision (or RNG draws):
  // identical crafted calls with and without it pick the same port.
  Crafted a = crafted_congestion(RoutingKind::kOfar);
  Crafted b = crafted_congestion(RoutingKind::kOfar);
  const Dragonfly& topo = a.net->topo();
  const PortId in = topo.node_port(topo.node_slot(a.src));
  RouteProvenance prov;
  const RouteChoice with = call_route(*a.net, a.at, in, a.pkt, &prov);
  const RouteChoice without = call_route(*b.net, b.at, in, b.pkt, nullptr);
  EXPECT_EQ(with.out_port, without.out_port);
  EXPECT_EQ(with.out_vc, without.out_vc);
  EXPECT_EQ(with.misroute, without.misroute);
}

// ---- flight recorder ----

TraceEvent make_event(RouterId router, u64 seq, Cycle cycle) {
  TraceEvent ev;
  ev.kind = TraceEvent::Kind::kGrant;
  ev.packet = 0;
  ev.router = router;
  ev.seq = seq;
  ev.cycle = cycle;
  return ev;
}

TEST(FlightRecorderTest, KeepsLastNPerRouterOldestFirst) {
  trace::FlightRecorder rec(4, 3);
  for (u64 i = 0; i < 5; ++i) rec.record(make_event(1, i, 100 + i));
  rec.record(make_event(2, 99, 500));
  const auto r1 = rec.snapshot(1);
  ASSERT_EQ(r1.size(), 3u);  // bounded at depth
  EXPECT_EQ(r1[0].seq, 2u);  // oldest retained
  EXPECT_EQ(r1[1].seq, 3u);
  EXPECT_EQ(r1[2].seq, 4u);
  ASSERT_EQ(rec.snapshot(2).size(), 1u);
  EXPECT_TRUE(rec.snapshot(3).empty());
  EXPECT_TRUE(rec.snapshot(77).empty());  // out of range, not UB
  EXPECT_EQ(rec.total_recorded(), 6u);
}

TEST(FlightRecorderTest, DumpJsonEmbedsContext) {
  trace::FlightRecorder rec(2, 4);
  rec.record(make_event(0, 1, 10));
  const std::string path =
      (fs::path(::testing::TempDir()) / "flight.json").string();
  ASSERT_TRUE(rec.dump_json(path, "unit_test", 42, "{\"why\":\"test\"}"));
  const std::string body = slurp(path);
  EXPECT_NE(body.find("\"reason\":\"unit_test\""), std::string::npos);
  EXPECT_NE(body.find("\"context\":{\"why\":\"test\"}"), std::string::npos);
  EXPECT_NE(body.find("\"router\":0"), std::string::npos);
}

// ---- PacketTracer end to end ----

TEST(PacketTracerTest, WritesPerfettoJsonAndLinkSeries) {
  const fs::path dir = fs::path(::testing::TempDir()) / "tracer_e2e";
  fs::create_directories(dir);
  SimConfig cfg;
  cfg.h = 2;
  cfg.seed = 99;
  cfg.routing = RoutingKind::kOfar;
  cfg.ring = RingKind::kPhysical;
  trace::TracerConfig tc;
  tc.out_path = (dir / "trace.json").string();
  tc.links_path = (dir / "links.csv").string();
  tc.sample = 1;
  tc.flight_depth = 8;
  tc.label = "unit|OFAR";
  {
    Network net(cfg);
    net.enable_tracing(tc);
    ASSERT_NE(net.packet_tracer(), nullptr);
    net.set_traffic(std::make_unique<BernoulliSource>(
        TrafficPattern::adversarial(1), 0.3, cfg.seed));
    net.run(1200);
    EXPECT_GT(net.packet_tracer()->events_seen(), 100u);
    EXPECT_GT(net.packet_tracer()->journeys_completed(), 10u);
    ASSERT_NE(net.packet_tracer()->recorder(), nullptr);
    EXPECT_GT(net.packet_tracer()->recorder()->total_recorded(), 0u);
  }  // ~Network -> ~PacketTracer -> finish(): exporters run here
  const std::string trace = slurp(tc.out_path);
  ASSERT_FALSE(trace.empty());
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("\"condition\""), std::string::npos);
  EXPECT_NE(trace.find("minimal"), std::string::npos);
  EXPECT_NE(trace.find("\"label\":\"unit|OFAR\""), std::string::npos);
  const std::string links = slurp(tc.links_path);
  ASSERT_FALSE(links.empty());
  EXPECT_EQ(links.rfind("label,cycle,mean,count\n", 0), 0u);
  EXPECT_NE(links.find(".util,"), std::string::npos);
  EXPECT_NE(links.find(".stall,"), std::string::npos);
}

TEST(PacketTracerTest, DisabledTracingLeavesResultsIdentical) {
  // The acceptance bar: tracing off -> bit-identical, tracing on -> still
  // bit-identical results (it is read-only instrumentation either way).
  const fs::path dir = fs::path(::testing::TempDir()) / "tracer_inert";
  fs::create_directories(dir);
  auto run = [&](bool traced) {
    SimConfig cfg;
    cfg.h = 2;
    cfg.seed = 31;
    cfg.routing = RoutingKind::kOfar;
    cfg.ring = RingKind::kPhysical;
    Network net(cfg);
    if (traced) {
      trace::TracerConfig tc;
      tc.out_path = (dir / "t.json").string();
      tc.sample = 8;
      net.enable_tracing(tc);
    }
    net.set_traffic(std::make_unique<BernoulliSource>(
        TrafficPattern::adversarial(1), 0.4, cfg.seed));
    net.run(1500);
    const Stats& s = net.stats();
    return std::make_tuple(s.delivered_packets(), s.latency().sum,
                           s.global_misroutes(), s.ring_entries());
  };
  EXPECT_EQ(run(false), run(true));
}

// ---- orchestrator integration: instrumentation-only, per-point files ----

RunPoint steady_point(u64 seed) {
  RunPoint p;
  p.kind = RunKind::kSteady;
  p.mechanism = "OFAR";
  p.case_name = "ADV+1";
  p.seed = seed;
  p.cfg.h = 2;
  p.cfg.seed = seed;
  p.cfg.routing = RoutingKind::kOfar;
  p.cfg.ring = RingKind::kPhysical;
  p.pattern = TrafficPattern::adversarial(1);
  p.load = 0.15;
  p.run = RunParams::windows(400, 800);
  return p;
}

TEST(TraceOrchestration, TraceKnobsDoNotChangeKeysOrResults) {
  const fs::path dir = fs::path(::testing::TempDir()) / "trace_orch1";
  fs::create_directories(dir);
  const std::vector<RunPoint> points{steady_point(5)};

  OrchestratorOptions plain;  // no cache: every run executes
  const RunReport a = run_points(points, plain);

  OrchestratorOptions traced = plain;
  traced.trace_out = (dir / "trace.json").string();
  traced.trace_links = (dir / "links.csv").string();
  traced.trace_sample = 1;
  const RunReport b = run_points(points, traced);

  ASSERT_TRUE(a.complete());
  ASSERT_TRUE(b.complete());
  EXPECT_EQ(a.outcomes[0].key, b.outcomes[0].key);
  EXPECT_EQ(results_digest(points, a), results_digest(points, b));
  // A single executed point writes the requested paths verbatim.
  EXPECT_TRUE(fs::exists(dir / "trace.json"));
  EXPECT_TRUE(fs::exists(dir / "links.csv"));
}

TEST(TraceOrchestration, MultiPointRunsWritePerPointFiles) {
  const fs::path dir = fs::path(::testing::TempDir()) / "trace_orch2";
  fs::create_directories(dir);
  const std::vector<RunPoint> points{steady_point(5), steady_point(6)};
  OrchestratorOptions oo;
  oo.trace_out = (dir / "trace.json").string();
  oo.trace_sample = 4;
  const RunReport r = run_points(points, oo);
  ASSERT_TRUE(r.complete());
  // The verbatim path must NOT be used (parallel points would race on it);
  // instead each point gets a label+seed tagged file.
  EXPECT_FALSE(fs::exists(dir / "trace.json"));
  std::size_t files = 0;
  for (const auto& e : fs::directory_iterator(dir)) {
    EXPECT_NE(e.path().filename().string().find("trace."),
              std::string::npos);
    ++files;
  }
  EXPECT_EQ(files, 2u);
}

// ---- TimeSeries growth + dumps (satellite of the link sink) ----

TEST(TimeSeriesExtending, GrowsToCoverLateCycles) {
  TimeSeries ts(0, 0, 100);
  EXPECT_EQ(ts.num_buckets(), 0u);
  ts.record_extending(250, 2.0);
  ASSERT_EQ(ts.num_buckets(), 3u);
  EXPECT_EQ(ts.bucket(2).count, 1u);
  ts.record_extending(10, 4.0);  // earlier cycle: no shrink, correct bucket
  EXPECT_EQ(ts.bucket(0).count, 1u);
  EXPECT_EQ(ts.bucket(0).sum, 4.0);
  // The fixed-window record() still drops out-of-window cycles.
  ts.record(100000, 1.0);
  EXPECT_EQ(ts.num_buckets(), 3u);
}

TEST(TimeSeriesExtending, DumpsCsvAndJsonl) {
  TimeSeries ts(0, 0, 10);
  ts.record_extending(5, 3.0);
  ts.record_extending(25, 7.0);
  const fs::path dir = fs::path(::testing::TempDir());
  const std::string csv_path = (dir / "series.csv").string();
  std::FILE* f = std::fopen(csv_path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ts.dump_csv(f, "lbl");
  std::fclose(f);
  EXPECT_EQ(slurp(csv_path), "lbl,5,3,1\nlbl,25,7,1\n");

  const std::string jsonl_path = (dir / "series.jsonl").string();
  f = std::fopen(jsonl_path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ts.dump_jsonl(f, "lbl");
  std::fclose(f);
  const std::string jsonl = slurp(jsonl_path);
  EXPECT_NE(jsonl.find("\"label\":\"lbl\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"cycle\":5"), std::string::npos);
  EXPECT_NE(jsonl.find("\"count\":1"), std::string::npos);
}

}  // namespace
}  // namespace ofar
