// Router is state + inline queries; this TU compile-checks the header.
#include "sim/router.hpp"
