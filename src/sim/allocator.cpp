#include "sim/allocator.hpp"

#include <algorithm>
#include <bit>

#include "common/check.hpp"

namespace ofar {

// ---------------------------------------------------------------------------
// SeparableAllocator — packed bitmask kernel
// ---------------------------------------------------------------------------

SeparableAllocator::SeparableAllocator(u32 max_ports)
    : max_ports_(max_ports),
      req_at_(static_cast<std::size_t>(max_ports) * kMaxVcs, 0),
      vc_req_(max_ports, 0),
      fwd_mask_(max_ports, 0),
      fwd_req_(static_cast<std::size_t>(max_ports) * max_ports, 0) {
  OFAR_DCHECK(max_ports <= 64);
}

void SeparableAllocator::run(Router& router, std::vector<AllocRequest>& reqs,
                             u32 iterations, Cycle now) {
  if (reqs.empty()) return;
  OFAR_DCHECK(reqs.size() <= 0xFFFF);  // req_at_/fwd_req_ hold u16 indices

  // Build the packed request matrix. At most one request exists per
  // (in_port, in_vc) — each pair has a single head packet — so req_at_ is a
  // perfect map. vc_req_ is cleared lazily via in_mask.
  u64 in_mask = 0;  // inputs with at least one request
  for (u32 i = 0; i < reqs.size(); ++i) {
    OFAR_DCHECK(reqs[i].choice.valid);
    const u32 in = reqs[i].in_port;
    const u32 vc = reqs[i].in_vc;
    OFAR_DCHECK(in < max_ports_);
    OFAR_DCHECK(vc < kMaxVcs);
    if ((in_mask >> in & 1u) == 0) {
      in_mask |= u64{1} << in;
      vc_req_[in] = 0;
    }
    OFAR_DCHECK((vc_req_[in] >> vc & 1u) == 0);
    vc_req_[in] |= static_cast<u8>(1u << vc);
    req_at_[in * kMaxVcs + vc] = static_cast<u16>(i);
  }

  u64 unmatched_in = in_mask;
  u64 matched_out = 0;

  for (u32 it = 0; it < iterations; ++it) {
    // ---- stage 1: per-input VC arbitration (LRS over VC index) ----
    // Each unmatched input forwards at most one request — the LRS pick
    // among its VCs whose chosen output is still unmatched.
    u64 fwd_any = 0;  // outputs forwarded to this iteration
    for (u64 scan = unmatched_in; scan != 0; scan &= scan - 1) {
      const u32 in = static_cast<u32>(std::countr_zero(scan));
      u64 eligible = 0;
      for (u32 vcs = vc_req_[in]; vcs != 0; vcs &= vcs - 1) {
        const u32 vc = static_cast<u32>(std::countr_zero(vcs));
        const AllocRequest& rq = reqs[req_at_[in * kMaxVcs + vc]];
        if ((matched_out >> rq.choice.out_port & 1u) == 0)
          eligible |= u64{1} << vc;
      }
      if (eligible == 0) continue;
      const u32 vc = router.input_arb[in].pick_mask(eligible);
      const u32 ri = req_at_[in * kMaxVcs + vc];
      const u32 out = reqs[ri].choice.out_port;
      if ((fwd_any >> out & 1u) == 0) {
        fwd_any |= u64{1} << out;
        fwd_mask_[out] = 0;
      }
      fwd_mask_[out] |= u64{1} << in;
      fwd_req_[out * max_ports_ + in] = static_cast<u16>(ri);
    }
    if (fwd_any == 0) break;

    // ---- stage 2: per-output input arbitration (LRS over input port) ----
    // Outputs are independent within an iteration (each input forwarded to
    // at most one output), so ascending-bit order is equivalent to the
    // reference's insertion order.
    for (u64 outs = fwd_any; outs != 0; outs &= outs - 1) {
      const u32 out = static_cast<u32>(std::countr_zero(outs));
      const u32 winner_in = router.output_arb[out].pick_mask(fwd_mask_[out]);
      AllocRequest& rq = reqs[fwd_req_[out * max_ports_ + winner_in]];
      rq.granted = true;
      unmatched_in &= ~(u64{1} << winner_in);
      matched_out |= u64{1} << out;
      router.input_arb[winner_in].grant(rq.in_vc, now);
      router.output_arb[out].grant(winner_in, now);
    }
  }
}

// ---------------------------------------------------------------------------
// ReferenceAllocator — retained per-port-vector specification
// ---------------------------------------------------------------------------

ReferenceAllocator::ReferenceAllocator(u32 max_ports)
    : by_input_(max_ports),
      by_output_(max_ports),
      matched_in_(max_ports, 0),
      matched_out_(max_ports, 0) {
  for (auto& lane : by_input_) lane.reserve(8);
  for (auto& lane : by_output_) lane.reserve(8);
  touched_inputs_.reserve(max_ports);
  touched_outputs_.reserve(max_ports);
  vc_candidates_.reserve(8);
  in_candidates_.reserve(max_ports);
}

void ReferenceAllocator::run(Router& router, std::vector<AllocRequest>& reqs,
                             u32 iterations, Cycle now) {
  if (reqs.empty()) return;

  touched_inputs_.clear();
  for (u32 i = 0; i < reqs.size(); ++i) {
    OFAR_DCHECK(reqs[i].choice.valid);
    const PortId in = reqs[i].in_port;
    if (by_input_[in].empty()) touched_inputs_.push_back(in);
    by_input_[in].push_back(i);
    matched_in_[in] = 0;
    matched_out_[reqs[i].choice.out_port] = 0;
  }

  for (u32 it = 0; it < iterations; ++it) {
    // ---- stage 1: per-input VC arbitration (LRS over VC index) ----
    touched_outputs_.clear();
    bool any = false;
    for (const u32 in : touched_inputs_) {
      if (matched_in_[in]) continue;
      vc_candidates_.clear();
      for (const u32 ri : by_input_[in]) {
        const AllocRequest& rq = reqs[ri];
        if (!matched_out_[rq.choice.out_port])
          vc_candidates_.push_back(rq.in_vc);
      }
      if (vc_candidates_.empty()) continue;
      const u32 vc = router.input_arb[in].pick(vc_candidates_);
      for (const u32 ri : by_input_[in]) {
        if (reqs[ri].in_vc == vc &&
            !matched_out_[reqs[ri].choice.out_port]) {
          const PortId out = reqs[ri].choice.out_port;
          if (by_output_[out].empty()) touched_outputs_.push_back(out);
          by_output_[out].push_back(ri);
          any = true;
          break;
        }
      }
    }
    if (!any) break;

    // ---- stage 2: per-output input arbitration (LRS over input port) ----
    for (const u32 out : touched_outputs_) {
      if (by_output_[out].empty()) continue;
      if (!matched_out_[out]) {
        in_candidates_.clear();
        for (const u32 ri : by_output_[out])
          in_candidates_.push_back(reqs[ri].in_port);
        const u32 winner_in = router.output_arb[out].pick(in_candidates_);
        for (const u32 ri : by_output_[out]) {
          AllocRequest& rq = reqs[ri];
          if (rq.in_port != winner_in) continue;
          rq.granted = true;
          matched_in_[winner_in] = 1;
          matched_out_[out] = 1;
          router.input_arb[winner_in].grant(rq.in_vc, now);
          router.output_arb[out].grant(winner_in, now);
          break;
        }
      }
      by_output_[out].clear();
    }
  }

  // Leave scratch clean for the next router.
  for (const u32 in : touched_inputs_) by_input_[in].clear();
  for (const u32 out : touched_outputs_) by_output_[out].clear();
}

}  // namespace ofar
