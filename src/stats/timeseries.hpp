// Bucketed time series: mean of a value keyed by the cycle an event is
// attributed to. Used for the paper's transient experiments (Fig. 6), where
// the latency of each delivered packet is accounted to the cycle the packet
// was *sent* (generated), not the cycle it arrived.
#pragma once

#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace ofar {

class TimeSeries {
 public:
  TimeSeries() = default;

  /// Buckets cover [start, start + horizon); events outside are dropped.
  TimeSeries(Cycle start, Cycle horizon, u32 bucket_width)
      : start_(start), bucket_width_(bucket_width),
        buckets_((horizon + bucket_width - 1) / bucket_width) {
    OFAR_CHECK(bucket_width > 0);
  }

  void record(Cycle at, double value) {
    if (at < start_) return;
    const u64 idx = (at - start_) / bucket_width_;
    if (idx >= buckets_.size()) return;
    // GCC 12 emits a spurious -Warray-bounds here when `at` is a constant
    // beyond the window in test code, despite the guard above.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Warray-bounds"
    buckets_[idx].sum += value;
    ++buckets_[idx].count;
#pragma GCC diagnostic pop
  }

  struct Bucket {
    double sum = 0.0;
    u64 count = 0;
    double mean() const { return count == 0 ? 0.0 : sum / count; }
  };

  std::size_t num_buckets() const noexcept { return buckets_.size(); }
  const Bucket& bucket(std::size_t i) const { return buckets_[i]; }
  /// Cycle at the centre of bucket i.
  Cycle bucket_mid(std::size_t i) const {
    return start_ + i * bucket_width_ + bucket_width_ / 2;
  }
  u32 bucket_width() const noexcept { return bucket_width_; }

 private:
  Cycle start_ = 0;
  u32 bucket_width_ = 1;
  std::vector<Bucket> buckets_;
};

}  // namespace ofar
