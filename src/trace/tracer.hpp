// PacketTracer: the tracing subsystem's event consumer (DESIGN.md §11).
//
// Installed by Network::enable_tracing as the TraceEvent callback, it
// assembles the sampled packets' per-hop journeys, feeds the per-link
// utilisation / credit-stall TimeSeries sink and the bounded flight
// recorder, and writes the exporters on finish() (or destruction):
//
//  - cfg.out_path: Chrome trace-event JSON — one Perfetto process per
//    packet, one thread per visited router, spans carrying the
//    routing-decision provenance (perfetto.hpp);
//  - cfg.links_path: per-link TimeSeries (utilisation in phits/bucket and
//    mean queue-wait), CSV or JSONL by extension;
//  - on_audit_failure / on_deadlock: flight-recorder JSON post-mortems.
//
// The tracer is strictly read-only instrumentation fed by a
// deterministically ordered event stream (shard-staged commits), so its
// outputs are bit-identical at any sim_threads.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/phase.hpp"
#include "common/thread_annotations.hpp"
#include "sim/network.hpp"
#include "stats/timeseries.hpp"
#include "trace/flight_recorder.hpp"
#include "trace/trace.hpp"

namespace ofar::trace {

// Serial-only as a whole: the tracer mutates per-packet journey state on
// every event, so the sharded kernel stages TraceEvents in ShardState and
// flushes them here from the serial commit, in shard-ascending order
// (DESIGN.md §11).
class OFAR_SERIAL_ONLY PacketTracer {
 public:
  PacketTracer(const Network& net, TracerConfig cfg);
  ~PacketTracer();  // finish() safety net
  PacketTracer(const PacketTracer&) = delete;
  PacketTracer& operator=(const PacketTracer&) = delete;

  void on_event(const TraceEvent& ev) OFAR_REQUIRES_SERIAL;

  /// Writes the configured exporters once (idempotent; also run by the
  /// destructor). Safe to call mid-run for a snapshot of completed work.
  void finish();

  /// Flight-recorder post-mortems. `context_json` is embedded verbatim.
  void on_audit_failure(Cycle now, const std::string& report_json);
  /// Rate-limited (at most 3 dumps per run) deadlock forensics hook.
  void on_deadlock(Cycle now, u64 stalled, u64 worst_wait);

  const TracerConfig& config() const noexcept { return cfg_; }
  u64 events_seen() const noexcept { return events_; }
  u64 journeys_completed() const noexcept { return completed_; }
  u64 journeys_open() const noexcept { return open_.size(); }
  const FlightRecorder* recorder() const noexcept { return recorder_.get(); }

 private:
  /// One sampled packet's event sequence, inject -> deliver.
  struct Journey {
    u64 seq = 0;
    NodeId src = 0;
    NodeId dst = 0;
    Cycle inject = 0;
    bool delivered = false;
    Cycle deliver_cycle = 0;
    std::vector<TraceEvent> hops;  ///< kGrant/kRing*/kDeliver, in order
  };

  /// Per-link series, fed by sampled grants. Utilisation is therefore an
  /// estimator: multiply by the sampling denominator for absolute phits.
  struct LinkSeries {
    TimeSeries util;   ///< phits entering the link per bucket (sum)
    TimeSeries stall;  ///< mean queue-wait of grants onto the link
  };

  void export_journeys() const;
  void export_links();
  /// Lazily opens cfg.links_path (header included for CSV). Shared by the
  /// windowed series' flush sinks — which stream retired buckets during
  /// the run — and the final export. Returns nullptr on open failure.
  std::FILE* links_file();
  /// Label prefix for channel `ch`'s series rows ("r<N>.p<M>.<class>").
  std::string link_label(ChannelId ch) const;
  /// Installs the windowed flush sinks for a fresh LinkSeries.
  void init_link_series(ChannelId ch, LinkSeries& series);
  std::string flight_dump_path(const char* suffix) const;

  const Network& net_;
  TracerConfig cfg_;
  u64 events_ = 0;
  u64 completed_ = 0;
  std::map<u64, Journey> open_;   ///< seq -> in-flight journey (ordered)
  std::vector<Journey> done_;     ///< completed journeys, delivery order
  std::map<ChannelId, LinkSeries> links_;  ///< ordered by channel id
  std::FILE* links_file_ = nullptr;  ///< open once a windowed series spills
  std::unique_ptr<FlightRecorder> recorder_;
  u32 forensic_dumps_ = 0;
  bool finished_ = false;
};

}  // namespace ofar::trace
