// Iterative separable batch allocator (paper §V, resembling Gupta &
// McKeown's crossbar scheduler): per cycle, each input unit requests one
// output for its selected head packet; input-level and output-level LRS
// arbiters match requests over a configurable number of iterations
// (paper uses 3). Grants are per packet ("batch"): the winner streams its
// whole packet before the ports rejoin arbitration.
//
// Two implementations of the identical arbitration:
//
//   * SeparableAllocator — the hot-path kernel. Request/match state is kept
//     in packed bitmask words (one u64 of input ports per output, one u8 of
//     VCs per input) scanned with countr_zero, so an arbiter round is a few
//     word operations instead of nested per-port vector walks. Equivalence
//     holds because LRS picks are order-independent (strict min over
//     (last_grant, index) — see LrsArbiter::pick_mask) and stage 1 forwards
//     at most one request per input per iteration, making stage-2 outputs
//     independent within an iteration.
//   * ReferenceAllocator — the original per-port-vector implementation,
//     retained verbatim as the executable specification. Not used on the
//     hot path; tests/test_alloc_equiv.cpp pits the packed kernel against
//     it over randomized and exhaustive-small request matrices.
//
// Both own reusable scratch — allocation runs for every active router every
// cycle, so neither touches the heap in steady state.
#pragma once

#include <vector>

#include "common/phase.hpp"
#include "common/types.hpp"
#include "routing/routing.hpp"
#include "sim/router.hpp"

namespace ofar {

struct AllocRequest {
  PortId in_port = 0;
  VcId in_vc = 0;
  PacketId packet = kInvalidPacket;
  RouteChoice choice{};
  bool granted = false;
};

// Shard-local: each shard owns one allocator instance (in its ShardState),
// and a router is only ever advanced by its owning shard, so the scratch
// arrays below are never shared across workers.
class OFAR_SHARD_LOCAL SeparableAllocator {
 public:
  /// Width of the per-input VC request bitmask; matches the "input VC
  /// bitmask is 8 bits wide" construction check (Router::input_mask).
  static constexpr u32 kMaxVcs = 8;

  /// `max_ports` = ports per router (scratch sizing); must be <= 64 so an
  /// input-port set packs into one u64 (checked at Network construction).
  explicit SeparableAllocator(u32 max_ports);

  /// Runs the separable allocation over `reqs` (all requests of one router
  /// for this cycle). Marks winning requests granted and updates the
  /// router's LRS arbiter state. At most one grant per input port and per
  /// output port. Parallel-legal: each shard owns one allocator (in its
  /// ShardState) and only passes routers of its own shard.
  OFAR_PARALLEL_PHASE void run(Router& router,
                               std::vector<AllocRequest>& reqs,
                               u32 iterations, Cycle now);

 private:
  u32 max_ports_ = 0;
  // Request matrix, rebuilt per run (lazily cleared via the in-use masks):
  std::vector<u16> req_at_;   // [in * kMaxVcs + vc] -> index into reqs
  std::vector<u8> vc_req_;    // [in] -> bitmask of requesting VCs
  // Stage-1 forwards of the current iteration:
  std::vector<u64> fwd_mask_;  // [out] -> bitmask of forwarding input ports
  std::vector<u16> fwd_req_;   // [out * max_ports + in] -> index into reqs
};

// The pre-packed implementation, kept as the executable spec for the
// equivalence suite (see file comment). Shard-local for the same ownership
// reason as SeparableAllocator, though only tests construct it today.
class OFAR_SHARD_LOCAL ReferenceAllocator {
 public:
  explicit ReferenceAllocator(u32 max_ports);

  OFAR_PARALLEL_PHASE void run(Router& router,
                               std::vector<AllocRequest>& reqs,
                               u32 iterations, Cycle now);

 private:
  std::vector<std::vector<u32>> by_input_;   // request idx per input port
  std::vector<std::vector<u32>> by_output_;  // request idx per output port
  std::vector<u8> matched_in_;
  std::vector<u8> matched_out_;
  std::vector<u32> touched_inputs_;   // input ports with requests this cycle
  std::vector<u32> touched_outputs_;  // output ports forwarded to, stage 2
  std::vector<u32> vc_candidates_;
  std::vector<u32> in_candidates_;
};

}  // namespace ofar
