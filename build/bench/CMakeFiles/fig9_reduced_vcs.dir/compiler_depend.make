# Empty compiler generated dependencies file for fig9_reduced_vcs.
# This may be replaced when dependencies are built.
