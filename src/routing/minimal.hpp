// MIN: deterministic minimal routing (paper §V baseline).
//
// Packets follow the unique l-g-l minimal path under the hop-ordered VC
// discipline; no adaptivity, no misrouting. MIN is the latency reference
// under uniform traffic and the pathological case under adversarial
// patterns (all inter-group traffic of a group shares one global link).
#pragma once

#include "routing/routing.hpp"

namespace ofar {

class MinimalPolicy final : public RoutingPolicy {
 public:
  const char* name() const noexcept override { return "MIN"; }

  RouteChoice route(RouteContext& ctx) override;
};

}  // namespace ofar
