#include "routing/routing.hpp"

#include "common/check.hpp"
#include "core/ofar_routing.hpp"
#include "routing/minimal.hpp"
#include "routing/par.hpp"
#include "routing/piggyback.hpp"
#include "routing/ugal.hpp"
#include "routing/valiant.hpp"
#include "sim/network.hpp"

namespace ofar {

const char* to_string(RouteCondition c) noexcept {
  switch (c) {
    case RouteCondition::kNone: return "none";
    case RouteCondition::kMinimal: return "minimal";
    case RouteCondition::kValiantPhase: return "valiant_phase";
    case RouteCondition::kMisrouteLocal: return "misroute_local";
    case RouteCondition::kMisrouteGlobal: return "misroute_global";
    case RouteCondition::kRingEnter: return "ring_enter";
    case RouteCondition::kRingRide: return "ring_ride";
    case RouteCondition::kRingExit: return "ring_exit";
    case RouteCondition::kWaitBusy: return "wait_busy";
    case RouteCondition::kWaitStarved: return "wait_starved";
  }
  return "unknown";
}

void RoutingPolicy::on_inject(Network&, Packet&, RouterId) {}
void RoutingPolicy::bind_lanes(u32) {}
void RoutingPolicy::tick(Network&) {}
void RoutingPolicy::save_state(CkptWriter&) const {}
void RoutingPolicy::load_state(CkptReader&) {}

PortId min_port_to_router(const Network& net, RouterId cur, RouterId dst) {
  return net.topo().min_next_port(cur, dst);
}

PortId min_port_to_group(const Network& net, RouterId cur, GroupId g) {
  const Dragonfly& topo = net.topo();
  OFAR_DCHECK(topo.group_of(cur) != g);
  const RouterId carrier = topo.carrier_router(topo.group_of(cur), g);
  if (carrier == cur) return topo.carrier_port(topo.group_of(cur), g);
  return topo.local_port(topo.local_of(cur), topo.local_of(carrier));
}

VcId ordered_vc(const Network& net, RouterId at, PortId port,
                const Packet& pkt) {
  const SimConfig& cfg = net.config();
  switch (net.topo().port_class(port)) {
    case PortClass::kLocal:
      // The local VC level must skip indexes of missing hops (paper §I):
      // l2 after g1 uses local VC 1 even when l1 never happened, and the
      // second hop of an intra-group Valiant detour uses VC 1 as well.
      return static_cast<VcId>(std::min<u32>(
          pkt.global_hops + pkt.local_hops_in_group, cfg.vcs_local - 1));
    case PortClass::kGlobal:
      return static_cast<VcId>(
          std::min<u32>(pkt.global_hops, cfg.vcs_global - 1));
    default:
      return 0;  // ejection
  }
  (void)at;
}

PortId valiant_next_port(const Network& net, RouterId at, Packet& pkt) {
  const Dragonfly& topo = net.topo();
  if (!pkt.valiant_done) {
    if (pkt.inter_router != kInvalidRouter) {
      if (at == pkt.inter_router) pkt.valiant_done = true;
    } else if (pkt.inter_group != kInvalidGroup &&
               topo.group_of(at) == pkt.inter_group) {
      pkt.valiant_done = true;
    } else if (pkt.inter_group == kInvalidGroup) {
      pkt.valiant_done = true;  // no intermediate assigned: pure minimal
    }
  }
  if (!pkt.valiant_done) {
    if (pkt.inter_router != kInvalidRouter)
      return min_port_to_router(net, at, pkt.inter_router);
    return min_port_to_group(net, at, pkt.inter_group);
  }
  if (at == pkt.dst_router)
    return topo.node_port(topo.node_slot(pkt.dst));
  return min_port_to_router(net, at, pkt.dst_router);
}

std::unique_ptr<RoutingPolicy> make_policy(const SimConfig& cfg) {
  switch (cfg.routing) {
    case RoutingKind::kMin: return std::make_unique<MinimalPolicy>();
    case RoutingKind::kVal: return std::make_unique<ValiantPolicy>(cfg);
    case RoutingKind::kPb: return std::make_unique<PiggybackPolicy>(cfg);
    case RoutingKind::kUgal: return std::make_unique<UgalPolicy>(cfg);
    case RoutingKind::kPar: return std::make_unique<ParPolicy>(cfg);
    case RoutingKind::kOfar:
      return std::make_unique<OfarPolicy>(cfg, /*allow_local=*/true);
    case RoutingKind::kOfarL:
      return std::make_unique<OfarPolicy>(cfg, /*allow_local=*/false);
  }
  OFAR_CHECK_MSG(false, "unknown routing kind");
  return nullptr;
}

}  // namespace ofar
