// Quickstart: build a dragonfly, pick a routing mechanism, offer uniform
// traffic, and read latency/throughput — the 30-second tour of the API.
//
//   ./quickstart [--h 4] [--routing OFAR|OFAR-L|MIN|VAL|PB|UGAL]
//                [--pattern UN|ADV+n] [--load 0.2]
//                [--warmup 5000] [--measure 10000] [--seed 1]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/cli.hpp"
#include "core/experiment.hpp"

int main(int argc, char** argv) {
  using namespace ofar;
  CommandLine cli(argc, argv);

  SimConfig cfg;
  cfg.h = static_cast<u32>(cli.get_uint("h", 4));
  cfg.seed = cli.get_uint("seed", 1);
  cfg.thresholds.nonmin_factor =
      cli.get_double("factor", cfg.thresholds.nonmin_factor);
  cfg.thresholds.min_gap = cli.get_double("gap", cfg.thresholds.min_gap);
  cfg.deadlock_timeout =
      static_cast<u32>(cli.get_uint("timeout", cfg.deadlock_timeout));
  cfg.congestion_throttle = cli.get_bool("throttle", false);
  cfg.throttle_on = cli.get_double("throttle-on", cfg.throttle_on);
  cfg.throttle_off = cli.get_double("throttle-off", cfg.throttle_off);
  if (!parse_routing_kind(cli.get_string("routing", "OFAR"), cfg.routing)) {
    std::fprintf(stderr, "unknown --routing value\n");
    return 1;
  }
  if (cfg.vc_ordered()) cfg.ring = RingKind::kNone;

  RunParams params;
  params.warmup = cli.get_uint("warmup", 5'000);
  params.measure = cli.get_uint("measure", 10'000);
  const double load = cli.get_double("load", 0.2);

  const std::string pattern_text = cli.get_string("pattern", "UN");
  TrafficPattern pattern = TrafficPattern::uniform();
  if (pattern_text.rfind("ADV+", 0) == 0) {
    pattern = TrafficPattern::adversarial(
        static_cast<u32>(std::strtoul(pattern_text.c_str() + 4, nullptr, 10)));
  } else if (pattern_text != "UN") {
    std::fprintf(stderr, "unknown --pattern (use UN or ADV+n)\n");
    return 1;
  }

  for (const auto& key : cli.unused_keys()) {
    std::fprintf(stderr, "unknown option --%s\n", key.c_str());
    return 1;
  }

  std::printf("config: %s\n", cfg.summary().c_str());
  std::printf("offering %s traffic at %.3f phits/(node*cycle)...\n",
              pattern.describe().c_str(), load);

  const SteadyResult r = run_steady(cfg, pattern, load, params);

  std::printf("accepted load : %.4f phits/(node*cycle)\n", r.accepted_load);
  std::printf("avg latency   : %.1f cycles (stddev %.1f)\n", r.avg_latency,
              r.stddev_latency);
  std::printf("delivered     : %llu packets\n",
              static_cast<unsigned long long>(r.delivered_packets));
  std::printf("misroutes     : %llu local, %llu global\n",
              static_cast<unsigned long long>(r.local_misroutes),
              static_cast<unsigned long long>(r.global_misroutes));
  std::printf("escape ring   : %llu entries\n",
              static_cast<unsigned long long>(r.ring_entries));
  std::printf("watchdog      : %llu stalled packets (worst stall %llu "
              "cycles)\n",
              static_cast<unsigned long long>(r.stalled_packets),
              static_cast<unsigned long long>(r.worst_stall));
  return 0;
}
