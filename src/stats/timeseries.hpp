// Bucketed time series: mean of a value keyed by the cycle an event is
// attributed to. Used for the paper's transient experiments (Fig. 6), where
// the latency of each delivered packet is accounted to the cycle the packet
// was *sent* (generated), not the cycle it arrived.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace ofar {

class TimeSeries {
 public:
  TimeSeries() = default;

  /// Buckets cover [start, start + horizon); events outside are dropped.
  TimeSeries(Cycle start, Cycle horizon, u32 bucket_width)
      : start_(start), bucket_width_(bucket_width),
        buckets_((horizon + bucket_width - 1) / bucket_width) {
    OFAR_CHECK(bucket_width > 0);
  }

  void record(Cycle at, double value) {
    Bucket* b = bucket_for(at);
    if (b == nullptr) return;
    b->sum += value;
    ++b->count;
  }

  /// record() variant that grows the window to cover `at` instead of
  /// dropping it. Used by sinks whose horizon is unknown up front (the
  /// per-link trace series); the fixed-window record() stays the transient
  /// experiments' contract.
  void record_extending(Cycle at, double value) {
    if (at < start_) return;
    const u64 idx = (at - start_) / bucket_width_;
    if (idx >= buckets_.size()) buckets_.resize(idx + 1);
    Bucket* b = buckets_.data() + idx;
    b->sum += value;
    ++b->count;
  }

  struct Bucket {
    double sum = 0.0;
    u64 count = 0;
    double mean() const { return count == 0 ? 0.0 : sum / count; }
  };

  std::size_t num_buckets() const noexcept { return buckets_.size(); }
  const Bucket& bucket(std::size_t i) const { return buckets_[i]; }
  /// Cycle at the centre of bucket i.
  Cycle bucket_mid(std::size_t i) const {
    return start_ + i * bucket_width_ + bucket_width_ / 2;
  }
  u32 bucket_width() const noexcept { return bucket_width_; }

  /// Appends one CSV row per non-empty bucket: label,cycle,mean,count
  /// (cycle is the bucket centre). The caller owns the stream and any
  /// header line.
  void dump_csv(std::FILE* f, const std::string& label) const;
  /// Appends one JSONL record per non-empty bucket:
  /// {"label":...,"cycle":...,"mean":...,"count":...}
  void dump_jsonl(std::FILE* f, const std::string& label) const;

 private:
  /// Bucket covering cycle `at`, or nullptr when `at` falls outside the
  /// window. The single guarded pointer computation replaces an operator[]
  /// that GCC 12 flagged with a spurious -Warray-bounds on constant-folded
  /// out-of-window cycles in test code.
  Bucket* bucket_for(Cycle at) noexcept {
    if (at < start_) return nullptr;
    const u64 idx = (at - start_) / bucket_width_;
    return idx < buckets_.size() ? buckets_.data() + idx : nullptr;
  }

  Cycle start_ = 0;
  u32 bucket_width_ = 1;
  std::vector<Bucket> buckets_;
};

}  // namespace ofar
