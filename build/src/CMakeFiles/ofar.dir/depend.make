# Empty dependencies file for ofar.
# This may be replaced when dependencies are built.
