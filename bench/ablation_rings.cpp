// Ablation bench (DESIGN.md extension #3; paper §VII reliability
// discussion): the escape subnetwork's Hamiltonian rings.
//
//   (1) Topological study — the paper states "up to h edge-disjoint
//       Hamiltonian rings could be embedded" on the dragonfly. We greedily
//       collect pairwise edge-disjoint rings over all constructible strides
//       and report the count per radix (a pure-topology computation).
//   (2) Performance study — OFAR with the escape ring built at different
//       strides, and with different livelock budgets (max_ring_exits).
//       Because the ring is only a deadlock drain, neither choice should
//       move steady-state numbers noticeably (the paper's Fig. 8 argument).
#include "bench_common.hpp"

#include <memory>

#include "topology/hamiltonian.hpp"

int main(int argc, char** argv) {
  using namespace ofar;
  using namespace ofar::bench;
  CommandLine cli(argc, argv);
  BenchOptions opts = BenchOptions::parse(cli, 4'000, 6'000);
  if (!cli.has("h")) opts.h = 3;
  if (!reject_unknown(cli)) return 1;

  // ---- (1) edge-disjoint embedded rings per radix ----
  Table rings({"h", "groups", "constructible_strides",
               "edge_disjoint_rings", "paper_bound_h"});
  for (u32 h = 2; h <= 6; ++h) {
    Dragonfly topo(h);
    std::vector<std::unique_ptr<HamiltonianRing>> disjoint;
    u32 constructible = 0;
    for (u32 stride = 1; stride < topo.groups(); ++stride) {
      if (!HamiltonianRing::constructible(topo, stride)) continue;
      ++constructible;
      for (u32 variant = 0; variant < topo.a(); ++variant) {
        auto candidate =
            std::make_unique<HamiltonianRing>(topo, stride, variant);
        bool ok = true;
        for (const auto& existing : disjoint)
          if (!HamiltonianRing::edge_disjoint(topo, *existing, *candidate)) {
            ok = false;
            break;
          }
        if (ok) {
          disjoint.push_back(std::move(candidate));
          break;  // at most one ring per stride (distinct global links)
        }
      }
    }
    rings.add_row({u64{h}, u64{topo.groups()}, u64{constructible},
                   u64{disjoint.size()}, u64{h}});
  }
  rings.print("Edge-disjoint embedded Hamiltonian rings (greedy over "
              "strides; paper §VII claims up to h exist)");
  dump_csv(rings, opts, "ablation_rings_topology");

  // ---- (2) OFAR sensitivity to the escape ring's shape ----
  const TrafficPattern pattern = TrafficPattern::adversarial(opts.h);
  const double load = 0.35;
  Table perf({"config", "accepted", "avg_latency", "ring_entries"});
  auto measure = [&](const std::string& label, const SimConfig& cfg) {
    const SteadyResult r = run_steady(cfg, pattern, load, opts.run);
    perf.add_row({label, r.accepted_load, r.avg_latency,
                  u64{r.ring_entries}});
    std::printf(".");
    std::fflush(stdout);
  };
  {
    Dragonfly topo(opts.h);
    for (u32 stride : {1u, 2u, 3u}) {
      if (!HamiltonianRing::constructible(topo, stride)) continue;
      SimConfig cfg = opts.config(RoutingKind::kOfar);
      cfg.ring = RingKind::kEmbedded;
      cfg.ring_stride = stride;
      measure("stride=" + std::to_string(stride), cfg);
    }
    for (u32 exits : {0u, 1u, 4u, 16u}) {
      SimConfig cfg = opts.config(RoutingKind::kOfar);
      cfg.max_ring_exits = exits;
      measure("max_exits=" + std::to_string(exits), cfg);
    }
  }
  std::printf("\n");
  perf.print("OFAR under ADV+h at load " + Table::format(load) +
             ": escape-ring shape sensitivity (should be flat)");
  dump_csv(perf, opts, "ablation_rings_perf");
  return 0;
}
