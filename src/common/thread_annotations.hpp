// Clang thread-safety capability annotations (DESIGN.md §12).
//
// A thin shim over clang's -Wthread-safety attribute set
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html). On clang the
// macros expand to the real attributes and the CI thread-safety build
// checks them with -Wthread-safety -Werror; on GCC (the default local
// toolchain) they expand to nothing, so codegen and golden digests are
// identical with or without them.
//
// Two capability families are annotated in this codebase:
//
//  - real mutexes: ShardPool's worker-pool state is guarded by an
//    ofar::tsa::Mutex (a std::mutex wrapped so the analysis can see it —
//    libstdc++'s std::mutex carries no capability attributes);
//  - the phantom "serial_phase" capability (below): a zero-size token
//    representing "we are inside a serial section of a simulation cycle".
//    The kernel's serial commit paths REQUIRE it, step() acquires it
//    around the serial sections and releases it across parallel phases,
//    so clang statically rejects, say, a deliver_packet() call from
//    inside a shard program. It is the compile-time twin of the
//    OFAR_SERIAL_ONLY marker that tools/ofar_lint checks (phase.hpp).
#pragma once

#include <mutex>

#if defined(__clang__) && !defined(SWIG)
#define OFAR_TSA(x) __attribute__((x))
#else
#define OFAR_TSA(x)
#endif

#define OFAR_CAPABILITY(x) OFAR_TSA(capability(x))
#define OFAR_SCOPED_CAPABILITY OFAR_TSA(scoped_lockable)
#define OFAR_GUARDED_BY(x) OFAR_TSA(guarded_by(x))
#define OFAR_PT_GUARDED_BY(x) OFAR_TSA(pt_guarded_by(x))
#define OFAR_REQUIRES(...) OFAR_TSA(requires_capability(__VA_ARGS__))
#define OFAR_ACQUIRE(...) OFAR_TSA(acquire_capability(__VA_ARGS__))
#define OFAR_RELEASE(...) OFAR_TSA(release_capability(__VA_ARGS__))
#define OFAR_TRY_ACQUIRE(...) OFAR_TSA(try_acquire_capability(__VA_ARGS__))
#define OFAR_EXCLUDES(...) OFAR_TSA(locks_excluded(__VA_ARGS__))
#define OFAR_ASSERT_CAPABILITY(x) OFAR_TSA(assert_capability(x))
#define OFAR_RETURN_CAPABILITY(x) OFAR_TSA(lock_returned(x))
#define OFAR_NO_THREAD_SAFETY_ANALYSIS OFAR_TSA(no_thread_safety_analysis)

namespace ofar::tsa {

/// std::mutex with capability attributes, so GUARDED_BY/REQUIRES sites can
/// name it. std::lock_guard<Mutex> is understood by the analysis (clang
/// models the std scoped guards); condition-variable waits go through
/// native() inside OFAR_NO_THREAD_SAFETY_ANALYSIS functions — cv wait
/// predicates release and reacquire in a way the analysis cannot model.
class OFAR_CAPABILITY("mutex") Mutex {
 public:
  void lock() OFAR_ACQUIRE() { m_.lock(); }
  void unlock() OFAR_RELEASE() { m_.unlock(); }
  /// The wrapped handle, for std::condition_variable wait sites.
  std::mutex& native() noexcept { return m_; }

 private:
  std::mutex m_;
};

/// The phantom serial-phase capability: no storage, no runtime effect —
/// purely a token the analysis tracks. One global instance stands for "the
/// serial section of the current simulation cycle"; single-threaded
/// drivers and tests are serial by construction and assert it.
class OFAR_CAPABILITY("serial_phase") SerialPhaseCap {
 public:
  void acquire() OFAR_ACQUIRE() OFAR_NO_THREAD_SAFETY_ANALYSIS {}
  void release() OFAR_RELEASE() OFAR_NO_THREAD_SAFETY_ANALYSIS {}
  /// States (without acquiring) that the caller is in a serial context:
  /// used at API boundaries whose callers are serial by contract rather
  /// than by an enclosing SerialSection (constructors, enable_* entry
  /// points, traffic-source callbacks).
  void assert_held() const OFAR_ASSERT_CAPABILITY(this) {}
};

/// The one global serial-phase token (see SerialPhaseCap).
inline SerialPhaseCap serial_phase;

/// RAII serial-section marker: Network::step* wraps its serial sections in
/// one of these; parallel phases run outside any SerialSection, so calls
/// into OFAR_REQUIRES(serial_phase) functions from shard code fail the
/// clang analysis. Compiles to an empty object everywhere.
class OFAR_SCOPED_CAPABILITY SerialSection {
 public:
  explicit SerialSection(SerialPhaseCap& c) OFAR_ACQUIRE(c) : c_(c) {
    c_.acquire();
  }
  ~SerialSection() OFAR_RELEASE() { c_.release(); }
  SerialSection(const SerialSection&) = delete;
  SerialSection& operator=(const SerialSection&) = delete;

 private:
  SerialPhaseCap& c_;
};

}  // namespace ofar::tsa

/// Shorthand for the kernel's serial-commit contract.
#define OFAR_REQUIRES_SERIAL OFAR_REQUIRES(::ofar::tsa::serial_phase)
