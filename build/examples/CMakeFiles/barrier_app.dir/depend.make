# Empty dependencies file for barrier_app.
# This may be replaced when dependencies are built.
