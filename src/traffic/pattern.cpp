#include "traffic/pattern.hpp"

#include <sstream>

#include "common/check.hpp"

namespace ofar {

TrafficPattern TrafficPattern::uniform() {
  return mix({TrafficComponent{PatternKind::kUniform, 0, 1.0}});
}

TrafficPattern TrafficPattern::adversarial(u32 offset) {
  return mix({TrafficComponent{PatternKind::kAdversarial, offset, 1.0}});
}

TrafficPattern TrafficPattern::stencil2d() {
  return mix({TrafficComponent{PatternKind::kStencil2D, 0, 1.0}});
}

TrafficPattern TrafficPattern::mix(std::vector<TrafficComponent> components) {
  OFAR_CHECK(!components.empty());
  TrafficPattern p;
  p.components_ = std::move(components);
  double acc = 0.0;
  for (const auto& c : p.components_) {
    OFAR_CHECK_MSG(c.weight > 0.0, "component weights must be positive");
    acc += c.weight;
    p.cumulative_.push_back(acc);
  }
  return p;
}

NodeId TrafficPattern::pick(NodeId src, const Dragonfly& topo, Rng& rng,
                            u16& tag_out) const {
  OFAR_DCHECK(!components_.empty());
  std::size_t idx = 0;
  if (components_.size() > 1) {
    const double r = rng.uniform() * cumulative_.back();
    while (idx + 1 < cumulative_.size() && r >= cumulative_[idx]) ++idx;
  }
  tag_out = static_cast<u16>(idx);
  const TrafficComponent& c = components_[idx];

  if (c.kind == PatternKind::kUniform) {
    // Any node but the source itself (source group allowed, paper §V).
    NodeId dst = rng.below(topo.nodes() - 1);
    if (dst >= src) ++dst;
    return dst;
  }
  if (c.kind == PatternKind::kStencil2D) {
    // Grid dimensions: the most square factorisation of the node count.
    const u32 n = topo.nodes();
    u32 nx = 1;
    for (u32 d = 1; d * d <= n; ++d)
      if (n % d == 0) nx = d;
    const u32 ny = n / nx;
    const u32 x = src % nx, y = src / nx;
    // Random von-Neumann neighbour with periodic boundaries.
    u32 dx = x, dy = y;
    switch (rng.below(4)) {
      case 0: dx = (x + 1) % nx; break;
      case 1: dx = (x + nx - 1) % nx; break;
      case 2: dy = (y + 1) % ny; break;
      default: dy = (y + ny - 1) % ny; break;
    }
    NodeId dst = dy * nx + dx;
    if (dst == src) dst = (src + 1) % n;  // degenerate 1-wide grids
    return dst;
  }
  // ADV+offset: random node of group (src_group + offset) mod G. An offset
  // that is a multiple of G degenerates to intra-group traffic; we keep the
  // source node excluded in that case.
  const GroupId dst_group =
      (topo.group_of_node(src) + c.offset) % topo.groups();
  const u32 per_group = topo.a() * topo.p();
  NodeId dst = topo.node_at(topo.router_at(dst_group, 0), 0) +
               rng.below(per_group);
  if (dst == src) dst = (dst_group * per_group) + (dst % per_group == per_group - 1
                                                       ? 0
                                                       : dst % per_group + 1);
  return dst;
}

std::string TrafficPattern::describe() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < components_.size(); ++i) {
    if (i != 0) os << "+";
    const auto& c = components_[i];
    if (c.kind == PatternKind::kUniform) os << "UN";
    else if (c.kind == PatternKind::kStencil2D) os << "STENCIL2D";
    else os << "ADV+" << c.offset;
    if (components_.size() > 1) os << "(" << c.weight << ")";
  }
  return os.str();
}

}  // namespace ofar
