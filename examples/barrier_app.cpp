// Bulk-synchronous application model (the workload class that motivates
// the paper's burst experiment, §VI-C): a program alternates computation
// and communication supersteps separated by barriers. Each communication
// step is a synchronized burst — every node sends a fixed budget of
// packets drawn from a neighbor-exchange-heavy mixture (sequential rank
// placement maps neighbor exchanges to ADV-like offsets, §III).
//
// The example runs several supersteps under PB, OFAR and OFAR-L and
// reports per-step and total communication time — the application-level
// view of Fig. 7's result.
//
//   ./barrier_app [--h 4] [--steps 4] [--packets 150]
//                 [--neighbor-share 0.6] [--seed 1]
#include <cstdio>
#include <memory>
#include <vector>

#include "common/cli.hpp"
#include "sim/network.hpp"
#include "traffic/generator.hpp"

using namespace ofar;

int main(int argc, char** argv) {
  CommandLine cli(argc, argv);
  const u32 h = static_cast<u32>(cli.get_uint("h", 4));
  const u32 steps = static_cast<u32>(cli.get_uint("steps", 4));
  const u32 packets = static_cast<u32>(cli.get_uint("packets", 150));
  const double neighbor = cli.get_double("neighbor-share", 0.6);
  const u64 seed = cli.get_uint("seed", 1);
  for (const auto& key : cli.unused_keys()) {
    std::fprintf(stderr, "unknown option --%s\n", key.c_str());
    return 1;
  }

  // Neighbour exchange with sequential placement: half the neighbour
  // traffic lands one group over (ADV+1), half lands h groups over
  // (ADV+h: the worst-case stencil stride); the rest is all-to-all-ish.
  const TrafficPattern step_pattern = TrafficPattern::mix({
      {PatternKind::kUniform, 0, 1.0 - neighbor},
      {PatternKind::kAdversarial, 1, neighbor / 2},
      {PatternKind::kAdversarial, h, neighbor / 2},
  });

  std::printf("BSP application model: %u supersteps, %u packets/node/step, "
              "pattern %s, h=%u\n\n",
              steps, packets, step_pattern.describe().c_str(), h);
  std::printf("%-7s", "step");
  for (const char* m : {"PB", "OFAR", "OFAR-L"}) std::printf(" %12s", m);
  std::printf("   (cycles per communication phase)\n");

  std::vector<u64> totals(3, 0);
  const RoutingKind kinds[3] = {RoutingKind::kPb, RoutingKind::kOfar,
                                RoutingKind::kOfarL};
  for (u32 step = 0; step < steps; ++step) {
    std::printf("%-7u", step);
    for (int m = 0; m < 3; ++m) {
      SimConfig cfg;
      cfg.h = h;
      cfg.seed = seed + step;  // each superstep draws fresh destinations
      cfg.routing = kinds[m];
      cfg.ring = cfg.vc_ordered() ? RingKind::kNone : RingKind::kPhysical;

      Network net(cfg);
      auto source =
          std::make_unique<BurstSource>(step_pattern, packets, seed + step);
      BurstSource* burst = source.get();
      net.set_traffic(std::move(source));
      while (!(burst->finished() && net.drained()) &&
             net.now() < 10'000'000)
        net.step();
      totals[m] += net.now();
      std::printf(" %12llu", static_cast<unsigned long long>(net.now()));
    }
    std::printf("\n");
  }

  std::printf("%-7s", "total");
  for (int m = 0; m < 3; ++m)
    std::printf(" %12llu", static_cast<unsigned long long>(totals[m]));
  std::printf("\n\napplication communication speedup, OFAR vs PB: %.2fx "
              "(paper reports OFAR consuming bursts in 0.695x PB's time on "
              "average)\n",
              static_cast<double>(totals[0]) /
                  static_cast<double>(totals[1]));
  return 0;
}
