# Empty dependencies file for fig5_advh.
# This may be replaced when dependencies are built.
