// Fig. 9 reproduction: OFAR with deliberately starved resources — an
// embedded escape ring and only 2 VCs on local links / 1 VC on global
// links, no congestion management (paper §VII). Under sustained load the
// canonical network can congest completely; the only drain left is the
// slow escape ring and throughput collapses. The paper uses this to argue
// that a congestion-management layer (future work there, and here) is
// needed for under-provisioned configurations.
//
// We print accepted load AND the deadlock-watchdog counters, which make
// the collapse mechanism visible (thousands of heads stalled for >10k
// cycles while the ring trickles).
//
// Shim over the "fig9" preset (presets.cpp).
#include "presets.hpp"

int main(int argc, char** argv) {
  return ofar::bench::run_preset_main("fig9", argc, argv);
}
