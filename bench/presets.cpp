#include "presets.hpp"

#include <csignal>
#include <cstdio>
#include <memory>

#include "core/analysis.hpp"
#include "topology/dragonfly.hpp"
#include "topology/hamiltonian.hpp"

namespace ofar::bench {

namespace {

/// CSV-name-safe tag: every non-alphanumeric character becomes '_' (the
/// same mapping the transient bench has always applied to "UN->ADV+2").
std::string sanitize(const std::string& text) {
  std::string out = text;
  for (char& c : out)
    if (!(c >= 'a' && c <= 'z') && !(c >= 'A' && c <= 'Z') &&
        !(c >= '0' && c <= '9') && c != '_')
      c = '_';
  return out;
}

std::string seed_tag(const ExperimentSpec& spec, std::size_t s) {
  return spec.seeds.size() > 1 ? "_seed" + std::to_string(spec.seeds[s]) : "";
}

std::string seed_title(const ExperimentSpec& spec, std::size_t s) {
  return spec.seeds.size() > 1
             ? " [seed " + std::to_string(spec.seeds[s]) + "]"
             : "";
}

// ---------------------------------------------------------------------------
// Generic renderers (one per RunKind). These reproduce the historical
// figure output exactly for the single-seed single-case shapes the legacy
// benches used; extra seeds/cases fan out into suffixed tables and CSVs.
// ---------------------------------------------------------------------------

void render_steady(const PresetUnit& unit,
                   const std::vector<PointOutcome>& out,
                   const BenchOptions& opts) {
  const ExperimentSpec& spec = unit.spec;
  const std::size_t M = spec.mechanisms.size();
  const std::size_t C = spec.patterns.size();
  const std::size_t L = spec.loads.size();

  std::vector<std::string> columns = {"offered_load"};
  for (const auto& m : spec.mechanisms) columns.push_back(m.label);

  for (std::size_t s = 0; s < spec.seeds.size(); ++s) {
    for (std::size_t c = 0; c < C; ++c) {
      const std::string case_suffix =
          C > 1 ? "_" + sanitize(spec.patterns[c].name) : "";
      std::string title = spec.title;
      if (C > 1) title += " [" + spec.patterns[c].name + "]";
      title += seed_title(spec, s);

      Table latency(columns);
      Table throughput(columns);
      Table extras({"mechanism", "offered_load", "accepted", "mean_hops",
                    "local_mis", "global_mis", "ring_entries", "stalled"});
      for (std::size_t l = 0; l < L; ++l) {
        std::vector<Table::Cell> lat_row = {spec.loads[l]};
        std::vector<Table::Cell> thr_row = {spec.loads[l]};
        for (std::size_t m = 0; m < M; ++m) {
          const SteadyResult& r = out[((s * C + c) * L + l) * M + m].steady;
          lat_row.emplace_back(r.avg_latency);
          thr_row.emplace_back(r.accepted_load);
          extras.add_row({spec.mechanisms[m].label, spec.loads[l],
                          r.accepted_load, r.mean_hops, u64{r.local_misroutes},
                          u64{r.global_misroutes}, u64{r.ring_entries},
                          u64{r.stalled_packets}});
        }
        latency.add_row(std::move(lat_row));
        throughput.add_row(std::move(thr_row));
      }

      latency.print(title + " — (a) average latency [cycles]");
      throughput.print(title + " — (b) accepted load [phits/(node*cycle)]");
      const std::string base = spec.name + case_suffix + seed_tag(spec, s);
      dump_csv(latency, opts.csv_dir, base + "_latency");
      dump_csv(throughput, opts.csv_dir, base + "_throughput");
      dump_csv(extras, opts.csv_dir, base + "_detail");
    }
  }
}

void render_transient(const PresetUnit& unit,
                      const std::vector<PointOutcome>& out,
                      const BenchOptions& opts) {
  const ExperimentSpec& spec = unit.spec;
  const std::size_t M = spec.mechanisms.size();
  const std::size_t C = spec.transitions.size();

  std::vector<std::string> columns = {"cycle_rel"};
  for (const auto& m : spec.mechanisms) columns.push_back(m.label);

  for (std::size_t s = 0; s < spec.seeds.size(); ++s) {
    for (std::size_t c = 0; c < C; ++c) {
      const TransitionSpec& tr = spec.transitions[c];
      const std::size_t base = (s * C + c) * M;
      Table table(columns);
      const auto& lead_series = out[base].transient.series;
      for (std::size_t i = 0; i < lead_series.size(); ++i) {
        std::vector<Table::Cell> row = {i64{lead_series[i].cycle_rel}};
        for (std::size_t m = 0; m < M; ++m)
          row.emplace_back(out[base + m].transient.series[i].mean_latency);
        table.add_row(std::move(row));
      }
      table.print(spec.title + ": mean latency by send-cycle, " + tr.name +
                  " @ load " + Table::format(tr.load_a) + seed_title(spec, s));
      dump_csv(table, opts.csv_dir,
               spec.name + "_" + sanitize(tr.name) + seed_tag(spec, s));
    }
  }
}

void render_burst(const PresetUnit& unit,
                  const std::vector<PointOutcome>& out,
                  const BenchOptions& opts) {
  const ExperimentSpec& spec = unit.spec;
  const std::size_t M = spec.mechanisms.size();
  const std::size_t C = spec.workloads.size();

  std::vector<std::string> columns = {"workload"};
  for (const auto& m : spec.mechanisms) columns.push_back(m.label + "_cycles");
  for (std::size_t m = 1; m < M; ++m)
    columns.push_back(spec.mechanisms[m].label + "/" +
                      spec.mechanisms[0].label);

  for (std::size_t s = 0; s < spec.seeds.size(); ++s) {
    Table table(columns);
    double ratio_sum = 0.0;
    for (std::size_t c = 0; c < C; ++c) {
      const std::size_t base = (s * C + c) * M;
      for (std::size_t m = 0; m < M; ++m)
        if (!out[base + m].burst.completed)
          std::fprintf(stderr, "warning: %s on %s hit max-cycles\n",
                       spec.mechanisms[m].label.c_str(),
                       spec.workloads[c].name.c_str());
      const double baseline =
          static_cast<double>(out[base].burst.completion);
      std::vector<Table::Cell> row = {spec.workloads[c].name};
      for (std::size_t m = 0; m < M; ++m)
        row.emplace_back(u64{out[base + m].burst.completion});
      for (std::size_t m = 1; m < M; ++m)
        row.emplace_back(static_cast<double>(out[base + m].burst.completion) /
                         baseline);
      if (M >= 2)
        ratio_sum +=
            static_cast<double>(out[base + 1].burst.completion) / baseline;
      table.add_row(std::move(row));
    }
    table.print(spec.title + seed_title(spec, s));
    if (M >= 2)
      std::printf("\nmean %s/%s ratio over the %zu workloads: %.3f\n",
                  spec.mechanisms[1].label.c_str(),
                  spec.mechanisms[0].label.c_str(), C, ratio_sum / C);
    dump_csv(table, opts.csv_dir, spec.name + seed_tag(spec, s));
  }
}

/// Appends a spec-shaped unit (generic renderer) to a preset.
void push_spec_unit(PresetRun& r, ExperimentSpec spec) {
  PresetUnit unit;
  unit.points = spec.expand();
  unit.spec = std::move(spec);
  r.units.push_back(std::move(unit));
}

std::string format2(const char* fmt, double a) {
  char buf[160];
  std::snprintf(buf, sizeof buf, fmt, a);
  return buf;
}

// ---------------------------------------------------------------------------
// Steady figure presets (pure cross products -> generic renderer)
// ---------------------------------------------------------------------------

PresetRun make_fig3(const CommandLine& cli) {
  PresetRun r;
  r.opts = BenchOptions::parse(cli, 5'000, 6'000);
  const std::vector<double> loads = load_grid(cli, 0.05, 0.60, 8);
  if (!reject_unknown(cli)) {
    r.ok = false;
    return r;
  }
  ExperimentSpec s;
  s.name = "fig3";
  s.title = "Fig. 3: uniform random traffic (UN)";
  s.h = r.opts.h;
  s.seeds = {r.opts.seed};
  s.run = r.opts.run;
  s.loads = loads;
  s.patterns = {{"UN", TrafficPattern::uniform()}};
  s.mechanisms = {{"MIN", r.opts.config(RoutingKind::kMin)},
                  {"PB", r.opts.config(RoutingKind::kPb)},
                  {"OFAR", r.opts.config(RoutingKind::kOfar)},
                  {"OFAR-L", r.opts.config(RoutingKind::kOfarL)}};
  r.banner = "Fig. 3 (UN) on " + s.mechanisms[0].cfg.summary() + "\n";
  push_spec_unit(r, std::move(s));
  return r;
}

PresetRun make_fig4(const CommandLine& cli) {
  PresetRun r;
  r.opts = BenchOptions::parse(cli, 5'000, 6'000);
  const std::vector<double> loads = load_grid(cli, 0.05, 0.45, 8);
  if (!reject_unknown(cli)) {
    r.ok = false;
    return r;
  }
  ExperimentSpec s;
  s.name = "fig4";
  s.title = "Fig. 4: adversarial +2 traffic (ADV+2)";
  s.h = r.opts.h;
  s.seeds = {r.opts.seed};
  s.run = r.opts.run;
  s.loads = loads;
  s.patterns = {{"ADV+2", TrafficPattern::adversarial(2)}};
  s.mechanisms = {{"VAL", r.opts.config(RoutingKind::kVal)},
                  {"PB", r.opts.config(RoutingKind::kPb)},
                  {"OFAR", r.opts.config(RoutingKind::kOfar)},
                  {"OFAR-L", r.opts.config(RoutingKind::kOfarL)}};
  r.banner = "Fig. 4 (ADV+2) on " + s.mechanisms[0].cfg.summary() + "\n";
  push_spec_unit(r, std::move(s));
  return r;
}

PresetRun make_fig5(const CommandLine& cli) {
  PresetRun r;
  r.opts = BenchOptions::parse(cli, 5'000, 6'000);
  const std::vector<double> loads = load_grid(cli, 0.05, 0.45, 8);
  if (!reject_unknown(cli)) {
    r.ok = false;
    return r;
  }
  ExperimentSpec s;
  s.name = "fig5";
  s.title = "Fig. 5: worst-case adversarial traffic (ADV+h)";
  s.h = r.opts.h;
  s.seeds = {r.opts.seed};
  s.run = r.opts.run;
  s.loads = loads;
  s.patterns = {{"ADV+h", TrafficPattern::adversarial(r.opts.h)}};
  s.mechanisms = {{"VAL", r.opts.config(RoutingKind::kVal)},
                  {"PB", r.opts.config(RoutingKind::kPb)},
                  {"OFAR", r.opts.config(RoutingKind::kOfar)},
                  {"OFAR-L", r.opts.config(RoutingKind::kOfarL)}};
  r.banner = "Fig. 5 (ADV+h) on " + s.mechanisms[0].cfg.summary() + "\n" +
             format2("analytic ceilings: local-link 1/h = %.4f | Valiant "
                     "global 0.5\n",
                     1.0 / r.opts.h);
  push_spec_unit(r, std::move(s));
  return r;
}

PresetRun make_fig8(const CommandLine& cli) {
  PresetRun r;
  r.opts = BenchOptions::parse(cli, 5'000, 6'000);
  const std::string which = cli.get_string("pattern", "both");
  const std::vector<double> un_loads = load_grid(cli, 0.05, 0.60, 6);
  if (!reject_unknown(cli)) {
    r.ok = false;
    return r;
  }
  SimConfig physical = r.opts.config(RoutingKind::kOfar);
  physical.ring = RingKind::kPhysical;
  SimConfig embedded = r.opts.config(RoutingKind::kOfar);
  embedded.ring = RingKind::kEmbedded;
  r.banner = "Fig. 8 (ring variants) on " + physical.summary() + "\n";

  auto make_variant = [&](const std::string& name, const std::string& title,
                          const NamedPattern& pattern,
                          const std::vector<double>& loads) {
    ExperimentSpec s;
    s.name = name;
    s.title = title;
    s.h = r.opts.h;
    s.seeds = {r.opts.seed};
    s.run = r.opts.run;
    s.loads = loads;
    s.patterns = {pattern};
    s.mechanisms = {{"OFAR-physical", physical}, {"OFAR-embedded", embedded}};
    push_spec_unit(r, std::move(s));
  };
  if (which == "both" || which == "UN")
    make_variant("fig8_un", "Fig. 8: physical vs embedded ring, UN",
                 {"UN", TrafficPattern::uniform()}, un_loads);
  if (which == "both" || which == "ADV") {
    std::vector<double> adv_loads;
    for (double l : un_loads) adv_loads.push_back(l * 0.45 / 0.60);
    make_variant("fig8_adv2", "Fig. 8: physical vs embedded ring, ADV+2",
                 {"ADV+2", TrafficPattern::adversarial(2)}, adv_loads);
  }
  return r;
}

// ---------------------------------------------------------------------------
// Fig. 6 (transient) and Fig. 7 (burst)
// ---------------------------------------------------------------------------

PresetRun make_fig6(const CommandLine& cli) {
  PresetRun r;
  r.opts = BenchOptions::parse(cli, 0, 0);
  ExperimentSpec s;
  s.kind = RunKind::kTransient;
  s.name = "fig6";
  s.title = "Fig. 6";
  s.transient.warmup = cli.get_uint("switch-at", 20'000);
  s.transient.horizon = cli.get_uint("horizon", 12'000);
  s.transient.lead = cli.get_uint("lead", 2'000);
  s.transient.drain = cli.get_uint("drain", 20'000);
  s.transient.bucket = static_cast<u32>(cli.get_uint("bucket", 500));
  const double load_main = cli.get_double("load", 0.14);
  const double load_advh = cli.get_double("load-advh", 0.12);
  if (!reject_unknown(cli)) {
    r.ok = false;
    return r;
  }
  s.h = r.opts.h;
  s.seeds = {r.opts.seed};
  s.transitions = {
      {"UN->ADV+2",
       {"UN", TrafficPattern::uniform()},
       {"ADV+2", TrafficPattern::adversarial(2)},
       load_main,
       load_main},
      {"ADV+2->UN",
       {"ADV+2", TrafficPattern::adversarial(2)},
       {"UN", TrafficPattern::uniform()},
       load_main,
       load_main},
      {"ADV+2->ADV+h",
       {"ADV+2", TrafficPattern::adversarial(2)},
       {"ADV+h", TrafficPattern::adversarial(r.opts.h)},
       load_advh,
       load_advh},
  };
  s.mechanisms = {{"PB", r.opts.config(RoutingKind::kPb)},
                  {"OFAR", r.opts.config(RoutingKind::kOfar)},
                  {"OFAR-L", r.opts.config(RoutingKind::kOfarL)}};
  r.banner = "Fig. 6 (transient) on " +
             r.opts.config(RoutingKind::kOfar).summary() + "\n";
  push_spec_unit(r, std::move(s));
  return r;
}

PresetRun make_fig7(const CommandLine& cli) {
  PresetRun r;
  r.opts = BenchOptions::parse(cli, 0, 0);
  const u32 packets = static_cast<u32>(cli.get_uint("packets", 400));
  const Cycle max_cycles = cli.get_uint("max-cycles", 20'000'000);
  if (!reject_unknown(cli)) {
    r.ok = false;
    return r;
  }
  const u32 h = r.opts.h;
  ExperimentSpec s;
  s.kind = RunKind::kBurst;
  s.name = "fig7_bursts";
  s.title =
      "Fig. 7: burst consumption time (normalised to PB, lower is better)";
  s.h = h;
  s.seeds = {r.opts.seed};
  s.burst.packets_per_node = packets;
  s.burst.max_cycles = max_cycles;
  s.workloads = {
      {"UN", TrafficPattern::uniform()},
      {"ADV+2", TrafficPattern::adversarial(2)},
      {"ADV+h", TrafficPattern::adversarial(h)},
      {"MIX1", TrafficPattern::mix({{PatternKind::kUniform, 0, 0.8},
                                    {PatternKind::kAdversarial, 1, 0.1},
                                    {PatternKind::kAdversarial, h, 0.1}})},
      {"MIX2", TrafficPattern::mix({{PatternKind::kUniform, 0, 0.6},
                                    {PatternKind::kAdversarial, 1, 0.2},
                                    {PatternKind::kAdversarial, h, 0.2}})},
      {"MIX3", TrafficPattern::mix({{PatternKind::kUniform, 0, 0.2},
                                    {PatternKind::kAdversarial, 1, 0.4},
                                    {PatternKind::kAdversarial, h, 0.4}})},
  };
  s.mechanisms = {{"PB", r.opts.config(RoutingKind::kPb)},
                  {"OFAR", r.opts.config(RoutingKind::kOfar)},
                  {"OFAR-L", r.opts.config(RoutingKind::kOfarL)}};
  char head[192];
  std::snprintf(head, sizeof head,
                "Fig. 7 (bursts, %u packets/node) on %s\n"
                "paper reference: mean OFAR/PB 0.695, i.e. a 43.8%% speedup\n",
                packets, r.opts.config(RoutingKind::kOfar).summary().c_str());
  r.banner = head;
  push_spec_unit(r, std::move(s));
  return r;
}

// ---------------------------------------------------------------------------
// Bespoke presets (not pure cross products): Fig. 2b, Fig. 9, ablations.
// These build their RunPoints by hand — still executed and cached through
// the orchestrator — and carry custom renderers.
// ---------------------------------------------------------------------------

RunPoint steady_point(const SimConfig& cfg, u64 seed,
                      const std::string& mechanism,
                      const std::string& case_name,
                      const TrafficPattern& pattern, double load,
                      const RunParams& run) {
  RunPoint p;
  p.kind = RunKind::kSteady;
  p.mechanism = mechanism;
  p.case_name = case_name;
  p.seed = seed;
  p.cfg = cfg;
  p.cfg.seed = seed;
  p.pattern = pattern;
  p.load = load;
  p.run = run;
  return p;
}

PresetRun make_fig2(const CommandLine& cli) {
  PresetRun r;
  r.opts = BenchOptions::parse(cli, 5'000, 6'000);
  const double offered = cli.get_double("offered", 0.35);
  const bool with_ofar = cli.get_bool("with-ofar", true);
  const bool analytic = cli.get_bool("analytic", true);
  const u32 max_offset =
      static_cast<u32>(cli.get_uint("max-offset", 2 * r.opts.h + 2));
  if (!reject_unknown(cli)) {
    r.ok = false;
    return r;
  }
  const SimConfig val_cfg = r.opts.config(RoutingKind::kVal);
  const SimConfig ofar_cfg = r.opts.config(RoutingKind::kOfar);

  char head[192];
  std::snprintf(head, sizeof head,
                "Fig. 2b (ADV+N offset sweep) on %s, offered %.2f\n",
                val_cfg.summary().c_str(), offered);
  r.banner = head;
  if (analytic) {
    std::snprintf(head, sizeof head,
                  "§III analytic ceilings: UN/min 1.0 | Valiant global 0.5 | "
                  "minimal single global link 1/(2h^2) = %.4f | "
                  "local-link funnel at N = k*h: 1/h = %.4f\n",
                  1.0 / (2.0 * r.opts.h * r.opts.h), 1.0 / r.opts.h);
    r.banner += head;
  }

  PresetUnit unit;
  unit.spec.name = "fig2b_offset";
  unit.spec.h = r.opts.h;
  for (u32 offset = 1; offset <= max_offset; ++offset) {
    const TrafficPattern pattern = TrafficPattern::adversarial(offset);
    const std::string case_name = "ADV+" + std::to_string(offset);
    RunPoint p = steady_point(val_cfg, r.opts.seed, "VAL", case_name, pattern,
                              offered, r.opts.run);
    p.case_index = offset - 1;
    unit.points.push_back(p);
    if (with_ofar) {
      RunPoint q = steady_point(ofar_cfg, r.opts.seed, "OFAR", case_name,
                                pattern, offered, r.opts.run);
      q.mech_index = 1;
      q.case_index = offset - 1;
      unit.points.push_back(q);
    }
  }
  const u32 h = r.opts.h;
  unit.render = [with_ofar, max_offset, h](
                    const PresetUnit&, const std::vector<PointOutcome>& out,
                    const BenchOptions& opts) {
    std::vector<std::string> columns = {"offset", "VAL_predicted", "VAL"};
    if (with_ofar) columns.push_back("OFAR");
    Table table(columns);
    const Dragonfly topo(h);
    std::size_t idx = 0;
    for (u32 offset = 1; offset <= max_offset; ++offset) {
      std::vector<Table::Cell> row = {u64{offset}};
      row.emplace_back(analysis::valiant_adv_offset_ceiling(topo, offset));
      row.emplace_back(out[idx++].steady.accepted_load);
      if (with_ofar) row.emplace_back(out[idx++].steady.accepted_load);
      table.add_row(std::move(row));
    }
    table.print("Fig. 2b: accepted load vs ADV offset (dips at multiples of "
                "h=" + std::to_string(h) + ")");
    dump_csv(table, opts.csv_dir, "fig2b_offset");
  };
  r.units.push_back(std::move(unit));
  return r;
}

PresetRun make_fig9(const CommandLine& cli) {
  PresetRun r;
  r.opts = BenchOptions::parse(cli, 5'000, 6'000);
  const std::vector<double> loads = load_grid(cli, 0.15, 0.6, 4);
  if (!reject_unknown(cli)) {
    r.ok = false;
    return r;
  }
  SimConfig reduced = r.opts.config(RoutingKind::kOfar);
  reduced.ring = RingKind::kEmbedded;
  reduced.vcs_local = 2;
  reduced.vcs_global = 1;
  reduced.deadlock_timeout = 10'000;
  SimConfig full = r.opts.config(RoutingKind::kOfar);
  full.deadlock_timeout = 10'000;

  r.banner = "Fig. 9 (reduced VCs: 2 local / 1 global, embedded ring) on " +
             reduced.summary() + "\n";

  const std::vector<std::pair<std::string, TrafficPattern>> patterns = {
      {"UN", TrafficPattern::uniform()},
      {"ADV+2", TrafficPattern::adversarial(2)},
      {"ADV+h", TrafficPattern::adversarial(r.opts.h)},
  };
  PresetUnit unit;
  unit.spec.name = "fig9_reduced_vcs";
  unit.spec.h = r.opts.h;
  std::vector<std::string> pattern_names;
  for (std::size_t c = 0; c < patterns.size(); ++c) {
    pattern_names.push_back(patterns[c].first);
    for (std::size_t l = 0; l < loads.size(); ++l) {
      RunPoint p = steady_point(reduced, r.opts.seed, "reduced",
                                patterns[c].first, patterns[c].second,
                                loads[l], r.opts.run);
      p.case_index = static_cast<u32>(c);
      p.load_index = static_cast<u32>(l);
      unit.points.push_back(p);
      RunPoint q = steady_point(full, r.opts.seed, "full", patterns[c].first,
                                patterns[c].second, loads[l], r.opts.run);
      q.mech_index = 1;
      q.case_index = static_cast<u32>(c);
      q.load_index = static_cast<u32>(l);
      unit.points.push_back(q);
    }
  }
  unit.render = [pattern_names, loads](
                    const PresetUnit&, const std::vector<PointOutcome>& out,
                    const BenchOptions& opts) {
    Table table({"pattern", "offered", "accepted_reduced", "stalled_reduced",
                 "accepted_full", "stalled_full"});
    std::size_t idx = 0;
    for (const auto& name : pattern_names) {
      for (const double load : loads) {
        const SteadyResult& r_red = out[idx++].steady;
        const SteadyResult& r_full = out[idx++].steady;
        table.add_row({name, load, r_red.accepted_load,
                       u64{r_red.stalled_packets}, r_full.accepted_load,
                       u64{r_full.stalled_packets}});
      }
    }
    table.print("Fig. 9: throughput with reduced VCs (vs the full 3l/2g "
                "configuration)");
    dump_csv(table, opts.csv_dir, "fig9_reduced_vcs");
  };
  r.units.push_back(std::move(unit));
  return r;
}

PresetRun make_ablation_thresholds(const CommandLine& cli) {
  PresetRun r;
  r.opts = BenchOptions::parse(cli, 4'000, 6'000);
  // Default scale h=3: the tuning trade-off shows at any radix, and the
  // interesting regimes sit at/past saturation where collapsed
  // configurations simulate slowly — h=3 keeps the full grid in minutes.
  if (!cli.has("h")) r.opts.h = 3;
  if (!reject_unknown(cli)) {
    r.ok = false;
    return r;
  }

  struct Regime {
    std::string name;
    TrafficPattern pattern;
    double load;
  };
  const std::vector<Regime> regimes = {
      {"UN@0.30", TrafficPattern::uniform(), 0.30},
      {"UN@0.70", TrafficPattern::uniform(), 0.70},
      {"ADV+2@0.45", TrafficPattern::adversarial(2), 0.45},
      {"ADV+h@0.40", TrafficPattern::adversarial(r.opts.h), 0.40},
  };

  // Config grid: 4 factor variants, 4 gap variants, 2 policy modes — the
  // renderer slices these ranges back into the three historical tables.
  std::vector<std::pair<std::string, SimConfig>> configs;
  for (const double f : {0.5, 0.7, 0.9, 1.0}) {
    SimConfig cfg = r.opts.config(RoutingKind::kOfar);
    cfg.thresholds.nonmin_factor = f;
    configs.emplace_back("factor=" + Table::format(f), cfg);
  }
  for (const double g : {0.0, 0.1, 0.15, 0.25}) {
    SimConfig cfg = r.opts.config(RoutingKind::kOfar);
    cfg.thresholds.min_gap = g;
    configs.emplace_back("gap=" + Table::format(g), cfg);
  }
  {
    SimConfig cfg = r.opts.config(RoutingKind::kOfar);
    configs.emplace_back("variable 0.9*Qmin (paper default)", cfg);
    cfg.thresholds.variable = false;
    cfg.thresholds.th_min = 1.0;
    cfg.thresholds.th_nonmin_static = 0.4;
    configs.emplace_back("static Thmin=100% Thnonmin=40%", cfg);
  }

  r.banner = "OFAR threshold ablation on " +
             r.opts.config(RoutingKind::kOfar).summary() + "\n";

  PresetUnit unit;
  unit.spec.name = "ablation_thresholds";
  unit.spec.h = r.opts.h;
  std::vector<std::string> labels;
  std::vector<std::string> regime_names;
  for (const auto& rg : regimes) regime_names.push_back(rg.name);
  for (std::size_t i = 0; i < configs.size(); ++i) {
    labels.push_back(configs[i].first);
    for (std::size_t j = 0; j < regimes.size(); ++j) {
      RunPoint p = steady_point(configs[i].second, r.opts.seed,
                                configs[i].first, regimes[j].name,
                                regimes[j].pattern, regimes[j].load,
                                r.opts.run);
      p.mech_index = static_cast<u32>(i);
      p.case_index = static_cast<u32>(j);
      unit.points.push_back(p);
    }
  }
  const std::size_t n_regimes = regimes.size();
  unit.render = [labels, regime_names, n_regimes](
                    const PresetUnit&, const std::vector<PointOutcome>& out,
                    const BenchOptions& opts) {
    std::vector<std::string> columns = {"config"};
    for (const auto& name : regime_names) columns.push_back(name);
    auto rows = [&](Table& table, std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        std::vector<Table::Cell> row = {labels[i]};
        for (std::size_t j = 0; j < n_regimes; ++j)
          row.emplace_back(out[i * n_regimes + j].steady.accepted_load);
        table.add_row(std::move(row));
      }
    };
    Table factors(columns);
    rows(factors, 0, 4);
    factors.print("Variable policy: Th_nonmin = factor * Q_min "
                  "(accepted load per regime)");
    dump_csv(factors, opts.csv_dir, "ablation_factor");

    Table gaps(columns);
    rows(gaps, 4, 8);
    gaps.print("Occupancy-gap guard: candidate needs Q_min - Q >= gap");
    dump_csv(gaps, opts.csv_dir, "ablation_gap");

    Table modes(columns);
    rows(modes, 8, 10);
    modes.print("Variable vs static threshold policy (paper §IV-B)");
    dump_csv(modes, opts.csv_dir, "ablation_policy_mode");
  };
  r.units.push_back(std::move(unit));
  return r;
}

PresetRun make_ablation_congestion(const CommandLine& cli) {
  PresetRun r;
  r.opts = BenchOptions::parse(cli, 4'000, 6'000);
  if (!cli.has("h")) r.opts.h = 3;
  if (!reject_unknown(cli)) {
    r.ok = false;
    return r;
  }

  struct Scenario {
    std::string name;
    TrafficPattern pattern;
    double load;
    bool reduced_vcs;
  };
  const std::vector<Scenario> scenarios = {
      {"UN@0.45 full", TrafficPattern::uniform(), 0.45, false},
      {"UN@0.80 full", TrafficPattern::uniform(), 0.80, false},
      {"ADV+h@0.45 full", TrafficPattern::adversarial(r.opts.h), 0.45, false},
      {"UN@0.45 reducedVC", TrafficPattern::uniform(), 0.45, true},
      {"ADV+2@0.35 reducedVC", TrafficPattern::adversarial(2), 0.35, true},
  };

  r.banner = "Congestion-throttle ablation on " +
             r.opts.config(RoutingKind::kOfar).summary() + "\n";

  PresetUnit unit;
  unit.spec.name = "ablation_congestion";
  unit.spec.h = r.opts.h;
  std::vector<std::string> names;
  for (std::size_t c = 0; c < scenarios.size(); ++c) {
    const Scenario& sc = scenarios[c];
    names.push_back(sc.name);
    SimConfig plain = r.opts.config(RoutingKind::kOfar);
    plain.deadlock_timeout = 10'000;
    if (sc.reduced_vcs) {
      plain.ring = RingKind::kEmbedded;
      plain.vcs_local = 2;
      plain.vcs_global = 1;
    }
    SimConfig throttled = plain;
    throttled.congestion_throttle = true;

    RunPoint p = steady_point(plain, r.opts.seed, "plain", sc.name,
                              sc.pattern, sc.load, r.opts.run);
    p.case_index = static_cast<u32>(c);
    unit.points.push_back(p);
    RunPoint q = steady_point(throttled, r.opts.seed, "throttled", sc.name,
                              sc.pattern, sc.load, r.opts.run);
    q.mech_index = 1;
    q.case_index = static_cast<u32>(c);
    unit.points.push_back(q);
  }
  unit.render = [names](const PresetUnit&,
                        const std::vector<PointOutcome>& out,
                        const BenchOptions& opts) {
    Table table({"scenario", "accepted_plain", "stalled_plain",
                 "accepted_throttled", "stalled_throttled"});
    std::size_t idx = 0;
    for (const auto& name : names) {
      const SteadyResult& r_plain = out[idx++].steady;
      const SteadyResult& r_throttled = out[idx++].steady;
      table.add_row({name, r_plain.accepted_load,
                     u64{r_plain.stalled_packets}, r_throttled.accepted_load,
                     u64{r_throttled.stalled_packets}});
    }
    table.print("Injection throttling vs collapse (accepted load; stalled = "
                "deadlock-watchdog hits)");
    dump_csv(table, opts.csv_dir, "ablation_congestion");
  };
  r.units.push_back(std::move(unit));
  return r;
}

PresetRun make_ablation_rings(const CommandLine& cli) {
  PresetRun r;
  r.opts = BenchOptions::parse(cli, 4'000, 6'000);
  if (!cli.has("h")) r.opts.h = 3;
  if (!reject_unknown(cli)) {
    r.ok = false;
    return r;
  }

  // Performance points: OFAR with the escape ring built at different
  // strides, and with different livelock budgets (max_ring_exits).
  const TrafficPattern pattern = TrafficPattern::adversarial(r.opts.h);
  const double load = 0.35;
  PresetUnit unit;
  unit.spec.name = "ablation_rings";
  unit.spec.h = r.opts.h;
  std::vector<std::string> labels;
  {
    const Dragonfly topo(r.opts.h);
    u32 mech = 0;
    for (const u32 stride : {1u, 2u, 3u}) {
      if (!HamiltonianRing::constructible(topo, stride)) continue;
      SimConfig cfg = r.opts.config(RoutingKind::kOfar);
      cfg.ring = RingKind::kEmbedded;
      cfg.ring_stride = stride;
      const std::string label = "stride=" + std::to_string(stride);
      labels.push_back(label);
      RunPoint p = steady_point(cfg, r.opts.seed, label, "ADV+h", pattern,
                                load, r.opts.run);
      p.mech_index = mech++;
      unit.points.push_back(p);
    }
    for (const u32 exits : {0u, 1u, 4u, 16u}) {
      SimConfig cfg = r.opts.config(RoutingKind::kOfar);
      cfg.max_ring_exits = exits;
      const std::string label = "max_exits=" + std::to_string(exits);
      labels.push_back(label);
      RunPoint p = steady_point(cfg, r.opts.seed, label, "ADV+h", pattern,
                                load, r.opts.run);
      p.mech_index = mech++;
      unit.points.push_back(p);
    }
  }
  unit.render = [labels, load](const PresetUnit&,
                               const std::vector<PointOutcome>& out,
                               const BenchOptions& opts) {
    // ---- (1) edge-disjoint embedded rings per radix (pure topology) ----
    Table rings({"h", "groups", "constructible_strides",
                 "edge_disjoint_rings", "paper_bound_h"});
    for (u32 h = 2; h <= 6; ++h) {
      Dragonfly topo(h);
      std::vector<std::unique_ptr<HamiltonianRing>> disjoint;
      u32 constructible = 0;
      for (u32 stride = 1; stride < topo.groups(); ++stride) {
        if (!HamiltonianRing::constructible(topo, stride)) continue;
        ++constructible;
        for (u32 variant = 0; variant < topo.a(); ++variant) {
          auto candidate =
              std::make_unique<HamiltonianRing>(topo, stride, variant);
          bool ok = true;
          for (const auto& existing : disjoint)
            if (!HamiltonianRing::edge_disjoint(topo, *existing,
                                                *candidate)) {
              ok = false;
              break;
            }
          if (ok) {
            disjoint.push_back(std::move(candidate));
            break;  // at most one ring per stride (distinct global links)
          }
        }
      }
      rings.add_row({u64{h}, u64{topo.groups()}, u64{constructible},
                     u64{disjoint.size()}, u64{h}});
    }
    rings.print("Edge-disjoint embedded Hamiltonian rings (greedy over "
                "strides; paper §VII claims up to h exist)");
    dump_csv(rings, opts.csv_dir, "ablation_rings_topology");

    // ---- (2) OFAR sensitivity to the escape ring's shape ----
    Table perf({"config", "accepted", "avg_latency", "ring_entries"});
    for (std::size_t i = 0; i < labels.size(); ++i) {
      const SteadyResult& res = out[i].steady;
      perf.add_row({labels[i], res.accepted_load, res.avg_latency,
                    u64{res.ring_entries}});
    }
    perf.print("OFAR under ADV+h at load " + Table::format(load) +
               ": escape-ring shape sensitivity (should be flat)");
    dump_csv(perf, opts.csv_dir, "ablation_rings_perf");
  };
  r.units.push_back(std::move(unit));
  return r;
}

const std::vector<Preset> kPresets = {
    {"fig2", "Fig. 2b: Valiant throughput vs ADV+N offset", make_fig2},
    {"fig3", "Fig. 3: latency/throughput vs load, UN", make_fig3},
    {"fig4", "Fig. 4: latency/throughput vs load, ADV+2", make_fig4},
    {"fig5", "Fig. 5: latency/throughput vs load, ADV+h", make_fig5},
    {"fig6", "Fig. 6: transient adaptation, three transitions", make_fig6},
    {"fig7", "Fig. 7: burst consumption time, six workloads", make_fig7},
    {"fig8", "Fig. 8: physical vs embedded escape ring", make_fig8},
    {"fig9", "Fig. 9: reduced-VC configuration collapse", make_fig9},
    {"ablation_thresholds", "misroute-threshold policy tuning study",
     make_ablation_thresholds},
    {"ablation_congestion", "injection-throttle congestion management",
     make_ablation_congestion},
    {"ablation_rings", "escape-ring shape & edge-disjoint embedding",
     make_ablation_rings},
};

std::atomic<bool> g_stop{false};

void on_sigint(int) { g_stop.store(true, std::memory_order_relaxed); }

}  // namespace

const std::vector<Preset>& presets() { return kPresets; }

const Preset* find_preset(const std::string& name) {
  for (const auto& p : kPresets)
    if (name == p.name) return &p;
  return nullptr;
}

void render_spec(const PresetUnit& unit,
                 const std::vector<PointOutcome>& outcomes,
                 const BenchOptions& opts) {
  switch (unit.spec.kind) {
    case RunKind::kSteady: render_steady(unit, outcomes, opts); break;
    case RunKind::kTransient: render_transient(unit, outcomes, opts); break;
    case RunKind::kBurst: render_burst(unit, outcomes, opts); break;
  }
}

const std::atomic<bool>* install_sigint_stop() {
  std::signal(SIGINT, on_sigint);
  return &g_stop;
}

int run_units(const std::vector<PresetUnit>& units, const BenchOptions& opts,
              const std::string& banner) {
  if (!banner.empty()) {
    std::fputs(banner.c_str(), stdout);
    std::fflush(stdout);
  }

  std::vector<RunPoint> all;
  for (const auto& u : units)
    all.insert(all.end(), u.points.begin(), u.points.end());

  OrchestratorOptions oo;
  oo.cache_dir = opts.no_cache ? std::string() : opts.cache_dir;
  oo.threads = opts.threads;
  oo.sim_threads = opts.sim_threads;
  oo.audit_interval = opts.audit_interval;
  oo.metrics_sink = opts.metrics.get();
  oo.metrics_interval = opts.metrics_interval;
  oo.metrics_full = opts.metrics_full;
  oo.trace_out = opts.trace_out;
  oo.trace_links = opts.trace_links;
  oo.trace_sample = opts.trace_sample;
  oo.checkpoint_dir = opts.checkpoint_dir;
  oo.checkpoint_interval = opts.checkpoint_interval;
  oo.stop_flag = opts.stop_flag;
  oo.stop_after = opts.stop_after;

  const RunReport report = run_points(all, oo);

  if (!report.complete()) {
    std::printf("summary: points=%zu hits=%zu executed=%zu missing=%zu\n",
                all.size(), report.hits, report.executed, report.missing);
    if (!report.journal_path.empty())
      std::printf("interrupted: rerun the same command to resume from %s\n",
                  report.journal_path.c_str());
    else
      std::printf("interrupted: %zu point(s) lost (pass --cache-dir to make "
                  "runs resumable)\n",
                  report.missing);
    return 130;
  }

  std::size_t offset = 0;
  for (const auto& u : units) {
    std::vector<PointOutcome> slice(
        report.outcomes.begin() + static_cast<std::ptrdiff_t>(offset),
        report.outcomes.begin() +
            static_cast<std::ptrdiff_t>(offset + u.points.size()));
    offset += u.points.size();
    if (u.render)
      u.render(u, slice, opts);
    else
      render_spec(u, slice, opts);
  }

  std::printf("summary: points=%zu hits=%zu executed=%zu missing=%zu\n",
              all.size(), report.hits, report.executed, report.missing);
  std::printf("results digest: %s\n", results_digest(all, report).c_str());
  return 0;
}

int run_preset_main(const std::string& name, int argc, char** argv,
                    const std::string& default_cache_dir) {
  CommandLine cli(argc, argv);
  // Driver-level keys (consumed by ofar_run's dispatch) must not trip the
  // presets' unknown-option check when forwarded verbatim.
  (void)cli.get_string("preset", "");
  (void)cli.get_string("spec", "");
  (void)cli.get_flag("list");
  (void)cli.get_flag("help");

  const Preset* preset = find_preset(name);
  if (preset == nullptr) {
    std::fprintf(stderr, "unknown preset '%s' (try --list)\n", name.c_str());
    return 1;
  }
  PresetRun run = preset->make(cli);
  if (!run.ok) return 1;
  if (run.opts.cache_dir.empty() && !run.opts.no_cache)
    run.opts.cache_dir = default_cache_dir;
  run.opts.stop_flag = install_sigint_stop();
  return run_units(run.units, run.opts, run.banner);
}

}  // namespace ofar::bench
