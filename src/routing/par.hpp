// PAR: Progressive Adaptive Routing (Jiang, Kim & Dally, ISCA'09;
// discussed in the paper's §I/§II as the one pre-OFAR mechanism with any
// in-transit freedom). A packet starts out minimal but may re-evaluate the
// minimal-vs-Valiant decision at each router of its *source group*; once
// it diverts (or takes its global hop) the decision is final.
//
// The price is one extra VC on local links (4 instead of 3): the maximal
// path is l-l-g-l-g-l, and deadlock freedom needs the ascending order
// L0 < L1 < G0 < L2 < G1 < L3. PAR therefore uses its own VC assignment
// (par_vc) rather than the shared ordered_vc helper.
#pragma once

#include "routing/ugal.hpp"

namespace ofar {

/// PAR's hop-position VC assignment over the l-l-g-l-g-l pattern.
VcId par_vc(const Network& net, PortId port, const Packet& pkt);

class ParPolicy final : public ValiantPolicy {
 public:
  explicit ParPolicy(const SimConfig& cfg);

  const char* name() const noexcept override { return "PAR"; }

  void on_inject(Network& net, Packet& pkt, RouterId at) override;
  RouteChoice route(RouteContext& ctx) override;

  /// PAR's in-transit re-evaluation draws RNG and rewrites the packet's
  /// Valiant state before it looks at port availability, so even a failing
  /// route() has observable effects — the kernel must not skip it.
  bool blocked_route_is_pure() const noexcept override { return false; }

 private:
  i32 bias_;
};

}  // namespace ofar
