#include "core/escape_ring.hpp"

#include "sim/network.hpp"

namespace ofar {

RouteChoice EscapeRingControl::ring_step(Network& net, RouterId at,
                                         u32 need) const {
  const Network::RingOut& ro = net.ring_out(at);
  const OutputPort& out = net.router(at).outputs[ro.port];
  if (!out.wired() || out.busy()) return RouteChoice::none();
  VcId vc;
  if (!out.best_vc(ro.first_vc, ro.num_vcs, need, vc))
    return RouteChoice::none();
  return RouteChoice::to(ro.port, vc);
}

RouteChoice EscapeRingControl::ride(Network& net, RouterId at, Packet& pkt,
                                    RouteProvenance* prov) const {
  const Dragonfly& topo = net.topo();
  const Router& r = net.router(at);

  if (at == pkt.dst_router) {
    // Delivery from the ring: request the ejection port.
    const PortId eject = topo.node_port(topo.node_slot(pkt.dst));
    if (prov) {
      prov->min_port = eject;
      prov->q_min = static_cast<float>(net.base_occupancy(r, eject));
    }
    if (net.base_available(r, eject)) {
      VcId vc;
      net.best_base_vc(r, eject, vc);
      RouteChoice c = RouteChoice::to(eject, vc);
      c.exit_ring = true;
      if (prov) {
        prov->condition = RouteCondition::kRingExit;
        prov->chosen_occ = prov->q_min;
      }
      return c;
    }
    if (prov) prov->condition = RouteCondition::kWaitBusy;
    return RouteChoice::none();  // wait for the ejection port
  }

  // Abandon the ring through the minimal output when it is free and the
  // livelock budget allows another exit.
  if (pkt.ring_exits < max_exits_) {
    const PortId min_port = min_port_to_router(net, at, pkt.dst_router);
    if (prov) {
      prov->min_port = min_port;
      prov->q_min = static_cast<float>(net.base_occupancy(r, min_port));
    }
    if (net.base_available(r, min_port)) {
      VcId vc;
      net.best_base_vc(r, min_port, vc);
      RouteChoice c = RouteChoice::to(min_port, vc);
      c.exit_ring = true;
      if (prov) {
        prov->condition = RouteCondition::kRingExit;
        prov->chosen_occ = prov->q_min;
      }
      return c;
    }
  }
  // Otherwise keep riding: in-ring movement needs one packet of space.
  RouteChoice c = ring_step(net, at, packet_size_);
  if (prov)
    prov->condition =
        c.valid ? RouteCondition::kRingRide : RouteCondition::kWaitBusy;
  return c;
}

RouteChoice EscapeRingControl::enter(Network& net, RouterId at,
                                     RouteProvenance* prov) const {
  // Bubble condition: the next ring buffer must fit this packet PLUS one
  // more (the bubble), so the ring can always drain.
  RouteChoice c = ring_step(net, at, 2 * packet_size_);
  if (c.valid) c.enter_ring = true;
  if (prov)
    prov->condition =
        c.valid ? RouteCondition::kRingEnter : RouteCondition::kWaitStarved;
  return c;
}

}  // namespace ofar
