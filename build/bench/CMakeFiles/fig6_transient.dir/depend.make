# Empty dependencies file for fig6_transient.
# This may be replaced when dependencies are built.
