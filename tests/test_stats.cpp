// Tests for the instrumentation layer: latency accumulators, measurement
// windows, per-tag breakdown, and the transient time series.
#include <gtest/gtest.h>

#include "stats/stats.hpp"
#include "stats/timeseries.hpp"

namespace ofar {
namespace {

TEST(LatencyAccum, MeanStddevMinMax) {
  LatencyAccum acc;
  for (u64 v : {10u, 20u, 30u}) acc.add(v);
  EXPECT_EQ(acc.count, 3u);
  EXPECT_DOUBLE_EQ(acc.mean(), 20.0);
  EXPECT_EQ(acc.min, 10u);
  EXPECT_EQ(acc.max, 30u);
  EXPECT_NEAR(acc.stddev(), 8.1649, 1e-3);
}

TEST(LatencyAccum, EmptyIsSafe) {
  LatencyAccum acc;
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  EXPECT_DOUBLE_EQ(acc.stddev(), 0.0);
}

TEST(Stats, AcceptedAndOfferedLoads) {
  Stats s;
  s.reset(1000);
  const u32 nodes = 10;
  for (int i = 0; i < 50; ++i) s.on_generated(0, 8);
  for (int i = 0; i < 25; ++i) s.on_delivered(0, 8, 100, 1000, 3);
  // 400 generated phits, 200 delivered phits over 40 cycles and 10 nodes.
  EXPECT_DOUBLE_EQ(s.offered_load(1040, nodes), 1.0);
  EXPECT_DOUBLE_EQ(s.accepted_load(1040, nodes), 0.5);
  EXPECT_DOUBLE_EQ(s.accepted_load(1000, nodes), 0.0);  // empty window
}

TEST(Stats, ResetClearsCounters) {
  Stats s;
  s.on_generated(0, 8);
  s.on_delivered(0, 8, 50, 0, 3);
  s.on_local_misroute();
  s.on_ring_enter(/*first_entry=*/true);
  s.on_ring_enter(/*first_entry=*/false);
  s.reset(500);
  EXPECT_EQ(s.generated_packets(), 0u);
  EXPECT_EQ(s.delivered_packets(), 0u);
  EXPECT_EQ(s.local_misroutes(), 0u);
  EXPECT_EQ(s.ring_entries(), 0u);
  EXPECT_EQ(s.ring_packets(), 0u);
  EXPECT_EQ(s.ring_reentries(), 0u);
  EXPECT_EQ(s.window_start(), 500u);
  EXPECT_EQ(s.latency().count, 0u);
}

TEST(Stats, PerTagBreakdown) {
  Stats s;
  s.reset(0);
  s.on_delivered(0, 8, 10, 0, 3);
  s.on_delivered(2, 8, 30, 0, 3);
  s.on_delivered(2, 8, 50, 0, 3);
  EXPECT_EQ(s.latency_by_tag(0).count, 1u);
  EXPECT_EQ(s.latency_by_tag(1).count, 0u);
  EXPECT_EQ(s.latency_by_tag(2).count, 2u);
  EXPECT_DOUBLE_EQ(s.latency_by_tag(2).mean(), 40.0);
  EXPECT_EQ(s.latency_by_tag(99).count, 0u);  // never seen: safe default
}

TEST(Stats, RingUseFraction) {
  Stats s;
  s.reset(0);
  for (int i = 0; i < 10; ++i) s.on_delivered(0, 8, 10, 0, 3);
  s.on_ring_enter(/*first_entry=*/true);
  s.on_ring_enter(/*first_entry=*/true);
  EXPECT_DOUBLE_EQ(s.ring_use_fraction(), 0.2);
}

TEST(Stats, RingReentriesDoNotInflateUseFraction) {
  Stats s;
  s.reset(0);
  // Two delivered packets; one of them bounces on and off the ring three
  // times. The fraction counts distinct packets, so it stays at 0.5 (the
  // old raw-entries accounting would report 1.5).
  for (int i = 0; i < 2; ++i) s.on_delivered(0, 8, 10, 0, 3);
  s.on_ring_enter(/*first_entry=*/true);
  s.on_ring_enter(/*first_entry=*/false);
  s.on_ring_enter(/*first_entry=*/false);
  EXPECT_EQ(s.ring_entries(), 3u);
  EXPECT_EQ(s.ring_packets(), 1u);
  EXPECT_EQ(s.ring_reentries(), 2u);
  EXPECT_DOUBLE_EQ(s.ring_use_fraction(), 0.5);
}

TEST(LatencyHistogram, OverflowCountAndClampPercentile) {
  LatencyHistogram h;
  EXPECT_EQ(h.overflow_count(), 0u);
  h.add(100);
  // 2^45 exceeds the top-bucket floor (2^38): clamped and counted.
  h.add(u64{1} << 45);
  EXPECT_EQ(h.overflow_count(), 1u);
  EXPECT_EQ(h.total(), 2u);
  EXPECT_EQ(h.bucket_count(LatencyHistogram::kBuckets - 1), 1u);
  // The clamp bucket reports its floor (a true lower bound), not a
  // fabricated midpoint.
  EXPECT_EQ(h.percentile(1.0),
            LatencyHistogram::bucket_floor(LatencyHistogram::kBuckets - 1));
  // A value that lands exactly in the top bucket without exceeding its
  // floor range is not an overflow.
  LatencyHistogram h2;
  h2.add(LatencyHistogram::bucket_floor(LatencyHistogram::kBuckets - 1));
  EXPECT_EQ(h2.overflow_count(), 0u);
  EXPECT_EQ(h2.bucket_count(LatencyHistogram::kBuckets - 1), 1u);
}

TEST(TimeSeries, BucketsByCycle) {
  TimeSeries ts(1000, 500, 100);
  EXPECT_EQ(ts.num_buckets(), 5u);
  ts.record(1000, 10.0);
  ts.record(1099, 30.0);
  ts.record(1100, 7.0);
  ts.record(999, 99.0);   // before window: dropped
  ts.record(1500, 99.0);  // after window: dropped
  EXPECT_EQ(ts.bucket(0).count, 2u);
  EXPECT_DOUBLE_EQ(ts.bucket(0).mean(), 20.0);
  EXPECT_EQ(ts.bucket(1).count, 1u);
  EXPECT_DOUBLE_EQ(ts.bucket(1).mean(), 7.0);
  EXPECT_EQ(ts.bucket(4).count, 0u);
  EXPECT_DOUBLE_EQ(ts.bucket(4).mean(), 0.0);
}

TEST(TimeSeries, BucketMidpoints) {
  TimeSeries ts(2000, 300, 100);
  EXPECT_EQ(ts.bucket_mid(0), 2050u);
  EXPECT_EQ(ts.bucket_mid(2), 2250u);
}

TEST(Stats, SeriesSurvivesWindowReset) {
  Stats s;
  s.enable_timeseries(0, 1000, 100);
  s.on_delivered(0, 8, 42, 50, 3);
  s.reset(500);
  s.on_delivered(0, 8, 43, 550, 3);
  ASSERT_NE(s.series(), nullptr);
  EXPECT_EQ(s.series()->bucket(0).count, 1u);
  EXPECT_EQ(s.series()->bucket(5).count, 1u);
}

}  // namespace
}  // namespace ofar
