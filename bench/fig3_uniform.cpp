// Fig. 3 reproduction: latency (a) and throughput (b) versus offered load
// under uniform random traffic (UN), for MIN, PB, OFAR and OFAR-L.
// VAL is omitted exactly as in the paper (it halves UN throughput).
//
// Expected shape (paper §VI-A): OFAR latency competitive with MIN at low
// load; OFAR/OFAR-L saturate later than MIN and PB; PB latency visibly
// higher at low load due to spurious misrouting; local misrouting makes
// little difference under UN.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ofar;
  using namespace ofar::bench;
  CommandLine cli(argc, argv);
  const BenchOptions opts = BenchOptions::parse(cli, 5'000, 6'000);
  const std::vector<double> loads = load_grid(cli, 0.05, 0.60, 8);
  if (!reject_unknown(cli)) return 1;

  std::vector<MechanismSpec> specs = {
      {"MIN", opts.config(RoutingKind::kMin)},
      {"PB", opts.config(RoutingKind::kPb)},
      {"OFAR", opts.config(RoutingKind::kOfar)},
      {"OFAR-L", opts.config(RoutingKind::kOfarL)},
  };
  std::printf("Fig. 3 (UN) on %s\n", specs[0].cfg.summary().c_str());
  steady_figure("fig3", "Fig. 3: uniform random traffic (UN)", opts,
                TrafficPattern::uniform(), loads, specs);
  return 0;
}
