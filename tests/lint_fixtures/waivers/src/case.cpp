// Fixture: a `// lint: allow(<rule>)` comment on the offending line
// suppresses exactly that rule at that site — other rules and other
// lines still fire.

struct Net {
  OFAR_SERIAL_ONLY void deliver_events();
};

struct Engine {
  OFAR_PARALLEL_PHASE void advance(Net& net);
  OFAR_SERIAL_ONLY int total_ = 0;
};

void Engine::advance(Net& net) {
  net.deliver_events();  // lint: allow(serial-call)
  total_ = 1;            // lint: allow(serial-call) -- wrong rule: expect: serial-write
  net.deliver_events();  // expect: serial-call
}
