// Channel is plain data; this TU compile-checks the header in isolation.
#include "sim/channel.hpp"
