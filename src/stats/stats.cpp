#include "stats/stats.hpp"

#include <algorithm>

namespace ofar {

namespace {
const LatencyAccum kEmptyAccum{};
}

void Stats::reset(Cycle now) {
  window_start_ = now;
  generated_packets_ = generated_phits_ = 0;
  injected_packets_ = 0;
  delivered_packets_ = delivered_phits_ = 0;
  local_misroutes_ = global_misroutes_ = 0;
  ring_entries_ = ring_exits_ = 0;
  ring_packets_ = ring_reentries_ = 0;
  stalled_packets_ = worst_stall_ = 0;
  max_hops_ = 0;
  hops_sum_ = 0.0;
  latency_ = LatencyAccum{};
  histogram_ = LatencyHistogram{};
  by_tag_.clear();
  // The time series deliberately survives reset: transient experiments open
  // a new window mid-run while the series spans the whole experiment.
}

void Stats::on_generated(u16 tag, u32 phits) {
  ++generated_packets_;
  generated_phits_ += phits;
  if (tag >= by_tag_.size()) by_tag_.resize(tag + 1);
}

void Stats::on_injected() { ++injected_packets_; }

void Stats::on_delivered(u16 tag, u32 phits, u64 latency, Cycle birth,
                         u32 hops) {
  ++delivered_packets_;
  delivered_phits_ += phits;
  max_hops_ = std::max<u64>(max_hops_, hops);
  hops_sum_ += hops;
  latency_.add(latency);
  histogram_.add(latency);
  if (tag >= by_tag_.size()) by_tag_.resize(tag + 1);
  by_tag_[tag].add(latency);
  if (series_) series_->record(birth, static_cast<double>(latency));
}

const LatencyAccum& Stats::latency_by_tag(u16 tag) const {
  if (tag >= by_tag_.size()) return kEmptyAccum;
  return by_tag_[tag];
}

}  // namespace ofar
