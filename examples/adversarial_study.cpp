// §III motivation study: why local links — not just global ones — saturate
// a dragonfly under adversarial traffic, and what each routing answer does
// about it.
//
// The example runs ADV+1 (global-link pathology) and ADV+h (local-link
// funnel) under MIN, VAL and OFAR, prints accepted throughput against the
// paper's closed-form ceilings, and then uses the per-channel phit counters
// to show the actual link-utilisation profile: under VAL + ADV+h the
// hottest local link carries ~h times the mean, exactly the funnel of
// Fig. 2a.
//
//   ./adversarial_study [--h 4] [--load 0.4] [--cycles 8000] [--seed 1]
#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "common/cli.hpp"
#include "sim/network.hpp"
#include "traffic/generator.hpp"

using namespace ofar;

namespace {

struct LinkProfile {
  double mean_local = 0.0;
  double max_local = 0.0;
  double mean_global = 0.0;
  double max_global = 0.0;
};

LinkProfile profile_links(const Network& net, Cycle cycles) {
  LinkProfile p;
  u64 nl = 0, ng = 0;
  for (ChannelId c = 0; c < net.num_channels(); ++c) {
    if (!net.channel_wired(c)) continue;
    const Channel ch = net.channel(c);
    const double util = static_cast<double>(net.channel_phits(c)) / cycles;
    if (ch.cls == ChannelClass::kLocal) {
      p.mean_local += util;
      p.max_local = std::max(p.max_local, util);
      ++nl;
    } else if (ch.cls == ChannelClass::kGlobal) {
      p.mean_global += util;
      p.max_global = std::max(p.max_global, util);
      ++ng;
    }
  }
  if (nl != 0) p.mean_local /= nl;
  if (ng != 0) p.mean_global /= ng;
  return p;
}

void study(const char* mech_name, RoutingKind kind, u32 h, u32 offset,
           double load, Cycle cycles, u64 seed) {
  SimConfig cfg;
  cfg.h = h;
  cfg.seed = seed;
  cfg.routing = kind;
  if (cfg.vc_ordered()) cfg.ring = RingKind::kNone;
  Network net(cfg);
  net.set_traffic(std::make_unique<BernoulliSource>(
      TrafficPattern::adversarial(offset), load, seed));
  net.run(cycles);

  const LinkProfile p = profile_links(net, cycles);
  const double accepted =
      net.stats().accepted_load(net.now(), net.topo().nodes());
  std::printf(
      "  %-5s accepted %.3f | local links: mean %.3f max %.3f (x%.1f) | "
      "global links: mean %.3f max %.3f\n",
      mech_name, accepted, p.mean_local, p.max_local,
      p.mean_local > 0 ? p.max_local / p.mean_local : 0.0, p.mean_global,
      p.max_global);
}

}  // namespace

int main(int argc, char** argv) {
  CommandLine cli(argc, argv);
  const u32 h = static_cast<u32>(cli.get_uint("h", 4));
  const double load = cli.get_double("load", 0.4);
  const Cycle cycles = cli.get_uint("cycles", 8'000);
  const u64 seed = cli.get_uint("seed", 1);
  for (const auto& key : cli.unused_keys()) {
    std::fprintf(stderr, "unknown option --%s\n", key.c_str());
    return 1;
  }

  std::printf("Adversarial-traffic study on a dragonfly with h=%u "
              "(offered load %.2f)\n\n", h, load);
  std::printf("analytic ceilings (§III): MIN under ADV: 1/(2h^2) = %.4f | "
              "VAL: 0.5 | VAL under ADV+h: 1/h = %.4f\n\n",
              1.0 / (2.0 * h * h), 1.0 / h);

  std::printf("ADV+1: all inter-group traffic of a group shares ONE global "
              "link under MIN\n");
  for (const auto& [name, kind] :
       std::vector<std::pair<const char*, RoutingKind>>{
           {"MIN", RoutingKind::kMin},
           {"VAL", RoutingKind::kVal},
           {"OFAR", RoutingKind::kOfar}})
    study(name, kind, h, 1, load, cycles, seed);

  std::printf("\nADV+h: VAL's misrouted transit traffic funnels through one "
              "local link per group pair (Fig. 2a)\n");
  for (const auto& [name, kind] :
       std::vector<std::pair<const char*, RoutingKind>>{
           {"MIN", RoutingKind::kMin},
           {"VAL", RoutingKind::kVal},
           {"OFAR", RoutingKind::kOfar}})
    study(name, kind, h, h, load, cycles, seed);

  std::printf("\nReading: under ADV+h the VAL row shows a hot local link at "
              "~1 phit/cycle while the mean stays low — the §III funnel. "
              "OFAR's local misrouting spreads that traffic and lifts "
              "accepted load toward the 0.5 global bound.\n");
  return 0;
}
