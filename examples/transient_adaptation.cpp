// Transient-adaptation demo (the paper's Fig. 6 scenario as an API tour):
// warm the network with one traffic pattern, switch to another at a known
// cycle, and watch how fast each mechanism's latency settles. Prints an
// ASCII latency timeline per mechanism so the adaptation period is visible
// directly in the terminal.
//
//   ./transient_adaptation [--h 4] [--load 0.14] [--from UN] [--to ADV+4]
//                          [--switch-at 15000] [--horizon 9000] [--seed 1]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "core/experiment.hpp"

using namespace ofar;

namespace {

TrafficPattern parse_pattern(const std::string& text, u32 /*h*/) {
  if (text == "UN") return TrafficPattern::uniform();
  if (text.rfind("ADV+", 0) == 0)
    return TrafficPattern::adversarial(
        static_cast<u32>(std::strtoul(text.c_str() + 4, nullptr, 10)));
  std::fprintf(stderr, "unknown pattern '%s' (use UN or ADV+n)\n",
               text.c_str());
  std::exit(1);
}

void print_timeline(const char* label, const TransientResult& result) {
  double lo = 1e300, hi = 0.0;
  for (const auto& b : result.series) {
    if (b.packets == 0) continue;
    lo = std::min(lo, b.mean_latency);
    hi = std::max(hi, b.mean_latency);
  }
  const double span = std::max(1.0, hi - lo);
  std::printf("%-7s |", label);
  for (const auto& b : result.series) {
    static const char* kRamp[] = {" ", ".", ":", "-", "=", "#", "@"};
    const int level =
        b.packets == 0
            ? 0
            : 1 + static_cast<int>(5.99 * (b.mean_latency - lo) / span);
    std::printf("%s", kRamp[std::clamp(level, 0, 6)]);
  }
  std::printf("|  %.0f..%.0f cycles\n", lo, hi);
}

}  // namespace

int main(int argc, char** argv) {
  CommandLine cli(argc, argv);
  SimConfig base;
  base.h = static_cast<u32>(cli.get_uint("h", 4));
  base.seed = cli.get_uint("seed", 1);
  const double load = cli.get_double("load", 0.14);
  const TrafficPattern from =
      parse_pattern(cli.get_string("from", "UN"), base.h);
  const TrafficPattern to = parse_pattern(
      cli.get_string("to", "ADV+" + std::to_string(base.h)), base.h);
  TransientParams params;
  params.warmup = cli.get_uint("switch-at", 15'000);
  params.horizon = cli.get_uint("horizon", 9'000);
  params.lead = 1'500;
  params.drain = 15'000;
  params.bucket = static_cast<u32>(cli.get_uint("bucket", 300));
  for (const auto& key : cli.unused_keys()) {
    std::fprintf(stderr, "unknown option --%s\n", key.c_str());
    return 1;
  }

  std::printf("Transient adaptation: %s -> %s at cycle %llu, load %.2f, "
              "h=%u\n",
              from.describe().c_str(), to.describe().c_str(),
              static_cast<unsigned long long>(params.warmup), load, base.h);
  std::printf("Each column is a %u-cycle bucket of mean latency by SEND "
              "cycle; the switch happens at the '|' marker position %llu.\n\n",
              params.bucket,
              static_cast<unsigned long long>(params.lead / params.bucket));

  for (const auto& [label, kind] :
       std::vector<std::pair<const char*, RoutingKind>>{
           {"PB", RoutingKind::kPb},
           {"OFAR", RoutingKind::kOfar},
           {"OFAR-L", RoutingKind::kOfarL}}) {
    SimConfig cfg = base;
    cfg.routing = kind;
    cfg.ring = cfg.vc_ordered() ? RingKind::kNone : RingKind::kPhysical;
    const TransientResult result =
        run_transient(cfg, from, load, to, load, params);
    print_timeline(label, result);
  }
  std::printf("\nReading: a long dark ('#@') plateau after the switch is an "
              "adaptation period; OFAR's in-transit misrouting reacts in "
              "place of waiting for remote congestion news, so its plateau "
              "is the shortest (paper §VI-B).\n");
  return 0;
}
