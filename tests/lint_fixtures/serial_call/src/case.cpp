// Fixture: calls into OFAR_SERIAL_ONLY functions from parallel-phase
// code must be flagged, both directly and through an unannotated helper
// (transitive reachability), with explicit and implicit receivers.

struct Net {
  OFAR_SERIAL_ONLY void deliver_events();
  void helper();
};

void Net::helper() {
  deliver_events();  // expect: serial-call
}

struct Engine {
  OFAR_PARALLEL_PHASE void advance(Net& net);
  OFAR_SERIAL_ONLY void commit(Net& net);
};

void Engine::advance(Net& net) {
  net.deliver_events();  // expect: serial-call
  net.helper();
}

void Engine::commit(Net& net) {
  net.deliver_events();  // fine: serial caller
}
