// Fixture: parallel-phase writes to state with no shard-ownership
// annotation must be flagged; OFAR_SHARD_LOCAL classes and mutations of
// caller-supplied parameters (ShardState staging) are fine.

struct Queue {
  void push(int v);
  int head_ = 0;
};

void Queue::push(int v) {
  head_ = v;  // expect: cross-shard-write
}

struct OFAR_SHARD_LOCAL Buffer {
  void put(int v);
  int slot_ = 0;
};

void Buffer::put(int v) {
  slot_ = v;  // fine: shard-local class
}

struct ShardState {
  int staged_ = 0;
};

struct Kernel {
  OFAR_PARALLEL_PHASE void phase(ShardState& sh);
  Queue q_;
  Buffer b_;
  int scratch_ = 0;
};

void Kernel::phase(ShardState& sh) {
  q_.push(1);      // expect: cross-shard-write
  b_.put(2);
  scratch_ = 3;    // expect: cross-shard-write
  sh.staged_ = 4;  // fine: staging into the caller's ShardState
}
