// Cross-configuration property matrix: the invariants that must hold for
// EVERY sensible (mechanism, ring, VC-count, packet-size, seed) combination
// — complete delivery, flow-control conservation, quiescence after drain,
// and zero watchdog hits. These sweeps are the repository's main defence
// against configuration-dependent corner cases.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>

#include "sim/network.hpp"
#include "traffic/generator.hpp"

namespace ofar {
namespace {

struct MatrixCase {
  RoutingKind routing;
  RingKind ring;
  u32 packet_size;
  u64 seed;
};

std::string case_name(const ::testing::TestParamInfo<MatrixCase>& info) {
  std::string n = to_string(info.param.routing);
  for (auto& c : n)
    if (c == '-') c = '_';
  n += std::string("_") + to_string(info.param.ring);
  n += "_p" + std::to_string(info.param.packet_size);
  n += "_s" + std::to_string(info.param.seed);
  return n;
}

class ConfigMatrixTest : public ::testing::TestWithParam<MatrixCase> {
 protected:
  SimConfig make_config() const {
    const MatrixCase& p = GetParam();
    SimConfig cfg;
    cfg.h = 2;
    cfg.routing = p.routing;
    cfg.ring = p.ring;
    cfg.packet_size = p.packet_size;
    cfg.seed = p.seed;
    if (p.routing == RoutingKind::kPar) cfg.vcs_local = 4;
    return cfg;
  }
};

TEST_P(ConfigMatrixTest, DeliveryConservationQuiescence) {
  const SimConfig cfg = make_config();
  ASSERT_EQ(cfg.validate(), "");
  Network net(cfg);
  net.set_traffic(std::make_unique<BernoulliSource>(
      TrafficPattern::mix({{PatternKind::kUniform, 0, 0.7},
                           {PatternKind::kAdversarial, 1, 0.3}}),
      0.12, cfg.seed));
  net.run(2500);
  ASSERT_TRUE(net.check_flow_conservation());
  net.set_traffic(nullptr);
  u64 guard = 0;
  while (!net.drained() && ++guard < 500000) net.step();
  ASSERT_TRUE(net.drained());
  net.run(cfg.global_latency + 2);
  EXPECT_TRUE(net.check_quiescent());
  EXPECT_EQ(net.stats().delivered_packets(), net.stats().injected_packets());
  EXPECT_EQ(net.stats().stalled_packets(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Mechanisms, ConfigMatrixTest,
    ::testing::Values(
        MatrixCase{RoutingKind::kMin, RingKind::kNone, 8, 1},
        MatrixCase{RoutingKind::kVal, RingKind::kNone, 8, 1},
        MatrixCase{RoutingKind::kPb, RingKind::kNone, 8, 1},
        MatrixCase{RoutingKind::kUgal, RingKind::kNone, 8, 1},
        MatrixCase{RoutingKind::kPar, RingKind::kNone, 8, 1},
        MatrixCase{RoutingKind::kOfar, RingKind::kPhysical, 8, 1},
        MatrixCase{RoutingKind::kOfar, RingKind::kEmbedded, 8, 1},
        MatrixCase{RoutingKind::kOfarL, RingKind::kPhysical, 8, 1},
        MatrixCase{RoutingKind::kOfarL, RingKind::kEmbedded, 8, 1}),
    case_name);

INSTANTIATE_TEST_SUITE_P(
    PacketSizes, ConfigMatrixTest,
    ::testing::Values(
        MatrixCase{RoutingKind::kOfar, RingKind::kPhysical, 1, 1},
        MatrixCase{RoutingKind::kOfar, RingKind::kPhysical, 4, 1},
        MatrixCase{RoutingKind::kOfar, RingKind::kPhysical, 16, 1},
        MatrixCase{RoutingKind::kMin, RingKind::kNone, 1, 1},
        MatrixCase{RoutingKind::kVal, RingKind::kNone, 16, 1}),
    case_name);

INSTANTIATE_TEST_SUITE_P(
    Seeds, ConfigMatrixTest,
    ::testing::Values(
        MatrixCase{RoutingKind::kOfar, RingKind::kPhysical, 8, 7},
        MatrixCase{RoutingKind::kOfar, RingKind::kEmbedded, 8, 99},
        MatrixCase{RoutingKind::kPb, RingKind::kNone, 8, 7},
        MatrixCase{RoutingKind::kVal, RingKind::kNone, 8, 1234567}),
    case_name);

// ---- non-maximal (trimmed) topologies ----

class TrimmedTopologyTest : public ::testing::TestWithParam<u32> {};

TEST_P(TrimmedTopologyTest, MinRoutingWorksOnTrimmedNetworks) {
  SimConfig cfg;
  cfg.h = 3;
  cfg.groups = GetParam();
  cfg.routing = RoutingKind::kMin;
  cfg.ring = RingKind::kNone;
  cfg.seed = 11;
  ASSERT_EQ(cfg.validate(), "");
  Network net(cfg);
  net.set_traffic(std::make_unique<BernoulliSource>(
      TrafficPattern::uniform(), 0.1, 11));
  net.run(2500);
  net.set_traffic(nullptr);
  u64 guard = 0;
  while (!net.drained() && ++guard < 500000) net.step();
  EXPECT_TRUE(net.drained());
  EXPECT_GT(net.stats().delivered_packets(), 100u);
}

INSTANTIATE_TEST_SUITE_P(GroupCounts, TrimmedTopologyTest,
                         ::testing::Values(2u, 3u, 7u, 12u, 19u));

// ---- different VC provisioning for OFAR (Fig. 9 style, but healthy) ----

class VcProvisioningTest
    : public ::testing::TestWithParam<std::pair<u32, u32>> {};

TEST_P(VcProvisioningTest, OfarDrainsWithAnyVcCount) {
  const auto [local, global] = GetParam();
  SimConfig cfg;
  cfg.h = 2;
  cfg.routing = RoutingKind::kOfar;
  cfg.ring = RingKind::kEmbedded;
  cfg.vcs_local = local;
  cfg.vcs_global = global;
  cfg.seed = 21;
  ASSERT_EQ(cfg.validate(), "");
  Network net(cfg);
  net.set_traffic(std::make_unique<BernoulliSource>(
      TrafficPattern::uniform(), 0.1, 21));
  net.run(2500);
  net.set_traffic(nullptr);
  u64 guard = 0;
  while (!net.drained() && ++guard < 500000) net.step();
  EXPECT_TRUE(net.drained());
  EXPECT_EQ(net.stats().stalled_packets(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    VcCounts, VcProvisioningTest,
    ::testing::Values(std::make_pair(1u, 1u), std::make_pair(2u, 1u),
                      std::make_pair(3u, 2u), std::make_pair(4u, 3u)));

}  // namespace
}  // namespace ofar
