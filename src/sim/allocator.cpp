#include "sim/allocator.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace ofar {

SeparableAllocator::SeparableAllocator(u32 max_ports)
    : by_input_(max_ports),
      by_output_(max_ports),
      matched_in_(max_ports, 0),
      matched_out_(max_ports, 0) {
  for (auto& lane : by_input_) lane.reserve(8);
  for (auto& lane : by_output_) lane.reserve(8);
  touched_inputs_.reserve(max_ports);
  touched_outputs_.reserve(max_ports);
  vc_candidates_.reserve(8);
  in_candidates_.reserve(max_ports);
}

void SeparableAllocator::run(Router& router, std::vector<AllocRequest>& reqs,
                             u32 iterations, Cycle now) {
  if (reqs.empty()) return;

  touched_inputs_.clear();
  for (u32 i = 0; i < reqs.size(); ++i) {
    OFAR_DCHECK(reqs[i].choice.valid);
    const PortId in = reqs[i].in_port;
    if (by_input_[in].empty()) touched_inputs_.push_back(in);
    by_input_[in].push_back(i);
    matched_in_[in] = 0;
    matched_out_[reqs[i].choice.out_port] = 0;
  }

  for (u32 it = 0; it < iterations; ++it) {
    // ---- stage 1: per-input VC arbitration (LRS over VC index) ----
    touched_outputs_.clear();
    bool any = false;
    for (const u32 in : touched_inputs_) {
      if (matched_in_[in]) continue;
      vc_candidates_.clear();
      for (const u32 ri : by_input_[in]) {
        const AllocRequest& rq = reqs[ri];
        if (!matched_out_[rq.choice.out_port])
          vc_candidates_.push_back(rq.in_vc);
      }
      if (vc_candidates_.empty()) continue;
      const u32 vc = router.input_arb[in].pick(vc_candidates_);
      for (const u32 ri : by_input_[in]) {
        if (reqs[ri].in_vc == vc &&
            !matched_out_[reqs[ri].choice.out_port]) {
          const PortId out = reqs[ri].choice.out_port;
          if (by_output_[out].empty()) touched_outputs_.push_back(out);
          by_output_[out].push_back(ri);
          any = true;
          break;
        }
      }
    }
    if (!any) break;

    // ---- stage 2: per-output input arbitration (LRS over input port) ----
    for (const u32 out : touched_outputs_) {
      if (by_output_[out].empty()) continue;
      if (!matched_out_[out]) {
        in_candidates_.clear();
        for (const u32 ri : by_output_[out])
          in_candidates_.push_back(reqs[ri].in_port);
        const u32 winner_in = router.output_arb[out].pick(in_candidates_);
        for (const u32 ri : by_output_[out]) {
          AllocRequest& rq = reqs[ri];
          if (rq.in_port != winner_in) continue;
          rq.granted = true;
          matched_in_[winner_in] = 1;
          matched_out_[out] = 1;
          router.input_arb[winner_in].grant(rq.in_vc, now);
          router.output_arb[out].grant(winner_in, now);
          break;
        }
      }
      by_output_[out].clear();
    }
  }

  // Leave scratch clean for the next router.
  for (const u32 in : touched_inputs_) by_input_[in].clear();
  for (const u32 out : touched_outputs_) by_output_[out].clear();
}

}  // namespace ofar
