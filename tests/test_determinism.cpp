// Determinism regression suite for the activity-driven cycle kernel.
//
// The kernel optimizations (activity worklists, SoA port state, the
// blocked Bernoulli source, the routable-head allocation skip) are only
// admissible because they leave per-seed behaviour bit-identical. This
// suite pins that property three ways:
//
//  1. Golden stats: the four perf_core matrix points must reproduce stat
//     digests captured from the pre-worklist full-scan implementation
//     (seed commit) exactly — including latency accumulators compared as
//     doubles with zero tolerance.
//  2. Replay: the same config+seed run twice yields byte-identical stats.
//  3. Thread-independence: run_load_sweep at 1 and 4 worker threads gives
//     identical per-point results (each point owns its RNGs; threads only
//     change scheduling).
//
// Plus structural invariants after a drain: flow conservation, quiescence,
// and worklist consistency (Network::check_worklists).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/experiment.hpp"
#include "sim/network.hpp"
#include "traffic/generator.hpp"
#include "traffic/pattern.hpp"

namespace ofar {
namespace {

SimConfig matrix_config() {
  SimConfig cfg;
  cfg.h = 4;
  cfg.seed = 12345;
  cfg.routing = RoutingKind::kOfar;
  cfg.ring = RingKind::kPhysical;
  return cfg;
}

/// Flattened stat digest; every field a golden constant can pin.
struct Digest {
  u64 generated, injected, delivered, delivered_phits;
  double lat_sum, lat_sum_sq;
  u64 local_mis, global_mis, ring_in, ring_out;
  double mean_hops;
  u64 max_hops;
  bool drained;
};

Digest digest(const Network& net) {
  const Stats& s = net.stats();
  return {s.generated_packets(), s.injected_packets(), s.delivered_packets(),
          s.delivered_phits(),   s.latency().sum,      s.latency().sum_sq,
          s.local_misroutes(),   s.global_misroutes(), s.ring_entries(),
          s.ring_exits(),        s.mean_hops(),        s.max_hops(),
          net.drained()};
}

void expect_digest_eq(const Digest& a, const Digest& b) {
  EXPECT_EQ(a.generated, b.generated);
  EXPECT_EQ(a.injected, b.injected);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.delivered_phits, b.delivered_phits);
  // Bit-identical, not approximately equal: the accumulation order itself
  // is part of the determinism contract.
  EXPECT_EQ(a.lat_sum, b.lat_sum);
  EXPECT_EQ(a.lat_sum_sq, b.lat_sum_sq);
  EXPECT_EQ(a.local_mis, b.local_mis);
  EXPECT_EQ(a.global_mis, b.global_mis);
  EXPECT_EQ(a.ring_in, b.ring_in);
  EXPECT_EQ(a.ring_out, b.ring_out);
  EXPECT_EQ(a.mean_hops, b.mean_hops);
  EXPECT_EQ(a.max_hops, b.max_hops);
  EXPECT_EQ(a.drained, b.drained);
}

/// perf_core's "low" points: burst at `load` until cycle 2000, then drain
/// over a 40000-cycle horizon.
Digest run_low(const TrafficPattern& pattern, Network* keep = nullptr) {
  Network local(matrix_config());
  Network& net = keep ? *keep : local;
  std::vector<PhasedSource::Phase> phases(1);
  phases[0].pattern = pattern;
  phases[0].load_phits = 0.01;
  phases[0].until = 2000;
  net.set_traffic(std::make_unique<PhasedSource>(std::move(phases), 12345));
  net.run(40000);
  return digest(net);
}

/// perf_core's "sat" points: steady Bernoulli for 3000 cycles.
Digest run_sat(const TrafficPattern& pattern, double load) {
  Network net(matrix_config());
  net.set_traffic(std::make_unique<BernoulliSource>(pattern, load, 12345));
  net.run(3000);
  return digest(net);
}

// ---------------------------------------------------------------------------
// 1. Golden stats captured from the seed (pre-worklist) implementation.
//    Hex-float literals so the comparison is exact. Regenerate only if the
//    simulation *semantics* intentionally change; a mismatch after a pure
//    performance change means the optimization altered behaviour.
// ---------------------------------------------------------------------------

TEST(GoldenStats, UniformLowBurstDrain) {
  const Digest d = run_low(TrafficPattern::uniform());
  expect_digest_eq(d, {2667, 2667, 2667, 21336, 0x1.4db28p+18,
                       0x1.53af67p+25, 2, 0, 0, 0, 0x1.5c19b98b7877p+1, 4,
                       true});
}

TEST(GoldenStats, AdversarialLowBurstDrain) {
  const Digest d = run_low(TrafficPattern::adversarial(1));
  expect_digest_eq(d, {2667, 2667, 2667, 21336, 0x1.6476p+18, 0x1.8722f1p+25,
                       212, 98, 0, 0, 0x1.78b4751af8fe3p+1, 6, true});
}

TEST(GoldenStats, UniformSaturation) {
  const Digest d = run_sat(TrafficPattern::uniform(), 1.0);
  expect_digest_eq(d, {396316, 271080, 187507, 1500056, 0x1.168f1a4p+27,
                       0x1.18208ca9cp+37, 159776, 27060, 12262, 9931,
                       0x1.d37de6467d51cp+1, 32, false});
}

TEST(GoldenStats, AdversarialSaturation) {
  const Digest d = run_sat(TrafficPattern::adversarial(1), 0.7);
  expect_digest_eq(d, {277320, 184021, 92427, 739416, 0x1.9402fecp+26,
                       0x1.199a89e638p+37, 142220, 147991, 14964, 10268,
                       0x1.0a4501716b2b9p+2, 17, false});
}

// ---------------------------------------------------------------------------
// 2. Replay: identical config+seed twice -> identical stats.
// ---------------------------------------------------------------------------

TEST(Replay, SameSeedTwiceIsByteIdentical) {
  const Digest a = run_sat(TrafficPattern::adversarial(1), 0.7);
  const Digest b = run_sat(TrafficPattern::adversarial(1), 0.7);
  expect_digest_eq(a, b);
}

TEST(Replay, DifferentSeedDiverges) {
  SimConfig cfg = matrix_config();
  Network a(cfg);
  cfg.seed = 54321;
  Network b(cfg);
  a.set_traffic(std::make_unique<BernoulliSource>(TrafficPattern::uniform(),
                                                  0.3, 12345));
  b.set_traffic(std::make_unique<BernoulliSource>(TrafficPattern::uniform(),
                                                  0.3, 54321));
  a.run(3000);
  b.run(3000);
  EXPECT_NE(digest(a).lat_sum, digest(b).lat_sum);
}

// ---------------------------------------------------------------------------
// 3. Sweep results do not depend on the worker-thread count.
// ---------------------------------------------------------------------------

TEST(Replay, SweepThreadCountDoesNotChangeResults) {
  const SimConfig cfg = matrix_config();
  const std::vector<double> loads = {0.05, 0.2};
  RunParams params;
  params.warmup = 500;
  params.measure = 1000;
  const auto one =
      run_load_sweep(cfg, TrafficPattern::uniform(), loads, params, 1);
  const auto four =
      run_load_sweep(cfg, TrafficPattern::uniform(), loads, params, 4);
  ASSERT_EQ(one.size(), four.size());
  for (std::size_t i = 0; i < one.size(); ++i) {
    EXPECT_EQ(one[i].load, four[i].load);
    EXPECT_EQ(one[i].result.delivered_packets, four[i].result.delivered_packets);
    EXPECT_EQ(one[i].result.avg_latency, four[i].result.avg_latency);
    EXPECT_EQ(one[i].result.accepted_load, four[i].result.accepted_load);
    EXPECT_EQ(one[i].result.local_misroutes, four[i].result.local_misroutes);
    EXPECT_EQ(one[i].result.global_misroutes,
              four[i].result.global_misroutes);
  }
}

// ---------------------------------------------------------------------------
// 4. Structural invariants after a full drain.
// ---------------------------------------------------------------------------

TEST(Invariants, DrainedNetworkIsConsistent) {
  Network net(matrix_config());
  (void)run_low(TrafficPattern::uniform(), &net);
  ASSERT_TRUE(net.drained());
  EXPECT_TRUE(net.check_flow_conservation());
  EXPECT_TRUE(net.check_quiescent());
  EXPECT_TRUE(net.check_worklists());
}

TEST(Invariants, WorklistsConsistentMidFlight) {
  Network net(matrix_config());
  net.set_traffic(std::make_unique<BernoulliSource>(TrafficPattern::uniform(),
                                                    0.3, 12345));
  for (int chunk = 0; chunk < 20; ++chunk) {
    net.run(100);
    ASSERT_TRUE(net.check_flow_conservation());
    ASSERT_TRUE(net.check_worklists());
  }
}

// ---------------------------------------------------------------------------
// 5. Sharded cycle kernel (DESIGN.md §10). With sim_shards > 1 the staged
//    commit kernel is its own deterministic universe: its results differ
//    from sim_shards=1 (allocation/injection interleaving changes), but must
//    be bit-identical across every sim_threads value — the thread count is
//    pure execution policy. Test names contain "Thread" so the CI TSAN
//    job's --gtest_filter picks them up.
// ---------------------------------------------------------------------------

/// Small network (h=2: 36 routers, 72 nodes) so a saturated run stays fast.
SimConfig sharded_config(u32 shards, RingKind ring) {
  SimConfig cfg;
  cfg.h = 2;
  cfg.seed = 12345;
  cfg.routing = RoutingKind::kOfar;
  cfg.ring = ring;
  cfg.sim_shards = shards;
  return cfg;
}

Digest run_sharded_sat(const SimConfig& cfg, unsigned sim_threads,
                       const TrafficPattern& pattern, double load) {
  Network net(cfg);
  net.set_sim_threads(sim_threads);
  net.set_traffic(std::make_unique<BernoulliSource>(pattern, load, cfg.seed));
  net.run(3000);
  return digest(net);
}

TEST(ShardedKernel, SaturatedPhysicalRingIdenticalAcrossThreadCounts) {
  const SimConfig cfg = sharded_config(4, RingKind::kPhysical);
  const Digest one =
      run_sharded_sat(cfg, 1, TrafficPattern::adversarial(1), 0.7);
  // Saturated adversarial traffic exercises misroutes and the escape ring;
  // a commit ordered by thread arrival instead of shard index would diverge
  // here within a few cycles.
  expect_digest_eq(one,
                   run_sharded_sat(cfg, 2, TrafficPattern::adversarial(1),
                                   0.7));
  expect_digest_eq(one,
                   run_sharded_sat(cfg, 4, TrafficPattern::adversarial(1),
                                   0.7));
}

TEST(ShardedKernel, SaturatedEmbeddedRingIdenticalAcrossThreadCounts) {
  const SimConfig cfg = sharded_config(4, RingKind::kEmbedded);
  const Digest one =
      run_sharded_sat(cfg, 1, TrafficPattern::adversarial(1), 0.7);
  expect_digest_eq(one,
                   run_sharded_sat(cfg, 2, TrafficPattern::adversarial(1),
                                   0.7));
  expect_digest_eq(one,
                   run_sharded_sat(cfg, 4, TrafficPattern::adversarial(1),
                                   0.7));
}

TEST(ShardedKernel, UniformSaturationIdenticalAcrossThreadCounts) {
  const SimConfig cfg = sharded_config(4, RingKind::kPhysical);
  const Digest one = run_sharded_sat(cfg, 1, TrafficPattern::uniform(), 1.0);
  expect_digest_eq(one,
                   run_sharded_sat(cfg, 4, TrafficPattern::uniform(), 1.0));
}

TEST(ShardedKernel, GroupStraddlingShardBoundariesIdenticalAcrossThreads) {
  // 36 routers / 7 shards puts every shard boundary inside a group
  // (boundaries at routers 5,10,15,20,25,30; groups are 4 routers wide), so
  // intra-group traffic constantly crosses shards. Exercises the staged
  // outbox commit far harder than group-aligned partitions.
  const SimConfig cfg = sharded_config(7, RingKind::kPhysical);
  const Digest one =
      run_sharded_sat(cfg, 1, TrafficPattern::adversarial(1), 0.7);
  expect_digest_eq(one,
                   run_sharded_sat(cfg, 2, TrafficPattern::adversarial(1),
                                   0.7));
  expect_digest_eq(one,
                   run_sharded_sat(cfg, 4, TrafficPattern::adversarial(1),
                                   0.7));
}

TEST(ShardedKernel, ReplayWithThreadsIsByteIdentical) {
  const SimConfig cfg = sharded_config(4, RingKind::kPhysical);
  const Digest a =
      run_sharded_sat(cfg, 4, TrafficPattern::adversarial(1), 0.7);
  const Digest b =
      run_sharded_sat(cfg, 4, TrafficPattern::adversarial(1), 0.7);
  expect_digest_eq(a, b);
}

TEST(ShardedKernel, DrainedShardedNetworkIsConsistentAcrossThreads) {
  // Burst then drain on the sharded kernel: structural invariants must hold
  // and the drained digest must match a single-threaded run.
  auto drain = [](unsigned sim_threads) {
    SimConfig cfg = sharded_config(4, RingKind::kPhysical);
    Network net(cfg);
    net.set_sim_threads(sim_threads);
    std::vector<PhasedSource::Phase> phases(1);
    phases[0].pattern = TrafficPattern::uniform();
    phases[0].load_phits = 0.05;
    phases[0].until = 1000;
    net.set_traffic(std::make_unique<PhasedSource>(std::move(phases), 12345));
    net.run(20000);
    EXPECT_TRUE(net.drained());
    EXPECT_TRUE(net.check_flow_conservation());
    EXPECT_TRUE(net.check_quiescent());
    EXPECT_TRUE(net.check_worklists());
    return digest(net);
  };
  expect_digest_eq(drain(1), drain(4));
}

}  // namespace
}  // namespace ofar
