// Scale-path regression suite (DESIGN.md §"Scale").
//
// The million-endpoint work is only admissible if it changes *nothing*
// observable at paper scale:
//
//  1. Implicit arithmetic wiring must be indistinguishable from the
//     materialized-table reference (cfg.wiring_table) — pinned by digest
//     equality at h=4 across every routing mechanism.
//  2. Checkpoint/restart must resume bit-identically: save mid-run,
//     restore into a fresh network, and the continuation's stats equal an
//     uninterrupted run's — at every sim_threads split.
//  3. Lazy router construction must build only touched routers, and a
//     fully exercised network must still match eager behaviour (covered
//     by 1: the table path constructs eagerly).
//  4. The windowed TimeSeries must stream retired buckets through its
//     flush sink such that flushed + resident together are bit-identical
//     to the unbounded history.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/checkpoint.hpp"
#include "sim/network.hpp"
#include "stats/timeseries.hpp"
#include "traffic/generator.hpp"
#include "traffic/pattern.hpp"

namespace ofar {
namespace {

SimConfig scale_config(RoutingKind routing) {
  SimConfig cfg;
  cfg.h = 4;
  cfg.seed = 12345;
  cfg.routing = routing;
  cfg.ring = cfg.vc_ordered() ? RingKind::kNone : RingKind::kPhysical;
  if (routing == RoutingKind::kPar) cfg.vcs_local = 4;
  return cfg;
}

/// Flattened stat digest (same idiom as test_determinism.cpp): every field
/// compared exactly, doubles included.
struct Digest {
  u64 generated, injected, delivered, delivered_phits;
  double lat_sum, lat_sum_sq;
  u64 local_mis, global_mis, ring_in, ring_out;
  double mean_hops;
  u64 max_hops;
  Cycle now;
};

Digest digest(const Network& net) {
  const Stats& s = net.stats();
  return {s.generated_packets(), s.injected_packets(), s.delivered_packets(),
          s.delivered_phits(),   s.latency().sum,      s.latency().sum_sq,
          s.local_misroutes(),   s.global_misroutes(), s.ring_entries(),
          s.ring_exits(),        s.mean_hops(),        s.max_hops(),
          net.now()};
}

void expect_digest_eq(const Digest& a, const Digest& b) {
  EXPECT_EQ(a.generated, b.generated);
  EXPECT_EQ(a.injected, b.injected);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.delivered_phits, b.delivered_phits);
  // Bit-identical, not approximately equal: accumulation order is part of
  // the contract.
  EXPECT_EQ(a.lat_sum, b.lat_sum);
  EXPECT_EQ(a.lat_sum_sq, b.lat_sum_sq);
  EXPECT_EQ(a.local_mis, b.local_mis);
  EXPECT_EQ(a.global_mis, b.global_mis);
  EXPECT_EQ(a.ring_in, b.ring_in);
  EXPECT_EQ(a.ring_out, b.ring_out);
  EXPECT_EQ(a.mean_hops, b.mean_hops);
  EXPECT_EQ(a.max_hops, b.max_hops);
  EXPECT_EQ(a.now, b.now);
}

// ---------------------------------------------------------------------------
// 1. Implicit wiring == materialized table, every mechanism.
// ---------------------------------------------------------------------------

class WiringEquivalence : public ::testing::TestWithParam<RoutingKind> {};

TEST_P(WiringEquivalence, ImplicitMatchesTable) {
  Digest d[2];
  for (int table = 0; table < 2; ++table) {
    SimConfig cfg = scale_config(GetParam());
    cfg.wiring_table = table != 0;
    Network net(cfg);
    net.set_traffic(std::make_unique<BernoulliSource>(
        TrafficPattern::adversarial(1), 0.5, cfg.seed));
    net.run(2000);
    d[table] = digest(net);
  }
  expect_digest_eq(d[0], d[1]);
}

INSTANTIATE_TEST_SUITE_P(
    Mechanisms, WiringEquivalence,
    ::testing::Values(RoutingKind::kMin, RoutingKind::kVal, RoutingKind::kPb,
                      RoutingKind::kUgal, RoutingKind::kPar,
                      RoutingKind::kOfar, RoutingKind::kOfarL),
    [](const ::testing::TestParamInfo<RoutingKind>& info) {
      switch (info.param) {
        case RoutingKind::kMin: return "MIN";
        case RoutingKind::kVal: return "VAL";
        case RoutingKind::kPb: return "PB";
        case RoutingKind::kUgal: return "UGAL";
        case RoutingKind::kPar: return "PAR";
        case RoutingKind::kOfar: return "OFAR";
        case RoutingKind::kOfarL: return "OFAR_L";
      }
      return "unknown";
    });

// ---------------------------------------------------------------------------
// 2. Checkpoint/restart resumes bit-identically.
// ---------------------------------------------------------------------------

std::string ckpt_path(const char* tag) {
  return ::testing::TempDir() + "ofar_ckpt_" + tag + ".bin";
}

std::unique_ptr<TrafficSource> saturating_traffic(const SimConfig& cfg) {
  return std::make_unique<BernoulliSource>(TrafficPattern::uniform(), 0.9,
                                           cfg.seed);
}

class CheckpointRestart : public ::testing::TestWithParam<unsigned> {};

TEST_P(CheckpointRestart, MidRunSaveResumesBitIdentically) {
  const unsigned sim_threads = GetParam();
  const std::string path =
      ckpt_path(std::to_string(sim_threads).c_str());
  const SimConfig cfg = scale_config(RoutingKind::kOfar);

  // Reference: uninterrupted run to 800 with a mid-flight save at 400.
  Network a(cfg);
  a.set_traffic(saturating_traffic(cfg));
  a.set_sim_threads(sim_threads);
  a.run(400);
  std::string err;
  ASSERT_TRUE(CheckpointIO::save(a, path, &err)) << err;
  a.run(400);
  const Digest ref = digest(a);

  // Resume: fresh same-config network picks up at cycle 400.
  Network b(cfg);
  b.set_traffic(saturating_traffic(cfg));
  b.set_sim_threads(sim_threads);
  ASSERT_TRUE(CheckpointIO::restore(b, path, &err)) << err;
  EXPECT_EQ(b.now(), Cycle{400});
  b.run(400);
  expect_digest_eq(digest(b), ref);

  b.check_worklists();
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(SimThreads, CheckpointRestart,
                         ::testing::Values(1u, 2u, 4u));

TEST(CheckpointRestart, EveryMechanismRoundTrips) {
  // The policy/traffic save_state hooks differ per mechanism (Valiant lane
  // RNGs, Piggyback broadcast state, OFAR lanes); round-trip each one.
  for (const RoutingKind rk :
       {RoutingKind::kMin, RoutingKind::kVal, RoutingKind::kPb,
        RoutingKind::kUgal, RoutingKind::kPar, RoutingKind::kOfar,
        RoutingKind::kOfarL}) {
    const std::string path = ckpt_path("mech");
    const SimConfig cfg = scale_config(rk);
    Network a(cfg);
    a.set_traffic(saturating_traffic(cfg));
    a.run(300);
    std::string err;
    ASSERT_TRUE(CheckpointIO::save(a, path, &err)) << err;
    a.run(300);

    Network b(cfg);
    b.set_traffic(saturating_traffic(cfg));
    ASSERT_TRUE(CheckpointIO::restore(b, path, &err)) << err;
    b.run(300);
    expect_digest_eq(digest(b), digest(a));
    std::remove(path.c_str());
  }
}

TEST(CheckpointRestart, RejectsConfigMismatch) {
  const std::string path = ckpt_path("mismatch");
  const SimConfig cfg = scale_config(RoutingKind::kOfar);
  Network a(cfg);
  a.set_traffic(saturating_traffic(cfg));
  a.run(100);
  ASSERT_TRUE(CheckpointIO::save(a, path));

  // Different seed -> different signature -> refused.
  SimConfig other = cfg;
  other.seed = 999;
  Network b(other);
  b.set_traffic(saturating_traffic(other));
  std::string err;
  EXPECT_FALSE(CheckpointIO::restore(b, path, &err));
  EXPECT_FALSE(err.empty());
  std::remove(path.c_str());
}

TEST(CheckpointRestart, MissingFileIsNotAnError) {
  const SimConfig cfg = scale_config(RoutingKind::kOfar);
  Network net(cfg);
  net.set_traffic(saturating_traffic(cfg));
  std::string err;
  EXPECT_FALSE(CheckpointIO::restore(
      net, ::testing::TempDir() + "ofar_no_such_ckpt.bin", &err));
  // The network is untouched: a cold start proceeds normally.
  EXPECT_EQ(net.now(), Cycle{0});
  net.run(64);
  EXPECT_EQ(net.now(), Cycle{64});
}

// ---------------------------------------------------------------------------
// 3. Lazy construction: only touched routers exist.
// ---------------------------------------------------------------------------

TEST(LazyConstruction, IdleNetworkBuildsNoRouters) {
  Network net(scale_config(RoutingKind::kOfar));
  EXPECT_EQ(net.built_router_count(), 0u);
  net.run(128);  // no traffic installed: nothing to build
  EXPECT_EQ(net.built_router_count(), 0u);
}

/// A handful of packets between two fixed nodes: minimal routing touches
/// only the l-g-l path, a few routers out of hundreds.
class SingleFlowSource : public TrafficSource {
 public:
  void tick(Network& net) override {
    if (sent_ < 8) {
      net.offer(/*src=*/0, /*dst=*/200, /*tag=*/0);
      ++sent_;
    }
  }

 private:
  u32 sent_ = 0;
};

TEST(LazyConstruction, SparseTrafficBuildsSparseRouters) {
  const SimConfig cfg = scale_config(RoutingKind::kMin);
  Network net(cfg);
  net.set_traffic(std::make_unique<SingleFlowSource>());
  net.run(2000);
  EXPECT_GT(net.built_router_count(), 0u);
  EXPECT_LT(net.built_router_count(), net.topo().routers() / 4);
  EXPECT_TRUE(net.drained());
}

// ---------------------------------------------------------------------------
// 4. Windowed TimeSeries: flushed + resident == unbounded history.
// ---------------------------------------------------------------------------

TEST(WindowedSeries, FlushedPlusResidentMatchesUnbounded) {
  TimeSeries full(0, 1, 16);          // horizon grows via record_extending
  TimeSeries windowed(0, 1, 16);
  std::vector<std::pair<Cycle, TimeSeries::Bucket>> flushed;
  windowed.set_window(4, [&](Cycle mid, const TimeSeries::Bucket& b) {
    flushed.emplace_back(mid, b);
  });

  // A deterministic, irregular event stream spanning many buckets.
  u64 x = 0x9E3779B97F4A7C15ULL;
  for (int i = 0; i < 500; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    const Cycle at = (x >> 40) % 2048;
    const double v = static_cast<double>((x >> 20) & 0xFFF);
    full.record_extending(at, v);
    windowed.record_extending(at, v);
  }

  // Reassemble the windowed stream: flushed prefix + resident tail must be
  // bit-identical to the unbounded series, bucket by bucket. Events behind
  // the flushed prefix were dropped by the window, so replay them into the
  // full series' view before comparing: instead, compare only buckets at or
  // after each event's admission — the windowed run drops late-arriving
  // events the unbounded one keeps, so compare windowed against a replayed
  // reference that applies the same drop rule.
  TimeSeries ref(0, 1, 16);
  u64 y = 0x9E3779B97F4A7C15ULL;
  u64 base = 0;
  for (int i = 0; i < 500; ++i) {
    y = y * 6364136223846793005ULL + 1442695040888963407ULL;
    const Cycle at = (y >> 40) % 2048;
    const double v = static_cast<double>((y >> 20) & 0xFFF);
    const u64 idx = at / 16;
    if (idx >= base + 4) base = idx - 3;
    if (idx >= base) ref.record_extending(at, v);
  }

  ASSERT_EQ(windowed.flushed_buckets() + windowed.num_buckets(),
            ref.num_buckets());
  for (std::size_t i = 0; i < flushed.size(); ++i) {
    // Retired buckets arrive oldest-first; empty ones are skipped by the
    // sink contract only if empty — verify sums against the reference.
    const u64 idx = (flushed[i].first - 8) / 16;
    ASSERT_LT(idx, ref.num_buckets());
    EXPECT_EQ(flushed[i].second.sum, ref.bucket(idx).sum);
    EXPECT_EQ(flushed[i].second.count, ref.bucket(idx).count);
  }
  for (std::size_t i = 0; i < windowed.num_buckets(); ++i) {
    const u64 idx = windowed.flushed_buckets() + i;
    EXPECT_EQ(windowed.bucket(i).sum, ref.bucket(idx).sum);
    EXPECT_EQ(windowed.bucket(i).count, ref.bucket(idx).count);
  }
}

}  // namespace
}  // namespace ofar
