#include "common/parallel.hpp"

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>

namespace ofar {

void run_parallel(const std::vector<std::function<void()>>& jobs,
                  unsigned threads) {
  if (threads == 0) threads = std::thread::hardware_concurrency();
  if (threads == 0) threads = 1;
  if (threads == 1 || jobs.size() <= 1) {
    for (const auto& job : jobs) job();
    return;
  }
  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= jobs.size()) return;
      jobs[i]();
    }
  };
  std::vector<std::thread> pool;
  const unsigned n = std::min<std::size_t>(threads, jobs.size());
  pool.reserve(n);
  for (unsigned t = 0; t < n; ++t) pool.emplace_back(worker);
  for (auto& t : pool) t.join();
}

void parallel_for(std::size_t count,
                  const std::function<void(std::size_t)>& fn,
                  unsigned threads) {
  std::vector<std::function<void()>> jobs;
  jobs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) jobs.emplace_back([&fn, i] { fn(i); });
  run_parallel(jobs, threads);
}

// ---------------------------------------------------------------------------
// ShardPool
// ---------------------------------------------------------------------------

struct ShardPool::Impl {
  tsa::Mutex mutex;
  std::condition_variable start_cv;   // workers wait here between phases
  std::condition_variable done_cv;    // the caller waits here for the barrier
  u64 generation OFAR_GUARDED_BY(mutex) = 0;   // bumped per phase
  u32 count OFAR_GUARDED_BY(mutex) = 0;        // shard count of active phase
  const std::function<void(u32)>* fn OFAR_GUARDED_BY(mutex) = nullptr;
  unsigned pending OFAR_GUARDED_BY(mutex) = 0; // workers still in the phase
  bool shutdown OFAR_GUARDED_BY(mutex) = false;
  // Written only before any worker runs (ctor) and after all are woken for
  // shutdown (dtor join) — never concurrently, so not guarded.
  std::vector<std::thread> workers;
};

ShardPool::ShardPool(unsigned threads)
    : threads_(threads < 1 ? 1 : threads) {
  if (threads_ == 1) return;
  impl_ = new Impl;
  impl_->workers.reserve(threads_ - 1);
  for (unsigned w = 1; w < threads_; ++w)
    impl_->workers.emplace_back([this, w] { worker_loop(w); });
}

ShardPool::~ShardPool() {
  if (impl_ == nullptr) return;
  {
    std::lock_guard<tsa::Mutex> lock(impl_->mutex);
    impl_->shutdown = true;
  }
  impl_->start_cv.notify_all();
  for (auto& t : impl_->workers) t.join();
  delete impl_;
}

void ShardPool::worker_loop(unsigned worker_index) {
  u64 seen = 0;
  for (;;) {
    const std::function<void(u32)>* fn = nullptr;
    u32 count = 0;
    {
      std::unique_lock<std::mutex> lock(impl_->mutex.native());
      impl_->start_cv.wait(lock, [&] {
        return impl_->shutdown || impl_->generation != seen;
      });
      if (impl_->shutdown) return;
      seen = impl_->generation;
      fn = impl_->fn;
      count = impl_->count;
    }
    // Static stride partition: worker w takes shards w, w+N, w+2N, ...
    for (u32 i = worker_index; i < count; i += threads_) (*fn)(i);
    {
      std::lock_guard<std::mutex> lock(impl_->mutex.native());
      if (--impl_->pending == 0) impl_->done_cv.notify_one();
    }
  }
}

void ShardPool::wait_done() {
  std::unique_lock<std::mutex> lock(impl_->mutex.native());
  impl_->done_cv.wait(lock, [&] { return impl_->pending == 0; });
}

void ShardPool::parallel_phase(u32 count, const std::function<void(u32)>& fn) {
  if (count == 0) return;
  if (impl_ == nullptr || count == 1) {
    for (u32 i = 0; i < count; ++i) fn(i);
    return;
  }
  {
    std::lock_guard<tsa::Mutex> lock(impl_->mutex);
    impl_->fn = &fn;
    impl_->count = count;
    impl_->pending = static_cast<unsigned>(impl_->workers.size());
    ++impl_->generation;
  }
  impl_->start_cv.notify_all();
  // The caller is worker 0.
  for (u32 i = 0; i < count; i += threads_) fn(i);
  wait_done();
}

}  // namespace ofar
