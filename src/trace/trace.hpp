// Packet-journey tracing: shared configuration and deterministic sampling.
//
// The tracing subsystem (DESIGN.md §11) records the full lifecycle of a
// deterministically sampled subset of packets — injection, every allocator
// grant with the routing-decision provenance behind it, escape-ring
// entry/exit, delivery — plus per-link utilisation series and a bounded
// flight recorder for post-mortem forensics. Everything here is read-only
// instrumentation: enabling a tracer changes no simulation outcome and
// consumes no simulation RNG draws (the sampler hashes the packet sequence
// number instead of drawing).
#pragma once

#include <string>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace ofar::trace {

/// Deterministic 1-in-`denom` packet sampler. `seq` is the packet's
/// injection sequence number (assigned in the serial injection phase, so it
/// is identical at any sim_threads); the SplitMix64 finalizer decorrelates
/// the selection from injection order so bursts are sampled fairly.
/// denom <= 1 samples every packet.
inline bool should_sample(u64 seq, u32 denom) noexcept {
  if (denom <= 1) return true;
  return SplitMix64(seq).next() % denom == 0;
}

struct TracerConfig {
  /// Chrome trace-event JSON output path (empty: no journey export).
  std::string out_path;
  /// Sample 1 in `sample` injected packets (deterministic, hash-based).
  u32 sample = 1;
  /// Per-link utilisation / credit-stall TimeSeries output path (empty:
  /// no link export). ".csv" selects CSV, anything else JSONL.
  std::string links_path;
  /// Cycles per link-series bucket.
  Cycle link_bucket = 256;
  /// Resident-bucket cap per link series (TimeSeries::set_window). Buckets
  /// retired past the cap stream straight into the links file, so a
  /// week-long run holds O(link_window) memory per traced link instead of
  /// O(run length). Paper-scale runs never overflow the default, keeping
  /// their exports bit-identical to the unwindowed form. 0 = unbounded.
  u32 link_window = 1u << 14;
  /// Flight recorder depth: last N events retained per router (0 disables
  /// the recorder). Dumped on InvariantAuditor failure or deadlock
  /// forensics alongside <out_path>.flight.json (or ofar_flight.json when
  /// out_path is empty).
  u32 flight_depth = 0;
  /// Label stamped into exported metadata (experiment case name).
  std::string label;
};

}  // namespace ofar::trace
