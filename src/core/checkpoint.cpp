#include "core/checkpoint.hpp"

#include <cstdio>

#include "common/ckpt_stream.hpp"
#include "core/spec.hpp"
#include "sim/network.hpp"

namespace ofar {

namespace {

// "OFARCKP1" / "OFARCKND" as little-endian u64s: a human can spot the
// header and trailer in a hex dump.
constexpr u64 kMagic = 0x31504B435241464FULL;
constexpr u64 kTrailer = 0x444E4B435241464FULL;

void set_error(std::string* error, const char* what) {
  if (error != nullptr) *error = what;
}

}  // namespace

void CheckpointIO::write_fifo(CkptWriter& w, const VcFifo& f) {
  w.put_u32(f.head_);
  w.put_u32(f.tail_);
  w.put_u32(f.stored_);
  const u32 count = f.tail_ - f.head_;  // wrap-safe, bounded by ring size
  for (u32 i = 0; i < count; ++i)
    w.put_pod_span(&f.entries_[(f.head_ + i) & f.mask_], 1);
}

bool CheckpointIO::read_fifo(CkptReader& r, VcFifo& f) {
  f.head_ = r.get_u32();
  f.tail_ = r.get_u32();
  f.stored_ = r.get_u32();
  const u32 count = f.tail_ - f.head_;
  if (!r.ok() || count > f.mask_ + 1) {
    r.fail();
    return false;
  }
  for (u32 i = 0; i < count; ++i)
    r.get_pod_span(&f.entries_[(f.head_ + i) & f.mask_], 1);
  return r.ok();
}

void CheckpointIO::write_series(CkptWriter& w, const TimeSeries& ts) {
  w.put_u64(ts.start_);
  w.put_u32(ts.bucket_width_);
  w.put_u64(ts.base_);
  w.put_u64(ts.buckets_.size());
  w.put_pod_span(ts.buckets_.data(), ts.buckets_.size());
}

bool CheckpointIO::read_series(CkptReader& r, TimeSeries& ts) {
  ts.start_ = r.get_u64();
  ts.bucket_width_ = r.get_u32();
  ts.base_ = r.get_u64();
  const u64 n = r.get_u64();
  if (!r.ok() || n > (u64{1} << 32)) {
    r.fail();
    return false;
  }
  ts.buckets_.assign(static_cast<std::size_t>(n), TimeSeries::Bucket{});
  r.get_pod_span(ts.buckets_.data(), ts.buckets_.size());
  return r.ok();
}

void CheckpointIO::write_stats(CkptWriter& w, const Stats& s) {
  w.put_u64(s.window_start_);
  w.put_u64(s.generated_packets_);
  w.put_u64(s.generated_phits_);
  w.put_u64(s.injected_packets_);
  w.put_u64(s.delivered_packets_);
  w.put_u64(s.delivered_phits_);
  w.put_u64(s.local_misroutes_);
  w.put_u64(s.global_misroutes_);
  w.put_u64(s.ring_entries_);
  w.put_u64(s.ring_exits_);
  w.put_u64(s.ring_packets_);
  w.put_u64(s.ring_reentries_);
  w.put_u64(s.stalled_packets_);
  w.put_u64(s.worst_stall_);
  w.put_u64(s.max_hops_);
  w.put_f64(s.hops_sum_);
  w.put_pod_span(&s.latency_, 1);
  w.put_u64(s.histogram_.total_);
  w.put_u64(s.histogram_.overflow_);
  w.put_pod_span(s.histogram_.buckets_.data(), s.histogram_.buckets_.size());
  w.put_u64(s.by_tag_.size());
  w.put_pod_span(s.by_tag_.data(), s.by_tag_.size());
  w.put_bool(s.series_ != nullptr);
  if (s.series_) write_series(w, *s.series_);
}

bool CheckpointIO::read_stats(CkptReader& r, Stats& s) {
  s.window_start_ = r.get_u64();
  s.generated_packets_ = r.get_u64();
  s.generated_phits_ = r.get_u64();
  s.injected_packets_ = r.get_u64();
  s.delivered_packets_ = r.get_u64();
  s.delivered_phits_ = r.get_u64();
  s.local_misroutes_ = r.get_u64();
  s.global_misroutes_ = r.get_u64();
  s.ring_entries_ = r.get_u64();
  s.ring_exits_ = r.get_u64();
  s.ring_packets_ = r.get_u64();
  s.ring_reentries_ = r.get_u64();
  s.stalled_packets_ = r.get_u64();
  s.worst_stall_ = r.get_u64();
  s.max_hops_ = r.get_u64();
  s.hops_sum_ = r.get_f64();
  r.get_pod_span(&s.latency_, 1);
  s.histogram_.total_ = r.get_u64();
  s.histogram_.overflow_ = r.get_u64();
  r.get_pod_span(s.histogram_.buckets_.data(),
                 s.histogram_.buckets_.size());
  const u64 tags = r.get_u64();
  if (!r.ok() || tags > (u64{1} << 20)) {
    r.fail();
    return false;
  }
  s.by_tag_.assign(static_cast<std::size_t>(tags), LatencyAccum{});
  r.get_pod_span(s.by_tag_.data(), s.by_tag_.size());
  // A restored run keeps the series the driver installed (same protocol,
  // same parameters) and overwrites its contents with the saved buckets.
  if (r.get_bool()) {
    if (s.series_ == nullptr) {
      r.fail();
      return false;
    }
    if (!read_series(r, *s.series_)) return false;
  }
  return r.ok();
}

void CheckpointIO::write_state(CkptWriter& w, const Network& net) {
  w.put_u64(net.now_);
  w.put_rng(net.rng_);
  w.put_u64(net.injected_total_);
  w.put_u64(net.delivered_total_);
  w.put_u64(net.pending_total_);

  // ---- packet pool, verbatim (ids and future id reuse order) ----
  const PacketPool& pool = net.pool_;
  w.put_u64(pool.slots_.size());
  w.put_pod_span(pool.slots_.data(), pool.slots_.size());
  for (std::size_t i = 0; i < pool.live_bits_.size(); ++i)
    w.put_u8(pool.live_bits_[i] ? 1 : 0);
  w.put_u64(pool.free_list_.size());
  w.put_pod_span(pool.free_list_.data(), pool.free_list_.size());
  w.put_u64(pool.live_);

  // ---- per-node offer queues (sparse: almost all are empty) ----
  u64 non_empty = 0;
  for (const auto& q : net.pending_)
    if (!q.empty()) ++non_empty;
  w.put_u64(non_empty);
  for (NodeId n = 0; n < net.pending_.size(); ++n) {
    const auto items = net.pending_[n].items();
    if (items.size() == 0) continue;
    w.put_u32(n);
    w.put_u64(items.size());
    w.put_pod_span(items.data(), items.size());
  }

  // ---- built routers (unbuilt ones are all-empty shells by invariant) ----
  w.put_u64(net.built_router_count());
  for (RouterId rid = 0; rid < net.routers_.size(); ++rid) {
    if (net.built_[rid] == 0) continue;
    const Router& r = net.routers_[rid];
    w.put_u32(rid);
    for (const InputPort& in : r.inputs) {
      for (const VcFifo& f : in.vcs) write_fifo(w, f);
      w.put_pod_span(in.head_busy.data(), in.head_busy.size());
    }
    for (const OutputPort& out : r.outputs) {
      w.put_pod_span(out.credits.data(), out.credits.size());
      w.put_u32(out.active);
      w.put_u8(out.active_vc);
      w.put_u16(out.src_port);
      w.put_u8(out.src_vc);
      w.put_u32(out.phits_left);
      w.put_u16(out.active_size);
    }
    for (const LrsArbiter& a : r.input_arb)
      w.put_pod_span(a.last_grant_.data(), a.last_grant_.size());
    for (const LrsArbiter& a : r.output_arb)
      w.put_pod_span(a.last_grant_.data(), a.last_grant_.size());
    w.put_u32(r.buffered_packets);
    w.put_u32(r.buffered_phits);
    w.put_u32(r.routable_heads);
    w.put_u32(r.active_transfers);
    w.put_bool(r.throttled);
    w.put_u64(r.active_out_mask);
    w.put_pod_span(r.input_mask.data(), r.input_mask.size());
  }

  // ---- activity worklists, verbatim (stale idle entries included: they
  // drain through the next prune pass exactly as in the original run) ----
  w.put_u32(static_cast<u32>(net.shards_.size()));
  for (const auto& sh : net.shards_) {
    w.put_u64(sh.active_routers.size());
    w.put_pod_span(sh.active_routers.data(), sh.active_routers.size());
    w.put_bool(sh.sorted);
  }
  w.put_u64(net.active_nodes_.size());
  w.put_pod_span(net.active_nodes_.data(), net.active_nodes_.size());
  w.put_bool(net.active_nodes_sorted_);

  // ---- event wheels, slot-verbatim (slot index = cycle % wheel size,
  // preserved because now_ is saved) ----
  w.put_u32(net.wheel_size_);
  for (const auto& slot : net.phit_wheel_) {
    w.put_u64(slot.size());
    w.put_pod_span(slot.data(), slot.size());
  }
  for (const auto& slot : net.credit_wheel_) {
    w.put_u64(slot.size());
    w.put_pod_span(slot.data(), slot.size());
  }

  // ---- lifetime link loads (sparse at scale) ----
  u64 loaded = 0;
  for (const u64 v : net.channel_phits_)
    if (v != 0) ++loaded;
  w.put_u64(loaded);
  for (std::size_t c = 0; c < net.channel_phits_.size(); ++c) {
    if (net.channel_phits_[c] == 0) continue;
    w.put_u64(c);
    w.put_u64(net.channel_phits_[c]);
  }

  write_stats(w, net.stats_);
  net.policy_->save_state(w);
  w.put_bool(net.traffic_ != nullptr);
  if (net.traffic_) net.traffic_->save_state(w);
}

bool CheckpointIO::read_state(CkptReader& r, Network& net,
                              std::string* error) {
  net.now_ = r.get_u64();
  r.get_rng(net.rng_);
  net.injected_total_ = r.get_u64();
  net.delivered_total_ = r.get_u64();
  net.pending_total_ = r.get_u64();

  // ---- packet pool ----
  PacketPool& pool = net.pool_;
  const u64 pool_slots = r.get_u64();
  if (!r.ok() || pool_slots > (u64{1} << 32)) {
    set_error(error, "corrupt packet pool header");
    return false;
  }
  pool.slots_.assign(static_cast<std::size_t>(pool_slots), Packet{});
  r.get_pod_span(pool.slots_.data(), pool.slots_.size());
  pool.live_bits_.assign(pool.slots_.size(), false);
  for (std::size_t i = 0; i < pool.live_bits_.size(); ++i)
    pool.live_bits_[i] = r.get_u8() != 0;
  const u64 free_count = r.get_u64();
  if (!r.ok() || free_count > pool_slots) {
    set_error(error, "corrupt packet free list");
    return false;
  }
  pool.free_list_.assign(static_cast<std::size_t>(free_count), 0);
  r.get_pod_span(pool.free_list_.data(), pool.free_list_.size());
  pool.live_ = static_cast<std::size_t>(r.get_u64());

  // ---- offer queues ----
  const u64 queues = r.get_u64();
  if (!r.ok() || queues > net.pending_.size()) {
    set_error(error, "corrupt offer queue header");
    return false;
  }
  for (u64 q = 0; q < queues; ++q) {
    const u32 node = r.get_u32();
    const u64 count = r.get_u64();
    if (!r.ok() || node >= net.pending_.size() ||
        count > (u64{1} << 40)) {
      set_error(error, "corrupt offer queue");
      return false;
    }
    auto& queue = net.pending_[node];
    for (u64 i = 0; i < count; ++i) {
      Network::Offer o{};
      r.get_pod_span(&o, 1);
      queue.push_back(o);
    }
  }

  // ---- routers: build exactly the saved set, then overwrite state ----
  const u64 built = r.get_u64();
  if (!r.ok() || built > net.routers_.size()) {
    set_error(error, "corrupt router header");
    return false;
  }
  for (u64 i = 0; i < built; ++i) {
    const u32 rid = r.get_u32();
    if (!r.ok() || rid >= net.routers_.size()) {
      set_error(error, "corrupt router id");
      return false;
    }
    net.ensure_router_built(rid);
    Router& router = net.routers_[rid];
    for (InputPort& in : router.inputs) {
      for (VcFifo& f : in.vcs)
        if (!read_fifo(r, f)) {
          set_error(error, "corrupt FIFO state");
          return false;
        }
      r.get_pod_span(in.head_busy.data(), in.head_busy.size());
    }
    for (OutputPort& out : router.outputs) {
      r.get_pod_span(out.credits.data(), out.credits.size());
      out.active = r.get_u32();
      out.active_vc = r.get_u8();
      out.src_port = r.get_u16();
      out.src_vc = r.get_u8();
      out.phits_left = r.get_u32();
      out.active_size = r.get_u16();
    }
    for (LrsArbiter& a : router.input_arb)
      r.get_pod_span(a.last_grant_.data(), a.last_grant_.size());
    for (LrsArbiter& a : router.output_arb)
      r.get_pod_span(a.last_grant_.data(), a.last_grant_.size());
    router.buffered_packets = r.get_u32();
    router.buffered_phits = r.get_u32();
    router.routable_heads = r.get_u32();
    router.active_transfers = r.get_u32();
    router.throttled = r.get_bool();
    router.active_out_mask = r.get_u64();
    r.get_pod_span(router.input_mask.data(), router.input_mask.size());
  }

  // ---- worklists ----
  const u32 shard_count = r.get_u32();
  if (!r.ok() || shard_count != net.shards_.size()) {
    set_error(error, "shard count mismatch");
    return false;
  }
  for (auto& sh : net.shards_) {
    const u64 n = r.get_u64();
    if (!r.ok() || n > net.routers_.size()) {
      set_error(error, "corrupt shard worklist");
      return false;
    }
    sh.active_routers.assign(static_cast<std::size_t>(n), 0);
    r.get_pod_span(sh.active_routers.data(), sh.active_routers.size());
    sh.sorted = r.get_bool();
    for (const RouterId rid : sh.active_routers) {
      if (rid >= net.router_in_worklist_.size()) {
        set_error(error, "corrupt shard worklist entry");
        return false;
      }
      net.router_in_worklist_[rid] = 1;
    }
  }
  const u64 nodes = r.get_u64();
  if (!r.ok() || nodes > net.node_in_worklist_.size()) {
    set_error(error, "corrupt node worklist");
    return false;
  }
  net.active_nodes_.assign(static_cast<std::size_t>(nodes), 0);
  r.get_pod_span(net.active_nodes_.data(), net.active_nodes_.size());
  net.active_nodes_sorted_ = r.get_bool();
  for (const NodeId n : net.active_nodes_) {
    if (n >= net.node_in_worklist_.size()) {
      set_error(error, "corrupt node worklist entry");
      return false;
    }
    net.node_in_worklist_[n] = 1;
  }

  // ---- event wheels ----
  const u32 wheel = r.get_u32();
  if (!r.ok() || wheel != net.wheel_size_) {
    set_error(error, "wheel size mismatch");
    return false;
  }
  for (auto& slot : net.phit_wheel_) {
    const u64 n = r.get_u64();
    if (!r.ok() || n > (u64{1} << 40)) {
      set_error(error, "corrupt phit wheel");
      return false;
    }
    slot.assign(static_cast<std::size_t>(n), {});
    r.get_pod_span(slot.data(), slot.size());
  }
  for (auto& slot : net.credit_wheel_) {
    const u64 n = r.get_u64();
    if (!r.ok() || n > (u64{1} << 40)) {
      set_error(error, "corrupt credit wheel");
      return false;
    }
    slot.assign(static_cast<std::size_t>(n), {});
    r.get_pod_span(slot.data(), slot.size());
  }

  // ---- link loads ----
  const u64 loaded = r.get_u64();
  if (!r.ok() || loaded > net.channel_phits_.size()) {
    set_error(error, "corrupt link loads");
    return false;
  }
  for (u64 i = 0; i < loaded; ++i) {
    const u64 c = r.get_u64();
    const u64 v = r.get_u64();
    if (!r.ok() || c >= net.channel_phits_.size()) {
      set_error(error, "corrupt link load entry");
      return false;
    }
    net.channel_phits_[c] = v;
  }

  if (!read_stats(r, net.stats_)) {
    set_error(error, "corrupt stats");
    return false;
  }
  net.policy_->load_state(r);
  const bool has_traffic = r.get_bool();
  if (has_traffic) {
    if (net.traffic_ == nullptr) {
      set_error(error, "checkpoint has traffic state but none installed");
      return false;
    }
    net.traffic_->load_state(r);
  }
  if (!r.ok()) {
    set_error(error, "truncated checkpoint");
    return false;
  }
  return true;
}

bool CheckpointIO::save(const Network& net, const std::string& path,
                        std::string* error) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    set_error(error, "cannot open checkpoint tmp file");
    return false;
  }
  CkptWriter w(f);
  w.put_u64(kMagic);
  w.put_str(config_signature(net.config()));
  write_state(w, net);
  w.put_u64(kTrailer);
  const bool ok = w.ok() && std::fflush(f) == 0;
  std::fclose(f);
  if (!ok || std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    set_error(error, "checkpoint write failed");
    return false;
  }
  return true;
}

bool CheckpointIO::restore(Network& net, const std::string& path,
                           std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    set_error(error, "no checkpoint file");
    return false;
  }
  CkptReader r(f);
  bool ok = false;
  if (r.get_u64() != kMagic) {
    set_error(error, "bad checkpoint magic");
  } else if (r.get_str() != config_signature(net.config())) {
    set_error(error, "checkpoint config signature mismatch");
  } else if (net.now_ != 0 || !net.drained()) {
    set_error(error, "restore target is not a fresh network");
  } else if (read_state(r, net, error)) {
    if (r.get_u64() == kTrailer && r.ok()) {
      ok = true;
    } else {
      set_error(error, "truncated checkpoint");
    }
  }
  std::fclose(f);
  // A failed restore can leave `net` partially written; callers must treat
  // it as unusable and rebuild (the drivers construct a fresh Network).
  return ok;
}

}  // namespace ofar
