# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_topology[1]_include.cmake")
include("/root/repo/build/tests/test_hamiltonian[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_traffic[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_network[1]_include.cmake")
include("/root/repo/build/tests/test_routing[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_tracing[1]_include.cmake")
include("/root/repo/build/tests/test_escape_ring[1]_include.cmake")
