// LrsArbiter is header-only; this TU compile-checks the header.
#include "sim/arbiter.hpp"
