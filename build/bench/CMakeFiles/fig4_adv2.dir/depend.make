# Empty dependencies file for fig4_adv2.
# This may be replaced when dependencies are built.
