// Unidirectional channel (link) descriptors.
//
// Channels carry one phit per cycle with a fixed wire latency; phit and
// credit propagation are executed by the Network's event wheels, so Channel
// itself is plain data plus a utilisation counter.
#pragma once

#include "common/phase.hpp"
#include "common/types.hpp"

namespace ofar {

enum class ChannelClass : u8 {
  kLocal,       ///< intra-group link of the canonical dragonfly
  kGlobal,      ///< inter-group link of the canonical dragonfly
  kRingLocal,   ///< physical escape-ring wire inside a group
  kRingGlobal,  ///< physical escape-ring wire between groups
  kEjection,    ///< router -> processing-node link
};

const char* to_string(ChannelClass c) noexcept;

// Shard-local: a channel is owned by its source router's shard (which is
// the shard that advances transfers over it and bumps phits_carried).
struct OFAR_SHARD_LOCAL Channel {
  RouterId src_router = 0;
  PortId src_port = 0;
  // Destination: a router input port, or a node for ejection channels.
  RouterId dst_router = 0;
  PortId dst_port = 0;
  NodeId dst_node = 0;  ///< valid only when cls == kEjection
  u32 latency = 1;
  ChannelClass cls = ChannelClass::kLocal;
  u64 phits_carried = 0;  ///< utilisation counter (§III link-load analysis)

  bool is_ejection() const noexcept { return cls == ChannelClass::kEjection; }
};

inline const char* to_string(ChannelClass c) noexcept {
  switch (c) {
    case ChannelClass::kLocal: return "local";
    case ChannelClass::kGlobal: return "global";
    case ChannelClass::kRingLocal: return "ring-local";
    case ChannelClass::kRingGlobal: return "ring-global";
    case ChannelClass::kEjection: return "ejection";
  }
  return "?";
}

}  // namespace ofar
