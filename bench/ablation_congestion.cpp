// Ablation bench (DESIGN.md extension #5; paper §VII future work): a
// minimal congestion-management layer — per-router injection throttling
// with hysteresis on local buffer occupancy — and what it buys OFAR in the
// two collapse regimes this reproduction exposes:
//
//   (a) sustained deep overload on the full configuration (UN far past
//       saturation), where unrestricted injection pins every buffer and
//       the network wedges onto the escape ring;
//   (b) the paper's own Fig. 9 configuration (2 local / 1 global VCs,
//       embedded ring), which collapses already at moderate loads.
//
// Default scale h=3 keeps collapsed points (the slowest to simulate)
// affordable; pass --h 4 for the scale the figure benches use.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ofar;
  using namespace ofar::bench;
  CommandLine cli(argc, argv);
  BenchOptions opts = BenchOptions::parse(cli, 4'000, 6'000);
  if (!cli.has("h")) opts.h = 3;
  if (!reject_unknown(cli)) return 1;

  struct Scenario {
    const char* name;
    TrafficPattern pattern;
    double load;
    bool reduced_vcs;
  };
  const std::vector<Scenario> scenarios = {
      {"UN@0.45 full", TrafficPattern::uniform(), 0.45, false},
      {"UN@0.80 full", TrafficPattern::uniform(), 0.80, false},
      {"ADV+h@0.45 full", TrafficPattern::adversarial(opts.h), 0.45, false},
      {"UN@0.45 reducedVC", TrafficPattern::uniform(), 0.45, true},
      {"ADV+2@0.35 reducedVC", TrafficPattern::adversarial(2), 0.35, true},
  };

  std::printf("Congestion-throttle ablation on %s\n",
              opts.config(RoutingKind::kOfar).summary().c_str());

  Table table({"scenario", "accepted_plain", "stalled_plain",
               "accepted_throttled", "stalled_throttled"});
  for (const auto& sc : scenarios) {
    SimConfig plain = opts.config(RoutingKind::kOfar);
    plain.deadlock_timeout = 10'000;
    if (sc.reduced_vcs) {
      plain.ring = RingKind::kEmbedded;
      plain.vcs_local = 2;
      plain.vcs_global = 1;
    }
    SimConfig throttled = plain;
    throttled.congestion_throttle = true;

    SteadyResult r_plain, r_throttled;
    std::vector<std::function<void()>> jobs = {
        [&] { r_plain = run_steady(plain, sc.pattern, sc.load, opts.run); },
        [&] {
          r_throttled = run_steady(throttled, sc.pattern, sc.load, opts.run);
        }};
    run_parallel(jobs, opts.threads);

    table.add_row({std::string(sc.name), r_plain.accepted_load,
                   u64{r_plain.stalled_packets}, r_throttled.accepted_load,
                   u64{r_throttled.stalled_packets}});
    std::printf("%s done\n", sc.name);
  }
  table.print("Injection throttling vs collapse (accepted load; stalled = "
              "deadlock-watchdog hits)");
  dump_csv(table, opts, "ablation_congestion");
  return 0;
}
