#include "core/orchestrator.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <map>
#include <mutex>
#include <thread>

#include "common/check.hpp"
#include "common/json.hpp"
#include "common/parallel.hpp"
#include "stats/sink.hpp"

namespace ofar {

namespace {

/// Journal line schema version: bump together with any change to the
/// result structs' serialized shape (old lines then fail to parse and the
/// affected points simply re-run).
constexpr u32 kJournalVersion = 1;

void write_result_json(JsonWriter& w, const RunPoint& point,
                       const PointOutcome& o) {
  w.key("result").begin_object();
  switch (point.kind) {
    case RunKind::kSteady: {
      const SteadyResult& r = o.steady;
      w.key("offered").value(r.offered_load);
      w.key("accepted").value(r.accepted_load);
      w.key("lat").value(r.avg_latency);
      w.key("lat_sd").value(r.stddev_latency);
      w.key("delivered").value(r.delivered_packets);
      w.key("lmis").value(r.local_misroutes);
      w.key("gmis").value(r.global_misroutes);
      w.key("ring").value(r.ring_entries);
      w.key("stalled").value(r.stalled_packets);
      w.key("worst").value(r.worst_stall);
      w.key("hops").value(r.mean_hops);
      break;
    }
    case RunKind::kTransient: {
      w.key("series").begin_array();
      for (const auto& b : o.transient.series) {
        w.begin_array();
        w.value(b.cycle_rel);
        w.value(b.mean_latency);
        w.value(b.packets);
        w.end_array();
      }
      w.end_array();
      break;
    }
    case RunKind::kBurst: {
      const BurstResult& r = o.burst;
      w.key("completion").value(r.completion);
      w.key("delivered").value(r.delivered_packets);
      w.key("lat").value(r.avg_latency);
      w.key("ring").value(r.ring_entries);
      w.key("completed").value(r.completed);
      break;
    }
  }
  w.end_object();
}

bool read_u64(const JsonValue& obj, const char* key, u64& out) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || !v->is_number() || !v->has_exact_int() ||
      v->as_int() < 0)
    return false;
  out = static_cast<u64>(v->as_int());
  return true;
}

bool read_double(const JsonValue& obj, const char* key, double& out) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || !v->is_number()) return false;
  out = v->as_double();
  return true;
}

bool parse_result_json(const JsonValue& result, RunKind kind,
                       PointOutcome& o, std::string& error) {
  if (!result.is_object()) {
    error = "result is not an object";
    return false;
  }
  switch (kind) {
    case RunKind::kSteady: {
      SteadyResult& r = o.steady;
      if (!read_double(result, "offered", r.offered_load) ||
          !read_double(result, "accepted", r.accepted_load) ||
          !read_double(result, "lat", r.avg_latency) ||
          !read_double(result, "lat_sd", r.stddev_latency) ||
          !read_u64(result, "delivered", r.delivered_packets) ||
          !read_u64(result, "lmis", r.local_misroutes) ||
          !read_u64(result, "gmis", r.global_misroutes) ||
          !read_u64(result, "ring", r.ring_entries) ||
          !read_u64(result, "stalled", r.stalled_packets) ||
          !read_u64(result, "worst", r.worst_stall) ||
          !read_double(result, "hops", r.mean_hops)) {
        error = "steady result missing fields";
        return false;
      }
      return true;
    }
    case RunKind::kTransient: {
      const JsonValue* series = result.find("series");
      if (series == nullptr || !series->is_array()) {
        error = "transient result missing series";
        return false;
      }
      o.transient.series.clear();
      for (const auto& item : series->items()) {
        if (!item.is_array() || item.items().size() != 3 ||
            !item.items()[0].is_number() || !item.items()[1].is_number() ||
            !item.items()[2].is_number()) {
          error = "malformed transient series bucket";
          return false;
        }
        TransientBucket b;
        b.cycle_rel = item.items()[0].as_int();
        b.mean_latency = item.items()[1].as_double();
        b.packets = static_cast<u64>(item.items()[2].as_int());
        o.transient.series.push_back(b);
      }
      return true;
    }
    case RunKind::kBurst: {
      BurstResult& r = o.burst;
      const JsonValue* completed = result.find("completed");
      if (!read_u64(result, "completion", r.completion) ||
          !read_u64(result, "delivered", r.delivered_packets) ||
          !read_double(result, "lat", r.avg_latency) ||
          !read_u64(result, "ring", r.ring_entries) ||
          completed == nullptr || !completed->is_bool()) {
        error = "burst result missing fields";
        return false;
      }
      r.completed = completed->as_bool();
      return true;
    }
  }
  error = "unknown kind";
  return false;
}

/// Serializes ONLY the result payload (no key/version wrapper) — the unit
/// the whole-run digest is computed over.
std::string result_payload(const RunPoint& point, const PointOutcome& o) {
  JsonWriter w;
  w.begin_object();
  w.key("kind").value(to_string(point.kind));
  write_result_json(w, point, o);
  w.end_object();
  return w.str();
}

}  // namespace

std::string journal_line(const RunPoint& point, const PointOutcome& outcome) {
  JsonWriter w;
  w.begin_object();
  w.key("v").value(kJournalVersion);
  w.key("key").value(outcome.key);
  w.key("kind").value(to_string(point.kind));
  write_result_json(w, point, outcome);
  w.end_object();
  return w.str();
}

bool parse_journal_line(const std::string& line, std::string& key,
                        RunKind& kind, PointOutcome& outcome,
                        std::string& error) {
  JsonValue doc;
  if (!json_parse(line, doc, error)) return false;
  if (!doc.is_object()) {
    error = "line is not an object";
    return false;
  }
  u64 version = 0;
  if (!read_u64(doc, "v", version) || version != kJournalVersion) {
    error = "missing or unsupported journal version";
    return false;
  }
  const JsonValue* k = doc.find("key");
  if (k == nullptr || !k->is_string() || k->as_string().size() != 32) {
    error = "missing or malformed key";
    return false;
  }
  const JsonValue* kind_v = doc.find("kind");
  if (kind_v == nullptr || !kind_v->is_string() ||
      !parse_run_kind(kind_v->as_string(), kind)) {
    error = "missing or unknown kind";
    return false;
  }
  const JsonValue* result = doc.find("result");
  if (result == nullptr) {
    error = "missing result";
    return false;
  }
  if (!parse_result_json(*result, kind, outcome, error)) return false;
  key = k->as_string();
  outcome.key = key;
  outcome.done = true;
  outcome.from_cache = true;
  return true;
}

namespace {

struct CacheEntry {
  RunKind kind;
  PointOutcome outcome;
};

/// Loads every parseable journal line; corrupt lines (typically the
/// truncated tail of a crashed run, or hand-editing damage) are reported
/// and skipped — losing one cached point costs one re-simulation, while
/// aborting would cost the whole sweep.
std::map<std::string, CacheEntry> load_journal(const std::string& path) {
  std::map<std::string, CacheEntry> cache;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return cache;  // no journal yet: empty cache
  std::string text;
  char buf[4096];
  for (;;) {
    const std::size_t n = std::fread(buf, 1, sizeof buf, f);
    text.append(buf, n);
    if (n < sizeof buf) break;
  }
  std::fclose(f);

  std::size_t line_no = 0;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    const bool truncated = end == std::string::npos;
    if (truncated) end = text.size();
    const std::string line = text.substr(start, end - start);
    start = end + 1;
    ++line_no;
    if (line.empty()) continue;
    std::string key, error;
    RunKind kind = RunKind::kSteady;
    PointOutcome outcome;
    if (truncated) {
      std::fprintf(stderr,
                   "warning: %s:%zu: ignoring truncated final line "
                   "(in-flight point of an interrupted run)\n",
                   path.c_str(), line_no);
      continue;
    }
    if (!parse_journal_line(line, key, kind, outcome, error)) {
      std::fprintf(stderr, "warning: %s:%zu: skipping corrupt line (%s)\n",
                   path.c_str(), line_no, error.c_str());
      continue;
    }
    cache[key] = CacheEntry{kind, std::move(outcome)};
  }
  return cache;
}

}  // namespace

RunReport run_points(const std::vector<RunPoint>& points,
                     const OrchestratorOptions& opts) {
  RunReport report;
  report.outcomes.resize(points.size());

  std::map<std::string, CacheEntry> cache;
  std::FILE* journal = nullptr;
  if (!opts.checkpoint_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(opts.checkpoint_dir, ec);
    if (ec)
      std::fprintf(stderr, "warning: cannot create checkpoint dir %s: %s\n",
                   opts.checkpoint_dir.c_str(), ec.message().c_str());
  }
  if (!opts.cache_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(opts.cache_dir, ec);
    if (ec) {
      std::fprintf(stderr, "warning: cannot create cache dir %s: %s\n",
                   opts.cache_dir.c_str(), ec.message().c_str());
    }
    report.journal_path = opts.cache_dir + "/journal.jsonl";
    cache = load_journal(report.journal_path);
    journal = std::fopen(report.journal_path.c_str(), "ab");
    if (journal == nullptr)
      std::fprintf(stderr,
                   "warning: cannot append to %s; results of this run will "
                   "not be cached\n",
                   report.journal_path.c_str());
  }

  // Resolve cache hits and collect the points that must execute.
  std::vector<std::size_t> todo;
  for (std::size_t i = 0; i < points.size(); ++i) {
    PointOutcome& o = report.outcomes[i];
    o.key = point_key(points[i]);
    const auto it = cache.find(o.key);
    if (it != cache.end() && it->second.kind == points[i].kind) {
      o = it->second.outcome;
      ++report.hits;
    } else {
      todo.push_back(i);
    }
  }

  // Thread-budget arbitration (DESIGN.md §10): split the total budget
  // between point-level workers (outer) and per-simulation shard workers
  // (inner), never oversubscribing their product. Auto mode prefers the
  // outer level — an embarrassingly parallel sweep scales better there —
  // and only routes spare threads inward when fewer points remain than
  // the budget could occupy.
  unsigned budget =
      opts.threads != 0 ? opts.threads : std::thread::hardware_concurrency();
  if (budget == 0) budget = 1;
  unsigned outer = 1;
  unsigned inner = 1;
  if (opts.sim_threads == 0) {
    outer = static_cast<unsigned>(std::min<std::size_t>(
        budget, std::max<std::size_t>(1, todo.size())));
    inner = std::max(1u, budget / outer);
  } else {
    inner = std::min(opts.sim_threads, budget);
    outer = std::max(1u, budget / inner);
  }
  OFAR_CHECK_MSG(static_cast<u64>(outer) * inner <= budget,
                 "thread split oversubscribes the --threads budget");

  std::mutex journal_mutex;
  std::atomic<std::size_t> started{0};
  std::atomic<std::size_t> executed{0};
  std::atomic<bool> interrupted{false};

  std::vector<std::function<void()>> jobs;
  jobs.reserve(todo.size());
  for (const std::size_t i : todo) {
    jobs.emplace_back([&, i] {
      if (opts.stop_flag != nullptr &&
          opts.stop_flag->load(std::memory_order_relaxed)) {
        interrupted.store(true, std::memory_order_relaxed);
        return;
      }
      const std::size_t my_start =
          started.fetch_add(1, std::memory_order_relaxed);
      if (opts.stop_after != 0 && my_start >= opts.stop_after) {
        interrupted.store(true, std::memory_order_relaxed);
        return;
      }
      const RunPoint& p = points[i];
      PointOutcome& o = report.outcomes[i];

      // Per-point instrumentation: labels name the case and mechanism so a
      // shared sink's records stay distinguishable across the whole sweep.
      const std::string label =
          p.case_name.empty() ? p.mechanism : p.case_name + "|" + p.mechanism;
      const auto arm_common = [&](ExperimentCommon& c) {
        c.audit_interval = opts.audit_interval;
        c.metrics_sink = opts.metrics_sink;
        c.metrics_interval = opts.metrics_interval;
        c.metrics_full = opts.metrics_full;
        c.metrics_label = label;
        c.sim_threads = inner;
        c.trace_out = opts.trace_out;
        c.trace_links = opts.trace_links;
        c.trace_sample = opts.trace_sample;
        c.trace_link_bucket = opts.trace_link_bucket;
        c.trace_flight_depth = opts.trace_flight_depth;
        c.trace_per_point = todo.size() > 1;
      };
      switch (p.kind) {
        case RunKind::kSteady: {
          RunParams run = p.run;
          arm_common(run);
          if (!opts.checkpoint_dir.empty()) {
            run.checkpoint_path =
                opts.checkpoint_dir + "/" + o.key + ".ckpt";
            run.checkpoint_interval = opts.checkpoint_interval;
          }
          o.steady = run_steady(p.cfg, p.pattern, p.load, run);
          break;
        }
        case RunKind::kTransient: {
          TransientParams tp = p.transient;
          arm_common(tp);
          o.transient = run_transient(p.cfg, p.pattern, p.load, p.pattern_b,
                                      p.load_b, tp);
          break;
        }
        case RunKind::kBurst: {
          BurstParams bp = p.burst;
          arm_common(bp);
          o.burst = run_burst(p.cfg, p.pattern, bp);
          break;
        }
      }
      o.done = true;
      o.from_cache = false;
      executed.fetch_add(1, std::memory_order_relaxed);

      if (journal != nullptr) {
        const std::string line = journal_line(p, o) + "\n";
        std::lock_guard<std::mutex> lock(journal_mutex);
        std::fwrite(line.data(), 1, line.size(), journal);
        std::fflush(journal);  // crash loses only in-flight points
      }
    });
  }
  run_parallel(jobs, outer);
  if (journal != nullptr) std::fclose(journal);

  report.executed = executed.load();
  report.interrupted = interrupted.load();
  for (const auto& o : report.outcomes)
    if (!o.done) ++report.missing;
  return report;
}

std::string results_digest(const std::vector<RunPoint>& points,
                           const RunReport& report) {
  std::vector<std::string> lines;
  lines.reserve(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    const PointOutcome& o = report.outcomes[i];
    if (!o.done) continue;
    lines.push_back(o.key + "=" + result_payload(points[i], o));
  }
  std::sort(lines.begin(), lines.end());
  std::string all;
  for (const auto& line : lines) {
    all += line;
    all += '\n';
  }
  return content_digest(all);
}

}  // namespace ofar
