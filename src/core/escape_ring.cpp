#include "core/escape_ring.hpp"

#include "sim/flat_state.hpp"
#include "sim/network.hpp"

namespace ofar {

RouteChoice EscapeRingControl::ring_step(Network& net, RouterId at,
                                         u32 need) const {
  const Network::RingOut& ro = net.ring_out(at);
  const OutputPort& out = net.router(at).outputs[ro.port];
  if (!out.wired() || out.busy()) return RouteChoice::none();
  VcId vc;
  if (!out.best_vc(ro.first_vc, ro.num_vcs, need, vc))
    return RouteChoice::none();
  return RouteChoice::to(ro.port, vc);
}

RouteChoice EscapeRingControl::ride(RouteContext& ctx) const {
  Network& net = ctx.net;
  Packet& pkt = ctx.pkt;
  const RouterId at = ctx.at;
  RouteProvenance* const prov = ctx.prov;
  CreditView& view = ctx.view;
  const Dragonfly& topo = net.topo();

  if (at == pkt.dst_router) {
    // Delivery from the ring: request the ejection port.
    const PortId eject = topo.node_port(topo.node_slot(pkt.dst));
    if (prov) {
      prov->min_port = eject;
      prov->q_min = static_cast<float>(view.base_occupancy(eject));
    }
    if (view.base_available(eject)) {
      VcId vc;
      view.best_base_vc(eject, vc);
      RouteChoice c = RouteChoice::to(eject, vc);
      c.exit_ring = true;
      if (prov) {
        prov->condition = RouteCondition::kRingExit;
        prov->chosen_occ = prov->q_min;
      }
      return c;
    }
    if (prov) prov->condition = RouteCondition::kWaitBusy;
    return RouteChoice::none();  // wait for the ejection port
  }

  // Abandon the ring through the minimal output when it is free and the
  // livelock budget allows another exit.
  if (pkt.ring_exits < max_exits_) {
    const PortId min_port = min_port_to_router(net, at, pkt.dst_router);
    if (prov) {
      prov->min_port = min_port;
      prov->q_min = static_cast<float>(view.base_occupancy(min_port));
    }
    if (view.base_available(min_port)) {
      VcId vc;
      view.best_base_vc(min_port, vc);
      RouteChoice c = RouteChoice::to(min_port, vc);
      c.exit_ring = true;
      if (prov) {
        prov->condition = RouteCondition::kRingExit;
        prov->chosen_occ = prov->q_min;
      }
      return c;
    }
  }
  // Otherwise keep riding: in-ring movement needs one packet of space.
  RouteChoice c = ring_step(net, at, packet_size_);
  if (prov)
    prov->condition =
        c.valid ? RouteCondition::kRingRide : RouteCondition::kWaitBusy;
  return c;
}

RouteChoice EscapeRingControl::enter(RouteContext& ctx) const {
  // Bubble condition: the next ring buffer must fit this packet PLUS one
  // more (the bubble), so the ring can always drain.
  RouteChoice c = ring_step(ctx.net, ctx.at, 2 * packet_size_);
  if (c.valid) c.enter_ring = true;
  if (ctx.prov)
    ctx.prov->condition =
        c.valid ? RouteCondition::kRingEnter : RouteCondition::kWaitStarved;
  return c;
}

}  // namespace ofar
