#include "routing/piggyback.hpp"

#include "common/ckpt_stream.hpp"
#include "routing/ugal.hpp"
#include "sim/network.hpp"

namespace ofar {

PiggybackPolicy::PiggybackPolicy(const SimConfig& cfg)
    : ValiantPolicy(cfg),
      threshold_(cfg.pb_saturation_threshold),
      delay_(std::max(1u, cfg.pb_broadcast_delay)) {}

void PiggybackPolicy::tick(Network& net) {
  if (!initialised_) {
    h_ = net.topo().h();
    current_.assign(net.topo().routers() * h_, 0);
    visible_.assign(net.topo().routers() * h_, 0);
    initialised_ = true;
  }
  const Dragonfly& topo = net.topo();
  const PortId first_global = topo.first_global_port();
  for (RouterId r = 0; r < topo.routers(); ++r) {
    if (!net.router_built(r)) continue;  // untouched: flags stay clear
    const Router& router = net.router(r);
    for (u32 j = 0; j < h_; ++j) {
      const OutputPort& out = router.outputs[first_global + j];
      const bool sat =
          out.wired() &&
          net.base_occupancy(router, static_cast<PortId>(first_global + j)) >
              threshold_;
      current_[r * h_ + j] = sat ? 1 : 0;
    }
  }
  // Broadcast within each group every `delay_` cycles (piggyback latency).
  if (net.now() - last_broadcast_ >= delay_) {
    visible_ = current_;
    last_broadcast_ = net.now();
  }
}

void PiggybackPolicy::save_state(CkptWriter& w) const {
  ValiantPolicy::save_state(w);
  w.put_bool(initialised_);
  w.put_u32(h_);
  w.put_u64(last_broadcast_);
  w.put_u64(current_.size());
  w.put_pod_span(current_.data(), current_.size());
  w.put_pod_span(visible_.data(), visible_.size());
}

void PiggybackPolicy::load_state(CkptReader& r) {
  ValiantPolicy::load_state(r);
  initialised_ = r.get_bool();
  h_ = r.get_u32();
  last_broadcast_ = r.get_u64();
  const u64 n = r.get_u64();
  if (!r.ok() || n > (u64{1} << 32)) {
    r.fail();
    return;
  }
  current_.assign(n, 0);
  visible_.assign(n, 0);
  r.get_pod_span(current_.data(), current_.size());
  r.get_pod_span(visible_.data(), visible_.size());
}

void PiggybackPolicy::on_inject(Network& net, Packet& pkt, RouterId at) {
  pkt.inter_group = kInvalidGroup;
  pkt.inter_router = kInvalidRouter;
  pkt.valiant_done = true;
  if (at == pkt.dst_router) return;
  const UgalPaths paths = evaluate_ugal_paths(net, pkt, at, rng_);

  // Remote information: is the minimal path's global channel saturated?
  bool min_global_saturated = false;
  if (initialised_) {
    const Dragonfly& topo = net.topo();
    const GroupId gs = topo.group_of(at);
    const GroupId gd = topo.group_of(pkt.dst_router);
    if (gs != gd) {
      const RouterId carrier = topo.carrier_router(gs, gd);
      const u32 j = static_cast<u32>(topo.carrier_port(gs, gd)) -
                    topo.first_global_port();
      min_global_saturated = saturated(carrier, j);
    }
  }

  if (!min_global_saturated &&
      ugal_prefers_minimal(paths, net.config().ugal_bias_phits))
    return;
  pkt.inter_group = paths.inter_group;
  pkt.inter_router = paths.inter_router;
  pkt.valiant_done = !paths.has_val;
}

}  // namespace ofar
