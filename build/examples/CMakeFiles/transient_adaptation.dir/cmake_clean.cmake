file(REMOVE_RECURSE
  "CMakeFiles/transient_adaptation.dir/transient_adaptation.cpp.o"
  "CMakeFiles/transient_adaptation.dir/transient_adaptation.cpp.o.d"
  "transient_adaptation"
  "transient_adaptation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transient_adaptation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
