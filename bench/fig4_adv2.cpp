// Fig. 4 reproduction: latency (a) and throughput (b) versus offered load
// under adversarial +2 traffic (ADV+2), for VAL, PB, OFAR and OFAR-L.
// MIN is omitted as in the paper (it jams on the single minimal global
// link; VAL is the reference instead).
//
// Expected shape (paper §VI-A): OFAR shows the best latency and saturates
// highest (paper: 0.45 vs PB's 0.38 at h=6); OFAR beats OFAR-L slightly;
// VAL sits lowest of the load-balanced mechanisms.
//
// Shim over the "fig4" preset (presets.cpp).
#include "presets.hpp"

int main(int argc, char** argv) {
  return ofar::bench::run_preset_main("fig4", argc, argv);
}
