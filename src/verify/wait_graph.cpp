#include "verify/wait_graph.hpp"

#include <algorithm>
#include <cstdio>

#include "sim/flat_state.hpp"
#include "sim/network.hpp"

namespace ofar::verify {

WaitGraph::WaitGraph(const Network& net) : net_(net) {}

u32 WaitGraph::node_index(RouterId r, PortId p, VcId v) const noexcept {
  return r * ports_ * max_vcs_ + p * max_vcs_ + v;
}

WaitGraph::Node WaitGraph::node_at(u32 index) const noexcept {
  Node n;
  n.router = index / (ports_ * max_vcs_);
  n.port = static_cast<PortId>((index / max_vcs_) % ports_);
  n.vc = static_cast<VcId>(index % max_vcs_);
  return n;
}

void WaitGraph::build() {
  const Dragonfly& topo = net_.topo();
  ports_ = topo.ports_per_router();
  // Config-derived bound, not router state: lazy construction leaves
  // untouched routers without bound FIFOs, and the index space must not
  // depend on which routers happen to be built. An embedded escape ring
  // adds one VC to one input port per router.
  const SimConfig& cfg = net_.config();
  max_vcs_ = std::max({1u, cfg.vcs_local, cfg.vcs_global, cfg.vcs_injection});
  if (cfg.ring == RingKind::kEmbedded) ++max_vcs_;
  const std::size_t total =
      static_cast<std::size_t>(topo.routers()) * ports_ * max_vcs_;
  adj_.assign(total, {});
  is_ring_node_.assign(total, 0);
  num_edges_ = 0;

  const Cycle now = net_.now();
  const u32 timeout = net_.config().deadlock_timeout;
  const u32 need = net_.config().packet_size;

  for (RouterId r = 0; r < topo.routers(); ++r) {
    if (!net_.router_built(r)) continue;  // no heads, so no wait edges
    const Router& router = net_.router(r);
    for (PortId p = 0; p < ports_; ++p) {
      const HeadView in(router.inputs[p]);
      for (u32 v = 0; v < in.num_vcs(); ++v) {
        const u32 u = node_index(r, p, static_cast<VcId>(v));
        if (net_.is_ring_input(r, p, static_cast<VcId>(v)))
          is_ring_node_[u] = 1;
        if (in.empty(static_cast<VcId>(v))) continue;
        // Streaming heads are making progress, not waiting.
        if (in.head_in_flight(static_cast<VcId>(v))) continue;
        const Packet& pkt = net_.packets().get(in.head(static_cast<VcId>(v)));
        if (now - pkt.last_progress <= timeout) continue;

        // Structural wait output (see header): topology-derived only.
        PortId wait_port;
        u32 first = 0, count = 0;
        if (pkt.in_ring && net_.ring() != nullptr) {
          const Network::RingOut& ro = net_.ring_out(r);
          wait_port = ro.port;
          first = ro.first_vc;
          count = ro.num_vcs;
        } else if (r == pkt.dst_router) {
          wait_port = topo.node_port(topo.node_slot(pkt.dst));
          count = 1;
        } else {
          wait_port = topo.min_next_port(r, pkt.dst_router);
          net_.base_vc_range(r, wait_port, first, count);
        }
        const OutputPort& out = router.outputs[wait_port];
        // A busy output is draining at one phit per cycle — progress, not a
        // hold/wait edge. Same for any candidate VC with a packet of
        // credits: the head could be granted.
        if (!out.wired() || out.busy()) continue;
        bool any_free = false;
        for (u32 w = first; w < first + count && w < out.credits.size(); ++w)
          if (out.credits[w] >= need) {
            any_free = true;
            break;
          }
        if (any_free) continue;
        const Channel ch = net_.channel(out.channel);
        if (ch.is_ejection()) continue;  // sink credits never run out
        for (u32 w = first; w < first + count && w < out.credits.size();
             ++w) {
          adj_[u].push_back(
              node_index(ch.dst_router, ch.dst_port, static_cast<VcId>(w)));
          ++num_edges_;
        }
      }
    }
  }
}

std::vector<WaitGraph::Node> WaitGraph::find_ring_cycle() const {
  // DFS over the subgraph induced on ring nodes: a cycle there is exactly a
  // wait cycle whose members are all escape-ring VCs.
  const std::size_t n = adj_.size();
  std::vector<u8> color(n, 0);  // 0 = unvisited, 1 = on stack, 2 = done
  std::vector<std::pair<u32, std::size_t>> frame;  // (node, next edge)
  std::vector<u32> path;
  for (u32 s = 0; s < n; ++s) {
    if (is_ring_node_[s] == 0 || color[s] != 0 || adj_[s].empty()) continue;
    frame.clear();
    path.clear();
    frame.emplace_back(s, 0);
    color[s] = 1;
    path.push_back(s);
    while (!frame.empty()) {
      const u32 u = frame.back().first;
      if (frame.back().second < adj_[u].size()) {
        const u32 v = adj_[u][frame.back().second++];
        if (is_ring_node_[v] == 0) continue;
        if (color[v] == 1) {
          const auto it = std::find(path.begin(), path.end(), v);
          std::vector<Node> cycle;
          for (auto p = it; p != path.end(); ++p)
            cycle.push_back(node_at(*p));
          return cycle;
        }
        if (color[v] == 0) {
          color[v] = 1;
          frame.emplace_back(v, 0);
          path.push_back(v);
        }
      } else {
        color[u] = 2;
        frame.pop_back();
        path.pop_back();
      }
    }
  }
  return {};
}

std::string WaitGraph::describe(const std::vector<Node>& cycle) {
  std::string out;
  char buf[48];
  for (const Node& n : cycle) {
    if (!out.empty()) out += " -> ";
    std::snprintf(buf, sizeof buf, "r%u.p%uv%u", n.router,
                  static_cast<u32>(n.port), static_cast<u32>(n.vc));
    out += buf;
  }
  if (!cycle.empty()) out += " -> (back)";
  return out;
}

}  // namespace ofar::verify
