file(REMOVE_RECURSE
  "CMakeFiles/fig6_transient.dir/fig6_transient.cpp.o"
  "CMakeFiles/fig6_transient.dir/fig6_transient.cpp.o.d"
  "fig6_transient"
  "fig6_transient.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_transient.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
