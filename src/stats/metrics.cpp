#include "stats/metrics.hpp"

#include <algorithm>

#include "sim/flat_state.hpp"
#include "sim/network.hpp"
#include "stats/sink.hpp"

namespace ofar {

const char* to_string(SimPhase p) noexcept {
  switch (p) {
    case SimPhase::kEventDelivery: return "event_delivery";
    case SimPhase::kPolicyTick: return "policy_tick";
    case SimPhase::kTransfers: return "transfers";
    case SimPhase::kAllocation: return "allocation";
    case SimPhase::kInjection: return "injection";
    case SimPhase::kWatchdog: return "watchdog";
  }
  return "?";
}

namespace {

constexpr SimPhase kAllPhases[kNumSimPhases] = {
    SimPhase::kEventDelivery, SimPhase::kPolicyTick, SimPhase::kTransfers,
    SimPhase::kAllocation,    SimPhase::kInjection,  SimPhase::kWatchdog,
};

}  // namespace

Telemetry::Telemetry(const Network& net, TelemetryConfig cfg)
    : cfg_(std::move(cfg)), net_(&net), prof_(cfg_.phase_sample_period) {
  OFAR_CHECK_MSG(cfg_.interval > 0, "telemetry interval must be positive");
  const Dragonfly& topo = net.topo();
  ports_ = topo.ports_per_router();

  // Flat per-VC index space: vc_base_[r*ports_+p] is the base of the VCs of
  // input port p of router r; the final entry holds the total VC count.
  // Computed from the arithmetic input shape, not router state: under lazy
  // construction most routers have no bound FIFOs yet, and the flat index
  // must not depend on construction order.
  vc_base_.assign(static_cast<std::size_t>(topo.routers()) * ports_ + 1, 0);
  u32 total_vcs = 0;
  for (RouterId r = 0; r < topo.routers(); ++r) {
    for (PortId p = 0; p < ports_; ++p) {
      vc_base_[static_cast<std::size_t>(r) * ports_ + p] = total_vcs;
      u32 vcs = 0, cap = 0;
      net.input_shape(r, p, vcs, cap);
      total_vcs += vcs;
    }
  }
  vc_base_.back() = total_vcs;
  vc_credit_stall_.assign(total_vcs, 0);
  vc_alloc_stall_.assign(total_vcs, 0);

  prev_phits_.assign(net.num_channels(), 0);
  for (ChannelId c = 0; c < net.num_channels(); ++c)
    prev_phits_[c] = net.channel_phits(c);

  last_sample_cycle_ = net.now();
  next_sample_ = net.now() + cfg_.interval;
  define_metrics();
}

Telemetry::~Telemetry() {
  // Safety net for drivers that never call write_summary explicitly; the
  // Network declares its Telemetry last, so `net_` is still fully alive.
  if (!summary_written_ && cfg_.sink != nullptr && net_ != nullptr)
    write_summary(*net_);
}

void Telemetry::define_metrics() {
  auto gauge = [this](const char* n, const char* u) {
    return reg_.define(n, u, MetricKind::kGauge);
  };
  auto counter = [this](const char* n, const char* u) {
    return reg_.define(n, u, MetricKind::kCounter);
  };

  id_cycle_ = counter("sim.cycle", "cycles");
  id_interval_ = gauge("sim.interval_cycles", "cycles");
  id_live_ = gauge("packets.live", "packets");
  id_pending_ = gauge("packets.pending_offers", "packets");
  id_generated_ = counter("packets.generated", "packets");
  id_delivered_ = counter("packets.delivered", "packets");
  id_latency_mean_ = gauge("latency.mean", "cycles");
  id_util_local_ = gauge("link.util.local", "fraction");
  id_util_global_ = gauge("link.util.global", "fraction");
  id_util_ring_ = gauge("link.util.ring", "fraction");
  id_util_max_ = gauge("link.util.max", "fraction");
  id_vc_occ_mean_ = gauge("vc.occupancy.mean", "fraction");
  id_vc_occ_max_ = gauge("vc.occupancy.max", "fraction");
  id_ring_occ_ = gauge("ring.occupancy", "packets");
  id_ring_entries_ = counter("ring.entries", "events");
  id_ring_reentries_ = counter("ring.reentries", "events");
  id_mis_local_ = counter("misroute.local", "events");
  id_mis_global_ = counter("misroute.global", "events");
  id_stall_credit_ = counter("stall.credit_cycles", "head-cycles");
  id_stall_alloc_ = counter("stall.alloc_cycles", "head-cycles");
  id_wl_routers_ = gauge("worklist.routers", "routers");
  id_wl_nodes_ = gauge("worklist.nodes", "nodes");
  id_throttled_ = gauge("throttled.routers", "routers");
  id_wd_stalled_ = gauge("watchdog.stalled", "packets");
  id_wd_worst_ = gauge("watchdog.worst_stall", "cycles");
  for (u32 i = 0; i < kNumSimPhases; ++i) {
    const std::string base = std::string("phase.") + to_string(kAllPhases[i]);
    id_phase_secs_[i] =
        reg_.define(base + ".seconds", "seconds", MetricKind::kCounter);
    id_phase_calls_[i] =
        reg_.define(base + ".invocations", "calls", MetricKind::kCounter);
  }
}

void Telemetry::sample(const Network& net, Cycle now) {
  // Serial by contract: called from step()'s post-phase tail and drivers.
  tsa::serial_phase.assert_held();
  const Cycle width = now - last_sample_cycle_;
  last_sample_cycle_ = now;
  ++samples_;

  const Stats& st = net.stats();
  reg_.set(id_cycle_, static_cast<double>(now));
  reg_.set(id_interval_, static_cast<double>(width));
  reg_.set(id_live_, static_cast<double>(net.packets().live_count()));
  reg_.set(id_pending_, static_cast<double>(net.pending_offers()));
  reg_.set(id_generated_, static_cast<double>(st.generated_packets()));
  reg_.set(id_delivered_, static_cast<double>(st.delivered_packets()));
  reg_.set(id_latency_mean_, st.latency().mean());

  // Quiescence fast path: when the network held zero packets at both ends
  // of the interval and none was generated in between, no phit can have
  // moved and every buffer is empty — all scan results are structurally
  // zero and prev_phits_ is already current, so the O(network) sweeps are
  // skipped. Keeps sampling cost proportional to activity, matching the
  // kernel's worklist philosophy (drain tails sample at ~zero cost).
  const bool idle =
      net.packets().live_count() == 0 && net.pending_offers() == 0;
  const bool quiescent = idle && prev_sample_idle_ &&
                         st.generated_packets() == prev_sample_generated_ &&
                         !(cfg_.full_dump && cfg_.sink != nullptr);
  prev_sample_idle_ = idle;
  prev_sample_generated_ = st.generated_packets();
  if (quiescent) {
    reg_.set(id_util_local_, 0.0);
    reg_.set(id_util_global_, 0.0);
    reg_.set(id_util_ring_, 0.0);
    reg_.set(id_util_max_, 0.0);
    reg_.set(id_vc_occ_mean_, 0.0);
    reg_.set(id_vc_occ_max_, 0.0);
    reg_.set(id_ring_occ_, 0.0);
    hot_ = Hot{};
    hot_.channel = kInvalidChannel;
    // id_throttled_ keeps its previous value: an idle router runs no phase,
    // so its throttle latch cannot have changed since the last sample.
    sample_tail(net, st, now, width);
    return;
  }

  // ---- link utilisation: phits carried since the previous sample ----
  delta_scratch_.assign(net.num_channels(), 0);
  u64 class_phits[5] = {};
  u32 class_links[5] = {};
  hot_.channel = kInvalidChannel;
  hot_.link_util = 0.0;
  for (ChannelId c = 0; c < net.num_channels(); ++c) {
    if (!net.channel_wired(c)) continue;  // trimmed global slots
    const Channel ch = net.channel(c);
    const u64 phits = net.channel_phits(c);
    const u64 d = phits - prev_phits_[c];
    prev_phits_[c] = phits;
    delta_scratch_[c] = d;
    const u32 k = static_cast<u32>(ch.cls);
    class_phits[k] += d;
    ++class_links[k];
    if (ch.is_ejection()) continue;
    const double util =
        width == 0 ? 0.0 : static_cast<double>(d) / static_cast<double>(width);
    if (hot_.channel == kInvalidChannel || util > hot_.link_util) {
      hot_.channel = c;
      hot_.link_util = util;
    }
  }
  const auto class_util = [width](u64 phits, u32 links) {
    if (width == 0 || links == 0) return 0.0;
    return static_cast<double>(phits) /
           (static_cast<double>(links) * static_cast<double>(width));
  };
  const u32 kL = static_cast<u32>(ChannelClass::kLocal);
  const u32 kG = static_cast<u32>(ChannelClass::kGlobal);
  const u32 kRl = static_cast<u32>(ChannelClass::kRingLocal);
  const u32 kRg = static_cast<u32>(ChannelClass::kRingGlobal);
  reg_.set(id_util_local_, class_util(class_phits[kL], class_links[kL]));
  reg_.set(id_util_global_, class_util(class_phits[kG], class_links[kG]));
  reg_.set(id_util_ring_, class_util(class_phits[kRl] + class_phits[kRg],
                                     class_links[kRl] + class_links[kRg]));
  reg_.set(id_util_max_, hot_.link_util);

  // ---- per-VC buffer occupancy + throttle latches ----
  double occ_sum = 0.0;
  u64 occ_n = 0;
  u32 throttled = 0;
  hot_.vc_occ = 0.0;
  hot_.vc_router = 0;
  hot_.vc_port = 0;
  hot_.vc_vc = 0;
  for (RouterId r = 0; r < net.topo().routers(); ++r) {
    if (!net.router_built(r)) continue;  // untouched: every buffer empty
    const Router& router = net.router(r);
    if (router.throttled) ++throttled;
    for (PortId p = 0; p < ports_; ++p) {
      const HeadView in(router.inputs[p]);
      for (u32 v = 0; v < in.num_vcs(); ++v) {
        const u32 cap = in.capacity(static_cast<VcId>(v));
        if (cap == 0) continue;
        const double occ =
            static_cast<double>(in.stored_phits(static_cast<VcId>(v))) /
            static_cast<double>(cap);
        occ_sum += occ;
        ++occ_n;
        if (occ > hot_.vc_occ) {
          hot_.vc_occ = occ;
          hot_.vc_router = r;
          hot_.vc_port = p;
          hot_.vc_vc = static_cast<VcId>(v);
        }
      }
    }
  }
  reg_.set(id_vc_occ_mean_, occ_n == 0 ? 0.0 : occ_sum / occ_n);
  reg_.set(id_vc_occ_max_, hot_.vc_occ);
  reg_.set(id_throttled_, throttled);

  // ---- escape-ring pressure ----
  u64 in_ring = 0;
  net.packets().for_each_live([&](PacketId, const Packet& pkt) {
    if (pkt.in_ring) ++in_ring;
  });
  reg_.set(id_ring_occ_, static_cast<double>(in_ring));

  sample_tail(net, st, now, width);
}

/// Activity-independent remainder of a sample: counter mirrors, phase
/// estimates, and record emission. Shared by the full and quiescent paths.
void Telemetry::sample_tail(const Network& net, const Stats& st, Cycle now,
                            Cycle width) {
  tsa::serial_phase.assert_held();  // only reached from sample()
  reg_.set(id_ring_entries_, static_cast<double>(st.ring_entries()));
  reg_.set(id_ring_reentries_, static_cast<double>(st.ring_reentries()));
  reg_.set(id_mis_local_, static_cast<double>(st.local_misroutes()));
  reg_.set(id_mis_global_, static_cast<double>(st.global_misroutes()));

  reg_.set(id_stall_credit_, static_cast<double>(credit_stall_cycles()));
  reg_.set(id_stall_alloc_, static_cast<double>(alloc_stall_cycles()));
  reg_.set(id_wl_routers_, static_cast<double>(net.active_router_count()));
  reg_.set(id_wl_nodes_, static_cast<double>(net.active_node_count()));
  reg_.set(id_wd_stalled_, static_cast<double>(st.stalled_packets()));
  reg_.set(id_wd_worst_, static_cast<double>(st.worst_stall()));

  for (u32 i = 0; i < kNumSimPhases; ++i) {
    reg_.set(id_phase_secs_[i], prof_.estimated_total_seconds(kAllPhases[i]));
    reg_.set(id_phase_calls_[i],
             static_cast<double>(prof_.invocations(kAllPhases[i])));
  }

  if (cfg_.sink != nullptr) {
    emit_interval(net, now, width);
    if (cfg_.full_dump) emit_full_dump(net, now, width);
  }
}

void Telemetry::emit_interval(const Network& net, Cycle now, Cycle width) {
  MetricsSink& sink = *cfg_.sink;
  if (sink.format() == MetricsSink::Format::kCsv) {
    for (MetricsRegistry::Id i = 0; i < reg_.size(); ++i)
      sink.write_csv_row(cfg_.label, "interval", now, reg_.def(i).name,
                         reg_.value(i));
    if (hot_.channel != kInvalidChannel) {
      sink.write_csv_row(cfg_.label, "interval", now, "hot_link.channel",
                         static_cast<double>(hot_.channel));
      sink.write_csv_row(cfg_.label, "interval", now, "hot_link.util",
                         hot_.link_util);
    }
    sink.write_csv_row(cfg_.label, "interval", now, "hot_vc.router",
                       static_cast<double>(hot_.vc_router));
    sink.write_csv_row(cfg_.label, "interval", now, "hot_vc.port",
                       static_cast<double>(hot_.vc_port));
    sink.write_csv_row(cfg_.label, "interval", now, "hot_vc.vc",
                       static_cast<double>(hot_.vc_vc));
    sink.write_csv_row(cfg_.label, "interval", now, "hot_vc.occupancy",
                       hot_.vc_occ);
    return;
  }

  JsonWriter w;
  w.begin_object();
  w.key("type").value("interval");
  w.key("label").value(cfg_.label);
  w.key("cycle").value(now);
  w.key("interval_cycles").value(width);
  w.key("metrics").begin_object();
  for (MetricsRegistry::Id i = 0; i < reg_.size(); ++i)
    w.key(reg_.def(i).name.c_str()).value(reg_.value(i));
  w.end_object();
  if (hot_.channel != kInvalidChannel) {
    const Channel ch = net.channel(hot_.channel);
    w.key("hot_link").begin_object();
    w.key("channel").value(hot_.channel);
    w.key("src_router").value(ch.src_router);
    w.key("src_port").value(static_cast<u32>(ch.src_port));
    w.key("class").value(to_string(ch.cls));
    w.key("util").value(hot_.link_util);
    w.end_object();
  }
  w.key("hot_vc").begin_object();
  w.key("router").value(hot_.vc_router);
  w.key("port").value(static_cast<u32>(hot_.vc_port));
  w.key("vc").value(static_cast<u32>(hot_.vc_vc));
  w.key("occupancy").value(hot_.vc_occ);
  w.end_object();
  w.end_object();
  sink.write_line(w.str());
}

void Telemetry::emit_full_dump(const Network& net, Cycle now, Cycle width) {
  MetricsSink& sink = *cfg_.sink;
  const bool csv = sink.format() == MetricsSink::Format::kCsv;

  // Per-channel utilisation (idle channels omitted to bound the record).
  JsonWriter lw;
  if (!csv) {
    lw.begin_object();
    lw.key("type").value("links");
    lw.key("label").value(cfg_.label);
    lw.key("cycle").value(now);
    lw.key("links").begin_array();
  }
  for (ChannelId c = 0; c < net.num_channels(); ++c) {
    const u64 d = delta_scratch_[c];
    if (d == 0) continue;  // unwired slots never accumulate a delta
    const Channel ch = net.channel(c);
    const double util =
        width == 0 ? 0.0 : static_cast<double>(d) / static_cast<double>(width);
    if (csv) {
      char name[64];
      std::snprintf(name, sizeof name, "link.%u.util", c);
      sink.write_csv_row(cfg_.label, "links", now, name, util);
    } else {
      lw.begin_object();
      lw.key("channel").value(c);
      lw.key("src_router").value(ch.src_router);
      lw.key("src_port").value(static_cast<u32>(ch.src_port));
      lw.key("class").value(to_string(ch.cls));
      lw.key("phits").value(d);
      lw.key("util").value(util);
      lw.end_object();
    }
  }
  if (!csv) {
    lw.end_array();
    lw.end_object();
    sink.write_line(lw.str());
  }

  // Per-VC occupancy and cumulative stall counters (idle VCs omitted).
  JsonWriter vw;
  if (!csv) {
    vw.begin_object();
    vw.key("type").value("vcs");
    vw.key("label").value(cfg_.label);
    vw.key("cycle").value(now);
    vw.key("vcs").begin_array();
  }
  for (RouterId r = 0; r < net.topo().routers(); ++r) {
    if (!net.router_built(r)) continue;  // untouched: nothing stored, no stalls
    const Router& router = net.router(r);
    for (PortId p = 0; p < ports_; ++p) {
      const HeadView in(router.inputs[p]);
      for (u32 v = 0; v < in.num_vcs(); ++v) {
        const u32 stored = in.stored_phits(static_cast<VcId>(v));
        const u32 flat = vc_index(r, p, static_cast<VcId>(v));
        const u64 cstall = vc_credit_stall_[flat];
        const u64 astall = vc_alloc_stall_[flat];
        if (stored == 0 && cstall == 0 && astall == 0) continue;
        const u32 cap = in.capacity(static_cast<VcId>(v));
        const double occ =
            cap == 0 ? 0.0
                     : static_cast<double>(stored) / static_cast<double>(cap);
        if (csv) {
          char name[64];
          std::snprintf(name, sizeof name, "vc.%u.%u.%u.occupancy", r,
                        static_cast<u32>(p), v);
          sink.write_csv_row(cfg_.label, "vcs", now, name, occ);
        } else {
          vw.begin_object();
          vw.key("router").value(r);
          vw.key("port").value(static_cast<u32>(p));
          vw.key("vc").value(v);
          vw.key("stored_phits").value(stored);
          vw.key("occupancy").value(occ);
          vw.key("credit_stall_cycles").value(cstall);
          vw.key("alloc_stalls").value(astall);
          vw.end_object();
        }
      }
    }
  }
  if (!csv) {
    vw.end_array();
    vw.end_object();
    sink.write_line(vw.str());
  }
}

void Telemetry::collect_edges(const Network& net, Cycle now,
                              std::vector<StallEdge>& edges,
                              u64& total) const {
  const Dragonfly& topo = net.topo();
  const u32 timeout = net.config().deadlock_timeout;
  total = 0;
  for (RouterId r = 0; r < topo.routers(); ++r) {
    if (!net.router_built(r)) continue;  // untouched: no resident heads
    const Router& router = net.router(r);
    for (PortId p = 0; p < ports_; ++p) {
      const HeadView in(router.inputs[p]);
      for (u32 v = 0; v < in.num_vcs(); ++v) {
        if (in.empty(static_cast<VcId>(v))) continue;
        // Streaming heads are making progress, not stalled.
        if (in.head_in_flight(static_cast<VcId>(v))) continue;
        const PacketId id = in.head(static_cast<VcId>(v));
        const Packet& pkt = net.packets().get(id);
        const u64 age = now - pkt.last_progress;
        if (age <= timeout) continue;
        ++total;
        if (edges.size() >= cfg_.max_forensic_edges) continue;

        StallEdge e;
        e.router = r;
        e.in_port = p;
        e.in_vc = static_cast<VcId>(v);
        e.packet = id;
        e.src = pkt.src;
        e.dst = pkt.dst;
        e.dst_router = pkt.dst_router;
        e.age = age;
        e.in_ring = pkt.in_ring;
        e.arrived_phits = in.head_arrived(static_cast<VcId>(v));

        // The output this head structurally waits for: the ring output for
        // in-ring packets, ejection at the destination router, else the
        // minimal-path port. Derived from the topology only — the routing
        // policy is never consulted, so no RNG draw can occur.
        u32 first = 0, count = 0;
        if (pkt.in_ring && net.ring() != nullptr) {
          const Network::RingOut& ro = net.ring_out(r);
          e.wait_port = ro.port;
          first = ro.first_vc;
          count = ro.num_vcs;
        } else if (r == pkt.dst_router) {
          e.wait_port = topo.node_port(topo.node_slot(pkt.dst));
          count = 1;
        } else {
          e.wait_port = topo.min_next_port(r, pkt.dst_router);
          net.base_vc_range(r, e.wait_port, first, count);
        }
        const OutputPort& out = router.outputs[e.wait_port];
        e.wait_busy = out.busy();
        e.held_by = out.active;
        u32 best = 0;
        for (u32 vv = first; vv < first + count && vv < out.credits.size();
             ++vv)
          best = std::max(best, out.credits[vv]);
        e.wait_credits = best;
        edges.push_back(e);
      }
    }
  }
}

void Telemetry::on_watchdog_trip(const Network& net, u64 stalled,
                                 u64 worst_stall) {
  if (forensic_dumps_ >= cfg_.max_forensic_dumps) return;
  ++forensic_dumps_;
  last_edges_.clear();
  u64 total = 0;
  collect_edges(net, net.now(), last_edges_, total);
  if (cfg_.sink != nullptr)
    emit_forensics(net, net.now(), stalled, worst_stall, total);
}

void Telemetry::emit_forensics(const Network& net, Cycle now, u64 stalled,
                               u64 worst_stall, u64 total_edges) {
  (void)net;
  MetricsSink& sink = *cfg_.sink;
  const u64 truncated = total_edges - last_edges_.size();

  if (sink.format() == MetricsSink::Format::kCsv) {
    sink.write_csv_row(cfg_.label, "forensics", now, "stalled_packets",
                       static_cast<double>(stalled));
    sink.write_csv_row(cfg_.label, "forensics", now, "worst_stall",
                       static_cast<double>(worst_stall));
    sink.write_csv_row(cfg_.label, "forensics", now, "truncated_edges",
                       static_cast<double>(truncated));
    for (std::size_t i = 0; i < last_edges_.size(); ++i) {
      const StallEdge& e = last_edges_[i];
      char name[64];
      const auto row = [&](const char* field, double v) {
        std::snprintf(name, sizeof name, "edge%zu.%s", i, field);
        sink.write_csv_row(cfg_.label, "forensics", now, name, v);
      };
      row("router", e.router);
      row("port", e.in_port);
      row("vc", e.in_vc);
      row("packet", e.packet);
      row("age", static_cast<double>(e.age));
      row("in_ring", e.in_ring ? 1.0 : 0.0);
      row("wait_port", e.wait_port);
      row("wait_busy", e.wait_busy ? 1.0 : 0.0);
      row("wait_credits", e.wait_credits);
    }
    return;
  }

  JsonWriter w;
  w.begin_object();
  w.key("type").value("forensics");
  w.key("label").value(cfg_.label);
  w.key("cycle").value(now);
  w.key("stalled_packets").value(stalled);
  w.key("worst_stall").value(worst_stall);
  w.key("edges").begin_array();
  for (const StallEdge& e : last_edges_) {
    w.begin_object();
    w.key("router").value(e.router);
    w.key("port").value(static_cast<u32>(e.in_port));
    w.key("vc").value(static_cast<u32>(e.in_vc));
    w.key("packet").value(e.packet);
    w.key("src").value(e.src);
    w.key("dst").value(e.dst);
    w.key("dst_router").value(e.dst_router);
    w.key("age").value(e.age);
    w.key("in_ring").value(e.in_ring);
    w.key("arrived_phits").value(e.arrived_phits);
    w.key("wait_port").value(static_cast<u32>(e.wait_port));
    w.key("wait_busy").value(e.wait_busy);
    if (e.held_by != kInvalidPacket) w.key("held_by").value(e.held_by);
    w.key("wait_credits").value(e.wait_credits);
    w.end_object();
  }
  w.end_array();
  w.key("truncated").value(truncated);
  w.end_object();
  sink.write_line(w.str());
}

void Telemetry::write_summary(const Network& net) {
  if (summary_written_) return;
  summary_written_ = true;
  if (cfg_.sink == nullptr) return;

  const Stats& st = net.stats();
  const Cycle now = net.now();
  MetricsSink& sink = *cfg_.sink;

  // Top stalled input VCs, by combined credit + alloc stalls. Ties resolve
  // to the lower flat index, so the report is deterministic.
  struct TopVc {
    u64 total;
    u32 flat;
    RouterId router;
    PortId port;
    VcId vc;
  };
  std::vector<TopVc> top;
  for (RouterId r = 0; r < net.topo().routers(); ++r) {
    for (PortId p = 0; p < ports_; ++p) {
      const std::size_t slot = static_cast<std::size_t>(r) * ports_ + p;
      const u32 base = vc_base_[slot];
      const u32 end = vc_base_[slot + 1];
      for (u32 f = base; f < end; ++f) {
        const u64 t = vc_credit_stall_[f] + vc_alloc_stall_[f];
        if (t > 0)
          top.push_back({t, f, r, p, static_cast<VcId>(f - base)});
      }
    }
  }
  const std::size_t keep = std::min<std::size_t>(8, top.size());
  std::partial_sort(top.begin(), top.begin() + keep, top.end(),
                    [](const TopVc& a, const TopVc& b) {
                      return a.total != b.total ? a.total > b.total
                                                : a.flat < b.flat;
                    });
  top.resize(keep);

  const LatencyAccum& lat = st.latency();
  const LatencyHistogram& hist = st.latency_histogram();

  if (sink.format() == MetricsSink::Format::kCsv) {
    const auto row = [&](const char* metric, double v) {
      sink.write_csv_row(cfg_.label, "summary", now, metric, v);
    };
    row("samples", static_cast<double>(samples_));
    row("stats.generated_packets", static_cast<double>(st.generated_packets()));
    row("stats.delivered_packets", static_cast<double>(st.delivered_packets()));
    row("stats.delivered_phits", static_cast<double>(st.delivered_phits()));
    row("stats.latency_mean", lat.mean());
    row("stats.latency_p50", static_cast<double>(hist.percentile(0.50)));
    row("stats.latency_p99", static_cast<double>(hist.percentile(0.99)));
    row("stats.latency_overflow", static_cast<double>(hist.overflow_count()));
    row("stats.ring_entries", static_cast<double>(st.ring_entries()));
    row("stats.ring_packets", static_cast<double>(st.ring_packets()));
    row("stats.ring_reentries", static_cast<double>(st.ring_reentries()));
    row("stats.ring_use_fraction", st.ring_use_fraction());
    row("stalls.credit_cycles", static_cast<double>(credit_stall_cycles()));
    row("stalls.alloc_cycles", static_cast<double>(alloc_stall_cycles()));
    for (u32 i = 0; i < kNumSimPhases; ++i) {
      char name[64];
      std::snprintf(name, sizeof name, "phase.%s.seconds",
                    to_string(kAllPhases[i]));
      row(name, prof_.estimated_total_seconds(kAllPhases[i]));
    }
    return;
  }

  JsonWriter w;
  w.begin_object();
  w.key("type").value("summary");
  w.key("label").value(cfg_.label);
  w.key("cycle").value(now);
  w.key("samples").value(samples_);
  w.key("forensic_dumps").value(forensic_dumps_);

  w.key("stats").begin_object();
  w.key("generated_packets").value(st.generated_packets());
  w.key("injected_packets").value(st.injected_packets());
  w.key("delivered_packets").value(st.delivered_packets());
  w.key("delivered_phits").value(st.delivered_phits());
  w.key("latency_mean").value(lat.mean());
  w.key("latency_stddev").value(lat.stddev());
  w.key("latency_min").value(lat.count == 0 ? u64{0} : lat.min);
  w.key("latency_max").value(lat.max);
  w.key("latency_p50").value(hist.percentile(0.50));
  w.key("latency_p99").value(hist.percentile(0.99));
  w.key("latency_overflow").value(hist.overflow_count());
  w.key("mean_hops").value(st.mean_hops());
  w.key("max_hops").value(st.max_hops());
  w.key("local_misroutes").value(st.local_misroutes());
  w.key("global_misroutes").value(st.global_misroutes());
  w.key("ring_entries").value(st.ring_entries());
  w.key("ring_exits").value(st.ring_exits());
  w.key("ring_packets").value(st.ring_packets());
  w.key("ring_reentries").value(st.ring_reentries());
  w.key("ring_use_fraction").value(st.ring_use_fraction());
  w.key("stalled_packets").value(st.stalled_packets());
  w.key("worst_stall").value(st.worst_stall());
  w.end_object();

  w.key("stalls").begin_object();
  w.key("credit_cycles").value(credit_stall_cycles());
  w.key("alloc_cycles").value(alloc_stall_cycles());
  w.key("top").begin_array();
  for (const TopVc& t : top) {
    w.begin_object();
    w.key("router").value(t.router);
    w.key("port").value(static_cast<u32>(t.port));
    w.key("vc").value(static_cast<u32>(t.vc));
    w.key("credit_stall_cycles").value(vc_credit_stall_[t.flat]);
    w.key("alloc_stalls").value(vc_alloc_stall_[t.flat]);
    w.end_object();
  }
  w.end_array();
  w.end_object();

  w.key("phases").begin_array();
  for (u32 i = 0; i < kNumSimPhases; ++i) {
    const SimPhase p = kAllPhases[i];
    w.begin_object();
    w.key("name").value(to_string(p));
    w.key("invocations").value(prof_.invocations(p));
    w.key("sampled_invocations").value(prof_.sampled_invocations(p));
    w.key("sampled_seconds").value(prof_.seconds(p));
    w.key("estimated_seconds").value(prof_.estimated_total_seconds(p));
    w.end_object();
  }
  w.end_array();

  w.key("profiler").begin_object();
  w.key("cycles").value(prof_.cycles());
  w.key("sampled_cycles").value(prof_.sampled_cycles());
  w.key("sample_period").value(prof_.sample_period());
  w.end_object();

  w.end_object();
  sink.write_line(w.str());
}

}  // namespace ofar
