"""Line-tracking C++ tokenizer for the builtin frontend.

Produces identifier/number/punctuation tokens with source lines attached,
with comments and string/char literals stripped (string literals become a
single `""` token so grammar shapes survive). Preprocessor directives are
dropped except that `#if 0` blocks are skipped entirely. Waiver comments
(`// lint: allow(rule)`) are collected per line before stripping.
"""

import re

WAIVER_RE = re.compile(r"//\s*lint:\s*allow\((?P<rule>[\w-]+)\)")

# Multi-char operators, longest first, so `->` never splits into `-` `>`.
_PUNCT = [
    "<<=", ">>=", "->*", "...", "::", "->", "<<", ">>", "<=", ">=", "==",
    "!=", "&&", "||", "++", "--", "+=", "-=", "*=", "/=", "%=", "&=", "|=",
    "^=",
]

_TOKEN_RE = re.compile(
    "|".join(re.escape(p) for p in _PUNCT)
    + r"|[A-Za-z_][A-Za-z0-9_]*|[0-9][0-9a-fA-FxX'.uUlLfF]*|\S"
)


def collect_waivers(text, path, waivers):
    """Records `// lint: allow(rule)` sites into waivers[(path, line)]."""
    for lineno, line in enumerate(text.splitlines(), start=1):
        for m in WAIVER_RE.finditer(line):
            waivers.setdefault((path, lineno), set()).add(m.group("rule"))


def strip_and_tokenize(text):
    """Returns a list of (token_text, line) pairs."""
    tokens = []
    i = 0
    n = len(text)
    line = 1
    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
            continue
        if c in " \t\r\f\v":
            i += 1
            continue
        if c == "/" and i + 1 < n:
            if text[i + 1] == "/":
                j = text.find("\n", i)
                i = n if j < 0 else j
                continue
            if text[i + 1] == "*":
                j = text.find("*/", i + 2)
                if j < 0:
                    break
                line += text.count("\n", i, j + 2)
                i = j + 2
                continue
        if c == '"':
            # Raw strings: R"delim(...)delim"
            if i >= 1 and text[i - 1] == "R" and tokens and \
                    tokens[-1][0] == "R":
                m = re.match(r'R"([^(]*)\(', text[i - 1:])
                if m:
                    end = text.find(")" + m.group(1) + '"', i)
                    if end < 0:
                        break
                    line += text.count("\n", i, end)
                    tokens[-1] = ('""', tokens[-1][1])
                    i = end + len(m.group(1)) + 2
                    continue
            j = i + 1
            while j < n and text[j] != '"':
                if text[j] == "\\":
                    j += 1
                j += 1
            tokens.append(('""', line))
            line += text.count("\n", i, min(j + 1, n))
            i = j + 1
            continue
        if c == "'":
            j = i + 1
            while j < n and text[j] != "'":
                if text[j] == "\\":
                    j += 1
                j += 1
            tokens.append(("''", line))
            i = j + 1
            continue
        if c == "#":
            # Drop the directive line (honouring backslash continuations).
            j = i
            while True:
                k = text.find("\n", j)
                if k < 0:
                    j = n
                    break
                if text[k - 1] == "\\":
                    line += 1
                    j = k + 1
                    continue
                j = k
                break
            i = j
            continue
        m = _TOKEN_RE.match(text, i)
        if m is None:
            i += 1
            continue
        tokens.append((m.group(0), line))
        i = m.end()
    return tokens


def match_brace(tokens, open_index):
    """Index of the brace matching tokens[open_index] (a '{'), or len."""
    depth = 0
    for i in range(open_index, len(tokens)):
        t = tokens[i][0]
        if t == "{":
            depth += 1
        elif t == "}":
            depth -= 1
            if depth == 0:
                return i
    return len(tokens)


def match_paren(tokens, open_index):
    """Index of the ')' matching tokens[open_index] (a '('), or len."""
    depth = 0
    for i in range(open_index, len(tokens)):
        t = tokens[i][0]
        if t == "(":
            depth += 1
        elif t == ")":
            depth -= 1
            if depth == 0:
                return i
    return len(tokens)
