// Fixture: a correctly staged mini-kernel — no findings expected.
// Parallel phases mutate only shard-local state and the caller-supplied
// ShardState; serial effects happen in the serial commit.

#include <vector>

struct ShardState {
  std::vector<int> out;
};

struct Kernel {
  OFAR_PARALLEL_PHASE void phase(ShardState& sh);
  OFAR_SERIAL_ONLY void commit(ShardState& sh);
  OFAR_SHARD_LOCAL std::vector<int> work_;
  OFAR_SERIAL_ONLY long total_ = 0;
};

void Kernel::phase(ShardState& sh) {
  work_.push_back(1);   // shard-owned
  sh.out.push_back(2);  // staged via the caller's ShardState
}

void Kernel::commit(ShardState& sh) {
  for (int v : sh.out) total_ += v;
  sh.out.clear();
}
