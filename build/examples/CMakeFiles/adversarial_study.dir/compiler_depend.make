# Empty compiler generated dependencies file for adversarial_study.
# This may be replaced when dependencies are built.
