// Runtime model checking of the simulator's structural invariants.
//
// OFAR's correctness argument (paper §III-§IV) rests on properties the
// optimised cycle kernel must preserve exactly: credit-counted virtual
// cut-through flow control, atomic packet advance, a deadlock-free escape
// ring under bubble flow control, and — since the PR 1 kernel rewrite —
// activity worklists that are sound and complete with respect to a full
// scan. The InvariantAuditor re-derives each property from the live network
// state and reports every violation with enough context to act on.
//
// The auditor is read-only and RNG-free: running it (at any interval)
// changes no simulation outcome and leaves per-seed golden digests
// bit-identical. It is O(network) per run, so it is opt-in — enabled with
// Network::enable_audit(interval) or the bench drivers' --audit[-interval]
// flags — and intended for CI workloads and bug hunts, not production
// sweeps. On a violation the periodic driver prints the report and aborts;
// tests call the individual checks and inspect the report instead.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"

namespace ofar {
class Network;
}  // namespace ofar

namespace ofar::verify {

enum class Invariant : u8 {
  kCreditConservation,  ///< per (channel, VC): credits + in-flight + stored
                        ///< + reserved == downstream capacity
  kPacketConservation,  ///< live packets == injected − delivered, and the
                        ///< PacketPool's bitmap agrees with its live count
  kVctAtomicity,        ///< a granted head holds its output exactly
                        ///< packet_size cycles; transfer state is coherent
  kWorklists,           ///< activity-worklist soundness/completeness
  kRingBubble,          ///< escape ring keeps >= one packet of free space
  kWaitGraph,           ///< no wait cycle lies entirely inside ring VCs
};

const char* to_string(Invariant inv) noexcept;

struct Violation {
  Invariant invariant = Invariant::kCreditConservation;
  std::string detail;  ///< names the router/port/vc/packet involved
};

struct AuditReport {
  Cycle cycle = 0;
  u32 checks_run = 0;
  u64 suppressed = 0;  ///< violations beyond the per-report cap
  std::vector<Violation> violations;

  bool ok() const noexcept { return violations.empty() && suppressed == 0; }
  bool has(Invariant inv) const noexcept;
  std::string to_string() const;
  /// One JSON object (cycle, checks_run, violations[]); embedded verbatim
  /// into the flight-recorder dump on audit failure.
  std::string to_json() const;
};

class InvariantAuditor {
 public:
  explicit InvariantAuditor(const Network& net) : net_(net) {}

  /// Runs every check; call between cycles (e.g. right after Network::step
  /// returns, which is when Network's periodic driver runs it).
  AuditReport run_all() const;

  // Individual checks, for tests that target one invariant. Each appends
  // its violations to `rep` and bumps rep.checks_run.
  void check_credit_conservation(AuditReport& rep) const;
  void check_packet_conservation(AuditReport& rep) const;
  void check_vct_atomicity(AuditReport& rep) const;
  void check_worklists(AuditReport& rep) const;
  void check_ring_bubble(AuditReport& rep) const;
  void check_wait_graph(AuditReport& rep) const;

 private:
  void add(AuditReport& rep, Invariant inv, std::string detail) const;

  const Network& net_;
};

}  // namespace ofar::verify
