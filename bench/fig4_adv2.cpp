// Fig. 4 reproduction: latency (a) and throughput (b) versus offered load
// under adversarial +2 traffic (ADV+2), for VAL, PB, OFAR and OFAR-L.
// MIN is omitted as in the paper (it jams on the single minimal global
// link; VAL is the reference instead).
//
// Expected shape (paper §VI-A): OFAR shows the best latency and saturates
// highest (paper: 0.45 vs PB's 0.38 at h=6); OFAR beats OFAR-L slightly;
// VAL sits lowest of the load-balanced mechanisms.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ofar;
  using namespace ofar::bench;
  CommandLine cli(argc, argv);
  const BenchOptions opts = BenchOptions::parse(cli, 5'000, 6'000);
  const std::vector<double> loads = load_grid(cli, 0.05, 0.45, 8);
  if (!reject_unknown(cli)) return 1;

  std::vector<MechanismSpec> specs = {
      {"VAL", opts.config(RoutingKind::kVal)},
      {"PB", opts.config(RoutingKind::kPb)},
      {"OFAR", opts.config(RoutingKind::kOfar)},
      {"OFAR-L", opts.config(RoutingKind::kOfarL)},
  };
  std::printf("Fig. 4 (ADV+2) on %s\n", specs[0].cfg.summary().c_str());
  steady_figure("fig4", "Fig. 4: adversarial +2 traffic (ADV+2)", opts,
                TrafficPattern::adversarial(2), loads, specs);
  return 0;
}
