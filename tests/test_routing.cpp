// Behavioural tests of the routing mechanisms on small networks: routing
// helpers, Valiant phase bookkeeping, PB's saturation broadcast, OFAR's
// misroute flags and escape-ring discipline, and the qualitative phenomena
// the paper builds on (MIN jams under ADV, OFAR does not).
#include <gtest/gtest.h>

#include <memory>

#include "core/experiment.hpp"
#include "routing/piggyback.hpp"
#include "routing/routing.hpp"
#include "sim/network.hpp"
#include "traffic/generator.hpp"

namespace ofar {
namespace {

SimConfig cfg_for(RoutingKind routing, u32 h = 2) {
  SimConfig cfg;
  cfg.h = h;
  cfg.routing = routing;
  cfg.ring = cfg.vc_ordered() ? RingKind::kNone : RingKind::kPhysical;
  cfg.seed = 777;
  return cfg;
}

// ---- routing helpers ----

TEST(RoutingHelpers, MinPortToGroupGoesViaCarrier) {
  Network net(cfg_for(RoutingKind::kMin));
  const Dragonfly& topo = net.topo();
  const GroupId target = 5;
  for (u32 l = 0; l < topo.a(); ++l) {
    const RouterId r = topo.router_at(0, l);
    const PortId p = min_port_to_group(net, r, target);
    if (r == topo.carrier_router(0, target)) {
      EXPECT_EQ(topo.port_class(p), PortClass::kGlobal);
      EXPECT_EQ(topo.group_of(topo.global_peer(r, p).router), target);
    } else {
      EXPECT_EQ(topo.port_class(p), PortClass::kLocal);
      EXPECT_EQ(topo.local_peer(l, p),
                topo.local_of(topo.carrier_router(0, target)));
    }
  }
}

TEST(RoutingHelpers, OrderedVcFollowsHopLevels) {
  Network net(cfg_for(RoutingKind::kVal));
  const Dragonfly& topo = net.topo();
  Packet pkt;
  const PortId lport = topo.first_local_port();
  const PortId gport = topo.first_global_port();
  // l1 before any global hop -> local VC 0; g1 -> global VC 0.
  EXPECT_EQ(ordered_vc(net, 0, lport, pkt), 0);
  EXPECT_EQ(ordered_vc(net, 0, gport, pkt), 0);
  // After g1: l2 -> local VC 1, g2 -> global VC 1.
  pkt.global_hops = 1;
  pkt.local_hops_in_group = 0;
  EXPECT_EQ(ordered_vc(net, 0, lport, pkt), 1);
  EXPECT_EQ(ordered_vc(net, 0, gport, pkt), 1);
  // After g2: l3 -> local VC 2.
  pkt.global_hops = 2;
  EXPECT_EQ(ordered_vc(net, 0, lport, pkt), 2);
  // Intra-group Valiant: second local hop in the same group -> VC 1.
  pkt.global_hops = 0;
  pkt.local_hops_in_group = 1;
  EXPECT_EQ(ordered_vc(net, 0, lport, pkt), 1);
}

TEST(RoutingHelpers, ValiantPhaseCompletesOnArrival) {
  Network net(cfg_for(RoutingKind::kVal));
  const Dragonfly& topo = net.topo();
  Packet pkt;
  pkt.src = 0;
  pkt.dst = topo.node_at(topo.router_at(4, 1), 0);
  pkt.dst_router = topo.router_at(4, 1);
  pkt.inter_group = 2;
  pkt.valiant_done = false;
  // At a router of the intermediate group the phase flips to done.
  (void)valiant_next_port(net, topo.router_at(2, 3), pkt);
  EXPECT_TRUE(pkt.valiant_done);
  // At the destination router the helper returns the ejection port.
  const PortId e = valiant_next_port(net, pkt.dst_router, pkt);
  EXPECT_EQ(net.topo().port_class(e), PortClass::kNode);
}

// ---- policy-level behaviour ----

TEST(MinimalRouting, NeverMisroutesAndJamsUnderAdversarial) {
  const SimConfig cfg = cfg_for(RoutingKind::kMin);
  const SteadyResult un =
      run_steady(cfg, TrafficPattern::uniform(), 0.2, RunParams::windows(2000, 3000));
  const SteadyResult adv =
      run_steady(cfg, TrafficPattern::adversarial(1), 0.2, RunParams::windows(2000, 3000));
  EXPECT_EQ(un.local_misroutes + un.global_misroutes, 0u);
  // ADV+1 under MIN: one global link serves a whole group, an analytic
  // ceiling of 1/(2h^2) = 0.125 phits/(node*cycle) at h=2 (paper §III).
  EXPECT_GT(un.accepted_load, 0.19);
  EXPECT_LT(adv.accepted_load, 0.13);
  EXPECT_GT(adv.accepted_load, 0.08);
}

TEST(ValiantRouting, SustainsAdversarialTraffic) {
  const SimConfig cfg = cfg_for(RoutingKind::kVal);
  const SteadyResult adv =
      run_steady(cfg, TrafficPattern::adversarial(1), 0.15, RunParams::windows(2000, 3000));
  EXPECT_GT(adv.accepted_load, 0.14);
}

TEST(ValiantRouting, HalvesUniformThroughput) {
  const SimConfig cfg = cfg_for(RoutingKind::kVal);
  // Offered 0.45 exceeds Valiant's ~0.5 ceiling once overheads bite.
  const SteadyResult un =
      run_steady(cfg, TrafficPattern::uniform(), 0.45, RunParams::windows(3000, 4000));
  EXPECT_LT(un.accepted_load, 0.45);
}

TEST(PiggybackRouting, RoutesMinimallyWhenQuiet) {
  const SimConfig cfg = cfg_for(RoutingKind::kPb);
  const SteadyResult un =
      run_steady(cfg, TrafficPattern::uniform(), 0.05, RunParams::windows(2000, 3000));
  // At very low uniform load PB should look like MIN: short paths.
  EXPECT_LT(un.mean_hops, 3.2);
}

TEST(PiggybackRouting, DivertsUnderAdversarial) {
  const SimConfig cfg = cfg_for(RoutingKind::kPb);
  const SteadyResult adv =
      run_steady(cfg, TrafficPattern::adversarial(1), 0.15, RunParams::windows(2000, 3000));
  // Valiant-style paths dominate: mean hops well above minimal.
  EXPECT_GT(adv.mean_hops, 3.0);
  EXPECT_GT(adv.accepted_load, 0.12);
}

TEST(UgalRouting, SustainsAdversarialTraffic) {
  const SimConfig cfg = cfg_for(RoutingKind::kUgal);
  const SteadyResult adv =
      run_steady(cfg, TrafficPattern::adversarial(1), 0.12, RunParams::windows(2000, 3000));
  EXPECT_GT(adv.accepted_load, 0.1);
}

TEST(OfarRouting, LowLoadLatencyCompetitiveWithMin) {
  const SteadyResult min = run_steady(cfg_for(RoutingKind::kMin),
                                      TrafficPattern::uniform(), 0.05,
                                      RunParams::windows(2000, 3000));
  const SteadyResult ofar = run_steady(cfg_for(RoutingKind::kOfar),
                                       TrafficPattern::uniform(), 0.05,
                                       RunParams::windows(2000, 3000));
  EXPECT_LT(ofar.avg_latency, min.avg_latency * 1.25);
}

TEST(OfarRouting, EscapeRingRarelyUsedAtLowLoad) {
  const SteadyResult r = run_steady(cfg_for(RoutingKind::kOfar),
                                    TrafficPattern::uniform(), 0.1,
                                    RunParams::windows(2000, 4000));
  EXPECT_LT(static_cast<double>(r.ring_entries),
            0.01 * static_cast<double>(r.delivered_packets));
}

TEST(OfarRouting, GlobalMisroutesReplaceValiantUnderAdversarial) {
  const SteadyResult r = run_steady(cfg_for(RoutingKind::kOfar),
                                    TrafficPattern::adversarial(1), 0.15,
                                    RunParams::windows(2000, 3000));
  EXPECT_GT(r.accepted_load, 0.14);
  // The direct link's 1/(2h^2) = 0.125 ceiling forces the excess offered
  // load (here ~17% of 0.15) onto global misroutes.
  EXPECT_GT(r.global_misroutes, r.delivered_packets / 10);
}

TEST(OfarRouting, OfarLNeverMisroutesLocally) {
  const SteadyResult r = run_steady(cfg_for(RoutingKind::kOfarL),
                                    TrafficPattern::adversarial(2), 0.2,
                                    RunParams::windows(2000, 3000));
  EXPECT_EQ(r.local_misroutes, 0u);
  EXPECT_GT(r.global_misroutes, 0u);
}

TEST(OfarRouting, WorksWithEmbeddedRing) {
  SimConfig cfg = cfg_for(RoutingKind::kOfar);
  cfg.ring = RingKind::kEmbedded;
  const SteadyResult r =
      run_steady(cfg, TrafficPattern::adversarial(1), 0.15, RunParams::windows(2000, 3000));
  EXPECT_GT(r.accepted_load, 0.13);
  EXPECT_EQ(r.stalled_packets, 0u);
}

TEST(OfarRouting, StaticThresholdVariantWorks) {
  SimConfig cfg = cfg_for(RoutingKind::kOfar);
  cfg.thresholds.variable = false;  // Th_min = th_min, Th_nonmin = 40%
  cfg.thresholds.th_min = 1.0;
  const SteadyResult r =
      run_steady(cfg, TrafficPattern::uniform(), 0.2, RunParams::windows(2000, 3000));
  EXPECT_GT(r.accepted_load, 0.19);
  EXPECT_EQ(r.stalled_packets, 0u);
}

// ---- PB broadcast table ----

TEST(PiggybackTable, FlagsSaturatedGlobalChannels) {
  SimConfig cfg = cfg_for(RoutingKind::kPb);
  Network net(cfg);
  auto* pb = dynamic_cast<PiggybackPolicy*>(&net.policy());
  ASSERT_NE(pb, nullptr);
  // Jam one global channel by filling its credits artificially.
  const RouterId victim = net.topo().carrier_router(0, 1);
  const PortId gport = net.topo().carrier_port(0, 1);
  Router& r = net.router(victim);
  for (auto& c : r.outputs[gport].credits) c = 0;
  // Let the policy tick past the broadcast delay.
  for (u32 i = 0; i < cfg.pb_broadcast_delay + 2; ++i) net.step();
  const u32 j = static_cast<u32>(gport) - net.topo().first_global_port();
  EXPECT_TRUE(pb->saturated(victim, j));
  // Other channels stay clean.
  EXPECT_FALSE(pb->saturated(victim, (j + 1) % cfg.h));
}

// ---- experiment drivers ----

TEST(Experiment, LoadSweepIsMonotoneInOfferedLoad) {
  const SimConfig cfg = cfg_for(RoutingKind::kMin);
  const auto points = run_load_sweep(cfg, TrafficPattern::uniform(),
                                     {0.05, 0.1, 0.2}, RunParams::windows(1500, 2500));
  ASSERT_EQ(points.size(), 3u);
  EXPECT_LT(points[0].result.accepted_load, points[1].result.accepted_load);
  EXPECT_LT(points[1].result.accepted_load, points[2].result.accepted_load);
}

TEST(Experiment, TransientSeriesCoversSwitch) {
  TransientParams params;
  params.warmup = 3000;
  params.horizon = 2000;
  params.lead = 500;
  params.drain = 3000;
  params.bucket = 250;
  const auto result =
      run_transient(cfg_for(RoutingKind::kOfar), TrafficPattern::uniform(),
                    0.1, TrafficPattern::adversarial(1), 0.1, params);
  ASSERT_EQ(result.series.size(), 10u);
  EXPECT_LT(result.series.front().cycle_rel, 0);
  EXPECT_GT(result.series.back().cycle_rel, 0);
  u64 total = 0;
  for (const auto& b : result.series) total += b.packets;
  EXPECT_GT(total, 500u);
}

TEST(Experiment, BurstCompletesAndCountsEverything) {
  BurstParams params;
  params.packets_per_node = 10;
  params.max_cycles = 300000;
  const auto result = run_burst(cfg_for(RoutingKind::kOfar),
                                TrafficPattern::uniform(), params);
  EXPECT_TRUE(result.completed);
  Network probe(cfg_for(RoutingKind::kOfar));
  EXPECT_EQ(result.delivered_packets, 10u * probe.topo().nodes());
}

}  // namespace
}  // namespace ofar
