# Empty dependencies file for fig2_adversarial_offset.
# This may be replaced when dependencies are built.
