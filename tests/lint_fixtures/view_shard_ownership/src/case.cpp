// Fixture: the flat-state view types (sim/flat_state.hpp CreditView /
// HeadView pattern). A view memoizes per-cycle summaries in its own
// members while serving parallel-phase routing queries, which is only
// shard-safe because each shard owns one view instance — the
// OFAR_SHARD_LOCAL annotation is what the analyzer accepts as that
// ownership claim. A lookalike view without the annotation must have its
// memoization writes flagged, both inside its own methods and when a
// parallel phase calls them.

// Annotated view: bind() and the lazy snapshot refresh mutate members
// from a parallel phase — fine, the class is declared shard-owned.
struct OFAR_SHARD_LOCAL CreditViewLike {
  void bind(int router);
  double occupancy(int port);
  int epoch_ = 0;
  int router_ = 0;
  double memo_ = 0.0;
};

void CreditViewLike::bind(int router) {
  router_ = router;  // fine: shard-local view rebind
  epoch_ = epoch_ + 1;
}

double CreditViewLike::occupancy(int port) {
  memo_ = memo_ + port;  // fine: shard-local memoized summary
  return memo_;
}

// Unannotated lookalike: identical memoization pattern, no ownership
// claim — every member write is a potential cross-shard race.
struct BareView {
  void bind(int router);
  double occupancy(int port);
  int epoch_ = 0;
  double memo_ = 0.0;
};

void BareView::bind(int router) {
  epoch_ = router;  // expect: cross-shard-write
}

double BareView::occupancy(int port) {
  memo_ = memo_ + port;  // expect: cross-shard-write
  return memo_;
}

// A view holding scratch containers: mutating-container calls on an
// unannotated view are caught at the call site too; the annotated twin
// is parallel-legal.
struct OFAR_SHARD_LOCAL OwnedScratchView {
  void note(int p);
  int deps_[4] = {0, 0, 0, 0};
};

void OwnedScratchView::note(int p) {
  deps_[p] = 1;  // fine: shard-local view scratch
}

struct Kernel {
  OFAR_PARALLEL_PHASE void do_allocation();
  CreditViewLike view_;
  BareView bare_;
  OwnedScratchView scratch_;
  int heads_ = 0;
};

void Kernel::do_allocation() {
  view_.bind(1);        // fine: the view's writes are declared shard-owned
  view_.occupancy(2);
  bare_.bind(3);        // pulls BareView's writes into parallel context —
  bare_.occupancy(4);   // the findings anchor at the definitions above
  scratch_.note(3);
  heads_ = 4;           // expect: cross-shard-write
}
