// Fig. 8 reproduction: OFAR with a dedicated physical Hamiltonian ring
// versus the virtually embedded ring (one extra escape VC on the links the
// ring traverses). The paper's point: the curves coincide, because the
// escape subnetwork resolves (rare) deadlocks rather than carrying traffic
// — so the zero-wire embedded implementation suffices.
//
// Runs both UN and ADV+2 sweeps; --pattern restricts to one.
//
// Shim over the "fig8" preset (presets.cpp).
#include "presets.hpp"

int main(int argc, char** argv) {
  return ofar::bench::run_preset_main("fig8", argc, argv);
}
