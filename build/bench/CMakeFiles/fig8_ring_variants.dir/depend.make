# Empty dependencies file for fig8_ring_variants.
# This may be replaced when dependencies are built.
