// Equivalence suite: SeparableAllocator (packed-bitmask hot path) vs
// ReferenceAllocator (retained per-port-vector specification).
//
// The two implementations must be indistinguishable: for any request
// matrix and any starting arbiter state, they produce identical grant
// sets AND leave identical LRS arbiter state behind (last-grant cycles
// drive future picks, so grant-equal-but-state-different would diverge
// on the next cycle). The suite drives twin routers through
//
//   * randomized matrices — well over 10k across port/VC/density sweeps,
//     chained so arbiter state evolves and picks become history-dependent;
//   * exhaustive-small enumerations — every matrix over tiny geometries,
//     and every ordered pair of matrices (the second run starts from the
//     state the first one left), so no reachable two-step history is
//     missed at that size.
//
// Grant-shape invariants (at most one grant per input port and per output
// port; grants only where requests were) are asserted along the way.

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "sim/allocator.hpp"
#include "sim/router.hpp"

namespace ofar {
namespace {

// A router reduced to what the allocators touch: the LRS arbiter banks.
// (Geometry mirrors Network construction: one VC-level arbiter per input
// port, one input-level arbiter per output port.)
Router make_arb_router(u32 ports, u32 vcs) {
  Router r;
  r.id = 0;
  r.input_arb.reserve(ports);
  r.output_arb.reserve(ports);
  for (u32 p = 0; p < ports; ++p) {
    r.input_arb.emplace_back(vcs);
    r.output_arb.emplace_back(ports);
  }
  return r;
}

void expect_same_arbiter_state(const Router& a, const Router& b) {
  ASSERT_EQ(a.input_arb.size(), b.input_arb.size());
  ASSERT_EQ(a.output_arb.size(), b.output_arb.size());
  for (std::size_t p = 0; p < a.input_arb.size(); ++p) {
    for (u32 c = 0; c < a.input_arb[p].size(); ++c)
      ASSERT_EQ(a.input_arb[p].last_grant(c), b.input_arb[p].last_grant(c))
          << "input arbiter " << p << " candidate " << c;
    for (u32 c = 0; c < a.output_arb[p].size(); ++c)
      ASSERT_EQ(a.output_arb[p].last_grant(c), b.output_arb[p].last_grant(c))
          << "output arbiter " << p << " candidate " << c;
  }
}

void expect_grant_shape(const std::vector<AllocRequest>& reqs, u32 ports) {
  std::vector<u32> in_grants(ports, 0), out_grants(ports, 0);
  for (const AllocRequest& rq : reqs) {
    if (!rq.granted) continue;
    ++in_grants[rq.in_port];
    ++out_grants[rq.choice.out_port];
  }
  for (u32 p = 0; p < ports; ++p) {
    EXPECT_LE(in_grants[p], 1u) << "input port " << p << " granted twice";
    EXPECT_LE(out_grants[p], 1u) << "output port " << p << " granted twice";
  }
}

/// Runs one matrix through both implementations (on twin routers that have
/// experienced the identical grant history) and asserts equivalence.
void run_and_compare(SeparableAllocator& packed, ReferenceAllocator& ref,
                     Router& ra, Router& rb,
                     const std::vector<AllocRequest>& matrix, u32 iterations,
                     Cycle now) {
  std::vector<AllocRequest> a = matrix;
  std::vector<AllocRequest> b = matrix;
  packed.run(ra, a, iterations, now);
  ref.run(rb, b, iterations, now);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    ASSERT_EQ(a[i].granted, b[i].granted)
        << "request " << i << " (in " << a[i].in_port << " vc "
        << static_cast<u32>(a[i].in_vc) << " -> out " << a[i].choice.out_port
        << ") at cycle " << now;
  expect_grant_shape(a, static_cast<u32>(ra.input_arb.size()));
  expect_same_arbiter_state(ra, rb);
}

/// Random request matrix: each (in, vc) slot independently requests a
/// random output with probability `density`/256. At most one request per
/// (in, vc) — the per-head invariant both allocators assume.
std::vector<AllocRequest> random_matrix(Rng& rng, u32 ports, u32 vcs,
                                        u32 density) {
  std::vector<AllocRequest> reqs;
  for (u32 in = 0; in < ports; ++in) {
    for (u32 vc = 0; vc < vcs; ++vc) {
      if (rng.below(256) >= density) continue;
      AllocRequest rq;
      rq.in_port = static_cast<PortId>(in);
      rq.in_vc = static_cast<VcId>(vc);
      rq.packet = static_cast<PacketId>(reqs.size());
      rq.choice = RouteChoice::to(static_cast<PortId>(rng.below(ports)),
                                  static_cast<VcId>(rng.below(vcs)));
      reqs.push_back(rq);
    }
  }
  return reqs;
}

TEST(AllocEquivalence, RandomizedChainedMatrices) {
  // 3 geometries x 4 densities x 1000 chained cycles = 12000 matrices,
  // each compared for grants and post-run arbiter state.
  const struct {
    u32 ports, vcs;
  } geoms[] = {{4, 2}, {8, 4}, {16, 8}};
  const u32 densities[] = {32, 96, 160, 255};  // sparse .. near-full
  Rng rng(0xA110CEULL);
  for (const auto& g : geoms) {
    for (const u32 density : densities) {
      Router ra = make_arb_router(g.ports, g.vcs);
      Router rb = make_arb_router(g.ports, g.vcs);
      SeparableAllocator packed(g.ports);
      ReferenceAllocator ref(g.ports);
      for (Cycle now = 1; now <= 1000; ++now) {
        const std::vector<AllocRequest> matrix =
            random_matrix(rng, g.ports, g.vcs, density);
        const u32 iterations = 1 + rng.below(4);
        run_and_compare(packed, ref, ra, rb, matrix, iterations, now);
      }
    }
  }
}

TEST(AllocEquivalence, RandomizedConflictHeavy) {
  // Funnel traffic: every input wants one of only two outputs, maximising
  // stage-2 contention and LRS tie-breaking pressure.
  constexpr u32 kPorts = 12, kVcs = 4;
  Rng rng(0xC0117AFFULL);
  Router ra = make_arb_router(kPorts, kVcs);
  Router rb = make_arb_router(kPorts, kVcs);
  SeparableAllocator packed(kPorts);
  ReferenceAllocator ref(kPorts);
  for (Cycle now = 1; now <= 2000; ++now) {
    std::vector<AllocRequest> matrix;
    for (u32 in = 0; in < kPorts; ++in) {
      for (u32 vc = 0; vc < kVcs; ++vc) {
        if (rng.below(256) >= 200) continue;
        AllocRequest rq;
        rq.in_port = static_cast<PortId>(in);
        rq.in_vc = static_cast<VcId>(vc);
        rq.packet = static_cast<PacketId>(matrix.size());
        rq.choice = RouteChoice::to(static_cast<PortId>(rng.below(2)), 0);
        matrix.push_back(rq);
      }
    }
    run_and_compare(packed, ref, ra, rb, matrix, 3, now);
  }
}

/// Decodes matrix index `code` in base (ports + 1): digit d for slot
/// (in, vc) means "no request" (d == 0) or "request output d - 1".
std::vector<AllocRequest> decode_matrix(u32 code, u32 ports, u32 vcs) {
  std::vector<AllocRequest> reqs;
  for (u32 in = 0; in < ports; ++in) {
    for (u32 vc = 0; vc < vcs; ++vc) {
      const u32 digit = code % (ports + 1);
      code /= ports + 1;
      if (digit == 0) continue;
      AllocRequest rq;
      rq.in_port = static_cast<PortId>(in);
      rq.in_vc = static_cast<VcId>(vc);
      rq.packet = static_cast<PacketId>(reqs.size());
      rq.choice = RouteChoice::to(static_cast<PortId>(digit - 1), 0);
      reqs.push_back(rq);
    }
  }
  return reqs;
}

u32 matrix_count(u32 ports, u32 vcs) {
  u32 n = 1;
  for (u32 s = 0; s < ports * vcs; ++s) n *= ports + 1;
  return n;
}

/// Every ordered pair of matrices over a tiny geometry, each pair run as a
/// two-cycle chain from fresh arbiters: the first run perturbs LRS state,
/// the second must still match. Covers every reachable two-step history
/// at this size, including all tie/priority interactions.
void exhaustive_pairs(u32 ports, u32 vcs, u32 iterations) {
  const u32 count = matrix_count(ports, vcs);
  for (u32 first = 0; first < count; ++first) {
    for (u32 second = 0; second < count; ++second) {
      Router ra = make_arb_router(ports, vcs);
      Router rb = make_arb_router(ports, vcs);
      SeparableAllocator packed(ports);
      ReferenceAllocator ref(ports);
      run_and_compare(packed, ref, ra, rb, decode_matrix(first, ports, vcs),
                      iterations, 1);
      if (testing::Test::HasFatalFailure()) return;
      run_and_compare(packed, ref, ra, rb, decode_matrix(second, ports, vcs),
                      iterations, 2);
      if (testing::Test::HasFatalFailure()) return;
    }
  }
}

TEST(AllocEquivalence, ExhaustiveTwoPortsTwoVcs) {
  // 2 ports x 2 VCs: 3^4 = 81 matrices, 81^2 = 6561 ordered pairs.
  exhaustive_pairs(2, 2, 3);
}

TEST(AllocEquivalence, ExhaustiveThreePortsOneVc) {
  // 3 ports x 1 VC: 4^3 = 64 matrices, 64^2 = 4096 ordered pairs.
  exhaustive_pairs(3, 1, 3);
}

TEST(AllocEquivalence, ExhaustiveSingleIteration) {
  // One arbitration iteration only — the degenerate schedule where stage-2
  // losers never get a second chance; trips any divergence hidden by the
  // usual 3-iteration convergence.
  exhaustive_pairs(2, 2, 1);
}

TEST(AllocEquivalence, EmptyMatrixIsANoOp) {
  Router ra = make_arb_router(4, 2);
  Router rb = make_arb_router(4, 2);
  SeparableAllocator packed(4);
  ReferenceAllocator ref(4);
  std::vector<AllocRequest> empty;
  run_and_compare(packed, ref, ra, rb, empty, 3, 1);
}

}  // namespace
}  // namespace ofar
