// High-level experiment drivers: the three measurement protocols of the
// paper's evaluation (§VI) as reusable library calls.
//
//  - run_steady / run_load_sweep: warm-up then windowed measurement of
//    latency and accepted throughput at fixed offered load (Figs. 3-5, 8, 9);
//  - run_transient: pattern switch at a cycle boundary, latency accounted
//    to the cycle each packet was sent (Fig. 6);
//  - run_burst: fixed per-node packet budget injected as fast as possible,
//    measuring the cycle the network drains (Fig. 7).
//
// For whole experiment grids (figure x mechanism x load x seed) with
// caching and resume, drive these through core/orchestrator.hpp instead of
// calling them point-by-point.
#pragma once

#include <string>
#include <vector>

#include "common/config.hpp"
#include "traffic/pattern.hpp"

namespace ofar {

class MetricsSink;
class Network;

/// Knobs shared by every experiment protocol: invariant auditing and
/// opt-in telemetry. Both are read-only instrumentation — results are
/// bit-identical per seed whether they are enabled or not. A new shared
/// knob is added here once and every protocol (steady, transient, burst)
/// picks it up.
struct ExperimentCommon {
  /// Cycles between invariant-auditor runs (Network::enable_audit);
  /// 0 disables. Auditing is read-only: the run just aborts with a report
  /// if an invariant breaks.
  Cycle audit_interval = 0;

  // ---- optional telemetry (stats/metrics.hpp); active when sink != null.
  // The sink is shared, not owned: a sweep points every run at one file and
  // each record carries `metrics_label` (plus a per-run suffix) to tell the
  // runs apart.
  MetricsSink* metrics_sink = nullptr;
  Cycle metrics_interval = 1'000;
  std::string metrics_label;
  bool metrics_full = false;

  // ---- optional packet tracing (trace/tracer.hpp, DESIGN.md §11); active
  // when trace_out or trace_links is non-empty. Like telemetry it is
  // read-only, deterministic instrumentation: per-seed results are
  // bit-identical with tracing on or off, so none of these knobs belong in
  // a cached point key.
  std::string trace_out;    ///< Chrome trace-event JSON (chrome://tracing)
  std::string trace_links;  ///< per-link util/stall series, .csv or JSONL
  u32 trace_sample = 64;    ///< trace 1-in-N packets by hash(seq); <=1: all
  Cycle trace_link_bucket = 256;  ///< link-series bucket width, cycles
  u32 trace_flight_depth = 64;    ///< flight-recorder events/router; 0: off

  /// Rewrite trace paths per run ("t.json" -> "t.<label>-s<seed>.json") so
  /// the parallel points of a sweep sharing one params object do not
  /// overwrite each other's files. Leave false for single runs where the
  /// exact output name matters.
  bool trace_per_point = false;

  /// Worker threads for the sharded cycle kernel (Network::set_sim_threads).
  /// Execution-only: any value produces the same per-seed results for a
  /// given SimConfig::sim_shards, so it is NOT part of the cached point
  /// key. 0 means 1 (sequential). Ignored when sim_shards == 1.
  unsigned sim_threads = 1;

  // ---- optional checkpoint/restart (core/checkpoint.hpp). Steady runs
  // only (the big-topology protocol); a checkpointed run restored mid-way
  // continues bit-identically, so results and cache keys are unchanged.
  /// Checkpoint file for this run; "" disables. When the file exists and
  /// matches the config, the run resumes from it instead of starting at
  /// cycle 0; it is refreshed every checkpoint_interval cycles and deleted
  /// once the run completes.
  std::string checkpoint_path;
  /// Cycles between checkpoint refreshes (0: only the warmup-boundary
  /// snapshot is written).
  Cycle checkpoint_interval = 100'000;

  /// Wires auditing, tracing and telemetry into a freshly built network.
  /// The telemetry record label and trace label are
  /// "<metrics_label>|<label_suffix>" (either part optional). Called by
  /// every run_* driver before the first cycle.
  void arm(Network& net, const std::string& label_suffix = "") const;
};

struct RunParams : ExperimentCommon {
  Cycle warmup = 20'000;
  Cycle measure = 30'000;

  /// RunParams with just the measurement windows set. Spelled as a factory
  /// because partial brace-init of RunParams trips
  /// -Wmissing-field-initializers on the optional telemetry members.
  static RunParams windows(Cycle warmup, Cycle measure) {
    RunParams p;
    p.warmup = warmup;
    p.measure = measure;
    return p;
  }
};

struct SteadyResult {
  double offered_load = 0.0;   ///< phits/(node*cycle) generated in window
  double accepted_load = 0.0;  ///< phits/(node*cycle) delivered in window
  double avg_latency = 0.0;    ///< cycles, delivered packets in window
  double stddev_latency = 0.0;
  u64 delivered_packets = 0;
  u64 local_misroutes = 0;
  u64 global_misroutes = 0;
  u64 ring_entries = 0;
  u64 stalled_packets = 0;  ///< deadlock-watchdog hits (0 in healthy runs)
  u64 worst_stall = 0;      ///< longest observed head-of-line wait, cycles
  double mean_hops = 0.0;
};

/// One steady-state point: fresh network, Bernoulli traffic at `load`.
SteadyResult run_steady(const SimConfig& cfg, const TrafficPattern& pattern,
                        double load, const RunParams& params = {});

struct SweepPoint {
  double load = 0.0;
  SteadyResult result;
};

/// Load sweep; points run in parallel worker threads when available.
std::vector<SweepPoint> run_load_sweep(const SimConfig& cfg,
                                       const TrafficPattern& pattern,
                                       const std::vector<double>& loads,
                                       const RunParams& params = {},
                                       unsigned threads = 0);

struct TransientParams : ExperimentCommon {
  Cycle warmup = 30'000;      ///< cycles of pattern A before the switch
  Cycle horizon = 20'000;     ///< observed birth-cycle span after the switch
  Cycle lead = 2'000;         ///< observed span before the switch
  Cycle drain = 30'000;       ///< extra cycles so late packets deliver
  u32 bucket = 100;           ///< series bucket width, cycles
};

struct TransientBucket {
  i64 cycle_rel = 0;  ///< bucket centre relative to the switch cycle
  double mean_latency = 0.0;
  u64 packets = 0;
};

struct TransientResult {
  std::vector<TransientBucket> series;
};

/// Pattern A at load_a until the switch, then pattern B at load_b.
TransientResult run_transient(const SimConfig& cfg,
                              const TrafficPattern& pattern_a, double load_a,
                              const TrafficPattern& pattern_b, double load_b,
                              const TransientParams& params = {});

struct BurstParams : ExperimentCommon {
  u32 packets_per_node = 400;       ///< paper §VI-C uses 2000
  Cycle max_cycles = 5'000'000;     ///< abandon the run if not drained by then
};

struct BurstResult {
  Cycle completion = 0;  ///< cycle at which every packet was delivered
  u64 delivered_packets = 0;
  double avg_latency = 0.0;
  u64 ring_entries = 0;
  bool completed = false;  ///< false when max_cycles elapsed first
};

/// Every node injects `params.packets_per_node` packets as fast as possible.
BurstResult run_burst(const SimConfig& cfg, const TrafficPattern& pattern,
                      const BurstParams& params = {});

}  // namespace ofar
