#include "core/ofar_routing.hpp"

#include <bit>

#include "common/ckpt_stream.hpp"
#include "sim/flat_state.hpp"
#include "sim/network.hpp"

namespace ofar {

OfarPolicy::OfarPolicy(const SimConfig& cfg, bool allow_local)
    : thresholds_(cfg.thresholds),
      ring_(cfg),
      allow_local_(allow_local),
      seed_(cfg.seed ^ 0x4F464152ULL) {
  lanes_.emplace_back(seed_);  // lane 0: the legacy sequential stream
}

void OfarPolicy::bind_lanes(u32 lanes) {
  lanes_.resize(1, Lane(seed_));  // keep lane 0's stream position
  lanes_.reserve(lanes > 0 ? lanes : 1);
  for (u32 l = 1; l < lanes; ++l)
    lanes_.emplace_back(seed_ ^ (0x9E3779B97F4A7C15ULL * l));
}

void OfarPolicy::save_state(CkptWriter& w) const {
  w.put_u32(static_cast<u32>(lanes_.size()));
  for (const Lane& lane : lanes_) w.put_rng(lane.rng);
}

void OfarPolicy::load_state(CkptReader& r) {
  const u32 n = r.get_u32();
  if (n != lanes_.size()) {  // lane layout is fixed by bind_lanes
    r.fail();
    return;
  }
  for (Lane& lane : lanes_) r.get_rng(lane.rng);
}

// Both collectors walk only the set bits of the view's availability mask:
// a port fails base_available far more often than any other filter at
// saturation, so the masked scan visits a handful of ports instead of the
// whole class range. Bit order is ascending, matching the plain loops the
// masked form replaced — candidate vectors come out identical.

void OfarPolicy::collect_local(const Network& net, CreditView& view,
                               RouterId at, PortId min_port, double th,
                               double gap_ceiling,
                               std::vector<PortId>& out) const {
  const Dragonfly& topo = net.topo();
  const PortId first = topo.first_local_port();
  u64 m = (view.avail_mask() >> first) & ((u64{1} << (topo.a() - 1)) - 1);
  while (m != 0) {
    const PortId port =
        static_cast<PortId>(first + std::countr_zero(m));
    m &= m - 1;
    if (port == min_port) continue;
    const double occ = view.base_occupancy(port);
    if (occ >= th || occ > gap_ceiling) continue;
    out.push_back(port);
  }
  (void)at;
}

void OfarPolicy::collect_global(const Network& net, CreditView& view,
                                RouterId at, PortId min_port,
                                GroupId dst_group, double th,
                                double gap_ceiling,
                                std::vector<PortId>& out) const {
  const Dragonfly& topo = net.topo();
  const PortId first = topo.first_global_port();
  u64 m = (view.avail_mask() >> first) & ((u64{1} << topo.h()) - 1);
  while (m != 0) {
    const PortId port =
        static_cast<PortId>(first + std::countr_zero(m));
    m &= m - 1;
    if (port == min_port) continue;
    // An available global port is necessarily wired (the view reports
    // unwired ports as unavailable).
    OFAR_DCHECK(topo.global_port_wired(at, port));
    // Never "misroute" straight into the destination group: that link is
    // the minimal one and is carried by a different router anyway.
    if (topo.slot_target(topo.group_of(at),
                         topo.port_slot(topo.local_of(at), port)) == dst_group)
      continue;
    const double occ = view.base_occupancy(port);
    if (occ >= th || occ > gap_ceiling) continue;
    out.push_back(port);
  }
}

RouteChoice OfarPolicy::route(RouteContext& ctx) {
  Network& net = ctx.net;
  Packet& pkt = ctx.pkt;
  CreditView& view = ctx.view;
  const RouterId at = ctx.at;
  const PortId in_port = ctx.in_port;
  const u32 lane = ctx.lane;
  RouteProvenance* const prov = ctx.prov;
  const Dragonfly& topo = net.topo();
  const GroupId here = topo.group_of(at);

  // Crossing into a new group re-arms the per-group local-misroute flag.
  if (pkt.flag_group != here) {
    pkt.flag_group = here;
    pkt.local_misrouted = false;
  }

  // Packets riding the escape ring follow the ring discipline.
  if (net.is_ring_input(at, in_port, ctx.in_vc)) {
    OFAR_DCHECK(pkt.in_ring);
    return ring_.ride(ctx);
  }

  const bool at_dst = at == pkt.dst_router;
  const PortId min_port = at_dst
                              ? topo.node_port(topo.node_slot(pkt.dst))
                              : min_port_to_router(net, at, pkt.dst_router);
  if (prov) {
    prov->min_port = min_port;
    prov->q_min = static_cast<float>(view.base_occupancy(min_port));
    prov->threshold = static_cast<float>(thresholds_.th_min);
  }

  // 1. Minimal output, whenever it can take the whole packet right now.
  if (view.base_available(min_port)) {
    VcId vc;
    view.best_base_vc(min_port, vc);
    if (prov) {
      prov->condition = RouteCondition::kMinimal;
      prov->chosen_occ = prov->q_min;
    }
    return RouteChoice::to(min_port, vc);
  }

  // At the destination router the only sensible move is to wait for the
  // ejection port; misrouting or escaping would only lengthen the path.
  if (at_dst) {
    if (prov) prov->condition = RouteCondition::kWaitBusy;
    return RouteChoice::none();
  }

  // 2. Non-minimal candidates, gated by the thresholds (paper §IV-B).
  const double q_min = view.base_occupancy(min_port);
  if (q_min >= thresholds_.th_min) {
    const double th = nonmin_threshold(q_min);
    // Candidates must also clear the absolute gap guard (see config.hpp).
    const double gap_ceiling = q_min - thresholds_.min_gap;
    const GroupId src_group = topo.group_of_node(pkt.src);
    const GroupId dst_group = topo.group_of(pkt.dst_router);
    const bool min_is_local =
        topo.port_class(min_port) == PortClass::kLocal;

    const bool local_flag_free = allow_local_ && !pkt.local_misrouted;
    // Local misroute: in the source group of inter-group traffic it is
    // always an option; elsewhere only when the minimal output itself is a
    // congested local port (paper §IV-A).
    const bool local_allowed =
        local_flag_free &&
        ((here == src_group && here != dst_group) || min_is_local);
    const bool global_allowed = here == src_group && here != dst_group &&
                                !pkt.global_misrouted;

    const PortClass in_class = topo.port_class(in_port);
    OFAR_DCHECK(lane < lanes_.size());
    Lane& ln = lanes_[lane];
    std::vector<PortId>& scratch = ln.scratch;
    scratch.clear();
    if (here == src_group && here != dst_group && in_class == PortClass::kNode) {
      // Injection queues misroute globally (saves Valiant's first local hop).
      if (global_allowed) collect_global(net, view, at, min_port, dst_group,
                                         th, gap_ceiling, scratch);
      if (scratch.empty() && local_allowed)
        collect_local(net, view, at, min_port, th, gap_ceiling, scratch);
    } else {
      // Transit queues: first locally, then globally (§IV-A starvation rule).
      if (local_allowed)
        collect_local(net, view, at, min_port, th, gap_ceiling, scratch);
      if (scratch.empty() && global_allowed)
        collect_global(net, view, at, min_port, dst_group, th, gap_ceiling,
                       scratch);
    }
    if (!scratch.empty()) {
      const PortId pick = scratch[ln.rng.below(
          static_cast<u32>(scratch.size()))];
      VcId vc;
      const bool ok = view.best_base_vc(pick, vc);
      OFAR_DCHECK(ok);
      (void)ok;
      RouteChoice c = RouteChoice::to(pick, vc);
      c.misroute = topo.port_class(pick) == PortClass::kLocal
                       ? MisrouteKind::kLocal
                       : MisrouteKind::kGlobal;
      if (prov) {
        prov->threshold = static_cast<float>(th);
        prov->chosen_occ = static_cast<float>(view.base_occupancy(pick));
        prov->set_candidates(scratch);
        prov->condition = c.misroute == MisrouteKind::kLocal
                              ? RouteCondition::kMisrouteLocal
                              : RouteCondition::kMisrouteGlobal;
      }
      return c;
    }
    if (prov) prov->threshold = static_cast<float>(th);
  }

  // 3. Last resort: the deadlock-free escape ring (bubble restricted).
  // Entry only under true backpressure — the minimal output has no room for
  // the whole packet on any VC. A port that is merely busy this cycle is
  // actively draining and will free within a packet time; waiting cannot
  // deadlock (deadlock requires a credit-starved dependency cycle).
  if (!view.base_starved(min_port)) {
    if (prov) prov->condition = RouteCondition::kWaitBusy;
    return RouteChoice::none();
  }
  return ring_.enter(ctx);
}

}  // namespace ofar
