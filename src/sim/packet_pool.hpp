// Slab allocator for live packets.
//
// Packets are referenced by dense PacketId everywhere (FIFO entries, channel
// events, transfers), so allocation must be O(1) and ids stable for the
// packet lifetime. A free list over a growing vector provides both.
#pragma once

#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"
#include "sim/packet.hpp"

namespace ofar {

class CheckpointIO;

class PacketPool {
 public:
  PacketPool() = default;

  /// Allocates a default-initialised packet; returns its id.
  PacketId create();

  /// Releases a packet id for reuse. The slot contents become invalid.
  void destroy(PacketId id);

  Packet& get(PacketId id) {
    OFAR_DCHECK(is_live(id));
    return slots_[id];
  }
  const Packet& get(PacketId id) const {
    OFAR_DCHECK(is_live(id));
    return slots_[id];
  }

  std::size_t live_count() const noexcept { return live_; }
  bool is_live(PacketId id) const noexcept {
    return id < slots_.size() && live_bits_[id];
  }

  /// Invokes fn(id, packet) for every live packet (watchdog scans).
  template <typename Fn>
  void for_each_live(Fn&& fn) const {
    for (PacketId id = 0; id < slots_.size(); ++id)
      if (live_bits_[id]) fn(id, slots_[id]);
  }

 private:
  // Serializes slots_/live_bits_/free_list_ verbatim: the LIFO free-list
  // order decides which id the next create() hands out, so a restart must
  // reproduce it exactly for packet ids (and everything keyed by them) to
  // stay bit-identical.
  friend class CheckpointIO;

  std::vector<Packet> slots_;
  std::vector<bool> live_bits_;
  std::vector<PacketId> free_list_;
  std::size_t live_ = 0;
};

inline PacketId PacketPool::create() {
  PacketId id;
  if (!free_list_.empty()) {
    id = free_list_.back();
    free_list_.pop_back();
    slots_[id] = Packet{};
    live_bits_[id] = true;
  } else {
    id = static_cast<PacketId>(slots_.size());
    slots_.emplace_back();
    live_bits_.push_back(true);
  }
  ++live_;
  return id;
}

inline void PacketPool::destroy(PacketId id) {
  OFAR_DCHECK(is_live(id));
  live_bits_[id] = false;
  free_list_.push_back(id);
  --live_;
}

}  // namespace ofar
