// Fig. 7 reproduction: burst consumption time, normalised to PB. Every node
// injects a fixed budget of packets as fast as injection queues allow
// (synchronised post-barrier burst, paper §VI-C); we measure the cycle at
// which the network fully drains. Workloads: UN, ADV+2, ADV+h and three
// UN/ADV+1/ADV+h mixes (80/10/10, 60/20/20, 20/40/40).
//
// Expected shape: OFAR always finishes first (paper: 43.1%-81.5% of PB's
// time, average 0.695x => 43.8% speedup), and the full OFAR model always
// beats OFAR-L.
//
// --packets scales the per-node budget (paper: 2000; default 400 keeps the
// default h=4 run in minutes on one core — the normalised ratios are
// insensitive to the budget once bursts dwarf the drain tail).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ofar;
  using namespace ofar::bench;
  CommandLine cli(argc, argv);
  const BenchOptions opts = BenchOptions::parse(cli, 0, 0);
  const u32 packets = static_cast<u32>(cli.get_uint("packets", 400));
  const Cycle max_cycles = cli.get_uint("max-cycles", 20'000'000);
  if (!reject_unknown(cli)) return 1;

  const u32 h = opts.h;
  struct Workload {
    const char* name;
    TrafficPattern pattern;
  };
  const std::vector<Workload> workloads = {
      {"UN", TrafficPattern::uniform()},
      {"ADV+2", TrafficPattern::adversarial(2)},
      {"ADV+h", TrafficPattern::adversarial(h)},
      {"MIX1", TrafficPattern::mix({{PatternKind::kUniform, 0, 0.8},
                                    {PatternKind::kAdversarial, 1, 0.1},
                                    {PatternKind::kAdversarial, h, 0.1}})},
      {"MIX2", TrafficPattern::mix({{PatternKind::kUniform, 0, 0.6},
                                    {PatternKind::kAdversarial, 1, 0.2},
                                    {PatternKind::kAdversarial, h, 0.2}})},
      {"MIX3", TrafficPattern::mix({{PatternKind::kUniform, 0, 0.2},
                                    {PatternKind::kAdversarial, 1, 0.4},
                                    {PatternKind::kAdversarial, h, 0.4}})},
  };
  const std::vector<std::pair<const char*, RoutingKind>> mechanisms = {
      {"PB", RoutingKind::kPb},
      {"OFAR", RoutingKind::kOfar},
      {"OFAR-L", RoutingKind::kOfarL},
  };

  std::printf("Fig. 7 (bursts, %u packets/node) on %s\n", packets,
              opts.config(RoutingKind::kOfar).summary().c_str());

  Table table({"workload", "PB_cycles", "OFAR_cycles", "OFAR-L_cycles",
               "OFAR/PB", "OFAR-L/PB"});
  double ratio_sum = 0.0;

  for (const auto& wl : workloads) {
    std::vector<BurstResult> results(mechanisms.size());
    std::vector<std::function<void()>> jobs;
    for (std::size_t m = 0; m < mechanisms.size(); ++m) {
      jobs.emplace_back([&, m] {
        results[m] = run_burst(opts.config(mechanisms[m].second), wl.pattern,
                               packets, max_cycles, opts.audit_interval);
      });
    }
    run_parallel(jobs, opts.threads);
    for (std::size_t m = 0; m < mechanisms.size(); ++m)
      if (!results[m].completed)
        std::fprintf(stderr, "warning: %s on %s hit max-cycles\n",
                     mechanisms[m].first, wl.name);

    const double pb = static_cast<double>(results[0].completion);
    const double ofar = static_cast<double>(results[1].completion);
    const double ofarl = static_cast<double>(results[2].completion);
    ratio_sum += ofar / pb;
    table.add_row({std::string(wl.name), u64{results[0].completion},
                   u64{results[1].completion}, u64{results[2].completion},
                   ofar / pb, ofarl / pb});
    std::printf("%-6s done (OFAR/PB = %.3f)\n", wl.name, ofar / pb);
  }

  table.print("Fig. 7: burst consumption time (normalised to PB, lower is "
              "better)");
  std::printf("\nmean OFAR/PB ratio over the %zu workloads: %.3f "
              "(paper: 0.695, i.e. a 43.8%% speedup)\n",
              workloads.size(), ratio_sum / workloads.size());
  dump_csv(table, opts, "fig7_bursts");
  return 0;
}
