#include "routing/minimal.hpp"

#include "sim/network.hpp"

namespace ofar {

RouteChoice MinimalPolicy::route(Network& net, RouterId at, PortId /*in_port*/,
                                 VcId /*in_vc*/, Packet& pkt, u32 /*lane*/) {
  const Dragonfly& topo = net.topo();
  const PortId out = at == pkt.dst_router
                         ? topo.node_port(topo.node_slot(pkt.dst))
                         : min_port_to_router(net, at, pkt.dst_router);
  const Router& r = net.router(at);
  const OutputPort& port = r.outputs[out];
  if (!port.wired() || port.busy()) return RouteChoice::none();
  const VcId vc = ordered_vc(net, at, out, pkt);
  if (port.credits[vc] < net.config().packet_size) return RouteChoice::none();
  return RouteChoice::to(out, vc);
}

}  // namespace ofar
