file(REMOVE_RECURSE
  "CMakeFiles/test_hamiltonian.dir/test_hamiltonian.cpp.o"
  "CMakeFiles/test_hamiltonian.dir/test_hamiltonian.cpp.o.d"
  "test_hamiltonian"
  "test_hamiltonian.pdb"
  "test_hamiltonian[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hamiltonian.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
