// Phase-discipline annotation vocabulary (DESIGN.md §12).
//
// The sharded cycle kernel (DESIGN.md §10) splits every cycle into parallel
// phases, where a shard may touch only shard-owned state, and serial
// sections, where cross-shard effects are committed in shard-ascending
// order. Those rules are what make per-seed results bit-identical at any
// sim_threads — and until now they lived only in comments and a regex lint.
//
// The macros below encode the contract in the source itself as
// [[clang::annotate]] markers. They expand to nothing on GCC (and any
// compiler without the attribute), so codegen, layout and golden digests
// are unaffected everywhere. tools/ofar_lint consumes them semantically:
// it walks the call graph from every OFAR_PARALLEL_PHASE root and rejects
// reachable writes to OFAR_SERIAL_ONLY state, calls into OFAR_SERIAL_ONLY
// functions, RNG draws that bypass an OFAR_LANE_RNG lane, unordered
// iteration and wall-clock reads (see tools/ofar_lint/rules.py).
//
// Vocabulary:
//
//  OFAR_PARALLEL_PHASE  Function may execute concurrently on shard workers
//                       (a parallel-phase root or a function audited as
//                       safe to reach from one). Bodies may contain
//                       `if constexpr (kStaged)` branches: the analyzer
//                       knows the non-staged branch only runs in the K = 1
//                       sequential kernel and exempts it.
//  OFAR_SERIAL_ONLY     Function or data member that only the serial
//                       sections of a cycle may call/write (commit paths,
//                       injection, stats/trace emission, the global RNG,
//                       the event wheels). On a class it covers every
//                       member function.
//  OFAR_SHARD_LOCAL     Data member partitioned by shard ownership:
//                       parallel-phase code may touch it, but only the
//                       slice its shard owns (routers of the shard, the
//                       shard's ShardState, per-(router,port,vc) telemetry
//                       slots).
//  OFAR_LANE_RNG        RNG state (or the accessor selecting it) bound to
//                       a route() lane, i.e. the sanctioned source of
//                       randomness inside a parallel phase. Any other Rng
//                       use reachable from a parallel phase is an
//                       off-lane draw and is rejected.
//
// Placement: annotations go on the *declaration* (in-class for methods,
// the member line for fields, after the class-key for classes):
//
//   OFAR_PARALLEL_PHASE void deliver_events_shard(ShardState& sh, u32 s);
//   OFAR_SERIAL_ONLY Stats stats_;
//   class OFAR_SERIAL_ONLY MetricsRegistry { ... };
#pragma once

#if defined(__clang__)
#define OFAR_ANNOTATE(x) [[clang::annotate(x)]]
#else
#define OFAR_ANNOTATE(x)
#endif

#define OFAR_PARALLEL_PHASE OFAR_ANNOTATE("ofar::parallel_phase")
#define OFAR_SERIAL_ONLY OFAR_ANNOTATE("ofar::serial_only")
#define OFAR_SHARD_LOCAL OFAR_ANNOTATE("ofar::shard_local")
#define OFAR_LANE_RNG OFAR_ANNOTATE("ofar::lane_rng")
