// Bounded per-router flight recorder (DESIGN.md §11).
//
// Retains the last `depth` trace events of every router in a fixed ring
// buffer, so a crash or invariant violation can be reconstructed from the
// moments leading up to it without paying for an unbounded trace. The
// recorder is fed from the same deterministic event stream as the
// exporters (sampled packets only) and is dumped as JSON by the
// PacketTracer on InvariantAuditor failure or deadlock forensics.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "common/phase.hpp"
#include "common/thread_annotations.hpp"
#include "sim/network.hpp"
#include "stats/sink.hpp"

namespace ofar::trace {

// Serial-only as a whole: record() mutates the shared per-router rings, so
// it may only run from the serial trace flush (PacketTracer::on_event).
class OFAR_SERIAL_ONLY FlightRecorder {
 public:
  /// `routers` rings of `depth` events each (depth 0 disables recording).
  FlightRecorder(u32 routers, u32 depth);

  void record(const TraceEvent& ev) OFAR_REQUIRES_SERIAL;

  u32 depth() const noexcept { return depth_; }
  u64 total_recorded() const noexcept { return total_; }

  /// Events currently retained for router `r`, oldest first.
  std::vector<TraceEvent> snapshot(RouterId r) const;

  /// Writes the recorder as one JSON object:
  ///   {"reason":..., "cycle":..., "depth":..., "total_events":...,
  ///    "context": <context_json or null>, "routers": [
  ///      {"router": id, "events":[...]}, ...]}
  /// Routers with no retained events are omitted. `context_json` must be a
  /// pre-rendered JSON value (e.g. an AuditReport::to_json string) or "".
  /// Returns false when the file cannot be created.
  bool dump_json(const std::string& path, const std::string& reason,
                 Cycle now, const std::string& context_json) const;

 private:
  struct Ring {
    std::vector<TraceEvent> events;  ///< ring storage, size <= depth
    u32 next = 0;                    ///< overwrite position once full
    u64 seen = 0;                    ///< lifetime events for this router
  };

  std::vector<Ring> rings_;
  u32 depth_;
  u64 total_ = 0;
};

/// Renders one TraceEvent as a JSON object into `w` (shared by the flight
/// recorder and the trace summarizer's --check contract).
void append_event_json(ofar::JsonWriter& w, const TraceEvent& ev);

}  // namespace ofar::trace
