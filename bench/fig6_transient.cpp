// Fig. 6 reproduction: latency evolution under transient traffic. The
// network is warmed with pattern A; at cycle 0 (relative) the pattern
// switches to B, and each delivered packet's latency is accounted to the
// cycle it was *sent* (paper §VI-B). Three transitions, as in the paper:
//
//   (1) UN -> ADV+2      @ 0.14 phits/(node*cycle)
//   (2) ADV+2 -> UN      @ 0.14
//   (3) ADV+2 -> ADV+h   @ 0.12 (lower: ADV+h at 0.14 saturates PB)
//
// Expected shape: all mechanisms converge instantly on (2); OFAR adapts
// almost instantaneously on (1) and (3) while PB shows an adaptation
// period (its congestion information is remote and delayed).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ofar;
  using namespace ofar::bench;
  CommandLine cli(argc, argv);
  const BenchOptions opts = BenchOptions::parse(cli, 0, 0);
  TransientParams params;
  params.warmup = cli.get_uint("switch-at", 20'000);
  params.horizon = cli.get_uint("horizon", 12'000);
  params.lead = cli.get_uint("lead", 2'000);
  params.drain = cli.get_uint("drain", 20'000);
  params.bucket = static_cast<u32>(cli.get_uint("bucket", 500));
  const double load_main = cli.get_double("load", 0.14);
  const double load_advh = cli.get_double("load-advh", 0.12);
  if (!reject_unknown(cli)) return 1;

  struct Transition {
    const char* name;
    TrafficPattern a, b;
    double load;
  };
  const std::vector<Transition> transitions = {
      {"UN->ADV+2", TrafficPattern::uniform(), TrafficPattern::adversarial(2),
       load_main},
      {"ADV+2->UN", TrafficPattern::adversarial(2), TrafficPattern::uniform(),
       load_main},
      {"ADV+2->ADV+h", TrafficPattern::adversarial(2),
       TrafficPattern::adversarial(opts.h), load_advh},
  };
  const std::vector<std::pair<const char*, RoutingKind>> mechanisms = {
      {"PB", RoutingKind::kPb},
      {"OFAR", RoutingKind::kOfar},
      {"OFAR-L", RoutingKind::kOfarL},
  };

  std::printf("Fig. 6 (transient) on %s\n",
              opts.config(RoutingKind::kOfar).summary().c_str());

  for (const auto& tr : transitions) {
    std::vector<std::string> columns = {"cycle_rel"};
    for (const auto& [label, kind] : mechanisms) columns.push_back(label);
    Table table(columns);

    std::vector<TransientResult> results(mechanisms.size());
    std::vector<std::function<void()>> jobs;
    for (std::size_t m = 0; m < mechanisms.size(); ++m) {
      jobs.emplace_back([&, m] {
        TransientParams p = params;
        p.audit_interval = opts.audit_interval;
        p.metrics_sink = opts.metrics.get();
        p.metrics_interval = opts.metrics_interval;
        p.metrics_full = opts.metrics_full;
        p.metrics_label = std::string(tr.name) + "|" + mechanisms[m].first;
        results[m] = run_transient(opts.config(mechanisms[m].second), tr.a,
                                   tr.load, tr.b, tr.load, p);
      });
    }
    run_parallel(jobs, opts.threads);

    for (std::size_t i = 0; i < results[0].series.size(); ++i) {
      std::vector<Table::Cell> row = {i64{results[0].series[i].cycle_rel}};
      for (std::size_t m = 0; m < mechanisms.size(); ++m)
        row.emplace_back(results[m].series[i].mean_latency);
      table.add_row(std::move(row));
    }
    table.print(std::string("Fig. 6: mean latency by send-cycle, ") +
                tr.name + " @ load " + Table::format(tr.load));
    std::string tag = tr.name;
    for (auto& c : tag)
      if (c == '>' || c == '+' || c == '-') c = '_';
    dump_csv(table, opts, "fig6_" + tag);
  }
  return 0;
}
