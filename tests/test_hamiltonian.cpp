// Tests for the Hamiltonian escape-ring construction: true Hamiltonian
// cycle over every router, valid base-topology edges, distance algebra,
// constructibility limits, and multi-ring (stride) variants.
#include <gtest/gtest.h>

#include <set>

#include "topology/dragonfly.hpp"
#include "topology/hamiltonian.hpp"

namespace ofar {
namespace {

class RingParamTest : public ::testing::TestWithParam<u32> {};

TEST_P(RingParamTest, IsValidHamiltonianCycle) {
  Dragonfly d(GetParam());
  ASSERT_TRUE(HamiltonianRing::constructible(d));
  HamiltonianRing ring(d);
  EXPECT_TRUE(ring.validate(d));
  EXPECT_EQ(ring.order().size(), d.routers());
}

TEST_P(RingParamTest, SuccessorPredecessorInverse) {
  Dragonfly d(GetParam());
  HamiltonianRing ring(d);
  for (RouterId r = 0; r < d.routers(); ++r) {
    EXPECT_EQ(ring.predecessor(ring.successor(r)), r);
    EXPECT_EQ(ring.successor(ring.predecessor(r)), r);
  }
}

TEST_P(RingParamTest, PositionsAreAPermutation) {
  Dragonfly d(GetParam());
  HamiltonianRing ring(d);
  std::set<u32> seen;
  for (RouterId r = 0; r < d.routers(); ++r) seen.insert(ring.position(r));
  EXPECT_EQ(seen.size(), d.routers());
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), d.routers() - 1);
}

INSTANTIATE_TEST_SUITE_P(Radixes, RingParamTest,
                         ::testing::Values(2u, 3u, 4u, 6u));

TEST(HamiltonianRing, ExactlyOneGroupCrossingPerGroup) {
  Dragonfly d(3);
  HamiltonianRing ring(d);
  u32 crossings = 0;
  for (RouterId r = 0; r < d.routers(); ++r)
    if (ring.step_crosses_group(r)) ++crossings;
  EXPECT_EQ(crossings, d.groups());
}

TEST(HamiltonianRing, RingDistanceAlgebra) {
  Dragonfly d(2);
  HamiltonianRing ring(d);
  const RouterId a = ring.order()[0];
  const RouterId b = ring.order()[10];
  EXPECT_EQ(ring.ring_distance(a, b), 10u);
  EXPECT_EQ(ring.ring_distance(b, a), d.routers() - 10);
  EXPECT_EQ(ring.ring_distance(a, a), 0u);
}

TEST(HamiltonianRing, EmbeddedOutPortsAreRealLinks) {
  Dragonfly d(3);
  HamiltonianRing ring(d);
  for (RouterId r = 0; r < d.routers(); ++r) {
    const PortId p = ring.embedded_out_port(r);
    if (ring.step_crosses_group(r)) {
      EXPECT_EQ(d.port_class(p), PortClass::kGlobal);
      EXPECT_EQ(d.global_peer(r, p).router, ring.successor(r));
    } else {
      EXPECT_EQ(d.port_class(p), PortClass::kLocal);
      EXPECT_EQ(d.local_peer(d.local_of(r), p),
                d.local_of(ring.successor(r)));
    }
  }
}

TEST(HamiltonianRing, NotConstructibleWhenTooFewGroups) {
  // stride 1 needs distinct enter/exit carriers: groups > h + 1.
  Dragonfly tiny(4, 4);  // groups = 4 <= h + 1 = 5
  EXPECT_FALSE(HamiltonianRing::constructible(tiny));
  Dragonfly ok(4, 6);
  EXPECT_TRUE(HamiltonianRing::constructible(ok));
}

TEST(HamiltonianRing, StrideMustBeCoprimeWithGroups) {
  Dragonfly d(2);  // 9 groups
  EXPECT_FALSE(HamiltonianRing::constructible(d, 3));  // gcd(3,9)=3
  EXPECT_TRUE(HamiltonianRing::constructible(d, 2));
  HamiltonianRing ring(d, 2);
  EXPECT_TRUE(ring.validate(d));
}

TEST(HamiltonianRing, DifferentStridesUseDifferentGlobalLinks) {
  Dragonfly d(3);  // 19 groups
  HamiltonianRing r1(d, 1), r2(d, 2);
  ASSERT_TRUE(r1.validate(d));
  ASSERT_TRUE(r2.validate(d));
  // Global crossings of stride-1 connect consecutive groups, stride-2
  // skip one: the global-link sets are disjoint by construction.
  for (RouterId r = 0; r < d.routers(); ++r) {
    if (!r1.step_crosses_group(r)) continue;
    const GroupId from = d.group_of(r);
    EXPECT_EQ(d.group_of(r1.successor(r)), (from + 1) % d.groups());
  }
  for (RouterId r = 0; r < d.routers(); ++r) {
    if (!r2.step_crosses_group(r)) continue;
    const GroupId from = d.group_of(r);
    EXPECT_EQ(d.group_of(r2.successor(r)), (from + 2) % d.groups());
  }
}

TEST(HamiltonianRing, EdgeDisjointCheckerDetectsSharedEdges) {
  Dragonfly d(3);
  HamiltonianRing r1(d, 1);
  EXPECT_FALSE(HamiltonianRing::edge_disjoint(d, r1, r1));
}

TEST(HamiltonianRing, PaperScaleRingCoversAllRouters) {
  Dragonfly d(6);  // full paper network, 876 routers
  HamiltonianRing ring(d);
  EXPECT_TRUE(ring.validate(d));
  // Walk the whole ring once.
  RouterId cur = ring.order()[0];
  for (u32 i = 0; i < d.routers(); ++i) cur = ring.successor(cur);
  EXPECT_EQ(cur, ring.order()[0]);
}

}  // namespace
}  // namespace ofar
