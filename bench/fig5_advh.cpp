// Fig. 5 reproduction: latency (a) and throughput (b) versus offered load
// under the worst-case adversarial pattern ADV+h, for VAL, PB, OFAR and
// OFAR-L. This is the paper's headline result: the consecutive global
// wiring funnels all misrouted transit traffic of a group pair through one
// local link, capping every mechanism WITHOUT local misrouting at
// 1/h phits/(node*cycle) (paper §III); only OFAR's in-transit local
// misroute escapes the ceiling (paper: OFAR 0.36 vs 1/6 = 0.166 at h=6).
//
// The analytic ceilings are printed alongside so the gap is visible.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ofar;
  using namespace ofar::bench;
  CommandLine cli(argc, argv);
  const BenchOptions opts = BenchOptions::parse(cli, 5'000, 6'000);
  const std::vector<double> loads = load_grid(cli, 0.05, 0.45, 8);
  if (!reject_unknown(cli)) return 1;

  std::vector<MechanismSpec> specs = {
      {"VAL", opts.config(RoutingKind::kVal)},
      {"PB", opts.config(RoutingKind::kPb)},
      {"OFAR", opts.config(RoutingKind::kOfar)},
      {"OFAR-L", opts.config(RoutingKind::kOfarL)},
  };
  std::printf("Fig. 5 (ADV+h) on %s\n", specs[0].cfg.summary().c_str());
  std::printf("analytic ceilings: local-link 1/h = %.4f | Valiant global "
              "0.5\n",
              1.0 / opts.h);
  steady_figure("fig5", "Fig. 5: worst-case adversarial traffic (ADV+h)",
                opts, TrafficPattern::adversarial(opts.h), loads, specs);
  return 0;
}
