// Ablation bench (DESIGN.md extension #3; paper §VII reliability
// discussion): the escape subnetwork's Hamiltonian rings.
//
//   (1) Topological study — the paper states "up to h edge-disjoint
//       Hamiltonian rings could be embedded" on the dragonfly. We greedily
//       collect pairwise edge-disjoint rings over all constructible strides
//       and report the count per radix (a pure-topology computation).
//   (2) Performance study — OFAR with the escape ring built at different
//       strides, and with different livelock budgets (max_ring_exits).
//       Because the ring is only a deadlock drain, neither choice should
//       move steady-state numbers noticeably (the paper's Fig. 8 argument).
//
// Shim over the "ablation_rings" preset (presets.cpp).
#include "presets.hpp"

int main(int argc, char** argv) {
  return ofar::bench::run_preset_main("ablation_rings", argc, argv);
}
