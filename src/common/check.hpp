// Lightweight checked-invariant macros.
//
// OFAR_CHECK is always on (cheap, used on cold paths such as construction);
// OFAR_DCHECK compiles out in release builds and is used in per-cycle code.
// When compiled out, the condition (and message) remain inside an
// unevaluated sizeof so they are still parsed and type-checked — a DCHECK
// referencing a renamed member fails the NDEBUG build instead of bit-rotting.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace ofar::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const char* msg) {
  std::fprintf(stderr, "OFAR_CHECK failed: %s at %s:%d%s%s\n", expr, file,
               line, msg[0] != '\0' ? " — " : "", msg);
  std::abort();
}

}  // namespace ofar::detail

#define OFAR_CHECK(cond)                                            \
  do {                                                              \
    if (!(cond)) [[unlikely]]                                       \
      ::ofar::detail::check_failed(#cond, __FILE__, __LINE__, "");  \
  } while (false)

#define OFAR_CHECK_MSG(cond, msg)                                    \
  do {                                                               \
    if (!(cond)) [[unlikely]]                                        \
      ::ofar::detail::check_failed(#cond, __FILE__, __LINE__, msg);  \
  } while (false)

#ifndef NDEBUG
#define OFAR_DCHECK(cond) OFAR_CHECK(cond)
#define OFAR_DCHECK_MSG(cond, msg) OFAR_CHECK_MSG(cond, msg)
#else
// Unevaluated operands: no codegen, but the expressions must still compile.
#define OFAR_DCHECK(cond)                            \
  do {                                               \
    static_cast<void>(sizeof((cond) ? 1 : 0));       \
  } while (false)
#define OFAR_DCHECK_MSG(cond, msg)                   \
  do {                                               \
    static_cast<void>(sizeof((cond) ? 1 : 0));       \
    static_cast<void>(sizeof((msg) != nullptr));     \
  } while (false)
#endif
