#include "sim/flat_state.hpp"

#include "sim/network.hpp"

namespace ofar {

void CreditView::init(const Network& net) {
  const u32 ports = net.topo().ports_per_router();
  packet_size_ = net.config().packet_size;
  base_counts_.assign(ports, 0);
  for (PortId port = 0; port < ports; ++port) {
    u32 first = 0, count = 0;
    // base_vc_range depends only on the port's class, which is the same for
    // every router of the dragonfly — router 0 stands in for all of them.
    net.base_vc_range(0, port, first, count);
    OFAR_DCHECK(first == 0);
    base_counts_[port] = count;
  }
  snaps_.assign(ports, PortSnap{});
  epoch_ = 0;
  r_ = nullptr;
}

}  // namespace ofar
