// Fixture: writes to OFAR_SERIAL_ONLY members from parallel-reachable
// code must be flagged; shard-local members and serial callers are fine.

struct Kernel {
  OFAR_PARALLEL_PHASE void phase();
  OFAR_SERIAL_ONLY void commit();
  void mutate();
  OFAR_SERIAL_ONLY unsigned long delivered_total_ = 0;
  OFAR_SHARD_LOCAL unsigned long shard_count_ = 0;
};

void Kernel::phase() {
  ++delivered_total_;  // expect: serial-write
  shard_count_ += 1;   // fine: shard-local state
  mutate();
}

void Kernel::mutate() {
  delivered_total_ = 7;  // expect: serial-write
}

void Kernel::commit() {
  ++delivered_total_;  // fine: serial caller
}
