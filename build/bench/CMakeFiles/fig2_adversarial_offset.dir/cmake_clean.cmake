file(REMOVE_RECURSE
  "CMakeFiles/fig2_adversarial_offset.dir/fig2_adversarial_offset.cpp.o"
  "CMakeFiles/fig2_adversarial_offset.dir/fig2_adversarial_offset.cpp.o.d"
  "fig2_adversarial_offset"
  "fig2_adversarial_offset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_adversarial_offset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
