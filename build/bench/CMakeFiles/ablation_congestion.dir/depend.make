# Empty dependencies file for ablation_congestion.
# This may be replaced when dependencies are built.
