#include "trace/flight_recorder.hpp"

namespace ofar::trace {

void append_event_json(JsonWriter& w, const TraceEvent& ev) {
  w.begin_object();
  w.key("kind").value(to_string(ev.kind));
  w.key("seq").value(ev.seq);
  w.key("packet").value(static_cast<u64>(ev.packet));
  w.key("cycle").value(static_cast<u64>(ev.cycle));
  w.key("router").value(static_cast<u64>(ev.router));
  w.key("src").value(static_cast<u64>(ev.src));
  w.key("dst").value(static_cast<u64>(ev.dst));
  if (ev.kind != TraceEvent::Kind::kInject) {
    w.key("out_port").value(static_cast<u64>(ev.out_port));
    w.key("out_vc").value(static_cast<u64>(ev.out_vc));
  }
  if (ev.kind == TraceEvent::Kind::kGrant ||
      ev.kind == TraceEvent::Kind::kRingEnter ||
      ev.kind == TraceEvent::Kind::kRingExit) {
    w.key("in_port").value(static_cast<u64>(ev.in_port));
    w.key("in_vc").value(static_cast<u64>(ev.in_vc));
    w.key("queue_wait").value(static_cast<u64>(ev.queue_wait));
    w.key("ring_move").value(ev.ring_move);
    const char* mis = ev.misroute == MisrouteKind::kLocal    ? "local"
                      : ev.misroute == MisrouteKind::kGlobal ? "global"
                                                             : "none";
    w.key("misroute").value(mis);
    w.key("condition").value(to_string(ev.prov.condition));
    w.key("min_port").value(static_cast<u64>(ev.prov.min_port));
    w.key("q_min").value(static_cast<double>(ev.prov.q_min));
    w.key("threshold").value(static_cast<double>(ev.prov.threshold));
    w.key("chosen_occ").value(static_cast<double>(ev.prov.chosen_occ));
    w.key("candidates").begin_array();
    const u32 n = ev.prov.num_candidates < RouteProvenance::kMaxCandidates
                      ? ev.prov.num_candidates
                      : RouteProvenance::kMaxCandidates;
    for (u32 i = 0; i < n; ++i)
      w.value(static_cast<u64>(ev.prov.candidates[i]));
    w.end_array();
    w.key("num_candidates").value(
        static_cast<u64>(ev.prov.num_candidates));
  }
  w.end_object();
}

FlightRecorder::FlightRecorder(u32 routers, u32 depth) : depth_(depth) {
  rings_.resize(routers);
  // Storage grows lazily per router: quiet routers cost nothing.
}

void FlightRecorder::record(const TraceEvent& ev) {
  if (depth_ == 0 || ev.router >= rings_.size()) return;
  Ring& ring = rings_[ev.router];
  ++ring.seen;
  ++total_;
  if (ring.events.size() < depth_) {
    ring.events.push_back(ev);
    return;
  }
  ring.events[ring.next] = ev;
  ring.next = (ring.next + 1) % depth_;
}

std::vector<TraceEvent> FlightRecorder::snapshot(RouterId r) const {
  std::vector<TraceEvent> out;
  if (r >= rings_.size()) return out;
  const Ring& ring = rings_[r];
  out.reserve(ring.events.size());
  // Once the ring wrapped, `next` points at the oldest retained event.
  const u32 n = static_cast<u32>(ring.events.size());
  const u32 start = n < depth_ ? 0 : ring.next;
  for (u32 i = 0; i < n; ++i) out.push_back(ring.events[(start + i) % n]);
  return out;
}

bool FlightRecorder::dump_json(const std::string& path,
                               const std::string& reason, Cycle now,
                               const std::string& context_json) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  JsonWriter w;
  w.begin_object();
  w.key("reason").value(reason);
  w.key("cycle").value(static_cast<u64>(now));
  w.key("depth").value(depth_);
  w.key("total_events").value(total_);
  w.key("routers").begin_array();
  for (RouterId r = 0; r < rings_.size(); ++r) {
    if (rings_[r].events.empty()) continue;
    w.begin_object();
    w.key("router").value(static_cast<u64>(r));
    w.key("seen").value(rings_[r].seen);
    w.key("events").begin_array();
    for (const TraceEvent& ev : snapshot(r)) append_event_json(w, ev);
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  // Splice the pre-rendered context (audit report / watchdog stats) in as
  // the last key; JsonWriter has no raw-value path, so close the object
  // manually.
  std::string out = w.str();
  if (!context_json.empty()) {
    out.pop_back();  // '}'
    out += ",\"context\":";
    out += context_json;
    out += '}';
  }
  const std::size_t written = std::fwrite(out.data(), 1, out.size(), f);
  std::fclose(f);
  return written == out.size();
}

}  // namespace ofar::trace
