# Empty dependencies file for fig7_bursts.
# This may be replaced when dependencies are built.
