// Least-recently-served (LRS) arbiter (paper §V).
//
// Each arbiter remembers the cycle at which every candidate was last
// granted and always picks the requesting candidate with the oldest grant
// (ties broken by lower index), which is starvation-free.
#pragma once

#include <span>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace ofar {

class LrsArbiter {
 public:
  LrsArbiter() = default;
  explicit LrsArbiter(u32 candidates) : last_grant_(candidates, 0) {}

  u32 size() const noexcept { return static_cast<u32>(last_grant_.size()); }

  /// Picks the least-recently-served index among `requesters` (indices into
  /// this arbiter's candidate space). Does NOT update state; call grant().
  u32 pick(std::span<const u32> requesters) const {
    OFAR_DCHECK(!requesters.empty());
    u32 best = requesters[0];
    for (std::size_t i = 1; i < requesters.size(); ++i) {
      const u32 c = requesters[i];
      OFAR_DCHECK(c < last_grant_.size());
      if (last_grant_[c] < last_grant_[best] ||
          (last_grant_[c] == last_grant_[best] && c < best))
        best = c;
    }
    return best;
  }

  void grant(u32 candidate, Cycle now) {
    OFAR_DCHECK(candidate < last_grant_.size());
    last_grant_[candidate] = now;
  }

  Cycle last_grant(u32 candidate) const { return last_grant_[candidate]; }

 private:
  std::vector<Cycle> last_grant_;
};

}  // namespace ofar
