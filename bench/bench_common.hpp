// Shared scaffolding for the figure-reproduction benches: common CLI
// options (network scale, measurement windows, CSV output, thread count,
// result cache) and the load-grid helper. The figure logic itself lives in
// presets.cpp; the per-figure binaries are thin shims over that registry.
//
// Every bench accepts:
//   --h N           network radix (paper: 6; default 4 — see EXPERIMENTS.md)
//   --seed S        RNG seed
//   --warmup C      warm-up cycles before the measurement window
//   --measure C     measurement window width
//   --csv-dir D     directory for CSV dumps ("" disables)
//   --threads T     total thread budget (0 = hardware concurrency)
//   --sim-threads N worker threads inside each simulation (sharded cycle
//                   kernel; 0 = auto split of the --threads budget).
//                   Effective only when the config runs sim_shards > 1.
//   --metrics-out F       stream telemetry records to F (.jsonl or .csv)
//   --metrics-interval C  cycles between interval snapshots (default 1000)
//   --metrics-full        also dump per-channel / per-VC records
//   --audit               run the invariant auditor every 4096 cycles
//   --audit-interval C    audit every C cycles (implies --audit)
//   --trace-out F     packet-journey Chrome trace JSON (chrome://tracing /
//                     ui.perfetto.dev); per-point file names when the run
//                     executes more than one point
//   --trace-links F   per-link utilisation / credit-stall series (.csv or
//                     JSONL by extension)
//   --trace-sample N  trace 1 in N packets (default 64; 1 traces all)
//   --cache-dir D   content-addressed result cache + resume journal
//                   (shim binaries default to no cache; ofar_run defaults
//                   to .ofar-cache)
//   --no-cache      force caching off even where a default cache applies
//   --checkpoint-dir D      mid-point checkpoint/restart for steady points:
//                           full simulation state saved per point key,
//                           resumed bit-identically after a crash/SIGINT
//   --checkpoint-interval C cycles between checkpoint refreshes
//                           (default 100000)
//   --stop-after N  stop scheduling new points after N have started
//                   (deterministic interruption for resume tests)
#pragma once

#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/config.hpp"
#include "common/table.hpp"
#include "core/experiment.hpp"
#include "core/spec.hpp"
#include "stats/sink.hpp"

namespace ofar::bench {

struct BenchOptions {
  u32 h = 4;
  u64 seed = 1;
  RunParams run;  ///< steady measurement windows (warmup/measure only)
  std::string csv_dir;
  unsigned threads = 0;
  unsigned sim_threads = 0;  ///< intra-sim workers (0 = auto; see above)

  // Telemetry sink shared by every simulation this bench runs (thread-safe;
  // parallel sweep points interleave whole records). Null when --metrics-out
  // was not given. The orchestrator labels each record "<case>|<mechanism>".
  std::shared_ptr<MetricsSink> metrics;
  Cycle metrics_interval = 1'000;
  bool metrics_full = false;

  // Invariant-audit period (0 = off), applied to every executed point.
  Cycle audit_interval = 0;

  // Packet tracing (src/trace, DESIGN.md §11), applied to every executed
  // point. Instrumentation only: never part of cached point keys.
  std::string trace_out;    ///< "" = journey tracing off
  std::string trace_links;  ///< "" = link series off
  u32 trace_sample = 64;    ///< 1-in-N deterministic packet sampling

  // Orchestrator knobs: every bench executes through run_points() now.
  std::string cache_dir;  ///< "" = caching off (unless a default applies)
  bool no_cache = false;  ///< --no-cache wins over any default cache dir
  std::string checkpoint_dir;      ///< "" = mid-point checkpointing off
  Cycle checkpoint_interval = 100'000;
  std::size_t stop_after = 0;
  const std::atomic<bool>* stop_flag = nullptr;  ///< SIGINT, set by runner

  static BenchOptions parse(const CommandLine& cli, Cycle warmup_default,
                            Cycle measure_default) {
    BenchOptions o;
    o.h = static_cast<u32>(cli.get_uint("h", 4));
    o.seed = cli.get_uint("seed", 1);
    o.run.warmup = cli.get_uint("warmup", warmup_default);
    o.run.measure = cli.get_uint("measure", measure_default);
    o.csv_dir = cli.get_string("csv-dir", ".");
    o.threads = static_cast<unsigned>(cli.get_uint("threads", 0));
    o.sim_threads = static_cast<unsigned>(cli.get_uint("sim-threads", 0));
    const std::string metrics_out = cli.get_string("metrics-out", "");
    o.metrics_interval = cli.get_uint("metrics-interval", 1'000);
    o.metrics_full = cli.get_flag("metrics-full");
    if (!metrics_out.empty()) {
      o.metrics = MetricsSink::open(metrics_out);
      if (o.metrics == nullptr)
        std::fprintf(stderr, "warning: could not open %s; telemetry disabled\n",
                     metrics_out.c_str());
    }
    o.audit_interval = cli.get_uint("audit-interval", 0);
    if (cli.get_flag("audit") && o.audit_interval == 0)
      o.audit_interval = 4'096;
    o.trace_out = cli.get_string("trace-out", "");
    o.trace_links = cli.get_string("trace-links", "");
    o.trace_sample = static_cast<u32>(cli.get_uint("trace-sample", 64));
    o.cache_dir = cli.get_string("cache-dir", "");
    o.no_cache = cli.get_flag("no-cache");
    o.checkpoint_dir = cli.get_string("checkpoint-dir", "");
    o.checkpoint_interval = cli.get_uint("checkpoint-interval", 100'000);
    o.stop_after = static_cast<std::size_t>(cli.get_uint("stop-after", 0));
    return o;
  }

  /// Baseline SimConfig for a mechanism: VC-ordered mechanisms get no ring,
  /// OFAR variants get the physical ring (the paper's default evaluation
  /// setup; Fig. 8 overrides the ring kind explicitly).
  SimConfig config(RoutingKind routing) const {
    SimConfig cfg;
    cfg.h = h;
    cfg.seed = seed;
    cfg.routing = routing;
    cfg.ring = cfg.vc_ordered() ? RingKind::kNone : RingKind::kPhysical;
    return cfg;
  }
};

/// Evenly spaced loads (lo, lo+step, ..., hi], overridable via
/// --min-load/--max-load/--points.
inline std::vector<double> load_grid(const CommandLine& cli, double lo,
                                     double hi, u32 points) {
  lo = cli.get_double("min-load", lo);
  hi = cli.get_double("max-load", hi);
  points = static_cast<u32>(cli.get_uint("points", points));
  return expand_load_grid(lo, hi, points);
}

/// Rejects unknown CLI keys with a readable message. Returns false on typo.
inline bool reject_unknown(const CommandLine& cli) {
  bool ok = true;
  for (const auto& key : cli.unused_keys()) {
    std::fprintf(stderr, "unknown option --%s\n", key.c_str());
    ok = false;
  }
  return ok;
}

}  // namespace ofar::bench
