// Unit + property tests for the dragonfly topology: coordinate algebra,
// port layout, global wiring symmetry, minimal-route correctness, and the
// §III structural pathology (ADV+h funnels all transit traffic of a group
// pair through one local link).
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "topology/dragonfly.hpp"

namespace ofar {
namespace {

TEST(Dragonfly, PaperScaleCounts) {
  Dragonfly d(6);
  EXPECT_EQ(d.groups(), 73u);
  EXPECT_EQ(d.routers(), 876u);
  EXPECT_EQ(d.nodes(), 5256u);
  EXPECT_EQ(d.ports_per_router(), 23u);  // 6 node + 11 local + 6 global
  Dragonfly with_ring(6, 0, /*physical_ring=*/true);
  EXPECT_EQ(with_ring.ports_per_router(), 24u);
}

TEST(Dragonfly, SampleTopologyOfFigure1) {
  Dragonfly d(2);  // the paper's Fig. 1: h=2 -> 36 routers, 72 nodes
  EXPECT_EQ(d.groups(), 9u);
  EXPECT_EQ(d.routers(), 36u);
  EXPECT_EQ(d.nodes(), 72u);
}

TEST(Dragonfly, CoordinateRoundTrip) {
  Dragonfly d(3);
  for (RouterId r = 0; r < d.routers(); ++r) {
    EXPECT_EQ(d.router_at(d.group_of(r), d.local_of(r)), r);
    for (u32 s = 0; s < d.p(); ++s) {
      const NodeId n = d.node_at(r, s);
      EXPECT_EQ(d.router_of_node(n), r);
      EXPECT_EQ(d.node_slot(n), s);
    }
  }
}

TEST(Dragonfly, PortClassLayout) {
  Dragonfly d(3, 0, true);
  u32 nodep = 0, localp = 0, globalp = 0, ringp = 0;
  for (PortId p = 0; p < d.ports_per_router(); ++p) {
    switch (d.port_class(p)) {
      case PortClass::kNode: ++nodep; break;
      case PortClass::kLocal: ++localp; break;
      case PortClass::kGlobal: ++globalp; break;
      case PortClass::kRing: ++ringp; break;
    }
  }
  EXPECT_EQ(nodep, d.p());
  EXPECT_EQ(localp, d.a() - 1);
  EXPECT_EQ(globalp, d.h());
  EXPECT_EQ(ringp, 1u);
}

TEST(Dragonfly, LocalPortPeerInverse) {
  Dragonfly d(3);
  for (u32 from = 0; from < d.a(); ++from)
    for (u32 to = 0; to < d.a(); ++to) {
      if (from == to) continue;
      const PortId p = d.local_port(from, to);
      EXPECT_EQ(d.port_class(p), PortClass::kLocal);
      EXPECT_EQ(d.local_peer(from, p), to);
    }
}

TEST(Dragonfly, GlobalSlotBijection) {
  Dragonfly d(3);
  for (GroupId a = 0; a < d.groups(); ++a)
    for (GroupId b = 0; b < d.groups(); ++b) {
      if (a == b) continue;
      const u32 slot = d.global_slot(a, b);
      EXPECT_TRUE(d.slot_wired(slot));
      EXPECT_EQ(d.slot_target(a, slot), b);
      // The far side points back with the mirrored slot.
      const u32 back = d.peer_slot(slot);
      EXPECT_EQ(d.global_slot(b, a), back);
      EXPECT_EQ(d.peer_slot(back), slot);
    }
}

TEST(Dragonfly, GlobalPeerIsInvolution) {
  Dragonfly d(2);
  for (RouterId r = 0; r < d.routers(); ++r) {
    const PortId first = d.first_global_port();
    for (PortId p = first; p < first + d.h(); ++p) {
      ASSERT_TRUE(d.global_port_wired(r, p));
      const auto far = d.global_peer(r, p);
      EXPECT_NE(d.group_of(far.router), d.group_of(r));
      const auto back = d.global_peer(far.router, far.port);
      EXPECT_EQ(back.router, r);
      EXPECT_EQ(back.port, p);
    }
  }
}

TEST(Dragonfly, ExactlyOneGlobalLinkPerGroupPair) {
  Dragonfly d(2);
  std::map<std::pair<GroupId, GroupId>, int> links;
  for (RouterId r = 0; r < d.routers(); ++r) {
    const PortId first = d.first_global_port();
    for (PortId p = first; p < first + d.h(); ++p) {
      const auto far = d.global_peer(r, p);
      GroupId ga = d.group_of(r), gb = d.group_of(far.router);
      if (ga > gb) std::swap(ga, gb);
      links[{ga, gb}] += 1;  // counted once per direction
    }
  }
  EXPECT_EQ(links.size(),
            static_cast<std::size_t>(d.groups()) * (d.groups() - 1) / 2);
  for (const auto& [pair, count] : links) EXPECT_EQ(count, 2) << pair.first;
}

TEST(Dragonfly, CarrierRouterOwnsTheLink) {
  Dragonfly d(3);
  for (GroupId a = 0; a < d.groups(); ++a)
    for (GroupId b = 0; b < d.groups(); ++b) {
      if (a == b) continue;
      const RouterId c = d.carrier_router(a, b);
      EXPECT_EQ(d.group_of(c), a);
      const auto far = d.global_peer(c, d.carrier_port(a, b));
      EXPECT_EQ(d.group_of(far.router), b);
      EXPECT_EQ(far.router, d.carrier_router(b, a));
    }
}

TEST(Dragonfly, TrimmedTopologyLeavesHighSlotsUnwired) {
  Dragonfly d(3, 7);  // 7 of max 19 groups
  EXPECT_EQ(d.groups(), 7u);
  u32 wired = 0, unwired = 0;
  for (RouterId r = 0; r < d.routers(); ++r) {
    const PortId first = d.first_global_port();
    for (PortId p = first; p < first + d.h(); ++p)
      d.global_port_wired(r, p) ? ++wired : ++unwired;
  }
  // groups-1 = 6 wired slots per group of the a*h = 18 total.
  EXPECT_EQ(wired, d.groups() * (d.groups() - 1));
  EXPECT_EQ(unwired, d.groups() * (d.a() * d.h() - (d.groups() - 1)));
}

// ---- minimal routing ----

class MinRouteTest : public ::testing::TestWithParam<u32> {};

TEST_P(MinRouteTest, WalkReachesDestinationWithinThreeHops) {
  Dragonfly d(GetParam());
  for (RouterId from = 0; from < d.routers(); ++from) {
    for (RouterId to = 0; to < d.routers(); ++to) {
      if (from == to) continue;
      RouterId cur = from;
      u32 hops = 0;
      while (cur != to) {
        ASSERT_LE(++hops, 3u) << "minimal path too long " << from << "->"
                              << to;
        const PortId p = d.min_next_port(cur, to);
        if (d.port_class(p) == PortClass::kLocal) {
          cur = d.router_at(d.group_of(cur),
                            d.local_peer(d.local_of(cur), p));
        } else {
          ASSERT_EQ(d.port_class(p), PortClass::kGlobal);
          cur = d.global_peer(cur, p).router;
        }
      }
      EXPECT_EQ(hops, d.min_hops(from, to));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllSmallRadixes, MinRouteTest,
                         ::testing::Values(1u, 2u, 3u));

TEST(Dragonfly, MinHopsProperties) {
  Dragonfly d(3);
  for (RouterId r = 0; r < d.routers(); ++r) EXPECT_EQ(d.min_hops(r, r), 0u);
  // Same group: always exactly one hop.
  EXPECT_EQ(d.min_hops(d.router_at(2, 0), d.router_at(2, 5)), 1u);
  // Carrier to far carrier: exactly one (global) hop.
  const RouterId c = d.carrier_router(0, 5);
  const RouterId f = d.carrier_router(5, 0);
  EXPECT_EQ(d.min_hops(c, f), 1u);
}

// ---- the §III pathology: consecutive wiring funnels ADV+h traffic ----

TEST(Dragonfly, AdvPlusHFunnelsThroughOneLocalLink) {
  // For every transit group X and source group i (dest i+h), the entry
  // carrier of link i->X and the exit carrier of link X->(i+h) must be
  // consecutive routers: all that traffic shares local link c -> c+1.
  Dragonfly d(4);
  const u32 h = d.h();
  for (GroupId x = 0; x < d.groups(); ++x) {
    for (GroupId i = 0; i < d.groups(); ++i) {
      const GroupId dst = (i + h) % d.groups();
      if (i == x || dst == x || i == dst) continue;
      const u32 in_slot = d.global_slot(i, x);
      const u32 entry = d.slot_carrier(d.peer_slot(in_slot));
      const u32 exit = d.slot_carrier(d.global_slot(x, dst));
      // Consecutive arrangement: out slot = in-side slot + h (mod wrap),
      // so the exit carrier is the entry carrier + 1 except at the wrap.
      if (d.peer_slot(in_slot) + h < d.a() * h &&
          d.peer_slot(in_slot) + h == d.global_slot(x, dst)) {
        EXPECT_EQ(exit, entry + 1);
      }
    }
  }
}

TEST(Dragonfly, DescribeMentionsScale) {
  Dragonfly d(2);
  const std::string s = d.describe();
  EXPECT_NE(s.find("h=2"), std::string::npos);
  EXPECT_NE(s.find("routers=36"), std::string::npos);
}

}  // namespace
}  // namespace ofar
