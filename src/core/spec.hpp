// Declarative experiment specs (the orchestration layer's input language).
//
// An ExperimentSpec describes one figure-shaped experiment — a cross
// product of {mechanism} x {pattern or transition} x {load} x {seed} under
// one of the three measurement protocols of core/experiment.hpp — and
// expands into a flat list of RunPoints. Specs come from three places:
//
//   - JSON files (spec_from_file): the `ofar_run --spec` path,
//   - the preset table in bench/presets.cpp: the figure reproductions,
//   - CLI shorthand assembled by ofar_run (--kind/--mechanisms/...).
//
// Every RunPoint has a *canonical cache key*: a digest over a canonical
// text rendering of (schema version, protocol, full SimConfig, pattern
// components, protocol parameters, seed). Telemetry and audit knobs are
// deliberately excluded — both are read-only instrumentation and results
// are bit-identical with them on or off. The key is what the orchestrator's
// result cache and resume journal are addressed by, so it must be stable
// across processes and platforms: doubles are rendered with
// std::to_chars shortest-round-trip form and the hash is a fixed FNV-1a.
//
// Bump kSpecSchemaVersion whenever the meaning of a config field, a
// pattern, or a result struct changes — every cached result is invalidated
// at once, which is exactly what a semantics change requires.
#pragma once

#include <string>
#include <vector>

#include "common/config.hpp"
#include "core/experiment.hpp"
#include "traffic/pattern.hpp"

namespace ofar {

class JsonValue;

/// Cache-key schema version (see file comment for the bump discipline).
/// v2: SimConfig::sim_shards joined the canonical config rendering.
/// v3: SimConfig::shard_group_major joined (group-aligned shard split).
inline constexpr u32 kSpecSchemaVersion = 3;

enum class RunKind : u8 { kSteady, kTransient, kBurst };
const char* to_string(RunKind kind) noexcept;
bool parse_run_kind(const std::string& text, RunKind& out) noexcept;

/// A traffic pattern plus the display name used in tables and labels.
struct NamedPattern {
  std::string name;  ///< "UN", "ADV+2", "MIX1", ...
  TrafficPattern pattern;
};

/// One curve of a figure: a labelled mechanism configuration. The seed
/// member of `cfg` is ignored — expansion overwrites it per point.
struct MechanismEntry {
  std::string label;
  SimConfig cfg;
};

/// One transient transition (Fig. 6 style): pattern A at load_a until the
/// switch cycle, then pattern B at load_b.
struct TransitionSpec {
  std::string name;  ///< "UN->ADV+2"
  NamedPattern a;
  NamedPattern b;
  double load_a = 0.0;
  double load_b = 0.0;
};

/// One expanded simulation point, self-contained and deterministic: the
/// orchestrator can run points in any order, on any thread, and rerunning a
/// point always reproduces the same result bit-for-bit.
struct RunPoint {
  RunKind kind = RunKind::kSteady;
  std::string mechanism;  ///< column label
  std::string case_name;  ///< pattern / workload / transition name
  u64 seed = 1;
  SimConfig cfg;  ///< seed already applied

  // Steady and burst use `pattern`; transient uses `pattern` (phase A,
  // at `load`) plus `pattern_b`/`load_b`.
  TrafficPattern pattern;
  TrafficPattern pattern_b;
  double load = 0.0;
  double load_b = 0.0;

  RunParams run;            ///< steady windows
  TransientParams transient;
  BurstParams burst;

  // Grid coordinates for renderers (indices into the owning spec's
  // mechanisms / cases / loads / seeds vectors).
  u32 mech_index = 0;
  u32 case_index = 0;
  u32 load_index = 0;
  u32 seed_index = 0;
};

/// Evenly spaced load grid (lo, ..., hi] with `points` samples — the same
/// arithmetic the figure benches have always used, centralised so spec
/// files using the grid form reproduce historical CSVs bit-for-bit.
std::vector<double> expand_load_grid(double lo, double hi, u32 points);

struct ExperimentSpec {
  std::string name = "experiment";  ///< CSV file prefix ("fig3", ...)
  std::string title;                ///< table heading
  RunKind kind = RunKind::kSteady;
  u32 h = 4;
  std::vector<u64> seeds = {1};
  std::vector<MechanismEntry> mechanisms;

  // ---- steady (cross product patterns x loads) ----
  std::vector<NamedPattern> patterns;
  std::vector<double> loads;
  RunParams run;  ///< warmup/measure; audit/telemetry armed by the driver

  // ---- transient ----
  std::vector<TransitionSpec> transitions;
  TransientParams transient;

  // ---- burst ----
  std::vector<NamedPattern> workloads;
  BurstParams burst;

  /// Case names along the non-load axis (patterns, transitions or
  /// workloads depending on kind).
  std::vector<std::string> case_names() const;

  /// Flat point list in deterministic order: seeds, then cases, then
  /// loads, then mechanisms (innermost).
  std::vector<RunPoint> expand() const;

  /// Consistency check; returns an error message or empty string.
  std::string validate() const;
};

/// Canonical text rendering of everything that determines a point's result
/// (see file comment). This is what the cache key digests; it is also
/// human-readable on purpose, so key mismatches can be debugged by eye.
std::string canonical_point(const RunPoint& point);

/// 32-hex-digit content key: double-FNV-1a over canonical_point().
std::string point_key(const RunPoint& point);

/// The digest primitive behind point_key, shared with the orchestrator's
/// whole-run results digest: two independent FNV-1a 64 passes over `text`,
/// rendered as 32 hex digits. Stable across platforms and processes.
std::string content_digest(const std::string& text);

/// Canonical rendering of (schema version, full semantic SimConfig, seed):
/// everything a checkpoint must match to be restorable into a freshly
/// constructed Network. Same canonical config text as the cache keys, so
/// the two validation layers can never drift apart.
std::string config_signature(const SimConfig& cfg);

/// Renders a double in shortest round-trip form (std::to_chars): the one
/// double format used by canonical keys and the result journal.
void append_double(std::string& out, double v);

// ---- JSON spec loading ----

/// Parses a pattern from its JSON form: a name string ("UN", "uniform",
/// "ADV+2", "adversarial:3", "ADV+h" — `h` substituted — or "stencil2d")
/// or a mix object {"mix":[{"kind":"uniform","weight":0.8}, ...]}.
bool pattern_from_json(const JsonValue& v, u32 h, NamedPattern& out,
                       std::string& error);

/// Applies config-override members of a JSON object onto `cfg` (routing,
/// ring, vcs_*, thresholds, throttle, ...). Unknown keys are an error so
/// spec typos fail loudly. Keys in `skip` are ignored.
bool apply_config_json(const JsonValue& obj, SimConfig& cfg,
                       const std::vector<std::string>& skip,
                       std::string& error);

/// Builds a spec from a parsed JSON document. On failure returns false and
/// fills `error` with a spec-path-qualified message.
bool spec_from_json(const JsonValue& doc, ExperimentSpec& out,
                    std::string& error);

/// json_parse_file + spec_from_json.
bool spec_from_file(const std::string& path, ExperimentSpec& out,
                    std::string& error);

}  // namespace ofar
