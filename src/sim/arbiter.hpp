// Least-recently-served (LRS) arbiter (paper §V).
//
// Each arbiter remembers the cycle at which every candidate was last
// granted and always picks the requesting candidate with the oldest grant
// (ties broken by lower index), which is starvation-free.
#pragma once

#include <bit>
#include <span>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace ofar {

class CheckpointIO;

class LrsArbiter {
 public:
  LrsArbiter() = default;
  explicit LrsArbiter(u32 candidates) : last_grant_(candidates, 0) {}

  u32 size() const noexcept { return static_cast<u32>(last_grant_.size()); }

  /// Picks the least-recently-served index among `requesters` (indices into
  /// this arbiter's candidate space). Does NOT update state; call grant().
  u32 pick(std::span<const u32> requesters) const {
    OFAR_DCHECK(!requesters.empty());
    u32 best = requesters[0];
    for (std::size_t i = 1; i < requesters.size(); ++i) {
      const u32 c = requesters[i];
      OFAR_DCHECK(c < last_grant_.size());
      if (last_grant_[c] < last_grant_[best] ||
          (last_grant_[c] == last_grant_[best] && c < best))
        best = c;
    }
    return best;
  }

  /// pick() over a packed requester bitmask (bit i = candidate i requests).
  /// Identical selection: the scan runs in ascending index order with a
  /// strict `<` on last-grant cycles, so ties keep the lower index exactly
  /// like the span overload. This is the hot-path form used by the packed
  /// separable allocator (one u64 per port instead of a candidate list).
  u32 pick_mask(u64 requesters) const {
    OFAR_DCHECK(requesters != 0);
    u32 best = static_cast<u32>(std::countr_zero(requesters));
    OFAR_DCHECK(best < last_grant_.size());
    Cycle best_cycle = last_grant_[best];
    requesters &= requesters - 1;
    while (requesters != 0) {
      const u32 c = static_cast<u32>(std::countr_zero(requesters));
      requesters &= requesters - 1;
      OFAR_DCHECK(c < last_grant_.size());
      if (last_grant_[c] < best_cycle) {
        best = c;
        best_cycle = last_grant_[c];
      }
    }
    return best;
  }

  void grant(u32 candidate, Cycle now) {
    OFAR_DCHECK(candidate < last_grant_.size());
    last_grant_[candidate] = now;
  }

  Cycle last_grant(u32 candidate) const { return last_grant_[candidate]; }

 private:
  friend class CheckpointIO;  // serializes last_grant_ (LRS fairness state)

  std::vector<Cycle> last_grant_;
};

}  // namespace ofar
