// Result-table emitter used by the bench harness: prints an aligned
// human-readable table to stdout and optionally a CSV file, so every figure
// reproduction yields both a terminal view and a machine-readable series.
#pragma once

#include <string>
#include <variant>
#include <vector>

#include "common/types.hpp"

namespace ofar {

class Table {
 public:
  using Cell = std::variant<std::string, double, i64, u64>;

  explicit Table(std::vector<std::string> columns);

  /// Appends one row; the number of cells must match the column count.
  void add_row(std::vector<Cell> cells);

  std::size_t num_rows() const { return rows_.size(); }

  /// Renders the aligned table (with a title line) to stdout.
  void print(const std::string& title) const;

  /// Writes the table as CSV. Returns false on I/O failure.
  bool write_csv(const std::string& path) const;

  /// Cell formatting used everywhere (doubles use %.4g style).
  static std::string format(const Cell& cell);

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<Cell>> rows_;
};

/// Writes `table` as <dir>/<name>.csv unless `dir` is empty (disabled).
/// Prints "wrote <path>" on success and a warning to stderr on failure;
/// returns false only on I/O failure. This is the one CSV-emission helper
/// every experiment driver uses, so output layout stays uniform.
bool dump_csv(const Table& table, const std::string& dir,
              const std::string& name);

}  // namespace ofar
