// Tests for the declarative experiment-spec layer (common/json.*,
// core/spec.*): JSON parsing, spec loading and expansion, the load-grid
// arithmetic contract, and the canonical cache-key properties (stability,
// sensitivity to semantic fields, insensitivity to instrumentation).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/json.hpp"
#include "core/spec.hpp"
#include "traffic/pattern.hpp"

namespace ofar {
namespace {

// ---------------------------------------------------------------------------
// JSON parser
// ---------------------------------------------------------------------------

JsonValue parse_ok(const std::string& text) {
  JsonValue v;
  std::string error;
  EXPECT_TRUE(json_parse(text, v, error)) << error;
  return v;
}

TEST(Json, ParsesScalarsArraysAndObjects) {
  EXPECT_TRUE(parse_ok("null").is_null());
  EXPECT_TRUE(parse_ok("true").as_bool());
  EXPECT_EQ(parse_ok("-42").as_int(), -42);
  EXPECT_DOUBLE_EQ(parse_ok("0.125").as_double(), 0.125);
  EXPECT_EQ(parse_ok("\"hi\\nthere\"").as_string(), "hi\nthere");

  const JsonValue arr = parse_ok("[1, 2.5, \"x\", [true]]");
  ASSERT_EQ(arr.items().size(), 4u);
  EXPECT_EQ(arr.items()[0].as_int(), 1);
  EXPECT_TRUE(arr.items()[3].items()[0].as_bool());

  const JsonValue obj = parse_ok("{\"a\": 1, \"b\": {\"c\": [2]}}");
  ASSERT_NE(obj.find("b"), nullptr);
  EXPECT_EQ(obj.find("b")->find("c")->items()[0].as_int(), 2);
  EXPECT_EQ(obj.find("missing"), nullptr);
}

TEST(Json, PreservesIntegerExactnessAndMemberOrder) {
  const JsonValue v = parse_ok("{\"z\": 9007199254740993, \"a\": 1.5}");
  ASSERT_NE(v.find("z"), nullptr);
  EXPECT_TRUE(v.find("z")->has_exact_int());
  EXPECT_EQ(v.find("z")->as_int(), 9007199254740993LL);
  EXPECT_FALSE(v.find("a")->has_exact_int());
  // Members iterate in document order, not sorted order.
  EXPECT_EQ(v.members()[0].first, "z");
  EXPECT_EQ(v.members()[1].first, "a");
}

TEST(Json, RejectsMalformedInputWithPosition) {
  JsonValue v;
  std::string error;
  EXPECT_FALSE(json_parse("{\"a\": }", v, error));
  EXPECT_NE(error.find("line 1"), std::string::npos) << error;
  EXPECT_FALSE(json_parse("[1, 2,]", v, error));
  EXPECT_FALSE(json_parse("{} trailing", v, error));
  EXPECT_FALSE(json_parse("", v, error));
  EXPECT_FALSE(json_parse("{\"a\": 1", v, error));
}

TEST(Json, DecodesUnicodeEscapes) {
  EXPECT_EQ(parse_ok("\"\\u0041\"").as_string(), "A");
  EXPECT_EQ(parse_ok("\"\\u00e9\"").as_string(), "\xc3\xa9");
}

// ---------------------------------------------------------------------------
// Load grid
// ---------------------------------------------------------------------------

TEST(Spec, LoadGridMatchesLegacyBenchArithmeticBitForBit) {
  // The figure benches have always computed the grid with this exact
  // expression; spec files using the {min,max,points} form must reproduce
  // historical CSVs bit-for-bit, so the arithmetic may never drift.
  const double lo = 0.05, hi = 0.60;
  const u32 points = 8;
  const std::vector<double> grid = expand_load_grid(lo, hi, points);
  ASSERT_EQ(grid.size(), points);
  for (u32 i = 0; i < points; ++i) {
    const double legacy = lo + (hi - lo) * i / (points > 1 ? points - 1 : 1);
    EXPECT_EQ(grid[i], legacy);  // exact, not approximate
  }
  EXPECT_EQ(expand_load_grid(0.3, 0.7, 1).size(), 1u);
  EXPECT_EQ(expand_load_grid(0.3, 0.7, 1)[0], 0.3);
}

// ---------------------------------------------------------------------------
// Spec loading + expansion
// ---------------------------------------------------------------------------

const char* kSteadySpec = R"({
  "name": "t",
  "title": "test",
  "kind": "steady",
  "h": 2,
  "seeds": [1, 7],
  "warmup": 100,
  "measure": 200,
  "patterns": ["UN", "ADV+h"],
  "loads": [0.1, 0.2, 0.3],
  "mechanisms": [
    {"routing": "MIN"},
    {"label": "OFAR-emb", "routing": "OFAR", "ring": "embedded"}
  ]
})";

TEST(Spec, LoadsSteadySpecFromJson) {
  JsonValue doc = parse_ok(kSteadySpec);
  ExperimentSpec spec;
  std::string error;
  ASSERT_TRUE(spec_from_json(doc, spec, error)) << error;

  EXPECT_EQ(spec.name, "t");
  EXPECT_EQ(spec.kind, RunKind::kSteady);
  EXPECT_EQ(spec.h, 2u);
  EXPECT_EQ(spec.seeds, (std::vector<u64>{1, 7}));
  EXPECT_EQ(spec.run.warmup, 100u);
  EXPECT_EQ(spec.run.measure, 200u);
  ASSERT_EQ(spec.mechanisms.size(), 2u);
  EXPECT_EQ(spec.mechanisms[0].label, "MIN");
  EXPECT_EQ(spec.mechanisms[0].cfg.ring, RingKind::kNone);  // VC-ordered
  EXPECT_EQ(spec.mechanisms[1].label, "OFAR-emb");
  EXPECT_EQ(spec.mechanisms[1].cfg.ring, RingKind::kEmbedded);  // override
  ASSERT_EQ(spec.patterns.size(), 2u);
  // "ADV+h" substitutes the spec's radix.
  EXPECT_EQ(spec.patterns[1].pattern.components()[0].offset, 2u);
}

TEST(Spec, ExpansionOrderAndIndices) {
  JsonValue doc = parse_ok(kSteadySpec);
  ExperimentSpec spec;
  std::string error;
  ASSERT_TRUE(spec_from_json(doc, spec, error)) << error;

  const std::vector<RunPoint> points = spec.expand();
  // seeds (2) x cases (2) x loads (3) x mechanisms (2)
  ASSERT_EQ(points.size(), 24u);
  // Innermost axis is the mechanism; the seed is applied onto cfg.
  EXPECT_EQ(points[0].mechanism, "MIN");
  EXPECT_EQ(points[1].mechanism, "OFAR-emb");
  EXPECT_EQ(points[0].seed, 1u);
  EXPECT_EQ(points[0].cfg.seed, 1u);
  EXPECT_EQ(points.back().seed, 7u);
  EXPECT_EQ(points.back().cfg.seed, 7u);
  // Index bookkeeping for renderers: ((s*C + c)*L + l)*M + m.
  const RunPoint& p = points[((1 * 2 + 1) * 3 + 2) * 2 + 1];
  EXPECT_EQ(p.seed_index, 1u);
  EXPECT_EQ(p.case_index, 1u);
  EXPECT_EQ(p.load_index, 2u);
  EXPECT_EQ(p.mech_index, 1u);
  EXPECT_EQ(p.case_name, "ADV+h");
  EXPECT_DOUBLE_EQ(p.load, 0.3);
}

TEST(Spec, RejectsTyposLoudly) {
  ExperimentSpec spec;
  std::string error;

  JsonValue doc = parse_ok(
      R"({"kind": "steady", "patterns": ["UN"], "loads": [0.1],
          "mechanisms": [{"routing": "OFAR", "vcs_locl": 3}]})");
  EXPECT_FALSE(spec_from_json(doc, spec, error));
  EXPECT_NE(error.find("vcs_locl"), std::string::npos) << error;

  doc = parse_ok(R"({"kind": "steady", "patterns": ["NOPE"], "loads": [0.1],
                     "mechanisms": [{"routing": "OFAR"}]})");
  EXPECT_FALSE(spec_from_json(doc, spec, error));

  doc = parse_ok(R"({"kind": "steady", "patterns": ["UN"], "loads": [0.1]})");
  EXPECT_FALSE(spec_from_json(doc, spec, error));
  EXPECT_NE(error.find("mechanisms"), std::string::npos) << error;
}

TEST(Spec, LoadsTransientAndBurstSpecs) {
  ExperimentSpec spec;
  std::string error;
  JsonValue doc = parse_ok(
      R"({"kind": "transient", "h": 2,
          "transitions": [{"a": "UN", "b": "ADV+2", "load": 0.14}],
          "switch_at": 1000, "bucket": 50,
          "mechanisms": [{"routing": "PB"}, {"routing": "OFAR"}]})");
  ASSERT_TRUE(spec_from_json(doc, spec, error)) << error;
  ASSERT_EQ(spec.transitions.size(), 1u);
  EXPECT_EQ(spec.transitions[0].name, "UN->ADV+2");
  EXPECT_DOUBLE_EQ(spec.transitions[0].load_b, 0.14);
  EXPECT_EQ(spec.transient.warmup, 1000u);
  EXPECT_EQ(spec.transient.bucket, 50u);
  EXPECT_EQ(spec.expand().size(), 2u);

  doc = parse_ok(
      R"({"kind": "burst", "h": 2, "packets": 25, "max_cycles": 9999,
          "workloads": ["UN", {"mix": [{"kind": "uniform", "weight": 0.5},
                                       {"kind": "adversarial", "offset": 1,
                                        "weight": 0.5}], "name": "MIXY"}],
          "mechanisms": [{"routing": "OFAR"}]})");
  ASSERT_TRUE(spec_from_json(doc, spec, error)) << error;
  EXPECT_EQ(spec.burst.packets_per_node, 25u);
  EXPECT_EQ(spec.burst.max_cycles, 9999u);
  ASSERT_EQ(spec.workloads.size(), 2u);
  EXPECT_EQ(spec.workloads[1].name, "MIXY");
  EXPECT_EQ(spec.workloads[1].pattern.components().size(), 2u);
}

// ---------------------------------------------------------------------------
// Canonical cache keys
// ---------------------------------------------------------------------------

RunPoint base_point() {
  RunPoint p;
  p.kind = RunKind::kSteady;
  p.mechanism = "OFAR";
  p.seed = 3;
  p.cfg.h = 2;
  p.cfg.seed = 3;
  p.cfg.routing = RoutingKind::kOfar;
  p.cfg.ring = RingKind::kPhysical;
  p.pattern = TrafficPattern::adversarial(2);
  p.load = 0.25;
  p.run = RunParams::windows(100, 200);
  return p;
}

TEST(Spec, PointKeyIsStableAcrossCalls) {
  const RunPoint p = base_point();
  const std::string k = point_key(p);
  EXPECT_EQ(k.size(), 32u);
  EXPECT_EQ(k, point_key(p));
  // The canonical text is human-readable and carries the schema version.
  const std::string text = canonical_point(p);
  EXPECT_NE(text.find("v3;kind=steady;seed=3;"), std::string::npos) << text;
  EXPECT_NE(text.find("routing=OFAR"), std::string::npos) << text;
}

TEST(Spec, PointKeyChangesWithEverySemanticField) {
  const RunPoint p = base_point();
  const std::string k = point_key(p);

  RunPoint q = p;
  q.seed = 4;
  q.cfg.seed = 4;
  EXPECT_NE(point_key(q), k);
  q = p;
  q.load = 0.26;
  EXPECT_NE(point_key(q), k);
  q = p;
  q.cfg.vcs_local = q.cfg.vcs_local + 1;
  EXPECT_NE(point_key(q), k);
  q = p;
  q.cfg.thresholds.nonmin_factor = 0.8;
  EXPECT_NE(point_key(q), k);
  q = p;
  q.pattern = TrafficPattern::adversarial(3);
  EXPECT_NE(point_key(q), k);
  q = p;
  q.run.warmup = 101;
  EXPECT_NE(point_key(q), k);
  q = p;
  q.kind = RunKind::kBurst;
  EXPECT_NE(point_key(q), k);
  // sim_shards selects a different (still deterministic) kernel universe,
  // so it is semantic and must miss the cache.
  q = p;
  q.cfg.sim_shards = 4;
  EXPECT_NE(point_key(q), k);
  // shard_group_major moves routers between shard lanes — semantic too.
  q = p;
  q.cfg.shard_group_major = true;
  EXPECT_NE(point_key(q), k);
}

TEST(Spec, PointKeyIgnoresInstrumentationAndLabels) {
  // Audit and telemetry are read-only; labels and grid indices are
  // presentation. None of them may affect the cache key, or cache hits
  // would depend on how the experiment was driven rather than what it was.
  const RunPoint p = base_point();
  const std::string k = point_key(p);

  RunPoint q = p;
  q.run.audit_interval = 512;
  q.run.metrics_interval = 17;
  q.run.metrics_full = true;
  q.run.metrics_label = "curve A";
  // sim_threads is execution policy: any thread count yields bit-identical
  // results for a given sim_shards, so it must hit the same cache entry.
  q.run.sim_threads = 4;
  EXPECT_EQ(point_key(q), k);
  // wiring_table is a debug/reference execution mode with bit-identical
  // results (tested in test_scale.cpp) — it must hit the same cache entry.
  q.cfg.wiring_table = true;
  EXPECT_EQ(point_key(q), k);
  q = p;
  q.mechanism = "renamed";
  q.case_name = "other";
  q.mech_index = 9;
  q.load_index = 9;
  EXPECT_EQ(point_key(q), k);
}

TEST(Spec, ContentDigestIsFixedAlgorithm) {
  // Pinned value: the digest is part of the on-disk cache format. If this
  // changes, kSpecSchemaVersion must be bumped so stale caches invalidate.
  EXPECT_EQ(content_digest(""),
            content_digest(""));  // deterministic
  EXPECT_NE(content_digest("a"), content_digest("b"));
  EXPECT_EQ(content_digest("ofar").size(), 32u);
}

TEST(Spec, AppendDoubleUsesShortestRoundTripForm) {
  std::string s;
  append_double(s, 0.1);
  EXPECT_EQ(s, "0.1");
  s.clear();
  append_double(s, 1.0 / 3.0);
  const double back = std::stod(s);
  EXPECT_EQ(back, 1.0 / 3.0);  // bit-identical round trip
}

}  // namespace
}  // namespace ofar
