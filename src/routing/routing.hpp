// Routing mechanism interface.
//
// A RoutingPolicy is consulted (a) once when a packet is injected — where
// VAL/PB/UGAL fix their Valiant intermediate and PB/UGAL take their
// minimal-vs-nonminimal decision — and (b) every cycle for every packet at
// the head of an input VC (the paper's "routing decision ... revisited every
// cycle as long as the packet remains in the queue head", §V).
//
// route() returns the single output (port, VC) the input unit will request
// from the allocator this cycle, or an invalid choice to wait.
#pragma once

#include <memory>
#include <vector>

#include "common/config.hpp"
#include "common/phase.hpp"
#include "common/types.hpp"
#include "sim/packet.hpp"

namespace ofar {

class Network;
class CreditView;
class CkptWriter;
class CkptReader;

enum class MisrouteKind : u8 { kNone, kLocal, kGlobal };

/// Which rule of the mechanism produced (or blocked) a routing decision.
/// Recorded into RouteProvenance when the caller asks for it (packet
/// tracing, src/trace) — the enum is the "why" behind every hop.
enum class RouteCondition : u8 {
  kNone,           ///< no decision recorded
  kMinimal,        ///< minimal output had room and was requested
  kValiantPhase,   ///< minimal hop toward the Valiant intermediate
  kMisrouteLocal,  ///< OFAR: Q_min >= Th_min, local candidate chosen
  kMisrouteGlobal, ///< OFAR: Q_min >= Th_min, global candidate chosen
  kRingEnter,      ///< escape-ring entry (bubble condition satisfied)
  kRingRide,       ///< in-ring forward step along the ring
  kRingExit,       ///< left the ring (minimal output free, or ejection)
  kWaitBusy,       ///< wanted output busy or short of credits; waiting
  kWaitStarved,    ///< minimal starved and the ring unavailable; waiting
};

const char* to_string(RouteCondition c) noexcept;

/// Decision provenance: the congestion evidence a routing decision was
/// taken on, captured at decision time. route() fills it only when the
/// caller passes a non-null out-param (a traced packet), so the plain
/// hot path never pays for it. All occupancies are fractions in [0, 1].
/// Shard-local: a provenance record belongs to the packet being routed,
/// and a packet is only ever routed by the shard that owns its router.
struct OFAR_SHARD_LOCAL RouteProvenance {
  static constexpr u32 kMaxCandidates = 8;

  RouteCondition condition = RouteCondition::kNone;
  u8 num_candidates = 0;       ///< eligible non-minimal candidates found
  PortId min_port = kInvalidPort;  ///< recomputed minimal output this hop
  float q_min = 0.0f;          ///< occupancy of the minimal output
  float threshold = 0.0f;      ///< non-minimal admission threshold in force
  float chosen_occ = 0.0f;     ///< occupancy of the chosen output
  /// First kMaxCandidates eligible candidate ports (the set the random
  /// pick drew from); num_candidates may exceed the stored prefix.
  PortId candidates[kMaxCandidates] = {
      kInvalidPort, kInvalidPort, kInvalidPort, kInvalidPort,
      kInvalidPort, kInvalidPort, kInvalidPort, kInvalidPort};

  void set_candidates(const std::vector<PortId>& ports) {
    num_candidates = static_cast<u8>(
        ports.size() < 255 ? ports.size() : 255);
    const u32 n = num_candidates < kMaxCandidates ? num_candidates
                                                  : kMaxCandidates;
    for (u32 i = 0; i < n; ++i) candidates[i] = ports[i];
  }
};

struct RouteChoice {
  PortId out_port = kInvalidPort;
  VcId out_vc = 0;
  MisrouteKind misroute = MisrouteKind::kNone;
  bool enter_ring = false;  ///< requests the escape ring (bubble condition)
  bool exit_ring = false;   ///< head is in the ring and leaves it here
  bool valid = false;

  static RouteChoice none() noexcept { return {}; }
  static RouteChoice to(PortId port, VcId vc) noexcept {
    RouteChoice c;
    c.out_port = port;
    c.out_vc = vc;
    c.valid = true;
    return c;
  }
};

/// Everything a per-cycle routing decision needs, bundled into one struct
/// so new inputs (like the memoized credit view) stop rippling through
/// every policy override's signature. Built fresh per head packet by the
/// allocation scan; `view` is already bound to router `at` when route()
/// runs, so policies query credits/occupancy through it (same values as
/// the Network::base_* queries, computed once per router per cycle).
struct RouteContext {
  Network& net;
  CreditView& view;  ///< memoized per-(router, cycle) credit snapshot
  RouterId at;
  PortId in_port;
  VcId in_vc;
  Packet& pkt;
  /// Shard lane of the parallel allocation phase (DESIGN.md §10). Policies
  /// that draw randomness inside route() must draw from the per-lane RNG so
  /// concurrent shards never share a stream; lane 0 is the sequential one.
  u32 lane;
  /// When non-null, the policy records the evidence behind the decision
  /// (packet tracing); filling it must not change the decision or consume
  /// extra RNG draws.
  RouteProvenance* prov = nullptr;
};

class RoutingPolicy {
 public:
  virtual ~RoutingPolicy() = default;

  virtual const char* name() const noexcept = 0;

  /// Called when `pkt` enters the injection queue of router `at`.
  /// Injection is always a serial phase: on_inject may freely draw from the
  /// policy's sequential RNG stream and mutate policy state.
  OFAR_SERIAL_ONLY virtual void on_inject(Network& net, Packet& pkt,
                                          RouterId at);

  /// Desired output for the head packet of (ctx.in_port, ctx.in_vc) at
  /// router ctx.at. Must only return outputs that are grantable right now:
  /// output port not busy and enough credits on the chosen VC (the whole
  /// packet for VCT, one extra packet — the bubble — when enter_ring is
  /// set). Policies must not mutate shared state from route(); randomness
  /// comes from the per-lane RNG selected by ctx.lane (see RouteContext).
  OFAR_PARALLEL_PHASE virtual RouteChoice route(RouteContext& ctx) = 0;

  /// True when a route() call that fails (returns RouteChoice::none()) is
  /// guaranteed to draw no RNG and leave the packet untouched. The
  /// saturated kernel relies on this to skip a router's whole request scan
  /// once it knows no output could be granted — sound only if the skipped
  /// calls would have been observation-free. Override to return false for
  /// policies that commit side effects before checking output availability
  /// (PAR re-draws its UGAL comparison and rewrites the packet's Valiant
  /// state even when the chosen port then turns out blocked).
  virtual bool blocked_route_is_pure() const noexcept { return true; }

  /// Announces the number of route() lanes the kernel will use (the shard
  /// count). Called once at Network construction, before any traffic.
  /// Policies without route()-time randomness can ignore it.
  OFAR_SERIAL_ONLY virtual void bind_lanes(u32 lanes);

  /// Per-cycle global update hook (PB's intra-group broadcast). Always
  /// called serially, between event delivery and the transfer phase.
  OFAR_SERIAL_ONLY virtual void tick(Network& net);

  /// Checkpoint hooks (core/checkpoint.hpp): serialize the policy's mutable
  /// state — RNG streams, broadcast tables — so a restored run replays the
  /// exact draw sequence. load_state must consume exactly what save_state
  /// produced; the defaults write/read nothing (stateless policies).
  OFAR_SERIAL_ONLY virtual void save_state(CkptWriter& w) const;
  OFAR_SERIAL_ONLY virtual void load_state(CkptReader& r);
};

/// Builds the policy selected by cfg.routing (OFAR variants live in
/// src/core, baselines in src/routing).
std::unique_ptr<RoutingPolicy> make_policy(const SimConfig& cfg);

// ---- shared helpers used by several mechanisms ----

/// Output port of `cur` on the minimal path toward router `dst` (`cur` !=
/// `dst`): the ejection port is never returned here — callers handle
/// cur == dst themselves.
PortId min_port_to_router(const Network& net, RouterId cur, RouterId dst);

/// Output port of `cur` on the minimal path toward group `g` (`cur` must be
/// outside `g`): the global port if `cur` carries the link, else the local
/// port toward the carrier.
PortId min_port_to_group(const Network& net, RouterId cur, GroupId g);

/// Hop-ordered VC for a packet about to traverse `port` (VC-ordered
/// mechanisms only): local hops use VC = #local hops taken, global hops use
/// VC = #global hops taken.
VcId ordered_vc(const Network& net, RouterId at, PortId port,
                const Packet& pkt);

/// Minimal-path next port for a Valiant-style packet: toward the
/// intermediate (group or router) until reached, then toward dst.
/// Marks the Valiant phase done when the intermediate is reached.
/// Returns the ejection port when the packet is at its destination router.
PortId valiant_next_port(const Network& net, RouterId at, Packet& pkt);

}  // namespace ofar
