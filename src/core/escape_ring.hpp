// Escape-subnetwork control: bubble flow control on the Hamiltonian ring
// (paper §IV-C; Carrión et al. bubble flow control).
//
// Rules implemented here:
//  - a packet moving ring->ring needs space for one whole packet in the
//    next ring buffer (plain VCT admission);
//  - a packet *entering* the ring from the canonical network needs space
//    for TWO packets (its own plus the bubble that keeps the ring live);
//  - a packet in the ring leaves as soon as its minimal output is free
//    (checked by the caller), but only `max_ring_exits` times — after that
//    it rides the ring to its destination router (livelock guard);
//  - the ring is strictly a last resort: entry is requested only when the
//    minimal path is unavailable and no misroute candidate exists.
#pragma once

#include "common/config.hpp"
#include "common/phase.hpp"
#include "routing/routing.hpp"

namespace ofar {

class EscapeRingControl {
 public:
  explicit EscapeRingControl(const SimConfig& cfg)
      : packet_size_(cfg.packet_size), max_exits_(cfg.max_ring_exits) {}

  u32 max_exits() const noexcept { return max_exits_; }

  /// Choice for a head packet that is currently riding the ring at router
  /// ctx.at: eject at the destination router, exit to the minimal path when
  /// free and exits remain, otherwise continue along the ring (bubble
  /// permitting) or wait. ctx.prov, when non-null, records which ring rule
  /// fired (kRingExit / kRingRide / kWaitBusy).
  OFAR_PARALLEL_PHASE RouteChoice ride(RouteContext& ctx) const;

  /// Ring-entry choice for a canonical packet at router ctx.at; invalid
  /// when the bubble condition fails or the ring output is busy. ctx.prov
  /// records kRingEnter on success, kWaitStarved when the bubble denies
  /// entry.
  OFAR_PARALLEL_PHASE RouteChoice enter(RouteContext& ctx) const;

 private:
  /// Ring-output request with `need` phits of escape-VC credit.
  RouteChoice ring_step(Network& net, RouterId at, u32 need) const;

  u32 packet_size_;
  u32 max_exits_;
};

}  // namespace ofar
