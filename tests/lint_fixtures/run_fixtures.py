#!/usr/bin/env python3
"""Fixture harness for tools/ofar_lint.

Each subdirectory is a miniature repository (a `src/` tree) seeded with
known-good and known-bad code. Offending lines carry an
`// ... expect: <rule>` marker; the harness runs the analyzer over every
fixture and requires the finding set to equal the marker set exactly —
a missed violation AND a false positive both fail the run.

Run:  python3 tests/lint_fixtures/run_fixtures.py [case ...]
Exit: 0 when every fixture matches.
"""

import os
import re
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(os.path.dirname(HERE))
sys.path.insert(0, os.path.join(REPO, "tools"))

from ofar_lint.cli import collect_files, load_program  # noqa: E402
from ofar_lint.rules import analyze  # noqa: E402

EXPECT_RE = re.compile(r"expect:\s*(?P<rules>[\w-]+(?:\s*,\s*[\w-]+)*)")


def run_case(case):
    root = os.path.join(HERE, case)
    files = collect_files(root)
    if not files:
        return [f"{case}: no sources under {root}/src"]
    expected = set()
    for rel in files:
        with open(os.path.join(root, rel), encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, start=1):
                m = EXPECT_RE.search(line)
                if m:
                    for rule in m.group("rules").split(","):
                        expected.add((rel, lineno, rule.strip()))
    program, _engine = load_program(root, files, "builtin")
    findings = analyze(program)
    got = {(f.file, f.line, f.rule) for f in findings}
    errors = []
    for rel, lineno, rule in sorted(expected - got):
        errors.append(f"{case}: MISSED  {rel}:{lineno} [{rule}]")
    for rel, lineno, rule in sorted(got - expected):
        errors.append(f"{case}: SPURIOUS {rel}:{lineno} [{rule}]")
    return errors


def main(argv):
    cases = argv or sorted(
        d for d in os.listdir(HERE)
        if os.path.isdir(os.path.join(HERE, d, "src")))
    if not cases:
        print("run_fixtures: no fixture cases found", file=sys.stderr)
        return 2
    failures = 0
    for case in cases:
        errors = run_case(case)
        if errors:
            failures += 1
            for e in errors:
                print(e)
        else:
            print(f"{case}: OK")
    if failures:
        print(f"\nrun_fixtures: {failures}/{len(cases)} fixtures failed")
        return 1
    print(f"\nrun_fixtures: all {len(cases)} fixtures passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
