// Microbenchmarks (google-benchmark) for the simulator's building blocks:
// topology algebra, Hamiltonian-ring construction, network construction,
// and the end-to-end cost of one simulated cycle at several loads. These
// guard the simulator's own performance (a single h=6 figure run simulates
// hundreds of millions of router-cycles).
#include <benchmark/benchmark.h>

#include <memory>

#include "sim/network.hpp"
#include "topology/dragonfly.hpp"
#include "topology/hamiltonian.hpp"
#include "traffic/generator.hpp"

namespace {

using namespace ofar;

void BM_TopologyMinNextPort(benchmark::State& state) {
  Dragonfly topo(static_cast<u32>(state.range(0)));
  u64 x = 12345;
  for (auto _ : state) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    const RouterId a = static_cast<RouterId>((x >> 16) % topo.routers());
    const RouterId b = static_cast<RouterId>((x >> 40) % topo.routers());
    if (a != b) benchmark::DoNotOptimize(topo.min_next_port(a, b));
  }
}
BENCHMARK(BM_TopologyMinNextPort)->Arg(4)->Arg(6)->Arg(8);

void BM_TopologyGlobalPeer(benchmark::State& state) {
  Dragonfly topo(static_cast<u32>(state.range(0)));
  u64 x = 99;
  for (auto _ : state) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    const RouterId r = static_cast<RouterId>((x >> 16) % topo.routers());
    const PortId p = static_cast<PortId>(topo.first_global_port() +
                                         (x >> 48) % topo.h());
    benchmark::DoNotOptimize(topo.global_peer(r, p));
  }
}
BENCHMARK(BM_TopologyGlobalPeer)->Arg(6);

void BM_HamiltonianConstruction(benchmark::State& state) {
  Dragonfly topo(static_cast<u32>(state.range(0)));
  for (auto _ : state) {
    HamiltonianRing ring(topo);
    benchmark::DoNotOptimize(ring.order().data());
  }
}
BENCHMARK(BM_HamiltonianConstruction)->Arg(4)->Arg(6);

void BM_NetworkConstruction(benchmark::State& state) {
  SimConfig cfg;
  cfg.h = static_cast<u32>(state.range(0));
  cfg.routing = RoutingKind::kOfar;
  for (auto _ : state) {
    Network net(cfg);
    benchmark::DoNotOptimize(net.num_channels());
  }
}
BENCHMARK(BM_NetworkConstruction)->Unit(benchmark::kMillisecond)->Arg(4);

/// One simulated cycle, pre-warmed network: range(0) = h,
/// range(1) = offered load in percent of a phit/(node*cycle).
void BM_NetworkStep(benchmark::State& state) {
  SimConfig cfg;
  cfg.h = static_cast<u32>(state.range(0));
  cfg.routing = RoutingKind::kOfar;
  const double load = static_cast<double>(state.range(1)) / 100.0;
  Network net(cfg);
  net.set_traffic(std::make_unique<BernoulliSource>(
      TrafficPattern::uniform(), load, 7));
  net.run(3000);  // warm-up outside the timed region
  for (auto _ : state) net.step();
  state.counters["delivered_pkts/s"] = benchmark::Counter(
      static_cast<double>(net.stats().delivered_packets()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_NetworkStep)
    ->Unit(benchmark::kMicrosecond)
    ->Args({4, 10})
    ->Args({4, 30})
    ->Args({4, 50});

void BM_NetworkStepAdversarial(benchmark::State& state) {
  SimConfig cfg;
  cfg.h = static_cast<u32>(state.range(0));
  cfg.routing = RoutingKind::kOfar;
  Network net(cfg);
  net.set_traffic(std::make_unique<BernoulliSource>(
      TrafficPattern::adversarial(cfg.h), 0.25, 7));
  net.run(3000);
  for (auto _ : state) net.step();
}
BENCHMARK(BM_NetworkStepAdversarial)->Unit(benchmark::kMicrosecond)->Arg(4);

}  // namespace

BENCHMARK_MAIN();
