// Per-virtual-channel input FIFO with cut-through arrival tracking.
//
// Space accounting is done on the *upstream* side via credits (see
// OutputPort); this class only tracks which packets are queued and how many
// of their phits have physically arrived, so a transfer can start as soon as
// the head phit is present (virtual cut-through) and never underruns.
//
// Storage is a flat power-of-two ring buffer (no heap traffic per packet):
// this FIFO sits on the per-cycle hot path of every router. The ring either
// lives in the owning shard's arena (the simulator: all FIFO rings of a
// shard share one contiguous Entry block — see sim/flat_state.hpp) or is
// owned by the FIFO itself (standalone construction in tests/fixtures).
#pragma once

#include <memory>

#include "common/check.hpp"
#include "common/phase.hpp"
#include "common/types.hpp"

namespace ofar {

class CheckpointIO;

// Shard-local: fifos live inside Router input/output units; the owning
// shard is the only writer during parallel phases (pushes from the
// serial delivery commit target the destination router's shard state).
class OFAR_SHARD_LOCAL VcFifo {
 public:
  /// One queued packet of the ring. `arrived`/`sent` are u16: the FIFO
  /// capacity is bounded to 0xFFFF phits at construction, so per-packet
  /// phit counts always fit (a packet never exceeds its FIFO's capacity).
  struct Entry {
    PacketId packet;
    u16 arrived;  // phits physically present or already forwarded
    u16 sent;     // phits forwarded downstream
  };

  /// Ring slots needed for a FIFO of `capacity_phits`: worst case every
  /// queued packet is a single phit, so capacity+1 entries always suffice;
  /// rounded up to a power of two for cheap masking.
  static u32 slots_for(u32 capacity_phits) noexcept {
    u32 slots = 2;
    while (slots < capacity_phits + 1) slots <<= 1;
    return slots;
  }

  /// Packet-granularity sizing: with virtual cut-through credit accounting
  /// every resident entry except the (possibly partially drained) head holds
  /// a whole `min_packet_phits`-phit packet's worth of upstream credits, so
  /// at most floor((capacity-1)/S) + 1 entries can coexist. At the paper's
  /// S=8 this shrinks the 256-phit global FIFO ring from 512 slots to 32 —
  /// the dominant per-router allocation at h=16 scale. A mixed-size workload
  /// must pass its *smallest* packet size; OFAR_DCHECK(num_packets() <=
  /// mask_) in the push paths backstops the bound in checked builds.
  static u32 slots_for(u32 capacity_phits, u32 min_packet_phits) noexcept {
    const u32 s = min_packet_phits == 0 ? 1 : min_packet_phits;
    const u32 entries =
        capacity_phits == 0 ? 1 : (capacity_phits - 1) / s + 1;
    u32 slots = 2;
    while (slots < entries) slots <<= 1;
    return slots;
  }

  VcFifo() = default;

  /// Owning mode (tests, standalone fixtures): allocates its own ring.
  explicit VcFifo(u32 capacity_phits)
      : VcFifo(capacity_phits, nullptr) {
    owned_ = std::make_unique<Entry[]>(slots_for(capacity_phits));
    entries_ = owned_.get();
  }

  /// Arena mode: `slots` must point at slots_for(capacity_phits) zeroed
  /// entries that outlive this FIFO (the shard arena guarantees both).
  VcFifo(u32 capacity_phits, Entry* slots)
      : VcFifo(capacity_phits, slots, slots_for(capacity_phits)) {}

  /// Arena mode with an explicit ring size (packet-granularity sizing):
  /// `slots` must point at `slot_count` zeroed entries (power of two) that
  /// outlive this FIFO.
  VcFifo(u32 capacity_phits, Entry* slots, u32 slot_count)
      : capacity_(capacity_phits), mask_(slot_count - 1), entries_(slots) {
    OFAR_DCHECK(capacity_phits <= 0xFFFFu);  // Entry::arrived/sent are u16
    OFAR_DCHECK(slot_count >= 2 && (slot_count & (slot_count - 1)) == 0);
  }

  VcFifo(VcFifo&&) = default;
  VcFifo& operator=(VcFifo&&) = default;
  // No copies: an arena-backed FIFO cannot duplicate its ring, and the old
  // copy-only-when-empty semantics surprised callers. Use clone_shape().
  VcFifo(const VcFifo&) = delete;
  VcFifo& operator=(const VcFifo&) = delete;

  /// Explicit replacement for the removed copy operations: a fresh, empty,
  /// self-owning FIFO with the same capacity (contents are never copied).
  VcFifo clone_shape() const { return VcFifo(capacity_); }

  u32 capacity() const noexcept { return capacity_; }
  /// Ring storage this FIFO indexes into (arena slice or owned block).
  const Entry* slots() const noexcept { return entries_; }
  bool empty() const noexcept { return head_ == tail_; }
  u32 num_packets() const noexcept { return tail_ - head_; }

  /// Phits physically stored right now (arrived and not yet forwarded).
  u32 stored_phits() const noexcept { return stored_; }

  PacketId head() const noexcept {
    OFAR_DCHECK(!empty());
    return entries_[head_ & mask_].packet;
  }
  /// Phits of the head packet available for forwarding.
  u32 head_arrived() const noexcept {
    OFAR_DCHECK(!empty());
    return entries_[head_ & mask_].arrived;
  }
  u32 head_sent() const noexcept {
    OFAR_DCHECK(!empty());
    return entries_[head_ & mask_].sent;
  }

  /// A new packet's head phit arrived (tail entry created).
  void push_packet(PacketId id) {
    OFAR_DCHECK(num_packets() <= mask_);
    entries_[tail_ & mask_] = {id, 1, 0};
    ++tail_;
    ++stored_;
  }
  /// A continuation phit of the most recent packet arrived.
  void push_phit() {
    OFAR_DCHECK(!empty());
    ++entries_[(tail_ - 1) & mask_].arrived;
    ++stored_;
  }
  /// Inserts a whole packet at once (injection queues: the node places the
  /// full packet; space was checked by the caller against this FIFO).
  void push_whole_packet(PacketId id, u32 size) {
    OFAR_DCHECK(num_packets() <= mask_);
    // capacity_ <= 0xFFFF (checked at construction), so a size that fits
    // the buffer also fits Entry::arrived — the cast below cannot truncate.
    OFAR_DCHECK(size <= capacity_);
    entries_[tail_ & mask_] = {id, static_cast<u16>(size), 0};
    ++tail_;
    stored_ += size;
  }

  /// One phit of the head packet leaves through the crossbar.
  /// Returns true when that was the tail phit (entry popped).
  bool pop_phit(u32 packet_size) {
    OFAR_DCHECK(!empty());
    Entry& e = entries_[head_ & mask_];
    OFAR_DCHECK(e.sent < e.arrived);  // cut-through never underruns
    ++e.sent;
    --stored_;
    if (e.sent == packet_size) {
      ++head_;
      return true;
    }
    return false;
  }

 private:
  friend class CheckpointIO;  // serializes head_/tail_/stored_ + live entries

  u32 capacity_ = 0;
  u32 stored_ = 0;
  // head_/tail_ are deliberately u32 despite counting every packet that ever
  // transited the FIFO: all uses are either the difference tail_ - head_
  // (bounded by the ring size) or masked indexing, both of which are exact
  // under u32 wraparound. A u64 here would double the control-word footprint
  // of every VC at h=16 scale for no behavioural difference.
  u32 head_ = 0;  // monotonically increasing; index via & mask_
  u32 tail_ = 0;
  u32 mask_ = 0;
  Entry* entries_ = nullptr;          // ring (arena slice or owned_)
  std::unique_ptr<Entry[]> owned_;    // set only in owning mode
};

static_assert(sizeof(VcFifo::Entry) == 8,
              "ring slots are the largest per-VC allocation at scale; "
              "keep Entry at one machine word");

}  // namespace ofar
