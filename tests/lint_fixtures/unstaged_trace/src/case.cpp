// Fixture: invoking the serial-only trace callback from a parallel phase
// must be flagged (events belong in ShardState staging); the serial
// commit path may fire it directly.

#include <functional>

struct TraceEvent {
  int id;
};

struct Kernel {
  OFAR_PARALLEL_PHASE void phase();
  OFAR_SERIAL_ONLY void commit();
  OFAR_SERIAL_ONLY std::function<void(const TraceEvent&)> tracer_;
};

void Kernel::phase() {
  if (tracer_) tracer_(TraceEvent{1});  // expect: unstaged-trace
}

void Kernel::commit() {
  if (tracer_) tracer_(TraceEvent{2});  // fine: serial emission
}
