"""Dependency-free semantic frontend.

A pragmatic recursive-descent pass over the token stream (lexer.py) that
recovers exactly the structure rules.py needs — it is NOT a C++ parser:

  * namespaces / class definitions (bases, member + method annotations);
  * typedef / using aliases (for unordered-container and clock resolution
    through names, where the regex lint is provably blind);
  * function definitions with tokenized bodies, parameter names/types and
    best-effort local variable types;
  * `if constexpr (kStaged)` / `(!kStaged)` branch classification: the
    branch that only instantiates into the K = 1 sequential kernel is
    marked serial-excluded so the parallel-phase rules skip it.

Anything it cannot classify it skips — unknown constructs degrade into
missed edges (possible false negatives), never into crashes. The libclang
frontend (frontend_clang.py) trades this robustness for exactness when the
bindings are available.
"""

import os

from . import lexer
from .model import (MACRO_TO_ANNOTATION, ClassInfo, FunctionDef, Program,
                    Token)

_KEYWORDS = {
    "if", "for", "while", "switch", "return", "else", "do", "case",
    "break", "continue", "goto", "new", "delete", "sizeof", "static_cast",
    "dynamic_cast", "reinterpret_cast", "const_cast", "throw", "co_return",
    "template", "typename", "using", "namespace", "public", "private",
    "protected", "friend", "static", "constexpr", "const", "inline",
    "virtual", "override", "final", "noexcept", "explicit", "operator",
    "enum", "class", "struct", "union", "auto", "void", "bool", "char",
    "short", "int", "long", "float", "double", "unsigned", "signed",
    "true", "false", "nullptr", "this", "default", "mutable", "extern",
    "alignas",
}

_ACCESS = {"public", "private", "protected"}


def _strip_leading(toks):
    """Drops access labels, template<> heads and leading [[attributes]]."""
    i = 0
    while i < len(toks):
        t = toks[i][0]
        if t in _ACCESS and i + 1 < len(toks) and toks[i + 1][0] == ":":
            i += 2
            continue
        if t == "template" and i + 1 < len(toks) and toks[i + 1][0] == "<":
            depth = 0
            j = i + 1
            while j < len(toks):
                if toks[j][0] == "<":
                    depth += 1
                elif toks[j][0] == ">":
                    depth -= 1
                    if depth == 0:
                        break
                elif toks[j][0] == ">>":
                    depth -= 2
                    if depth <= 0:
                        break
                j += 1
            i = j + 1
            continue
        if t == "[" and i + 1 < len(toks) and toks[i + 1][0] == "[":
            j = i + 2
            depth = 2
            while j < len(toks) and depth > 0:
                if toks[j][0] == "[":
                    depth += 1
                elif toks[j][0] == "]":
                    depth -= 1
                j += 1
            i = j
            continue
        break
    return toks[i:]


def _find_annotation(toks):
    for t, _ in toks:
        if t in MACRO_TO_ANNOTATION:
            return MACRO_TO_ANNOTATION[t]
    return ""


def _type_text(toks):
    return " ".join(t for t, _ in toks
                    if t not in MACRO_TO_ANNOTATION and t not in
                    ("const", "constexpr", "static", "mutable", "inline"))


_DECL_QUALS = {"const", "noexcept", "override", "final", "=", "0", "&",
               "&&", "default", "delete"}


def _is_method_decl(names):
    """Distinguishes a method declaration from a member whose type merely
    contains parentheses (`std::function<void(const Ev&)> cb_;`): a method
    decl ends with `)` once trailing qualifiers are stripped; a member
    decl ends with its name (or an array extent)."""
    if "(" not in names:
        return False
    k = len(names) - 1
    while k >= 0 and names[k] in _DECL_QUALS:
        k -= 1
    return k >= 0 and names[k] == ")"


class _FileParser:
    def __init__(self, program, relpath):
        self.program = program
        self.relpath = relpath

    # -- declaration scanning --------------------------------------------

    def parse(self, toks):
        self._parse_scope(toks, 0, len(toks), cls=None)

    def _parse_scope(self, toks, start, end, cls):
        i = start
        while i < end:
            t = toks[i][0]
            if t in (";", "}"):
                i += 1
                continue
            decl, j, kind = self._scan_decl(toks, i, end)
            if kind == "{":
                close = lexer.match_brace(toks, j)
                self._handle_braced(decl, toks, j, close, cls)
                i = close + 1
            else:
                self._handle_statement(decl, cls)
                i = j + 1

    def _scan_decl(self, toks, i, end):
        """Collects declaration tokens from i until an unparenthesised ';'
        or body-opening '{'; braced initializers after '=' are consumed
        into the declaration."""
        decl = []
        paren = 0
        seen_assign = False
        j = i
        while j < end:
            t = toks[j][0]
            if t in ("(", "["):
                paren += 1
            elif t in (")", "]"):
                paren -= 1
            elif t == "=" and paren == 0:
                seen_assign = True
            if t == ";" and paren == 0:
                return decl, j, ";"
            if t == "{" and paren == 0:
                if seen_assign:
                    close = lexer.match_brace(toks, j)
                    decl.extend(toks[j:close + 1])
                    j = close + 1
                    seen_assign = False
                    continue
                return decl, j, "{"
            decl.append(toks[j])
            j += 1
        return decl, end, ";"

    # -- handlers --------------------------------------------------------

    def _handle_braced(self, decl, toks, open_brace, close, cls):
        d = _strip_leading(decl)
        if not d:
            return
        head = d[0][0]
        if head == "namespace":
            self._parse_scope(toks, open_brace + 1, close, cls=None)
            return
        if head == "extern":
            self._parse_scope(toks, open_brace + 1, close, cls=cls)
            return
        if head == "enum":
            return
        if head in ("class", "struct", "union") and "(" not in \
                [x[0] for x in d]:
            self._handle_class(d, toks, open_brace, close, outer=cls)
            return
        # Inline `struct X { ... } member_;`? (handled as class above; the
        # trailing member name after '}' is lost — acceptable.)
        if "(" in [x[0] for x in d]:
            self._handle_function(d, toks, open_brace, close, cls)

    def _handle_class(self, d, toks, open_brace, close, outer):
        # d: class/struct [macro] Name [final] [: bases]
        annotation = _find_annotation(d)
        name = None
        k = 1
        names = [x[0] for x in d]
        while k < len(names):
            t = names[k]
            if t in MACRO_TO_ANNOTATION or t == "alignas":
                k += 1
                continue
            if t == "[":  # attribute already stripped at head only
                k += 1
                continue
            if t[0].isalpha() or t[0] == "_":
                name = t
                break
            k += 1
        if name is None:
            return
        bases = []
        if ":" in names[k:]:
            c = k + names[k:].index(":")
            base_toks = names[c + 1:]
            depth = 0
            cur = []
            for t in base_toks:
                if t == "<":
                    depth += 1
                elif t in (">", ">>"):
                    depth -= 2 if t == ">>" else 1
                elif t == "," and depth <= 0:
                    if cur:
                        bases.append(cur[-1])
                    cur = []
                    continue
                if depth <= 0 and (t[0].isalpha() or t[0] == "_") and \
                        t not in ("public", "private", "protected",
                                  "virtual", "final"):
                    cur.append(t)
            if cur:
                bases.append(cur[-1])
        ci = self.program.classes.setdefault(
            name, ClassInfo(name=name, file=self.relpath,
                            line=d[0][1]))
        ci.bases = bases or ci.bases
        if annotation:
            ci.annotation = annotation
        self._parse_class_body(toks, open_brace + 1, close, ci)

    def _parse_class_body(self, toks, start, end, ci):
        i = start
        while i < end:
            t = toks[i][0]
            if t in (";", "}"):
                i += 1
                continue
            decl, j, kind = self._scan_decl(toks, i, end)
            d = _strip_leading(decl)
            names = [x[0] for x in d]
            if kind == "{":
                close = lexer.match_brace(toks, j)
                if d and d[0][0] in ("class", "struct", "union") and \
                        "(" not in names:
                    self._handle_class(d, toks, j, close, outer=ci)
                elif d and d[0][0] == "enum":
                    pass
                elif _is_method_decl(names):
                    self._handle_function(d, toks, j, close, ci)
                elif d:
                    # Member with braced init (type may contain parens).
                    self._record_member(d, ci)
                i = close + 1
                continue
            # Statement declaration at class scope.
            if d:
                if names[0] == "using" and "=" in names:
                    self._record_alias_using(d)
                elif names[0] == "typedef":
                    self._record_alias_typedef(d)
                elif names[0] == "friend":
                    pass
                elif _is_method_decl(names):
                    self._record_method_decl(d, ci)
                else:
                    self._record_member(d, ci)
            i = j + 1

    def _record_method_decl(self, d, ci):
        annotation = _find_annotation(d)
        names = [x[0] for x in d]
        try:
            p = names.index("(")
        except ValueError:
            return
        if p == 0:
            return
        name = names[p - 1]
        if not (name[0].isalpha() or name[0] == "_") or name == "operator":
            return
        if annotation:
            ci.methods[name] = annotation

    def _record_member(self, d, ci):
        annotation = _find_annotation(d)
        names = [x[0] for x in d]
        # Name: identifier before '=', '{' (init) or end.
        stop = len(names)
        for marker in ("=", "{"):
            if marker in names:
                stop = min(stop, names.index(marker))
        k = stop - 1
        # skip trailing array extents `name[4]`
        while k >= 0 and names[k] in ("]", "["):
            k -= 1
        while k >= 0 and not (names[k][0].isalpha() or names[k][0] == "_"):
            k -= 1
        if k <= 0:
            return
        name = names[k]
        if name in _KEYWORDS or name in MACRO_TO_ANNOTATION:
            return
        ci.members[name] = annotation
        ci.member_types[name] = _type_text(d[:k])

    # -- functions -------------------------------------------------------

    def _handle_function(self, d, toks, open_brace, close, cls):
        annotation = _find_annotation(d)
        names = [x[0] for x in d]
        # First top-level '(' delimits the declarator.
        try:
            p = names.index("(")
        except ValueError:
            return
        if p == 0:
            return
        name = names[p - 1]
        if not (name[0].isalpha() or name[0] == "_"):
            return
        if name in ("operator",) or name in _KEYWORDS - {"operator"}:
            return
        owner = cls.name if cls is not None else ""
        # Out-of-line definitions: `Type Cls::name(...)`.
        if p >= 3 and names[p - 2] == "::":
            owner = names[p - 3]
        qual = f"{owner}::{name}" if owner else name
        fn = FunctionDef(name=name, qualname=qual, cls=owner,
                         annotation=annotation, file=self.relpath,
                         line=d[0][1])
        # Parameters: tokens of the first paren group in d.
        depth = 0
        group = []
        for tk in d[p:]:
            if tk[0] == "(":
                depth += 1
                if depth == 1:
                    continue
            elif tk[0] == ")":
                depth -= 1
                if depth == 0:
                    break
            if depth >= 1:
                group.append(tk)
        self._parse_params(group, fn)
        body = [Token(text=t, line=ln) for t, ln in toks[open_brace + 1:
                                                        close]]
        _mark_kstaged(body)
        fn.body = body
        _collect_local_types(fn)
        self.program.functions.setdefault(qual, []).append(fn)

    def _parse_params(self, group, fn):
        depth = 0
        cur = []
        parts = []
        for t, ln in group:
            if t in ("<", "(", "["):
                depth += 1
            elif t in (">", ")", "]"):
                depth -= 1
            elif t == ">>":
                depth -= 2
            elif t == "," and depth <= 0:
                parts.append(cur)
                cur = []
                continue
            cur.append(t)
        if cur:
            parts.append(cur)
        for part in parts:
            if not part or part == ["void"]:
                continue
            stop = part.index("=") if "=" in part else len(part)
            k = stop - 1
            while k >= 0 and not (part[k][0].isalpha() or part[k][0] == "_"):
                k -= 1
            if k < 0:
                continue
            name = part[k]
            if name in _KEYWORDS:
                continue
            fn.params.append(name)
            fn.param_types[name] = " ".join(part[:k])

    # -- statements at namespace scope -----------------------------------

    def _handle_statement(self, decl, cls):
        d = _strip_leading(decl)
        if not d:
            return
        names = [x[0] for x in d]
        if names[0] == "using":
            if "=" in names and "namespace" not in names:
                self._record_alias_using(d)
            return
        if names[0] == "typedef":
            self._record_alias_typedef(d)
            return
        if "(" in names:
            # Free-function declaration carrying an annotation macro
            # (e.g. evaluate_ugal_paths in ugal.hpp).
            annotation = _find_annotation(d)
            if annotation:
                p = names.index("(")
                if p >= 1:
                    name = names[p - 1]
                    if name[0].isalpha() or name[0] == "_":
                        self.program.free_fn_annotations[name] = annotation

    def _record_alias_using(self, d):
        names = [x[0] for x in d]
        try:
            eq = names.index("=")
        except ValueError:
            return
        if eq < 2:
            return
        alias = names[eq - 1]
        target = " ".join(names[eq + 1:])
        self.program.aliases[alias] = target

    def _record_alias_typedef(self, d):
        names = [x[0] for x in d]
        if len(names) < 3:
            return
        alias = names[-1]
        k = len(names) - 1
        while k >= 0 and not (names[k][0].isalpha() or names[k][0] == "_"):
            k -= 1
        if k <= 0:
            return
        alias = names[k]
        target = " ".join(names[1:k])
        self.program.aliases[alias] = target


def _mark_kstaged(body):
    """Marks `if constexpr` branches that only instantiate into the K = 1
    sequential kernel as serial-excluded."""
    texts = [t.text for t in body]
    i = 0
    n = len(body)
    while i < n - 3:
        if texts[i] == "if" and texts[i + 1] == "constexpr" and \
                texts[i + 2] == "(":
            close = _match(texts, i + 2, "(", ")")
            cond = texts[i + 3:close]
            then_excluded = None
            if cond == ["kStaged"]:
                then_excluded = False
            elif cond == ["!", "kStaged"]:
                then_excluded = True
            if then_excluded is not None:
                then_start = close + 1
                then_end = _stmt_end(texts, then_start)
                if then_excluded:
                    for k in range(then_start, then_end + 1):
                        body[k].serial_excluded = True
                j = then_end + 1
                if j < n and texts[j] == "else":
                    else_start = j + 1
                    else_end = _stmt_end(texts, else_start)
                    if not then_excluded:
                        for k in range(else_start, else_end + 1):
                            body[k].serial_excluded = True
            i = close + 1
            continue
        i += 1


def _match(texts, open_index, op, cl):
    depth = 0
    for i in range(open_index, len(texts)):
        if texts[i] == op:
            depth += 1
        elif texts[i] == cl:
            depth -= 1
            if depth == 0:
                return i
    return len(texts) - 1


def _stmt_end(texts, start):
    """Index of the last token of the statement starting at `start` (a
    braced block or a single statement up to ';')."""
    if start >= len(texts):
        return len(texts) - 1
    if texts[start] == "{":
        return _match(texts, start, "{", "}")
    depth = 0
    for i in range(start, len(texts)):
        t = texts[i]
        if t in ("(", "{", "["):
            depth += 1
        elif t in (")", "}", "]"):
            depth -= 1
        elif t == ";" and depth == 0:
            return i
    return len(texts) - 1


def _collect_local_types(fn):
    """Best-effort `Type name` local declarations, so receiver types of
    locals resolve (e.g. `Router& r = routers_[x]` -> Router)."""
    texts = [t.text for t in fn.body]
    n = len(texts)
    i = 0
    while i < n - 1:
        t = texts[i]
        if not (t and (t[0].isalpha() or t[0] == "_")) or t in _KEYWORDS \
                and t not in ("auto", "const"):
            i += 1
            continue
        # Optionally `const`, then a type chain Id(::Id)*(<...>)?, then
        # (&|*)*, then the declared name, then one of = ; { ( ,
        j = i
        if texts[j] == "const":
            j += 1
        start_type = j
        if j >= n or not (texts[j][0].isalpha() or texts[j][0] == "_"):
            i += 1
            continue
        j += 1
        while j + 1 < n and texts[j] == "::" and \
                (texts[j + 1][0].isalpha() or texts[j + 1][0] == "_"):
            j += 2
        if j < n and texts[j] == "<":
            j = _match(texts, j, "<", ">") + 1
        type_end = j
        while j < n and texts[j] in ("&", "*", "&&", "const"):
            j += 1
        if j >= n or not (texts[j][0].isalpha() or texts[j][0] == "_") or \
                texts[j] in _KEYWORDS:
            i += 1
            continue
        name = texts[j]
        if j + 1 < n and texts[j + 1] in ("=", ";", "{", ":") and \
                texts[start_type] not in ("return", "delete", "else"):
            type_text = " ".join(texts[start_type:type_end])
            if type_text not in ("", "auto", "const"):
                fn.local_types.setdefault(name, type_text)
            i = j + 1
            continue
        i += 1


def load_program(root, files):
    """Parses `files` (relative to root) into a Program."""
    program = Program()
    for rel in files:
        path = os.path.join(root, rel)
        try:
            with open(path, encoding="utf-8", errors="replace") as f:
                text = f.read()
        except OSError:
            continue
        lexer.collect_waivers(text, rel, program.waivers)
        toks = lexer.strip_and_tokenize(text)
        _FileParser(program, rel).parse(toks)
    return program
