file(REMOVE_RECURSE
  "CMakeFiles/ablation_congestion.dir/ablation_congestion.cpp.o"
  "CMakeFiles/ablation_congestion.dir/ablation_congestion.cpp.o.d"
  "ablation_congestion"
  "ablation_congestion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_congestion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
