// Ablation bench (DESIGN.md extension #5; paper §VII future work): a
// minimal congestion-management layer — per-router injection throttling
// with hysteresis on local buffer occupancy — and what it buys OFAR in the
// two collapse regimes this reproduction exposes:
//
//   (a) sustained deep overload on the full configuration (UN far past
//       saturation), where unrestricted injection pins every buffer and
//       the network wedges onto the escape ring;
//   (b) the paper's own Fig. 9 configuration (2 local / 1 global VCs,
//       embedded ring), which collapses already at moderate loads.
//
// Default scale h=3 keeps collapsed points (the slowest to simulate)
// affordable; pass --h 4 for the scale the figure benches use.
//
// Shim over the "ablation_congestion" preset (presets.cpp).
#include "presets.hpp"

int main(int argc, char** argv) {
  return ofar::bench::run_preset_main("ablation_congestion", argc, argv);
}
