file(REMOVE_RECURSE
  "CMakeFiles/adversarial_study.dir/adversarial_study.cpp.o"
  "CMakeFiles/adversarial_study.dir/adversarial_study.cpp.o.d"
  "adversarial_study"
  "adversarial_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adversarial_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
