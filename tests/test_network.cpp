// Integration tests over the full simulator: construction invariants,
// end-to-end delivery for every routing mechanism (parameterized), drain +
// flow-control conservation (quiescence), latency lower bounds, misroute
// header-flag limits, deadlock-watchdog cleanliness, and determinism.
#include <gtest/gtest.h>

#include <memory>

#include "sim/network.hpp"
#include "traffic/generator.hpp"

namespace ofar {
namespace {

SimConfig base_cfg(RoutingKind routing, u32 h = 2) {
  SimConfig cfg;
  cfg.h = h;
  cfg.routing = routing;
  cfg.ring = cfg.vc_ordered() ? RingKind::kNone : RingKind::kPhysical;
  cfg.seed = 12345;
  return cfg;
}

/// Runs Bernoulli traffic, then detaches the source and drains completely.
/// Returns the network for post-mortem inspection.
std::unique_ptr<Network> run_and_drain(const SimConfig& cfg, double load,
                                       Cycle active_cycles) {
  auto net = std::make_unique<Network>(cfg);
  net->set_traffic(std::make_unique<BernoulliSource>(
      TrafficPattern::uniform(), load, cfg.seed));
  net->run(active_cycles);
  net->set_traffic(nullptr);
  u64 guard = 0;
  while (!net->drained() && ++guard < 500000) net->step();
  EXPECT_TRUE(net->drained()) << "network failed to drain";
  // Drained means every packet was delivered; in-flight *credits* may still
  // need up to one wire latency to land before the network is quiescent.
  net->run(cfg.global_latency + 2);
  return net;
}

// ---- construction ----

TEST(Network, ConstructionSizes) {
  Network net(base_cfg(RoutingKind::kMin));
  EXPECT_EQ(net.topo().routers(), 36u);
  // Channels: per router 2 eject + 3 local + 2 global = 7 (h=2, no ring).
  EXPECT_EQ(net.num_channels(), 36u * 7u);
}

TEST(Network, PhysicalRingAddsChannels) {
  Network net(base_cfg(RoutingKind::kOfar));
  // One extra ring channel per router.
  EXPECT_EQ(net.num_channels(), 36u * 8u);
}

TEST(Network, EmbeddedRingAddsNoChannels) {
  SimConfig cfg = base_cfg(RoutingKind::kOfar);
  cfg.ring = RingKind::kEmbedded;
  Network net(cfg);
  EXPECT_EQ(net.num_channels(), 36u * 7u);
  // Exactly one input port per router carries the extra escape VC.
  for (RouterId r = 0; r < net.topo().routers(); ++r) {
    u32 ring_inputs = 0;
    for (PortId p = 0; p < net.topo().ports_per_router(); ++p) {
      const auto& in = net.router(r).inputs[p];
      const PortClass cls = net.topo().port_class(p);
      const u32 base = cls == PortClass::kLocal ? cfg.vcs_local
                       : cls == PortClass::kGlobal ? cfg.vcs_global
                                                   : cfg.vcs_injection;
      if (in.vcs.size() == base + 1) {
        ++ring_inputs;
        EXPECT_TRUE(net.is_ring_input(r, p, static_cast<VcId>(base)));
        EXPECT_FALSE(net.is_ring_input(r, p, 0));
      }
    }
    EXPECT_EQ(ring_inputs, 1u);
  }
}

TEST(Network, CreditsMatchDownstreamCapacity) {
  Network net(base_cfg(RoutingKind::kVal));
  const SimConfig& cfg = net.config();
  for (RouterId r = 0; r < net.topo().routers(); ++r) {
    const Router& router = net.router(r);
    for (PortId p = 0; p < net.topo().ports_per_router(); ++p) {
      const OutputPort& out = router.outputs[p];
      if (!out.wired()) continue;
      switch (net.topo().port_class(p)) {
        case PortClass::kLocal:
          ASSERT_EQ(out.credits.size(), cfg.vcs_local);
          for (u32 c : out.credits) EXPECT_EQ(c, cfg.fifo_local);
          break;
        case PortClass::kGlobal:
          ASSERT_EQ(out.credits.size(), cfg.vcs_global);
          for (u32 c : out.credits) EXPECT_EQ(c, cfg.fifo_global);
          break;
        default:
          break;
      }
    }
  }
}

// ---- parameterized end-to-end behaviour ----

class MechanismTest : public ::testing::TestWithParam<RoutingKind> {};

TEST_P(MechanismTest, DeliversEverythingAndQuiesces) {
  const SimConfig cfg = base_cfg(GetParam());
  auto net = run_and_drain(cfg, 0.15, 3000);
  const Stats& s = net->stats();
  EXPECT_GT(s.delivered_packets(), 1000u);
  EXPECT_EQ(s.delivered_packets(), s.injected_packets());
  EXPECT_EQ(s.delivered_packets(), s.generated_packets());
  EXPECT_TRUE(net->check_quiescent());
  EXPECT_EQ(s.stalled_packets(), 0u);
}

TEST_P(MechanismTest, LatencyRespectsWireLowerBound) {
  const SimConfig cfg = base_cfg(GetParam());
  auto net = run_and_drain(cfg, 0.05, 2000);
  // Any packet crosses at least its ejection link (1 cycle) + 8 phits of
  // serialization; intra-router traffic cannot beat ~size cycles.
  EXPECT_GE(net->stats().latency().min, cfg.packet_size);
  // Mean must exceed the global wire latency because most traffic is
  // inter-group under UN.
  EXPECT_GT(net->stats().latency().mean(), cfg.global_latency);
}

TEST_P(MechanismTest, HopCountsBounded) {
  const SimConfig cfg = base_cfg(GetParam());
  auto net = run_and_drain(cfg, 0.15, 3000);
  // MIN: <=3 hops. VAL/PB/UGAL: <=5. OFAR: <=8 canonical hops plus ring
  // riding; without ring entries the bound is strict.
  const u64 max_hops = net->stats().max_hops();
  switch (GetParam()) {
    case RoutingKind::kMin:
      EXPECT_LE(max_hops, 3u);
      break;
    case RoutingKind::kVal:
    case RoutingKind::kPb:
    case RoutingKind::kUgal:
      EXPECT_LE(max_hops, 5u);
      break;
    default:
      if (net->stats().ring_entries() == 0) {
        EXPECT_LE(max_hops, 8u);
      }
      break;
  }
}

TEST_P(MechanismTest, DeterministicAcrossRuns) {
  const SimConfig cfg = base_cfg(GetParam());
  auto a = run_and_drain(cfg, 0.2, 2000);
  auto b = run_and_drain(cfg, 0.2, 2000);
  EXPECT_EQ(a->stats().delivered_packets(), b->stats().delivered_packets());
  EXPECT_DOUBLE_EQ(a->stats().latency().mean(), b->stats().latency().mean());
  EXPECT_EQ(a->now(), b->now());
}

TEST_P(MechanismTest, SeedChangesTrace) {
  SimConfig cfg = base_cfg(GetParam());
  auto a = run_and_drain(cfg, 0.2, 2000);
  cfg.seed = 999;
  auto b = run_and_drain(cfg, 0.2, 2000);
  EXPECT_NE(a->stats().latency().sum, b->stats().latency().sum);
}

INSTANTIATE_TEST_SUITE_P(
    AllMechanisms, MechanismTest,
    ::testing::Values(RoutingKind::kMin, RoutingKind::kVal, RoutingKind::kPb,
                      RoutingKind::kUgal, RoutingKind::kOfar,
                      RoutingKind::kOfarL),
    [](const ::testing::TestParamInfo<RoutingKind>& info) {
      std::string n = to_string(info.param);
      for (auto& c : n)
        if (c == '-') c = '_';
      return n;
    });

// ---- adversarial end-to-end ----

class AdversarialDrainTest : public ::testing::TestWithParam<RoutingKind> {};

TEST_P(AdversarialDrainTest, DrainsUnderAdvPlusH) {
  SimConfig cfg = base_cfg(GetParam());
  auto net = std::make_unique<Network>(cfg);
  net->set_traffic(std::make_unique<BernoulliSource>(
      TrafficPattern::adversarial(cfg.h), 0.1, cfg.seed));
  net->run(3000);
  net->set_traffic(nullptr);
  u64 guard = 0;
  while (!net->drained() && ++guard < 500000) net->step();
  EXPECT_TRUE(net->drained());
  net->run(cfg.global_latency + 2);  // let in-flight credits land
  EXPECT_TRUE(net->check_quiescent());
  EXPECT_EQ(net->stats().stalled_packets(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllMechanisms, AdversarialDrainTest,
    ::testing::Values(RoutingKind::kMin, RoutingKind::kVal, RoutingKind::kPb,
                      RoutingKind::kUgal, RoutingKind::kOfar,
                      RoutingKind::kOfarL),
    [](const ::testing::TestParamInfo<RoutingKind>& info) {
      std::string n = to_string(info.param);
      for (auto& c : n)
        if (c == '-') c = '_';
      return n;
    });

// ---- OFAR specifics ----

TEST(NetworkOfar, EmbeddedRingDrains) {
  SimConfig cfg = base_cfg(RoutingKind::kOfar);
  cfg.ring = RingKind::kEmbedded;
  auto net = run_and_drain(cfg, 0.2, 3000);
  EXPECT_TRUE(net->check_quiescent());
}

TEST(NetworkOfar, MisroutesUnderAdversarialTraffic) {
  SimConfig cfg = base_cfg(RoutingKind::kOfar);
  Network net(cfg);
  net.set_traffic(std::make_unique<BernoulliSource>(
      TrafficPattern::adversarial(1), 0.2, cfg.seed));
  net.run(4000);
  // The single minimal global link per group pair saturates instantly;
  // OFAR must spread via global misroutes.
  EXPECT_GT(net.stats().global_misroutes(), 100u);
}

TEST(NetworkOfar, InjectionBackpressureThrottlesSources) {
  SimConfig cfg = base_cfg(RoutingKind::kMin);
  Network net(cfg);
  // ADV at overload: minimal routing jams, injection FIFOs fill, pending
  // queues grow, but generated == injected + pending at all times.
  net.set_traffic(std::make_unique<BernoulliSource>(
      TrafficPattern::adversarial(1), 0.5, cfg.seed));
  net.run(4000);
  const Stats& s = net.stats();
  EXPECT_LT(s.injected_packets(), s.generated_packets());
  EXPECT_GT(s.delivered_packets(), 0u);
}

TEST(NetworkOfar, TryInjectRespectsCapacity) {
  SimConfig cfg = base_cfg(RoutingKind::kOfar);
  Network net(cfg);
  const u32 per_vc = cfg.fifo_injection / cfg.packet_size;
  const u32 cap = per_vc * cfg.vcs_injection;
  u32 accepted = 0;
  while (net.try_inject(0, 10, 0) && accepted < 1000) ++accepted;
  EXPECT_EQ(accepted, cap);
  EXPECT_EQ(net.injection_free_phits(0),
            cfg.vcs_injection * cfg.fifo_injection -
                cap * cfg.packet_size);
}

TEST_P(MechanismTest, FlowConservationHoldsMidRun) {
  // The fundamental credit-based flow-control invariant, audited while the
  // network is busy (not just after drain): for every channel VC,
  //   credits + reserved + wire phits + stored + wire credits == capacity.
  const SimConfig cfg = base_cfg(GetParam());
  Network net(cfg);
  net.set_traffic(std::make_unique<BernoulliSource>(
      TrafficPattern::uniform(), 0.3, cfg.seed));
  for (int burst = 0; burst < 10; ++burst) {
    net.run(250);
    ASSERT_TRUE(net.check_flow_conservation()) << "after " << net.now();
  }
}

TEST(NetworkOfar, FlowConservationUnderAdversarialStress) {
  SimConfig cfg = base_cfg(RoutingKind::kOfar);
  Network net(cfg);
  net.set_traffic(std::make_unique<BernoulliSource>(
      TrafficPattern::adversarial(cfg.h), 0.3, cfg.seed));
  for (int burst = 0; burst < 8; ++burst) {
    net.run(400);
    ASSERT_TRUE(net.check_flow_conservation()) << "after " << net.now();
  }
}

TEST(Network, OfferFeedsPendingThenInjects) {
  SimConfig cfg = base_cfg(RoutingKind::kMin);
  Network net(cfg);
  for (int i = 0; i < 50; ++i) net.offer(0, 20, 0);
  EXPECT_FALSE(net.drained());
  u64 guard = 0;
  while (!net.drained() && ++guard < 100000) net.step();
  EXPECT_EQ(net.stats().delivered_packets(), 50u);
}

}  // namespace
}  // namespace ofar
