// Hamiltonian ring over all routers of a dragonfly — the escape subnetwork
// substrate (paper §IV-C).
//
// Construction: the ring visits groups in cyclic order with a configurable
// stride s (gcd(s, groups) == 1; stride 1 is the paper's ring). Moving from
// group g to group g+s uses that pair's unique global link, which is carried
// by a fixed router on each side; inside each group the ring walks a
// Hamiltonian path from the entering carrier to the exiting carrier over the
// complete local graph. Strides > 1 allow several rings using distinct
// global links (paper §VII reliability discussion).
//
// The same router order serves both ring implementations:
//  - physical: dedicated ring wires between consecutive routers (latency
//    matching local/global distance), one extra port per router;
//  - embedded: an extra escape VC on exactly the canonical channels the
//    ring traverses (no new wires).
#pragma once

#include <vector>

#include "common/types.hpp"
#include "topology/dragonfly.hpp"

namespace ofar {

class HamiltonianRing {
 public:
  /// Builds the ring. For an embedded ring the entering and exiting carriers
  /// inside each group must differ, which requires groups > h + 1 when
  /// stride == 1 (always true at full size). Construction aborts otherwise.
  /// `variant` selects among different intra-group walks for the same
  /// stride (used when hunting for edge-disjoint ring sets, paper §VII).
  explicit HamiltonianRing(const Dragonfly& topo, u32 stride = 1,
                           u32 variant = 0);

  /// True when a ring with this stride can be built on `topo`.
  static bool constructible(const Dragonfly& topo, u32 stride = 1) noexcept;

  u32 stride() const noexcept { return stride_; }
  u32 variant() const noexcept { return variant_; }

  /// Routers in ring order; position 0 is router a-1 of group 0.
  const std::vector<RouterId>& order() const noexcept { return order_; }

  /// Position of router r in the ring, in [0, routers).
  u32 position(RouterId r) const noexcept { return position_[r]; }

  RouterId successor(RouterId r) const noexcept {
    const u32 pos = position_[r];
    return order_[pos + 1 == order_.size() ? 0 : pos + 1];
  }
  RouterId predecessor(RouterId r) const noexcept {
    const u32 pos = position_[r];
    return order_[pos == 0 ? order_.size() - 1 : pos - 1];
  }

  /// True when the step r -> successor(r) crosses groups (global distance).
  bool step_crosses_group(RouterId r) const noexcept {
    return crosses_[position_[r]];
  }

  /// Canonical output port of r that carries the embedded ring step
  /// r -> successor(r) (a local or global port of the base topology).
  PortId embedded_out_port(RouterId r) const noexcept {
    return out_port_[position_[r]];
  }

  /// Number of hops along the ring from r to the router owning node `dst`
  /// ... i.e., forward ring distance between two routers.
  u32 ring_distance(RouterId from, RouterId to) const noexcept {
    const u32 n = static_cast<u32>(order_.size());
    return (position_[to] + n - position_[from]) % n;
  }

  /// Verifies this is a Hamiltonian cycle of the base topology: every router
  /// exactly once, every step a real local/global link.
  bool validate(const Dragonfly& topo) const;

  /// True when `lhs` and `rhs` share no (undirected) base-topology edge.
  static bool edge_disjoint(const Dragonfly& topo, const HamiltonianRing& lhs,
                            const HamiltonianRing& rhs);

 private:
  u32 stride_;
  u32 variant_;
  std::vector<RouterId> order_;
  std::vector<u32> position_;   // router id -> ring position
  std::vector<bool> crosses_;   // per position: step crosses groups
  std::vector<PortId> out_port_;  // per position: canonical out port
};

}  // namespace ofar
