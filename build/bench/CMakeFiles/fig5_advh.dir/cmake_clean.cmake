file(REMOVE_RECURSE
  "CMakeFiles/fig5_advh.dir/fig5_advh.cpp.o"
  "CMakeFiles/fig5_advh.dir/fig5_advh.cpp.o.d"
  "fig5_advh"
  "fig5_advh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_advh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
