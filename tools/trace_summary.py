#!/usr/bin/env python3
"""Summarise (or validate) a packet-journey trace written by --trace-out.

The simulator's Chrome trace-event exporter (src/trace/perfetto.hpp) maps
one sampled packet to one Perfetto process and each router the packet
visits to a thread of that process; hop spans carry the routing-decision
provenance in their args. This tool reads that JSON back and prints the
aggregate story:

  * packets traced / delivered, hop and queue-wait distributions;
  * a histogram of routing conditions (minimal, misroute-local/global,
    ring enter/ride/exit, waits) over every hop span;
  * the slowest packets end-to-end and the hops that queued longest.

With --links F it additionally summarises a per-link series file written
by --trace-links (.csv or JSONL) and prints the busiest / most stalled
links.

--check switches to validation mode for CI: the file must parse as JSON,
carry a well-formed traceEvents list, and every traced packet must have a
named process, hop spans with provenance args, and cycle-ordered events.
Exits 0 when valid, 1 with a diagnostic otherwise.

Usage:
  tools/trace_summary.py TRACE.json [--links LINKS.csv] [--top N] [--check]
"""

import argparse
import json
import os
import sys
from collections import defaultdict

REQUIRED_SPAN_KEYS = ("ph", "pid", "tid", "name", "ts")
PROVENANCE_KEYS = ("condition", "router", "cycle", "seq")


def fail(msg):
    print(f"trace_summary: FAIL: {msg}", file=sys.stderr)
    return 1


def load_trace(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        raise ValueError("missing traceEvents object")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("traceEvents is not a list")
    return doc, events


def group_packets(events):
    """pid -> {"name": process name, "spans": [...], "instants": [...]}"""
    packets = defaultdict(lambda: {"name": "", "spans": [], "instants": []})
    for ev in events:
        ph = ev.get("ph")
        pid = ev.get("pid")
        if ph == "M":
            if ev.get("name") == "process_name":
                packets[pid]["name"] = ev.get("args", {}).get("name", "")
        elif ph == "X":
            packets[pid]["spans"].append(ev)
        elif ph == "i":
            packets[pid]["instants"].append(ev)
    return packets


def check(doc, events, path):
    if not events:
        return fail(f"{path}: empty traceEvents (no packets sampled?)")
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            return fail(f"event {i} is not an object")
        ph = ev.get("ph")
        if ph not in ("M", "X", "i"):
            return fail(f"event {i}: unexpected phase {ph!r}")
        if ph in ("X", "i"):
            missing = [k for k in REQUIRED_SPAN_KEYS if k not in ev]
            if missing:
                return fail(f"event {i}: missing keys {missing}")
        if ph == "X" and "dur" not in ev:
            return fail(f"event {i}: complete span without dur")

    packets = group_packets(events)
    traced = {pid: p for pid, p in packets.items() if p["spans"]}
    if not traced:
        return fail(f"{path}: no hop spans (tracer produced metadata only)")
    for pid, p in traced.items():
        if not p["name"]:
            return fail(f"packet pid={pid}: unnamed process")
        hops = [s for s in p["spans"] if s["name"] != "queued"]
        if not hops:
            return fail(f"packet pid={pid}: no routing hop spans")
        last_ts = -1
        for s in sorted(p["spans"], key=lambda s: s["ts"]):
            if s["ts"] < last_ts:
                return fail(f"packet pid={pid}: unordered span at ts={s['ts']}")
            last_ts = s["ts"]
        for s in hops:
            args = s.get("args")
            if not isinstance(args, dict):
                return fail(
                    f"packet pid={pid}: hop span {s['name']!r} without "
                    "provenance args"
                )
            missing = [k for k in PROVENANCE_KEYS if k not in args]
            if missing:
                return fail(
                    f"packet pid={pid}: provenance missing {missing} in "
                    f"hop span {s['name']!r}"
                )
            if args["condition"] != s["name"]:
                return fail(
                    f"packet pid={pid}: span name {s['name']!r} != "
                    f"args.condition {args['condition']!r}"
                )
    label = doc.get("otherData", {}).get("label", "")
    print(
        f"trace_summary: OK: {path}: {len(traced)} packet(s), "
        f"{sum(len(p['spans']) for p in traced.values())} span(s)"
        + (f", label {label!r}" if label else "")
    )
    return 0


def summarise(doc, events, top):
    packets = group_packets(events)
    traced = {pid: p for pid, p in packets.items() if p["spans"]}
    conditions = defaultdict(int)
    journeys = []  # (end-to-end cycles, queued cycles, hops, pid, name)
    worst_queues = []  # (wait, router tid, pid)
    for pid, p in traced.items():
        hops = [s for s in p["spans"] if s["name"] != "queued"]
        queued = sum(s["dur"] for s in p["spans"] if s["name"] == "queued")
        for s in hops:
            conditions[s["name"]] += 1
        for s in p["spans"]:
            if s["name"] == "queued":
                worst_queues.append((s["dur"], s["tid"], pid))
        ts = [s["ts"] for s in p["spans"]]
        span = (max(ts) - min(ts)) if len(ts) > 1 else 0
        delivered = any(i["name"] == "deliver" for i in p["instants"])
        journeys.append((span, queued, len(hops), pid, p["name"], delivered))

    label = doc.get("otherData", {}).get("label", "")
    ndeliv = sum(1 for j in journeys if j[5])
    print(f"trace: {len(traced)} packet(s), {ndeliv} delivered" +
          (f"  [{label}]" if label else ""))
    if conditions:
        total = sum(conditions.values())
        print("routing conditions over hop spans:")
        for name, n in sorted(conditions.items(), key=lambda kv: -kv[1]):
            print(f"  {name:<16} {n:>8}  ({100.0 * n / total:.1f}%)")
    journeys.sort(reverse=True)
    if journeys:
        print(f"slowest packets (of {len(journeys)} traced):")
        for span, queued, hops, pid, name, delivered in journeys[:top]:
            state = "delivered" if delivered else "in flight"
            print(
                f"  {name:<28} {span:>6} cycles, {hops} hops, "
                f"{queued} queued  ({state})"
            )
    worst_queues.sort(reverse=True)
    if worst_queues:
        print("longest per-hop queue waits:")
        for wait, tid, pid in worst_queues[:top]:
            print(f"  router {tid:<5} pkt pid={pid:<8} {wait} cycles")
    return 0


def summarise_links(path, top):
    """Per-link series from --trace-links: label,cycle,mean,count rows."""
    rows = []
    with open(path, encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if not line or line.startswith("label,"):
                continue
            if line.startswith("{"):
                rec = json.loads(line)
                rows.append((rec["label"], float(rec["mean"]),
                             int(rec["count"])))
            else:
                parts = line.split(",")
                if len(parts) != 4:
                    continue
                rows.append((parts[0], float(parts[2]), int(parts[3])))
    totals = defaultdict(lambda: [0.0, 0])  # label -> [sum, count]
    for label, mean, count in rows:
        totals[label][0] += mean * count
        totals[label][1] += count
    util = {k: v for k, v in totals.items() if k.endswith(".util")}
    stall = {k: v for k, v in totals.items() if k.endswith(".stall")}
    if util:
        print("busiest links (sampled phits):")
        for k, (s, _) in sorted(util.items(), key=lambda kv: -kv[1][0])[:top]:
            print(f"  {k:<32} {s:>10.0f}")
    if stall:
        print("most stalled links (mean queue-wait, cycles):")
        ranked = sorted(
            ((s / c if c else 0.0, k) for k, (s, c) in stall.items()),
            reverse=True,
        )
        for mean, k in ranked[:top]:
            print(f"  {k:<32} {mean:>10.2f}")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("trace", help="Chrome trace JSON from --trace-out")
    ap.add_argument("--links", help="per-link series file from --trace-links")
    ap.add_argument("--top", type=int, default=10, metavar="N",
                    help="rows per ranking (default 10)")
    ap.add_argument("--check", action="store_true",
                    help="validate instead of summarise (CI mode)")
    args = ap.parse_args()

    try:
        doc, events = load_trace(args.trace)
    except (OSError, ValueError, json.JSONDecodeError) as e:
        return fail(f"{args.trace}: {e}")

    if args.check:
        return check(doc, events, args.trace)
    rc = summarise(doc, events, args.top)
    if rc == 0 and args.links:
        rc = summarise_links(args.links, args.top)
    return rc


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # e.g. `... | head`: truncated output is fine
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(0)
