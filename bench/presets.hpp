// Figure-preset registry: every legacy bench binary is a thin shim over
// this table, and `ofar_run --preset NAME` exposes the same entries. A
// preset turns its CLI into one or more PresetUnits — an ExperimentSpec (or
// a bespoke point list for the figures that are not a pure cross product)
// plus a renderer — and run_units() executes all units' points through the
// orchestrator in a single batch (shared cache, shared worker pool, one
// resume journal), then renders each unit's tables and CSVs.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/orchestrator.hpp"
#include "core/spec.hpp"

namespace ofar::bench {

struct PresetUnit {
  ExperimentSpec spec;
  std::vector<RunPoint> points;
  /// Renderer over this unit's slice of outcomes (parallel to `points`).
  /// Null selects the generic per-kind renderer render_spec(), which
  /// reproduces the historical figure output bit-for-bit.
  std::function<void(const PresetUnit&, const std::vector<PointOutcome>&,
                     const BenchOptions&)>
      render;
};

struct PresetRun {
  BenchOptions opts;
  std::string banner;  ///< printed before execution (newline-terminated)
  std::vector<PresetUnit> units;
  bool ok = true;  ///< false after a CLI error (already reported)
};

struct Preset {
  const char* name;
  const char* summary;
  PresetRun (*make)(const CommandLine& cli);
};

const std::vector<Preset>& presets();
const Preset* find_preset(const std::string& name);

/// Generic renderer for spec-shaped units: steady figures print/dump the
/// latency+throughput+detail trio, transient figures one table per
/// transition, burst figures the normalised-completion table.
void render_spec(const PresetUnit& unit,
                 const std::vector<PointOutcome>& outcomes,
                 const BenchOptions& opts);

/// Executes all units' points in one orchestrator batch and renders each
/// unit. Returns a process exit code: 0 on a complete run, 130 when a stop
/// condition interrupted the sweep (nothing is rendered; rerun to resume).
int run_units(const std::vector<PresetUnit>& units, const BenchOptions& opts,
              const std::string& banner);

/// Installs the SIGINT handler and returns the stop flag it raises, so any
/// driver can offer graceful interruption + journal-based resume.
const std::atomic<bool>* install_sigint_stop();

/// Entry point shared by the legacy shim binaries and `ofar_run --preset`:
/// parses the CLI, builds the preset, runs it. `default_cache_dir` applies
/// when the user passed neither --cache-dir nor --no-cache (shims pass ""
/// to keep their historical cache-less behaviour).
int run_preset_main(const std::string& name, int argc, char** argv,
                    const std::string& default_cache_dir = "");

}  // namespace ofar::bench
