// Fixture: `if constexpr (kStaged)` dual-instantiation — branches that
// only exist in the K=1 sequential kernel (the `else` of kStaged, the
// `then` of !kStaged) are exempt from parallel-phase rules; the same
// call outside those regions is flagged.

struct Kernel {
  template <bool kStaged>
  OFAR_PARALLEL_PHASE void advance();
  OFAR_SERIAL_ONLY void schedule();
  OFAR_SHARD_LOCAL int local_ = 0;
};

template <bool kStaged>
void Kernel::advance() {
  if constexpr (kStaged) {
    local_ += 1;
  } else {
    schedule();  // fine: sequential-kernel-only branch
  }
  if constexpr (!kStaged) {
    schedule();  // fine: sequential-kernel-only branch
  }
  schedule();  // expect: serial-call
}
