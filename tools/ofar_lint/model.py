"""Semantic model shared by the ofar_lint frontends.

A frontend reduces the C++ sources to:

  * classes: name -> ClassInfo (bases, member annotations, class-level
    annotation);
  * functions: qualified name -> [FunctionDef] (annotations + the token
    stream of the body, with serial-excluded `if constexpr (!kStaged)`
    regions marked);
  * aliases: typedef/using chains, for unordered-container and clock
    resolution through names.

rules.py then walks the call graph from the parallel-phase roots and
applies the discipline checks to every reachable body region.
"""

from dataclasses import dataclass, field

# Annotation spellings (the macro names; the builtin frontend reads the
# macros themselves, the clang frontend reads the expanded
# [[clang::annotate]] strings).
PARALLEL_PHASE = "parallel_phase"
SERIAL_ONLY = "serial_only"
SHARD_LOCAL = "shard_local"
LANE_RNG = "lane_rng"

MACRO_TO_ANNOTATION = {
    "OFAR_PARALLEL_PHASE": PARALLEL_PHASE,
    "OFAR_SERIAL_ONLY": SERIAL_ONLY,
    "OFAR_SHARD_LOCAL": SHARD_LOCAL,
    "OFAR_LANE_RNG": LANE_RNG,
}

ANNOTATE_TO_ANNOTATION = {
    "ofar::parallel_phase": PARALLEL_PHASE,
    "ofar::serial_only": SERIAL_ONLY,
    "ofar::shard_local": SHARD_LOCAL,
    "ofar::lane_rng": LANE_RNG,
}


@dataclass
class Token:
    text: str
    line: int
    # True inside a region that only instantiates into the sequential
    # kernel (`if constexpr (!kStaged)` branches): the parallel-phase
    # rules skip these tokens.
    serial_excluded: bool = False


@dataclass
class ClassInfo:
    name: str                      # qualified, e.g. "Network"
    bases: list = field(default_factory=list)   # base class names
    annotation: str = ""           # class-level phase annotation ("" = none)
    # member variable name -> annotation ("" when declared unannotated)
    members: dict = field(default_factory=dict)
    # member variable name -> declared type text
    member_types: dict = field(default_factory=dict)
    # method name -> annotation, from in-class declarations (merged into
    # out-of-line definitions and inherited by overrides)
    methods: dict = field(default_factory=dict)
    file: str = ""
    line: int = 0


@dataclass
class FunctionDef:
    name: str                      # unqualified, e.g. "route"
    qualname: str                  # "OfarPolicy::route" or free-function name
    cls: str = ""                  # owning class ("" for free functions)
    annotation: str = ""           # phase annotation from decl or definition
    file: str = ""
    line: int = 0
    params: list = field(default_factory=list)        # parameter names
    param_types: dict = field(default_factory=dict)   # name -> type text
    body: list = field(default_factory=list)          # [Token]
    # local variable name -> declared type text (best effort)
    local_types: dict = field(default_factory=dict)


@dataclass
class Program:
    classes: dict = field(default_factory=dict)    # name -> ClassInfo
    functions: dict = field(default_factory=dict)  # qualname -> [FunctionDef]
    aliases: dict = field(default_factory=dict)    # alias name -> target text
    # free function name -> annotation, from annotated declarations
    free_fn_annotations: dict = field(default_factory=dict)
    # (file, line) -> set of waived rule names, from `// lint: allow(rule)`
    waivers: dict = field(default_factory=dict)

    def class_annotation(self, cls_name):
        ci = self.classes.get(cls_name)
        return ci.annotation if ci else ""

    def resolve_alias(self, type_text, _depth=0):
        """Follows typedef/using chains; returns the fully expanded text."""
        if _depth > 16 or not type_text:
            return type_text
        # Resolve the last identifier-ish component if it is an alias.
        key = type_text.split("<")[0].split("::")[-1].strip().lstrip("&* ")
        target = self.aliases.get(key)
        if target is None or target == type_text:
            return type_text
        return self.resolve_alias(target, _depth + 1)

    def member_annotation(self, cls_name, member):
        """Annotation of `member` of `cls_name`, searching base classes.
        Falls back to the class-level annotation when the member is
        unannotated but the class carries one."""
        seen = set()
        stack = [cls_name]
        while stack:
            c = stack.pop()
            if c in seen:
                continue
            seen.add(c)
            ci = self.classes.get(c)
            if ci is None:
                continue
            if member in ci.members:
                return ci.members[member] or ci.annotation
            stack.extend(ci.bases)
        ci = self.classes.get(cls_name)
        return ci.annotation if ci else ""

    def method_annotation(self, cls_name, method):
        """Effective annotation of `method` of `cls_name`: its own in-class
        declaration, inherited from a base-class declaration of the same
        name (virtual overrides), or the class-level annotation."""
        seen = set()
        stack = [cls_name]
        while stack:
            c = stack.pop()
            if c in seen:
                continue
            seen.add(c)
            ci = self.classes.get(c)
            if ci is None:
                continue
            if method in ci.methods:
                return ci.methods[method]
            if ci.annotation:
                return ci.annotation
            stack.extend(ci.bases)
        return ""

    def fn_annotation(self, fn):
        """Effective annotation of a FunctionDef (definition site, in-class
        declaration, base-class override chain, or free-fn declaration)."""
        if fn.annotation:
            return fn.annotation
        if fn.cls:
            return self.method_annotation(fn.cls, fn.name)
        return self.free_fn_annotations.get(fn.name, "")

    def derived_of(self, base):
        """base + every class transitively derived from it."""
        out = {base}
        changed = True
        while changed:
            changed = False
            for name, ci in self.classes.items():
                if name not in out and any(b in out for b in ci.bases):
                    out.add(name)
                    changed = True
        return out


@dataclass
class Finding:
    rule: str
    file: str
    line: int
    message: str
    context: str = ""     # e.g. the reachability chain

    def format(self):
        out = f"{self.file}:{self.line}: [{self.rule}] {self.message}"
        if self.context:
            out += f"\n    (reached via {self.context})"
        return out
